# Convenience entry points; everything is plain dune underneath.

.PHONY: build test bench bench-check metrics-check repro clean

build:
	dune build

test:
	dune runtest

# Full bechamel microbenchmark run (slow).
bench:
	dune exec bench/main.exe

# One command between you and a perf regression: build, run the tier-1
# suite, then the quick pairing bench (writes BENCH_pairing.json) and
# the cost-invariant check.
bench-check:
	dune build
	dune runtest
	dune exec bench/quick.exe
	$(MAKE) metrics-check

# Runs a representative workload and fails when a verification-cost
# invariant regresses (e.g. Ibs.verify back to 2 pairings, or a
# batched audit of k jobs costing more than k+1 equations).
metrics-check:
	dune exec bin/seccloud_cli.exe -- stats --params toy --check

repro:
	dune exec bin/repro.exe -- all

clean:
	dune clean
