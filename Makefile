# Convenience entry points; everything is plain dune underneath.

.PHONY: build test bench bench-check repro clean

build:
	dune build

test:
	dune runtest

# Full bechamel microbenchmark run (slow).
bench:
	dune exec bench/main.exe

# One command between you and a perf regression: build, run the tier-1
# suite, then the quick pairing bench (writes BENCH_pairing.json).
bench-check:
	dune build
	dune runtest
	dune exec bench/quick.exe

repro:
	dune exec bin/repro.exe -- all

clean:
	dune clean
