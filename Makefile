# Convenience entry points; everything is plain dune underneath.

.PHONY: build test test-slow lint lint-fast bench bench-check \
	metrics-check service-check dynamic-check repro clean

build:
	dune build

# Static analysis: sc_lint over lib/, bin/ and test/ with the waiver
# baseline in lint/waivers.sexp.  Fails on any unwaived finding or on
# a waiver that no longer matches anything (--stale-waivers), so the
# baseline can only shrink.  `dune build @check` first so every file
# has a .cmt and the typed interprocedural rules (typed-secret-flow,
# domain-capture, discarded-error, transitive-determinism) run at
# full coverage.
lint:
	dune build @check tools/sc_lint/sc_lint.exe
	dune exec tools/sc_lint/sc_lint.exe -- --root . --stale-waivers \
	  lib bin test

# Parsetree rules only (no build required): the same gate the @lint
# dune alias enforces, for quick iteration.
lint-fast:
	dune build @lint

test:
	dune runtest

# The whole suite including the `Slow conformance cases: Monte-Carlo
# 3-sigma checks against eqs. (10)-(14) and lossy-channel engine
# campaigns (ALCOTEST_QUICK_TESTS explicitly unset).
test-slow:
	env -u ALCOTEST_QUICK_TESTS dune exec test/test_main.exe

# Full bechamel microbenchmark run (slow).
bench:
	dune exec bench/main.exe

# One command between you and a perf regression: build, run the suite
# including the slow conformance cases, then the quick bench (writes
# BENCH_pairing.json and BENCH_parallel.json — the latter exits
# nonzero if N-domain results are not value-identical with 1-domain)
# and the cost-invariant check.
bench-check:
	dune build
	$(MAKE) lint
	$(MAKE) test-slow
	dune exec bench/quick.exe
	$(MAKE) dynamic-check
	$(MAKE) metrics-check
	$(MAKE) service-check

# Authenticated-dynamics flatness gate: per-update cost on the
# persistent Merkle tree must stay within 2x as files grow 16k -> 1M
# blocks (O(log n), not rebuild).  Writes BENCH_dynamic.json; exits 1
# on regression.
dynamic-check:
	dune exec bench/dynamic.exe

# The sharded multi-tenant service layer, end to end.  First a small
# campaign re-run at two domain counts (--identity-check exits 1
# unless digests and ledgers are bit-identical), then the full
# million-identity soak: every identity admitted through the bounded
# shard queues (backpressure included), a heavy-tenant subset doing
# full store/audit/compute crypto over the wire with injected
# corruption as ground truth.  Writes BENCH_service.json and gates it
# on bench/service.slo.
service-check:
	dune exec bin/seccloud_cli.exe -- simulate --service \
	  --identities 20000 --heavy 32 --corrupt 4 --seed service-identity \
	  --identity-check
	dune exec bin/seccloud_cli.exe -- simulate --service \
	  --identities 1000000 --seed bench-service \
	  --out BENCH_service.json --slo bench/service.slo

# Runs a representative workload and fails when a verification-cost
# invariant regresses (e.g. Ibs.verify back to 2 pairings, or a
# batched audit of k jobs costing more than k+1 equations), then once
# more over a seeded lossy transport (30% drop, 5% tamper): the audit
# round must still terminate with typed verdicts, exercise the retry
# path, and keep the attempt ledger consistent.  Finally a traced
# lossy simulation is analyzed against the SLOs in bench/trace.slo
# (trace-tree integrity, zero false alarms, latency ceilings) and the
# report lands in BENCH_trace.json.
metrics-check:
	dune exec bin/seccloud_cli.exe -- stats --params toy --check
	dune exec bin/seccloud_cli.exe -- stats --params toy --check \
	  --drop 0.3 --tamper 0.05 --seed lossy
	SECCLOUD_DOMAINS=4 dune exec bin/seccloud_cli.exe -- stats --params toy \
	  --check
	dune exec bin/seccloud_cli.exe -- simulate --epochs 3 --drop 0.05 \
	  --seed slo --trace trace_slo.jsonl
	dune exec bin/seccloud_cli.exe -- trace analyze trace_slo.jsonl \
	  --slo bench/trace.slo --out BENCH_trace.json

repro:
	dune exec bin/repro.exe -- all

clean:
	dune clean
