(* The fault-injectable transport: retry policy arithmetic, typed
   Timeout/Tampered verdicts, counter deltas, and complete audit
   conversations surviving a seeded lossy channel. *)

module T = Seccloud.Transport
module E = Seccloud.Endpoint
module Wire = Seccloud.Wire
module Protocol = Sc_audit.Protocol
module Telemetry = Sc_telemetry.Telemetry

let system = Lazy.force Util.shared_system
let pub = Seccloud.System.public system
let cv = Telemetry.counter_value

(* Deltas of the transport counters across [f], so the assertions are
   independent of whatever ran earlier in the suite. *)
let counter_deltas f =
  let names =
    [
      "transport.rpc"; "transport.attempts"; "transport.retry";
      "transport.timeout"; "transport.tamper_detected"; "transport.mismatch";
    ]
  in
  let before = List.map (fun n -> n, cv n) names in
  let result = f () in
  let delta n = cv n - List.assoc n before in
  result, delta

let fresh_drbg name = Sc_hash.Drbg.create ~seed:name

(* A user/cloud/server-endpoint fixture with one signed file stored
   directly (off-channel), so transports can be pointed at it. *)
let make_fixture ?storage ?compute ~seed () =
  let user = Seccloud.User.create system ~id:"alice" in
  let cloud = Seccloud.Cloud.create system ~id:"cs-1" ?storage ?compute () in
  let drbg = fresh_drbg ("transport-data:" ^ seed) in
  let payloads =
    List.init 16 (fun i ->
        Sc_storage.Block.encode_ints
          (List.init 4 (fun j -> i + j + Sc_hash.Drbg.uniform_int drbg 50)))
  in
  assert (Seccloud.User.store user cloud ~file:"tf" payloads);
  user, cloud, E.Server.create system cloud

let transport_to ?faults ?policy ~seed server =
  T.create ?faults ?policy ~drbg:(fresh_drbg ("transport:" ^ seed))
    ~peer:"cs-1" ~public:pub ~handler:(E.Server.handle server) ()

let policy_tests =
  let open Util in
  [
    case "backoff grows exponentially from the base" (fun () ->
        let p = T.Retry.default in
        check (Alcotest.float 1e-9) "1st" 0.05 (T.Retry.backoff_delay p ~attempt:1);
        check (Alcotest.float 1e-9) "2nd" 0.1 (T.Retry.backoff_delay p ~attempt:2);
        check (Alcotest.float 1e-9) "3rd" 0.2 (T.Retry.backoff_delay p ~attempt:3);
        Alcotest.check_raises "attempt 0"
          (Invalid_argument "Transport.Retry.backoff_delay: attempt < 1")
          (fun () -> ignore (T.Retry.backoff_delay p ~attempt:0)));
    case "lossy validates rates" (fun () ->
        Alcotest.check_raises "rate"
          (Invalid_argument "Transport.lossy: drop outside [0, 1]") (fun () ->
            ignore (T.lossy ~drop:1.5 ()));
        Alcotest.check_raises "delay"
          (Invalid_argument "Transport.lossy: negative delay") (fun () ->
            ignore (T.lossy ~delay_s:(-1.0) ())));
    case "call rejects unknown expected kinds" (fun () ->
        let _, _, server = make_fixture ~seed:"kinds" () in
        let tr = transport_to ~seed:"kinds" server in
        Alcotest.check_raises "unknown"
          (Invalid_argument "Transport.call: unknown kind \"nonsense\"")
          (fun () ->
            ignore
              (T.call tr ~expect:"nonsense"
                 (Wire.Ack { ok = true; detail = "" }))));
  ]

let fault_tests =
  let open Util in
  [
    case "perfect channel: upload delivered with zero retries" (fun () ->
        let user, _, server = make_fixture ~seed:"perfect" () in
        let tr = transport_to ~seed:"perfect" server in
        let result, delta =
          counter_deltas (fun () ->
              Seccloud.User.store_over user ~transport:tr ~cs_id:"cs-1"
                ~file:"tf2"
                [ Sc_storage.Block.encode_ints [ 1; 2 ] ])
        in
        check Alcotest.bool "accepted" true (result = Ok true);
        check Alcotest.int "no retries" 0 (delta "transport.retry");
        check Alcotest.int "no timeouts" 0 (delta "transport.timeout");
        check Alcotest.int "no tampering" 0 (delta "transport.tamper_detected");
        check Alcotest.int "one rpc, one attempt" (delta "transport.rpc")
          (delta "transport.attempts"));
    case "total loss: typed Timeout and exact simulated time" (fun () ->
        let _, _, server = make_fixture ~seed:"blackhole" () in
        let policy =
          {
            T.Retry.max_attempts = 3;
            base_backoff_s = 0.05;
            backoff_factor = 2.0;
            attempt_timeout_s = 1.0;
          }
        in
        let tr =
          transport_to ~faults:(T.lossy ~drop:1.0 ()) ~policy ~seed:"blackhole"
            server
        in
        let result, delta =
          counter_deltas (fun () ->
              T.call tr ~expect:"storage_response"
                (Wire.Storage_challenge { file = "tf"; indices = [ 0 ] }))
        in
        check Alcotest.bool "timeout" true (result = Error T.Timeout);
        check Alcotest.int "3 attempts" 3 (delta "transport.attempts");
        check Alcotest.int "2 retries" 2 (delta "transport.retry");
        check Alcotest.int "1 timeout" 1 (delta "transport.timeout");
        (* 3 x 1s attempt timeouts + 0.05 + 0.1 backoffs. *)
        check (Alcotest.float 1e-9) "clock" 3.15 (T.now tr));
    case "unparseable replies are blamed as tampering" (fun () ->
        let tr =
          T.create ~drbg:(fresh_drbg "garbage") ~peer:"cs-1" ~public:pub
            ~handler:(fun ~now:_ _ -> "garbage") ()
        in
        let result, delta =
          counter_deltas (fun () -> T.rpc tr (Wire.Ack { ok = true; detail = "" }))
        in
        check Alcotest.bool "tampered" true (result = Error T.Tampered);
        check Alcotest.int "every attempt detected" (delta "transport.attempts")
          (delta "transport.tamper_detected"));
    case "server-side decode failure means the request was mangled" (fun () ->
        (* A handler that always reports a decode failure, the way
           Endpoint.Server answers a corrupted request. *)
        let tr =
          T.create ~drbg:(fresh_drbg "mangled") ~peer:"cs-1" ~public:pub
            ~handler:(fun ~now:_ _ ->
              Wire.encode pub
                (Wire.Ack { ok = false; detail = "decode: truncated input" }))
            ()
        in
        let result, _ =
          counter_deltas (fun () -> T.rpc tr (Wire.Ack { ok = true; detail = "" }))
        in
        check Alcotest.bool "tampered" true (result = Error T.Tampered));
    case "clock never moves backwards" (fun () ->
        let _, _, server = make_fixture ~seed:"clock" () in
        let tr = transport_to ~seed:"clock" server in
        T.set_now tr 10.0;
        check (Alcotest.float 1e-9) "set" 10.0 (T.now tr);
        Alcotest.check_raises "backwards"
          (Invalid_argument "Transport.set_now: clock moving backwards")
          (fun () -> T.set_now tr 5.0));
    case "seeded lossy channel: most calls land, all failures typed" (fun () ->
        let _, _, server = make_fixture ~seed:"lossy" () in
        let tr =
          transport_to ~faults:(T.lossy ~drop:0.3 ()) ~seed:"lossy" server
        in
        let results, delta =
          counter_deltas (fun () ->
              List.init 40 (fun i ->
                  T.call tr ~expect:"storage_response"
                    (Wire.Storage_challenge
                       { file = "tf"; indices = [ i mod 16 ] })))
        in
        let ok = List.length (List.filter Result.is_ok results) in
        check Alcotest.bool "most delivered" true (ok >= 32);
        check Alcotest.bool "retries happened" true (delta "transport.retry" > 0);
        List.iter
          (function
            | Ok (Wire.Storage_response _) -> ()
            | Ok _ -> Alcotest.fail "wrong reply kind"
            | Error (T.Timeout | T.Tampered) -> ())
          results);
    case "duplication and reordering: stale replies are discarded" (fun () ->
        let _, _, server = make_fixture ~seed:"reorder" () in
        let tr =
          transport_to
            ~faults:(T.lossy ~duplicate:1.0 ~reorder:1.0 ())
            ~seed:"reorder" server
        in
        let results, delta =
          counter_deltas (fun () ->
              List.init 6 (fun i ->
                  if i mod 2 = 0 then
                    T.call tr ~expect:"storage_response"
                      (Wire.Storage_challenge { file = "tf"; indices = [ i ] })
                  else
                    T.call tr ~expect:"compute_commitment"
                      (Wire.Compute_request
                         {
                           owner = "alice";
                           file = "tf";
                           service =
                             [ { Sc_compute.Task.func = Sc_compute.Task.Sum;
                                 position = i mod 16 } ];
                         })))
        in
        (* Every call must still resolve to its own kind (or a typed
           error): stale same-conversation replies displaced by the
           queue never leak across kinds. *)
        List.iteri
          (fun i r ->
            match r with
            | Ok (Wire.Storage_response _) ->
              check Alcotest.bool "storage slot" true (i mod 2 = 0)
            | Ok (Wire.Compute_commitment _) ->
              check Alcotest.bool "compute slot" true (i mod 2 = 1)
            | Ok _ -> Alcotest.fail "leaked stale reply of a foreign kind"
            | Error _ -> ())
          results;
        check Alcotest.bool "mismatches were discarded" true
          (delta "transport.mismatch" > 0));
  ]

(* End-to-end: full audit conversations over a 30% drop / 5% tamper
   channel terminate with typed verdicts, honest vs cheating servers
   still classified via the blame path. *)
let endpoint_tests =
  let open Util in
  let da = E.Da.create system in
  let run_audit ~seed ~storage_behaviour =
    let _user, _cloud, server =
      make_fixture ?storage:storage_behaviour ~seed ()
    in
    let tr =
      transport_to ~faults:(T.lossy ~drop:0.3 ~tamper:0.05 ()) ~seed server
    in
    E.Da.audit_storage_over_wire da ~transport:tr ~owner:"alice" ~file:"tf"
      ~indices:[ 0; 3; 7; 11 ]
  in
  [
    case "lossy channel: honest server audit terminates cleanly" (fun () ->
        (* Drive several independently seeded campaigns: none may
           raise, and every failure must be a typed channel blame, not
           a false crypto accusation. *)
        List.iter
          (fun seed ->
            let report = run_audit ~seed ~storage_behaviour:None in
            if not report.Seccloud.Agency.intact then
              check Alcotest.bool
                (Printf.sprintf "campaign %s blamed on channel" seed)
                true
                (report.Seccloud.Agency.channel <> None
                || report.Seccloud.Agency.invalid_indices <> []))
          [ "c1"; "c2"; "c3"; "c4"; "c5" ]);
    case "lossy channel: deleting server is still caught or blamed" (fun () ->
        let report =
          run_audit ~seed:"cheat-e2e"
            ~storage_behaviour:(Some (Sc_storage.Server.Delete_fraction 1.0))
        in
        check Alcotest.bool "not intact" false report.Seccloud.Agency.intact);
    case "lossy computation audit yields typed or crypto verdicts" (fun () ->
        let user, _, server = make_fixture ~seed:"comp-e2e" () in
        let tr =
          transport_to
            ~faults:(T.lossy ~drop:0.3 ~tamper:0.05 ())
            ~seed:"comp-e2e" server
        in
        let service =
          Sc_compute.Task.random_service ~drbg:(fresh_drbg "comp-e2e-svc")
            ~n_positions:16 ~n_tasks:8
        in
        let commitment =
          match
            T.call tr ~expect:"compute_commitment"
              (Wire.Compute_request { owner = "alice"; file = "tf"; service })
          with
          | Ok (Wire.Compute_commitment { commitment; _ }) -> Some commitment
          | _ -> None
        in
        match commitment with
        | None -> () (* the channel ate the setup round: typed, no raise *)
        | Some commitment ->
          let warrant =
            Seccloud.User.delegate_audit user ~now:0.0 ~lifetime:1e9 ~scope:"w"
          in
          let verdict =
            E.Da.audit_computation_over_wire da ~transport:tr ~owner:"alice"
              ~file:"tf" ~commitment ~warrant ~now:(T.now tr) ~samples:4
          in
          if not verdict.Protocol.valid then
            check Alcotest.bool "failures are typed or crypto" true
              (verdict.Protocol.failures <> []));
    case "transport failures feed the protocol blame constructors" (fun () ->
        check Alcotest.bool "timeout typed" true
          (Protocol.is_transport_failure (Protocol.Transport_timeout "cs-1"));
        check Alcotest.bool "tampered typed" true
          (Protocol.is_transport_failure (Protocol.Transport_tampered "cs-1"));
        check Alcotest.bool "crypto not typed" false
          (Protocol.is_transport_failure Protocol.Warrant_invalid));
  ]

(* Satellite: engine campaigns under a lossy channel terminate, blame
   instead of raising, and keep the counter ledger consistent. *)
let engine_tests =
  let open Util in
  [
    slow_case "perfect-channel campaign performs zero retries" (fun () ->
        let retry0 = cv "transport.retry" in
        let stats =
          Sc_sim.Engine.run
            {
              Sc_sim.Engine.default_config with
              Sc_sim.Engine.seed = "transport-clean";
              epochs = 2;
            }
        in
        check Alcotest.int "no retries" 0 (cv "transport.retry" - retry0);
        check Alcotest.int "no channel blame" 0
          (stats.Sc_sim.Engine.channel_timeouts
          + stats.Sc_sim.Engine.channel_tampering));
    slow_case "30% drop / 5% tamper campaign terminates with typed blame"
      (fun () ->
        let retry0 = cv "transport.retry" in
        let stats =
          Sc_sim.Engine.run
            {
              Sc_sim.Engine.default_config with
              Sc_sim.Engine.seed = "transport-lossy";
              epochs = 3;
              faults = T.lossy ~drop:0.3 ~tamper:0.05 ();
            }
        in
        check Alcotest.bool "audits ran" true
          (stats.Sc_sim.Engine.outcomes <> []);
        check Alcotest.bool "retries happened" true
          (cv "transport.retry" - retry0 > 0);
        check Alcotest.int "no unattributed honest flags" 0
          stats.Sc_sim.Engine.false_alarms;
        (* attempts = rpc + retry must hold globally. *)
        check Alcotest.int "attempt ledger" 0
          (cv "transport.attempts" - (cv "transport.rpc" + cv "transport.retry")));
  ]

let suite = policy_tests @ fault_tests @ endpoint_tests @ engine_tests
