open Sc_bignum
open Sc_ec
module Params = Sc_pairing.Params
module Tate = Sc_pairing.Tate
module Hash_g1 = Sc_pairing.Hash_g1

let prm = Lazy.force Util.toy_params
let g = prm.Params.g
let bs = Util.fresh_bs "pairing-tests"
let gt = Alcotest.testable Sc_field.Fp2.pp Tate.gt_equal

let gen_scalar =
  let open QCheck2.Gen in
  let* bytes = string_size ~gen:char (return 16) in
  return (Nat.add Nat.one (Nat.rem (Nat.of_bytes_be bytes) (Nat.sub prm.Params.q Nat.two)))

let unit_tests =
  let open Util in
  [
    case "parameter structure" (fun () ->
        check Alcotest.bool "p = 3 mod 4" true (Nat.rem_int prm.Params.p 4 = 3);
        check Alcotest.bool "p+1 = c*q" true
          (Nat.equal (Nat.add prm.Params.p Nat.one)
             (Nat.mul prm.Params.cofactor prm.Params.q));
        check Alcotest.bool "generator in subgroup" true
          (Params.in_subgroup prm g));
    case "non-degeneracy: e(G,G) != 1" (fun () ->
        check Alcotest.bool "nondegen" false
          (Tate.gt_is_one (Tate.pairing prm g g)));
    case "pairing with infinity is 1" (fun () ->
        check gt "e(O,G)" Tate.gt_one (Tate.pairing prm Curve.infinity g);
        check gt "e(G,O)" Tate.gt_one (Tate.pairing prm g Curve.infinity));
    case "gt element has order q" (fun () ->
        let e = Tate.pairing prm g g in
        check gt "e^q = 1" Tate.gt_one (Tate.gt_pow prm e prm.Params.q);
        (* and not smaller obvious order *)
        check Alcotest.bool "e^2 != 1" false
          (Tate.gt_is_one (Tate.gt_pow prm e Nat.two)));
    case "symmetry: e(aG, bG) = e(bG, aG)" (fun () ->
        let a = Params.random_scalar prm ~bytes_source:bs in
        let b = Params.random_scalar prm ~bytes_source:bs in
        let pa = Curve.mul prm.Params.curve a g in
        let pb = Curve.mul prm.Params.curve b g in
        check gt "symmetric" (Tate.pairing prm pa pb) (Tate.pairing prm pb pa));
    case "known bilinearity identity e(2G,3G) = e(G,G)^6" (fun () ->
        let p2 = Curve.mul_int prm.Params.curve 2 g in
        let p3 = Curve.mul_int prm.Params.curve 3 g in
        check gt "2*3"
          (Tate.gt_pow prm (Tate.pairing prm g g) (Nat.of_int 6))
          (Tate.pairing prm p2 p3));
    case "gt inverse by conjugation" (fun () ->
        let e = Tate.pairing prm g g in
        check gt "e * conj(e) = 1" Tate.gt_one (Tate.gt_mul prm e (Tate.gt_inv prm e)));
    case "gt serialization round trip" (fun () ->
        let e = Tate.pairing prm g g in
        match Tate.gt_of_bytes prm (Tate.gt_to_bytes prm e) with
        | Some e' -> check gt "round trip" e e'
        | None -> Alcotest.fail "decode failed");
    case "gt_of_bytes rejects wrong length" (fun () ->
        check Alcotest.bool "short rejected" true
          (Tate.gt_of_bytes prm "abc" = None));
    case "hash_to_point deterministic, in subgroup, distinct" (fun () ->
        let h1 = Hash_g1.hash_to_point prm "msg-1" in
        let h1' = Hash_g1.hash_to_point prm "msg-1" in
        let h2 = Hash_g1.hash_to_point prm "msg-2" in
        check Alcotest.bool "deterministic" true (Curve.equal h1 h1');
        check Alcotest.bool "distinct" false (Curve.equal h1 h2);
        check Alcotest.bool "subgroup" true (Params.in_subgroup prm h1);
        check Alcotest.bool "not infinity" false (Curve.is_infinity h1));
    case "hash_to_scalar lands in [1, q)" (fun () ->
        for i = 0 to 30 do
          let s = Hash_g1.hash_to_scalar prm (string_of_int i) in
          if Nat.is_zero s || Nat.compare s prm.Params.q >= 0
          then Alcotest.fail "out of range"
        done);
    case "pairing of hashed points is non-degenerate" (fun () ->
        let h1 = Hash_g1.hash_to_point prm "a" in
        let h2 = Hash_g1.hash_to_point prm "b" in
        check Alcotest.bool "nontrivial" false
          (Tate.gt_is_one (Tate.pairing prm h1 h2)));
    case "pairing counter increments" (fun () ->
        Tate.reset_pairing_count ();
        ignore (Tate.pairing prm g g);
        ignore (Tate.pairing prm g g);
        check Alcotest.int "2 pairings" 2 (Tate.pairings_performed ()));
    case "generate with explicit bits_p" (fun () ->
        let drbg = Sc_hash.Drbg.create ~seed:"gen-test" in
        let p =
          Params.generate ~bits_p:96 ~bits_q:48
            ~bytes_source:(Sc_hash.Drbg.bytes_source drbg) ()
        in
        check Alcotest.int "p bits" 96 (Nat.bit_length p.Params.p);
        check Alcotest.int "q bits" 48 (Nat.bit_length p.Params.q);
        check Alcotest.bool "pairing works" false
          (Tate.gt_is_one (Tate.pairing p p.Params.g p.Params.g)));
    case "projective Miller loop matches affine reference" (fun () ->
        for i = 1 to 8 do
          let a = Params.random_scalar prm ~bytes_source:bs in
          let b = Params.random_scalar prm ~bytes_source:bs in
          let pa = Curve.mul prm.Params.curve a g in
          let pb = Curve.mul prm.Params.curve b g in
          if
            not
              (Tate.gt_equal (Tate.pairing prm pa pb)
                 (Tate.pairing_affine prm pa pb))
          then Alcotest.failf "mismatch at sample %d" i
        done;
        check gt "also at the generator" (Tate.pairing prm g g)
          (Tate.pairing_affine prm g g));
    case "of_hex validates structure" (fun () ->
        Alcotest.check_raises "bad cofactor"
          (Invalid_argument "Params: p + 1 <> cofactor * q") (fun () ->
            ignore
              (Params.of_hex ~p:(Nat.to_hex prm.Params.p)
                 ~q:(Nat.to_hex prm.Params.q) ~cofactor:"5" ~gx:"1" ~gy:"1")));
  ]

(* The Montgomery-domain projective hot path against the affine
   Barrett-domain oracle, on both parameter sets. *)
let cross_validation_tests =
  let open Util in
  let cross_check name prm n =
    case name (fun () ->
        let bs = fresh_bs ("cross-" ^ name) in
        let g = prm.Params.g in
        for i = 1 to n do
          let a = Params.random_scalar prm ~bytes_source:bs in
          let b = Params.random_scalar prm ~bytes_source:bs in
          let pa = Curve.mul prm.Params.curve a g in
          let pb = Curve.mul prm.Params.curve b g in
          if
            not
              (Tate.gt_equal (Tate.pairing prm pa pb)
                 (Tate.pairing_affine prm pa pb))
          then Alcotest.failf "mismatch at sample %d" i
        done)
  in
  [
    cross_check "montgomery projective = affine oracle, 50 pairs (toy)" prm 50;
    cross_check "montgomery projective = affine oracle, 50 pairs (small)"
      (Lazy.force Params.small) 50;
  ]

let multi_pairing_tests =
  let open Util in
  [
    case "multi_pairing equals the product of pairings" (fun () ->
        let pairs =
          List.init 4 (fun _ ->
              let a = Params.random_scalar prm ~bytes_source:bs in
              let b = Params.random_scalar prm ~bytes_source:bs in
              ( Curve.mul prm.Params.curve a g,
                Curve.mul prm.Params.curve b g ))
        in
        let product =
          List.fold_left
            (fun acc (p, q) -> Tate.gt_mul prm acc (Tate.pairing prm p q))
            Tate.gt_one pairs
        in
        check gt "product" product (Tate.multi_pairing prm pairs));
    case "multi_pairing bilinearity: [(aP,Q);(P,bQ)] = e(P,Q)^(a+b)" (fun () ->
        let a = Params.random_scalar prm ~bytes_source:bs in
        let b = Params.random_scalar prm ~bytes_source:bs in
        let p = Curve.mul prm.Params.curve (Nat.of_int 5) g in
        let q = Curve.mul prm.Params.curve (Nat.of_int 7) g in
        let pa = Curve.mul prm.Params.curve a p in
        let qb = Curve.mul prm.Params.curve b q in
        check gt "e(aP,Q)*e(P,bQ)"
          (Tate.gt_pow prm (Tate.pairing prm p q)
             (Nat.rem (Nat.add a b) prm.Params.q))
          (Tate.multi_pairing prm [ pa, q; p, qb ]));
    case "multi_pairing of the empty list is one" (fun () ->
        check gt "empty" Tate.gt_one (Tate.multi_pairing prm []));
    case "multi_pairing skips infinity pairs" (fun () ->
        check gt "with infinity"
          (Tate.pairing prm g g)
          (Tate.multi_pairing prm
             [ g, g; Curve.infinity, g; g, Curve.infinity ]));
    case "multi_pairing counts as one pairing" (fun () ->
        Tate.reset_pairing_count ();
        ignore (Tate.multi_pairing prm [ g, g; g, g; g, g ]);
        check Alcotest.int "one" 1 (Tate.pairings_performed ());
        Tate.reset_pairing_count ();
        ignore (Tate.multi_pairing prm [ Curve.infinity, g ]);
        check Alcotest.int "all-skipped counts zero" 0
          (Tate.pairings_performed ()));
    case "gt_inv inverts non-unitary elements too" (fun () ->
        (* 2 + 0i is not unitary; the guarded gt_inv must still return
           a true inverse rather than the conjugate. *)
        let two = Sc_field.Fp2.of_base (Sc_field.Fp.of_int prm.Params.fp 2) in
        check gt "2 * 2^-1 = 1" Tate.gt_one
          (Tate.gt_mul prm two (Tate.gt_inv prm two)));
  ]

let property_tests =
  let open Util in
  [
    qcheck ~count:15 "bilinearity e(aG,bG) = e(G,G)^(ab)"
      (QCheck2.Gen.pair gen_scalar gen_scalar) (fun (a, b) ->
        let pa = Curve.mul prm.Params.curve a g in
        let pb = Curve.mul prm.Params.curve b g in
        let lhs = Tate.pairing prm pa pb in
        let rhs =
          Tate.gt_pow prm (Tate.pairing prm g g)
            (Nat.rem (Nat.mul a b) prm.Params.q)
        in
        Tate.gt_equal lhs rhs);
    qcheck ~count:15 "left linearity e(aG,Q) = e(G,Q)^a" gen_scalar (fun a ->
        let pa = Curve.mul prm.Params.curve a g in
        let h = Hash_g1.hash_to_point prm "fixed" in
        Tate.gt_equal (Tate.pairing prm pa h)
          (Tate.gt_pow prm (Tate.pairing prm g h) a));
    qcheck ~count:15 "gt_pow additive in exponent"
      (QCheck2.Gen.pair gen_scalar gen_scalar) (fun (a, b) ->
        let e = Tate.pairing prm g g in
        Tate.gt_equal
          (Tate.gt_mul prm (Tate.gt_pow prm e a) (Tate.gt_pow prm e b))
          (Tate.gt_pow prm e (Nat.rem (Nat.add a b) prm.Params.q)));
  ]

(* Fixed-base precomputation: replayed line tables against the live
   Miller loop, the hit/miss bookkeeping of the per-Params caches, and
   their behaviour under concurrent forcing from several domains. *)
let precomp_tests =
  let open Util in
  let module Telemetry = Sc_telemetry.Telemetry in
  let equiv name prm n =
    case name (fun () ->
        let bs = fresh_bs ("pairing-precomp-" ^ name) in
        let g = prm.Params.g in
        let pc = Tate.precompute prm g in
        for i = 1 to n do
          let a = Params.random_scalar prm ~bytes_source:bs in
          let pa = Curve.mul prm.Params.curve a g in
          if
            not
              (Tate.gt_equal
                 (Tate.pairing_precomp prm pa pc)
                 (Tate.pairing prm pa g))
          then Alcotest.failf "mismatch at sample %d" i
        done)
  in
  [
    equiv "pairing_precomp = pairing, random first args (toy)" prm 20;
    equiv "pairing_precomp = pairing, random first args (small)"
      (Lazy.force Params.small) 6;
    case "pairing_precomp with infinity argument is 1" (fun () ->
        let pc = Tate.precompute prm g in
        check gt "e(O, g)" Tate.gt_one
          (Tate.pairing_precomp prm Curve.infinity pc));
    case "multi_pairing_precomp equals multi_pairing" (fun () ->
        let terms =
          List.init 4 (fun _ ->
              let a = Params.random_scalar prm ~bytes_source:bs in
              let b = Params.random_scalar prm ~bytes_source:bs in
              ( Curve.mul prm.Params.curve a g,
                Curve.mul prm.Params.curve b g ))
        in
        check gt "product"
          (Tate.multi_pairing prm terms)
          (Tate.multi_pairing_precomp prm
             (List.map (fun (x, y) -> x, Tate.precomp_for prm y) terms)));
    case "precomp caches count one miss then hits" (fun () ->
        let bs = fresh_bs "precomp-counters" in
        let fresh =
          Curve.mul prm.Params.curve
            (Params.random_scalar prm ~bytes_source:bs)
            g
        in
        let h0 = Telemetry.counter_value "pairing.precomp.hit" in
        let m0 = Telemetry.counter_value "pairing.precomp.miss" in
        let pc1 = Tate.precomp_for prm fresh in
        let pc2 = Tate.precomp_for prm fresh in
        check Alcotest.int "one miss"
          (m0 + 1)
          (Telemetry.counter_value "pairing.precomp.miss");
        check Alcotest.int "one hit"
          (h0 + 1)
          (Telemetry.counter_value "pairing.precomp.hit");
        check Alcotest.bool "hit returns the cached table" true (pc1 == pc2));
    case "pairing_precomp rejects tables from another parameter set"
      (fun () ->
        let small = Lazy.force Params.small in
        let pc = Tate.precompute prm g in
        Alcotest.check_raises "mismatch"
          (Invalid_argument
             "Tate.pairing_precomp: precomp from a different parameter set")
          (fun () ->
            ignore (Tate.pairing_precomp small small.Params.g pc)));
    case "precomp_for caches are domain-race safe" (fun () ->
        let bs = fresh_bs "precomp-race" in
        let pts =
          List.init 6 (fun _ ->
              Curve.mul prm.Params.curve
                (Params.random_scalar prm ~bytes_source:bs)
                g)
        in
        let m0 = Telemetry.counter_value "pairing.precomp.miss" in
        let work () =
          List.map
            (fun pt -> Sc_pairing.Params.precomp_for prm pt, Tate.precomp_for prm pt)
            pts
        in
        let others = List.init 3 (fun _ -> Domain.spawn work) in
        let mine = work () in
        let results = mine :: List.map Domain.join others in
        List.iter
          (fun r ->
            List.iter2
              (fun (c1, l1) (c2, l2) ->
                check Alcotest.bool "same comb table" true (c1 == c2);
                check Alcotest.bool "same line table" true (l1 == l2))
              mine r)
          results;
        (* Double-check locking: each point computed exactly once per
           cache, no matter how many domains raced on it. *)
        check Alcotest.int "each point computed once per cache"
          (2 * List.length pts)
          (Telemetry.counter_value "pairing.precomp.miss" - m0));
  ]

let suite =
  unit_tests @ cross_validation_tests @ multi_pairing_tests @ precomp_tests
  @ property_tests
