(* Property fuzzing of the wire codec: round trips over a generator
   covering every message constructor, and robustness of decode
   against truncation and bit flips — a mangled encoding must yield a
   clean [Wire.Decode_error], never an uncaught exception, however the
   bytes were cut or flipped. *)

module Wire = Seccloud.Wire
module Task = Sc_compute.Task
module Protocol = Sc_audit.Protocol
module Gen = QCheck2.Gen

let system = Lazy.force Util.shared_system
let pub = Seccloud.System.public system

(* Crypto fixtures are expensive, so the generator recombines a fixed
   pool of signed material with freely generated cheap fields; every
   constructor is still exercised with several shapes. *)
let alice = Seccloud.User.create system ~id:"alice"

let upload =
  Seccloud.User.sign_file alice ~cs_id:"cs-1" ~file:"fz"
    (List.init 4 (fun i -> Sc_storage.Block.encode_ints [ i; i * 3; 7 - i ]))

let cloud = Seccloud.Cloud.create system ~id:"cs-1" ()
let () = Seccloud.Cloud.accept_upload_unchecked cloud upload

let service =
  [
    { Task.func = Task.Sum; position = 0 };
    { Task.func = Task.Dot [ 2; -1 ]; position = 1 };
    { Task.func = Task.Compose (Task.Max, [ Task.Sum; Task.Count ]); position = 2 };
  ]

let execution = Seccloud.Cloud.execute cloud ~owner:"alice" ~file:"fz" service
let commitment = Protocol.commitment_of_execution execution

let warrant =
  Seccloud.User.delegate_audit alice ~now:0.0 ~lifetime:1e9 ~scope:"fuzz"

let challenge =
  Protocol.make_challenge
    ~drbg:(Sc_hash.Drbg.create ~seed:"fuzz-challenge")
    ~n_tasks:3 ~samples:2 ~warrant

let responses =
  Option.get (Protocol.respond pub ~now:1.0 execution challenge)

let read_results =
  List.map
    (fun i ->
      i, Sc_storage.Server.read (Seccloud.Cloud.storage cloud) ~file:"fz" ~index:i)
    [ 0; 1; 2; 3; 99 ]

let gen_string = Gen.(string_size ~gen:printable (int_bound 12))
let gen_indices = Gen.(list_size (int_bound 6) (int_bound 40))

let gen_task =
  Gen.oneof
    [
      Gen.return Task.Sum;
      Gen.return Task.Count;
      Gen.return Task.Max;
      Gen.map (fun ws -> Task.Dot ws) Gen.(list_size (int_bound 4) (int_range (-9) 9));
      Gen.map (fun cs -> Task.Polynomial cs) Gen.(list_size (int_bound 3) (int_range (-5) 5));
      Gen.return (Task.Compose (Task.Sum, [ Task.Max; Task.Count ]));
    ]

let gen_service =
  Gen.(
    list_size (int_range 1 4)
      (map2 (fun f p -> { Task.func = f; position = p }) gen_task (int_bound 15)))

let gen_read_items =
  (* Sublists of the fixed read-result pool, missing entries included. *)
  Gen.map
    (fun mask ->
      List.filteri (fun i _ -> (mask lsr i) land 1 = 1) read_results)
    Gen.(int_bound 31)

let gen_msg =
  Gen.oneof
    [
      Gen.return (Wire.Upload upload);
      Gen.map2
        (fun file indices -> Wire.Storage_challenge { file; indices })
        gen_string gen_indices;
      Gen.map (fun items -> Wire.Storage_response items) gen_read_items;
      Gen.map3
        (fun owner file service -> Wire.Compute_request { owner; file; service })
        gen_string gen_string gen_service;
      Gen.map
        (fun results ->
          Wire.Compute_commitment
            { results = Array.of_list results; commitment })
        Gen.(list_size (int_bound 5) (int_range (-1000) 1000));
      Gen.map2
        (fun owner file -> Wire.Audit_challenge { owner; file; challenge })
        gen_string gen_string;
      Gen.map
        (fun mask ->
          Wire.Audit_response
            (List.filteri (fun i _ -> (mask lsr i) land 1 = 1) responses))
        Gen.(int_bound 3);
      Gen.map2 (fun ok detail -> Wire.Ack { ok; detail }) Gen.bool gen_string;
    ]

let kind_coverage =
  (* The generator above must be able to produce every constructor. *)
  Util.case "one-of-each-kind deterministic round trip" (fun () ->
      let all =
        [
          Wire.Upload upload;
          Wire.Storage_challenge { file = "fz"; indices = [ 0; 3 ] };
          Wire.Storage_response read_results;
          Wire.Compute_request { owner = "alice"; file = "fz"; service };
          Wire.Compute_commitment { results = [| 1; -2 |]; commitment };
          Wire.Audit_challenge { owner = "alice"; file = "fz"; challenge };
          Wire.Audit_response responses;
          Wire.Ack { ok = false; detail = "nope" };
        ]
      in
      Util.check
        Alcotest.(list string)
        "all kinds" Wire.kinds
        (List.map Wire.kind_name all);
      List.iter
        (fun m ->
          if Wire.decode pub (Wire.encode pub m) <> m then
            Alcotest.failf "round trip changed a %s" (Wire.kind_name m))
        all)

(* Trace-context envelope fixtures: the unsigned envelope in front of
   every wire message.  A corrupted context must be dropped without
   ever touching payload verification, and framing damage (bad flag,
   cut context) must fail typed. *)

module Envelope = Seccloud.Envelope
module Trace_context = Sc_telemetry.Trace_context

let gen_ctx =
  (* Distinct deterministic contexts: fresh_trace is an atomic
     sequence, span ids are small ints. *)
  Gen.map
    (fun span -> { Trace_context.trace = Trace_context.fresh_trace (); span })
    Gen.(int_bound 10_000)

let suite =
  [
    kind_coverage;
    Util.qcheck ~count:150 "decode inverts encode for every message kind"
      gen_msg
      (fun m -> Wire.decode pub (Wire.encode pub m) = m);
    Util.qcheck ~count:150 "re-encoding a decoded message is byte-identical"
      gen_msg
      (fun m ->
        let bytes = Wire.encode pub m in
        Wire.encode pub (Wire.decode pub bytes) = bytes);
    Util.qcheck ~count:200 "truncation always raises a clean Decode_error"
      Gen.(pair gen_msg (int_bound 1_000_000))
      (fun (m, cut) ->
        let bytes = Wire.encode pub m in
        let cut = cut mod String.length bytes in
        match Wire.decode pub (String.sub bytes 0 cut) with
        | _ -> false (* a strict prefix must never parse *)
        | exception Wire.Decode_error _ -> true
        | exception _ -> false);
    Util.qcheck ~count:200 "bit flips decode fully or fail typed, never raise"
      Gen.(triple gen_msg (int_bound 1_000_000) (int_bound 7))
      (fun (m, pos, bit) ->
        let bytes = Wire.encode pub m in
        let pos = pos mod String.length bytes in
        let flipped =
          String.mapi
            (fun i c ->
              if i = pos then Char.chr (Char.code c lxor (1 lsl bit)) else c)
            bytes
        in
        match Wire.decode pub flipped with
        | _ -> true (* the flip may land in free-form content *)
        | exception Wire.Decode_error _ -> true
        | exception _ -> false);
    Util.qcheck ~count:150 "envelope round-trips context and payload"
      Gen.(pair gen_msg (option gen_ctx))
      (fun (m, ctx) ->
        let payload = Wire.encode pub m in
        let ctx', payload' = Envelope.unwrap (Envelope.wrap ?ctx payload) in
        ctx' = ctx && payload' = payload);
    Util.qcheck ~count:200
      "bit flip in the context region drops the context, payload untouched"
      Gen.(triple gen_msg gen_ctx (pair (int_bound 1_000_000) (int_bound 7)))
      (fun (m, ctx, (pos, bit)) ->
        let payload = Wire.encode pub m in
        let framed = Envelope.wrap ~ctx payload in
        (* Offsets 1 .. header_bytes-1: the context bytes + checksum.
           A single-bit flip always breaks the XOR-fold, so the context
           must come back [None] while the payload decodes as before. *)
        let pos = 1 + (pos mod (Envelope.header_bytes - 1)) in
        let flipped =
          String.mapi
            (fun i c ->
              if i = pos then Char.chr (Char.code c lxor (1 lsl bit)) else c)
            framed
        in
        let ctx', payload' = Envelope.unwrap flipped in
        ctx' = None && payload' = payload && Wire.decode pub payload' = m);
    Util.qcheck ~count:200 "truncated context fails typed, never raises raw"
      Gen.(pair gen_ctx (int_bound 1_000_000))
      (fun (ctx, cut) ->
        let framed = Envelope.wrap ~ctx "" in
        let cut = cut mod Envelope.header_bytes in
        match Envelope.unwrap (String.sub framed 0 cut) with
        | _ -> false (* a cut envelope header must never parse *)
        | exception Wire.Decode_error _ -> true
        | exception _ -> false);
    Util.qcheck ~count:100 "unknown flag byte fails typed"
      Gen.(pair gen_msg (int_range 2 255))
      (fun (m, flag) ->
        let payload = Wire.encode pub m in
        let framed = String.make 1 (Char.chr flag) ^ payload in
        match Envelope.unwrap framed with
        | _ -> false
        | exception Wire.Decode_error _ -> true
        | exception _ -> false);
  ]
