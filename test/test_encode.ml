(* Canonical message encoding: the delimiter-injection regression the
   old Printf formats were vulnerable to, plus injectivity (via decode
   round-trip) of Sc_hash.Encode. *)

module Encode = Sc_hash.Encode
module Block = Sc_storage.Block
module Dynamic = Sc_storage.Dynamic

(* The pre-fix encodings, reproduced verbatim so the collision stays
   on record: these MUST collide (proving the old format forgeable)
   while the canonical replacements must not. *)
let old_block_message ~file ~index ~data =
  Printf.sprintf "block|%s|%d|%s" file index data

let old_dblock_message ~file ~index ~version ~payload =
  Printf.sprintf "dblock|%s|%d|%d|%s" file index version payload

let encode_tests =
  let open Util in
  [
    case "regression: old block encoding collides under delimiter injection"
      (fun () ->
        (* file "f|1" at index 2 vs file "f" at index 1 with a payload
           that donates "2|": one signature would cover both. *)
        let a = old_block_message ~file:"f|1" ~index:2 ~data:"x" in
        let b = old_block_message ~file:"f" ~index:1 ~data:"2|x" in
        check Alcotest.string "old encoding is ambiguous (forgeable)" a b;
        let msg_a =
          Block.signing_message { Block.file = "f|1"; index = 2; data = "x" }
        in
        let msg_b =
          Block.signing_message { Block.file = "f"; index = 1; data = "2|x" }
        in
        if String.equal msg_a msg_b then
          Alcotest.fail "canonical encoding must separate the two triples");
    case "regression: old dynamic encoding collides, canonical does not"
      (fun () ->
        let a = old_dblock_message ~file:"f|1" ~index:2 ~version:3 ~payload:"p" in
        let b = old_dblock_message ~file:"f" ~index:1 ~version:2 ~payload:"3|p" in
        check Alcotest.string "old dblock encoding is ambiguous" a b;
        let msg_a =
          Dynamic.signing_message ~file:"f|1" ~index:2 ~version:3 ~payload:"p"
        in
        let msg_b =
          Dynamic.signing_message ~file:"f" ~index:1 ~version:2 ~payload:"3|p"
        in
        if String.equal msg_a msg_b then
          Alcotest.fail "canonical dblock encoding must not collide");
    case "a cross-bound signature no longer verifies" (fun () ->
        (* End-to-end: sign the blocks of file "f|1" and try to pass a
           signed block off as belonging to file "f" at a shifted
           index with a delimiter-donating payload — exactly the
           forgery the old encoding admitted. *)
        let system = Lazy.force Util.shared_system in
        let pub = Seccloud.System.public system in
        let user = Seccloud.User.create system ~id:"enc-alice" in
        let upload =
          Seccloud.User.sign_file user ~cs_id:"cs-1" ~file:"f|1"
            [ "x"; "y"; "z" ]
        in
        let sb = upload.Sc_storage.Signer.blocks.(2) in
        check Alcotest.string "payload as signed" "z" sb.Sc_storage.Signer.block.Block.data;
        let cs_key = Seccloud.System.cs_key system "cs-1" in
        (* Honest claim verifies... *)
        check Alcotest.bool "honest claim" true
          (Sc_storage.Signer.verify_block pub ~verifier_key:cs_key ~role:`Cs
             ~owner:"enc-alice" sb.Sc_storage.Signer.block sb);
        (* ...the cross-bound claim (old encoding: same message!) fails. *)
        let forged = { Block.file = "f"; index = 1; data = "2|z" } in
        check Alcotest.string "old encodings agree"
          (old_block_message ~file:"f|1" ~index:2 ~data:"z")
          (old_block_message ~file:"f" ~index:1 ~data:"2|z");
        check Alcotest.bool "cross-bound claim rejected" false
          (Sc_storage.Signer.verify_block pub ~verifier_key:cs_key ~role:`Cs
             ~owner:"enc-alice" forged sb));
    case "decode round-trips edge cases" (fun () ->
        List.iter
          (fun parts ->
            check
              Alcotest.(option (list string))
              "round-trip" (Some parts)
              (Encode.decode (Encode.canonical parts)))
          [
            [];
            [ "" ];
            [ ""; "" ];
            [ "a" ];
            [ "1:2"; ":" ];
            [ "block"; "f|1"; "2"; "x" ];
            [ "12:34:"; "56" ];
            [ String.make 300 ':' ];
          ]);
    case "decode rejects non-canonical input" (fun () ->
        List.iter
          (fun s ->
            match Encode.decode s with
            | None -> ()
            | Some _ -> Alcotest.failf "decode accepted %S" s)
          [
            "x";           (* no length *)
            "1:";          (* truncated payload *)
            "2:a";         (* short payload *)
            "1:ab";        (* trailing bytes after payload *)
            "01:a";        (* leading-zero length *)
            "1a";          (* missing separator *)
            ":";           (* empty length *)
            "-1:";         (* negative length *)
            "99999999999999999999:a"; (* length overflow *)
          ]);
    case "frame concatenates to canonical; digest matches" (fun () ->
        let parts = [ "tag"; "a:b"; ""; "17" ] in
        check Alcotest.string "frame = canonical"
          (Encode.canonical parts)
          (String.concat "" (Encode.frame parts));
        check Alcotest.string "digest = sha256 of canonical"
          (Sc_hash.Sha256.digest (Encode.canonical parts))
          (Encode.digest parts));
    case "root statement round-trips through canonical parse" (fun () ->
        (* Dynamic's signed root statement uses the same framing; a
           '|' in the file name must survive. *)
        let root = Sc_hash.Sha256.digest "root-payload" in
        let msg = Dynamic.root_statement_msg ~file:"dir|file" ~count:7 ~root in
        match Dynamic.parse_root_statement msg with
        | Some (file, count, root_hex) ->
          check Alcotest.string "file" "dir|file" file;
          check Alcotest.int "count" 7 count;
          check Alcotest.string "root" (Sc_hash.Sha256.hex_of_digest root)
            root_hex
        | None -> Alcotest.fail "canonical root statement failed to parse");
  ]

let property_tests =
  let open Util in
  let gen_part =
    QCheck2.Gen.(string_size ~gen:(char_range '\000' '\255') (int_bound 40))
  in
  let gen_parts = QCheck2.Gen.(list_size (int_bound 8) gen_part) in
  [
    qcheck ~count:500 "decode inverts canonical (injectivity)" gen_parts
      (fun parts -> Encode.decode (Encode.canonical parts) = Some parts);
    qcheck ~count:500 "distinct part lists encode distinctly"
      QCheck2.Gen.(pair gen_parts gen_parts)
      (fun (a, b) ->
        a = b || not (String.equal (Encode.canonical a) (Encode.canonical b)));
    qcheck ~count:300 "block signing message separates adversarial triples"
      QCheck2.Gen.(
        pair
          (triple gen_part (int_bound 50) gen_part)
          (triple gen_part (int_bound 50) gen_part))
      (fun ((f1, i1, d1), (f2, i2, d2)) ->
        let m1 = Block.signing_message { Block.file = f1; index = i1; data = d1 } in
        let m2 = Block.signing_message { Block.file = f2; index = i2; data = d2 } in
        if (f1, i1, d1) = (f2, i2, d2) then String.equal m1 m2
        else not (String.equal m1 m2));
  ]

let suite = encode_tests @ property_tests
