(* Telemetry layer: registry semantics, span nesting, exporters, and
   the pairing-cost invariants the observability PR is meant to lock
   in (one aggregate equation per batched audit, not 2t pairings). *)

module Telemetry = Sc_telemetry.Telemetry
module Tate = Sc_pairing.Tate

open Util

(* ------------------------------------------------------------------ *)
(* Tiny JSON field scraping for JSONL trace lines (no json parser in
   the test deps; the emitter writes flat one-line objects).           *)
(* ------------------------------------------------------------------ *)

let field line key =
  let marker = Printf.sprintf "\"%s\":" key in
  let mlen = String.length marker in
  let rec find i =
    if i + mlen > String.length line then None
    else if String.sub line i mlen = marker then Some (i + mlen)
    else find (i + 1)
  in
  match find 0 with
  | None -> None
  | Some start ->
    let stop = ref start in
    let depth = ref 0 in
    let in_str = ref false in
    (try
       while true do
         let c = line.[!stop] in
         (if !in_str then (
            if c = '\\' then incr stop
            else if c = '"' then in_str := false)
          else
            match c with
            | '"' -> in_str := true
            | '{' | '[' -> incr depth
            | '}' | ']' when !depth > 0 -> decr depth
            | ',' | '}' | ']' -> raise Exit
            | _ -> ());
         incr stop
       done
     with Exit | Invalid_argument _ -> ());
    Some (String.sub line start (!stop - start))

let float_field line key =
  match field line key with
  | Some s -> float_of_string s
  | None -> Alcotest.failf "field %s missing in %s" key line

let counters =
  [
    case "incr and add accumulate" (fun () ->
        let c = Telemetry.counter "test.counter.a" in
        Telemetry.reset_counter c;
        Telemetry.incr c;
        Telemetry.incr c;
        Telemetry.add c 40;
        check Alcotest.int "value" 42 (Telemetry.value c));
    case "same name interns to the same counter" (fun () ->
        let a = Telemetry.counter "test.counter.intern" in
        let b = Telemetry.counter "test.counter.intern" in
        Telemetry.reset_counter a;
        Telemetry.incr a;
        check Alcotest.int "visible via second handle" 1 (Telemetry.value b));
    case "counter_value of absent name is 0" (fun () ->
        check Alcotest.int "absent" 0
          (Telemetry.counter_value "test.counter.never-created"));
    case "kind mismatch is rejected" (fun () ->
        ignore (Telemetry.counter "test.kind.clash");
        match Telemetry.gauge "test.kind.clash" with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "expected Invalid_argument");
    case "reset () zeroes values but keeps handles live" (fun () ->
        let c = Telemetry.counter "test.counter.reset" in
        Telemetry.add c 7;
        Telemetry.reset ();
        check Alcotest.int "zeroed" 0 (Telemetry.value c);
        Telemetry.incr c;
        check Alcotest.int "handle survives" 1
          (Telemetry.counter_value "test.counter.reset"));
  ]

let histograms =
  [
    case "bucket boundaries: first bound with v <= bound" (fun () ->
        let h =
          Telemetry.histogram ~buckets:[| 1.0; 10.0; 100.0 |] "test.hist.b"
        in
        List.iter (Telemetry.observe h) [ 0.5; 1.0; 1.5; 10.0; 99.9; 1000.0 ];
        match Telemetry.find "test.hist.b" with
        | Some (Telemetry.Histogram s) ->
          check Alcotest.(array (float 0.0)) "bounds" [| 1.0; 10.0; 100.0 |]
            s.Telemetry.bounds;
          check Alcotest.(array int) "counts incl. overflow" [| 2; 2; 1; 1 |]
            s.Telemetry.counts;
          check Alcotest.int "count" 6 s.Telemetry.count;
          check Alcotest.(float 1e-9) "sum" 1112.9 s.Telemetry.sum
        | _ -> Alcotest.fail "histogram not found");
    case "snapshot is isolated from later mutation" (fun () ->
        let c = Telemetry.counter "test.counter.snap" in
        Telemetry.reset_counter c;
        Telemetry.add c 3;
        let snap = Telemetry.snapshot () in
        Telemetry.add c 100;
        match List.assoc_opt "test.counter.snap" snap with
        | Some (Telemetry.Counter v) -> check Alcotest.int "frozen" 3 v
        | _ -> Alcotest.fail "counter missing from snapshot");
    case "dump_json mentions registered metrics" (fun () ->
        ignore (Telemetry.counter "test.counter.dumped");
        let js = Telemetry.dump_json () in
        check Alcotest.bool "object" true (String.length js > 0 && js.[0] = '{');
        let contains s sub =
          let n = String.length sub in
          let rec go i =
            i + n <= String.length s
            && (String.sub s i n = sub || go (i + 1))
          in
          go 0
        in
        check Alcotest.bool "has name" true
          (contains js "\"test.counter.dumped\""));
  ]

let spans =
  [
    case "nesting: parent id, depth, ordering, duration" (fun () ->
        let lines = ref [] in
        Telemetry.set_sink (Some (fun l -> lines := l :: !lines));
        Fun.protect
          ~finally:(fun () -> Telemetry.set_sink None)
          (fun () ->
            Telemetry.with_span ~name:"outer" (fun () ->
                check Alcotest.int "depth inside outer" 1
                  (Telemetry.current_depth ());
                Telemetry.with_span ~name:"inner"
                  ~attrs:[ "k", "v" ]
                  (fun () ->
                    check Alcotest.int "depth inside inner" 2
                      (Telemetry.current_depth ()))));
        check Alcotest.int "depth restored" 0 (Telemetry.current_depth ());
        match List.rev !lines with
        | [ inner; outer ] ->
          (* children close (and emit) before their parent *)
          check Alcotest.(option string) "inner name" (Some "\"inner\"")
            (field inner "name");
          check Alcotest.(option string) "outer parent null" (Some "null")
            (field outer "parent");
          check Alcotest.(option string) "inner parent = outer id"
            (field outer "id") (field inner "parent");
          check Alcotest.(option string) "outer depth" (Some "0")
            (field outer "depth");
          check Alcotest.(option string) "inner depth" (Some "1")
            (field inner "depth");
          check Alcotest.(option string) "attrs survive"
            (Some {|{"k":"v"}|}) (field inner "attrs");
          let s_out = float_field outer "start_us"
          and s_in = float_field inner "start_us"
          and d_out = float_field outer "dur_us"
          and d_in = float_field inner "dur_us" in
          check Alcotest.bool "child starts after parent" true
            (s_in >= s_out -. 1e-6 -. (1e-5 *. Float.max s_out 1.0));
          (* The JSON trace prints timestamps with 6 significant
             digits, so late in a long test run the quantization step
             exceeds any fixed epsilon; allow the relative error. *)
          check Alcotest.bool "child within parent" true
            (s_in +. d_in
            <= (s_out +. d_out +. 1e-6)
               +. (1e-5 *. Float.max (s_out +. d_out) 1.0))
        | ls -> Alcotest.failf "expected 2 trace lines, got %d" (List.length ls));
    case "with_span observes span.<name> histogram" (fun () ->
        Telemetry.reset ();
        let r = Telemetry.with_span ~name:"timed" (fun () -> 41 + 1) in
        check Alcotest.int "returns body result" 42 r;
        match Telemetry.find "span.timed" with
        | Some (Telemetry.Histogram s) ->
          check Alcotest.int "one observation" 1 s.Telemetry.count;
          check Alcotest.bool "non-negative duration" true
            (s.Telemetry.sum >= 0.0)
        | _ -> Alcotest.fail "span histogram missing");
    case "stack unwinds on exception" (fun () ->
        (try
           Telemetry.with_span ~name:"boom" (fun () -> failwith "boom")
         with Failure _ -> ());
        check Alcotest.int "depth back to 0" 0 (Telemetry.current_depth ()));
  ]

(* ------------------------------------------------------------------ *)
(* End-to-end cost accounting: the registry must report the batched
   audit at one aggregate pairing equation, not 2t pairings.           *)
(* ------------------------------------------------------------------ *)

let e2e =
  [
    case "Ibs.verify costs exactly one pairing equation" (fun () ->
        let system = Lazy.force shared_system in
        let pub = Seccloud.System.public system in
        let key = Seccloud.System.register_user system "tel-alice" in
        let s = Sc_ibc.Ibs.sign pub key ~bytes_source:bs "tel-msg" in
        let p0 = Tate.pairings_performed () in
        check Alcotest.bool "verifies" true
          (Sc_ibc.Ibs.verify pub ~signer:"tel-alice" ~msg:"tel-msg" s);
        check Alcotest.int "one equation" 1 (Tate.pairings_performed () - p0));
    case "batched storage audit is 1 multi-pairing, not 2t" (fun () ->
        let system = Lazy.force shared_system in
        let user = Seccloud.User.create system ~id:"tel-owner" in
        let cloud = Seccloud.Cloud.create system ~id:"cs-1" () in
        let payloads =
          List.init 16 (fun i ->
              Sc_storage.Block.encode_ints (List.init 4 (fun j -> i + j)))
        in
        check Alcotest.bool "stored" true
          (Seccloud.User.store user cloud ~file:"tel-file" payloads);
        let da = Seccloud.Agency.create system in
        let samples = 8 in
        let p0 = Tate.pairings_performed () in
        let report =
          Seccloud.Agency.audit_storage_batched da cloud ~owner:"tel-owner"
            ~file:"tel-file" ~samples
        in
        check Alcotest.bool "intact" true report.Seccloud.Agency.intact;
        check Alcotest.int "one aggregate equation" 1
          (Tate.pairings_performed () - p0));
    case "pairing breakdown counters reconcile with the total" (fun () ->
        let total = Telemetry.counter_value "pairing.count" in
        let parts =
          Telemetry.counter_value "pairing.single"
          + Telemetry.counter_value "pairing.multi"
          + Telemetry.counter_value "pairing.affine"
        in
        check Alcotest.int "total = single + multi + affine" total parts);
  ]

(* ------------------------------------------------------------------ *)
(* HDR quantiles: the log-bucketed estimator must stay within the
   documented 5% relative error of the exact nearest-rank quantile.   *)
(* ------------------------------------------------------------------ *)

let exact_quantile sorted p =
  let n = Array.length sorted in
  let rank = max 1 (min n (int_of_float (ceil (p *. float_of_int n)))) in
  sorted.(rank - 1)

let quantiles =
  let module Registry = Sc_telemetry.Registry in
  let module Gen = QCheck2.Gen in
  let h = Telemetry.histogram ~buckets:(Telemetry.log_buckets ()) "test.hdr" in
  (* Log-uniform samples clear of the first bucket's implied lower
     edge and of the overflow clamp. *)
  let gen_samples =
    Gen.(list_size (int_range 1 300) (map (fun x -> 10. ** x) (float_range (-1.8) 6.0)))
  in
  [
    case "quantile of an empty histogram is NaN-free zero count" (fun () ->
        Registry.reset_histogram h;
        match Telemetry.find "test.hdr" with
        | Some (Telemetry.Histogram s) ->
          check Alcotest.int "empty" 0 s.Telemetry.count
        | _ -> Alcotest.fail "histogram missing");
    Util.qcheck ~count:150
      "hdr quantile is within 5% of the exact nearest-rank quantile"
      QCheck2.Gen.(pair gen_samples (float_range 0.01 0.999))
      (fun (samples, p) ->
        Registry.reset_histogram h;
        List.iter (Telemetry.observe h) samples;
        let sorted = Array.of_list samples in
        Array.sort compare sorted;
        let exact = exact_quantile sorted p in
        let est =
          match Telemetry.find "test.hdr" with
          | Some (Telemetry.Histogram s) -> Telemetry.quantile s p
          | _ -> nan
        in
        Float.abs (est -. exact) <= (0.0501 *. exact) +. 1e-9);
  ]

(* ------------------------------------------------------------------ *)
(* Labeled families: bounded cardinality, sanitization, canonical
   registry cell names.                                               *)
(* ------------------------------------------------------------------ *)

let labels =
  let module Labels = Sc_telemetry.Labels in
  [
    case "cells intern under family{label=\"value\"}" (fun () ->
        let v = Labels.counter_vec ~label:"kind" "test.labels.basic" in
        Labels.incr v "upload";
        Labels.add v "upload" 2;
        Labels.incr v "ack";
        check Alcotest.int "upload cell" 3
          (Telemetry.counter_value "test.labels.basic{kind=\"upload\"}");
        check Alcotest.int "ack cell" 1
          (Telemetry.counter_value "test.labels.basic{kind=\"ack\"}");
        check Alcotest.int "cardinality" 2 (Labels.cardinality v));
    case "cardinality bound spills to the shared other cell" (fun () ->
        let v =
          Labels.counter_vec ~max_cells:4 ~label:"k" "test.labels.bounded"
        in
        for i = 1 to 10 do
          Labels.incr v (Printf.sprintf "v%d" i)
        done;
        check Alcotest.int "cardinality capped" 4 (Labels.cardinality v);
        check Alcotest.int "overflow cell absorbs the rest" 6
          (Telemetry.counter_value "test.labels.bounded{k=\"other\"}");
        check Alcotest.bool "overflow counter bumped" true
          (Telemetry.counter_value "telemetry.labels.overflow" >= 6));
    case "hostile label values are sanitized" (fun () ->
        let v = Labels.counter_vec ~label:"k" "test.labels.sane" in
        Labels.incr v "we ird\"}\n";
        check Alcotest.int "quoted metacharacters neutralized" 1
          (Telemetry.counter_value "test.labels.sane{k=\"we_ird___\"}"));
  ]

(* ------------------------------------------------------------------ *)
(* OpenMetrics exposition                                             *)
(* ------------------------------------------------------------------ *)

let openmetrics =
  let module Labels = Sc_telemetry.Labels in
  [
    case "render emits typed families, cumulative buckets and EOF" (fun () ->
        Telemetry.reset ();
        let c = Telemetry.counter "test.om.events" in
        Telemetry.add c 5;
        let v = Labels.counter_vec ~label:"kind" "test.om.byk" in
        Labels.incr v "a";
        Labels.incr v "b";
        let h =
          Telemetry.histogram ~buckets:[| 1.0; 10.0 |] "test.om.lat"
        in
        Telemetry.observe h 0.5;
        Telemetry.observe h 5.0;
        let text = Sc_telemetry.Openmetrics.render () in
        let has s =
          let sl = String.length s and tl = String.length text in
          let rec go i = i + sl <= tl && (String.sub text i sl = s || go (i + 1)) in
          check Alcotest.bool (Printf.sprintf "contains %S" s) true (go 0)
        in
        has "# TYPE test_om_events counter";
        has "test_om_events_total 5";
        has "test_om_byk_total{kind=\"a\"} 1";
        has "test_om_byk_total{kind=\"b\"} 1";
        has "# TYPE test_om_lat histogram";
        has "test_om_lat_bucket{le=\"1\"} 1";
        has "test_om_lat_bucket{le=\"+Inf\"} 2";
        has "test_om_lat_count 2";
        let rec last_line i =
          if i <= 0 then text
          else if text.[i - 1] = '\n' then String.sub text i (String.length text - i)
          else last_line (i - 1)
        in
        let trimmed = String.trim text in
        let _ = last_line in
        check Alcotest.bool "ends with EOF" true
          (String.length trimmed >= 5
          && String.sub trimmed (String.length trimmed - 5) 5 = "# EOF"));
  ]

(* ------------------------------------------------------------------ *)
(* Tracing: error tagging, open-span accounting, attrs, contexts      *)
(* ------------------------------------------------------------------ *)

let tracing =
  [
    case "exception tags the span error=1, bumps errors counter, re-raises"
      (fun () ->
        Telemetry.reset ();
        let lines = ref [] in
        Telemetry.set_sink (Some (fun l -> lines := l :: !lines));
        Fun.protect
          ~finally:(fun () -> Telemetry.set_sink None)
          (fun () ->
            (try
               Telemetry.with_span ~name:"failing" (fun () ->
                   failwith "kaboom")
             with Failure _ -> ()));
        check Alcotest.int "errors counter" 1
          (Telemetry.counter_value "span.failing.errors");
        check Alcotest.int "open spans drained" 0 (Telemetry.open_spans ());
        match !lines with
        | [ line ] ->
          check Alcotest.bool "error attr emitted" true
            (match field line "attrs" with
            | Some attrs ->
              let m = {|"error":"1"|} in
              let ml = String.length m in
              let rec go i =
                i + ml <= String.length attrs
                && (String.sub attrs i ml = m || go (i + 1))
              in
              go 0
            | None -> false)
        | ls -> Alcotest.failf "expected 1 line, got %d" (List.length ls));
    case "open_spans counts live spans across nesting" (fun () ->
        check Alcotest.int "none open" 0 (Telemetry.open_spans ());
        Telemetry.with_span ~name:"a" (fun () ->
            Telemetry.with_span ~name:"b" (fun () ->
                check Alcotest.int "two open" 2 (Telemetry.open_spans ())));
        check Alcotest.int "drained" 0 (Telemetry.open_spans ()));
    case "add_attr lands on the innermost open span" (fun () ->
        let lines = ref [] in
        Telemetry.set_sink (Some (fun l -> lines := l :: !lines));
        Fun.protect
          ~finally:(fun () -> Telemetry.set_sink None)
          (fun () ->
            Telemetry.with_span ~name:"outcomey" (fun () ->
                Telemetry.add_attr "outcome" "ok"));
        match !lines with
        | [ line ] ->
          check Alcotest.(option string) "attr present"
            (Some {|{"outcome":"ok"}|}) (field line "attrs")
        | ls -> Alcotest.failf "expected 1 line, got %d" (List.length ls));
    case "nested spans share one trace id; siblings of one request too"
      (fun () ->
        let lines = ref [] in
        Telemetry.set_sink (Some (fun l -> lines := l :: !lines));
        Fun.protect
          ~finally:(fun () -> Telemetry.set_sink None)
          (fun () ->
            Telemetry.with_span ~name:"root" (fun () ->
                Telemetry.with_span ~name:"kid1" (fun () -> ());
                Telemetry.with_span ~name:"kid2" (fun () -> ())));
        match List.filter_map (fun l -> field l "trace") !lines with
        | [ t1; t2; t3 ] ->
          check Alcotest.string "kid1 = root" t3 t1;
          check Alcotest.string "kid2 = root" t3 t2
        | _ -> Alcotest.fail "expected 3 traced lines");
    case "with_context grafts a root span onto a remote trace" (fun () ->
        let ctx =
          {
            Telemetry.trace = Sc_telemetry.Trace_context.fresh_trace ();
            span = 424242;
          }
        in
        let lines = ref [] in
        Telemetry.set_sink (Some (fun l -> lines := l :: !lines));
        Fun.protect
          ~finally:(fun () -> Telemetry.set_sink None)
          (fun () ->
            Telemetry.with_context (Some ctx) (fun () ->
                Telemetry.with_span ~name:"grafted" (fun () -> ())));
        match !lines with
        | [ line ] ->
          check Alcotest.(option string) "remote trace id"
            (Some
               (Printf.sprintf "%S"
                  (Sc_telemetry.Trace_context.to_hex ctx.Telemetry.trace)))
            (field line "trace");
          check Alcotest.(option string) "remote parent span"
            (Some "424242") (field line "parent")
        | ls -> Alcotest.failf "expected 1 line, got %d" (List.length ls));
  ]

(* ------------------------------------------------------------------ *)
(* The JSON reader used by the trace analyzer                          *)
(* ------------------------------------------------------------------ *)

let json_parser =
  let module Json = Sc_telemetry.Json in
  [
    case "parses an emitted span line back structurally" (fun () ->
        let line =
          {|{"name":"x","id":7,"parent":null,"depth":0,"trace":"ab12",|}
          ^ {|"start_us":1.5,"dur_us":2.25,"attrs":{"k":"v"}}|}
        in
        match Json.parse line with
        | Some (Json.Object fields) ->
          check Alcotest.(option string) "name" (Some "x")
            (Json.to_string (List.assoc_opt "name" fields));
          check
            Alcotest.(option (float 1e-9))
            "dur" (Some 2.25)
            (Json.to_float (List.assoc_opt "dur_us" fields));
          check Alcotest.bool "parent is null" true
            (List.assoc_opt "parent" fields = Some Json.Null);
          (match List.assoc_opt "attrs" fields with
          | Some (Json.Object [ ("k", Json.String "v") ]) -> ()
          | _ -> Alcotest.fail "attrs wrong")
        | _ -> Alcotest.fail "parse failed");
    case "malformed lines parse to None, never raise" (fun () ->
        List.iter
          (fun s ->
            check Alcotest.bool s true (Json.parse s = None))
          [ "{"; "{\"a\":}"; "[1,"; "\"unterminated"; "{\"a\":1,}"; "nope" ]);
  ]

let suite =
  counters @ histograms @ spans @ quantiles @ labels @ openmetrics @ tracing
  @ json_parser @ e2e
