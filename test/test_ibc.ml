open Sc_ibc
module Curve = Sc_ec.Curve

let prm = Lazy.force Util.toy_params
let bs = Util.fresh_bs "ibc-tests"
let sio = Setup.create prm ~bytes_source:bs
let pub = Setup.public sio
let alice = Setup.extract sio "alice"
let bob = Setup.extract sio "bob"
let cs = Setup.extract sio "cloud-server"
let da = Setup.extract sio "agency"

let unit_tests =
  let open Util in
  [
    case "extracted keys validate against P_pub" (fun () ->
        List.iter
          (fun k -> check Alcotest.bool k.Setup.id true (Setup.valid_key pub k))
          [ alice; bob; cs; da ]);
    case "q_of_id matches extraction and is identity-specific" (fun () ->
        check Alcotest.bool "match" true
          (Curve.equal (Setup.q_of_id pub "alice") alice.Setup.q_id);
        check Alcotest.bool "distinct" false
          (Curve.equal alice.Setup.q_id bob.Setup.q_id));
    case "a foreign secret key fails validation" (fun () ->
        let forged = { alice with Setup.sk = bob.Setup.sk } in
        check Alcotest.bool "invalid" false (Setup.valid_key pub forged));
    case "IBS sign/verify round trip" (fun () ->
        let s = Ibs.sign pub alice ~bytes_source:bs "hello world" in
        check Alcotest.bool "verifies" true
          (Ibs.verify pub ~signer:"alice" ~msg:"hello world" s));
    case "IBS rejects wrong message" (fun () ->
        let s = Ibs.sign pub alice ~bytes_source:bs "hello" in
        check Alcotest.bool "wrong msg" false
          (Ibs.verify pub ~signer:"alice" ~msg:"h3llo" s));
    case "IBS rejects wrong signer" (fun () ->
        let s = Ibs.sign pub alice ~bytes_source:bs "hello" in
        check Alcotest.bool "wrong signer" false
          (Ibs.verify pub ~signer:"bob" ~msg:"hello" s));
    case "IBS signatures are randomized" (fun () ->
        let s1 = Ibs.sign pub alice ~bytes_source:bs "m" in
        let s2 = Ibs.sign pub alice ~bytes_source:bs "m" in
        check Alcotest.bool "distinct U" false (Curve.equal s1.Ibs.u s2.Ibs.u);
        check Alcotest.bool "both verify" true
          (Ibs.verify pub ~signer:"alice" ~msg:"m" s1
          && Ibs.verify pub ~signer:"alice" ~msg:"m" s2));
    case "IBS serialization round trip" (fun () ->
        let s = Ibs.sign pub alice ~bytes_source:bs "serialize me" in
        match Ibs.of_bytes pub (Ibs.to_bytes pub s) with
        | Some s' ->
          check Alcotest.bool "u" true (Curve.equal s.Ibs.u s'.Ibs.u);
          check Alcotest.bool "v" true (Curve.equal s.Ibs.v s'.Ibs.v)
        | None -> Alcotest.fail "decode failed");
    case "IBS of_bytes rejects garbage" (fun () ->
        check Alcotest.bool "garbage" true (Ibs.of_bytes pub "zz" = None);
        check Alcotest.bool "bad length" true (Ibs.of_bytes pub "0099abc" = None));
    case "IBS verify_batch: honest batch, one multi-pairing" (fun () ->
        let entries =
          List.concat_map
            (fun (key, id) ->
              List.init 3 (fun i ->
                  let m = Printf.sprintf "%s-batch-%d" id i in
                  id, m, Ibs.sign pub key ~bytes_source:bs m))
            [ alice, "alice"; bob, "bob" ]
        in
        Sc_pairing.Tate.reset_pairing_count ();
        check Alcotest.bool "batch verifies" true (Ibs.verify_batch pub entries);
        check Alcotest.int "one multi-pairing" 1
          (Sc_pairing.Tate.pairings_performed ());
        check Alcotest.bool "empty batch" true (Ibs.verify_batch pub []));
    case "IBS verify_batch rejects a single bad signature" (fun () ->
        let good =
          List.init 3 (fun i ->
              let m = Printf.sprintf "vb-%d" i in
              "alice", m, Ibs.sign pub alice ~bytes_source:bs m)
        in
        let bad = "bob", "claimed", Ibs.sign pub alice ~bytes_source:bs "other" in
        check Alcotest.bool "tainted batch" false
          (Ibs.verify_batch pub (good @ [ bad ])));
    case "DVS designated verification (eq. 5/7)" (fun () ->
        let raw = Ibs.sign pub alice ~bytes_source:bs "designated" in
        let d = Dvs.designate pub raw ~verifier:"cloud-server" in
        check Alcotest.bool "CS verifies" true
          (Dvs.verify pub ~verifier_key:cs ~signer:"alice" ~msg:"designated" d));
    case "DVS rejected by non-designated verifier" (fun () ->
        let raw = Ibs.sign pub alice ~bytes_source:bs "designated" in
        let d = Dvs.designate pub raw ~verifier:"cloud-server" in
        check Alcotest.bool "DA cannot verify CS-designated" false
          (Dvs.verify pub ~verifier_key:da ~signer:"alice" ~msg:"designated" d));
    case "DVS detects message tampering" (fun () ->
        let raw = Ibs.sign pub alice ~bytes_source:bs "original" in
        let d = Dvs.designate pub raw ~verifier:"agency" in
        check Alcotest.bool "tampered" false
          (Dvs.verify pub ~verifier_key:da ~signer:"alice" ~msg:"tampered" d));
    case "DVS simulation: verifier can forge transcripts (privacy)" (fun () ->
        (* The designated verifier simulates a signature alice never
           produced; it passes its own verification, which is exactly
           why a transcript convinces no third party (§VII-B). *)
        let fake =
          Dvs.simulate pub ~verifier_key:da ~signer:"alice"
            ~msg:"alice never signed this" ~bytes_source:bs
        in
        check Alcotest.bool "accepted" true
          (Dvs.verify pub ~verifier_key:da ~signer:"alice"
             ~msg:"alice never signed this" fake));
    case "batch verify accepts valid batch from multiple signers" (fun () ->
        let entries =
          List.concat_map
            (fun (key, id) ->
              List.init 4 (fun i ->
                  let m = Printf.sprintf "%s-msg-%d" id i in
                  let raw = Ibs.sign pub key ~bytes_source:bs m in
                  {
                    Agg.signer = id;
                    msg = m;
                    dvs = Dvs.designate pub raw ~verifier:"agency";
                  }))
            [ alice, "alice"; bob, "bob" ]
        in
        check Alcotest.bool "batch ok" true
          (Agg.verify_batch pub ~verifier_key:da entries));
    case "batch verify accepts empty batch" (fun () ->
        check Alcotest.bool "empty" true (Agg.verify_batch pub ~verifier_key:da []));
    case "batch verify rejects one bad entry" (fun () ->
        let good =
          List.init 5 (fun i ->
              let m = Printf.sprintf "ok-%d" i in
              let raw = Ibs.sign pub alice ~bytes_source:bs m in
              { Agg.signer = "alice"; msg = m; dvs = Dvs.designate pub raw ~verifier:"agency" })
        in
        let bad =
          match good with
          | e :: _ -> { e with Agg.msg = "altered" }
          | [] -> assert false
        in
        check Alcotest.bool "rejected" false
          (Agg.verify_batch pub ~verifier_key:da (bad :: good)));
    case "batch verification uses one pairing" (fun () ->
        let entries =
          List.init 10 (fun i ->
              let m = Printf.sprintf "count-%d" i in
              let raw = Ibs.sign pub alice ~bytes_source:bs m in
              { Agg.signer = "alice"; msg = m; dvs = Dvs.designate pub raw ~verifier:"agency" })
        in
        Sc_pairing.Tate.reset_pairing_count ();
        assert (Agg.verify_batch pub ~verifier_key:da entries);
        check Alcotest.int "1 pairing for 10 sigs" 1
          (Sc_pairing.Tate.pairings_performed ()));
    case "aggregate size is constant in batch size" (fun () ->
        let make n =
          List.init n (fun i ->
              let m = Printf.sprintf "sz-%d" i in
              let raw = Ibs.sign pub alice ~bytes_source:bs m in
              { Agg.signer = "alice"; msg = m; dvs = Dvs.designate pub raw ~verifier:"agency" })
        in
        check Alcotest.int "same size"
          (Agg.aggregate_size_bytes pub (make 2))
          (Agg.aggregate_size_bytes pub (make 20)));
    case "warrant verify within lifetime" (fun () ->
        let w =
          Warrant.issue pub alice ~bytes_source:bs ~delegatee:"agency" ~now:1000.0
            ~lifetime:100.0 ~scope:"audit"
        in
        check Alcotest.bool "valid now" true (Warrant.verify pub ~now:1050.0 w);
        check Alcotest.bool "expired" false (Warrant.verify pub ~now:1101.0 w);
        check Alcotest.bool "before issue" false (Warrant.verify pub ~now:999.0 w));
    case "warrant tampering detected" (fun () ->
        let w =
          Warrant.issue pub alice ~bytes_source:bs ~delegatee:"agency" ~now:0.0
            ~lifetime:100.0 ~scope:"audit"
        in
        let extended =
          { w with Warrant.warrant = { w.Warrant.warrant with Warrant.expires_at = 1e9 } }
        in
        check Alcotest.bool "extended lifetime rejected" false
          (Warrant.verify pub ~now:50.0 extended);
        let rescoped =
          { w with Warrant.warrant = { w.Warrant.warrant with Warrant.scope = "steal" } }
        in
        check Alcotest.bool "rescoped rejected" false
          (Warrant.verify pub ~now:50.0 rescoped));
  ]

let property_tests =
  let open Util in
  let gen_msg = QCheck2.Gen.(string_size ~gen:printable (int_range 0 60)) in
  [
    qcheck ~count:15 "IBS correct for random messages" gen_msg (fun m ->
        let s = Ibs.sign pub alice ~bytes_source:bs m in
        Ibs.verify pub ~signer:"alice" ~msg:m s);
    qcheck ~count:15 "DVS correct for random messages" gen_msg (fun m ->
        let raw = Ibs.sign pub bob ~bytes_source:bs m in
        let d = Dvs.designate pub raw ~verifier:"agency" in
        Dvs.verify pub ~verifier_key:da ~signer:"bob" ~msg:m d);
    qcheck ~count:10 "batch = conjunction of individual verifies"
      (QCheck2.Gen.list_size (QCheck2.Gen.int_range 1 6) gen_msg)
      (fun msgs ->
        let entries =
          List.mapi
            (fun i m ->
              let m = Printf.sprintf "%d:%s" i m in
              let raw = Ibs.sign pub alice ~bytes_source:bs m in
              { Agg.signer = "alice"; msg = m; dvs = Dvs.designate pub raw ~verifier:"agency" })
            msgs
        in
        let individual =
          List.for_all
            (fun e ->
              Dvs.verify pub ~verifier_key:da ~signer:e.Agg.signer ~msg:e.Agg.msg
                e.Agg.dvs)
            entries
        in
        let batch = Agg.verify_batch pub ~verifier_key:da entries in
        individual = batch);
  ]

let ibe_tests =
  let open Util in
  [
    case "IBE encrypt/decrypt round trip" (fun () ->
        let msg = "confidential ledger entry #42" in
        let ct = Ibe.encrypt pub ~to_identity:"alice" ~bytes_source:bs msg in
        check Alcotest.(option string) "decrypts" (Some msg)
          (Ibe.decrypt pub ~key:alice ct));
    case "IBE wrong identity cannot decrypt" (fun () ->
        let ct = Ibe.encrypt pub ~to_identity:"alice" ~bytes_source:bs "secret" in
        check Alcotest.(option string) "bob rejected" None
          (Ibe.decrypt pub ~key:bob ct));
    case "IBE detects tampered body and tag" (fun () ->
        let ct = Ibe.encrypt pub ~to_identity:"alice" ~bytes_source:bs "secret-12" in
        let flip s i = String.mapi (fun j c -> if j = i then Char.chr (Char.code c lxor 1) else c) s in
        check Alcotest.(option string) "body" None
          (Ibe.decrypt pub ~key:alice { ct with Ibe.body = flip ct.Ibe.body 3 });
        check Alcotest.(option string) "tag" None
          (Ibe.decrypt pub ~key:alice { ct with Ibe.tag = flip ct.Ibe.tag 0 }));
    case "IBE ciphertexts are randomized" (fun () ->
        let c1 = Ibe.encrypt pub ~to_identity:"alice" ~bytes_source:bs "same" in
        let c2 = Ibe.encrypt pub ~to_identity:"alice" ~bytes_source:bs "same" in
        check Alcotest.bool "different bodies" false
          (String.equal c1.Ibe.body c2.Ibe.body));
    case "IBE handles empty and large messages" (fun () ->
        List.iter
          (fun msg ->
            let ct = Ibe.encrypt pub ~to_identity:"bob" ~bytes_source:bs msg in
            check Alcotest.(option string)
              (Printf.sprintf "len %d" (String.length msg))
              (Some msg)
              (Ibe.decrypt pub ~key:bob ct))
          [ ""; String.make 5000 'z' ]);
    case "IBE ciphertext serialization round trip" (fun () ->
        let ct = Ibe.encrypt pub ~to_identity:"alice" ~bytes_source:bs "wire me" in
        match Ibe.ciphertext_of_bytes pub (Ibe.ciphertext_to_bytes pub ct) with
        | Some ct' ->
          check Alcotest.(option string) "still decrypts" (Some "wire me")
            (Ibe.decrypt pub ~key:alice ct')
        | None -> Alcotest.fail "decode failed");
    case "IBE of_bytes rejects garbage" (fun () ->
        check Alcotest.bool "garbage" true (Ibe.ciphertext_of_bytes pub "xx" = None);
        check Alcotest.bool "bad length" true
          (Ibe.ciphertext_of_bytes pub "0000junk" = None));
  ]

let suite = unit_tests @ property_tests @ ibe_tests
