open Sc_bignum

let nat = Alcotest.testable Nat.pp Nat.equal

let gen_mod =
  (* Moduli of assorted widths, always >= 2. *)
  let open QCheck2.Gen in
  let* bits = int_range 2 400 in
  let* bytes = string_size ~gen:char (return ((bits + 7) / 8)) in
  let m = Nat.of_bytes_be bytes in
  return (Nat.add m Nat.two)

let gen_nat_small =
  let open QCheck2.Gen in
  let* bytes = string_size ~gen:char (int_range 0 64) in
  return (Nat.of_bytes_be bytes)

let unit_tests =
  let open Util in
  [
    case "create rejects modulus < 2" (fun () ->
        Alcotest.check_raises "zero" (Invalid_argument "Modular.create: modulus < 2")
          (fun () -> ignore (Modular.create Nat.zero));
        Alcotest.check_raises "one" (Invalid_argument "Modular.create: modulus < 2")
          (fun () -> ignore (Modular.create Nat.one)));
    case "reduce idempotent and below modulus" (fun () ->
        let m = Nat.of_decimal "1000003" in
        let ctx = Modular.create m in
        let x = Nat.of_decimal "123456789123456789" in
        let r = Modular.reduce ctx x in
        check Alcotest.bool "below" true (Nat.compare r m < 0);
        check nat "idempotent" r (Modular.reduce ctx r));
    case "pow matches naive" (fun () ->
        let m = Nat.of_int 1009 in
        let ctx = Modular.create m in
        let naive b e =
          let rec go acc = function
            | 0 -> acc
            | k -> go (Nat.rem (Nat.mul acc b) m) (k - 1)
          in
          go Nat.one e
        in
        List.iter
          (fun (b, e) ->
            check nat
              (Printf.sprintf "%d^%d" b e)
              (naive (Nat.of_int b) e)
              (Modular.pow ctx (Nat.of_int b) (Nat.of_int e)))
          [ 2, 10; 3, 100; 1008, 57; 17, 0; 0, 5 ]);
    case "fermat little theorem" (fun () ->
        (* a^(p-1) = 1 mod p for prime p. *)
        let p = Nat.of_decimal "1000000007" in
        let ctx = Modular.create p in
        List.iter
          (fun a ->
            check nat "fermat" Nat.one
              (Modular.pow ctx (Nat.of_int a) (Nat.sub p Nat.one)))
          [ 2; 3; 65537; 999999999 ]);
    case "inverse times value is one" (fun () ->
        let p = Nat.of_decimal "32416190071" in
        let ctx = Modular.create p in
        let a = Nat.of_decimal "31415926535" in
        let ai = Modular.inv ctx a in
        check nat "a * a^-1" Nat.one (Modular.mul ctx a ai));
    case "inverse of non-coprime raises" (fun () ->
        let ctx = Modular.create (Nat.of_int 100) in
        Alcotest.check_raises "gcd != 1" Not_found (fun () ->
            ignore (Modular.inv ctx (Nat.of_int 10))));
    case "egcd bezout identity" (fun () ->
        let a = Nat.of_decimal "240" and b = Nat.of_decimal "46" in
        let g, x, y = Modular.egcd a b in
        check nat "gcd" (Nat.of_int 2) g;
        let lhs = Signed.add (Signed.mul (Signed.of_nat a) x)
            (Signed.mul (Signed.of_nat b) y) in
        check Alcotest.bool "bezout" true (Signed.equal lhs (Signed.of_nat g)));
    case "of_signed maps negatives" (fun () ->
        let ctx = Modular.create (Nat.of_int 7) in
        check nat "-1 mod 7" (Nat.of_int 6) (Modular.of_signed ctx (Signed.of_int (-1)));
        check nat "-15 mod 7" (Nat.of_int 6) (Modular.of_signed ctx (Signed.of_int (-15))))
  ]

let property_tests =
  let open Util in
  let with_ctx = QCheck2.Gen.pair gen_mod (QCheck2.Gen.pair gen_nat_small gen_nat_small) in
  [
    qcheck "barrett reduce = divmod rem" with_ctx (fun (m, (a, b)) ->
        let ctx = Modular.create m in
        let x = Nat.mul (Modular.reduce ctx a) (Modular.reduce ctx b) in
        Nat.equal (Modular.reduce ctx x) (Nat.rem x m));
    qcheck "add/sub inverse" with_ctx (fun (m, (a, b)) ->
        let ctx = Modular.create m in
        let a = Modular.reduce ctx a and b = Modular.reduce ctx b in
        Nat.equal a (Modular.sub ctx (Modular.add ctx a b) b));
    qcheck "neg is additive inverse" (QCheck2.Gen.pair gen_mod gen_nat_small)
      (fun (m, a) ->
        let ctx = Modular.create m in
        let a = Modular.reduce ctx a in
        Nat.is_zero (Modular.add ctx a (Modular.neg ctx a)));
    qcheck "mul homomorphic to Nat.mul" with_ctx (fun (m, (a, b)) ->
        let ctx = Modular.create m in
        Nat.equal
          (Modular.mul ctx (Modular.reduce ctx a) (Modular.reduce ctx b))
          (Nat.rem (Nat.mul a b) m));
    qcheck ~count:60 "pow adds exponents"
      QCheck2.Gen.(triple gen_mod gen_nat_small (pair (int_range 0 60) (int_range 0 60)))
      (fun (m, b, (e1, e2)) ->
        let ctx = Modular.create m in
        let b = Modular.reduce ctx b in
        Nat.equal
          (Modular.mul ctx
             (Modular.pow ctx b (Nat.of_int e1))
             (Modular.pow ctx b (Nat.of_int e2)))
          (Modular.pow ctx b (Nat.of_int (e1 + e2))));
    qcheck ~count:60 "egcd divides both"
      QCheck2.Gen.(pair gen_nat_small gen_nat_small)
      (fun (a, b) ->
        let g, _, _ = Modular.egcd a b in
        (Nat.is_zero a && Nat.is_zero b)
        || (Nat.is_zero (Nat.rem a g) && Nat.is_zero (Nat.rem b g)));
  ]

let gen_odd_mod =
  QCheck2.Gen.map
    (fun m -> if Nat.is_even m then Nat.add m Nat.one else m)
    gen_mod

let montgomery_tests =
  let open Util in
  [
    case "montgomery rejects even or tiny moduli" (fun () ->
        Alcotest.check_raises "even"
          (Invalid_argument "Montgomery.create: modulus must be odd and >= 3")
          (fun () -> ignore (Montgomery.create (Nat.of_int 10)));
        Alcotest.check_raises "one"
          (Invalid_argument "Montgomery.create: modulus must be odd and >= 3")
          (fun () -> ignore (Montgomery.create Nat.one)));
    case "montgomery round trip through the domain" (fun () ->
        let m = Nat.of_decimal "1000000007" in
        let ctx = Montgomery.create m in
        List.iter
          (fun v ->
            let v = Nat.of_int v in
            check nat "round trip" (Nat.rem v m)
              (Montgomery.of_mont ctx (Montgomery.to_mont ctx v)))
          [ 0; 1; 999999999; 123456789 ]);
    case "montgomery one is the domain image of 1" (fun () ->
        let m = Nat.of_decimal "32416190071" in
        let ctx = Montgomery.create m in
        check nat "one" Nat.one (Montgomery.of_mont ctx (Montgomery.one ctx)));
    case "montgomery pow known values" (fun () ->
        let m = Nat.of_int 1009 in
        let ctx = Montgomery.create m in
        check nat "2^10 mod 1009" (Nat.of_int 15)
          (Montgomery.pow ctx Nat.two (Nat.of_int 10));
        check nat "x^0" Nat.one (Montgomery.pow ctx (Nat.of_int 7) Nat.zero));
  ]

let montgomery_arith_tests =
  let open Util in
  [
    case "montgomery add/sub/neg/double at the edges (0, 1, p-1)" (fun () ->
        let p = Nat.of_decimal "1000000007" in
        let pm1 = Nat.sub p Nat.one in
        let ctx = Montgomery.create p in
        let m v = Montgomery.to_mont ctx v in
        let out v = Montgomery.of_mont ctx v in
        check nat "(p-1) + 1 = 0" Nat.zero
          (out (Montgomery.add ctx (m pm1) (m Nat.one)));
        check nat "(p-1) + (p-1) = p-2" (Nat.sub p Nat.two)
          (out (Montgomery.add ctx (m pm1) (m pm1)));
        check nat "0 - 1 = p-1" pm1
          (out (Montgomery.sub ctx (m Nat.zero) (m Nat.one)));
        check nat "neg 0 = 0" Nat.zero (out (Montgomery.neg ctx (m Nat.zero)));
        check nat "neg 1 = p-1" pm1 (out (Montgomery.neg ctx (m Nat.one)));
        check nat "neg (p-1) = 1" Nat.one (out (Montgomery.neg ctx (m pm1)));
        check nat "double (p-1) = p-2" (Nat.sub p Nat.two)
          (out (Montgomery.double ctx (m pm1)));
        check nat "double 0 = 0" Nat.zero
          (out (Montgomery.double ctx (m Nat.zero))));
    case "montgomery of_int, is_zero, equal" (fun () ->
        let ctx = Montgomery.create (Nat.of_int 1009) in
        check nat "of_int" (Nat.of_int 42)
          (Montgomery.of_mont ctx (Montgomery.of_int ctx 42));
        check nat "of_int reduces" (Nat.of_int 1)
          (Montgomery.of_mont ctx (Montgomery.of_int ctx 1010));
        check Alcotest.bool "zero is_zero" true
          (Montgomery.is_zero (Montgomery.zero ctx));
        check Alcotest.bool "one not is_zero" false
          (Montgomery.is_zero (Montgomery.one ctx));
        check Alcotest.bool "equal canonical" true
          (Montgomery.equal (Montgomery.of_int ctx 1010) (Montgomery.of_int ctx 1));
        check Alcotest.bool "distinct" false
          (Montgomery.equal (Montgomery.of_int ctx 1) (Montgomery.of_int ctx 2)));
    case "montgomery inv at the edges and against mul" (fun () ->
        let p = Nat.of_decimal "32416190071" in
        let pm1 = Nat.sub p Nat.one in
        let ctx = Montgomery.create p in
        let m v = Montgomery.to_mont ctx v in
        check nat "inv 1 = 1" Nat.one
          (Montgomery.of_mont ctx (Montgomery.inv ctx (m Nat.one)));
        (* p-1 is its own inverse: (p-1)^2 = 1 mod p. *)
        check nat "inv (p-1) = p-1" pm1
          (Montgomery.of_mont ctx (Montgomery.inv ctx (m pm1)));
        let a = m (Nat.of_decimal "31415926535") in
        check nat "a * inv a = 1" Nat.one
          (Montgomery.of_mont ctx (Montgomery.mul ctx a (Montgomery.inv ctx a)));
        Alcotest.check_raises "inv 0" Not_found (fun () ->
            ignore (Montgomery.inv ctx (m Nat.zero))));
  ]

let montgomery_property_tests =
  let open Util in
  [
    qcheck ~count:80 "montgomery mul == barrett mul"
      (QCheck2.Gen.triple gen_odd_mod gen_nat_small gen_nat_small)
      (fun (m, a, b) ->
        let mc = Montgomery.create m and mo = Modular.create m in
        Nat.equal
          (Montgomery.of_mont mc
             (Montgomery.mul mc (Montgomery.to_mont mc a) (Montgomery.to_mont mc b)))
          (Modular.mul mo (Modular.reduce mo a) (Modular.reduce mo b)));
    qcheck ~count:40 "montgomery pow == barrett pow"
      (QCheck2.Gen.triple gen_odd_mod gen_nat_small
         (QCheck2.Gen.int_range 0 200))
      (fun (m, b, e) ->
        let mc = Montgomery.create m and mo = Modular.create m in
        Nat.equal (Montgomery.pow mc b (Nat.of_int e))
          (Modular.pow mo b (Nat.of_int e)));
    qcheck ~count:80 "montgomery add/sub/neg/double == barrett"
      (QCheck2.Gen.triple gen_odd_mod gen_nat_small gen_nat_small)
      (fun (m, a, b) ->
        let mc = Montgomery.create m and mo = Modular.create m in
        let am = Montgomery.to_mont mc a and bm = Montgomery.to_mont mc b in
        let ar = Modular.reduce mo a and br = Modular.reduce mo b in
        let out = Montgomery.of_mont mc in
        Nat.equal (out (Montgomery.add mc am bm)) (Modular.add mo ar br)
        && Nat.equal (out (Montgomery.sub mc am bm)) (Modular.sub mo ar br)
        && Nat.equal (out (Montgomery.neg mc am)) (Modular.neg mo ar)
        && Nat.equal (out (Montgomery.double mc am)) (Modular.add mo ar ar));
    qcheck ~count:40 "montgomery inv: a * inv a = 1 when coprime"
      (QCheck2.Gen.pair gen_odd_mod gen_nat_small)
      (fun (m, a) ->
        let mc = Montgomery.create m in
        let am = Montgomery.to_mont mc a in
        match Montgomery.inv mc am with
        | ai -> Nat.is_one (Montgomery.of_mont mc (Montgomery.mul mc am ai))
        | exception Not_found ->
          not (Nat.is_one (Modular.gcd (Nat.rem a m) m)));
  ]

let jacobi_tests =
  let open Util in
  [
    case "jacobi rejects even modulus" (fun () ->
        Alcotest.check_raises "even"
          (Invalid_argument "Modular.jacobi: modulus must be odd and positive")
          (fun () -> ignore (Modular.jacobi Nat.one (Nat.of_int 8))));
    case "jacobi known small values" (fun () ->
        (* (a|7) for a = 0..6: 0,1,1,-1,1,-1,-1 *)
        List.iteri
          (fun a expected ->
            check Alcotest.int
              (Printf.sprintf "(%d|7)" a)
              expected
              (Modular.jacobi (Nat.of_int a) (Nat.of_int 7)))
          [ 0; 1; 1; -1; 1; -1; -1 ]);
    case "jacobi of composite: (2|15) = 1 though 2 is not a QR" (fun () ->
        check Alcotest.int "(2|15)" 1 (Modular.jacobi Nat.two (Nat.of_int 15)));
    case "jacobi equals euler criterion on a prime" (fun () ->
        let p = Nat.of_decimal "1000000007" in
        let ctx = Modular.create p in
        let e = Nat.shift_right (Nat.sub p Nat.one) 1 in
        let bs = Util.fresh_bs "jacobi" in
        for _ = 1 to 60 do
          let a = Nat.random_below ~bytes_source:bs p in
          let euler =
            if Nat.is_zero a then 0
            else if Nat.is_one (Modular.pow ctx a e) then 1
            else -1
          in
          if Modular.jacobi a p <> euler then
            Alcotest.failf "mismatch at %s" (Nat.to_decimal a)
        done);
    case "jacobi multiplicativity in the numerator" (fun () ->
        let n = Nat.of_int 1009 in
        List.iter
          (fun (a, b) ->
            check Alcotest.int "mult"
              (Modular.jacobi (Nat.of_int a) n * Modular.jacobi (Nat.of_int b) n)
              (Modular.jacobi (Nat.of_int (a * b)) n))
          [ 2, 3; 5, 7; 10, 100; 17, 59 ]);
  ]

(* Lazy (redundant-representation) add/sub and batch inversion across
   moduli of assorted widths — including the narrow ones where
   16m > B^k forces the strict fallback inside add_lazy/sub_lazy. *)
let montgomery_lazy_tests =
  let open Util in
  [
    qcheck ~count:80 "lazy add/sub feed mul like strict, any odd modulus"
      (QCheck2.Gen.pair gen_mod (QCheck2.Gen.pair gen_nat_small gen_nat_small))
      (fun (m, (a, b)) ->
        let m = if Nat.is_even m then Nat.add m Nat.one else m in
        if Nat.compare m (Nat.of_int 3) < 0 then true
        else
          let ctx = Montgomery.create m in
          let ma = Montgomery.to_mont ctx (Nat.rem a m) in
          let mb = Montgomery.to_mont ctx (Nat.rem b m) in
          let lhs =
            Montgomery.mul ctx
              (Montgomery.add_lazy ctx ma mb)
              (Montgomery.sub_lazy ctx ma mb)
          in
          let rhs =
            Montgomery.mul ctx (Montgomery.add ctx ma mb)
              (Montgomery.sub ctx ma mb)
          in
          Nat.equal (Montgomery.of_mont ctx lhs) (Montgomery.of_mont ctx rhs));
    qcheck ~count:40 "montgomery batch_inv = pointwise inv"
      (QCheck2.Gen.pair gen_mod
         QCheck2.Gen.(list_size (int_range 1 6) gen_nat_small))
      (fun (m, vs) ->
        let m = if Nat.is_even m then Nat.add m Nat.one else m in
        if Nat.compare m (Nat.of_int 3) < 0 then true
        else
          let ctx = Montgomery.create m in
          let xs =
            List.filter_map
              (fun v ->
                let r = Nat.rem v m in
                if Nat.is_zero r then None
                else Some (Montgomery.to_mont ctx r))
              vs
          in
          let xs = Array.of_list xs in
          (* m may be composite: batch_inv must raise exactly when some
             element has no inverse, and agree pointwise otherwise. *)
          (match Montgomery.batch_inv ctx xs with
          | ys ->
            Array.for_all2
              (fun x y ->
                Nat.equal
                  (Montgomery.of_mont ctx (Montgomery.inv ctx x))
                  (Montgomery.of_mont ctx y))
              xs ys
          | exception Not_found ->
            Array.exists
              (fun x ->
                match Montgomery.inv ctx x with
                | _ -> false
                | exception Not_found -> true)
              xs));
    case "montgomery batch_inv rejects a zero element" (fun () ->
        let ctx = Montgomery.create (Nat.of_int 1009) in
        Alcotest.check_raises "zero" Not_found (fun () ->
            ignore
              (Montgomery.batch_inv ctx
                 [| Montgomery.one ctx; Montgomery.zero ctx |])));
  ]

let suite =
  unit_tests @ property_tests @ montgomery_tests @ montgomery_arith_tests
  @ montgomery_lazy_tests @ montgomery_property_tests @ jacobi_tests
