module T = Sc_merkle.Tree

let unit_tests =
  let open Util in
  [
    case "build rejects empty" (fun () ->
        Alcotest.check_raises "empty" (Invalid_argument "Merkle.build: empty leaf list")
          (fun () -> ignore (T.build [])));
    case "single leaf: root = leaf hash" (fun () ->
        let t = T.build [ "only" ] in
        check Alcotest.string "root" (T.leaf_hash "only") (T.root t);
        check Alcotest.int "size" 1 (T.size t);
        check Alcotest.int "depth" 0 (T.depth t);
        let p = T.proof t 0 in
        check Alcotest.bool "proof verifies" true
          (T.verify_proof ~root:(T.root t) ~leaf_payload:"only" p));
    case "deterministic roots" (fun () ->
        let leaves = List.init 9 (Printf.sprintf "leaf-%d") in
        check Alcotest.bool "same" true (T.equal_root (T.build leaves) (T.build leaves)));
    case "order sensitivity" (fun () ->
        let a = T.build [ "x"; "y" ] and b = T.build [ "y"; "x" ] in
        check Alcotest.bool "different" false (T.equal_root a b));
    case "leaf/node domain separation" (fun () ->
        (* A two-leaf tree's root must differ from the leaf hash of the
           concatenation (no second-preimage shortcut). *)
        let t = T.build [ "ab"; "cd" ] in
        check Alcotest.bool "distinct" false
          (String.equal (T.root t) (T.leaf_hash "abcd")));
    case "proofs verify at every size and index" (fun () ->
        List.iter
          (fun n ->
            let payloads = List.init n (Printf.sprintf "p%d-%d" n) in
            let t = T.build payloads in
            List.iteri
              (fun i payload ->
                let proof = T.proof t i in
                if not (T.verify_proof ~root:(T.root t) ~leaf_payload:payload proof)
                then Alcotest.failf "size %d index %d" n i)
              payloads)
          [ 1; 2; 3; 4; 5; 7; 8; 9; 15; 16; 17; 33; 64; 100 ]);
    case "proof for wrong payload fails" (fun () ->
        let t = T.build [ "a"; "b"; "c"; "d"; "e" ] in
        let proof = T.proof t 2 in
        check Alcotest.bool "wrong payload" false
          (T.verify_proof ~root:(T.root t) ~leaf_payload:"x" proof));
    case "proof against wrong root fails" (fun () ->
        let t = T.build [ "a"; "b"; "c"; "d" ] in
        let other = T.build [ "a"; "b"; "c"; "x" ] in
        let proof = T.proof t 0 in
        check Alcotest.bool "wrong root" false
          (T.verify_proof ~root:(T.root other) ~leaf_payload:"a" proof));
    case "tampered sibling in path fails" (fun () ->
        let t = T.build [ "a"; "b"; "c"; "d" ] in
        let proof = T.proof t 1 in
        let tampered =
          {
            proof with
            T.path =
              (match proof.T.path with
              | (side, h) :: rest ->
                (side, T.leaf_hash (h ^ "!")) :: rest
              | [] -> []);
          }
        in
        check Alcotest.bool "tampered" false
          (T.verify_proof ~root:(T.root t) ~leaf_payload:"b" tampered));
    case "proof out of bounds raises" (fun () ->
        let t = T.build [ "a"; "b" ] in
        Alcotest.check_raises "oob" (Invalid_argument "Merkle.proof: index out of bounds")
          (fun () -> ignore (T.proof t 2)));
    case "update_leaf changes root and proofs" (fun () ->
        let t = T.build [ "a"; "b"; "c"; "d"; "e" ] in
        let t' = T.update_leaf t 3 "D" in
        check Alcotest.bool "root changed" false (T.equal_root t t');
        check Alcotest.bool "new proof ok" true
          (T.verify_proof ~root:(T.root t') ~leaf_payload:"D" (T.proof t' 3));
        check Alcotest.bool "old payload fails" false
          (T.verify_proof ~root:(T.root t') ~leaf_payload:"d" (T.proof t' 3));
        (* untouched leaves still verify *)
        check Alcotest.bool "other leaf ok" true
          (T.verify_proof ~root:(T.root t') ~leaf_payload:"a" (T.proof t' 0)));
    case "depth grows logarithmically" (fun () ->
        check Alcotest.int "2 leaves" 1 (T.depth (T.build [ "a"; "b" ]));
        check Alcotest.int "4 leaves" 2 (T.depth (T.build [ "a"; "b"; "c"; "d" ]));
        check Alcotest.int "8 leaves" 3
          (T.depth (T.build (List.init 8 string_of_int)));
        check Alcotest.int "9 leaves" 4
          (T.depth (T.build (List.init 9 string_of_int))));
  ]

let property_tests =
  let open Util in
  let gen_leaves =
    QCheck2.Gen.(list_size (int_range 1 80) (string_size ~gen:printable (int_range 0 20)))
  in
  [
    qcheck ~count:60 "all proofs verify on random trees" gen_leaves (fun leaves ->
        let t = T.build leaves in
        List.for_all
          (fun i ->
            T.verify_proof ~root:(T.root t)
              ~leaf_payload:(List.nth leaves i) (T.proof t i))
          (List.init (List.length leaves) Fun.id));
    qcheck ~count:60 "any single-leaf tamper is detected"
      QCheck2.Gen.(pair gen_leaves small_nat)
      (fun (leaves, idx) ->
        let n = List.length leaves in
        let i = idx mod n in
        let t = T.build leaves in
        let tampered = List.mapi (fun j l -> if j = i then l ^ "~" else l) leaves in
        let t' = T.build tampered in
        not (T.equal_root t t'));
    qcheck ~count:60 "build_of_hashes agrees with build" gen_leaves (fun leaves ->
        T.equal_root (T.build leaves)
          (T.build_of_hashes (List.map T.leaf_hash leaves)));
  ]

(* --- Dynamic_tree: persistent path-copying twin of Tree -------------- *)

module Dt = Sc_merkle.Dynamic_tree

let dyn_sizes = [ 1; 2; 3; 5; 7; 8; 9; 15; 16; 17; 31; 32; 33 ]

let payloads tag n = List.init n (Printf.sprintf "%s-%d-%d" tag n)

let same_root payloads dt =
  String.equal (T.root (T.build payloads)) (Dt.root dt)

let with_domains n f =
  let saved = Sc_parallel.domain_count () in
  Sc_parallel.set_domain_count n;
  Fun.protect ~finally:(fun () -> Sc_parallel.set_domain_count saved) f

let dynamic_unit_tests =
  let open Util in
  [
    case "dynamic: roots equal Tree.build at every size" (fun () ->
        List.iter
          (fun n ->
            let ps = payloads "eq" n in
            if not (same_root ps (Dt.build ps)) then
              Alcotest.failf "size %d root mismatch" n)
          dyn_sizes);
    case "dynamic: rank proofs verify at every size and index" (fun () ->
        List.iter
          (fun n ->
            let ps = payloads "pf" n in
            let t = Dt.build ps in
            List.iteri
              (fun i p ->
                let proof = Dt.proof t i in
                if
                  not
                    (Dt.verify_payload ~root:(Dt.root t) ~leaf_payload:p proof)
                then Alcotest.failf "size %d index %d" n i;
                if proof.Dt.total <> n || proof.Dt.index <> i then
                  Alcotest.failf "size %d index %d: bad annotations" n i)
              ps)
          dyn_sizes);
    case "dynamic: proof geometry matches expected_geometry" (fun () ->
        List.iter
          (fun n ->
            let t = Dt.build (payloads "geo" n) in
            for i = 0 to n - 1 do
              let p = Dt.proof t i in
              let geom = List.map (fun (s, r, _) -> (s, r)) p.Dt.path in
              if geom <> Dt.expected_geometry ~total:n ~index:i then
                Alcotest.failf "size %d index %d geometry" n i
            done)
          dyn_sizes);
    case "dynamic: relocated proof fails (position binding)" (fun () ->
        (* A server cannot serve leaf j's data under index i: the claim
           (index, total) fixes the path geometry arithmetically. *)
        let n = 11 in
        let ps = payloads "rel" n in
        let t = Dt.build ps in
        let p3 = Dt.proof t 3 in
        let relabelled = { p3 with Dt.index = 5 } in
        check Alcotest.bool "relabelled index" false
          (Dt.verify_payload ~root:(Dt.root t) ~leaf_payload:(List.nth ps 3)
             relabelled);
        let stretched = { p3 with Dt.total = n + 1 } in
        check Alcotest.bool "inflated total" false
          (Dt.verify_payload ~root:(Dt.root t) ~leaf_payload:(List.nth ps 3)
             stretched);
        let swapped =
          { (Dt.proof t 6) with Dt.index = 3 }
        in
        check Alcotest.bool "leaf 6 as leaf 3" false
          (Dt.verify_payload ~root:(Dt.root t) ~leaf_payload:(List.nth ps 6)
             swapped));
    case "dynamic: modify at every size and index equals rebuild" (fun () ->
        List.iter
          (fun n ->
            let ps = payloads "mod" n in
            let t = Dt.build ps in
            for i = 0 to n - 1 do
              let ps' = List.mapi (fun j p -> if j = i then "new!" else p) ps in
              let t' = Dt.modify t i (Dt.leaf_hash "new!") in
              if not (same_root ps' t') then Alcotest.failf "size %d idx %d" n i;
              (* persistence: the original version is untouched *)
              if not (same_root ps t) then Alcotest.failf "size %d mutated" n
            done)
          [ 1; 2; 3; 5; 7; 9; 16; 17; 33 ]);
    case "dynamic: append chain equals rebuild at every length" (fun () ->
        let rec go t ps n =
          if n <= 40 then begin
            let p = Printf.sprintf "app-%d" n in
            let ps = ps @ [ p ] in
            let t = Dt.append t (Dt.leaf_hash p) in
            if not (same_root ps t) then Alcotest.failf "length %d" n;
            go t ps (n + 1)
          end
        in
        go (Dt.build [ "app-0" ]) [ "app-0" ] 1);
    case "dynamic: insert at every position equals rebuild" (fun () ->
        List.iter
          (fun n ->
            let ps = payloads "ins" n in
            let t = Dt.build ps in
            for at = 0 to n do
              let ps' =
                List.filteri (fun j _ -> j < at) ps
                @ [ "inserted" ]
                @ List.filteri (fun j _ -> j >= at) ps
              in
              if not (same_root ps' (Dt.insert t ~at (Dt.leaf_hash "inserted")))
              then Alcotest.failf "size %d at %d" n at
            done)
          [ 1; 2; 3; 5; 8; 9; 16; 17 ]);
    case "dynamic: delete at every position equals rebuild" (fun () ->
        List.iter
          (fun n ->
            let ps = payloads "del" n in
            let t = Dt.build ps in
            for at = 0 to n - 1 do
              let ps' = List.filteri (fun j _ -> j <> at) ps in
              if not (same_root ps' (Dt.delete t ~at)) then
                Alcotest.failf "size %d at %d" n at
            done)
          [ 2; 3; 5; 8; 9; 16; 17 ]);
    case "dynamic: delete of the last leaf raises" (fun () ->
        Alcotest.check_raises "last leaf"
          (Invalid_argument "Dynamic_tree.delete: last leaf") (fun () ->
            ignore (Dt.delete (Dt.build [ "x" ]) ~at:0)));
    case "dynamic: batched apply equals one-by-one" (fun () ->
        let t = Dt.build (payloads "batch" 9) in
        let ops =
          [
            Dt.Modify { index = 2; leaf = Dt.leaf_hash "m2" };
            Dt.Append { leaf = Dt.leaf_hash "a9" };
            Dt.Insert { index = 4; leaf = Dt.leaf_hash "i4" };
            Dt.Delete { index = 0 };
            Dt.Modify { index = 7; leaf = Dt.leaf_hash "m7" };
          ]
        in
        let batched = Dt.apply t ops in
        let stepped = List.fold_left (fun t op -> Dt.apply t [ op ]) t ops in
        check Alcotest.bool "same root" true (Dt.equal_root batched stepped));
    case "dynamic: frontier tracks every root" (fun () ->
        List.iter
          (fun n ->
            let t = Dt.build (payloads "fr" n) in
            let f = Dt.Frontier.of_tree t in
            check Alcotest.int "total" n (Dt.Frontier.total f);
            check Alcotest.string "root" (Dt.root t) (Dt.Frontier.root f))
          dyn_sizes);
    case "dynamic: frontier append and modify match the tree" (fun () ->
        let t0 = Dt.build (payloads "fam" 5) in
        let f0 = Dt.Frontier.of_tree t0 in
        (* appends *)
        let t1 = Dt.append t0 (Dt.leaf_hash "x5") in
        let f1 = Dt.Frontier.append f0 (Dt.leaf_hash "x5") in
        check Alcotest.string "append root" (Dt.root t1) (Dt.Frontier.root f1);
        (* modify via a proof from the appended tree *)
        let p = Dt.proof t1 2 in
        let t2 = Dt.modify t1 2 (Dt.leaf_hash "y2") in
        let f2 = Dt.Frontier.modify f1 p ~leaf_hash:(Dt.leaf_hash "y2") in
        check Alcotest.string "modify root" (Dt.root t2) (Dt.Frontier.root f2));
  ]

let dynamic_property_tests =
  let open Util in
  let gen_leaves =
    QCheck2.Gen.(
      list_size (int_range 1 48) (string_size ~gen:printable (int_range 0 16)))
  in
  (* A random mutation script over a model list: every reachable root
     must equal a from-scratch Tree.build of the model. *)
  let gen_script =
    QCheck2.Gen.(
      pair gen_leaves (list_size (int_range 1 24) (pair (int_bound 3) nat)))
  in
  let run_script (leaves, script) =
    let step (model, t) (kind, r) =
      let n = List.length model in
      match kind with
      | 0 ->
        let i = r mod n in
        let p = Printf.sprintf "m%d" r in
        ( List.mapi (fun j x -> if j = i then p else x) model,
          Dt.apply t [ Dt.Modify { index = i; leaf = Dt.leaf_hash p } ] )
      | 1 ->
        let p = Printf.sprintf "a%d" r in
        (model @ [ p ], Dt.apply t [ Dt.Append { leaf = Dt.leaf_hash p } ])
      | 2 ->
        let at = r mod (n + 1) in
        let p = Printf.sprintf "i%d" r in
        ( List.filteri (fun j _ -> j < at) model
          @ [ p ]
          @ List.filteri (fun j _ -> j >= at) model,
          Dt.apply t [ Dt.Insert { index = at; leaf = Dt.leaf_hash p } ] )
      | _ ->
        if n = 1 then (model, t)
        else
          let at = r mod n in
          ( List.filteri (fun j _ -> j <> at) model,
            Dt.apply t [ Dt.Delete { index = at } ] )
    in
    let check_state (model, t) =
      same_root model t && Dt.size t = List.length model
    in
    let final =
      List.fold_left
        (fun state op ->
          let state = step state op in
          if not (check_state state) then raise Exit;
          state)
        (leaves, Dt.build leaves) script
    in
    check_state final
  in
  [
    qcheck ~count:40 "dynamic: every reachable root equals Tree.build"
      gen_script (fun input ->
        try run_script input with Exit -> false);
    qcheck ~count:20 "dynamic: root equivalence holds at 1 and 4 domains"
      gen_script (fun input ->
        let at n = with_domains n (fun () -> try run_script input with Exit -> false) in
        at 1 && at 4);
    qcheck ~count:60 "dynamic: rank proofs verify on random trees" gen_leaves
      (fun leaves ->
        let t = Dt.build leaves in
        List.for_all
          (fun i ->
            Dt.verify_payload ~root:(Dt.root t)
              ~leaf_payload:(List.nth leaves i) (Dt.proof t i))
          (List.init (List.length leaves) Fun.id));
    qcheck ~count:60 "dynamic: of_leaf_hashes agrees with Tree.build_of_hashes"
      gen_leaves (fun leaves ->
        let hs = List.map T.leaf_hash leaves in
        String.equal
          (T.root (T.build_of_hashes hs))
          (Dt.root (Dt.of_leaf_hashes hs)));
  ]

let suite =
  unit_tests @ property_tests @ dynamic_unit_tests @ dynamic_property_tests
