(* The sharded multi-tenant service layer: router placement and
   balance properties, typed backpressure with metric/ledger
   agreement, cross-domain value identity of whole campaigns, tenant
   isolation under injected corruption, and the 10k mixed-traffic
   soak (`Slow). *)

module Service = Sc_service.Service
module Router = Sc_service.Router
module Engine = Sc_sim.Engine
module Telemetry = Sc_telemetry.Telemetry
module Transport = Seccloud.Transport

let with_domains n f =
  let saved = Sc_parallel.domain_count () in
  Sc_parallel.set_domain_count n;
  Fun.protect ~finally:(fun () -> Sc_parallel.set_domain_count saved) f

let small_service ?(shards = 4) ?(cap = 8) ?(quantum = 3)
    ?(faults = Transport.perfect) seed =
  Service.create
    ~config:
      {
        Service.default_config with
        Service.shards;
        queue_capacity = cap;
        drain_quantum = quantum;
        faults;
      }
    ~params:Util.toy_params ~seed ()

let data_drbg = Sc_hash.Drbg.create ~seed:"service-test-data"

let blocks n =
  List.init n (fun _ ->
      Sc_storage.Block.encode_ints
        (List.init 4 (fun _ -> Sc_hash.Drbg.uniform_int data_drbg 1000)))

let submit_ok svc tenant request =
  match Service.submit svc ~tenant request with
  | Ok () -> ()
  | Error e -> Alcotest.failf "unexpected rejection: %a" Service.pp_error e

let router_tests =
  let open Util in
  [
    qcheck ~count:500 "router: every identity maps to exactly one shard"
      QCheck2.Gen.(pair string (int_range 1 64))
      (fun (id, shards) ->
        let s = Router.shard_of ~shards id in
        s >= 0 && s < shards && Router.shard_of ~shards id = s);
    qcheck ~count:200 "router: placement ignores every other identity"
      QCheck2.Gen.(pair string string)
      (fun (id, other) ->
        (* Hash placement is a pure function of the identity alone —
           hashing [other] first (any registration order) changes
           nothing. *)
        let before = Router.shard_of ~shards:16 id in
        let _ = Router.shard_of ~shards:16 other in
        Router.shard_of ~shards:16 id = before);
    case "router: balanced within 20% of the mean at load 2000/shard"
      (fun () ->
        let shards = 16 and n = 32_000 in
        let counts = Array.make shards 0 in
        for i = 0 to n - 1 do
          let s = Router.shard_of ~shards (Printf.sprintf "tenant-%08d" i) in
          counts.(s) <- counts.(s) + 1
        done;
        let mean = n / shards in
        Array.iteri
          (fun s c ->
            if c * 5 < mean * 4 || c * 5 > mean * 6 then
              Alcotest.failf "shard %d holds %d of mean %d (>20%% skew)" s c
                mean)
          counts);
    case "router: rejects a non-positive shard count" (fun () ->
        Alcotest.check_raises "shards=0"
          (Invalid_argument "Router.shard_of: shards < 1") (fun () ->
            ignore (Router.shard_of ~shards:0 "x")));
  ]

let backpressure_tests =
  let open Util in
  [
    case "saturated queue rejects with typed Overloaded, never drops"
      (fun () ->
        let svc = small_service ~shards:1 ~cap:8 "bp-typed" in
        for i = 0 to 7 do
          submit_ok svc (Printf.sprintf "t%d" i) Service.Admit
        done;
        check Alcotest.int "at capacity" 8 (Service.queue_depth svc 0);
        (match Service.submit svc ~tenant:"t8" Service.Admit with
        | Ok () -> Alcotest.fail "submit beyond capacity must be rejected"
        | Error (Service.Overloaded { shard; depth }) ->
          check Alcotest.int "rejecting shard" 0 shard;
          check Alcotest.int "depth at rejection" 8 depth);
        (* The rejection left the queue untouched. *)
        check Alcotest.int "depth unchanged" 8 (Service.queue_depth svc 0);
        let responses = Service.drain svc in
        check Alcotest.int "all accepted requests processed" 8
          (List.length responses);
        (* The rejected request was refused, not silently queued. *)
        let l = Service.ledger svc in
        check Alcotest.int "submitted" 9 l.Service.submitted;
        check Alcotest.int "accepted" 8 l.Service.accepted;
        check Alcotest.int "rejected" 1 l.Service.rejected;
        check Alcotest.int "processed" 8 l.Service.processed;
        (* After draining there is room again. *)
        submit_ok svc "t8" Service.Admit;
        ignore (Service.drain svc);
        check Alcotest.int "late tenant admitted" 9
          (Service.ledger svc).Service.admitted);
    case "rejected / queue-depth metrics match the ledger exactly"
      (fun () ->
        Telemetry.reset ();
        let svc = small_service ~shards:1 ~cap:4 "bp-metrics" in
        let refused = ref 0 in
        for i = 0 to 9 do
          match
            Service.submit svc ~tenant:(Printf.sprintf "m%d" i) Service.Admit
          with
          | Ok () -> ()
          | Error (Service.Overloaded _) -> incr refused
        done;
        let l = Service.ledger svc in
        check Alcotest.int "typed rejections seen by the submitter" 6 !refused;
        check Alcotest.int "ledger rejected" 6 l.Service.rejected;
        check Alcotest.int "counter service.submitted" l.Service.submitted
          (Telemetry.counter_value "service.submitted");
        check Alcotest.int "counter service.accepted" l.Service.accepted
          (Telemetry.counter_value "service.accepted");
        check Alcotest.int "counter service.rejected" l.Service.rejected
          (Telemetry.counter_value "service.rejected");
        check (Alcotest.float 0.0) "gauge service.queue.depth" 4.0
          (Telemetry.gauge_value (Telemetry.gauge "service.queue.depth"));
        check (Alcotest.float 0.0) "gauge service.queue.peak"
          (float_of_int l.Service.queue_peak)
          (Telemetry.gauge_value (Telemetry.gauge "service.queue.peak"));
        ignore (Service.drain svc);
        let l = Service.ledger svc in
        check Alcotest.int "counter service.processed" l.Service.processed
          (Telemetry.counter_value "service.processed");
        check (Alcotest.float 0.0) "depth gauge back to zero" 0.0
          (Telemetry.gauge_value (Telemetry.gauge "service.queue.depth")));
    qcheck ~count:60
      "random submit/drain interleavings: depth bounded, nothing lost"
      QCheck2.Gen.(list_size (int_range 1 120) (int_range 0 9))
      (fun ops ->
        let cap = 5 in
        let svc = small_service ~shards:2 ~cap ~quantum:2 "bp-random" in
        List.iter
          (fun op ->
            if op >= 8 then ignore (Service.drain svc)
            else (
              match
                Service.submit svc
                  ~tenant:(Printf.sprintf "r%d" op)
                  Service.Admit
              with
              (* backpressure is an expected outcome here; the ledger
                 cross-check below accounts for every rejection *)
              | Ok () | Error (Service.Overloaded _) -> ());
            assert (Service.queue_depth svc 0 <= cap);
            assert (Service.queue_depth svc 1 <= cap))
          ops;
        ignore (Service.drain svc);
        let l = Service.ledger svc in
        l.Service.processed = l.Service.accepted
        && l.Service.submitted = l.Service.accepted + l.Service.rejected
        && l.Service.queue_peak <= cap
        && Service.pending svc = 0);
  ]

(* A small but complete campaign configuration, sized so the quick
   suite can afford to run it twice (once per domain count). *)
let small_campaign seed faults =
  {
    Engine.default_service_config with
    Engine.sv_seed = seed;
    sv_identities = 600;
    sv_lookup_stride = 7;
    sv_heavy = 8;
    sv_corrupt = 2;
    sv_audit_rounds = 1;
    sv_service =
      {
        Service.default_config with
        Service.shards = 8;
        queue_capacity = 64;
        drain_quantum = 8;
        faults;
      };
  }

let campaign_fingerprint (s : Engine.service_stats) =
  ( s.Engine.sv_digest,
    s.Engine.sv_ledger,
    Array.to_list s.Engine.sv_shard_tenants,
    (s.Engine.sv_false_alarms, s.Engine.sv_detected, s.Engine.sv_missed) )

let identity_tests =
  let open Util in
  [
    case "campaign results value-identical at 1 vs 4 domains" (fun () ->
        let cfg = small_campaign "svc-identity" Transport.perfect in
        let a = with_domains 1 (fun () -> Engine.run_service cfg) in
        let b = with_domains 4 (fun () -> Engine.run_service cfg) in
        check Alcotest.bool "fingerprints agree" true
          (campaign_fingerprint a = campaign_fingerprint b);
        check Alcotest.string "digest" a.Engine.sv_digest b.Engine.sv_digest;
        check Alcotest.int "admitted" 600
          a.Engine.sv_ledger.Service.admitted);
    slow_case "faulty-channel campaign value-identical at 1 vs 4 domains"
      (fun () ->
        let cfg =
          small_campaign "svc-identity-lossy"
            (Transport.lossy ~drop:0.1 ~tamper:0.05 ())
        in
        let a = with_domains 1 (fun () -> Engine.run_service cfg) in
        let b = with_domains 4 (fun () -> Engine.run_service cfg) in
        check Alcotest.bool "fingerprints agree" true
          (campaign_fingerprint a = campaign_fingerprint b));
  ]

let isolation_tests =
  let open Util in
  [
    case "corruption is isolated: co-resident tenants never blamed"
      (fun () ->
        (* One shard, so every tenant is co-resident with the rotten
           one. *)
        let svc = small_service ~shards:1 ~cap:64 ~quantum:8 "isolation" in
        let tenants = [ "evil"; "good-a"; "good-b"; "good-c" ] in
        List.iter
          (fun t ->
            submit_ok svc t Service.Admit;
            submit_ok svc t (Service.Store { file = "f"; payloads = blocks 4 }))
          tenants;
        ignore (Service.drain svc);
        submit_ok svc "evil" (Service.Corrupt { file = "f" });
        ignore (Service.drain svc);
        for _round = 1 to 3 do
          List.iter
            (fun t ->
              submit_ok svc t
                (Service.Audit_storage { file = "f"; samples = 4 }))
            tenants;
          List.iter
            (fun (t, _req, response) ->
              match response with
              | Service.Audited { report; _ } ->
                (* Full coverage (samples = blocks): the corrupted
                   file always fails, the honest ones never do. *)
                check Alcotest.bool (t ^ " intact") (t <> "evil")
                  report.Seccloud.Agency.intact
              | _ -> Alcotest.fail "expected an audit response")
            (Service.drain svc)
        done;
        let l = Service.ledger svc in
        check Alcotest.int "alarms only for the corrupted tenant" 3
          l.Service.audit_alarms);
    case "tenant-qualified storage: same file name, different tenants"
      (fun () ->
        let svc = small_service ~shards:1 ~cap:16 "qualified" in
        submit_ok svc "alice" Service.Admit;
        submit_ok svc "bob" Service.Admit;
        submit_ok svc "alice"
          (Service.Store { file = "report"; payloads = blocks 3 });
        submit_ok svc "bob"
          (Service.Store { file = "report"; payloads = blocks 5 });
        ignore (Service.drain svc);
        submit_ok svc "alice" Service.Lookup;
        submit_ok svc "bob" Service.Lookup;
        List.iter
          (fun (_t, _req, response) ->
            match response with
            | Service.Info { known; files } ->
              check Alcotest.bool "known" true known;
              check Alcotest.int "one file each" 1 files
            | _ -> Alcotest.fail "expected lookup info")
          (Service.drain svc);
        (* Both uploads audit clean: bob's 5-block "report" did not
           overwrite alice's 3-block one. *)
        submit_ok svc "alice"
          (Service.Audit_storage { file = "report"; samples = 3 });
        submit_ok svc "bob"
          (Service.Audit_storage { file = "report"; samples = 5 });
        List.iter
          (fun (t, _req, response) ->
            match response with
            | Service.Audited { report; _ } ->
              check Alcotest.bool (t ^ " intact") true
                report.Seccloud.Agency.intact
            | _ -> Alcotest.fail "expected an audit response")
          (Service.drain svc));
    case "requests for unknown tenants and files are denied, typed"
      (fun () ->
        let svc = small_service ~shards:2 ~cap:16 "denied" in
        submit_ok svc "ghost" (Service.Audit_storage { file = "f"; samples = 1 });
        submit_ok svc "known" Service.Admit;
        ignore (Service.drain svc);
        submit_ok svc "known" (Service.Corrupt { file = "nope" });
        submit_ok svc "known" (Service.Store { file = "e"; payloads = [] });
        let denied =
          List.filter_map
            (fun (_t, _req, r) ->
              match r with Service.Denied d -> Some d | _ -> None)
            (Service.drain svc)
        in
        check Alcotest.int "both denied" 2 (List.length denied);
        check Alcotest.int "denials ledger" 3 (Service.ledger svc).Service.denials);
  ]

let soak_tests =
  let open Util in
  [
    slow_case "10k-identity mixed soak over a lossy channel" (fun () ->
        Telemetry.reset ();
        let cfg =
          {
            Engine.default_service_config with
            Engine.sv_seed = "soak-10k";
            sv_identities = 10_000;
            sv_lookup_stride = 8;
            sv_heavy = 32;
            sv_corrupt = 8;
            sv_audit_rounds = 2;
            sv_service =
              {
                Service.default_config with
                Service.shards = 16;
                queue_capacity = 256;
                drain_quantum = 32;
                faults = Transport.lossy ~drop:0.05 ~tamper:0.02 ();
              };
          }
        in
        let stats = Engine.run_service cfg in
        let l = stats.Engine.sv_ledger in
        (* Soundness: ground truth is never contradicted — no honest
           tenant flagged by crypto alone, no corrupted file passing a
           full-coverage storage audit. *)
        check Alcotest.int "false alarms" 0 stats.Engine.sv_false_alarms;
        check Alcotest.int "missed corruptions" 0 stats.Engine.sv_missed;
        check Alcotest.bool "corruption detected" true
          (stats.Engine.sv_detected > 0);
        (* Scale and accounting. *)
        check Alcotest.int "all identities admitted" 10_000
          l.Service.admitted;
        check Alcotest.int "every accepted request processed"
          l.Service.accepted l.Service.processed;
        check Alcotest.bool "queue peak within capacity" true
          (l.Service.queue_peak <= 256);
        check Alcotest.int "tenants spread over all shards" 16
          (Array.length
             (Array.of_list
                (List.filter (fun c -> c > 0)
                   (Array.to_list stats.Engine.sv_shard_tenants))));
        (* No leaked spans across the whole campaign. *)
        check Alcotest.int "open spans" 0 (Telemetry.open_spans ()));
  ]

let mutation_tests =
  let open Util in
  [
    case "mutation burst: proof-checked dynamics, audited root" (fun () ->
        let svc = small_service ~shards:2 ~cap:32 ~quantum:8 "mutate" in
        submit_ok svc "alice" Service.Admit;
        ignore (Service.drain svc);
        submit_ok svc "alice"
          (Service.Store { file = "ledger"; payloads = blocks 5 });
        ignore (Service.drain svc);
        submit_ok svc "alice" (Service.Mutate { file = "ledger"; ops = 12 });
        (match Service.drain svc with
        | [ (_, _, Service.Mutated { applied; blocks; intact; diverged }) ] ->
          check Alcotest.int "all ops applied" 12 applied;
          check Alcotest.bool "grew or held" true (blocks >= 5);
          check Alcotest.bool "rank-proof audit intact" true intact;
          check Alcotest.bool "no divergence" false diverged
        | _ -> Alcotest.fail "expected one Mutated response");
        let l = Service.ledger svc in
        check Alcotest.int "mutations" 1 l.Service.mutations;
        check Alcotest.int "mutation ops" 12 l.Service.mutation_ops;
        check Alcotest.int "mutation alarms" 0 l.Service.mutation_alarms);
    case "mutation of an unknown file is denied, typed" (fun () ->
        let svc = small_service ~shards:1 ~cap:16 "mutate-deny" in
        submit_ok svc "bob" Service.Admit;
        ignore (Service.drain svc);
        submit_ok svc "bob" (Service.Mutate { file = "ghost"; ops = 3 });
        (match Service.drain svc with
        | [ (_, _, Service.Denied Service.Unknown_file) ] -> ()
        | _ -> Alcotest.fail "expected a typed denial");
        check Alcotest.int "no mutations counted" 0
          (Service.ledger svc).Service.mutations);
    case "mutation bursts are deterministic across domain counts" (fun () ->
        (* Fixed payloads: [blocks] draws from a shared DRBG, so both
           runs must see identical data. *)
        let payloads = blocks 4 in
        let run () =
          let svc = small_service ~shards:4 ~cap:64 ~quantum:8 "mutate-det" in
          for i = 0 to 7 do
            submit_ok svc (Printf.sprintf "m%d" i) Service.Admit
          done;
          ignore (Service.drain svc);
          for i = 0 to 7 do
            submit_ok svc (Printf.sprintf "m%d" i)
              (Service.Store { file = "f"; payloads })
          done;
          ignore (Service.drain svc);
          for i = 0 to 7 do
            submit_ok svc (Printf.sprintf "m%d" i)
              (Service.Mutate { file = "f"; ops = 6 })
          done;
          ignore (Service.drain svc);
          Service.digest svc
        in
        let d1 = with_domains 1 run in
        let d4 = with_domains 4 run in
        check Alcotest.string "digest" d1 d4);
  ]

let suite =
  router_tests @ backpressure_tests @ identity_tests @ isolation_tests
  @ mutation_tests @ soak_tests
