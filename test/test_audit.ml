module Sampling = Sc_audit.Sampling
module Optimal = Sc_audit.Optimal
module Protocol = Sc_audit.Protocol
module Batch = Sc_audit.Batch
module Executor = Sc_compute.Executor
module Task = Sc_compute.Task
module Server = Sc_storage.Server

let close ?(eps = 1e-9) a b = Float.abs (a -. b) < eps

let sampling_tests =
  let open Util in
  [
    case "pr_fcs closed form (eq. 10)" (fun () ->
        check Alcotest.bool "t=0 gives 1" true
          (close 1.0 (Sampling.pr_fcs ~csc:0.3 ~range:2.0 ~t:0));
        check Alcotest.bool "csc=1 never caught" true
          (close 1.0 (Sampling.pr_fcs ~csc:1.0 ~range:2.0 ~t:100));
        check Alcotest.bool "csc=0, R=2, t=3 -> 1/8" true
          (close 0.125 (Sampling.pr_fcs ~csc:0.0 ~range:2.0 ~t:3));
        check Alcotest.bool "infinite range kills guessing" true
          (close 0.0 (Sampling.pr_fcs ~csc:0.0 ~range:infinity ~t:1)));
    case "pr_pcs closed form (eq. 12)" (fun () ->
        check Alcotest.bool "ssc only" true
          (close 0.25 (Sampling.pr_pcs ~ssc:0.5 ~sig_forge:0.0 ~t:2));
        check Alcotest.bool "forgery floor" true
          (close 1e-9 (Sampling.pr_pcs ~ssc:0.0 ~sig_forge:1e-9 ~t:1)));
    case "invalid arguments rejected" (fun () ->
        Alcotest.check_raises "csc > 1"
          (Invalid_argument "Sampling: csc must lie in [0,1]") (fun () ->
            ignore (Sampling.pr_fcs ~csc:1.5 ~range:2.0 ~t:1));
        Alcotest.check_raises "range < 1"
          (Invalid_argument "Sampling.pr_fcs: range < 1") (fun () ->
            ignore (Sampling.pr_fcs ~csc:0.5 ~range:0.5 ~t:1)));
    case "monotonicity in t" (fun () ->
        let p t = Sampling.pr_cheat ~csc:0.6 ~ssc:0.4 ~range:4.0 ~sig_forge:1e-9 ~t in
        for t = 1 to 50 do
          if p t > p (t - 1) +. 1e-12 then Alcotest.fail "not decreasing"
        done);
    case "paper spot checks: t=33 and t=15" (fun () ->
        check Alcotest.(option int) "R=2" (Some 33)
          (Sampling.required_samples ~csc:0.5 ~ssc:0.5 ~range:2.0 ~sig_forge:0.0
             ~eps:1e-4 ());
        check Alcotest.(option int) "R=inf" (Some 15)
          (Sampling.required_samples ~csc:0.5 ~ssc:0.5 ~range:infinity
             ~sig_forge:0.0 ~eps:1e-4 ()));
    case "required_samples is the threshold" (fun () ->
        match
          Sampling.required_samples ~csc:0.7 ~ssc:0.3 ~range:8.0 ~sig_forge:1e-9
            ~eps:1e-5 ()
        with
        | None -> Alcotest.fail "expected finite"
        | Some t ->
          let p k =
            Sampling.pr_cheat ~csc:0.7 ~ssc:0.3 ~range:8.0 ~sig_forge:1e-9 ~t:k
          in
          check Alcotest.bool "t works" true (p t <= 1e-5);
          check Alcotest.bool "t-1 fails" true (p (t - 1) > 1e-5));
    case "undetectable cheater gives None" (fun () ->
        check Alcotest.(option int) "csc=ssc=1" None
          (Sampling.required_samples ~csc:1.0 ~ssc:1.0 ~range:2.0 ~sig_forge:0.0
             ~eps:1e-4 ()));
    case "figure4 grid shape and monotonicity" (fun () ->
        let grid = Sampling.figure4_grid ~eps:1e-4 ~range:2.0 () in
        check Alcotest.int "100 points" 100 (List.length grid);
        (* t grows with CSC along a fixed-SSC row. *)
        let row =
          List.filter (fun g -> close g.Sampling.ssc 0.0) grid
          |> List.sort (fun a b -> compare a.Sampling.csc b.Sampling.csc)
        in
        let ts = List.filter_map (fun g -> g.Sampling.t) row in
        check Alcotest.bool "monotone" true
          (List.sort compare ts = ts));
    case "detection_probability complements pr_cheat" (fun () ->
        let d =
          Sampling.detection_probability ~csc:0.5 ~ssc:0.5 ~range:2.0
            ~sig_forge:0.0 ~t:10
        in
        let p = Sampling.pr_cheat ~csc:0.5 ~ssc:0.5 ~range:2.0 ~sig_forge:0.0 ~t:10 in
        check Alcotest.bool "complement" true (close 1.0 (d +. p)));
  ]

let optimal_tests =
  let open Util in
  let costs =
    { Optimal.a1 = 1.0; a2 = 1.0; a3 = 1.0; c_trans = 1.0; c_comp = 5.0; c_cheat = 1e4 }
  in
  [
    case "closed form matches exhaustive search" (fun () ->
        List.iter
          (fun q ->
            let closed = Optimal.optimal_t costs ~cheat_prob:q in
            let brute = Optimal.argmin_t costs ~cheat_prob:q in
            (* Ceiling rounding can land one off the true integer
               argmin; costs must still agree at the optimum. *)
            let c_closed = Optimal.total_cost costs ~cheat_prob:q ~t:closed in
            let c_brute = Optimal.total_cost costs ~cheat_prob:q ~t:brute in
            if Float.abs (c_closed -. c_brute) > 1.0 +. (0.01 *. c_brute)
            then Alcotest.failf "q=%f closed=%d brute=%d" q closed brute)
          [ 0.1; 0.25; 0.5; 0.75; 0.9; 0.99 ]);
    case "total cost shape: decreasing then increasing" (fun () ->
        let q = 0.5 in
        let t_star = Optimal.argmin_t costs ~cheat_prob:q in
        check Alcotest.bool "interior optimum" true (t_star > 0 && t_star < 100);
        check Alcotest.bool "left higher" true
          (Optimal.total_cost costs ~cheat_prob:q ~t:0
           > Optimal.total_cost costs ~cheat_prob:q ~t:t_star);
        check Alcotest.bool "right higher" true
          (Optimal.total_cost costs ~cheat_prob:q ~t:(t_star + 50)
           > Optimal.total_cost costs ~cheat_prob:q ~t:t_star));
    case "higher cheat damage raises t*" (fun () ->
        let t1 = Optimal.optimal_t costs ~cheat_prob:0.5 in
        let t2 =
          Optimal.optimal_t { costs with Optimal.c_cheat = 1e8 } ~cheat_prob:0.5
        in
        check Alcotest.bool "more damage, more samples" true (t2 > t1));
    case "higher transmission cost lowers t*" (fun () ->
        let t1 = Optimal.optimal_t costs ~cheat_prob:0.5 in
        let t2 =
          Optimal.optimal_t { costs with Optimal.c_trans = 100.0 } ~cheat_prob:0.5
        in
        check Alcotest.bool "fewer samples" true (t2 < t1));
    case "invalid cheat_prob rejected" (fun () ->
        Alcotest.check_raises "q=1"
          (Invalid_argument "Optimal.optimal_t: cheat_prob must be in (0,1)")
          (fun () -> ignore (Optimal.optimal_t costs ~cheat_prob:1.0)));
    case "learn_costs averages history" (fun () ->
        let records =
          [
            { Optimal.samples = 10; bytes_transferred = 1000.0;
              recompute_seconds = 0.5; undetected_cheat_damage = None };
            { Optimal.samples = 10; bytes_transferred = 3000.0;
              recompute_seconds = 1.5; undetected_cheat_damage = Some 500.0 };
          ]
        in
        let k = Optimal.learn_costs records in
        check Alcotest.bool "c_trans" true (close k.Optimal.c_trans 200.0);
        check Alcotest.bool "c_comp" true (close k.Optimal.c_comp 1.0);
        check Alcotest.bool "c_cheat" true (close k.Optimal.c_cheat 500.0));
    case "learn_costs rejects empty history" (fun () ->
        Alcotest.check_raises "empty"
          (Invalid_argument "Optimal.learn_costs: empty history") (fun () ->
            ignore (Optimal.learn_costs [])));
  ]

(* --- Algorithm 1 end-to-end ----------------------------------------- *)

let system = Lazy.force Util.shared_system
let pub = Seccloud.System.public system
let da_key = Seccloud.System.da_key system
let cs_key = Seccloud.System.cs_key system "cs-1"
let alice = Seccloud.System.register_user system "alice"
let bs = Util.fresh_bs "audit-tests"

let setup_execution ?(behaviour = Executor.Honest) ?(n_tasks = 16) () =
  let payloads =
    List.init 20 (fun i -> Sc_storage.Block.encode_ints [ i; i * 2; i * 3 ])
  in
  let server = Server.create Server.Honest ~drbg:(Sc_hash.Drbg.create ~seed:"as") in
  Server.store server
    (Sc_storage.Signer.sign_file pub alice ~bytes_source:bs ~cs_id:"cs-1"
       ~da_id:"da" ~file:"data" payloads);
  let drbg = Sc_hash.Drbg.create ~seed:"audit-exec" in
  let service =
    List.init n_tasks (fun i -> { Task.func = Task.Sum; position = i mod 20 })
  in
  Executor.run pub ~cs_key ~server ~behaviour ~drbg ~owner:"alice" ~file:"data"
    service

let warrant () =
  Sc_ibc.Warrant.issue pub alice ~bytes_source:bs ~delegatee:"da" ~now:0.0
    ~lifetime:1e9 ~scope:"tests"

let audit ?(samples = 8) execution =
  let commitment = Protocol.commitment_of_execution execution in
  let drbg = Sc_hash.Drbg.create ~seed:"audit-chal" in
  let challenge =
    Protocol.make_challenge ~drbg ~n_tasks:commitment.Protocol.n_tasks ~samples
      ~warrant:(warrant ())
  in
  match Protocol.respond pub ~now:1.0 execution challenge with
  | None -> { Protocol.valid = false; failures = [ Protocol.Warrant_invalid ] }
  | Some responses ->
    Protocol.verify pub ~verifier_key:da_key ~role:`Da ~owner:"alice" commitment
      challenge responses

let protocol_tests =
  let open Util in
  [
    case "honest execution passes" (fun () ->
        let v = audit (setup_execution ()) in
        check Alcotest.bool "valid" true v.Protocol.valid;
        check Alcotest.int "no failures" 0 (List.length v.Protocol.failures));
    case "guessing cheat fails with Computing_wrong" (fun () ->
        let v =
          audit ~samples:16
            (setup_execution ~behaviour:(Executor.Guess_fraction (1.0, 1 lsl 30)) ())
        in
        check Alcotest.bool "invalid" false v.Protocol.valid;
        check Alcotest.bool "computing flagged" true
          (List.exists
             (function Protocol.Computing_wrong _ -> true | _ -> false)
             v.Protocol.failures));
    case "wrong-position cheat fails with Signature_wrong" (fun () ->
        let v =
          audit ~samples:16
            (setup_execution ~behaviour:(Executor.Wrong_position_fraction 1.0) ())
        in
        check Alcotest.bool "invalid" false v.Protocol.valid;
        check Alcotest.bool "signature flagged" true
          (List.exists
             (function Protocol.Signature_wrong _ -> true | _ -> false)
             v.Protocol.failures));
    case "commit-garbage cheat fails with Root_wrong" (fun () ->
        let v =
          audit ~samples:16
            (setup_execution ~behaviour:(Executor.Commit_garbage_fraction 1.0) ())
        in
        check Alcotest.bool "invalid" false v.Protocol.valid;
        check Alcotest.bool "root flagged" true
          (List.exists
             (function Protocol.Root_wrong _ -> true | _ -> false)
             v.Protocol.failures));
    case "forged root signature detected" (fun () ->
        let execution = setup_execution () in
        let commitment = Protocol.commitment_of_execution execution in
        let forged = { commitment with Protocol.cs_id = "cs-2" } in
        let drbg = Sc_hash.Drbg.create ~seed:"chal" in
        let challenge =
          Protocol.make_challenge ~drbg ~n_tasks:commitment.Protocol.n_tasks
            ~samples:4 ~warrant:(warrant ())
        in
        let responses = Option.get (Protocol.respond pub ~now:1.0 execution challenge) in
        let v =
          Protocol.verify pub ~verifier_key:da_key ~role:`Da ~owner:"alice"
            forged challenge responses
        in
        check Alcotest.bool "invalid" false v.Protocol.valid;
        check Alcotest.bool "root sig flagged" true
          (List.mem Protocol.Root_signature_wrong v.Protocol.failures));
    case "expired warrant refused by server" (fun () ->
        let execution = setup_execution () in
        let stale =
          Sc_ibc.Warrant.issue pub alice ~bytes_source:bs ~delegatee:"da"
            ~now:0.0 ~lifetime:10.0 ~scope:"old"
        in
        let drbg = Sc_hash.Drbg.create ~seed:"chal" in
        let challenge =
          Protocol.make_challenge ~drbg ~n_tasks:16 ~samples:4 ~warrant:stale
        in
        check Alcotest.bool "refused" true
          (Protocol.respond pub ~now:100.0 execution challenge = None));
    case "missing responses reported" (fun () ->
        let execution = setup_execution () in
        let commitment = Protocol.commitment_of_execution execution in
        let drbg = Sc_hash.Drbg.create ~seed:"chal" in
        let challenge =
          Protocol.make_challenge ~drbg ~n_tasks:16 ~samples:6 ~warrant:(warrant ())
        in
        let responses =
          match Option.get (Protocol.respond pub ~now:1.0 execution challenge) with
          | _ :: rest -> rest
          | [] -> []
        in
        let v =
          Protocol.verify pub ~verifier_key:da_key ~role:`Da ~owner:"alice"
            commitment challenge responses
        in
        check Alcotest.bool "invalid" false v.Protocol.valid;
        check Alcotest.bool "missing flagged" true
          (List.exists
             (function Protocol.Missing_response _ -> true | _ -> false)
             v.Protocol.failures));
    case "challenge samples are distinct and in range" (fun () ->
        let drbg = Sc_hash.Drbg.create ~seed:"chal-dist" in
        let c =
          Protocol.make_challenge ~drbg ~n_tasks:30 ~samples:30 ~warrant:(warrant ())
        in
        let sorted = List.sort_uniq compare c.Protocol.sample_indices in
        check Alcotest.int "30 distinct" 30 (List.length sorted);
        check Alcotest.bool "in range" true
          (List.for_all (fun i -> i >= 0 && i < 30) sorted));
    case "samples clamped to n_tasks" (fun () ->
        let drbg = Sc_hash.Drbg.create ~seed:"clamp" in
        let c =
          Protocol.make_challenge ~drbg ~n_tasks:5 ~samples:50 ~warrant:(warrant ())
        in
        check Alcotest.int "clamped" 5 (List.length c.Protocol.sample_indices));
  ]

let batch_tests =
  let open Util in
  let make_job ?(behaviour = Executor.Honest) tag =
    let execution = setup_execution ~behaviour () in
    let commitment = Protocol.commitment_of_execution execution in
    let drbg = Sc_hash.Drbg.create ~seed:("job:" ^ tag) in
    let challenge =
      Protocol.make_challenge ~drbg ~n_tasks:commitment.Protocol.n_tasks
        ~samples:6 ~warrant:(warrant ())
    in
    let responses = Option.get (Protocol.respond pub ~now:1.0 execution challenge) in
    { Batch.owner = "alice"; commitment; challenge; responses }
  in
  [
    case "batched verification accepts honest jobs" (fun () ->
        let jobs = [ make_job "a"; make_job "b"; make_job "c" ] in
        let v = Batch.verify_jobs pub ~verifier_key:da_key ~role:`Da jobs in
        check Alcotest.bool "valid" true v.Protocol.valid);
    case "batched verification pairing count is constant" (fun () ->
        (* One multi-pairing for every root signature together + one
           for the aggregate equation — independent of both the job
           count and the per-job sample count (the seed needed
           2 per job + 1). *)
        let jobs = [ make_job "p1"; make_job "p2" ] in
        let _, pairings = Batch.pairings_used pub ~verifier_key:da_key ~role:`Da jobs in
        check Alcotest.int "2 jobs" 2 pairings);
    case "batched verification catches a cheating job and names it" (fun () ->
        let jobs =
          [
            make_job "good";
            make_job ~behaviour:(Executor.Wrong_position_fraction 1.0) "evil";
          ]
        in
        let v = Batch.verify_jobs pub ~verifier_key:da_key ~role:`Da jobs in
        check Alcotest.bool "invalid" false v.Protocol.valid;
        check Alcotest.bool "blame assigned" true
          (List.exists
             (function Protocol.Signature_wrong _ -> true | _ -> false)
             v.Protocol.failures));
    case "batched and individual verdicts agree" (fun () ->
        List.iter
          (fun behaviour ->
            let execution = setup_execution ~behaviour () in
            let commitment = Protocol.commitment_of_execution execution in
            let drbg = Sc_hash.Drbg.create ~seed:"agree" in
            let challenge =
              Protocol.make_challenge ~drbg ~n_tasks:16 ~samples:10
                ~warrant:(warrant ())
            in
            let responses =
              Option.get (Protocol.respond pub ~now:1.0 execution challenge)
            in
            let individual =
              (Protocol.verify pub ~verifier_key:da_key ~role:`Da ~owner:"alice"
                 commitment challenge responses).Protocol.valid
            in
            let batched =
              (Batch.verify_jobs pub ~verifier_key:da_key ~role:`Da
                 [ { Batch.owner = "alice"; commitment; challenge; responses } ]).Protocol.valid
            in
            check Alcotest.bool "agree" individual batched)
          [
            Executor.Honest;
            Executor.Guess_fraction (1.0, 1 lsl 30);
            Executor.Wrong_position_fraction 1.0;
            Executor.Commit_garbage_fraction 1.0;
          ]);
  ]

(* Properties: one tampered signature in a batch of t is always
   rejected, and the per-job fallback blames exactly the tampered
   index — over random batch sizes, tamper positions and which
   component (U or the designated Σ) was corrupted. *)
let batch_blame_tests =
  let open Util in
  let ibs_pool =
    lazy
      (List.init 16 (fun i ->
           let msg = Printf.sprintf "msg-%d" i in
           msg, Sc_ibc.Ibs.sign pub alice ~bytes_source:bs msg))
  in
  let blame_fixture =
    lazy
      (let execution = setup_execution ~n_tasks:16 () in
       execution, Protocol.commitment_of_execution execution)
  in
  let gen = QCheck2.Gen.(triple (int_range 2 16) (int_bound 15) bool) in
  [
    qcheck ~count:16 "verify_batch rejects one tampered signature, blame sticks"
      gen
      (fun (t, pos, swap_u) ->
        let pos = pos mod t in
        let batch =
          List.filteri (fun i _ -> i < t) (Lazy.force ibs_pool)
          |> List.mapi (fun i (msg, s) ->
                 if i <> pos then "alice", msg, s
                 else
                   let _, donor = List.nth (Lazy.force ibs_pool) ((pos + 1) mod t) in
                   let s' =
                     if swap_u then { s with Sc_ibc.Ibs.u = donor.Sc_ibc.Ibs.u }
                     else { s with Sc_ibc.Ibs.v = donor.Sc_ibc.Ibs.v }
                   in
                   "alice", msg, s')
        in
        (not (Sc_ibc.Ibs.verify_batch pub batch))
        && (* individual re-checks locate exactly the tampered entry *)
        List.for_all
          (fun (i, (signer, msg, s)) ->
            Sc_ibc.Ibs.verify pub ~signer ~msg s = (i <> pos))
          (List.mapi (fun i e -> i, e) batch));
    qcheck ~count:12 "batched audit blames exactly the tampered sample" gen
      (fun (t, pos, swap_u) ->
        let pos = pos mod t in
        let execution, commitment = Lazy.force blame_fixture in
        let challenge =
          { Protocol.sample_indices = List.init t Fun.id; warrant = warrant () }
        in
        let responses =
          Option.get (Protocol.respond pub ~now:1.0 execution challenge)
        in
        let donor = List.nth responses ((pos + 1) mod t) in
        let tampered =
          List.mapi
            (fun i (r : Executor.response) ->
              if i <> pos then r
              else
                let rr = Option.get r.Executor.read in
                let dr = Option.get donor.Executor.read in
                let signed =
                  if swap_u then
                    {
                      rr.Server.signed with
                      Sc_storage.Signer.u = dr.Server.signed.Sc_storage.Signer.u;
                    }
                  else
                    {
                      rr.Server.signed with
                      Sc_storage.Signer.sigma_da =
                        dr.Server.signed.Sc_storage.Signer.sigma_da;
                    }
                in
                { r with Executor.read = Some { rr with Server.signed } })
            responses
        in
        let v =
          Batch.verify_jobs pub ~verifier_key:da_key ~role:`Da
            [
              {
                Batch.owner = "alice";
                commitment;
                challenge;
                responses = tampered;
              };
            ]
        in
        (not v.Protocol.valid)
        && v.Protocol.failures = [ Protocol.Signature_wrong pos ]);
  ]

let trust_tests =
  let open Util in
  let module Trust = Sc_audit.Trust in
  [
    case "unknown server has neutral estimate" (fun () ->
        let t = Trust.create () in
        check (Alcotest.float 1e-9) "prior" 0.5 (Trust.estimate t ~server:"new"));
    case "estimate converges with clean history" (fun () ->
        let t = Trust.create () in
        for _ = 1 to 48 do
          Trust.record t ~server:"good" ~passed:true
        done;
        check (Alcotest.float 1e-9) "49/50" (49.0 /. 50.0)
          (Trust.estimate t ~server:"good");
        check Alcotest.int "streak" 48 (Trust.clean_streak t ~server:"good"));
    case "failure resets the streak and lowers the estimate" (fun () ->
        let t = Trust.create () in
        for _ = 1 to 10 do
          Trust.record t ~server:"s" ~passed:true
        done;
        let before = Trust.estimate t ~server:"s" in
        Trust.record t ~server:"s" ~passed:false;
        check Alcotest.int "streak reset" 0 (Trust.clean_streak t ~server:"s");
        check Alcotest.bool "estimate dropped" true
          (Trust.estimate t ~server:"s" < before));
    case "clean history earns smaller sample sizes" (fun () ->
        let t = Trust.create () in
        let p = Trust.default_policy in
        let t0 = Trust.recommended_samples t p ~server:"s" in
        for _ = 1 to 20 do
          Trust.record t ~server:"s" ~passed:true
        done;
        let t20 = Trust.recommended_samples t p ~server:"s" in
        check Alcotest.bool "monotone non-increasing" true (t20 <= t0);
        check Alcotest.bool "strictly earned" true (t20 < t0);
        (* a failure snaps back to the conservative value *)
        Trust.record t ~server:"s" ~passed:false;
        check Alcotest.int "snap back" t0 (Trust.recommended_samples t p ~server:"s"));
    case "recommendation respects min/max clamps" (fun () ->
        let t = Trust.create () in
        let tight = { Sc_audit.Trust.default_policy with Sc_audit.Trust.max_samples = 5 } in
        check Alcotest.bool "clamped high" true
          (Trust.recommended_samples t tight ~server:"x" <= 5);
        let loose =
          { Sc_audit.Trust.default_policy with Sc_audit.Trust.min_samples = 50; eps = 0.5 }
        in
        check Alcotest.bool "clamped low" true
          (Trust.recommended_samples t loose ~server:"x" >= 50));
    case "persistent cheaters cross the drop threshold" (fun () ->
        let t = Trust.create () in
        for _ = 1 to 10 do
          Trust.record t ~server:"evil" ~passed:false
        done;
        check Alcotest.bool "dropped" true (Trust.should_drop t ~server:"evil");
        check Alcotest.bool "fresh servers kept" false
          (Trust.should_drop t ~server:"fresh"));
  ]

let noninteractive_tests =
  let open Util in
  let module Ni = Sc_audit.Noninteractive in
  [
    case "derived indices are deterministic, distinct and in range" (fun () ->
        let a = Ni.derive_indices ~root:"r" ~epoch:3 ~owner:"alice" ~n_tasks:40 ~samples:12 in
        let b = Ni.derive_indices ~root:"r" ~epoch:3 ~owner:"alice" ~n_tasks:40 ~samples:12 in
        check Alcotest.(list int) "deterministic" a b;
        check Alcotest.int "distinct" 12 (List.length (List.sort_uniq compare a));
        check Alcotest.bool "in range" true (List.for_all (fun i -> i >= 0 && i < 40) a));
    case "derived indices differ across roots, epochs and owners" (fun () ->
        let base = Ni.derive_indices ~root:"r" ~epoch:1 ~owner:"a" ~n_tasks:1000 ~samples:8 in
        check Alcotest.bool "root matters" false
          (base = Ni.derive_indices ~root:"s" ~epoch:1 ~owner:"a" ~n_tasks:1000 ~samples:8);
        check Alcotest.bool "epoch matters" false
          (base = Ni.derive_indices ~root:"r" ~epoch:2 ~owner:"a" ~n_tasks:1000 ~samples:8);
        check Alcotest.bool "owner matters" false
          (base = Ni.derive_indices ~root:"r" ~epoch:1 ~owner:"b" ~n_tasks:1000 ~samples:8));
    case "samples clamp to n_tasks" (fun () ->
        check Alcotest.int "clamped" 5
          (List.length (Ni.derive_indices ~root:"r" ~epoch:0 ~owner:"a" ~n_tasks:5 ~samples:50)));
    case "honest non-interactive proof verifies" (fun () ->
        let execution = setup_execution () in
        let proof = Ni.prove pub ~owner:"alice" ~epoch:7 ~samples:8 execution in
        let v =
          Ni.verify pub ~verifier_key:da_key ~role:`Da ~owner:"alice"
            ~expected_epoch:7 ~samples:8 proof
        in
        check Alcotest.bool "valid" true v.Protocol.valid);
    case "stale epoch rejected (replay protection)" (fun () ->
        let execution = setup_execution () in
        let proof = Ni.prove pub ~owner:"alice" ~epoch:7 ~samples:6 execution in
        let v =
          Ni.verify pub ~verifier_key:da_key ~role:`Da ~owner:"alice"
            ~expected_epoch:8 ~samples:6 proof
        in
        check Alcotest.bool "rejected" false v.Protocol.valid);
    case "server cannot choose its own indices" (fun () ->
        let execution = setup_execution () in
        let honest = Ni.prove pub ~owner:"alice" ~epoch:1 ~samples:6 execution in
        (* Hand-pick different (still-valid) responses: verification
           must notice the index set mismatch. *)
        let forged =
          { honest with Ni.responses = List.map (Executor.respond execution) [0;1;2;3;4;5] }
        in
        let honest_indices =
          List.sort compare
            (List.map (fun (r : Executor.response) -> r.Executor.task_index)
               honest.Ni.responses)
        in
        if honest_indices = [ 0; 1; 2; 3; 4; 5 ] then ()
        else begin
          let v =
            Ni.verify pub ~verifier_key:da_key ~role:`Da ~owner:"alice"
              ~expected_epoch:1 ~samples:6 forged
          in
          check Alcotest.bool "rejected" false v.Protocol.valid
        end);
    case "cheating executions fail the non-interactive audit" (fun () ->
        List.iter
          (fun behaviour ->
            let execution = setup_execution ~behaviour () in
            let proof = Ni.prove pub ~owner:"alice" ~epoch:2 ~samples:12 execution in
            let v =
              Ni.verify pub ~verifier_key:da_key ~role:`Da ~owner:"alice"
                ~expected_epoch:2 ~samples:12 proof
            in
            check Alcotest.bool "caught" false v.Protocol.valid)
          [
            Executor.Guess_fraction (1.0, 1 lsl 30);
            Executor.Wrong_position_fraction 1.0;
            Executor.Commit_garbage_fraction 1.0;
          ]);
  ]

let suite =
  sampling_tests @ optimal_tests @ protocol_tests @ batch_tests
  @ batch_blame_tests @ trust_tests
  @ noninteractive_tests
