open Sc_bignum
open Sc_field

(* A fixed 3-mod-4 prime for most tests. *)
let p = Nat.of_decimal "2147483647" (* 2^31 - 1, = 3 mod 4 *)
let fp = Fp.create p

let nat = Alcotest.testable Nat.pp Nat.equal
let fp2_el = Alcotest.testable Fp2.pp Fp2.equal

let gen_el =
  let open QCheck2.Gen in
  let* bytes = string_size ~gen:char (return 8) in
  return (Fp.of_nat fp (Nat.of_bytes_be bytes))

let gen_el2 = QCheck2.Gen.(map (fun (a, b) -> Fp2.make a b) (pair gen_el gen_el))

let unit_tests =
  let open Util in
  [
    case "characteristic" (fun () -> check nat "p" p (Fp.characteristic fp));
    case "of_int handles negatives" (fun () ->
        check nat "-1" (Nat.sub p Nat.one) (Fp.of_int fp (-1));
        check nat "-p = 0" Nat.zero (Fp.of_int fp (-2147483647)));
    case "inv of zero raises" (fun () ->
        Alcotest.check_raises "div0" Division_by_zero (fun () ->
            ignore (Fp.inv fp Fp.zero)));
    case "legendre of squares" (fun () ->
        for i = 2 to 20 do
          let sq = Fp.sqr fp (Fp.of_int fp i) in
          Alcotest.(check int) (Printf.sprintf "%d^2 is QR" i) 1 (Fp.legendre fp sq)
        done);
    case "legendre multiplicativity" (fun () ->
        (* (ab|p) = (a|p)(b|p) *)
        let pairs = [ 2, 3; 5, 7; 11, 13; 6, 35 ] in
        List.iter
          (fun (a, b) ->
            let la = Fp.legendre fp (Fp.of_int fp a) in
            let lb = Fp.legendre fp (Fp.of_int fp b) in
            let lab = Fp.legendre fp (Fp.of_int fp (a * b)) in
            Alcotest.(check int) "multiplicative" (la * lb) lab)
          pairs);
    case "sqrt recovers squares" (fun () ->
        for i = 2 to 30 do
          let x = Fp.of_int fp (i * 997) in
          let sq = Fp.sqr fp x in
          match Fp.sqrt fp sq with
          | None -> Alcotest.fail "square must have a root"
          | Some y ->
            if not (Fp.equal y x || Fp.equal y (Fp.neg fp x))
            then Alcotest.fail "wrong root"
        done);
    case "sqrt of non-residue is None" (fun () ->
        (* Find a non-residue and check. *)
        let rec find i =
          if Fp.legendre fp (Fp.of_int fp i) = -1 then i else find (i + 1)
        in
        let nr = find 2 in
        check Alcotest.bool "none" true (Fp.sqrt fp (Fp.of_int fp nr) = None));
    case "sqrt requires p = 3 mod 4" (fun () ->
        let bad = Fp.create (Nat.of_int 13) (* 13 = 1 mod 4 *) in
        Alcotest.check_raises "1 mod 4"
          (Invalid_argument "Fp.sqrt: characteristic is not 3 mod 4") (fun () ->
            ignore (Fp.sqrt bad (Fp.of_int bad 4))));
    case "fp2 check_ctx rejects 1 mod 4" (fun () ->
        let bad = Fp.create (Nat.of_int 13) in
        Alcotest.check_raises "1 mod 4"
          (Invalid_argument "Fp2: characteristic must be 3 mod 4 for i^2 = -1")
          (fun () -> Fp2.check_ctx bad));
    case "fp2 i^2 = -1" (fun () ->
        let i = Fp2.make Fp.zero Fp.one in
        check fp2_el "i*i" (Fp2.of_base (Fp.of_int fp (-1))) (Fp2.mul fp i i));
    case "fp2 inverse" (fun () ->
        let x = Fp2.make (Fp.of_int fp 3) (Fp.of_int fp 4) in
        check fp2_el "x * x^-1" Fp2.one (Fp2.mul fp x (Fp2.inv fp x)));
    case "fp2 inv of zero raises" (fun () ->
        Alcotest.check_raises "div0" Division_by_zero (fun () ->
            ignore (Fp2.inv fp Fp2.zero)));
    case "fp2 norm is multiplicative" (fun () ->
        let x = Fp2.make (Fp.of_int fp 3) (Fp.of_int fp 4) in
        let y = Fp2.make (Fp.of_int fp 5) (Fp.of_int fp 12) in
        check nat "N(xy) = N(x)N(y)"
          (Fp.mul fp (Fp2.norm fp x) (Fp2.norm fp y))
          (Fp2.norm fp (Fp2.mul fp x y)));
    case "fp2 conj is field automorphism" (fun () ->
        let x = Fp2.make (Fp.of_int fp 3) (Fp.of_int fp 4) in
        let y = Fp2.make (Fp.of_int fp 7) (Fp.of_int fp 11) in
        check fp2_el "conj(xy) = conj(x)conj(y)"
          (Fp2.mul fp (Fp2.conj fp x) (Fp2.conj fp y))
          (Fp2.conj fp (Fp2.mul fp x y)));
    case "fp2 frobenius: conj(x) = x^p" (fun () ->
        let x = Fp2.make (Fp.of_int fp 3) (Fp.of_int fp 4) in
        check fp2_el "x^p" (Fp2.conj fp x) (Fp2.pow fp x p));
  ]

(* Batch inversion (Montgomery's trick) against pointwise inversion,
   in both representations, plus the lazy-reduction adds/subs that the
   Karatsuba Fp2 multiplier feeds into mul. *)
let batch_and_lazy_tests =
  let open Util in
  [
    qcheck ~count:50 "fp batch_inv = pointwise inv"
      QCheck2.Gen.(list_size (int_range 0 8) gen_el)
      (fun xs ->
        let xs = Array.of_list xs in
        if Array.exists Fp.is_zero xs then true
        else
          let ys = Fp.batch_inv fp xs in
          Array.for_all2 (fun x y -> Fp.equal (Fp.inv fp x) y) xs ys);
    case "fp batch_inv rejects a zero element" (fun () ->
        Alcotest.check_raises "div0" Division_by_zero (fun () ->
            ignore (Fp.batch_inv fp [| Fp.one; Fp.zero; Fp.of_int fp 7 |])));
    case "fp batch_inv of the empty array" (fun () ->
        check Alcotest.int "empty" 0 (Array.length (Fp.batch_inv fp [||])));
    qcheck ~count:50 "mont batch_inv = pointwise inv"
      QCheck2.Gen.(list_size (int_range 1 8) gen_el)
      (fun xs ->
        let xs = List.filter (fun x -> not (Fp.is_zero x)) xs in
        let ms = Array.of_list (List.map (Fp.Mont.enter fp) xs) in
        let ys = Fp.Mont.batch_inv fp ms in
        Array.for_all2
          (fun m y -> Fp.Mont.equal (Fp.Mont.inv fp m) y)
          ms ys);
    case "mont batch_inv rejects a zero element" (fun () ->
        Alcotest.check_raises "div0" Division_by_zero (fun () ->
            ignore (Fp.Mont.batch_inv fp [| Fp.Mont.zero fp |])));
    qcheck ~count:60 "lazy add/sub feed mul like strict add/sub"
      (QCheck2.Gen.quad gen_el gen_el gen_el gen_el)
      (fun (a, b, c, d) ->
        let m = Fp.Mont.enter fp in
        let ma = m a and mb = m b and mc = m c and md = m d in
        (* Lazy sums are only ever consumed by mul/sqr; compare that
           whole pattern against the strict path. *)
        let lazy_prod =
          Fp.Mont.mul fp (Fp.Mont.add_lazy fp ma mb) (Fp.Mont.sub_lazy fp mc md)
        in
        let strict_prod =
          Fp.Mont.mul fp (Fp.Mont.add fp ma mb) (Fp.Mont.sub fp mc md)
        in
        let lazy_sqr = Fp.Mont.sqr fp (Fp.Mont.add_lazy fp ma mb) in
        let strict_sqr = Fp.Mont.sqr fp (Fp.Mont.add fp ma mb) in
        Fp.Mont.equal lazy_prod strict_prod
        && Fp.Mont.equal lazy_sqr strict_sqr);
  ]

let property_tests =
  let open Util in
  [
    qcheck "fp add/mul distributive" (QCheck2.Gen.triple gen_el gen_el gen_el)
      (fun (a, b, c) ->
        Fp.equal (Fp.mul fp a (Fp.add fp b c))
          (Fp.add fp (Fp.mul fp a b) (Fp.mul fp a c)));
    qcheck "fp inverse law" gen_el (fun a ->
        Fp.is_zero a || Fp.equal Fp.one (Fp.mul fp a (Fp.inv fp a)));
    qcheck "fp sqrt of square exists" gen_el (fun a ->
        match Fp.sqrt fp (Fp.sqr fp a) with
        | Some y -> Fp.equal y a || Fp.equal y (Fp.neg fp a)
        | None -> false);
    qcheck "fp2 mul commutative" (QCheck2.Gen.pair gen_el2 gen_el2)
      (fun (x, y) -> Fp2.equal (Fp2.mul fp x y) (Fp2.mul fp y x));
    qcheck "fp2 mul associative" (QCheck2.Gen.triple gen_el2 gen_el2 gen_el2)
      (fun (x, y, z) ->
        Fp2.equal (Fp2.mul fp x (Fp2.mul fp y z)) (Fp2.mul fp (Fp2.mul fp x y) z));
    qcheck "fp2 sqr = mul self" gen_el2 (fun x ->
        Fp2.equal (Fp2.sqr fp x) (Fp2.mul fp x x));
    qcheck "fp2 inverse law" gen_el2 (fun x ->
        Fp2.is_zero x || Fp2.equal Fp2.one (Fp2.mul fp x (Fp2.inv fp x)));
    qcheck "fp2 norm = x * conj(x)" gen_el2 (fun x ->
        Fp2.equal
          (Fp2.of_base (Fp2.norm fp x))
          (Fp2.mul fp x (Fp2.conj fp x)));
  ]

(* The Montgomery-resident mirrors must agree with the Barrett-domain
   reference arithmetic on every operation. *)
let mont_tests =
  let open Util in
  [
    qcheck "fp mont enter/leave round trip" gen_el (fun a ->
        Fp.equal a (Fp.Mont.leave fp (Fp.Mont.enter fp a)));
    qcheck "fp mont mul/add/sub/inv mirror Fp"
      (QCheck2.Gen.pair gen_el gen_el) (fun (a, b) ->
        let am = Fp.Mont.enter fp a and bm = Fp.Mont.enter fp b in
        let out = Fp.Mont.leave fp in
        Fp.equal (out (Fp.Mont.mul fp am bm)) (Fp.mul fp a b)
        && Fp.equal (out (Fp.Mont.add fp am bm)) (Fp.add fp a b)
        && Fp.equal (out (Fp.Mont.sub fp am bm)) (Fp.sub fp a b)
        && Fp.equal (out (Fp.Mont.sqr fp am)) (Fp.sqr fp a)
        && (Fp.is_zero a
           || Fp.equal (out (Fp.Mont.inv fp am)) (Fp.inv fp a)));
    qcheck "fp2 mont mul/sqr/conj/inv/pow mirror Fp2"
      (QCheck2.Gen.pair gen_el2 gen_el2) (fun (x, y) ->
        let xm = Fp2.Mont.enter fp x and ym = Fp2.Mont.enter fp y in
        let out = Fp2.Mont.leave fp in
        Fp2.equal (out (Fp2.Mont.mul fp xm ym)) (Fp2.mul fp x y)
        && Fp2.equal (out (Fp2.Mont.sqr fp xm)) (Fp2.sqr fp x)
        && Fp2.equal (out (Fp2.Mont.conj fp xm)) (Fp2.conj fp x)
        && Fp2.equal
             (out (Fp2.Mont.pow fp xm (Nat.of_int 13)))
             (Fp2.pow fp x (Nat.of_int 13))
        && (Fp2.is_zero x
           || Fp2.equal (out (Fp2.Mont.inv fp xm)) (Fp2.inv fp x)));
    case "fp mont constants and of_int" (fun () ->
        check nat "one" Nat.one (Fp.Mont.leave fp (Fp.Mont.one fp));
        check nat "zero" Nat.zero (Fp.Mont.leave fp (Fp.Mont.zero fp));
        check nat "of_int -1" (Nat.sub p Nat.one)
          (Fp.Mont.leave fp (Fp.Mont.of_int fp (-1)));
        check Alcotest.bool "is_zero" true (Fp.Mont.is_zero (Fp.Mont.zero fp));
        check Alcotest.bool "equal" true
          (Fp.Mont.equal (Fp.Mont.one fp) (Fp.Mont.of_int fp 1)));
  ]

let suite = unit_tests @ batch_and_lazy_tests @ property_tests @ mont_tests
