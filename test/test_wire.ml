(* Codec primitives and full wire-message round trips, including
   tamper rejection (failure injection on the wire). *)

module Wire = Seccloud.Wire
module Codec = Seccloud.Codec
module Task = Sc_compute.Task
module Protocol = Sc_audit.Protocol

let system = Lazy.force Util.shared_system
let pub = Seccloud.System.public system
let alice = Seccloud.User.create system ~id:"alice"
let bs = Util.fresh_bs "wire-tests"

let codec_tests =
  let open Util in
  [
    case "u32 round trip" (fun () ->
        List.iter
          (fun v ->
            let b = Buffer.create 8 in
            Codec.w_u32 b v;
            check Alcotest.int "u32" v (Codec.r_u32 (Codec.reader (Buffer.contents b))))
          [ 0; 1; 255; 65536; 0xFFFFFFFF ]);
    case "i64 round trip incl. negatives" (fun () ->
        List.iter
          (fun v ->
            let b = Buffer.create 8 in
            Codec.w_i64 b v;
            check Alcotest.int "i64" v (Codec.r_i64 (Codec.reader (Buffer.contents b))))
          [ 0; 1; -1; 42; -42; max_int; min_int; 1 lsl 40; -(1 lsl 40) ]);
    case "float round trip incl. negatives and specials" (fun () ->
        List.iter
          (fun v ->
            let b = Buffer.create 8 in
            Codec.w_float b v;
            let v' = Codec.r_float (Codec.reader (Buffer.contents b)) in
            if not (v = v' || (Float.is_nan v && Float.is_nan v'))
            then Alcotest.failf "float %f became %f" v v')
          [ 0.0; 1.5; -1.5; 3.14159e300; -2.2e-308; infinity; neg_infinity; nan ]);
    case "bytes round trip with binary content" (fun () ->
        let s = String.init 256 Char.chr in
        let b = Buffer.create 16 in
        Codec.w_bytes b s;
        check Alcotest.string "bytes" s (Codec.r_bytes (Codec.reader (Buffer.contents b))));
    case "truncated input raises" (fun () ->
        let b = Buffer.create 8 in
        Codec.w_u32 b 1000;
        let data = String.sub (Buffer.contents b) 0 2 in
        Alcotest.check_raises "truncated" (Codec.Decode_error "truncated input")
          (fun () -> ignore (Codec.r_u32 (Codec.reader data))));
    case "trailing bytes rejected by expect_end" (fun () ->
        let r = Codec.reader "abc" in
        ignore (Codec.r_u8 r);
        Alcotest.check_raises "trailing" (Codec.Decode_error "trailing bytes")
          (fun () -> Codec.expect_end r));
    case "option and list round trips" (fun () ->
        let b = Buffer.create 16 in
        Codec.w_option b Codec.w_u32 (Some 7);
        Codec.w_option b Codec.w_u32 None;
        Codec.w_list b (fun b -> Codec.w_u32 b) [ 1; 2; 3 ];
        let r = Codec.reader (Buffer.contents b) in
        check Alcotest.(option int) "some" (Some 7) (Codec.r_option r Codec.r_u32);
        check Alcotest.(option int) "none" None (Codec.r_option r Codec.r_u32);
        check Alcotest.(list int) "list" [ 1; 2; 3 ] (Codec.r_list r Codec.r_u32);
        Codec.expect_end r);
  ]

let roundtrip msg =
  let encoded = Wire.encode pub msg in
  Wire.decode pub encoded

let make_upload () =
  Seccloud.User.sign_file alice ~cs_id:"cs-1" ~file:"wf"
    (List.init 4 (fun i -> Sc_storage.Block.encode_ints [ i; i + 1; i + 2 ]))

let sample_service =
  [
    { Task.func = Task.Sum; position = 0 };
    { Task.func = Task.Dot [ 1; -2; 3 ]; position = 1 };
    { Task.func = Task.Compose (Task.Max, [ Task.Sum; Task.Count ]); position = 2 };
    { Task.func = Task.Polynomial [ 0; 5 ]; position = 3 };
  ]

let make_execution () =
  let cloud = Seccloud.Cloud.create system ~id:"cs-1" () in
  Seccloud.Cloud.accept_upload_unchecked cloud (make_upload ());
  Seccloud.Cloud.execute cloud ~owner:"alice" ~file:"wf" sample_service

let message_tests =
  let open Util in
  [
    case "upload round trip" (fun () ->
        let upload = make_upload () in
        match roundtrip (Wire.Upload upload) with
        | Wire.Upload u ->
          check Alcotest.string "file" "wf" u.Sc_storage.Signer.file;
          check Alcotest.string "owner" "alice" u.Sc_storage.Signer.owner;
          check Alcotest.int "blocks" 4 (Array.length u.Sc_storage.Signer.blocks);
          (* Signatures must survive: verify one after the round trip. *)
          let sb = u.Sc_storage.Signer.blocks.(2) in
          check Alcotest.bool "signature intact" true
            (Sc_storage.Signer.verify_block pub
               ~verifier_key:(Seccloud.System.da_key system) ~role:`Da
               ~owner:"alice" sb.Sc_storage.Signer.block sb)
        | _ -> Alcotest.fail "wrong message");
    case "storage challenge/response round trip" (fun () ->
        (match roundtrip (Wire.Storage_challenge { file = "wf"; indices = [ 0; 2 ] }) with
        | Wire.Storage_challenge { file; indices } ->
          check Alcotest.string "file" "wf" file;
          check Alcotest.(list int) "indices" [ 0; 2 ] indices
        | _ -> Alcotest.fail "wrong message");
        let cloud = Seccloud.Cloud.create system ~id:"cs-1" () in
        Seccloud.Cloud.accept_upload_unchecked cloud (make_upload ());
        let items =
          List.map
            (fun i ->
              i, Sc_storage.Server.read (Seccloud.Cloud.storage cloud) ~file:"wf" ~index:i)
            [ 0; 1; 99 ]
        in
        match roundtrip (Wire.Storage_response items) with
        | Wire.Storage_response items' ->
          check Alcotest.int "count" 3 (List.length items');
          check Alcotest.bool "missing stays missing" true
            (snd (List.nth items' 2) = None)
        | _ -> Alcotest.fail "wrong message");
    case "compute request round trip preserves the task language" (fun () ->
        match
          roundtrip
            (Wire.Compute_request { owner = "alice"; file = "wf"; service = sample_service })
        with
        | Wire.Compute_request { service; _ } ->
          List.iter2
            (fun (a : Task.request) (b : Task.request) ->
              check Alcotest.string "func" (Task.describe a.Task.func)
                (Task.describe b.Task.func);
              check Alcotest.int "pos" a.Task.position b.Task.position)
            sample_service service
        | _ -> Alcotest.fail "wrong message");
    case "commitment and audit exchange round trip verifies" (fun () ->
        let execution = make_execution () in
        let commitment = Protocol.commitment_of_execution execution in
        let warrant =
          Seccloud.User.delegate_audit alice ~now:0.0 ~lifetime:1e9 ~scope:"w"
        in
        let challenge =
          Protocol.make_challenge
            ~drbg:(Sc_hash.Drbg.create ~seed:"wire-chal")
            ~n_tasks:4 ~samples:3 ~warrant
        in
        let responses = Option.get (Protocol.respond pub ~now:1.0 execution challenge) in
        (* Round-trip every piece, then run Algorithm 1 on the decoded
           values: the verdict must be identical. *)
        let commitment' =
          match
            roundtrip
              (Wire.Compute_commitment
                 { results = Sc_compute.Executor.results execution; commitment })
          with
          | Wire.Compute_commitment { commitment; _ } -> commitment
          | _ -> Alcotest.fail "wrong message"
        in
        let challenge' =
          match
            roundtrip
              (Wire.Audit_challenge { owner = "alice"; file = "wf"; challenge })
          with
          | Wire.Audit_challenge { challenge = c; _ } -> c
          | _ -> Alcotest.fail "wrong message"
        in
        let responses' =
          match roundtrip (Wire.Audit_response responses) with
          | Wire.Audit_response r -> r
          | _ -> Alcotest.fail "wrong message"
        in
        let verdict =
          Protocol.verify pub ~verifier_key:(Seccloud.System.da_key system)
            ~role:`Da ~owner:"alice" commitment' challenge' responses'
        in
        check Alcotest.bool "valid after round trip" true verdict.Protocol.valid);
    case "tampering with wire bytes is caught" (fun () ->
        let execution = make_execution () in
        let warrant =
          Seccloud.User.delegate_audit alice ~now:0.0 ~lifetime:1e9 ~scope:"w"
        in
        let challenge =
          Protocol.make_challenge
            ~drbg:(Sc_hash.Drbg.create ~seed:"wire-tamper")
            ~n_tasks:4 ~samples:3 ~warrant
        in
        let responses = Option.get (Protocol.respond pub ~now:1.0 execution challenge) in
        let encoded = Wire.encode pub (Wire.Audit_response responses) in
        (* Flip one byte somewhere in the middle: either decoding fails
           or the decoded responses no longer verify. *)
        let detected = ref 0 in
        let trials = 12 in
        for k = 1 to trials do
          let pos = (k * String.length encoded / (trials + 1)) + 1 in
          let tampered =
            String.mapi
              (fun i c -> if i = pos then Char.chr (Char.code c lxor 0x40) else c)
              encoded
          in
          match Wire.decode pub tampered with
          | exception Wire.Decode_error _ -> incr detected
          | Wire.Audit_response rs ->
            let commitment = Protocol.commitment_of_execution execution in
            let verdict =
              Protocol.verify pub ~verifier_key:(Seccloud.System.da_key system)
                ~role:`Da ~owner:"alice" commitment challenge rs
            in
            if not verdict.Protocol.valid then incr detected
          | _ -> incr detected
        done;
        (* Flips landing inside the CS-designated Σ are invisible to a
           DA-role verification by design (the DA never opens that
           field), so a couple of positions may pass; everything the
           DA actually checks must reject. *)
        check Alcotest.bool
          (Printf.sprintf "tampering detected (%d/%d)" !detected trials)
          true
          (!detected >= trials - 2));
    case "decode rejects unknown tag and empty input" (fun () ->
        Alcotest.check_raises "unknown tag"
          (Wire.Decode_error "unknown message tag") (fun () ->
            ignore (Wire.decode pub "\xFF"));
        Alcotest.check_raises "empty" (Wire.Decode_error "truncated input")
          (fun () -> ignore (Wire.decode pub "")));
    case "size reports the encoded length" (fun () ->
        let msg = Wire.Storage_challenge { file = "abc"; indices = [ 1; 2; 3 ] } in
        check Alcotest.int "size" (String.length (Wire.encode pub msg))
          (Wire.size pub msg));
  ]

(* --- endpoint conversations over the wire --------------------------- *)

let endpoint_tests =
  let open Util in
  let module E = Seccloud.Endpoint in
  let module T = Seccloud.Transport in
  let fresh tag ?(compute = Sc_compute.Executor.Honest) () =
    let sys =
      Seccloud.System.create ~params:Sc_pairing.Params.toy
        ~seed:("ep:" ^ tag) ~cs_ids:[ "cs" ] ~da_id:"da" ()
    in
    let user = Seccloud.User.create sys ~id:"alice" in
    let cloud = Seccloud.Cloud.create sys ~id:"cs" ~compute () in
    let server = E.Server.create sys cloud in
    let da = E.Da.create sys in
    sys, user, server, da
  in
  (* A perfect channel to the server endpoint: the transport layer in
     its degenerate configuration. *)
  let wire_to sys server =
    T.create ~peer:"cs" ~public:(Seccloud.System.public sys)
      ~handler:(E.Server.handle server) ()
  in
  let numeric_payloads n =
    List.init n (fun i -> Sc_storage.Block.encode_ints [ i; 2 * i; 3 * i ])
  in
  (* Requests and replies are envelope-framed on the wire; wrap the
     request and strip the reply envelope before decoding. *)
  let call_direct server ~now p msg =
    let reply =
      E.Server.handle server ~now
        (Seccloud.Envelope.wrap (Seccloud.Wire.encode p msg))
    in
    let _ctx, payload = Seccloud.Envelope.unwrap reply in
    Seccloud.Wire.decode p payload
  in
  let upload_via_wire sys user server =
    let p = Seccloud.System.public sys in
    let upload = Seccloud.User.sign_file user ~cs_id:"cs" ~file:"ef" (numeric_payloads 8) in
    match call_direct server ~now:0.0 p (Wire.Upload upload) with
    | Wire.Ack { ok; _ } -> ok
    | _ -> false
  in
  [
    case "upload over the wire is acknowledged" (fun () ->
        let sys, user, server, _ = fresh "up" () in
        check Alcotest.bool "ack ok" true (upload_via_wire sys user server));
    case "storage audit over the wire" (fun () ->
        let sys, user, server, da = fresh "sa" () in
        assert (upload_via_wire sys user server);
        let report =
          E.Da.audit_storage_over_wire da ~transport:(wire_to sys server)
            ~owner:"alice" ~file:"ef" ~indices:[ 0; 3; 7 ]
        in
        check Alcotest.bool "intact" true report.Seccloud.Agency.intact;
        (* missing file over the wire: not intact *)
        let bad =
          E.Da.audit_storage_over_wire da ~transport:(wire_to sys server)
            ~owner:"alice" ~file:"ghost" ~indices:[ 0 ]
        in
        check Alcotest.bool "ghost rejected" false bad.Seccloud.Agency.intact);
    case "full computation audit conversation over the wire" (fun () ->
        let sys, user, server, da = fresh "ca" () in
        assert (upload_via_wire sys user server);
        let p = Seccloud.System.public sys in
        let service =
          List.init 6 (fun i -> { Task.func = Task.Sum; position = i })
        in
        let commitment =
          match
            call_direct server ~now:2.0 p
              (Wire.Compute_request { owner = "alice"; file = "ef"; service })
          with
          | Wire.Compute_commitment { commitment; _ } -> commitment
          | _ -> Alcotest.fail "expected commitment"
        in
        let warrant =
          Seccloud.User.delegate_audit user ~now:0.0 ~lifetime:1e9 ~scope:"ep"
        in
        let verdict =
          E.Da.audit_computation_over_wire da ~transport:(wire_to sys server)
            ~owner:"alice" ~file:"ef" ~commitment ~warrant ~now:3.0 ~samples:4
        in
        check Alcotest.bool "valid" true verdict.Protocol.valid);
    case "cheating server fails the over-the-wire audit" (fun () ->
        let sys, user, server, da =
          fresh "cheat" ~compute:(Sc_compute.Executor.Guess_fraction (1.0, 1 lsl 30)) ()
        in
        assert (upload_via_wire sys user server);
        let p = Seccloud.System.public sys in
        let service =
          List.init 6 (fun i -> { Task.func = Task.Sum; position = i })
        in
        let commitment =
          match
            call_direct server ~now:2.0 p
              (Wire.Compute_request { owner = "alice"; file = "ef"; service })
          with
          | Wire.Compute_commitment { commitment; _ } -> commitment
          | _ -> Alcotest.fail "expected commitment"
        in
        let warrant =
          Seccloud.User.delegate_audit user ~now:0.0 ~lifetime:1e9 ~scope:"ep"
        in
        let verdict =
          E.Da.audit_computation_over_wire da ~transport:(wire_to sys server)
            ~owner:"alice" ~file:"ef" ~commitment ~warrant ~now:3.0 ~samples:6
        in
        check Alcotest.bool "invalid" false verdict.Protocol.valid);
    case "server answers garbage bytes with an error Ack" (fun () ->
        let sys, _, server, _ = fresh "garbage" () in
        let p = Seccloud.System.public sys in
        let reply = E.Server.handle server ~now:0.0 "\xde\xad" in
        let _ctx, payload = Seccloud.Envelope.unwrap reply in
        match Seccloud.Wire.decode p payload with
        | Wire.Ack { ok; _ } -> check Alcotest.bool "error ack" false ok
        | _ -> Alcotest.fail "expected ack");
    case "audit for unknown execution yields an error Ack" (fun () ->
        let sys, user, server, da = fresh "unknown" () in
        let warrant =
          Seccloud.User.delegate_audit user ~now:0.0 ~lifetime:1e9 ~scope:"x"
        in
        let commitment =
          {
            Protocol.root = String.make 32 'x';
            root_signature =
              Sc_ibc.Ibs.sign (Seccloud.System.public sys)
                (Seccloud.System.da_key sys) ~bytes_source:bs "r";
            cs_id = "cs";
            n_tasks = 4;
          }
        in
        let verdict =
          E.Da.audit_computation_over_wire da ~transport:(wire_to sys server)
            ~owner:"alice" ~file:"never" ~commitment ~warrant ~now:1.0 ~samples:2
        in
        check Alcotest.bool "invalid" false verdict.Protocol.valid);
  ]

let suite = codec_tests @ message_tests @ endpoint_tests
