(* End-to-end tests of the top-level orchestration API. *)

let fresh_system tag =
  Seccloud.System.create ~params:Sc_pairing.Params.toy ~seed:("sys:" ^ tag)
    ~cs_ids:[ "cs-1"; "cs-2" ] ~da_id:"da" ()

let payloads n =
  List.init n (fun i -> Sc_storage.Block.encode_ints [ i; i + 10; i * 2 ])

let da_of system = Seccloud.Agency.create system

let unit_tests =
  let open Util in
  [
    case "system setup extracts consistent keys" (fun () ->
        let system = fresh_system "setup" in
        let pub = Seccloud.System.public system in
        check Alcotest.bool "da key valid" true
          (Sc_ibc.Setup.valid_key pub (Seccloud.System.da_key system));
        check Alcotest.bool "cs key valid" true
          (Sc_ibc.Setup.valid_key pub (Seccloud.System.cs_key system "cs-1"));
        check Alcotest.(list string) "cs ids" [ "cs-1"; "cs-2" ]
          (Seccloud.System.cs_ids system));
    case "register_user is idempotent" (fun () ->
        let system = fresh_system "reg" in
        let k1 = Seccloud.System.register_user system "alice" in
        let k2 = Seccloud.System.register_user system "alice" in
        check Alcotest.bool "same key" true
          (Sc_ec.Curve.equal k1.Sc_ibc.Setup.sk k2.Sc_ibc.Setup.sk));
    case "unknown server id raises" (fun () ->
        let system = fresh_system "unknown" in
        Alcotest.check_raises "not found" Not_found (fun () ->
            ignore (Seccloud.System.cs_key system "cs-99")));
    case "store + storage audit round trip" (fun () ->
        let system = fresh_system "store" in
        let user = Seccloud.User.create system ~id:"alice" in
        let cloud = Seccloud.Cloud.create system ~id:"cs-1" () in
        let da = Seccloud.Agency.create system in
        check Alcotest.bool "accepted" true
          (Seccloud.User.store user cloud ~file:"f" (payloads 24));
        let r = Seccloud.Agency.audit_storage da cloud ~owner:"alice" ~file:"f" ~samples:10 in
        check Alcotest.bool "intact" true r.Seccloud.Agency.intact;
        check Alcotest.int "sampled" 10 r.Seccloud.Agency.sampled);
    case "batched storage audit agrees with individual" (fun () ->
        let system = fresh_system "batchagree" in
        let user = Seccloud.User.create system ~id:"alice" in
        let da = Seccloud.Agency.create system in
        List.iter
          (fun storage ->
            let cloud = Seccloud.Cloud.create system ~id:"cs-1" ~storage () in
            Seccloud.Cloud.accept_upload_unchecked cloud
              (Seccloud.User.sign_file user ~cs_id:"cs-1" ~file:"f" (payloads 24));
            let a =
              Seccloud.Agency.audit_storage da cloud ~owner:"alice" ~file:"f"
                ~samples:24
            in
            let b =
              Seccloud.Agency.audit_storage_batched da cloud ~owner:"alice"
                ~file:"f" ~samples:24
            in
            check Alcotest.bool "same verdict" a.Seccloud.Agency.intact
              b.Seccloud.Agency.intact)
          [ Sc_storage.Server.Honest; Sc_storage.Server.Corrupt_fraction 0.4 ]);
    case "corrupting server fails storage audit" (fun () ->
        let system = fresh_system "corrupt" in
        let user = Seccloud.User.create system ~id:"alice" in
        let cloud =
          Seccloud.Cloud.create system ~id:"cs-1"
            ~storage:(Sc_storage.Server.Corrupt_fraction 0.6) ()
        in
        Seccloud.Cloud.accept_upload_unchecked cloud
          (Seccloud.User.sign_file user ~cs_id:"cs-1" ~file:"f" (payloads 24));
        let r =
          Seccloud.Agency.audit_storage (da_of system) cloud ~owner:"alice"
            ~file:"f" ~samples:24
        in
        check Alcotest.bool "caught" false r.Seccloud.Agency.intact;
        check Alcotest.bool "culprits named" true
          (r.Seccloud.Agency.invalid_indices <> []));
    case "audit of missing file is not intact" (fun () ->
        let system = fresh_system "missing" in
        let cloud = Seccloud.Cloud.create system ~id:"cs-1" () in
        let da = Seccloud.Agency.create system in
        let r = Seccloud.Agency.audit_storage da cloud ~owner:"alice" ~file:"ghost" ~samples:5 in
        check Alcotest.bool "not intact" false r.Seccloud.Agency.intact);
    case "honest server rejects a tampered upload" (fun () ->
        let system = fresh_system "tamper" in
        let user = Seccloud.User.create system ~id:"alice" in
        let cloud = Seccloud.Cloud.create system ~id:"cs-1" () in
        let upload = Seccloud.User.sign_file user ~cs_id:"cs-1" ~file:"f" (payloads 4) in
        let sb = upload.Sc_storage.Signer.blocks.(0) in
        upload.Sc_storage.Signer.blocks.(0) <-
          { sb with Sc_storage.Signer.block =
              { sb.Sc_storage.Signer.block with Sc_storage.Block.data = "evil" } };
        check Alcotest.bool "rejected" false (Seccloud.Cloud.accept_upload cloud upload));
    case "computation audit end-to-end honest" (fun () ->
        let system = fresh_system "comp" in
        let user = Seccloud.User.create system ~id:"alice" in
        let cloud = Seccloud.Cloud.create system ~id:"cs-1" () in
        let da = Seccloud.Agency.create system in
        assert (Seccloud.User.store user cloud ~file:"f" (payloads 24));
        let drbg = Sc_hash.Drbg.create ~seed:"svc" in
        let service = Sc_compute.Task.random_service ~drbg ~n_positions:24 ~n_tasks:12 in
        let execution = Seccloud.Cloud.execute cloud ~owner:"alice" ~file:"f" service in
        let warrant = Seccloud.User.delegate_audit user ~now:0.0 ~lifetime:100.0 ~scope:"t" in
        let v =
          Seccloud.Agency.audit_computation da cloud ~owner:"alice" ~execution
            ~warrant ~now:50.0 ~samples:8
        in
        check Alcotest.bool "valid" true v.Sc_audit.Protocol.valid);
    case "multi-user batched computation audit" (fun () ->
        let system = fresh_system "multi" in
        let da = Seccloud.Agency.create system in
        let cloud = Seccloud.Cloud.create system ~id:"cs-1" () in
        let drbg = Sc_hash.Drbg.create ~seed:"svc2" in
        let jobs =
          List.map
            (fun name ->
              let user = Seccloud.User.create system ~id:name in
              assert (Seccloud.User.store user cloud ~file:(name ^ "-f") (payloads 16));
              let service =
                Sc_compute.Task.random_service ~drbg ~n_positions:16 ~n_tasks:8
              in
              let execution =
                Seccloud.Cloud.execute cloud ~owner:name ~file:(name ^ "-f") service
              in
              let warrant =
                Seccloud.User.delegate_audit user ~now:0.0 ~lifetime:100.0 ~scope:"t"
              in
              cloud, name, execution, warrant)
            [ "alice"; "bob"; "carol" ]
        in
        let v = Seccloud.Agency.audit_computation_batched da jobs ~now:10.0 ~samples:5 in
        check Alcotest.bool "valid" true v.Sc_audit.Protocol.valid);
    case "choose_sample_size matches sampling module" (fun () ->
        check Alcotest.int "t=33-ish" 33
          (Seccloud.Agency.choose_sample_size ~range:2.0 ~csc:0.5 ~ssc:0.5 ()));
  ]

let distributed_tests =
  let open Util in
  let module D = Seccloud.Distributed in
  let module Task = Sc_compute.Task in
  let setup ?(cheat = None) tag n_clouds =
    let ids = List.init n_clouds (Printf.sprintf "cs-%d") in
    let system =
      Seccloud.System.create ~params:Sc_pairing.Params.toy ~seed:("dist:" ^ tag)
        ~cs_ids:ids ~da_id:"da" ()
    in
    let user = Seccloud.User.create system ~id:"alice" in
    let clouds =
      List.mapi
        (fun i id ->
          match cheat with
          | Some (bad_index, compute) when i = bad_index ->
            Seccloud.Cloud.create system ~id ~compute ()
          | Some _ | None -> Seccloud.Cloud.create system ~id ())
        ids
    in
    system, user, clouds
  in
  let payloads = List.init 20 (fun i -> Sc_storage.Block.encode_ints [ i; i + 1 ]) in
  [
    case "plan partitions every sub-task exactly once" (fun () ->
        let _, _, clouds = setup "plan" 3 in
        let service = List.init 10 (fun i -> { Task.func = Task.Sum; position = i }) in
        let shards = D.plan ~clouds service in
        check Alcotest.int "3 shards" 3 (List.length shards);
        let all =
          List.concat_map
            (fun s -> Array.to_list s.D.original_indices)
            shards
        in
        check Alcotest.(list int) "coverage" (List.init 10 Fun.id)
          (List.sort compare all));
    case "plan with more clouds than tasks drops idle clouds" (fun () ->
        let _, _, clouds = setup "idle" 5 in
        let service = List.init 2 (fun i -> { Task.func = Task.Sum; position = i }) in
        check Alcotest.int "2 shards" 2 (List.length (D.plan ~clouds service)));
    case "distributed results equal single-server results" (fun () ->
        let _, user, clouds = setup "equal" 3 in
        assert (D.store_replicated user clouds ~file:"d" payloads);
        let service =
          List.init 12 (fun i ->
              { Task.func = (if i mod 2 = 0 then Task.Sum else Task.Max); position = i })
        in
        let dist = D.execute ~owner:"alice" ~file:"d" (D.plan ~clouds service) in
        let single =
          Seccloud.Cloud.execute (List.hd clouds) ~owner:"alice" ~file:"d" service
        in
        check Alcotest.(array int) "same results"
          (Sc_compute.Executor.results single)
          (D.results dist));
    case "map_reduce computes the expected aggregate" (fun () ->
        let _, user, clouds = setup "mr" 2 in
        assert (D.store_replicated user clouds ~file:"d" payloads);
        (* Sum of block sums over positions 0..9: block i holds
           [i; i+1], so total = Σ (2i + 1) for i in 0..9 = 100. *)
        match
          D.map_reduce ~owner:"alice" ~file:"d" ~clouds ~map:Task.Sum
            ~positions:(List.init 10 Fun.id) ~reduce:Task.Sum
        with
        | Ok (total, _) -> check Alcotest.int "total" 100 total
        | Error e -> Alcotest.fail e);
    case "batched audit passes over honest shards" (fun () ->
        let system, user, clouds = setup "audit" 3 in
        let da = Seccloud.Agency.create system in
        assert (D.store_replicated user clouds ~file:"d" payloads);
        let service = List.init 9 (fun i -> { Task.func = Task.Sum; position = i }) in
        let dist = D.execute ~owner:"alice" ~file:"d" (D.plan ~clouds service) in
        let warrant =
          Seccloud.User.delegate_audit user ~now:0.0 ~lifetime:1e9 ~scope:"d"
        in
        let v = D.audit da dist ~warrant ~now:1.0 ~samples_per_shard:3 in
        check Alcotest.bool "valid" true v.Sc_audit.Protocol.valid);
    case "one cheating shard fails the whole distributed audit" (fun () ->
        let system, user, clouds =
          setup
            ~cheat:(Some (1, Sc_compute.Executor.Guess_fraction (1.0, 1 lsl 30)))
            "cheat" 3
        in
        let da = Seccloud.Agency.create system in
        assert (D.store_replicated user clouds ~file:"d" payloads);
        let service = List.init 9 (fun i -> { Task.func = Task.Sum; position = i }) in
        let dist = D.execute ~owner:"alice" ~file:"d" (D.plan ~clouds service) in
        let warrant =
          Seccloud.User.delegate_audit user ~now:0.0 ~lifetime:1e9 ~scope:"d"
        in
        let v = D.audit da dist ~warrant ~now:1.0 ~samples_per_shard:3 in
        check Alcotest.bool "invalid" false v.Sc_audit.Protocol.valid);
    case "plan rejects degenerate inputs" (fun () ->
        let _, _, clouds = setup "degenerate" 2 in
        Alcotest.check_raises "no clouds"
          (Invalid_argument "Distributed.plan: no clouds") (fun () ->
            ignore (D.plan ~clouds:[] [ { Task.func = Task.Sum; position = 0 } ]));
        Alcotest.check_raises "empty service"
          (Invalid_argument "Distributed.plan: empty service") (fun () ->
            ignore (D.plan ~clouds [])));
  ]

(* Transport faults surfacing through the sharded service path: the
   typed channel blame must arrive in the [Audited] report's
   [channel] field (never as a false crypto alarm), and retry
   exhaustion must compose with queue-boundary backpressure. *)
let service_channel_tests =
  let open Util in
  let module Service = Sc_service.Service in
  let module Transport = Seccloud.Transport in
  let make ?(retry = Transport.Retry.default) seed =
    Service.create
      ~config:
        {
          Service.default_config with
          Service.shards = 1;
          queue_capacity = 4;
          drain_quantum = 2;
          retry;
        }
      ~params:Sc_pairing.Params.toy ~seed ()
  in
  let submit_ok svc tenant request =
    match Service.submit svc ~tenant request with
    | Ok () -> ()
    | Error e -> Alcotest.failf "unexpected rejection: %a" Service.pp_error e
  in
  let store_payloads =
    List.init 4 (fun i -> Sc_storage.Block.encode_ints [ i; i + 7; i * 3 ])
  in
  let audited = function
    | _, _, Service.Audited { report; tampered_in_flight } ->
      report, tampered_in_flight
    | _ -> Alcotest.fail "expected an audit response"
  in
  [
    case "service path surfaces Transport_timeout in report.channel"
      (fun () ->
        let svc = make "svc-chan-timeout" in
        submit_ok svc "alice" Service.Admit;
        submit_ok svc "alice"
          (Service.Store { file = "f"; payloads = store_payloads });
        ignore (Service.drain svc);
        (* Kill the channel: every message dropped, retries exhaust. *)
        Service.set_faults svc (Transport.lossy ~drop:1.0 ());
        submit_ok svc "alice" (Service.Audit_storage { file = "f"; samples = 2 });
        let report, _ = audited (List.hd (Service.drain svc)) in
        check Alcotest.bool "timeout blamed" true
          (report.Seccloud.Agency.channel = Some Transport.Timeout);
        check Alcotest.bool "not intact" false report.Seccloud.Agency.intact;
        (* Channel blame, not a crypto alarm. *)
        let l = Service.ledger svc in
        check Alcotest.int "no crypto alarm" 0 l.Service.audit_alarms;
        check Alcotest.int "channel blamed" 1 l.Service.channel_blames);
    case "service path surfaces Transport_tampered in report.channel"
      (fun () ->
        (* With the default 5-attempt policy a typed [Tampered] needs
           five decode-breaking flips in a row — astronomically rare
           on payload-heavy audit responses, where most single-bit
           flips land in signature bytes and decode fine.  A
           single-attempt policy makes one decode-breaking flip
           surface as the typed blame. *)
        let retry = { Transport.Retry.default with max_attempts = 1 } in
        let svc = make ~retry "svc-chan-tamper" in
        submit_ok svc "alice" Service.Admit;
        submit_ok svc "alice"
          (Service.Store { file = "f"; payloads = store_payloads });
        ignore (Service.drain svc);
        Service.set_faults svc (Transport.lossy ~tamper:1.0 ());
        (* A bit flip can break decoding (typed [Tampered] blame after
           retry exhaustion) or survive it (signature verification
           fails, with the per-instance fault counter as ground
           truth).  Both are sound; what must never happen is a failed
           audit with a clean channel and no injected tampering. *)
        (* A typed blame needs a decode-breaking flip on *every*
           retry attempt of one call; each round advances the seeded
           fault stream, so keep auditing (deterministically) until
           one lands. *)
        let blamed = ref 0 in
        let round = ref 0 in
        while !blamed = 0 && !round < 64 do
          incr round;
          submit_ok svc "alice"
            (Service.Audit_storage { file = "f"; samples = 2 });
          let report, tampered_in_flight =
            audited (List.hd (Service.drain svc))
          in
          match report.Seccloud.Agency.channel with
          | Some Transport.Tampered -> incr blamed
          | Some Transport.Timeout -> Alcotest.fail "no drops were injected"
          | None ->
            (* The flip survived decoding (it may even have verified,
               e.g. a mangled challenge index answered correctly) —
               but the fault-layer ground truth must mark the round,
               so nothing here can ever read as a clean-channel false
               alarm. *)
            check Alcotest.bool "fault layer marked the round" true
              tampered_in_flight
        done;
        check Alcotest.bool "typed Tampered blame surfaced" true (!blamed > 0);
        (* Healing the channel heals the verdicts: same file, clean
           audit. *)
        Service.set_faults svc Transport.perfect;
        submit_ok svc "alice" (Service.Audit_storage { file = "f"; samples = 4 });
        let report, _ = audited (List.hd (Service.drain svc)) in
        check Alcotest.bool "intact after healing" true
          report.Seccloud.Agency.intact;
        check Alcotest.bool "no blame after healing" true
          (report.Seccloud.Agency.channel = None));
    case "retry exhaustion composes with backpressure at the queue boundary"
      (fun () ->
        let svc = make "svc-chan-queue" in
        submit_ok svc "alice" Service.Admit;
        submit_ok svc "alice"
          (Service.Store { file = "f"; payloads = store_payloads });
        ignore (Service.drain svc);
        Service.set_faults svc (Transport.lossy ~drop:1.0 ());
        (* Fill the queue to its cap of 4 with audits destined to
           exhaust their retries... *)
        for _ = 1 to 4 do
          submit_ok svc "alice"
            (Service.Audit_storage { file = "f"; samples = 2 })
        done;
        (* ...the 5th request meets typed backpressure... *)
        (match
           Service.submit svc ~tenant:"alice"
             (Service.Compute { file = "f"; n_tasks = 2; samples = 2 })
         with
        | Ok () -> Alcotest.fail "queue was full: submit must be rejected"
        | Error (Service.Overloaded { depth; _ }) ->
          check Alcotest.int "rejected at cap" 4 depth);
        (* ...and draining turns every queued round into a typed
           channel verdict rather than a hang or a crypto alarm. *)
        let responses = Service.drain svc in
        check Alcotest.int "all queued audits answered" 4
          (List.length responses);
        List.iter
          (fun r ->
            let report, _ = audited r in
            check Alcotest.bool "typed timeout" true
              (report.Seccloud.Agency.channel = Some Transport.Timeout))
          responses;
        (* The rejected compute goes through once there is room. *)
        submit_ok svc "alice"
          (Service.Compute { file = "f"; n_tasks = 2; samples = 2 });
        match Service.drain svc with
        | [ (_, _, Service.Compute_failed Transport.Timeout) ] -> ()
        | [ (_, _, Service.Computed { verdict; _ }) ] ->
          check Alcotest.bool "transport failure in verdict" true
            (List.exists Sc_audit.Protocol.is_transport_failure
               verdict.Sc_audit.Protocol.failures)
        | _ -> Alcotest.fail "expected a typed compute outcome");
  ]

let suite = unit_tests @ distributed_tests @ service_channel_tests

