(* sc_lint rule fixtures: one positive and one negative case per rule,
   waiver round-trips, and a self-lint pass over the real tree.  The
   fixtures are fed as in-memory strings through Engine.lint_source, so
   the tests pin the rules' behaviour without touching the file
   system. *)

module Finding = Sc_lint_core.Finding
module Waiver = Sc_lint_core.Waiver
module Engine = Sc_lint_core.Engine

open Util

(* Lint [content] as if it lived at lib/<name> (lib/ enables the
   determinism and no-mli rules). *)
let lint_lib ?(has_mli = true) ?(name = "fixture.ml") content =
  Engine.lint_source { Engine.rel = "lib/" ^ name; content; has_mli }

let lint_bin ?(name = "fixture.ml") content =
  Engine.lint_source { Engine.rel = "bin/" ^ name; content; has_mli = true }

let rules fs = List.map (fun f -> f.Finding.rule) fs
let has_rule r fs = List.mem r (rules fs)

let no_findings name content =
  case name (fun () ->
      match lint_lib content with
      | [] -> ()
      | fs ->
        Alcotest.failf "expected no findings, got:\n%s"
          (String.concat "\n" (List.map Finding.to_string fs)))

let domain_safety =
  [
    case "toplevel ref is flagged" (fun () ->
        let fs = lint_lib "let counter = ref 0\n" in
        check Alcotest.bool "flagged" true (has_rule "domain-safety" fs);
        let f = List.hd fs in
        check Alcotest.string "key is the binding name" "counter" f.Finding.key;
        check Alcotest.int "line" 1 f.Finding.line);
    case "toplevel Hashtbl and mutable record literal are flagged" (fun () ->
        let fs =
          lint_lib
            "type t = { mutable n : int }\n\
             let cache = Hashtbl.create 16\n\
             let state = { n = 0 }\n"
        in
        check Alcotest.int "two findings" 2 (List.length fs);
        check Alcotest.bool "all domain-safety" true
          (List.for_all (fun f -> f.Finding.rule = "domain-safety") fs));
    no_findings "ref inside a function body is fine"
      "let f () =\n  let acc = ref 0 in\n  incr acc;\n  !acc\n";
    no_findings "Atomic/Mutex toplevel state is the sanctioned idiom"
      "let hits = Atomic.make 0\nlet lock = Mutex.create ()\n";
  ]

let signing_encode =
  [
    case "sprintf flowing into a hash sink is flagged" (fun () ->
        let fs =
          lint_lib
            "let h a b = Sha256.digest (Printf.sprintf \"%s|%s\" a b)\n"
        in
        check Alcotest.bool "flagged" true (has_rule "signing-encode" fs));
    case "two-fragment concat into Ibs.sign is flagged" (fun () ->
        let fs =
          lint_lib "let s pub key a b = Ibs.sign pub key (a ^ \"|\" ^ b)\n"
        in
        check Alcotest.bool "flagged" true (has_rule "signing-encode" fs);
        let f = List.find (fun f -> f.Finding.rule = "signing-encode") fs in
        check Alcotest.string "key names fn and sink" "s:Ibs.sign"
          f.Finding.key);
    case "local producer of a tainted concat is traced to the sink" (fun () ->
        let fs =
          lint_lib
            "let encode a b = a ^ \":\" ^ b\n\
             let h a b = Sha256.digest (encode a b)\n"
        in
        check Alcotest.bool "flagged" true (has_rule "signing-encode" fs));
    no_findings "single dynamic fragment with a literal prefix is injective"
      "let h id = Sha256.digest (\"id:\" ^ id)\n";
    no_findings "Encode.canonical framing is the sanctioned path"
      "let h a b = Sha256.digest (Sc_hash.Encode.canonical [ \"tag\"; a; b ])\n";
    no_findings "numeric-only sprintf cannot collide"
      "let h n = Sha256.digest (Printf.sprintf \"blk-%d\" n)\n";
  ]

let determinism =
  [
    case "Stdlib.Random in lib/ is flagged" (fun () ->
        let fs = lint_lib "let roll () = Random.int 6\n" in
        check Alcotest.bool "flagged" true (has_rule "determinism" fs));
    case "Unix.gettimeofday in lib/ is flagged with a scoped key" (fun () ->
        let fs = lint_lib "let now () = Unix.gettimeofday ()\n" in
        let f = List.find (fun f -> f.Finding.rule = "determinism") fs in
        check Alcotest.string "key" "now:Unix.gettimeofday" f.Finding.key);
    case "the same source in bin/ is allowed" (fun () ->
        let fs = lint_bin "let now () = Unix.gettimeofday ()\n" in
        check Alcotest.bool "not flagged" false (has_rule "determinism" fs));
    no_findings "DRBG-driven randomness is the sanctioned source"
      "let roll drbg = Sc_hash.Drbg.uniform_int drbg 6\n";
  ]

let secret_flow =
  [
    case "printing a secret-named ident is flagged" (fun () ->
        let fs =
          lint_lib "let debug sk = Printf.printf \"sk=%s\\n\" sk\n"
        in
        check Alcotest.bool "flagged" true (has_rule "secret-flow" fs));
    case "underscore-token match: msk reaching failwith" (fun () ->
        let fs = lint_lib "let f master_sk = failwith master_sk\n" in
        check Alcotest.bool "flagged" true (has_rule "secret-flow" fs));
    no_findings "printing non-secret state is fine"
      "let debug count = Printf.printf \"count=%d\\n\" count\n";
    no_findings "risk (contains 'sk' mid-word) is not a secret token"
      "let debug risk = Printf.printf \"risk=%s\\n\" risk\n";
  ]

let exception_discipline =
  [
    case "silent catch-all is flagged" (fun () ->
        let fs =
          lint_lib "let parse s = try int_of_string s with _ -> 0\n"
        in
        check Alcotest.bool "flagged" true (has_rule "exception-swallow" fs));
    no_findings "catch-all that re-raises is fine"
      "let f g = try g () with e -> cleanup (); raise e\n";
    no_findings "catch-all whose body uses the exception is fine"
      "let f g = try g () with e -> log (Printexc.to_string e); None\n";
    no_findings "typed handler is fine"
      "let parse s = try int_of_string s with Failure _ -> 0\n";
    no_findings "option-returning stdlib idiom is the sanctioned fix"
      "let parse s = Option.value ~default:0 (int_of_string_opt s)\n";
  ]

let naive_ladder_src =
  "let slow_mul c k p =\n\
  \  let acc = ref Curve.infinity in\n\
  \  for i = Nat.bit_length k - 1 downto 0 do\n\
  \    acc := Curve.double c !acc;\n\
  \    if Nat.test_bit k i then acc := Curve.add c !acc p\n\
  \  done;\n\
  \  !acc\n"

let naive_scalar_mul =
  [
    case "double-and-add ladder outside lib/ec is flagged informational"
      (fun () ->
        let fs = lint_bin naive_ladder_src in
        let f = List.find (fun f -> f.Finding.rule = "naive-scalar-mul") fs in
        check Alcotest.bool "info severity" true
          (f.Finding.severity = Finding.Info);
        check Alcotest.string "key is the binding name" "slow_mul"
          f.Finding.key);
    case "the same ladder inside lib/ec is the implementation, not a finding"
      (fun () ->
        let fs =
          Engine.lint_source
            { Engine.rel = "lib/ec/fixture.ml"; content = naive_ladder_src;
              has_mli = true }
        in
        check Alcotest.bool "not flagged" false
          (has_rule "naive-scalar-mul" fs));
    no_findings "going through Curve.mul is the sanctioned path"
      "let scale c k p = Curve.mul c k p\n";
    no_findings "bit scans without point doubling (serialization) are fine"
      "let bits k = List.init (Nat.bit_length k) (Nat.test_bit k)\n";
  ]

let dynamic_metric_name =
  [
    case "computed counter name is flagged informational" (fun () ->
        let fs =
          lint_lib
            "let c_for peer = Telemetry.counter (\"rpc.\" ^ peer ^ \".calls\")\n"
        in
        let f =
          List.find (fun f -> f.Finding.rule = "dynamic-metric-name") fs
        in
        check Alcotest.bool "info severity" true
          (f.Finding.severity = Finding.Info));
    case "computed with_span ~name: is flagged" (fun () ->
        let fs =
          lint_lib
            "let traced n f = Telemetry.with_span ~name:(\"op.\" ^ n) f\n"
        in
        check Alcotest.bool "flagged" true (has_rule "dynamic-metric-name" fs));
    case "lib/telemetry itself is exempt" (fun () ->
        let fs =
          Engine.lint_source
            {
              Engine.rel = "lib/telemetry/fixture.ml";
              content =
                "let h_for sp = Registry.histogram (\"span.\" ^ sp.name)\n";
              has_mli = true;
            }
        in
        check Alcotest.bool "not flagged" false
          (has_rule "dynamic-metric-name" fs));
    no_findings "literal metric names are the sanctioned shape"
      "let c = Telemetry.counter \"audit.rounds\"\n\
       let traced f = Telemetry.with_span ~name:\"audit.verify\" f\n";
    no_findings "per-key fan-out through a labeled family is sanctioned"
      "let v = Labels.counter_vec ~label:\"kind\" \"wire.tx.msgs\"\n\
       let cell k = Labels.counter v k\n";
  ]

let infra =
  [
    case "lib module without .mli yields an informational finding" (fun () ->
        let fs = lint_lib ~has_mli:false "let x = 1\n" in
        let f = List.find (fun f -> f.Finding.rule = "no-mli") fs in
        check Alcotest.bool "info severity" true
          (f.Finding.severity = Finding.Info));
    case "bin module without .mli is not reported" (fun () ->
        let fs =
          Engine.lint_source
            { Engine.rel = "bin/fixture.ml"; content = "let x = 1\n";
              has_mli = false }
        in
        check Alcotest.(list string) "no findings" [] (rules fs));
    case "syntax error becomes a parse-error finding, not an exception"
      (fun () ->
        let fs = lint_lib "let = in +++\n" in
        check Alcotest.bool "parse-error" true (has_rule "parse-error" fs));
  ]

let waiver_text =
  "((rule domain-safety)\n\
  \ (file lib/fixture.ml)\n\
  \ (key counter)\n\
  \ (justification \"fixture: guarded by the test harness\"))\n"

let waivers =
  [
    case "waiver round-trip suppresses the matching finding" (fun () ->
        let fs = lint_lib "let counter = ref 0\nlet other = ref 1\n" in
        check Alcotest.int "two raw findings" 2 (List.length fs);
        match Waiver.parse waiver_text with
        | Error e -> Alcotest.failf "parse failed: %s" e
        | Ok ws ->
          let unwaived, waived, stale = Waiver.apply ws fs in
          check Alcotest.int "one suppressed" 1 (List.length waived);
          check Alcotest.int "one left" 1 (List.length unwaived);
          check Alcotest.string "the right one left" "other"
            (List.hd unwaived).Finding.key;
          check Alcotest.int "no stale" 0 (List.length stale));
    case "waiver that matches nothing is reported stale" (fun () ->
        match Waiver.parse waiver_text with
        | Error e -> Alcotest.failf "parse failed: %s" e
        | Ok ws ->
          let _, _, stale = Waiver.apply ws [] in
          check Alcotest.int "stale" 1 (List.length stale));
    case "empty justification is rejected at parse time" (fun () ->
        let bad =
          "((rule determinism) (file lib/x.ml) (key k) (justification \"\"))"
        in
        match Waiver.parse bad with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "expected parse error");
    case "malformed entry is rejected" (fun () ->
        match Waiver.parse "((rule only))" with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "expected parse error");
  ]

(* ------------------------------------------------------------------ *)
(* Typed-pass fixtures.  Each source is typechecked in-process with no
   extra include dirs: the typed rules match suffix names
   ("Setup.sio", "Sc_parallel.parallel_iter", "Service.error"), so
   stub modules defined inside the fixture stand in for the repo's
   and the tests stay hermetic. *)

module Typed_load = Sc_lint_core.Typed_load
module Flow_graph = Sc_lint_core.Flow_graph
module Typed_rules = Sc_lint_core.Typed_rules

let typed_lint ?(waivers = []) ?(rel = "lib/fixture.ml") content =
  match
    Typed_load.typecheck ~include_dirs:[] ~modname:"Fixture" ~rel content
  with
  | Error e -> Alcotest.failf "fixture did not typecheck:\n%s" e
  | Ok entry ->
    let graph = Flow_graph.build [ entry ] in
    let pass = Typed_rules.prepare graph ~waivers in
    Typed_rules.lint pass entry

let no_typed_findings ?rel name content =
  case name (fun () ->
      match typed_lint ?rel content with
      | [] -> ()
      | fs ->
        Alcotest.failf "expected no typed findings, got:\n%s"
          (String.concat "\n" (List.map Finding.to_string fs)))

let find_rule r fs = List.find (fun f -> f.Finding.rule = r) fs

let contains hay needle =
  let lh = String.length hay and ln = String.length needle in
  let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
  ln = 0 || go 0

let sio_stub = "module Setup = struct type sio = Sio of string end\n"

let typed_secret_flow =
  [
    case "value of a secret type reaching print_endline is flagged" (fun () ->
        let fs =
          typed_lint
            (sio_stub
            ^ "let debug (k : Setup.sio) =\n\
              \  match k with Setup.Sio s -> print_endline s\n")
        in
        let f = find_rule "typed-secret-flow" fs in
        check Alcotest.string "key is fn>sink" "debug>print_endline"
          f.Finding.key;
        check Alcotest.bool "error severity" true
          (f.Finding.severity = Finding.Error));
    case "leak through a helper carries the call chain" (fun () ->
        let fs =
          typed_lint
            (sio_stub
            ^ "let log_it s = print_endline s\n\
               let expose (k : Setup.sio) =\n\
              \  match k with Setup.Sio s -> log_it s\n")
        in
        let f = find_rule "typed-secret-flow" fs in
        check Alcotest.string "chain key"
          "expose>Fixture.log_it>print_endline" f.Finding.key);
    case "DRBG keystream output stays secret across functions" (fun () ->
        let fs =
          typed_lint
            "module Drbg = struct let generate n = String.make n 'k' end\n\
             let keystream n = Drbg.generate n\n\
             let show n = print_endline (keystream n)\n"
        in
        check Alcotest.bool "flagged" true (has_rule "typed-secret-flow" fs));
    no_typed_findings "hashing first is the sanctioned way to log a secret"
      (sio_stub
      ^ "module Sha256 = struct let digest_hex (s : string) = s end\n\
         let show (k : Setup.sio) =\n\
        \  match k with Setup.Sio s -> print_endline (Sha256.digest_hex s)\n");
    no_typed_findings "plain public strings do not taint"
      "let show s = print_endline s\n";
  ]

let pool_stub =
  "module Sc_parallel = struct\n\
  \  let parallel_iter f n = for i = 0 to n - 1 do f i done\n\
   end\n"

let captured_ref_src =
  pool_stub
  ^ "let races n =\n\
    \  let acc = ref 0 in\n\
    \  Sc_parallel.parallel_iter (fun i -> acc := !acc + i) n;\n\
    \  !acc\n"

let typed_domain_capture =
  [
    case "pool task capturing a plain ref is flagged" (fun () ->
        let fs = typed_lint captured_ref_src in
        let f = find_rule "domain-capture" fs in
        check Alcotest.string "key is enclosing:var" "races:acc" f.Finding.key;
        check Alcotest.bool "error severity" true
          (f.Finding.severity = Finding.Error));
    no_typed_findings "Atomic accumulation is the sanctioned idiom"
      (pool_stub
      ^ "let counts n =\n\
        \  let acc = Atomic.make 0 in\n\
        \  Sc_parallel.parallel_iter (fun _ -> Atomic.incr acc) n;\n\
        \  Atomic.get acc\n");
    no_typed_findings "per-index writes into a shared array are disjoint"
      (pool_stub
      ^ "let table n =\n\
        \  let out = Array.make n 0 in\n\
        \  Sc_parallel.parallel_iter (fun i -> out.(i) <- i * i) n;\n\
        \  out\n");
    case "a waiver suppresses the capture finding without going stale"
      (fun () ->
        let fs = typed_lint captured_ref_src in
        let w =
          "((rule domain-capture) (file lib/fixture.ml) (key races:acc)\n\
          \ (justification \"fixture: single-domain test pool\"))"
        in
        match Waiver.parse w with
        | Error e -> Alcotest.failf "waiver parse: %s" e
        | Ok ws ->
          let unwaived, waived, stale = Waiver.apply ws fs in
          check Alcotest.bool "suppressed" false
            (has_rule "domain-capture" unwaived);
          check Alcotest.int "one waived" 1 (List.length waived);
          check Alcotest.int "no stale" 0 (List.length stale));
  ]

let service_stub =
  "module Service = struct type error = Overloaded of int end\n\
   let submit () : (unit, Service.error) result =\n\
  \  Error (Service.Overloaded 1)\n"

let protocol_stub =
  "module Protocol = struct type failure = Diverged of string | Timeout end\n\
   let check () : (unit, Protocol.failure) result = Error Protocol.Timeout\n"

let typed_discarded_error =
  [
    case "ignore of a typed-error result is flagged" (fun () ->
        let fs =
          typed_lint (service_stub ^ "let pump () = ignore (submit ())\n")
        in
        let f = find_rule "discarded-error" fs in
        check Alcotest.string "key" "pump:ignore:Service.error" f.Finding.key);
    case "wildcard arm over a protocol failure is flagged" (fun () ->
        let fs =
          typed_lint
            (protocol_stub
            ^ "let run () = match check () with Ok () -> 0 | _ -> 1\n")
        in
        let f = find_rule "discarded-error" fs in
        check Alcotest.string "key" "run:wildcard:Protocol.failure"
          f.Finding.key);
    case "let _ discarding a typed verdict is flagged" (fun () ->
        let fs =
          typed_lint
            (service_stub ^ "let drop () =\n  let _res = submit () in\n  ()\n")
        in
        check Alcotest.bool "flagged" true (has_rule "discarded-error" fs));
    no_typed_findings "matching every constructor surfaces the verdict"
      (protocol_stub
      ^ "let run () =\n\
        \  match check () with\n\
        \  | Ok () -> 0\n\
        \  | Error (Protocol.Diverged _) -> 1\n\
        \  | Error Protocol.Timeout -> 2\n");
    no_typed_findings "ignoring a plain int is fine"
      "let f () = ignore (1 + 2)\n";
  ]

let jitter_src = "let jitter () = Random.int 6\nlet spread n = jitter () + n\n"

let typed_transitive_determinism =
  [
    case "caller of a Random-using helper is flagged with the chain" (fun () ->
        let fs = typed_lint jitter_src in
        let f = find_rule "transitive-determinism" fs in
        check Alcotest.string "chain key" "spread>Fixture.jitter>Random.int"
          f.Finding.key;
        check Alcotest.bool "message spells the chain" true
          (contains f.Finding.msg "spread -> Fixture.jitter -> Random.int"));
    case "the same code outside lib/ is not flagged" (fun () ->
        let fs = typed_lint ~rel:"bin/fixture.ml" jitter_src in
        check Alcotest.bool "not flagged" false
          (has_rule "transitive-determinism" fs));
    case "a waived direct source does not propagate to callers" (fun () ->
        let w =
          "((rule determinism) (file lib/fixture.ml) (key jitter:Random.int)\n\
          \ (justification \"fixture: sanctioned entropy source\"))"
        in
        match Waiver.parse w with
        | Error e -> Alcotest.failf "waiver parse: %s" e
        | Ok ws ->
          let fs = typed_lint ~waivers:ws jitter_src in
          check Alcotest.bool "not flagged" false
            (has_rule "transitive-determinism" fs));
    no_typed_findings "deterministic helpers do not seed the closure"
      "let leaf n = n * 2\nlet outer n = leaf n + 1\n";
  ]

let typed_fallback =
  [
    case "without cmts the Parsetree secret heuristic still runs" (fun () ->
        let src =
          {
            Engine.rel = "lib/fixture.ml";
            content = "let debug sk = Printf.printf \"sk=%s\" sk\n";
            has_mli = true;
          }
        in
        let findings, cmt_rels =
          Engine.lint_all ~build_dir:"/nonexistent-cmt-dir" ~waivers:[]
            [ src ]
        in
        check Alcotest.(list string) "no cmt coverage" [] cmt_rels;
        check Alcotest.bool "name-heuristic finding" true
          (has_rule "secret-flow" findings));
    case "to_json escapes quotes and carries the waived flag" (fun () ->
        let f =
          {
            Finding.rule = "typed-secret-flow";
            file = "lib/a.ml";
            line = 3;
            severity = Finding.Error;
            key = "f>sink";
            msg = "say \"hi\"";
          }
        in
        check Alcotest.string "json"
          "{\"rule\":\"typed-secret-flow\",\"file\":\"lib/a.ml\",\"line\":3,\
           \"severity\":\"error\",\"key\":\"f>sink\",\"msg\":\"say \
           \\\"hi\\\"\",\"waived\":true}"
          (Finding.to_json ~waived:true f));
    case "findings differing only in chain key both survive dedup" (fun () ->
        let f key =
          {
            Finding.rule = "transitive-determinism";
            file = "lib/a.ml";
            line = 7;
            severity = Finding.Error;
            key;
            msg = "m";
          }
        in
        let fs =
          List.sort_uniq Finding.compare
            [ f "g>A.h>Random.int"; f "g>B.h>Sys.time"; f "g>A.h>Random.int" ]
        in
        check Alcotest.int "two distinct chains" 2 (List.length fs));
  ]

(* The real tree must lint clean against the committed baseline, and
   the baseline must contain no dead entries — the same gate
   `make lint` applies, run in-process.  The typed pass rides along
   when the surrounding _build has cmt files (it does under
   `dune runtest`: the test links every library); if they are absent
   the typed waivers are excluded from staleness, mirroring the
   CLI. *)
let typed_rule_names =
  [
    "typed-secret-flow"; "domain-capture"; "discarded-error";
    "transitive-determinism";
  ]

let self_lint =
  [
    case "repo lints clean with zero stale waivers" (fun () ->
        (* dune runs the test with cwd inside _build; the declared
           source_tree deps materialize lib/, bin/, test/ and the
           baseline next to it.  Walk up to wherever they landed. *)
        let root =
          List.find_opt
            (fun r ->
              Sys.file_exists (Filename.concat r "lint/waivers.sexp"))
            [ "."; ".."; "../.."; "../../.." ]
        in
        match root with
        | None -> Alcotest.fail "lint/waivers.sexp not found from test cwd"
        | Some root ->
          let waiver_file = Filename.concat root "lint/waivers.sexp" in
          let sources = Engine.collect_files ~root [ "lib"; "bin"; "test" ] in
          check Alcotest.bool "collected a plausible tree" true
            (List.length sources > 50);
          match Waiver.parse (In_channel.with_open_text waiver_file In_channel.input_all) with
          | Error e -> Alcotest.failf "waiver parse: %s" e
          | Ok ws ->
            let findings, cmt_rels =
              Engine.lint_all ~build_dir:root ~waivers:ws sources
            in
            let unwaived, _, stale = Waiver.apply ws findings in
            let stale =
              List.filter
                (fun w ->
                  (not (List.mem w.Waiver.rule typed_rule_names))
                  || List.mem w.Waiver.file cmt_rels)
                stale
            in
            let errors =
              List.filter
                (fun f -> f.Finding.severity = Finding.Error)
                unwaived
            in
            check Alcotest.(list string) "no unwaived errors" []
              (List.map Finding.to_string errors);
            check Alcotest.(list string) "no stale waivers" []
              (List.map Waiver.to_string stale));
  ]

let suite =
  domain_safety @ signing_encode @ determinism @ secret_flow
  @ exception_discipline @ naive_scalar_mul @ dynamic_metric_name @ infra
  @ waivers @ typed_secret_flow @ typed_domain_capture
  @ typed_discarded_error @ typed_transitive_determinism @ typed_fallback
  @ self_lint
