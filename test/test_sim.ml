module Eq = Sc_sim.Event_queue
module Net = Sc_sim.Network
module Adv = Sc_sim.Adversary
module Mc = Sc_sim.Montecarlo
module Engine = Sc_sim.Engine

let event_queue_tests =
  let open Util in
  [
    case "events fire in time order" (fun () ->
        let q = Eq.create () in
        let log = ref [] in
        Eq.schedule q ~delay:3.0 (fun () -> log := "c" :: !log);
        Eq.schedule q ~delay:1.0 (fun () -> log := "a" :: !log);
        Eq.schedule q ~delay:2.0 (fun () -> log := "b" :: !log);
        Eq.run q;
        check Alcotest.(list string) "order" [ "a"; "b"; "c" ] (List.rev !log));
    case "equal times fire FIFO" (fun () ->
        let q = Eq.create () in
        let log = ref [] in
        for i = 0 to 9 do
          Eq.schedule q ~delay:1.0 (fun () -> log := i :: !log)
        done;
        Eq.run q;
        check Alcotest.(list int) "fifo" (List.init 10 Fun.id) (List.rev !log));
    case "clock advances to event times" (fun () ->
        let q = Eq.create () in
        let seen = ref 0.0 in
        Eq.schedule q ~delay:5.5 (fun () -> seen := Eq.now q);
        Eq.run q;
        check (Alcotest.float 1e-9) "time" 5.5 !seen);
    case "events can schedule events" (fun () ->
        let q = Eq.create () in
        let count = ref 0 in
        let rec chain n =
          if n > 0 then
            Eq.schedule q ~delay:1.0 (fun () ->
                incr count;
                chain (n - 1))
        in
        chain 5;
        Eq.run q;
        check Alcotest.int "all fired" 5 !count;
        check (Alcotest.float 1e-9) "final time" 5.0 (Eq.now q));
    case "run ~until leaves later events pending" (fun () ->
        let q = Eq.create () in
        let fired = ref 0 in
        Eq.schedule q ~delay:1.0 (fun () -> incr fired);
        Eq.schedule q ~delay:10.0 (fun () -> incr fired);
        Eq.run ~until:5.0 q;
        check Alcotest.int "one fired" 1 !fired;
        check Alcotest.int "one pending" 1 (Eq.pending q);
        Eq.run q;
        check Alcotest.int "both fired" 2 !fired);
    case "negative delay rejected" (fun () ->
        let q = Eq.create () in
        Alcotest.check_raises "negative"
          (Invalid_argument "Event_queue.schedule: negative delay") (fun () ->
            Eq.schedule q ~delay:(-1.0) ignore));
    case "many events stress (heap growth)" (fun () ->
        let q = Eq.create () in
        let drbg = Sc_hash.Drbg.create ~seed:"heap" in
        let last = ref (-1.0) in
        let ok = ref true in
        for _ = 1 to 2000 do
          let d = Sc_hash.Drbg.float drbg *. 100.0 in
          Eq.schedule q ~delay:d (fun () ->
              if Eq.now q < !last then ok := false;
              last := Eq.now q)
        done;
        Eq.run q;
        check Alcotest.bool "monotone" true !ok);
  ]

let network_tests =
  let open Util in
  [
    case "transfer accounting" (fun () ->
        let net = Net.create Net.default_config in
        let t = Net.record_transfer net ~bytes:1_000_000 in
        check Alcotest.bool "latency + serialization" true (t > 0.02);
        check Alcotest.int "bytes" 1_000_000 (Net.total_bytes net);
        check Alcotest.int "count" 1 (Net.transfers net);
        ignore (Net.record_transfer net ~bytes:500);
        check Alcotest.int "accumulates" 1_000_500 (Net.total_bytes net));
    case "cost proportional to bytes" (fun () ->
        let net = Net.create Net.default_config in
        let c1 = Net.transfer_cost net ~bytes:100 in
        let c2 = Net.transfer_cost net ~bytes:200 in
        check (Alcotest.float 1e-12) "double" (2.0 *. c1) c2);
    case "reset" (fun () ->
        let net = Net.create Net.default_config in
        ignore (Net.record_transfer net ~bytes:42);
        Net.reset net;
        check Alcotest.int "zeroed" 0 (Net.total_bytes net));
  ]

let adversary_tests =
  let open Util in
  let ids = List.init 10 (Printf.sprintf "cs-%d") in
  [
    case "bound respected over many epochs" (fun () ->
        let drbg = Sc_hash.Drbg.create ~seed:"adv" in
        let adv = Adv.create ~drbg ~bound:3 ~server_ids:ids () in
        for _ = 1 to 50 do
          Adv.new_epoch adv;
          if List.length (Adv.corrupted adv) > 3 then Alcotest.fail "bound exceeded"
        done);
    case "bound zero means no corruption" (fun () ->
        let drbg = Sc_hash.Drbg.create ~seed:"adv0" in
        let adv = Adv.create ~drbg ~bound:0 ~server_ids:ids () in
        for _ = 1 to 10 do
          Adv.new_epoch adv;
          check Alcotest.(list string) "clean" [] (Adv.corrupted adv)
        done);
    case "bound above n rejected" (fun () ->
        let drbg = Sc_hash.Drbg.create ~seed:"advx" in
        Alcotest.check_raises "too big"
          (Invalid_argument "Adversary.create: bound exceeds server count")
          (fun () -> ignore (Adv.create ~drbg ~bound:11 ~server_ids:ids ())));
    case "victims move across epochs (mobile adversary)" (fun () ->
        let drbg = Sc_hash.Drbg.create ~seed:"mobile" in
        let adv = Adv.create ~drbg ~bound:2 ~server_ids:ids () in
        let victims = Hashtbl.create 16 in
        for _ = 1 to 60 do
          Adv.new_epoch adv;
          List.iter (fun id -> Hashtbl.replace victims id ()) (Adv.corrupted adv)
        done;
        check Alcotest.bool "several distinct victims" true
          (Hashtbl.length victims >= 5));
    case "corruption_of consistent with corrupted list" (fun () ->
        let drbg = Sc_hash.Drbg.create ~seed:"cons" in
        let adv = Adv.create ~drbg ~bound:4 ~server_ids:ids () in
        Adv.new_epoch adv;
        List.iter
          (fun id ->
            let in_list = List.mem id (Adv.corrupted adv) in
            let has_corruption = Adv.corruption_of adv id <> None in
            check Alcotest.bool id in_list has_corruption)
          ids);
  ]

let montecarlo_tests =
  let open Util in
  let tolerance rate predicted trials =
    (* Allow 6 sigma of binomial noise plus a small epsilon. *)
    let sigma = sqrt (max 1e-12 (predicted *. (1.0 -. predicted) /. float_of_int trials)) in
    Float.abs (rate -. predicted) < (6.0 *. sigma) +. 2e-3
  in
  [
    case "fcs experiment matches eq. 10" (fun () ->
        let drbg = Sc_hash.Drbg.create ~seed:"mc-fcs" in
        List.iter
          (fun (csc, range, t) ->
            let r = Mc.fcs_experiment ~drbg ~csc ~range ~t ~trials:60_000 in
            if not (tolerance r.Mc.rate r.Mc.predicted 60_000)
            then Alcotest.failf "csc=%f range=%f t=%d: %f vs %f" csc range t
                r.Mc.rate r.Mc.predicted)
          [ 0.5, 2.0, 5; 0.3, 4.0, 8; 0.0, 2.0, 3; 0.9, infinity, 20 ]);
    case "pcs experiment matches eq. 12" (fun () ->
        let drbg = Sc_hash.Drbg.create ~seed:"mc-pcs" in
        List.iter
          (fun (ssc, t) ->
            let r = Mc.pcs_experiment ~drbg ~ssc ~sig_forge:0.0 ~t ~trials:60_000 in
            if not (tolerance r.Mc.rate r.Mc.predicted 60_000)
            then Alcotest.failf "ssc=%f t=%d" ssc t)
          [ 0.5, 5; 0.7, 10; 0.2, 3 ]);
    case "combined experiment bounded by eq. 14" (fun () ->
        let drbg = Sc_hash.Drbg.create ~seed:"mc-comb" in
        let r =
          Mc.combined_experiment ~drbg ~csc:0.5 ~ssc:0.5 ~range:2.0
            ~sig_forge:0.0 ~t:10 ~trials:60_000
        in
        (* eq. 14 is a union upper bound; the empirical rate must not
           exceed it materially. *)
        check Alcotest.bool "bounded" true (r.Mc.rate <= r.Mc.predicted +. 0.01));
  ]

(* Conformance: with enough trials the empirical survival rate must
   sit within 3 sigma of the closed forms of eqs. (10)-(14).  Regimes
   are chosen so predicted * trials >~ 100 (binomial normality) and,
   for eq. 14, so the union-bound overlap term is far below the noise
   floor.  Everything is seeded: one passing run certifies the
   assertion forever. *)
let montecarlo_conformance_tests =
  let open Util in
  let trials = 80_000 in
  let within_3_sigma name rate predicted =
    let sigma =
      sqrt (max 1e-12 (predicted *. (1.0 -. predicted) /. float_of_int trials))
    in
    if Float.abs (rate -. predicted) > 3.0 *. sigma then
      Alcotest.failf "%s: empirical %.6f vs closed form %.6f (3s = %.6f)" name
        rate predicted (3.0 *. sigma)
  in
  [
    slow_case "FCS survival conforms to eq. 10 within 3 sigma" (fun () ->
        let drbg = Sc_hash.Drbg.create ~seed:"mc-conf-fcs" in
        List.iter
          (fun (csc, range, t) ->
            let r = Mc.fcs_experiment ~drbg ~csc ~range ~t ~trials in
            check (Alcotest.float 1e-12) "closed form"
              (Sc_audit.Sampling.pr_fcs ~csc ~range ~t)
              r.Mc.predicted;
            within_3_sigma
              (Printf.sprintf "fcs csc=%.1f range=%.1f t=%d" csc range t)
              r.Mc.rate r.Mc.predicted)
          [ 0.5, 2.0, 10; 0.3, 4.0, 6; 0.8, infinity, 12 ]);
    slow_case "PCS survival conforms to eq. 12 within 3 sigma" (fun () ->
        let drbg = Sc_hash.Drbg.create ~seed:"mc-conf-pcs" in
        List.iter
          (fun (ssc, sig_forge, t) ->
            let r = Mc.pcs_experiment ~drbg ~ssc ~sig_forge ~t ~trials in
            check (Alcotest.float 1e-12) "closed form"
              (Sc_audit.Sampling.pr_pcs ~ssc ~sig_forge ~t)
              r.Mc.predicted;
            within_3_sigma
              (Printf.sprintf "pcs ssc=%.1f forge=%g t=%d" ssc sig_forge t)
              r.Mc.rate r.Mc.predicted)
          [ 0.6, 1e-3, 8; 0.5, 0.0, 8 ]);
    slow_case "combined survival conforms to eq. 14 within 3 sigma" (fun () ->
        let drbg = Sc_hash.Drbg.create ~seed:"mc-conf-comb" in
        (* Overlap of the union bound at this regime is ~8e-6, two
           orders of magnitude under the 3-sigma noise floor. *)
        let r =
          Mc.combined_experiment ~drbg ~csc:0.5 ~ssc:0.5 ~range:2.0
            ~sig_forge:0.0 ~t:12 ~trials
        in
        check (Alcotest.float 1e-12) "closed form"
          (Sc_audit.Sampling.pr_cheat ~csc:0.5 ~ssc:0.5 ~range:2.0
             ~sig_forge:0.0 ~t:12)
          r.Mc.predicted;
        within_3_sigma "combined" r.Mc.rate r.Mc.predicted);
  ]

let engine_tests =
  let open Util in
  [
    slow_case "honest fleet has no false alarms" (fun () ->
        let stats =
          Engine.run
            {
              Engine.default_config with
              Engine.seed = "honest-fleet";
              byzantine_bound = 0;
              epochs = 3;
            }
        in
        check Alcotest.int "no cheats" 0 (stats.Engine.detected + stats.Engine.undetected);
        check Alcotest.int "no false alarms" 0 stats.Engine.false_alarms;
        check Alcotest.bool "audits ran" true (stats.Engine.outcomes <> []));
    slow_case "byzantine fleet: cheats detected, no false alarms" (fun () ->
        let stats =
          Engine.run
            {
              Engine.default_config with
              Engine.seed = "byzantine-fleet";
              n_servers = 3;
              byzantine_bound = 2;
              n_users = 3;
              epochs = 4;
              samples_per_audit = 10;
            }
        in
        check Alcotest.int "no false alarms" 0 stats.Engine.false_alarms;
        check Alcotest.bool "some cheating occurred" true
          (stats.Engine.detected + stats.Engine.undetected > 0);
        check Alcotest.bool "detection dominates" true
          (Engine.detection_rate stats >= 0.5));
    slow_case "history learning yields positive costs" (fun () ->
        let stats =
          Engine.run { Engine.default_config with Engine.seed = "learning"; epochs = 3 }
        in
        let costs = Engine.learned_costs stats in
        check Alcotest.bool "c_trans > 0" true (costs.Sc_audit.Optimal.c_trans > 0.0);
        check Alcotest.bool "c_comp >= 0" true (costs.Sc_audit.Optimal.c_comp >= 0.0));
    slow_case "simulation is deterministic given a seed" (fun () ->
        let run () =
          Engine.run { Engine.default_config with Engine.seed = "repeat"; epochs = 2 }
        in
        let a = run () and b = run () in
        check Alcotest.int "same outcomes" (List.length a.Engine.outcomes)
          (List.length b.Engine.outcomes);
        check Alcotest.int "same detected" a.Engine.detected b.Engine.detected;
        check Alcotest.int "same bytes" a.Engine.total_bytes b.Engine.total_bytes);
  ]

(* --- distributed-trace reconstruction over a faulted campaign --------

   A lossy multi-domain campaign is the adversarial case for trace
   integrity: retries fork child attempts, the audit fan-out crosses
   the domain pool, and every one of those spans must still land in
   the campaign root's trace with its parent present. *)

let trace_tests =
  let open Util in
  let module Telemetry = Sc_telemetry.Telemetry in
  let module A = Sc_telemetry.Trace_analysis in
  let spans_of_campaign seed =
    let saved = Sc_parallel.domain_count () in
    Sc_parallel.set_domain_count 4;
    let lines = ref [] in
    let lock = Mutex.create () in
    Telemetry.set_sink
      (Some
         (fun l ->
           Mutex.lock lock;
           lines := l :: !lines;
           Mutex.unlock lock));
    Fun.protect
      ~finally:(fun () ->
        Telemetry.set_sink None;
        Sc_parallel.set_domain_count saved)
      (fun () ->
        ignore
          (Engine.run
             {
               Engine.default_config with
               Engine.seed;
               epochs = 2;
               faults = Seccloud.Transport.lossy ~drop:0.05 ();
             }));
    List.map
      (fun l ->
        match A.span_of_line l with
        | Some s -> s
        | None -> Alcotest.failf "unparsable trace line: %s" l)
      !lines
  in
  [
    qcheck ~count:4
      "faulted multi-domain campaign reconstructs to one rooted trace"
      QCheck2.Gen.(int_bound 1_000)
      (fun n ->
        let spans = spans_of_campaign (Printf.sprintf "trace-fuzz-%d" n) in
        let report = A.analyze spans in
        let by_id = Hashtbl.create 256 in
        List.iter (fun (s : A.span) -> Hashtbl.replace by_id s.A.id s) spans;
        let parent_name (s : A.span) =
          Option.bind s.A.parent (fun p ->
              Option.map (fun (q : A.span) -> q.A.name)
                (Hashtbl.find_opt by_id p))
        in
        (* One campaign, one trace, no orphaned parents: every span of
           the run shares the root's trace id. *)
        report.A.traces = 1
        && report.A.roots = 1
        && report.A.orphans = 0
        && report.A.rpc_campaign_coverage = 1.0
        && report.A.rpc_spans > 0
        (* Retries are attempt children of their rpc span, never new
           roots. *)
        && List.for_all
             (fun (s : A.span) ->
               s.A.name <> "transport.attempt"
               || parent_name s = Some "transport.rpc")
             spans);
  ]

let suite =
  event_queue_tests @ network_tests @ adversary_tests @ montecarlo_tests
  @ montecarlo_conformance_tests @ engine_tests @ trace_tests
