let () =
  Alcotest.run "seccloud"
    [
      "nat", Test_nat.suite;
      "modular", Test_modular.suite;
      "prime", Test_prime.suite;
      "hash", Test_hash.suite;
      "field", Test_field.suite;
      "ec", Test_ec.suite;
      "pairing", Test_pairing.suite;
      "merkle", Test_merkle.suite;
      "ibc", Test_ibc.suite;
      "baselines", Test_baselines.suite;
      "storage", Test_storage.suite;
      "compute", Test_compute.suite;
      "audit", Test_audit.suite;
      "seccloud", Test_seccloud.suite;
      "wire", Test_wire.suite;
      "wire_fuzz", Test_wire_fuzz.suite;
      "transport", Test_transport.suite;
      "erasure", Test_erasure.suite;
      "sim", Test_sim.suite;
      "service", Test_service.suite;
      "telemetry", Test_telemetry.suite;
      "encode", Test_encode.suite;
      "parallel", Test_parallel.suite;
      "lint", Test_lint.suite;
    ]
