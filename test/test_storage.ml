open Sc_storage

let system = Lazy.force Util.shared_system
let pub = Seccloud.System.public system
let da_key = Seccloud.System.da_key system
let cs_key = Seccloud.System.cs_key system "cs-1"
let alice = Seccloud.System.register_user system "alice"
let bs = Util.fresh_bs "storage-tests"

let payloads = List.init 16 (fun i -> Block.encode_ints [ i; i + 1; i + 2 ])

let make_upload () =
  Signer.sign_file pub alice ~bytes_source:bs ~cs_id:"cs-1" ~da_id:"da"
    ~file:"doc" payloads

let fresh_server behaviour =
  let server = Server.create behaviour ~drbg:(Sc_hash.Drbg.create ~seed:"srv") in
  Server.store server (make_upload ());
  server

let block_tests =
  let open Util in
  [
    case "encode/decode ints round trip" (fun () ->
        List.iter
          (fun ints ->
            check
              Alcotest.(option (list int))
              "round trip" (Some ints)
              (Block.decode_ints (Block.encode_ints ints)))
          [ []; [ 0 ]; [ 1; 2; 3 ]; [ -5; 0; 42; max_int ] ]);
    case "decode rejects garbage" (fun () ->
        check Alcotest.(option (list int)) "garbage" None (Block.decode_ints "1,x,3"));
    case "signing message binds file, index and data" (fun () ->
        let b = { Block.file = "f"; index = 3; data = "d" } in
        let variants =
          [
            { b with Block.file = "g" };
            { b with Block.index = 4 };
            { b with Block.data = "e" };
          ]
        in
        List.iter
          (fun v ->
            if String.equal (Block.signing_message b) (Block.signing_message v)
            then Alcotest.fail "collision")
          variants);
  ]

let signer_tests =
  let open Util in
  [
    case "signed blocks verify for both designated parties" (fun () ->
        let upload = make_upload () in
        Array.iter
          (fun (sb : Signer.signed_block) ->
            check Alcotest.bool "cs" true
              (Signer.verify_block pub ~verifier_key:cs_key ~role:`Cs
                 ~owner:"alice" sb.Signer.block sb);
            check Alcotest.bool "da" true
              (Signer.verify_block pub ~verifier_key:da_key ~role:`Da
                 ~owner:"alice" sb.Signer.block sb))
          upload.Signer.blocks);
    case "verification fails for tampered payload" (fun () ->
        let upload = make_upload () in
        let sb = upload.Signer.blocks.(2) in
        let forged = { sb.Signer.block with Block.data = "other" } in
        check Alcotest.bool "tampered" false
          (Signer.verify_block pub ~verifier_key:da_key ~role:`Da ~owner:"alice"
             forged sb));
    case "verification fails for shifted position" (fun () ->
        let upload = make_upload () in
        let sb = upload.Signer.blocks.(2) in
        let moved = { sb.Signer.block with Block.index = 5 } in
        check Alcotest.bool "moved" false
          (Signer.verify_block pub ~verifier_key:da_key ~role:`Da ~owner:"alice"
             moved sb));
    case "verification fails for wrong owner" (fun () ->
        let upload = make_upload () in
        let sb = upload.Signer.blocks.(0) in
        check Alcotest.bool "wrong owner" false
          (Signer.verify_block pub ~verifier_key:da_key ~role:`Da ~owner:"bob"
             sb.Signer.block sb));
    case "role projection picks matching sigma" (fun () ->
        let upload = make_upload () in
        let sb = upload.Signer.blocks.(0) in
        let dcs = Signer.dvs_for `Cs sb and dda = Signer.dvs_for `Da sb in
        check Alcotest.bool "distinct designations" false
          (Sc_pairing.Tate.gt_equal dcs.Sc_ibc.Dvs.sigma dda.Sc_ibc.Dvs.sigma));
  ]

let server_tests =
  let open Util in
  [
    case "honest server serves verifiable blocks" (fun () ->
        let server = fresh_server Server.Honest in
        for i = 0 to 15 do
          match Server.read server ~file:"doc" ~index:i with
          | None -> Alcotest.fail "missing block"
          | Some { Server.claimed; signed } ->
            check Alcotest.bool "verifies" true
              (Signer.verify_block pub ~verifier_key:da_key ~role:`Da
                 ~owner:"alice" claimed signed)
        done);
    case "unknown file and out-of-range index give None" (fun () ->
        let server = fresh_server Server.Honest in
        check Alcotest.bool "no file" true
          (Server.read server ~file:"nope" ~index:0 = None);
        check Alcotest.bool "oob" true
          (Server.read server ~file:"doc" ~index:99 = None));
    case "delete-fraction server gets caught on some blocks" (fun () ->
        let server = fresh_server (Server.Delete_fraction 0.5) in
        let failures = ref 0 in
        for i = 0 to 15 do
          match Server.read server ~file:"doc" ~index:i with
          | None -> incr failures
          | Some { Server.claimed; signed } ->
            if
              not
                (Signer.verify_block pub ~verifier_key:da_key ~role:`Da
                   ~owner:"alice" claimed signed)
            then incr failures
        done;
        check Alcotest.bool "some deleted blocks detected" true (!failures > 0));
    case "corrupt-fraction server gets caught" (fun () ->
        let server = fresh_server (Server.Corrupt_fraction 0.5) in
        let failures = ref 0 in
        for i = 0 to 15 do
          match Server.read server ~file:"doc" ~index:i with
          | Some { Server.claimed; signed } ->
            if
              not
                (Signer.verify_block pub ~verifier_key:da_key ~role:`Da
                   ~owner:"alice" claimed signed)
            then incr failures
          | None -> incr failures
        done;
        check Alcotest.bool "detected" true (!failures > 0));
    case "substitute-fraction serves wrong positions detectably" (fun () ->
        let server = fresh_server (Server.Substitute_fraction 0.8) in
        let mismatches = ref 0 in
        for i = 0 to 15 do
          match Server.read server ~file:"doc" ~index:i with
          | Some { Server.claimed; signed } ->
            (* Either the signature fails outright or the claimed index
               disagrees with what was signed. *)
            let sig_ok =
              Signer.verify_block pub ~verifier_key:da_key ~role:`Da
                ~owner:"alice" claimed signed
            in
            if not sig_ok then incr mismatches
          | None -> incr mismatches
        done;
        check Alcotest.bool "detected" true (!mismatches > 0));
    case "cheating is sticky per position" (fun () ->
        let server = fresh_server (Server.Corrupt_fraction 0.5) in
        for i = 0 to 15 do
          let r1 = Server.read server ~file:"doc" ~index:i in
          let r2 = Server.read server ~file:"doc" ~index:i in
          match r1, r2 with
          | Some a, Some b ->
            check Alcotest.string "stable answer" a.Server.claimed.Block.data
              b.Server.claimed.Block.data
          | None, None -> ()
          | Some _, None | None, Some _ -> Alcotest.fail "flapping"
        done);
    case "read_honest bypasses cheating" (fun () ->
        let server = fresh_server (Server.Corrupt_fraction 1.0) in
        for i = 0 to 15 do
          match Server.read_honest server ~file:"doc" ~index:i with
          | None -> Alcotest.fail "missing"
          | Some { Server.claimed; signed } ->
            check Alcotest.bool "clean" true
              (Signer.verify_block pub ~verifier_key:da_key ~role:`Da
                 ~owner:"alice" claimed signed)
        done);
    case "storage_confidence reflects behaviour" (fun () ->
        let eps = 1e-9 in
        let close a b = Float.abs (a -. b) < eps in
        check Alcotest.bool "honest" true
          (close 1.0 (Server.storage_confidence (fresh_server Server.Honest)));
        check Alcotest.bool "delete 0.3" true
          (close 0.7
             (Server.storage_confidence (fresh_server (Server.Delete_fraction 0.3)))));
    case "file listing and size" (fun () ->
        let server = fresh_server Server.Honest in
        check Alcotest.(list string) "files" [ "doc" ] (Server.files server);
        check Alcotest.(option int) "size" (Some 16) (Server.file_size server "doc"));
  ]

let dynamic_tests =
  let open Util in
  let module D = Dynamic in
  let fresh tag n =
    D.init pub alice ~bytes_source:(Util.fresh_bs ("dyn:" ^ tag)) ~cs_id:"cs-1"
      ~da_id:"da" ~file:"dynfile"
      (List.init n (Printf.sprintf "payload-%d"))
  in
  let accepted = function Ok () -> true | Error _ -> false in
  [
    case "init: client and server agree on the root" (fun () ->
        let client, server = fresh "init" 9 in
        check Alcotest.string "roots" (D.root client) (D.server_root server);
        check Alcotest.int "count" 9 (D.count client));
    case "init rejects empty file" (fun () ->
        Alcotest.check_raises "empty"
          (Invalid_argument "Dynamic.init: empty payload list") (fun () ->
            ignore (fresh "empty" 0)));
    case "reads verify against the client root" (fun () ->
        let client, server = fresh "reads" 7 in
        for i = 0 to 6 do
          match D.read server i with
          | None -> Alcotest.fail "missing"
          | Some rp ->
            check Alcotest.bool "ok" true (D.verify_read client ~index:i rp)
        done;
        check Alcotest.bool "oob read" true (D.read server 7 = None));
    case "update bumps version and moves both roots" (fun () ->
        let client, server = fresh "update" 8 in
        let old_root = D.root client in
        check Alcotest.bool "accepted" true
          (accepted (D.update client server ~index:5 "v1!"));
        check Alcotest.bool "root changed" false (String.equal old_root (D.root client));
        check Alcotest.string "in sync" (D.root client) (D.server_root server);
        match D.read server 5 with
        | Some rp ->
          check Alcotest.bool "payload" true (rp.D.content = D.Data "v1!");
          check Alcotest.int "version" 1 rp.D.version;
          check Alcotest.bool "verifies" true (D.verify_read client ~index:5 rp)
        | None -> Alcotest.fail "missing");
    case "stale read proof fails after update (replay protection)" (fun () ->
        let client, server = fresh "stale" 6 in
        let stale = Option.get (D.read server 2) in
        assert (accepted (D.update client server ~index:2 "fresh"));
        check Alcotest.bool "stale rejected" false
          (D.verify_read client ~index:2 stale));
    case "append extends the file verifiably" (fun () ->
        let client, server = fresh "append" 5 in
        check Alcotest.bool "accepted" true
          (accepted (D.append client server "extra-1"));
        check Alcotest.bool "accepted" true
          (accepted (D.append client server "extra-2"));
        check Alcotest.int "count" 7 (D.count client);
        check Alcotest.string "in sync" (D.root client) (D.server_root server);
        match D.read server 6 with
        | Some rp ->
          check Alcotest.bool "payload" true (rp.D.content = D.Data "extra-2");
          check Alcotest.bool "verifies" true (D.verify_read client ~index:6 rp)
        | None -> Alcotest.fail "missing");
    case "delete tombstones a block" (fun () ->
        let client, server = fresh "delete" 5 in
        check Alcotest.bool "accepted" true
          (accepted (D.delete client server ~index:1));
        let rp = Option.get (D.read server 1) in
        check Alcotest.bool "tombstoned" true (D.is_deleted rp);
        check Alcotest.bool "still authenticated" true
          (D.verify_read client ~index:1 rp));
    case "tombstone sentinel payload is plain data (regression)" (fun () ->
        (* The previous framing encoded deletion as the reserved
           payload "\x00__tombstone__": storing those exact bytes was
           indistinguishable from a delete.  Pin the collision in the
           old format, then show the typed framing separates them. *)
        let sentinel = "\x00__tombstone__" in
        let old_frame ~index ~version ~payload =
          Sc_hash.Encode.canonical
            [ "dleaf"; string_of_int version; string_of_int index; payload ]
        in
        (* Old delete wrote the sentinel as the payload; innocent user
           data with the same bytes framed identically. *)
        let old_delete_leaf = old_frame ~index:4 ~version:1 ~payload:sentinel in
        let old_data_leaf =
          old_frame ~index:4 ~version:1 ~payload:"\x00__tombstone__"
        in
        check Alcotest.string "old framing collided" old_delete_leaf
          old_data_leaf;
        let client, server = fresh "sentinel" 5 in
        check Alcotest.bool "stored" true
          (accepted (D.update client server ~index:4 sentinel));
        let rp = Option.get (D.read server 4) in
        check Alcotest.bool "not a tombstone" false (D.is_deleted rp);
        check Alcotest.bool "round-trips" true (rp.D.content = D.Data sentinel);
        check Alcotest.bool "verifies" true (D.verify_read client ~index:4 rp);
        (* And an actual delete of the same block is a distinct,
           authenticated state. *)
        check Alcotest.bool "deleted" true
          (accepted (D.delete client server ~index:4));
        let rp' = Option.get (D.read server 4) in
        check Alcotest.bool "tombstoned" true (D.is_deleted rp');
        check Alcotest.bool "verifies" true (D.verify_read client ~index:4 rp'));
    case "lying (lazy) server is caught at update time (regression)" (fun () ->
        let client, server = fresh "lazy" 6 in
        D.make_lazy server;
        (match D.update client server ~index:2 "new-bytes" with
        | Error (D.Diverged { expected; server = got }) ->
          check Alcotest.bool "roots differ" false (String.equal expected got);
          check Alcotest.string "client holds the true root" expected
            (D.root client)
        | Ok () | Error _ -> Alcotest.fail "divergence not detected");
        (match D.append client server "tail" with
        | Error (D.Diverged _) -> ()
        | Ok () | Error _ -> Alcotest.fail "append divergence not detected"));
    case "update out of range / bad pre-state are typed errors" (fun () ->
        let client, server = fresh "typed" 4 in
        check Alcotest.bool "not found" true
          (D.update client server ~index:9 "x" = Error D.Not_found);
        D.corrupt_entry server 1;
        check Alcotest.bool "bad proof" true
          (D.update client server ~index:1 "x" = Error D.Bad_proof);
        check Alcotest.int "count unchanged" 4 (D.count client));
    case "batch: k mutations, one root transition" (fun () ->
        let client, server = fresh "batch" 6 in
        let ops =
          [
            D.Update { index = 0; payload = "b0" };
            D.Append { payload = "b6" };
            D.Delete { index = 3 };
            D.Update { index = 6; payload = "b6'" };
          ]
        in
        (match D.batch client server ops with
        | Ok n -> check Alcotest.int "all applied" 4 n
        | Error _ -> Alcotest.fail "batch rejected");
        check Alcotest.string "in sync" (D.root client) (D.server_root server);
        let stmt = D.publish_root client ~bytes_source:(Util.fresh_bs "bsig") in
        let rep =
          D.audit pub ~verifier_key:da_key ~owner:"alice" ~file:"dynfile"
            ~root_statement:stmt server
            ~drbg:(Sc_hash.Drbg.create ~seed:"da-batch") ~samples:7
        in
        check Alcotest.bool "intact" true rep.D.intact);
    case "DA audit passes on an honest dynamic server" (fun () ->
        let client, server = fresh "audit" 12 in
        assert (accepted (D.update client server ~index:3 "updated"));
        assert (accepted (D.append client server "appended"));
        let stmt = D.publish_root client ~bytes_source:(Util.fresh_bs "rootsig") in
        let rep =
          D.audit pub ~verifier_key:da_key ~owner:"alice" ~file:"dynfile"
            ~root_statement:stmt server
            ~drbg:(Sc_hash.Drbg.create ~seed:"da-dyn") ~samples:13
        in
        check Alcotest.bool "intact" true rep.D.intact;
        check Alcotest.int "all sampled" 13 rep.D.sampled);
    case "DA audit catches server-side tampering" (fun () ->
        let client, server = fresh "tamper" 10 in
        let stmt = D.publish_root client ~bytes_source:(Util.fresh_bs "rootsig2") in
        (* The server's state drifts from the published root (it
           accepted an update the statement does not cover): paths no
           longer land on the stated root. *)
        ignore (D.update client server ~index:0 "x");
        let rep =
          D.audit pub ~verifier_key:da_key ~owner:"alice" ~file:"dynfile"
            ~root_statement:stmt server
            ~drbg:(Sc_hash.Drbg.create ~seed:"da-dyn2") ~samples:10
        in
        check Alcotest.bool "caught" false rep.D.intact);
    case "DA audit rejects a forged root statement" (fun () ->
        let client, server = fresh "forge" 6 in
        let stmt, _sig = D.publish_root client ~bytes_source:(Util.fresh_bs "r3") in
        let bogus_sig =
          Sc_ibc.Ibs.sign pub da_key ~bytes_source:(Util.fresh_bs "r4") stmt
        in
        let rep =
          D.audit pub ~verifier_key:da_key ~owner:"alice" ~file:"dynfile"
            ~root_statement:(stmt, bogus_sig) server
            ~drbg:(Sc_hash.Drbg.create ~seed:"da-dyn3") ~samples:3
        in
        check Alcotest.bool "rejected" false rep.D.intact;
        check Alcotest.int "nothing sampled" 0 rep.D.sampled);
    case "audit validates the stated count before allocating (regression)"
      (fun () ->
        (* A signed-but-bogus statement used to size Array.init from
           the stated count directly: count = 2^60 was a one-line DoS
           on the auditor.  Both overclaims now classify as not intact
           without touching the heap. *)
        let client, server = fresh "hugecount" 6 in
        let forged count =
          let msg =
            D.root_statement_msg ~file:"dynfile" ~count ~root:(D.root client)
          in
          msg, Sc_ibc.Ibs.sign pub alice ~bytes_source:(Util.fresh_bs "hc") msg
        in
        let run stmt =
          D.audit pub ~verifier_key:da_key ~owner:"alice" ~file:"dynfile"
            ~root_statement:stmt server
            ~drbg:(Sc_hash.Drbg.create ~seed:"da-huge") ~samples:4
        in
        let beyond_server = run (forged 50) in
        check Alcotest.bool "count > server rejected" false
          beyond_server.D.intact;
        check Alcotest.int "nothing sampled" 0 beyond_server.D.sampled;
        let huge = run (forged (D.audit_count_cap + 1)) in
        check Alcotest.bool "count > cap rejected" false huge.D.intact;
        check Alcotest.int "nothing allocated or sampled" 0 huge.D.sampled);
  ]

let suite = block_tests @ signer_tests @ server_tests @ dynamic_tests
