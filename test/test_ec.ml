open Sc_bignum
open Sc_field
open Sc_ec

(* Small curve with known structure: y² = x³ + x over F_23 (23 = 3 mod
   4, supersingular, #E = 24), plus the toy pairing curve for scale. *)
let p23 = Fp.create (Nat.of_int 23)
let c23 = Curve.create p23 ~a:Fp.one ~b:Fp.zero

let point = Alcotest.testable Curve.pp Curve.equal

let all_points c fp pmax =
  (* Brute-force enumeration of an affine curve over a tiny field. *)
  let pts = ref [ Curve.infinity ] in
  for x = 0 to pmax - 1 do
    for y = 0 to pmax - 1 do
      let pt = Curve.Affine (Fp.of_int fp x, Fp.of_int fp y) in
      if Curve.on_curve c pt then pts := pt :: !pts
    done
  done;
  !pts

let unit_tests =
  let open Util in
  [
    case "create rejects singular curve" (fun () ->
        Alcotest.check_raises "singular"
          (Invalid_argument "Curve.create: singular curve") (fun () ->
            ignore (Curve.create p23 ~a:Fp.zero ~b:Fp.zero)));
    case "group order of y^2 = x^3 + x over F_23 is 24" (fun () ->
        Alcotest.(check int) "order" 24 (List.length (all_points c23 p23 23)));
    case "every point has order dividing 24" (fun () ->
        List.iter
          (fun pt -> Alcotest.(check point) "24P = O" Curve.infinity
              (Curve.mul_int c23 24 pt))
          (all_points c23 p23 23));
    case "identity laws" (fun () ->
        let pt = Curve.Affine (Fp.of_int p23 9, Fp.of_int p23 5) in
        Alcotest.(check bool) "on curve" true (Curve.on_curve c23 pt);
        Alcotest.(check point) "P + O" pt (Curve.add c23 pt Curve.infinity);
        Alcotest.(check point) "O + P" pt (Curve.add c23 Curve.infinity pt);
        Alcotest.(check point) "P - P" Curve.infinity (Curve.sub c23 pt pt));
    case "doubling point with y=0 gives infinity" (fun () ->
        (* (0,0) is a 2-torsion point of y² = x³ + x. *)
        let two_torsion = Curve.Affine (Fp.zero, Fp.zero) in
        Alcotest.(check bool) "on curve" true (Curve.on_curve c23 two_torsion);
        Alcotest.(check point) "2P = O" Curve.infinity
          (Curve.double c23 two_torsion));
    case "scalar multiplication matches repeated addition" (fun () ->
        let pt = Curve.Affine (Fp.of_int p23 9, Fp.of_int p23 5) in
        let rec rep k acc = if k = 0 then acc else rep (k - 1) (Curve.add c23 acc pt) in
        for k = 0 to 30 do
          Alcotest.(check point)
            (Printf.sprintf "%dP" k)
            (rep k Curve.infinity)
            (Curve.mul_int c23 k pt)
        done);
    case "negative scalar" (fun () ->
        let pt = Curve.Affine (Fp.of_int p23 9, Fp.of_int p23 5) in
        Alcotest.(check point) "-3P" (Curve.neg c23 (Curve.mul_int c23 3 pt))
          (Curve.mul_int c23 (-3) pt));
    case "serialization round trip" (fun () ->
        let prm = Lazy.force Util.toy_params in
        let g = prm.Sc_pairing.Params.g in
        let c = prm.Sc_pairing.Params.curve in
        Alcotest.(check (option point)) "g" (Some g)
          (Curve.of_bytes c (Curve.to_bytes c g));
        Alcotest.(check (option point)) "infinity" (Some Curve.infinity)
          (Curve.of_bytes c (Curve.to_bytes c Curve.infinity)));
    case "of_bytes rejects off-curve point" (fun () ->
        let prm = Lazy.force Util.toy_params in
        let c = prm.Sc_pairing.Params.curve in
        let n = (Nat.bit_length prm.Sc_pairing.Params.p + 7) / 8 in
        let junk = "\x04" ^ String.make (2 * n) '\x05' in
        Alcotest.(check (option point)) "rejected" None (Curve.of_bytes c junk));
    case "of_bytes rejects wrong length" (fun () ->
        let prm = Lazy.force Util.toy_params in
        let c = prm.Sc_pairing.Params.curve in
        Alcotest.(check (option point)) "short" None (Curve.of_bytes c "\x04\x01"));
    case "lift_x produces on-curve points" (fun () ->
        let found = ref 0 in
        for x = 0 to 22 do
          match Curve.lift_x c23 (Fp.of_int p23 x) with
          | Some pt ->
            incr found;
            Alcotest.(check bool) "on curve" true (Curve.on_curve c23 pt)
          | None -> ()
        done;
        Alcotest.(check bool) "some x lift" true (!found > 5));
    case "random points lie on curve" (fun () ->
        let prm = Lazy.force Util.toy_params in
        let bs = Util.fresh_bs "ec-random" in
        for _ = 1 to 10 do
          let pt = Curve.random prm.Sc_pairing.Params.curve ~bytes_source:bs in
          Alcotest.(check bool) "on curve" true
            (Curve.on_curve prm.Sc_pairing.Params.curve pt)
        done);
  ]

let precomp_tests =
  let open Util in
  let prm = Lazy.force Util.toy_params in
  let curve = prm.Sc_pairing.Params.curve in
  let g = prm.Sc_pairing.Params.g in
  let q = prm.Sc_pairing.Params.q in
  [
    case "precomputed fixed-base matches the ladder" (fun () ->
        let pc = Curve.precompute curve ~bits:(Nat.bit_length q) g in
        let bs = Util.fresh_bs "pc" in
        for _ = 1 to 25 do
          let s = Sc_pairing.Params.random_scalar prm ~bytes_source:bs in
          if not (Curve.equal (Curve.mul curve s g) (Curve.mul_precomp curve pc s))
          then Alcotest.fail "mismatch"
        done;
        Alcotest.(check point) "zero scalar" Curve.infinity
          (Curve.mul_precomp curve pc Nat.zero));
    case "precomp rejects out-of-range scalars" (fun () ->
        let pc = Curve.precompute curve ~bits:8 g in
        Alcotest.check_raises "too large"
          (Invalid_argument "Curve.mul_precomp: scalar exceeds precomputed range")
          (fun () -> ignore (Curve.mul_precomp curve pc (Nat.of_int 256))));
    case "Params.mul_g equals Curve.mul on the generator" (fun () ->
        let bs = Util.fresh_bs "mulg" in
        for _ = 1 to 15 do
          let s = Sc_pairing.Params.random_scalar prm ~bytes_source:bs in
          if not (Curve.equal (Sc_pairing.Params.mul_g prm s) (Curve.mul curve s g))
          then Alcotest.fail "mismatch"
        done);
  ]

(* The wNAF path behind Curve.mul and the comb behind Curve.mul_precomp
   against the double-and-add reference, including scalars past the
   group order and the small-order points of the F_23 curve that force
   the 2-torsion / mid-chain-infinity fallbacks. *)
let wnaf_tests =
  let open Util in
  let equiv name prm n =
    case name (fun () ->
        let curve = prm.Sc_pairing.Params.curve in
        let g = prm.Sc_pairing.Params.g in
        let bs = Util.fresh_bs ("wnaf-" ^ name) in
        for i = 1 to n do
          let a = Sc_pairing.Params.random_scalar prm ~bytes_source:bs in
          let pt = Curve.mul_naive curve a g in
          (* 20 raw bytes: exercises scalars well past q. *)
          let s = Nat.of_bytes_be (bs 20) in
          if
            not
              (Curve.equal (Curve.mul curve s pt) (Curve.mul_naive curve s pt))
          then Alcotest.failf "mismatch at sample %d" i
        done)
  in
  [
    equiv "wNAF mul = double-and-add, scalars past q (toy)"
      (Lazy.force Util.toy_params) 25;
    equiv "wNAF mul = double-and-add (small)"
      (Lazy.force Sc_pairing.Params.small) 8;
    case "wNAF agrees on every point of F_23 (small-order fallbacks)"
      (fun () ->
        List.iter
          (fun pt ->
            for k = 0 to 30 do
              Alcotest.(check point)
                (Printf.sprintf "%dP" k)
                (Curve.mul_naive c23 (Nat.of_int k) pt)
                (Curve.mul c23 (Nat.of_int k) pt)
            done)
          (all_points c23 p23 23));
    case "comb precomp = double-and-add on the generator" (fun () ->
        let prm = Lazy.force Util.toy_params in
        let curve = prm.Sc_pairing.Params.curve in
        let g = prm.Sc_pairing.Params.g in
        let q = prm.Sc_pairing.Params.q in
        let pc = Curve.precompute curve ~bits:(Nat.bit_length q) g in
        let bs = Util.fresh_bs "comb-naive" in
        for _ = 1 to 20 do
          let s = Sc_pairing.Params.random_scalar prm ~bytes_source:bs in
          if
            not
              (Curve.equal
                 (Curve.mul_precomp curve pc s)
                 (Curve.mul_naive curve s g))
          then Alcotest.fail "mismatch"
        done);
  ]

let property_tests =
  let open Util in
  let prm = Lazy.force Util.toy_params in
  let curve = prm.Sc_pairing.Params.curve in
  let g = prm.Sc_pairing.Params.g in
  let q = prm.Sc_pairing.Params.q in
  let gen_scalar =
    let open QCheck2.Gen in
    let* bytes = string_size ~gen:char (return 16) in
    return (Nat.rem (Nat.of_bytes_be bytes) q)
  in
  [
    qcheck ~count:30 "(a+b)G = aG + bG" (QCheck2.Gen.pair gen_scalar gen_scalar)
      (fun (a, b) ->
        Curve.equal
          (Curve.mul curve (Nat.rem (Nat.add a b) q) g)
          (Curve.add curve (Curve.mul curve a g) (Curve.mul curve b g)));
    qcheck ~count:20 "(ab)G = a(bG)" (QCheck2.Gen.pair gen_scalar gen_scalar)
      (fun (a, b) ->
        Curve.equal
          (Curve.mul curve (Nat.rem (Nat.mul a b) q) g)
          (Curve.mul curve a (Curve.mul curve b g)));
    qcheck ~count:30 "qG = O kills any subgroup point" gen_scalar (fun a ->
        Curve.is_infinity (Curve.mul curve q (Curve.mul curve a g)));
    qcheck ~count:30 "mul result stays on curve" gen_scalar (fun a ->
        Curve.on_curve curve (Curve.mul curve a g));
    qcheck ~count:30 "serialization round trip" gen_scalar (fun a ->
        let pt = Curve.mul curve a g in
        match Curve.of_bytes curve (Curve.to_bytes curve pt) with
        | Some pt' -> Curve.equal pt pt'
        | None -> false);
  ]

let suite = unit_tests @ precomp_tests @ wnaf_tests @ property_tests
