(* Domain pool (Sc_parallel) and multi-domain telemetry: equivalence
   with the sequential combinators, exact counters under concurrent
   increment, and 1-vs-N value identity of the rewired hot paths.

   Every case restores the configured domain count on exit so the rest
   of the suite keeps its default behavior. *)

module Telemetry = Sc_telemetry.Telemetry
module Merkle = Sc_merkle.Tree
module Mc = Sc_sim.Montecarlo

let with_domains n f =
  let saved = Sc_parallel.domain_count () in
  Sc_parallel.set_domain_count n;
  Fun.protect ~finally:(fun () -> Sc_parallel.set_domain_count saved) f

let pool_tests =
  let open Util in
  [
    case "parallel_map equals List.map at 4 domains" (fun () ->
        with_domains 4 (fun () ->
            let xs = List.init 1000 (fun i -> i) in
            check
              Alcotest.(list int)
              "squares"
              (List.map (fun x -> x * x) xs)
              (Sc_parallel.parallel_map (fun x -> x * x) xs)));
    case "iter_ranges covers [0, n) exactly once" (fun () ->
        with_domains 4 (fun () ->
            let n = 10_007 in
            let hits = Array.make n 0 in
            (* Chunks are disjoint, so unsynchronized writes are safe. *)
            Sc_parallel.iter_ranges n (fun lo hi ->
                for i = lo to hi - 1 do
                  hits.(i) <- hits.(i) + 1
                done);
            check Alcotest.bool "each index once" true
              (Array.for_all (fun h -> h = 1) hits)));
    case "nested fan-out completes (helping waiters)" (fun () ->
        with_domains 3 (fun () ->
            let outer =
              Sc_parallel.parallel_map
                (fun i ->
                  List.fold_left ( + ) 0
                    (Sc_parallel.parallel_map (fun j -> i * j) [ 1; 2; 3; 4 ]))
                (List.init 20 Fun.id)
            in
            check
              Alcotest.(list int)
              "nested" (List.init 20 (fun i -> 10 * i)) outer));
    case "worker exception propagates to the caller" (fun () ->
        with_domains 4 (fun () ->
            match
              Sc_parallel.parallel_map
                (fun i -> if i = 17 then failwith "boom" else i)
                (List.init 64 Fun.id)
            with
            | _ -> Alcotest.fail "expected Failure"
            | exception Failure m -> check Alcotest.string "message" "boom" m));
    case "empty and singleton inputs" (fun () ->
        with_domains 4 (fun () ->
            check Alcotest.(list int) "empty" []
              (Sc_parallel.parallel_map Fun.id []);
            check Alcotest.(list int) "singleton" [ 9 ]
              (Sc_parallel.parallel_map (fun x -> x + 8) [ 1 ])))
  ]

let telemetry_tests =
  let open Util in
  [
    case "hammer: N domains x M increments lands exactly N*M" (fun () ->
        let c = Telemetry.counter "test.parallel.hammer" in
        Telemetry.reset_counter c;
        let n_domains = 4 and m = 25_000 in
        let body () =
          for _ = 1 to m do
            Telemetry.incr c
          done
        in
        let workers =
          List.init (n_domains - 1) (fun _ -> Domain.spawn body)
        in
        body ();
        List.iter Domain.join workers;
        check Alcotest.int "exact count" (n_domains * m) (Telemetry.value c));
    case "hammer: concurrent add and histogram observe stay exact" (fun () ->
        let c = Telemetry.counter "test.parallel.hammer_add" in
        let h = Telemetry.histogram "test.parallel.hammer_hist" in
        Telemetry.reset_counter c;
        let m = 10_000 in
        let body () =
          for i = 1 to m do
            Telemetry.add c 3;
            Telemetry.observe h (float_of_int (i mod 100))
          done
        in
        let h0 =
          match Telemetry.find "test.parallel.hammer_hist" with
          | Some (Telemetry.Histogram s) -> s.Telemetry.count
          | _ -> 0
        in
        let workers = List.init 3 (fun _ -> Domain.spawn body) in
        body ();
        List.iter Domain.join workers;
        check Alcotest.int "adds exact" (4 * m * 3) (Telemetry.value c);
        match Telemetry.find "test.parallel.hammer_hist" with
        | Some (Telemetry.Histogram s) ->
          check Alcotest.int "observations exact" (h0 + (4 * m))
            s.Telemetry.count
        | _ -> Alcotest.fail "histogram missing");
    case "pool workers increment through the registry exactly" (fun () ->
        with_domains 4 (fun () ->
            let c = Telemetry.counter "test.parallel.pool_incr" in
            Telemetry.reset_counter c;
            Sc_parallel.parallel_iter
              (fun _ -> Telemetry.incr c)
              (List.init 50_000 Fun.id);
            check Alcotest.int "exact" 50_000 (Telemetry.value c)));
    case "worker spans join the submitting span's trace" (fun () ->
        with_domains 4 (fun () ->
            let lines = ref [] in
            let lock = Mutex.create () in
            Telemetry.set_sink
              (Some
                 (fun l ->
                   Mutex.lock lock;
                   lines := l :: !lines;
                   Mutex.unlock lock));
            Fun.protect
              ~finally:(fun () -> Telemetry.set_sink None)
              (fun () ->
                Telemetry.with_span ~name:"fanout.root" (fun () ->
                    Sc_parallel.parallel_iter ~min_chunk:1
                      (fun _ ->
                        Telemetry.with_span ~name:"fanout.task" Fun.id)
                      (List.init 64 Fun.id)));
            let spans =
              List.filter_map Sc_telemetry.Trace_analysis.span_of_line !lines
            in
            let module A = Sc_telemetry.Trace_analysis in
            let root =
              List.find (fun (s : A.span) -> s.A.name = "fanout.root") spans
            in
            let tasks =
              List.filter (fun (s : A.span) -> s.A.name = "fanout.task") spans
            in
            check Alcotest.int "all tasks emitted" 64 (List.length tasks);
            List.iter
              (fun (s : A.span) ->
                check Alcotest.string "task joins root trace" root.A.trace
                  s.A.trace;
                check Alcotest.(option int) "task parented on root"
                  (Some root.A.id) s.A.parent)
              tasks;
            check Alcotest.int "no spans left open" 0 (Telemetry.open_spans ())));
  ]

(* 1-domain vs N-domain value identity of the rewired hot paths. *)
let identity_tests =
  let open Util in
  [
    case "Merkle.build roots identical at 1 and 4 domains" (fun () ->
        let payloads = List.init 4096 (fun i -> "leaf-" ^ string_of_int i) in
        let root_seq = with_domains 1 (fun () -> Merkle.root (Merkle.build payloads)) in
        let root_par = with_domains 4 (fun () -> Merkle.root (Merkle.build payloads)) in
        check Alcotest.string "same root" root_seq root_par);
    case "Merkle.build telemetry ledger identical at 1 and 4 domains"
      (fun () ->
        let payloads = List.init 4096 (fun i -> "n" ^ string_of_int i) in
        let counters_for d =
          with_domains d (fun () ->
              let h0 = Telemetry.counter_value "hash.sha256.digests" in
              let b0 = Telemetry.counter_value "merkle.builds" in
              let l0 = Telemetry.counter_value "merkle.leaves_built" in
              ignore (Merkle.build payloads);
              ( Telemetry.counter_value "hash.sha256.digests" - h0,
                Telemetry.counter_value "merkle.builds" - b0,
                Telemetry.counter_value "merkle.leaves_built" - l0 ))
        in
        let seq = counters_for 1 and par = counters_for 4 in
        check
          Alcotest.(triple int int int)
          "same counter deltas" seq par);
    case "Monte-Carlo campaign identical at 1 and 4 domains" (fun () ->
        let run d =
          with_domains d (fun () ->
              let drbg = Sc_hash.Drbg.create ~seed:"par-mc" in
              let r =
                Mc.combined_experiment ~drbg ~csc:0.5 ~ssc:0.5 ~range:2.0
                  ~sig_forge:0.0 ~t:6 ~trials:20_000
              in
              r.Mc.survived)
        in
        check Alcotest.int "same survivals" (run 1) (run 4));
  ]

let suite = pool_tests @ telemetry_tests @ identity_tests
