(* A small operational CLI around the SecCloud library: run an
   end-to-end demo, audit a simulated deployment, or size a sample
   set. *)

open Cmdliner

let setup_logging verbose =
  Logs.set_reporter (Logs_fmt.reporter ());
  Logs.set_level (if verbose then Some Logs.Info else Some Logs.Warning)

let preset_of = function
  | "toy" -> Sc_pairing.Params.toy
  | "small" -> Sc_pairing.Params.small
  | "mid" -> Sc_pairing.Params.mid
  | s -> invalid_arg (Printf.sprintf "unknown preset %S" s)

let demo verbose preset seed =
  setup_logging verbose;
  let system =
    Seccloud.System.create ~params:(preset_of preset) ~seed
      ~cs_ids:[ "cs-1" ] ~da_id:"da" ()
  in
  let user = Seccloud.User.create system ~id:"alice" in
  let cloud = Seccloud.Cloud.create system ~id:"cs-1" () in
  let da = Seccloud.Agency.create system in
  let drbg = Sc_hash.Drbg.create ~seed:("demo-data:" ^ seed) in
  Printf.printf "System initialised (params=%s); user=alice cs=cs-1 da=da\n"
    preset;
  let payloads =
    List.init 32 (fun i ->
        Sc_storage.Block.encode_ints
          (List.init 8 (fun j -> i + j + Sc_hash.Drbg.uniform_int drbg 50)))
  in
  let accepted = Seccloud.User.store user cloud ~file:"ledger" payloads in
  Printf.printf "Protocol II: uploaded 32 signed blocks, accepted=%b\n" accepted;
  let report =
    Seccloud.Agency.audit_storage da cloud ~owner:"alice" ~file:"ledger"
      ~samples:12
  in
  Printf.printf "Storage audit: %d/%d sampled blocks verified, intact=%b\n"
    report.Seccloud.Agency.valid_blocks report.Seccloud.Agency.sampled
    report.Seccloud.Agency.intact;
  let service =
    Sc_compute.Task.random_service ~drbg ~n_positions:32 ~n_tasks:16
  in
  let execution =
    Seccloud.Cloud.execute cloud ~owner:"alice" ~file:"ledger" service
  in
  Printf.printf "Protocol III: executed %d sub-tasks, commitment root=%s...\n"
    16
    (String.sub (Sc_hash.Sha256.hex_of_digest
                   (Sc_compute.Executor.root execution)) 0 16);
  let warrant =
    Seccloud.User.delegate_audit user ~now:0.0 ~lifetime:3600.0
      ~scope:"audit ledger computation"
  in
  let verdict =
    Seccloud.Agency.audit_computation da cloud ~owner:"alice" ~execution
      ~warrant ~now:10.0 ~samples:8
  in
  Printf.printf "Computation audit (Algorithm 1): valid=%b\n"
    verdict.Sc_audit.Protocol.valid

let samplesize csc ssc range eps =
  let range = if range <= 0.0 then infinity else range in
  match
    Sc_audit.Sampling.required_samples ~csc ~ssc ~range ~sig_forge:1e-9 ~eps ()
  with
  | Some t ->
    Printf.printf
      "required samples: t = %d   (CSC=%.2f SSC=%.2f |R|=%s eps=%g)\n" t csc
      ssc
      (if range = infinity then "inf" else string_of_float range)
      eps
  | None -> print_endline "no finite sample size reaches the target epsilon"

let simulate epochs servers byzantine users seed =
  let config =
    {
      Sc_sim.Engine.default_config with
      Sc_sim.Engine.seed;
      epochs;
      n_servers = servers;
      byzantine_bound = byzantine;
      n_users = users;
    }
  in
  let stats = Sc_sim.Engine.run config in
  Printf.printf
    "simulated %d epochs, %d audits: detected=%d undetected=%d \
     false_alarms=%d honest_passed=%d\n"
    epochs
    (List.length stats.Sc_sim.Engine.outcomes)
    stats.Sc_sim.Engine.detected stats.Sc_sim.Engine.undetected
    stats.Sc_sim.Engine.false_alarms stats.Sc_sim.Engine.honest_passed;
  Printf.printf "detection rate: %.2f; %d bytes over the network\n"
    (Sc_sim.Engine.detection_rate stats)
    stats.Sc_sim.Engine.total_bytes

let preset_arg =
  Arg.(value & opt string "toy" & info [ "params" ] ~doc:"Parameter preset.")

let seed_arg =
  Arg.(value & opt string "cli" & info [ "seed" ] ~doc:"Deterministic seed.")

let verbose_arg =
  Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Show protocol event logs.")

let demo_cmd =
  Cmd.v (Cmd.info "demo" ~doc:"End-to-end Protocols I-III walkthrough")
    Term.(const demo $ verbose_arg $ preset_arg $ seed_arg)

let samplesize_cmd =
  let csc = Arg.(value & opt float 0.5 & info [ "csc" ] ~doc:"Computing secure confidence.") in
  let ssc = Arg.(value & opt float 0.5 & info [ "ssc" ] ~doc:"Storage secure confidence.") in
  let range = Arg.(value & opt float 0.0 & info [ "range" ] ~doc:"|R| (0 = infinite).") in
  let eps = Arg.(value & opt float 1e-4 & info [ "eps" ] ~doc:"Target cheat probability.") in
  Cmd.v (Cmd.info "samplesize" ~doc:"Required audit sample size (Figure 4 math)")
    Term.(const samplesize $ csc $ ssc $ range $ eps)

let simulate_cmd =
  let epochs = Arg.(value & opt int 5 & info [ "epochs" ] ~doc:"Epochs.") in
  let servers = Arg.(value & opt int 4 & info [ "servers" ] ~doc:"Cloud servers.") in
  let byzantine = Arg.(value & opt int 1 & info [ "byzantine" ] ~doc:"Adversary bound b.") in
  let users = Arg.(value & opt int 2 & info [ "users" ] ~doc:"Cloud users.") in
  Cmd.v (Cmd.info "simulate" ~doc:"Run the Byzantine cloud simulation")
    Term.(const simulate $ epochs $ servers $ byzantine $ users $ seed_arg)

let () =
  let info = Cmd.info "seccloud" ~version:"1.0" ~doc:"SecCloud demo CLI" in
  exit (Cmd.eval (Cmd.group info [ demo_cmd; samplesize_cmd; simulate_cmd ]))
