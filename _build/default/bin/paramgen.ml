(* Generates fresh supersingular pairing parameters and prints them as
   hex constants suitable for Params.of_hex, together with how long the
   search took.  Used once to pick the embedded preset seeds. *)

module Params = Sc_pairing.Params
module Nat = Sc_bignum.Nat

open Cmdliner

let generate seed bits_q bits_p =
  let drbg = Sc_hash.Drbg.create ~seed in
  let t0 = Unix.gettimeofday () in
  let prm =
    Params.generate
      ?bits_p:(if bits_p = 0 then None else Some bits_p)
      ~bytes_source:(Sc_hash.Drbg.bytes_source drbg)
      ~bits_q ()
  in
  let dt = Unix.gettimeofday () -. t0 in
  let gx, gy =
    match prm.Params.g with
    | Sc_ec.Curve.Affine (x, y) -> Nat.to_hex x, Nat.to_hex y
    | Sc_ec.Curve.Infinity -> assert false
  in
  Printf.printf "(* generated in %.2fs from seed %S *)\n" dt seed;
  Printf.printf "let p = %S\n" (Nat.to_hex prm.Params.p);
  Printf.printf "let q = %S\n" (Nat.to_hex prm.Params.q);
  Printf.printf "let cofactor = %S\n" (Nat.to_hex prm.Params.cofactor);
  Printf.printf "let gx = %S\n" gx;
  Printf.printf "let gy = %S\n" gy;
  Printf.printf "(* |p| = %d bits, |q| = %d bits *)\n"
    (Nat.bit_length prm.Params.p)
    (Nat.bit_length prm.Params.q)

let () =
  let seed =
    Arg.(value & opt string "paramgen" & info [ "seed" ] ~doc:"DRBG seed.")
  in
  let bits_q =
    Arg.(value & opt int 160 & info [ "bits-q" ] ~doc:"Group order size.")
  in
  let bits_p =
    Arg.(
      value & opt int 512
      & info [ "bits-p" ] ~doc:"Field size (0 = smallest cofactor).")
  in
  let cmd =
    Cmd.v
      (Cmd.info "paramgen" ~doc:"Generate supersingular pairing parameters")
      Term.(const generate $ seed $ bits_q $ bits_p)
  in
  exit (Cmd.eval cmd)
