lib/ec/curve.ml: Array Char Format Fp Nat Sc_bignum Sc_field String
