lib/ec/curve.mli: Format Fp Nat Sc_bignum Sc_field
