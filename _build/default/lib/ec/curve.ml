open Sc_bignum
open Sc_field

type t = { fld : Fp.ctx; a : Fp.el; b : Fp.el; coord_bytes : int }
type point = Infinity | Affine of Fp.el * Fp.el

let create fld ~a ~b =
  (* Reject singular curves: 4a³ + 27b² ≠ 0. *)
  let disc =
    Fp.add fld
      (Fp.mul fld (Fp.of_int fld 4) (Fp.mul fld a (Fp.sqr fld a)))
      (Fp.mul fld (Fp.of_int fld 27) (Fp.sqr fld b))
  in
  if Fp.is_zero disc then invalid_arg "Curve.create: singular curve";
  let coord_bytes = (Nat.bit_length (Fp.characteristic fld) + 7) / 8 in
  { fld; a; b; coord_bytes }

let field c = c.fld
let coeff_a c = c.a
let coeff_b c = c.b
let infinity = Infinity

let is_infinity = function Infinity -> true | Affine _ -> false

let equal p q =
  match p, q with
  | Infinity, Infinity -> true
  | Affine (x1, y1), Affine (x2, y2) -> Fp.equal x1 x2 && Fp.equal y1 y2
  | Infinity, Affine _ | Affine _, Infinity -> false

(* x³ + ax + b *)
let rhs c x =
  let f = c.fld in
  Fp.add f (Fp.mul f x (Fp.add f (Fp.sqr f x) c.a)) c.b

let on_curve c = function
  | Infinity -> true
  | Affine (x, y) -> Fp.equal (Fp.sqr c.fld y) (rhs c x)

let neg c = function
  | Infinity -> Infinity
  | Affine (x, y) -> Affine (x, Fp.neg c.fld y)

let double c p =
  match p with
  | Infinity -> Infinity
  | Affine (x, y) ->
    let f = c.fld in
    if Fp.is_zero y then Infinity
    else begin
      (* λ = (3x² + a) / 2y *)
      let num = Fp.add f (Fp.mul f (Fp.of_int f 3) (Fp.sqr f x)) c.a in
      let lam = Fp.div f num (Fp.double f y) in
      let x3 = Fp.sub f (Fp.sqr f lam) (Fp.double f x) in
      let y3 = Fp.sub f (Fp.mul f lam (Fp.sub f x x3)) y in
      Affine (x3, y3)
    end

let add c p q =
  match p, q with
  | Infinity, r | r, Infinity -> r
  | Affine (x1, y1), Affine (x2, y2) ->
    let f = c.fld in
    if Fp.equal x1 x2 then begin
      if Fp.equal y1 y2 then double c p else Infinity
    end
    else begin
      let lam = Fp.div f (Fp.sub f y2 y1) (Fp.sub f x2 x1) in
      let x3 = Fp.sub f (Fp.sub f (Fp.sqr f lam) x1) x2 in
      let y3 = Fp.sub f (Fp.mul f lam (Fp.sub f x1 x3)) y1 in
      Affine (x3, y3)
    end

let sub c p q = add c p (neg c q)

(* Jacobian coordinates (X : Y : Z) with x = X/Z², y = Y/Z³; Z = 0
   encodes the point at infinity.  Scalar multiplication runs in
   Jacobian form so that the whole ladder needs a single field
   inversion, instead of one per group operation. *)
type jac = { jx : Fp.el; jy : Fp.el; jz : Fp.el }

let jac_infinity = { jx = Fp.one; jy = Fp.one; jz = Fp.zero }

let jac_of_point = function
  | Infinity -> jac_infinity
  | Affine (x, y) -> { jx = x; jy = y; jz = Fp.one }

let point_of_jac c j =
  let f = c.fld in
  if Fp.is_zero j.jz then Infinity
  else begin
    let zinv = Fp.inv f j.jz in
    let zinv2 = Fp.sqr f zinv in
    Affine (Fp.mul f j.jx zinv2, Fp.mul f j.jy (Fp.mul f zinv2 zinv))
  end

(* dbl-2007-bl, valid for any curve coefficient a. *)
let jdouble c j =
  let f = c.fld in
  if Fp.is_zero j.jz || Fp.is_zero j.jy then jac_infinity
  else begin
    let xx = Fp.sqr f j.jx in
    let yy = Fp.sqr f j.jy in
    let yyyy = Fp.sqr f yy in
    let zz = Fp.sqr f j.jz in
    let s =
      Fp.double f
        (Fp.sub f (Fp.sub f (Fp.sqr f (Fp.add f j.jx yy)) xx) yyyy)
    in
    let m =
      Fp.add f
        (Fp.add f (Fp.double f xx) xx)
        (Fp.mul f c.a (Fp.sqr f zz))
    in
    let t = Fp.sub f (Fp.sqr f m) (Fp.double f s) in
    let y3 =
      Fp.sub f
        (Fp.mul f m (Fp.sub f s t))
        (Fp.double f (Fp.double f (Fp.double f yyyy)))
    in
    let z3 = Fp.sub f (Fp.sub f (Fp.sqr f (Fp.add f j.jy j.jz)) yy) zz in
    { jx = t; jy = y3; jz = z3 }
  end

(* madd-2007-bl: mixed addition with an affine second operand. *)
let jadd_mixed c j x2 y2 =
  let f = c.fld in
  if Fp.is_zero j.jz then { jx = x2; jy = y2; jz = Fp.one }
  else begin
    let z1z1 = Fp.sqr f j.jz in
    let u2 = Fp.mul f x2 z1z1 in
    let s2 = Fp.mul f y2 (Fp.mul f j.jz z1z1) in
    if Fp.equal u2 j.jx then begin
      if Fp.equal s2 j.jy then jdouble c j else jac_infinity
    end
    else begin
      let h = Fp.sub f u2 j.jx in
      let hh = Fp.sqr f h in
      let i = Fp.double f (Fp.double f hh) in
      let jj = Fp.mul f h i in
      let r = Fp.double f (Fp.sub f s2 j.jy) in
      let v = Fp.mul f j.jx i in
      let x3 = Fp.sub f (Fp.sub f (Fp.sqr f r) jj) (Fp.double f v) in
      let y3 =
        Fp.sub f
          (Fp.mul f r (Fp.sub f v x3))
          (Fp.double f (Fp.mul f j.jy jj))
      in
      let z3 = Fp.sub f (Fp.sub f (Fp.sqr f (Fp.add f j.jz h)) z1z1) hh in
      { jx = x3; jy = y3; jz = z3 }
    end
  end

let mul c k p =
  match p with
  | Infinity -> Infinity
  | Affine (px, py) ->
    if Nat.is_zero k then Infinity
    else begin
      let nbits = Nat.bit_length k in
      let rec go acc i =
        if i < 0 then acc
        else begin
          let acc = jdouble c acc in
          let acc = if Nat.test_bit k i then jadd_mixed c acc px py else acc in
          go acc (i - 1)
        end
      in
      point_of_jac c (go (jac_of_point p) (nbits - 2))
    end

let mul_int c k p =
  if k < 0 then neg c (mul c (Nat.of_int (-k)) p) else mul c (Nat.of_int k) p

(* Fixed-base comb: table.(w).(d) = d·16^w·P in affine form, so a
   b-bit scalar costs ⌈b/4⌉ mixed additions and zero doublings. *)
type precomp = { tables : point array array; bits : int }

let precompute c ~bits p =
  if bits <= 0 then invalid_arg "Curve.precompute: bits <= 0";
  let nwindows = (bits + 3) / 4 in
  let tables =
    Array.init nwindows (fun _ -> Array.make 16 Infinity)
  in
  let base = ref p in
  for w = 0 to nwindows - 1 do
    for d = 1 to 15 do
      tables.(w).(d) <- add c tables.(w).(d - 1) !base
    done;
    (* advance base to 16^(w+1)·P *)
    base := double c (double c (double c (double c !base)))
  done;
  { tables; bits }

let mul_precomp c pc k =
  if Nat.bit_length k > pc.bits then
    invalid_arg "Curve.mul_precomp: scalar exceeds precomputed range";
  let bit i = if Nat.test_bit k i then 1 else 0 in
  let nwindows = Array.length pc.tables in
  let acc = ref jac_infinity in
  for w = 0 to nwindows - 1 do
    let d =
      (bit ((4 * w) + 3) lsl 3)
      lor (bit ((4 * w) + 2) lsl 2)
      lor (bit ((4 * w) + 1) lsl 1)
      lor bit (4 * w)
    in
    if d <> 0 then begin
      match pc.tables.(w).(d) with
      | Infinity -> ()
      | Affine (x, y) -> acc := jadd_mixed c !acc x y
    end
  done;
  point_of_jac c !acc

let lift_x c x =
  match Fp.sqrt c.fld (rhs c x) with
  | None -> None
  | Some y ->
    (* Pick the root with even least-significant bit for determinism. *)
    let y = if Nat.test_bit (Fp.to_nat y) 0 then Fp.neg c.fld y else y in
    Some (Affine (x, y))

let random c ~bytes_source =
  let rec draw () =
    let x = Fp.random c.fld ~bytes_source in
    match lift_x c x with
    | Some (Affine (_, y) as pt) ->
      (* Use one extra random bit to pick the sign of y. *)
      let flip = Char.code (bytes_source 1).[0] land 1 = 1 in
      if flip then Affine (x, Fp.neg c.fld y) else pt
    | Some Infinity | None -> draw ()
  in
  draw ()

let to_bytes c = function
  | Infinity -> "\x00"
  | Affine (x, y) ->
    let n = c.coord_bytes in
    "\x04"
    ^ Nat.to_bytes_be ~len:n (Fp.to_nat x)
    ^ Nat.to_bytes_be ~len:n (Fp.to_nat y)

let of_bytes c s =
  let n = c.coord_bytes in
  if s = "\x00" then Some Infinity
  else if String.length s = (2 * n) + 1 && s.[0] = '\x04' then begin
    let x = Nat.of_bytes_be (String.sub s 1 n) in
    let y = Nat.of_bytes_be (String.sub s (n + 1) n) in
    let p = Fp.characteristic c.fld in
    if Nat.compare x p >= 0 || Nat.compare y p >= 0 then None
    else begin
      let pt = Affine (x, y) in
      if on_curve c pt then Some pt else None
    end
  end
  else None

let pp fmt = function
  | Infinity -> Format.pp_print_string fmt "O"
  | Affine (x, y) -> Format.fprintf fmt "(%a, %a)" Fp.pp x Fp.pp y
