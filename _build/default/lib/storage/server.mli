(** A cloud storage server with injectable misbehaviour — the
    Storage-Cheating Model of §III-B.

    The honest fraction of reads follows the protocol; the cheating
    fraction realizes the attacks the paper lists: silently deleted
    blocks answered with random bytes, corrupted payloads, and data
    served from a different position than requested.  The
    [storage_confidence] (SSC) of a behaviour is the probability that
    a given read is served honestly. *)

type behaviour =
  | Honest
  | Delete_fraction of float
      (** Blocks dropped to save space; reads answered with random
          bytes (the semi-honest case). *)
  | Corrupt_fraction of float
      (** Stored payloads tampered with (the malicious case). *)
  | Substitute_fraction of float
      (** Reads served with the data (and signature) of a different,
          existing position — the PCS attack. *)

type t

type read_result = {
  claimed : Block.t; (* what the server claims this position holds *)
  signed : Signer.signed_block; (* the signature material it returns *)
}

val create : behaviour -> drbg:Sc_hash.Drbg.t -> t
val behaviour : t -> behaviour

val storage_confidence : t -> float
(** The SSC this behaviour induces. *)

val store : t -> Signer.upload -> unit

val read : t -> file:string -> index:int -> read_result option
(** What the server answers to "give me block [index] of [file]" —
    possibly dishonestly, per its behaviour. *)

val read_honest : t -> file:string -> index:int -> read_result option
(** Bypasses the cheating layer (used by oracles in tests). *)

val file_size : t -> string -> int option
val files : t -> string list
