lib/storage/dynamic.mli: Sc_ec Sc_hash Sc_ibc Sc_merkle Sc_pairing
