lib/storage/signer.ml: Array Block List Sc_ec Sc_ibc Sc_pairing
