lib/storage/server.ml: Array Block Char Hashtbl Option Sc_hash Signer String
