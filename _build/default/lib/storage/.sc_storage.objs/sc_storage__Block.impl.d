lib/storage/block.ml: List Printf String
