lib/storage/block.mli:
