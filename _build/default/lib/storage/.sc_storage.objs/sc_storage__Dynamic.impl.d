lib/storage/dynamic.ml: Array List Printf Sc_ec Sc_hash Sc_ibc Sc_merkle Sc_pairing String
