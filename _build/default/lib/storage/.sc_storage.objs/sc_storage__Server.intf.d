lib/storage/server.mli: Block Sc_hash Signer
