lib/storage/signer.mli: Block Sc_ec Sc_ibc Sc_pairing
