module Setup = Sc_ibc.Setup
module Ibs = Sc_ibc.Ibs
module Dvs = Sc_ibc.Dvs

type signed_block = {
  block : Block.t;
  u : Sc_ec.Curve.point;
  sigma_cs : Sc_pairing.Tate.gt;
  sigma_da : Sc_pairing.Tate.gt;
}

type upload = { file : string; owner : string; blocks : signed_block array }

let sign_file pub (key : Setup.identity_key) ~bytes_source ~cs_id ~da_id ~file
    payloads =
  let sign_one index data =
    let block = { Block.file; index; data } in
    let raw = Ibs.sign pub key ~bytes_source (Block.signing_message block) in
    let cs = Dvs.designate pub raw ~verifier:cs_id in
    let da = Dvs.designate pub raw ~verifier:da_id in
    { block; u = raw.Ibs.u; sigma_cs = cs.Dvs.sigma; sigma_da = da.Dvs.sigma }
  in
  { file; owner = key.Setup.id; blocks = Array.of_list (List.mapi sign_one payloads) }

let dvs_for role sb =
  match role with
  | `Cs -> { Dvs.u = sb.u; sigma = sb.sigma_cs }
  | `Da -> { Dvs.u = sb.u; sigma = sb.sigma_da }

let verify_block pub ~verifier_key ~role ~owner claimed sb =
  Dvs.verify pub ~verifier_key ~signer:owner
    ~msg:(Block.signing_message claimed)
    (dvs_for role sb)
