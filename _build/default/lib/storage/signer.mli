(** Client-side Data Signing (§V-B1).

    For each block the user produces the raw identity-based signature
    (U_i, V_i), then publishes the designated forms Σ_i = ê(V_i, Q_CS)
    and Σ'_i = ê(V_i, Q_DA) and discards V_i — only the cloud server
    and the designated agency can verify, which is the
    privacy-cheating-discouragement mechanism. *)

type signed_block = {
  block : Block.t;
  u : Sc_ec.Curve.point;
  sigma_cs : Sc_pairing.Tate.gt; (* designated to the cloud server *)
  sigma_da : Sc_pairing.Tate.gt; (* designated to the agency *)
}

type upload = { file : string; owner : string; blocks : signed_block array }

val sign_file :
  Sc_ibc.Setup.public ->
  Sc_ibc.Setup.identity_key ->
  bytes_source:(int -> string) ->
  cs_id:string ->
  da_id:string ->
  file:string ->
  string list ->
  upload
(** Signs every payload of the file.  After this call the user can
    delete the local copy (the paper's flow). *)

val dvs_for : [ `Cs | `Da ] -> signed_block -> Sc_ibc.Dvs.t
(** Project the stored designated signature for one verifier. *)

val verify_block :
  Sc_ibc.Setup.public ->
  verifier_key:Sc_ibc.Setup.identity_key ->
  role:[ `Cs | `Da ] ->
  owner:string ->
  Block.t ->
  signed_block ->
  bool
(** Equation (5)/(7): designated verification of one stored block
    against the payload the server claims for it. *)
