(** Data blocks and their canonical signing encoding.

    A block's signature covers the owning file, the block's position
    and its payload, so a server answering with the right data *from
    the wrong position* (the PCS attack of §VII-A) fails signature
    verification. *)

type t = { file : string; index : int; data : string }

val signing_message : t -> string
(** The message m_i fed to the identity-based signature. *)

val encode_ints : int list -> string
(** Serialize a numeric payload (the cloud-computation data model)
    into a block body. *)

val decode_ints : string -> int list option
(** Inverse of {!encode_ints}; [None] on malformed payloads. *)

val of_ints : file:string -> index:int -> int list -> t
