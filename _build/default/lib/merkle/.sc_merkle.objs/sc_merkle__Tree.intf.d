lib/merkle/tree.mli:
