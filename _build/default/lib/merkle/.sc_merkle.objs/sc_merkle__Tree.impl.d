lib/merkle/tree.ml: Array List Sc_hash String
