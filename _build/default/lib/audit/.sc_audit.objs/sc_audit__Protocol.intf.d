lib/audit/protocol.mli: Format Sc_compute Sc_hash Sc_ibc
