lib/audit/optimal.ml: List
