lib/audit/protocol.ml: Array Format List Sc_compute Sc_hash Sc_ibc Sc_merkle Sc_storage
