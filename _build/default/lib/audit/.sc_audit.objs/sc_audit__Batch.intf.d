lib/audit/batch.mli: Protocol Sc_compute Sc_ibc
