lib/audit/batch.ml: List Protocol Sc_compute Sc_ibc Sc_merkle Sc_pairing Sc_storage
