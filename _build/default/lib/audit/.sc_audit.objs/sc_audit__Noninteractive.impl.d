lib/audit/noninteractive.ml: Char Hashtbl List Protocol Sc_compute Sc_hash Sc_ibc Sc_merkle Sc_storage String
