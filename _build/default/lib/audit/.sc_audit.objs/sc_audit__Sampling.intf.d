lib/audit/sampling.mli:
