lib/audit/noninteractive.mli: Protocol Sc_compute Sc_ibc
