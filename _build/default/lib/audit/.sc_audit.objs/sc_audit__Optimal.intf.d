lib/audit/optimal.mli:
