lib/audit/sampling.ml: List Printf
