lib/audit/trust.mli:
