lib/audit/trust.ml: Float Hashtbl Sampling
