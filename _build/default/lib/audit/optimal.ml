type costs = {
  a1 : float;
  a2 : float;
  a3 : float;
  c_trans : float;
  c_comp : float;
  c_cheat : float;
}

let total_cost k ~cheat_prob ~t =
  if t < 0 then invalid_arg "Optimal.total_cost: negative t";
  (k.a1 *. float_of_int t *. k.c_trans)
  +. (k.a2 *. k.c_comp)
  +. (k.a3 *. k.c_cheat *. (cheat_prob ** float_of_int t))

let optimal_t k ~cheat_prob =
  if not (cheat_prob > 0.0 && cheat_prob < 1.0)
  then invalid_arg "Optimal.optimal_t: cheat_prob must be in (0,1)";
  let lnq = log cheat_prob in
  let ratio = -.(k.a1 *. k.c_trans) /. (k.a3 *. k.c_cheat *. lnq) in
  if ratio <= 0.0 then 0
  else begin
    let t_star = log ratio /. lnq in
    max 0 (int_of_float (ceil t_star))
  end

let argmin_t ?(t_max = 10_000) k ~cheat_prob =
  let rec go best_t best_cost t =
    if t > t_max then best_t
    else begin
      let c = total_cost k ~cheat_prob ~t in
      if c < best_cost then go t c (t + 1) else go best_t best_cost (t + 1)
    end
  in
  go 0 (total_cost k ~cheat_prob ~t:0) 1

type audit_record = {
  samples : int;
  bytes_transferred : float;
  recompute_seconds : float;
  undetected_cheat_damage : float option;
}

let learn_costs ?(a1 = 1.0) ?(a2 = 1.0) ?(a3 = 1.0) records =
  if records = [] then invalid_arg "Optimal.learn_costs: empty history";
  let total_samples =
    List.fold_left (fun acc r -> acc + r.samples) 0 records
  in
  if total_samples = 0 then invalid_arg "Optimal.learn_costs: zero samples";
  let sum f = List.fold_left (fun acc r -> acc +. f r) 0.0 records in
  let c_trans = sum (fun r -> r.bytes_transferred) /. float_of_int total_samples in
  let c_comp = sum (fun r -> r.recompute_seconds) /. float_of_int (List.length records) in
  let damages =
    List.filter_map (fun r -> r.undetected_cheat_damage) records
  in
  let c_cheat =
    match damages with
    | [] -> 0.0
    | _ ->
      List.fold_left ( +. ) 0.0 damages /. float_of_int (List.length damages)
  in
  { a1; a2; a3; c_trans; c_comp; c_cheat }
