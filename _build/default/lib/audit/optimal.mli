(** Optimal sample-set size (§VII-C, Theorem 3).

    Total auditing cost for sample size t:

      C_total(t) = a1·t·C_trans + a2·C_comp + a3·C_cheat·g^t    (eq. 17)

    where g is the per-audit probability of successful cheating.  The
    closed-form minimiser is

      t* = ⌈ ln(−a1·C_trans / (a3·C_cheat·ln g)) / ln g ⌉        (eq. 18)

    The cost coefficients are "evaluated through a history learning
    process" in the paper; {!learn_costs} implements that from audit
    records. *)

type costs = {
  a1 : float;
  a2 : float;
  a3 : float;
  c_trans : float; (* per sampled message-signature pair *)
  c_comp : float; (* per sampled recomputation *)
  c_cheat : float; (* damage of an undetected cheat *)
}

val total_cost : costs -> cheat_prob:float -> t:int -> float

val optimal_t : costs -> cheat_prob:float -> int
(** Theorem 3's closed form, clamped to ≥ 0.
    @raise Invalid_argument unless [0 < cheat_prob < 1]. *)

val argmin_t : ?t_max:int -> costs -> cheat_prob:float -> int
(** Exhaustive minimiser over [0, t_max] (default 10_000) — used to
    validate the closed form. *)

type audit_record = {
  samples : int;
  bytes_transferred : float;
  recompute_seconds : float;
  undetected_cheat_damage : float option;
      (** Damage observed when a cheat later surfaced undetected. *)
}

val learn_costs :
  ?a1:float -> ?a2:float -> ?a3:float -> audit_record list -> costs
(** Per-sample averages from history (the a coefficients default
    to 1).  @raise Invalid_argument on an empty or zero-sample
    history. *)
