(** The probabilistic-sampling analysis of §VII-A (equations 10–15)
    and the Figure 4 numerics.

    FCS: the server successfully guesses sampled results;
    PCS: the server successfully passes wrong-position data.

      Pr[FCS] = (CSC + (1 − CSC)/|R|)^t            (eq. 10)
      Pr[PCS] = (SSC + (1 − SSC)·Pr[SigForge])^t   (eq. 12)
      Pr[cheat] = Pr[FCS] + Pr[PCS]                (eq. 14, independence)

    All probabilities are clamped to [0, 1]. *)

val pr_fcs : csc:float -> range:float -> t:int -> float
(** [range] may be [infinity] (a guess never lands). *)

val pr_pcs : ssc:float -> sig_forge:float -> t:int -> float

val pr_cheat :
  csc:float -> ssc:float -> range:float -> sig_forge:float -> t:int -> float

val required_samples :
  ?t_max:int ->
  csc:float ->
  ssc:float ->
  range:float ->
  sig_forge:float ->
  eps:float ->
  unit ->
  int option
(** Smallest t with Pr[cheat] ≤ ε, or [None] if none ≤ [t_max]
    (default 100_000) exists — e.g. when CSC = SSC = 1 the server is
    honest-equivalent and undetectable. *)

type grid_point = { ssc : float; csc : float; t : int option }

val figure4_grid :
  ?sig_forge:float ->
  ?steps:int ->
  eps:float ->
  range:float ->
  unit ->
  grid_point list
(** The Figure 4 surface: required t over an SSC × CSC grid in
    [0, 0.9] (default 10 steps), ε and |R| as given, Pr[SigForge]
    defaulting to 1e−9. *)

val detection_probability :
  csc:float -> ssc:float -> range:float -> sig_forge:float -> t:int -> float
(** 1 − Pr[cheat]: what a Monte-Carlo experiment should observe. *)
