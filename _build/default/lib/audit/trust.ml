type record = { mutable audits : int; mutable failures : int; mutable streak : int }

type t = (string, record) Hashtbl.t

let create () : t = Hashtbl.create 16

let find t server =
  match Hashtbl.find_opt t server with
  | Some r -> r
  | None ->
    let r = { audits = 0; failures = 0; streak = 0 } in
    Hashtbl.add t server r;
    r

let record t ~server ~passed =
  let r = find t server in
  r.audits <- r.audits + 1;
  if passed then r.streak <- r.streak + 1
  else begin
    r.failures <- r.failures + 1;
    r.streak <- 0
  end

let audits t ~server = (find t server).audits
let failures t ~server = (find t server).failures
let clean_streak t ~server = (find t server).streak

let estimate t ~server =
  let r = find t server in
  float_of_int (r.audits - r.failures + 1) /. float_of_int (r.audits + 2)

type policy = {
  eps : float;
  range : float;
  assumed_csc : float;
  assumed_ssc : float;
  relaxation : float;
  max_relaxation : float;
  min_samples : int;
  max_samples : int;
}

let default_policy =
  {
    eps = 1e-4;
    range = infinity;
    assumed_csc = 0.5;
    assumed_ssc = 0.5;
    relaxation = 0.2;
    max_relaxation = 10.0;
    min_samples = 4;
    max_samples = 200;
  }

let recommended_samples t policy ~server =
  let streak = clean_streak t ~server in
  let earned = 1.0 +. (float_of_int streak *. policy.relaxation) in
  let eps_eff = policy.eps *. Float.min earned policy.max_relaxation in
  let base =
    match
      Sampling.required_samples ~csc:policy.assumed_csc
        ~ssc:policy.assumed_ssc ~range:policy.range ~sig_forge:1e-9
        ~eps:eps_eff ()
    with
    | Some required -> required
    | None -> policy.max_samples
  in
  max policy.min_samples (min policy.max_samples base)

let distrust_threshold = 0.2
let should_drop t ~server = estimate t ~server < distrust_threshold
