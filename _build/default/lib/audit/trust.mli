(** Adaptive per-server audit scheduling.

    An extension over the paper's fixed-t analysis: the DA tracks each
    server's audit history (Beta–Bernoulli posterior over per-audit
    honesty) and adapts the sample size —

    - the *security floor* comes from eq. (10)–(14):
      t ≥ required_samples(CSC, SSC, ε_eff);
    - a server with a long clean history earns a relaxed effective
      target ε_eff = ε·(1 + clean_streak·relaxation), capped at
      [max_relaxation]; any failure resets the streak, snapping t back
      to the conservative value;
    - the result is clamped into [min_samples, max_samples].

    This realizes the "history learning process" the paper sketches
    for its cost model, applied to audit intensity. *)

type t

val create : unit -> t

val record : t -> server:string -> passed:bool -> unit
(** Feed one audit outcome. *)

val audits : t -> server:string -> int
val failures : t -> server:string -> int
val clean_streak : t -> server:string -> int

val estimate : t -> server:string -> float
(** Posterior mean of the server's per-audit pass probability,
    (passes + 1) / (audits + 2); 0.5 for unknown servers. *)

type policy = {
  eps : float; (* base per-audit cheating target *)
  range : float; (* assumed |R| *)
  assumed_csc : float; (* worst-case confidences to defend against *)
  assumed_ssc : float;
  relaxation : float; (* ε multiplier earned per clean audit *)
  max_relaxation : float; (* cap on the earned multiplier *)
  min_samples : int;
  max_samples : int;
}

val default_policy : policy
(** ε = 1e-4, |R| = ∞, CSC = SSC = 0.5, 20%% relaxation per clean
    audit capped at 10×, t ∈ [4, 200]. *)

val recommended_samples : t -> policy -> server:string -> int
(** The adaptive t for the next audit of this server. *)

val distrust_threshold : float
(** Servers whose {!estimate} falls below this (0.2) should be
    dropped; see {!should_drop}. *)

val should_drop : t -> server:string -> bool
