let clamp01 x = max 0.0 (min 1.0 x)

let check_prob name v =
  if not (v >= 0.0 && v <= 1.0) then
    invalid_arg (Printf.sprintf "Sampling: %s must lie in [0,1]" name)

let pr_fcs ~csc ~range ~t =
  check_prob "csc" csc;
  if t < 0 then invalid_arg "Sampling.pr_fcs: negative t";
  if range < 1.0 then invalid_arg "Sampling.pr_fcs: range < 1";
  let per_sample =
    if range = infinity then csc else csc +. ((1.0 -. csc) /. range)
  in
  clamp01 (per_sample ** float_of_int t)

let pr_pcs ~ssc ~sig_forge ~t =
  check_prob "ssc" ssc;
  check_prob "sig_forge" sig_forge;
  if t < 0 then invalid_arg "Sampling.pr_pcs: negative t";
  let per_sample = ssc +. ((1.0 -. ssc) *. sig_forge) in
  clamp01 (per_sample ** float_of_int t)

let pr_cheat ~csc ~ssc ~range ~sig_forge ~t =
  clamp01 (pr_fcs ~csc ~range ~t +. pr_pcs ~ssc ~sig_forge ~t)

let required_samples ?(t_max = 100_000) ~csc ~ssc ~range ~sig_forge ~eps () =
  if eps <= 0.0 then invalid_arg "Sampling.required_samples: eps <= 0";
  (* The probability is monotone decreasing in t, so a geometric climb
     followed by binary search finds the threshold quickly. *)
  let ok t = pr_cheat ~csc ~ssc ~range ~sig_forge ~t <= eps in
  if ok 0 then Some 0
  else if not (ok t_max) then None
  else begin
    let rec climb hi = if ok hi then hi else climb (min t_max (hi * 2)) in
    let hi = climb 1 in
    let rec bisect lo hi =
      (* invariant: not (ok lo) && ok hi *)
      if hi - lo <= 1 then hi
      else begin
        let mid = (lo + hi) / 2 in
        if ok mid then bisect lo mid else bisect mid hi
      end
    in
    if hi = 1 then Some 1 else Some (bisect (hi / 2) hi)
  end

type grid_point = { ssc : float; csc : float; t : int option }

let figure4_grid ?(sig_forge = 1e-9) ?(steps = 10) ~eps ~range () =
  List.concat
    (List.init steps (fun i ->
         let ssc = float_of_int i /. float_of_int steps in
         List.init steps (fun j ->
             let csc = float_of_int j /. float_of_int steps in
             let t = required_samples ~csc ~ssc ~range ~sig_forge ~eps () in
             { ssc; csc; t })))

let detection_probability ~csc ~ssc ~range ~sig_forge ~t =
  1.0 -. pr_cheat ~csc ~ssc ~range ~sig_forge ~t
