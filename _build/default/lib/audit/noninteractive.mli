(** Non-interactive computation audits (Fiat–Shamir flavour).

    An extension over the paper's interactive Algorithm 1: the sample
    indices are *derived* rather than chosen — t distinct indices are
    expanded from H(root ‖ epoch ‖ owner), so

    - the server can assemble the whole proof (commitment + derived
      responses) with no challenge round-trip;
    - the server cannot steer the sample: indices are fixed by the
      very root it committed to, and change every epoch;
    - any designated verifier re-derives the indices and runs the
      same three checks as Algorithm 1.

    The binding argument is the Merkle commitment: to bias the sample
    the server would have to grind roots, but every candidate root
    re-randomizes which leaves are opened *and* remains bound to the
    signed data via the per-block signatures. *)

type proof = {
  commitment : Protocol.commitment;
  epoch : int;
  responses : Sc_compute.Executor.response list;
}

val derive_indices :
  root:string -> epoch:int -> owner:string -> n_tasks:int -> samples:int -> int list
(** The deterministic sample: [samples] distinct indices in
    [\[0, n_tasks)], expanded from SHA-256 in counter mode.  [samples]
    is clamped to [n_tasks]. *)

val prove :
  Sc_ibc.Setup.public ->
  owner:string ->
  epoch:int ->
  samples:int ->
  Sc_compute.Executor.execution ->
  proof
(** Server side: commit, derive, respond. *)

val verify :
  Sc_ibc.Setup.public ->
  verifier_key:Sc_ibc.Setup.identity_key ->
  role:[ `Cs | `Da ] ->
  owner:string ->
  expected_epoch:int ->
  samples:int ->
  proof ->
  Protocol.verdict
(** Re-derives the indices from the proof's own root and runs the
    Algorithm-1 checks; rejects stale epochs and index sets that do
    not match the derivation. *)
