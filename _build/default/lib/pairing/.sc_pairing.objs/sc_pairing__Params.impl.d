lib/pairing/params.ml: Curve Fp Fp2 Lazy Nat Prime Sc_bignum Sc_ec Sc_field Sc_hash
