lib/pairing/tate.mli: Curve Fp2 Nat Params Sc_bignum Sc_ec Sc_field
