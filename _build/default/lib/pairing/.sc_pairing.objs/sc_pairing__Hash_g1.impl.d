lib/pairing/hash_g1.ml: Buffer Curve Fp Nat Params Sc_bignum Sc_ec Sc_field Sc_hash
