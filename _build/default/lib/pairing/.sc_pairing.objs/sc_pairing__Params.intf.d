lib/pairing/params.mli: Curve Fp Lazy Nat Sc_bignum Sc_ec Sc_field
