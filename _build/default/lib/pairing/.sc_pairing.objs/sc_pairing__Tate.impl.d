lib/pairing/tate.ml: Curve Fp Fp2 Nat Params Sc_bignum Sc_ec Sc_field String
