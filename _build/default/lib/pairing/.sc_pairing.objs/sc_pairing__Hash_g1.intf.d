lib/pairing/hash_g1.mli: Curve Params Sc_bignum Sc_ec
