open Sc_bignum
open Sc_field
open Sc_ec

(* Expand the message to enough uniform bytes with a counter-mode
   SHA-256 construction. *)
let expand msg counter nbytes =
  let buf = Buffer.create nbytes in
  let block = ref 0 in
  while Buffer.length buf < nbytes do
    Buffer.add_string buf
      (Sc_hash.Sha256.digest_concat
         [ "seccloud-h2c"; string_of_int counter; ":"; string_of_int !block; ":"; msg ]);
    incr block
  done;
  Buffer.sub buf 0 nbytes

let hash_to_point (prm : Params.t) msg =
  let nbytes = ((Nat.bit_length prm.p + 7) / 8) + 8 in
  let rec attempt counter =
    let material = expand msg counter nbytes in
    let x = Fp.of_nat prm.fp (Nat.of_bytes_be material) in
    match Curve.lift_x prm.curve x with
    | None -> attempt (counter + 1)
    | Some candidate ->
      let pt = Curve.mul prm.curve prm.cofactor candidate in
      if Curve.is_infinity pt then attempt (counter + 1) else pt
  in
  attempt 0

let hash_to_scalar (prm : Params.t) msg =
  let nbytes = ((Nat.bit_length prm.q + 7) / 8) + 8 in
  let material = expand msg 0x5c nbytes in
  let r = Nat.rem (Nat.of_bytes_be material) (Nat.sub prm.q Nat.one) in
  Nat.add r Nat.one
