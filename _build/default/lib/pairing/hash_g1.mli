(** Hashing arbitrary strings into G1 (the map H1 of the paper),
    via SHA-256-based try-and-increment followed by cofactor
    clearing. *)

open Sc_ec

val hash_to_point : Params.t -> string -> Curve.point
(** Deterministic, never returns the point at infinity, and the result
    always lies in the order-q subgroup. *)

val hash_to_scalar : Params.t -> string -> Sc_bignum.Nat.t
(** The map H2 of the paper: {0,1}* → Z_q*. *)
