open Sc_bignum
open Sc_field
open Sc_ec

type gt = Fp2.el

let gt_one = Fp2.one
let gt_is_one = Fp2.is_one
let gt_equal = Fp2.equal
let gt_mul (prm : Params.t) a b = Fp2.mul prm.fp a b
let gt_inv (prm : Params.t) a = Fp2.conj prm.fp a
let gt_pow (prm : Params.t) a e = Fp2.pow prm.fp a e

(* Evaluate the line through T (slope lam) at the distorted point
   φ(Q) = (−x_q, i·y_q):
     l = i·y_q − y_t − lam·(−x_q − x_t)
       = (lam·(x_q + x_t) − y_t)  +  i·y_q
   Both components stay in F_p. *)
let line_eval fp ~lam ~xt ~yt ~xq ~yq =
  let re = Fp.sub fp (Fp.mul fp lam (Fp.add fp xq xt)) yt in
  Fp2.make re yq

(* Reference implementation: affine Miller loop (one field inversion
   per iteration).  Kept for cross-validation of the projective loop
   below and for the ablation benchmark. *)
let miller_affine (prm : Params.t) px py xq yq =
  let fp = prm.fp in
  let three = Fp.of_int fp 3 in
  let a = Curve.coeff_a prm.curve in
  let f = ref Fp2.one in
  let tx = ref px and ty = ref py in
  let t_inf = ref false in
  let nbits = Nat.bit_length prm.q in
  for i = nbits - 2 downto 0 do
    (* Doubling step. *)
    f := Fp2.sqr fp !f;
    if not !t_inf then begin
      if Fp.is_zero !ty then
        (* Vertical tangent: contributes an F_p factor only. *)
        t_inf := true
      else begin
        let lam =
          Fp.div fp
            (Fp.add fp (Fp.mul fp three (Fp.sqr fp !tx)) a)
            (Fp.double fp !ty)
        in
        f := Fp2.mul fp !f (line_eval fp ~lam ~xt:!tx ~yt:!ty ~xq ~yq);
        let x3 = Fp.sub fp (Fp.sqr fp lam) (Fp.double fp !tx) in
        let y3 = Fp.sub fp (Fp.mul fp lam (Fp.sub fp !tx x3)) !ty in
        tx := x3;
        ty := y3
      end
    end;
    (* Addition step. *)
    if Nat.test_bit prm.q i && not !t_inf then begin
      if Fp.equal !tx px then begin
        if Fp.equal !ty py then begin
          (* T = P: tangent line. *)
          let lam =
            Fp.div fp
              (Fp.add fp (Fp.mul fp three (Fp.sqr fp !tx)) a)
              (Fp.double fp !ty)
          in
          f := Fp2.mul fp !f (line_eval fp ~lam ~xt:!tx ~yt:!ty ~xq ~yq);
          let x3 = Fp.sub fp (Fp.sqr fp lam) (Fp.double fp !tx) in
          let y3 = Fp.sub fp (Fp.mul fp lam (Fp.sub fp !tx x3)) !ty in
          tx := x3;
          ty := y3
        end
        else
          (* T = −P: vertical chord, eliminated factor; T becomes O. *)
          t_inf := true
      end
      else begin
        let lam = Fp.div fp (Fp.sub fp !ty py) (Fp.sub fp !tx px) in
        f := Fp2.mul fp !f (line_eval fp ~lam ~xt:!tx ~yt:!ty ~xq ~yq);
        let x3 = Fp.sub fp (Fp.sub fp (Fp.sqr fp lam) !tx) px in
        let y3 = Fp.sub fp (Fp.mul fp lam (Fp.sub fp !tx x3)) !ty in
        tx := x3;
        ty := y3
      end
    end
  done;
  !f

(* Projective Miller loop: T is tracked in Jacobian coordinates
   (x = X/Z², y = Y/Z³), and every line function is scaled by an
   F_p* factor (2YZ³ for tangents, V·Z for chords) that the final
   exponentiation annihilates — so the whole loop is inversion-free.

   Tangent at T evaluated at φ(Q) = (−x_q, i·y_q), scaled by 2YZ³:
     re = M·(X + x_q·Z²) − 2Y²,   im = 2Y·Z³·y_q,
   with M = 3X² + a·Z⁴.  Chord through T and the affine P, scaled by
   V·Z with U = y_p·Z³ − Y, V = x_p·Z² − X:
     re = U·(x_q + x_p) − V·Z·y_p,   im = V·Z·y_q. *)
let miller_projective (prm : Params.t) px py xq yq =
  let fp = prm.fp in
  let a = Curve.coeff_a prm.curve in
  let f = ref Fp2.one in
  let tx = ref px and ty = ref py and tz = ref Fp.one in
  let t_inf = ref false in
  let nbits = Nat.bit_length prm.q in
  for i = nbits - 2 downto 0 do
    f := Fp2.sqr fp !f;
    if not !t_inf then begin
      if Fp.is_zero !ty then t_inf := true
      else begin
        let x = !tx and y = !ty and z = !tz in
        let xx = Fp.sqr fp x in
        let yy = Fp.sqr fp y in
        let zz = Fp.sqr fp z in
        let m = Fp.add fp (Fp.add fp (Fp.double fp xx) xx) (Fp.mul fp a (Fp.sqr fp zz)) in
        (* Line first (it needs the old X, Y, Z). *)
        let two_yy = Fp.double fp yy in
        let re =
          Fp.sub fp (Fp.mul fp m (Fp.add fp x (Fp.mul fp xq zz))) two_yy
        in
        let z3 = Fp.double fp (Fp.mul fp y z) in
        let im = Fp.mul fp (Fp.mul fp z3 zz) yq in
        f := Fp2.mul fp !f (Fp2.make re im);
        (* dbl: S = 4XY², X3 = M² − 2S, Y3 = M(S − X3) − 8Y⁴. *)
        let s = Fp.double fp (Fp.double fp (Fp.mul fp x yy)) in
        let x3 = Fp.sub fp (Fp.sqr fp m) (Fp.double fp s) in
        let y3 =
          Fp.sub fp
            (Fp.mul fp m (Fp.sub fp s x3))
            (Fp.double fp (Fp.double fp (Fp.double fp (Fp.sqr fp yy))))
        in
        tx := x3;
        ty := y3;
        tz := z3
      end
    end;
    if Nat.test_bit prm.q i && not !t_inf then begin
      let x = !tx and y = !ty and z = !tz in
      let zz = Fp.sqr fp z in
      let u = Fp.sub fp (Fp.mul fp py (Fp.mul fp z zz)) y in
      let v = Fp.sub fp (Fp.mul fp px zz) x in
      if Fp.is_zero v then begin
        if Fp.is_zero u then begin
          (* T = P: fall back to a tangent step (cannot happen for a
             prime-order Miller loop, but stay total). *)
          t_inf := false;
          let m =
            Fp.add fp
              (Fp.add fp (Fp.double fp (Fp.sqr fp x)) (Fp.sqr fp x))
              (Fp.mul fp a (Fp.sqr fp zz))
          in
          let yy = Fp.sqr fp y in
          let re =
            Fp.sub fp (Fp.mul fp m (Fp.add fp x (Fp.mul fp xq zz)))
              (Fp.double fp yy)
          in
          let z3 = Fp.double fp (Fp.mul fp y z) in
          let im = Fp.mul fp (Fp.mul fp z3 zz) yq in
          f := Fp2.mul fp !f (Fp2.make re im);
          let s = Fp.double fp (Fp.double fp (Fp.mul fp x yy)) in
          let x3 = Fp.sub fp (Fp.sqr fp m) (Fp.double fp s) in
          let y3 =
            Fp.sub fp
              (Fp.mul fp m (Fp.sub fp s x3))
              (Fp.double fp (Fp.double fp (Fp.double fp (Fp.sqr fp yy))))
          in
          tx := x3;
          ty := y3;
          tz := z3
        end
        else
          (* Vertical chord: eliminated factor, T becomes O. *)
          t_inf := true
      end
      else begin
        let vz = Fp.mul fp v z in
        let re = Fp.sub fp (Fp.mul fp u (Fp.add fp xq px)) (Fp.mul fp vz py) in
        let im = Fp.mul fp vz yq in
        f := Fp2.mul fp !f (Fp2.make re im);
        (* madd: X3 = U² − V³ − 2V²X, Y3 = U(V²X − X3) − V³Y, Z3 = VZ. *)
        let vv = Fp.sqr fp v in
        let vvv = Fp.mul fp vv v in
        let vvx = Fp.mul fp vv x in
        let x3 = Fp.sub fp (Fp.sub fp (Fp.sqr fp u) vvv) (Fp.double fp vvx) in
        let y3 =
          Fp.sub fp (Fp.mul fp u (Fp.sub fp vvx x3)) (Fp.mul fp vvv y)
        in
        tx := x3;
        ty := y3;
        tz := vz
      end
    end
  done;
  !f

(* f^((p² − 1)/q) = (f^(p−1))^c = (conj(f)·f⁻¹)^c, using that
   conjugation is the p-power Frobenius when p ≡ 3 (mod 4). *)
let final_expo (prm : Params.t) f =
  let fp = prm.fp in
  let g = Fp2.mul fp (Fp2.conj fp f) (Fp2.inv fp f) in
  Fp2.pow fp g prm.cofactor

(* Global instrumentation: the evaluation section compares schemes by
   pairing counts, so the library keeps a tally. *)
let pairing_count = ref 0

let pairings_performed () = !pairing_count
let reset_pairing_count () = pairing_count := 0

let pairing prm p q =
  incr pairing_count;
  match p, q with
  | Curve.Infinity, _ | _, Curve.Infinity -> gt_one
  | Curve.Affine (px, py), Curve.Affine (qx, qy) ->
    let f = miller_projective prm px py qx qy in
    if Fp2.is_zero f then gt_one else final_expo prm f

let pairing_affine prm p q =
  incr pairing_count;
  match p, q with
  | Curve.Infinity, _ | _, Curve.Infinity -> gt_one
  | Curve.Affine (px, py), Curve.Affine (qx, qy) ->
    let f = miller_affine prm px py qx qy in
    if Fp2.is_zero f then gt_one else final_expo prm f

let gt_to_bytes (prm : Params.t) (g : gt) =
  let n = (Nat.bit_length prm.p + 7) / 8 in
  Nat.to_bytes_be ~len:n (Fp.to_nat g.Fp2.re) ^ Nat.to_bytes_be ~len:n (Fp.to_nat g.Fp2.im)

let gt_of_bytes (prm : Params.t) s =
  let n = (Nat.bit_length prm.p + 7) / 8 in
  if String.length s <> 2 * n then None
  else begin
    let re = Nat.of_bytes_be (String.sub s 0 n) in
    let im = Nat.of_bytes_be (String.sub s n n) in
    if Nat.compare re prm.p >= 0 || Nat.compare im prm.p >= 0 then None
    else Some (Fp2.make re im)
  end
