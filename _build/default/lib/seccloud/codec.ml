exception Decode_error of string

let fail msg = raise (Decode_error msg)

let w_u8 b v =
  if v < 0 || v > 0xFF then invalid_arg "Codec.w_u8: out of range";
  Buffer.add_char b (Char.chr v)

let w_u32 b v =
  if v < 0 || v > 0xFFFFFFFF then invalid_arg "Codec.w_u32: out of range";
  Buffer.add_char b (Char.chr ((v lsr 24) land 0xFF));
  Buffer.add_char b (Char.chr ((v lsr 16) land 0xFF));
  Buffer.add_char b (Char.chr ((v lsr 8) land 0xFF));
  Buffer.add_char b (Char.chr (v land 0xFF))

let w_i64 b v =
  for i = 7 downto 0 do
    Buffer.add_char b (Char.chr ((v asr (8 * i)) land 0xFF))
  done

let w_bytes b s =
  w_u32 b (String.length s);
  Buffer.add_string b s

let w_list b f l =
  w_u32 b (List.length l);
  List.iter (f b) l

let w_option b f = function
  | None -> w_u8 b 0
  | Some v ->
    w_u8 b 1;
    f b v

let w_bool b v = w_u8 b (if v then 1 else 0)

let w_float b v =
  let bits = Int64.bits_of_float v in
  for i = 7 downto 0 do
    let byte =
      Int64.to_int (Int64.logand (Int64.shift_right_logical bits (8 * i)) 0xFFL)
    in
    Buffer.add_char b (Char.chr byte)
  done

type reader = { data : string; mutable pos : int }

let reader data = { data; pos = 0 }

let take r n =
  if n < 0 || r.pos + n > String.length r.data then fail "truncated input";
  let s = String.sub r.data r.pos n in
  r.pos <- r.pos + n;
  s

let r_u8 r = Char.code (take r 1).[0]

let r_u32 r =
  let s = take r 4 in
  (Char.code s.[0] lsl 24)
  lor (Char.code s.[1] lsl 16)
  lor (Char.code s.[2] lsl 8)
  lor Char.code s.[3]

let r_i64 r =
  let s = take r 8 in
  let v = ref 0 in
  String.iter (fun c -> v := (!v lsl 8) lor Char.code c) s;
  (* The 64-bit pattern came from a native 63-bit int, so bit 63
     equals bit 62; shifting once left then arithmetic-right restores
     the sign lost when bit 63 fell off the accumulator. *)
  !v lsl 1 asr 1

let r_bytes r =
  let n = r_u32 r in
  take r n

let r_list r f =
  let n = r_u32 r in
  if n > String.length r.data then fail "list length exceeds input";
  List.init n (fun _ -> f r)

let r_option r f =
  match r_u8 r with
  | 0 -> None
  | 1 -> Some (f r)
  | _ -> fail "invalid option tag"

let r_bool r =
  match r_u8 r with
  | 0 -> false
  | 1 -> true
  | _ -> fail "invalid bool tag"

let r_float r =
  let s = take r 8 in
  let v = ref 0L in
  String.iter
    (fun c -> v := Int64.logor (Int64.shift_left !v 8) (Int64.of_int (Char.code c)))
    s;
  Int64.float_of_bits !v

let expect_end r =
  if r.pos <> String.length r.data then fail "trailing bytes"
