module Setup = Sc_ibc.Setup

let src = Logs.Src.create "seccloud.system" ~doc:"System initialization events"

module Log = (val Logs.src_log src : Logs.LOG)

type t = {
  sio : Setup.sio;
  pub : Setup.public;
  da_id : string;
  da_key : Setup.identity_key;
  cs_ids : string list;
  cs_keys : (string, Setup.identity_key) Hashtbl.t;
  users : (string, Setup.identity_key) Hashtbl.t;
  drbg : Sc_hash.Drbg.t;
}

let create ?(params = Sc_pairing.Params.small) ~seed ~cs_ids ~da_id () =
  let prm = Lazy.force params in
  let drbg = Sc_hash.Drbg.create ~seed:("seccloud-system:" ^ seed) in
  let bytes_source = Sc_hash.Drbg.bytes_source drbg in
  let sio = Setup.create prm ~bytes_source in
  let pub = Setup.public sio in
  let cs_keys = Hashtbl.create 8 in
  List.iter (fun id -> Hashtbl.replace cs_keys id (Setup.extract sio id)) cs_ids;
  Log.info (fun m ->
      m "system initialized: %d servers, da=%s, |q|=%d bits"
        (List.length cs_ids) da_id
        (Sc_bignum.Nat.bit_length prm.Sc_pairing.Params.q));
  {
    sio;
    pub;
    da_id;
    da_key = Setup.extract sio da_id;
    cs_ids;
    cs_keys;
    users = Hashtbl.create 8;
    drbg;
  }

let public t = t.pub
let da_id t = t.da_id
let da_key t = t.da_key
let cs_ids t = t.cs_ids
let cs_key t id = Hashtbl.find t.cs_keys id

let register_user t id =
  match Hashtbl.find_opt t.users id with
  | Some key -> key
  | None ->
    let key = Setup.extract t.sio id in
    Hashtbl.replace t.users id key;
    Log.info (fun m -> m "registered user %s" id);
    key

let drbg t = t.drbg
let bytes_source t = Sc_hash.Drbg.bytes_source t.drbg
