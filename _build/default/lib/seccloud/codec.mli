(** Minimal binary codec toolkit for the wire protocol: big-endian
    fixed-width integers, length-prefixed byte strings, lists and
    options, with a raising reader cursor. *)

exception Decode_error of string

(** Writers append to a buffer. *)

val w_u8 : Buffer.t -> int -> unit
val w_u32 : Buffer.t -> int -> unit
val w_i64 : Buffer.t -> int -> unit
(** Full native [int] range, two's complement in 8 bytes. *)

val w_bytes : Buffer.t -> string -> unit
(** u32 length prefix + raw bytes. *)

val w_list : Buffer.t -> (Buffer.t -> 'a -> unit) -> 'a list -> unit
val w_option : Buffer.t -> (Buffer.t -> 'a -> unit) -> 'a option -> unit
val w_bool : Buffer.t -> bool -> unit
val w_float : Buffer.t -> float -> unit

(** A reader holds a cursor into an immutable string and raises
    {!Decode_error} on malformed input. *)

type reader

val reader : string -> reader
val r_u8 : reader -> int
val r_u32 : reader -> int
val r_i64 : reader -> int
val r_bytes : reader -> string
val r_list : reader -> (reader -> 'a) -> 'a list
val r_option : reader -> (reader -> 'a) -> 'a option
val r_bool : reader -> bool
val r_float : reader -> float

val expect_end : reader -> unit
(** @raise Decode_error when trailing bytes remain. *)
