(** Message-driven protocol endpoints: a cloud server and a DA that
    communicate exclusively through encoded {!Wire} bytes, the way a
    deployed SecCloud would over TCP.

    The server endpoint is a pure byte-in/byte-out handler around a
    {!Cloud.t}; the DA endpoint drives complete audit conversations
    and returns verdicts.  Both sides re-validate everything they
    decode, so the pair double as an integration test of the wire
    layer: any message a test (or an attacker-in-the-middle) mangles
    is rejected or fails verification. *)

module Server : sig
  type t

  val create : System.t -> Cloud.t -> t

  val handle : t -> now:float -> string -> string
  (** Process one encoded request and return the encoded reply:
      - [Upload] → [Ack] (verification per the server's behaviour);
      - [Storage_challenge] → [Storage_response];
      - [Compute_request] → [Compute_commitment] (the execution is
        retained, keyed by owner and file, for later audits);
      - [Audit_challenge] → [Audit_response] or an [Ack] error when
        the warrant is rejected or no execution matches.
      Malformed input or unexpected message kinds yield an error
      [Ack] rather than an exception. *)
end

module Da : sig
  type t

  val create : System.t -> t

  val audit_storage_over_wire :
    t ->
    transport:(string -> string) ->
    owner:string ->
    file:string ->
    indices:int list ->
    Agency.storage_report
  (** Sends a [Storage_challenge] through [transport] (bytes → reply
      bytes) and verifies whatever comes back. *)

  val audit_computation_over_wire :
    t ->
    transport:(string -> string) ->
    owner:string ->
    file:string ->
    commitment:Sc_audit.Protocol.commitment ->
    warrant:Sc_ibc.Warrant.signed ->
    now:float ->
    samples:int ->
    Sc_audit.Protocol.verdict
  (** Runs the full Algorithm-1 conversation over the wire. *)
end
