module Server = Sc_storage.Server
module Signer = Sc_storage.Signer
module Executor = Sc_compute.Executor

type t = {
  system : System.t;
  id : string;
  key : Sc_ibc.Setup.identity_key;
  server : Server.t;
  compute : Executor.behaviour;
  drbg : Sc_hash.Drbg.t;
}

let create system ~id ?(storage = Server.Honest) ?(compute = Executor.Honest) () =
  let key = System.cs_key system id in
  let drbg = Sc_hash.Drbg.create ~seed:("cloud-server:" ^ id) in
  { system; id; key; server = Server.create storage ~drbg; compute; drbg }

let id t = t.id
let storage t = t.server
let storage_confidence t = Server.storage_confidence t.server
let computing_confidence t = Executor.computing_confidence t.compute

let accept_upload t (upload : Signer.upload) =
  let pub = System.public t.system in
  let ok =
    Array.for_all
      (fun (sb : Signer.signed_block) ->
        Signer.verify_block pub ~verifier_key:t.key ~role:`Cs
          ~owner:upload.Signer.owner sb.Signer.block sb)
      upload.Signer.blocks
  in
  if ok then Server.store t.server upload;
  ok

let accept_upload_unchecked t upload = Server.store t.server upload

let execute t ~owner ~file service =
  Executor.run (System.public t.system) ~cs_key:t.key ~server:t.server
    ~behaviour:t.compute ~drbg:t.drbg ~owner ~file service

let respond_to_audit t ~now execution challenge =
  Sc_audit.Protocol.respond (System.public t.system) ~now execution challenge
