lib/seccloud/agency.ml: Array Cloud List Logs Sc_audit Sc_hash Sc_ibc Sc_storage System
