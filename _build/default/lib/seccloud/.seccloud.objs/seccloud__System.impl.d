lib/seccloud/system.ml: Hashtbl Lazy List Logs Sc_bignum Sc_hash Sc_ibc Sc_pairing
