lib/seccloud/wire.ml: Array Buffer Codec Sc_audit Sc_compute Sc_ec Sc_ibc Sc_merkle Sc_pairing Sc_storage String
