lib/seccloud/distributed.mli: Agency Cloud Sc_audit Sc_compute Sc_ibc User
