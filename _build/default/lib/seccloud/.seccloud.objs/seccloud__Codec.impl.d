lib/seccloud/codec.ml: Buffer Char Int64 List String
