lib/seccloud/cloud.ml: Array Sc_audit Sc_compute Sc_hash Sc_ibc Sc_storage System
