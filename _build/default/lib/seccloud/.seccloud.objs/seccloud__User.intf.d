lib/seccloud/user.mli: Cloud Sc_ibc Sc_storage System
