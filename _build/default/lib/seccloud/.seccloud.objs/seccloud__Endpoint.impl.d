lib/seccloud/endpoint.ml: Agency Cloud Hashtbl List Sc_audit Sc_compute Sc_hash Sc_storage System Wire
