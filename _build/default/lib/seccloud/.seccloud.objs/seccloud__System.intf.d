lib/seccloud/system.mli: Sc_hash Sc_ibc Sc_pairing
