lib/seccloud/wire.mli: Sc_audit Sc_compute Sc_ibc Sc_storage
