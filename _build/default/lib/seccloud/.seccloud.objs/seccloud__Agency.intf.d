lib/seccloud/agency.mli: Cloud Sc_audit Sc_compute Sc_ibc System
