lib/seccloud/distributed.ml: Agency Array Cloud List Sc_compute User
