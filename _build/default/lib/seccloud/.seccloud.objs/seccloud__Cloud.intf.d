lib/seccloud/cloud.mli: Sc_audit Sc_compute Sc_storage System
