lib/seccloud/codec.mli: Buffer
