lib/seccloud/user.ml: Cloud Sc_ibc Sc_storage System
