lib/seccloud/endpoint.mli: Agency Cloud Sc_audit Sc_ibc System
