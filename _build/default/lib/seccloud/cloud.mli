(** A cloud server: storage plus execution, with independently
    injectable storage- and computation-cheating behaviours. *)

type t

val create :
  System.t ->
  id:string ->
  ?storage:Sc_storage.Server.behaviour ->
  ?compute:Sc_compute.Executor.behaviour ->
  unit ->
  t
(** Both behaviours default to honest.
    @raise Not_found if [id] was not declared at system creation. *)

val id : t -> string
val storage : t -> Sc_storage.Server.t

val storage_confidence : t -> float
(** The server's SSC. *)

val computing_confidence : t -> float
(** The server's CSC. *)

val accept_upload : t -> Sc_storage.Signer.upload -> bool
(** Protocol II server side: verifies every designated block signature
    (the server is a designated verifier) before storing.  Returns
    whether the upload was accepted. *)

val accept_upload_unchecked : t -> Sc_storage.Signer.upload -> unit
(** Stores without verification (used to model lazy servers). *)

val execute :
  t ->
  owner:string ->
  file:string ->
  Sc_compute.Task.service ->
  Sc_compute.Executor.execution
(** Protocol III server side: run the service over stored data and
    build the Merkle commitment. *)

val respond_to_audit :
  t ->
  now:float ->
  Sc_compute.Executor.execution ->
  Sc_audit.Protocol.challenge ->
  Sc_compute.Executor.response list option
(** Checks the warrant, then returns sampled responses. *)
