module Protocol = Sc_audit.Protocol
module Server_impl = Sc_storage.Server

module Server = struct
  type t = {
    system : System.t;
    cloud : Cloud.t;
    executions : (string * string, Sc_compute.Executor.execution) Hashtbl.t;
  }

  let create system cloud = { system; cloud; executions = Hashtbl.create 8 }

  let reply t msg = Wire.encode (System.public t.system) msg
  let err t detail = reply t (Wire.Ack { ok = false; detail })

  let handle t ~now data =
    let pub = System.public t.system in
    match Wire.decode pub data with
    | exception Wire.Decode_error detail -> err t ("decode: " ^ detail)
    | Wire.Upload upload ->
      let ok = Cloud.accept_upload t.cloud upload in
      reply t (Wire.Ack { ok; detail = (if ok then "stored" else "rejected") })
    | Wire.Storage_challenge { file; indices } ->
      let items =
        List.map
          (fun i -> i, Server_impl.read (Cloud.storage t.cloud) ~file ~index:i)
          indices
      in
      reply t (Wire.Storage_response items)
    | Wire.Compute_request { owner; file; service } ->
      (match Cloud.execute t.cloud ~owner ~file service with
      | exception Invalid_argument m -> err t m
      | execution ->
        Hashtbl.replace t.executions (owner, file) execution;
        reply t
          (Wire.Compute_commitment
             {
               results = Sc_compute.Executor.results execution;
               commitment = Protocol.commitment_of_execution execution;
             }))
    | Wire.Audit_challenge { owner; file; challenge } ->
      (match Hashtbl.find_opt t.executions (owner, file) with
      | None -> err t "no execution for this owner/file"
      | Some execution ->
        (match Cloud.respond_to_audit t.cloud ~now execution challenge with
        | None -> err t "warrant rejected"
        | Some responses -> reply t (Wire.Audit_response responses)))
    | Wire.Storage_response _ | Wire.Compute_commitment _
    | Wire.Audit_response _ | Wire.Ack _ ->
      err t "unexpected message kind"
end

module Da = struct
  type t = { system : System.t; drbg : Sc_hash.Drbg.t }

  let create system =
    { system; drbg = Sc_hash.Drbg.create ~seed:"da-endpoint" }

  let audit_storage_over_wire t ~transport ~owner ~file ~indices =
    let pub = System.public t.system in
    let da_key = System.da_key t.system in
    let request = Wire.encode pub (Wire.Storage_challenge { file; indices }) in
    let fail =
      {
        Agency.sampled = List.length indices;
        valid_blocks = 0;
        invalid_indices = indices;
        intact = false;
      }
    in
    match Wire.decode pub (transport request) with
    | exception Wire.Decode_error _ -> fail
    | Wire.Storage_response items ->
      let checks =
        List.map
          (fun i ->
            match List.assoc_opt i items with
            | Some (Some { Server_impl.claimed; signed }) ->
              ( i,
                claimed.Sc_storage.Block.index = i
                && Sc_storage.Signer.verify_block pub ~verifier_key:da_key
                     ~role:`Da ~owner claimed signed )
            | Some None | None -> i, false)
          indices
      in
      let invalid = List.filter_map (fun (i, ok) -> if ok then None else Some i) checks in
      {
        Agency.sampled = List.length indices;
        valid_blocks = List.length indices - List.length invalid;
        invalid_indices = invalid;
        intact = invalid = [];
      }
    | Wire.Upload _ | Wire.Storage_challenge _ | Wire.Compute_request _
    | Wire.Compute_commitment _ | Wire.Audit_challenge _
    | Wire.Audit_response _ | Wire.Ack _ ->
      fail

  let audit_computation_over_wire t ~transport ~owner ~file ~commitment
      ~warrant ~now:_ ~samples =
    let pub = System.public t.system in
    let da_key = System.da_key t.system in
    let challenge =
      Protocol.make_challenge ~drbg:t.drbg
        ~n_tasks:commitment.Protocol.n_tasks ~samples ~warrant
    in
    let request =
      Wire.encode pub (Wire.Audit_challenge { owner; file; challenge })
    in
    let fail failure = { Protocol.valid = false; failures = [ failure ] } in
    match Wire.decode pub (transport request) with
    | exception Wire.Decode_error _ -> fail Protocol.Warrant_invalid
    | Wire.Audit_response responses ->
      Protocol.verify pub ~verifier_key:da_key ~role:`Da ~owner commitment
        challenge responses
    | Wire.Ack { ok = _; detail = _ } -> fail Protocol.Warrant_invalid
    | Wire.Upload _ | Wire.Storage_challenge _ | Wire.Storage_response _
    | Wire.Compute_request _ | Wire.Compute_commitment _
    | Wire.Audit_challenge _ ->
      fail Protocol.Warrant_invalid
end
