(** MapReduce-style distribution of a computing service across cloud
    servers (§III-A: "CSP could divide such a task into multiple
    sub-tasks and allow them parallelly executed across hundreds of
    Cloud Computing servers"), with per-shard Merkle commitments and
    one batched audit over all shards.

    The user's file is replicated to every participating server; the
    service is split round-robin; each server executes and commits to
    its shard independently; results are recombined in the original
    order.  The DA audits all shards in a single §VI batch, so a
    single cheating shard poisons the whole job's verdict and is
    named in the failure list. *)

type shard = {
  cloud : Cloud.t;
  service : Sc_compute.Task.service;
  original_indices : int array;
      (** [original_indices.(i)] is the position of the shard's i-th
          sub-task in the user's request. *)
}

type execution = {
  shards : (shard * Sc_compute.Executor.execution) list;
  total_tasks : int;
  owner : string;
  file : string;
}

val plan : clouds:Cloud.t list -> Sc_compute.Task.service -> shard list
(** Round-robin partition; servers with no assigned sub-task are
    dropped.  @raise Invalid_argument on an empty cloud list or
    service. *)

val store_replicated :
  User.t -> Cloud.t list -> file:string -> string list -> bool
(** Protocol II to every server; true iff all accepted. *)

val execute :
  owner:string -> file:string -> shard list -> execution
(** Protocol III on every shard. *)

val results : execution -> int array
(** All sub-task results, restored to the user's request order. *)

val map_reduce :
  owner:string ->
  file:string ->
  clouds:Cloud.t list ->
  map:Sc_compute.Task.func ->
  positions:int list ->
  reduce:Sc_compute.Task.func ->
  (int * execution, string) result
(** The classic pattern: apply [map] to each position (distributed),
    then [reduce] over the vector of mapped results locally. *)

val audit :
  Agency.t ->
  execution ->
  warrant:Sc_ibc.Warrant.signed ->
  now:float ->
  samples_per_shard:int ->
  Sc_audit.Protocol.verdict
(** One batched audit across every shard's commitment. *)
