type corruption = {
  storage : Sc_storage.Server.behaviour;
  compute : Sc_compute.Executor.behaviour;
}

type t = {
  drbg : Sc_hash.Drbg.t;
  bound : int;
  server_ids : string array;
  catalogue : corruption array;
  mutable current : (string * corruption) list;
  mutable epoch : int;
}

let default_catalogue =
  [
    { storage = Sc_storage.Server.Delete_fraction 0.3; compute = Sc_compute.Executor.Honest };
    { storage = Sc_storage.Server.Corrupt_fraction 0.3; compute = Sc_compute.Executor.Honest };
    { storage = Sc_storage.Server.Substitute_fraction 0.3; compute = Sc_compute.Executor.Honest };
    { storage = Sc_storage.Server.Honest; compute = Sc_compute.Executor.Guess_fraction (0.4, 1000) };
    { storage = Sc_storage.Server.Honest; compute = Sc_compute.Executor.Skip_fraction 0.4 };
    { storage = Sc_storage.Server.Honest; compute = Sc_compute.Executor.Wrong_position_fraction 0.4 };
    { storage = Sc_storage.Server.Honest; compute = Sc_compute.Executor.Commit_garbage_fraction 0.4 };
    {
      storage = Sc_storage.Server.Corrupt_fraction 0.2;
      compute = Sc_compute.Executor.Guess_fraction (0.2, 1000);
    };
  ]

let create ~drbg ~bound ~server_ids ?(catalogue = default_catalogue) () =
  let n = List.length server_ids in
  if bound > n then invalid_arg "Adversary.create: bound exceeds server count";
  if catalogue = [] then invalid_arg "Adversary.create: empty catalogue";
  {
    drbg;
    bound;
    server_ids = Array.of_list server_ids;
    catalogue = Array.of_list catalogue;
    current = [];
    epoch = 0;
  }

let new_epoch t =
  t.epoch <- t.epoch + 1;
  let n = Array.length t.server_ids in
  let ids = Array.copy t.server_ids in
  (* Fisher–Yates prefix: the first [k] entries are this epoch's
     victims, where k ≤ bound is itself random (the adversary may not
     use its full budget). *)
  let k = if t.bound = 0 then 0 else Sc_hash.Drbg.uniform_int t.drbg (t.bound + 1) in
  for i = 0 to k - 1 do
    let j = i + Sc_hash.Drbg.uniform_int t.drbg (n - i) in
    let tmp = ids.(i) in
    ids.(i) <- ids.(j);
    ids.(j) <- tmp
  done;
  t.current <-
    List.init k (fun i ->
        let c =
          t.catalogue.(Sc_hash.Drbg.uniform_int t.drbg (Array.length t.catalogue))
        in
        ids.(i), c)

let corruption_of t id = List.assoc_opt id t.current
let corrupted t = List.map fst t.current
let epoch t = t.epoch
