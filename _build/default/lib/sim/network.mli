(** A simple latency + bandwidth network cost model with byte
    accounting.  Transfer time = latency + bytes / bandwidth; every
    transfer is also charged a monetary cost per byte, the C_trans of
    the paper's Theorem 3. *)

type t

type config = {
  latency_s : float; (* one-way latency, seconds *)
  bandwidth_bytes_per_s : float;
  cost_per_byte : float; (* currency units *)
}

val default_config : config
(** 20 ms latency, 100 MB/s, 1e-8 per byte. *)

val create : config -> t

val transfer_time : t -> bytes:int -> float
val transfer_cost : t -> bytes:int -> float

val record_transfer : t -> bytes:int -> float
(** Accounts the transfer and returns its duration. *)

val total_bytes : t -> int
val total_cost : t -> float
val transfers : t -> int
val reset : t -> unit
