lib/sim/engine.mli: Network Sc_audit Sc_pairing
