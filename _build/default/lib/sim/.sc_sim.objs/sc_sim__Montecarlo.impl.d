lib/sim/montecarlo.ml: Sc_audit Sc_hash
