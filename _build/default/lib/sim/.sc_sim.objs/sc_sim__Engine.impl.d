lib/sim/engine.ml: Adversary Array Event_queue List Network Printf Sc_audit Sc_compute Sc_hash Sc_pairing Sc_storage Seccloud Sys
