lib/sim/montecarlo.mli: Sc_hash
