lib/sim/adversary.mli: Sc_compute Sc_hash Sc_storage
