lib/sim/adversary.ml: Array List Sc_compute Sc_hash Sc_storage
