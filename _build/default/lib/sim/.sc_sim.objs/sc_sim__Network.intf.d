lib/sim/network.mli:
