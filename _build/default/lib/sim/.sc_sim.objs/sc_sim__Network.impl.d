lib/sim/network.ml:
