(** The end-to-end cloud simulation: n servers under a mobile
    Byzantine adversary, users storing data and outsourcing
    computation, the DA auditing every execution — all driven through
    a discrete-event clock with a network cost model.

    Each epoch the adversary corrupts a fresh subset of at most b
    servers (§III-B); every audit outcome is compared against ground
    truth, giving detection statistics and the audit-cost history that
    feeds Theorem 3's "history learning". *)

type config = {
  seed : string;
  params : Sc_pairing.Params.t lazy_t;
  n_servers : int;
  byzantine_bound : int;
  n_users : int;
  blocks_per_file : int;
  ints_per_block : int;
  tasks_per_service : int;
  samples_per_audit : int;
  epochs : int;
  network : Network.config;
  cheat_damage : float; (* damage of an undetected cheating epoch *)
}

val default_config : config
(** Toy parameters, 4 servers / b = 1, 2 users, 5 epochs. *)

type audit_outcome = {
  epoch : int;
  server : string;
  user : string;
  server_cheats : bool; (* ground truth *)
  storage_ok : bool;
  computation_ok : bool;
  samples : int;
  bytes : int;
  recompute_seconds : float;
}

type stats = {
  outcomes : audit_outcome list;
  sim_time : float; (* virtual seconds on the event clock *)
  total_bytes : int;
  detected : int; (* cheating epochs caught *)
  undetected : int; (* cheating epochs missed *)
  false_alarms : int; (* honest servers flagged — must be 0 *)
  honest_passed : int;
  records : Sc_audit.Optimal.audit_record list;
}

val run : config -> stats

val detection_rate : stats -> float
(** detected / (detected + undetected); 1.0 when nothing cheated. *)

val learned_costs : ?a3:float -> stats -> Sc_audit.Optimal.costs
(** Theorem 3 history learning over the run's audit records. *)
