(** The Byzantine adversary of §III-B: controls at most [bound]
    servers in any given epoch, re-choosing its victims each epoch
    (the HAIL-style mobile-adversary model the paper cites).
    Corrupted servers receive arbitrary storage/compute behaviours
    drawn from the attack catalogue. *)

type corruption = {
  storage : Sc_storage.Server.behaviour;
  compute : Sc_compute.Executor.behaviour;
}

type t

val create :
  drbg:Sc_hash.Drbg.t ->
  bound:int ->
  server_ids:string list ->
  ?catalogue:corruption list ->
  unit ->
  t
(** @raise Invalid_argument if [bound] exceeds the server count.
    The default catalogue covers every attack of §III-B. *)

val default_catalogue : corruption list

val new_epoch : t -> unit
(** Re-sample the corrupted set and their behaviours. *)

val corruption_of : t -> string -> corruption option
(** [None] means the server is honest this epoch. *)

val corrupted : t -> string list
val epoch : t -> int
