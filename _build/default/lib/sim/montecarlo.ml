type result = { trials : int; survived : int; rate : float; predicted : float }

let bernoulli drbg p = Sc_hash.Drbg.float drbg < p

(* One sampled sub-task survives scrutiny under the FCS game. *)
let fcs_sample_survives drbg ~csc ~range =
  if bernoulli drbg csc then true
  else if range = infinity then false
  else bernoulli drbg (1.0 /. range)

let pcs_sample_survives drbg ~ssc ~sig_forge =
  if bernoulli drbg ssc then true else bernoulli drbg sig_forge

let run_trials drbg ~t ~trials ~predicted sample_survives =
  let survived = ref 0 in
  for _ = 1 to trials do
    let rec all_pass k = k = 0 || (sample_survives drbg && all_pass (k - 1)) in
    if all_pass t then incr survived
  done;
  {
    trials;
    survived = !survived;
    rate = float_of_int !survived /. float_of_int trials;
    predicted;
  }

let fcs_experiment ~drbg ~csc ~range ~t ~trials =
  run_trials drbg ~t ~trials
    ~predicted:(Sc_audit.Sampling.pr_fcs ~csc ~range ~t)
    (fun d -> fcs_sample_survives d ~csc ~range)

let pcs_experiment ~drbg ~ssc ~sig_forge ~t ~trials =
  run_trials drbg ~t ~trials
    ~predicted:(Sc_audit.Sampling.pr_pcs ~ssc ~sig_forge ~t)
    (fun d -> pcs_sample_survives d ~ssc ~sig_forge)

let combined_experiment ~drbg ~csc ~ssc ~range ~sig_forge ~t ~trials =
  let predicted = Sc_audit.Sampling.pr_cheat ~csc ~ssc ~range ~sig_forge ~t in
  let survived = ref 0 in
  for _ = 1 to trials do
    (* The adversary mounts one of the two attacks per audit; eq. (14)
       upper-bounds the union, so we play both and count survival of
       either. *)
    let rec fcs_pass k = k = 0 || (fcs_sample_survives drbg ~csc ~range && fcs_pass (k - 1)) in
    let rec pcs_pass k =
      k = 0 || (pcs_sample_survives drbg ~ssc ~sig_forge && pcs_pass (k - 1))
    in
    if fcs_pass t || pcs_pass t then incr survived
  done;
  {
    trials;
    survived = !survived;
    rate = float_of_int !survived /. float_of_int trials;
    predicted;
  }
