(** Monte-Carlo validation of the §VII-A sampling analysis.

    These experiments simulate the *abstract* cheating game (no
    cryptography, millions of trials are cheap) so the empirical
    survival rates can be compared against the closed forms of
    eqs. (10)–(14).  The full-crypto pipeline is exercised separately
    by {!Engine}. *)

type result = {
  trials : int;
  survived : int; (* cheater escaped all t samples *)
  rate : float;
  predicted : float; (* the closed-form value *)
}

val fcs_experiment :
  drbg:Sc_hash.Drbg.t ->
  csc:float ->
  range:float ->
  t:int ->
  trials:int ->
  result
(** The server guesses uncomputed results from a range of size
    [range]; a sampled guess survives with probability 1/range. *)

val pcs_experiment :
  drbg:Sc_hash.Drbg.t ->
  ssc:float ->
  sig_forge:float ->
  t:int ->
  trials:int ->
  result
(** The server serves wrong-position data and must forge a signature
    to survive a sample. *)

val combined_experiment :
  drbg:Sc_hash.Drbg.t ->
  csc:float ->
  ssc:float ->
  range:float ->
  sig_forge:float ->
  t:int ->
  trials:int ->
  result
(** The adversary plays whichever attack (FCS or PCS) it drew; the
    prediction is eq. (14)'s sum. *)
