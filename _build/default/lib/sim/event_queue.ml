(* Binary min-heap on (time, seq) keys; seq breaks ties FIFO. *)

type entry = { time : float; seq : int; action : unit -> unit }

type t = {
  mutable heap : entry array;
  mutable size : int;
  mutable clock : float;
  mutable next_seq : int;
}

let dummy = { time = 0.0; seq = 0; action = ignore }
let create () = { heap = Array.make 64 dummy; size = 0; clock = 0.0; next_seq = 0 }
let now t = t.clock

let lt a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

let grow t =
  if t.size = Array.length t.heap then begin
    let bigger = Array.make (2 * t.size) dummy in
    Array.blit t.heap 0 bigger 0 t.size;
    t.heap <- bigger
  end

let push t entry =
  grow t;
  t.heap.(t.size) <- entry;
  t.size <- t.size + 1;
  let rec up i =
    if i > 0 then begin
      let parent = (i - 1) / 2 in
      if lt t.heap.(i) t.heap.(parent) then begin
        let tmp = t.heap.(i) in
        t.heap.(i) <- t.heap.(parent);
        t.heap.(parent) <- tmp;
        up parent
      end
    end
  in
  up (t.size - 1)

let pop t =
  if t.size = 0 then None
  else begin
    let top = t.heap.(0) in
    t.size <- t.size - 1;
    t.heap.(0) <- t.heap.(t.size);
    t.heap.(t.size) <- dummy;
    let rec down i =
      let l = (2 * i) + 1 and r = (2 * i) + 2 in
      let smallest = ref i in
      if l < t.size && lt t.heap.(l) t.heap.(!smallest) then smallest := l;
      if r < t.size && lt t.heap.(r) t.heap.(!smallest) then smallest := r;
      if !smallest <> i then begin
        let tmp = t.heap.(i) in
        t.heap.(i) <- t.heap.(!smallest);
        t.heap.(!smallest) <- tmp;
        down !smallest
      end
    in
    down 0;
    Some top
  end

let schedule_at t ~time action =
  if time < t.clock then invalid_arg "Event_queue.schedule_at: time in the past";
  push t { time; seq = t.next_seq; action };
  t.next_seq <- t.next_seq + 1

let schedule t ~delay action =
  if delay < 0.0 then invalid_arg "Event_queue.schedule: negative delay";
  schedule_at t ~time:(t.clock +. delay) action

let run ?(until = infinity) t =
  let rec loop () =
    match pop t with
    | None -> ()
    | Some entry ->
      if entry.time > until then begin
        (* Put it back; the caller may resume later. *)
        push t entry
      end
      else begin
        t.clock <- entry.time;
        entry.action ();
        loop ()
      end
  in
  loop ()

let pending t = t.size
