(** A discrete-event scheduler: a virtual clock and a time-ordered
    queue of thunks.  Events scheduled at equal times fire in
    insertion order. *)

type t

val create : unit -> t
val now : t -> float

val schedule : t -> delay:float -> (unit -> unit) -> unit
(** @raise Invalid_argument on negative delays. *)

val schedule_at : t -> time:float -> (unit -> unit) -> unit
(** @raise Invalid_argument for times in the past. *)

val run : ?until:float -> t -> unit
(** Drains the queue (or stops once the clock would pass [until],
    leaving later events pending). *)

val pending : t -> int
