type config = {
  latency_s : float;
  bandwidth_bytes_per_s : float;
  cost_per_byte : float;
}

type t = {
  config : config;
  mutable bytes : int;
  mutable cost : float;
  mutable count : int;
}

let default_config =
  { latency_s = 0.020; bandwidth_bytes_per_s = 100e6; cost_per_byte = 1e-8 }

let create config = { config; bytes = 0; cost = 0.0; count = 0 }

let transfer_time t ~bytes =
  t.config.latency_s +. (float_of_int bytes /. t.config.bandwidth_bytes_per_s)

let transfer_cost t ~bytes = float_of_int bytes *. t.config.cost_per_byte

let record_transfer t ~bytes =
  t.bytes <- t.bytes + bytes;
  t.cost <- t.cost +. transfer_cost t ~bytes;
  t.count <- t.count + 1;
  transfer_time t ~bytes

let total_bytes t = t.bytes
let total_cost t = t.cost
let transfers t = t.count

let reset t =
  t.bytes <- 0;
  t.cost <- 0.0;
  t.count <- 0
