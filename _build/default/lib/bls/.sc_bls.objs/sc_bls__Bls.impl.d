lib/bls/bls.ml: Curve List Nat Sc_bignum Sc_ec Sc_pairing String
