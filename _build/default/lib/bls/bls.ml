open Sc_bignum
open Sc_ec
module Params = Sc_pairing.Params
module Tate = Sc_pairing.Tate
module Hash_g1 = Sc_pairing.Hash_g1

type keypair = { x : Nat.t; pk : Curve.point }

let generate (prm : Params.t) ~bytes_source =
  let x = Params.random_scalar prm ~bytes_source in
  { x; pk = Params.mul_g prm x }

let hash_msg prm msg = Hash_g1.hash_to_point prm ("bls:" ^ msg)
let sign (prm : Params.t) kp msg = Curve.mul prm.curve kp.x (hash_msg prm msg)

let verify (prm : Params.t) pk msg sigma =
  Curve.on_curve prm.curve sigma
  && Tate.gt_equal
       (Tate.pairing prm sigma prm.g)
       (Tate.pairing prm (hash_msg prm msg) pk)

let aggregate (prm : Params.t) sigmas =
  List.fold_left (Curve.add prm.curve) Curve.infinity sigmas

let verify_aggregate (prm : Params.t) entries sigma =
  let msgs = List.map snd entries in
  let distinct = List.length (List.sort_uniq String.compare msgs) = List.length msgs in
  distinct
  && Curve.on_curve prm.curve sigma
  &&
  let lhs = Tate.pairing prm sigma prm.g in
  let rhs =
    List.fold_left
      (fun acc (pk, msg) ->
        Tate.gt_mul prm acc (Tate.pairing prm (hash_msg prm msg) pk))
      Tate.gt_one entries
  in
  Tate.gt_equal lhs rhs
