(** BLS short signatures and BGLS aggregation — the "BGLS" row of
    Table II, and the signature substrate of the Wang-et-al.-style
    auditing baselines compared against in Figure 5.

    - sign:   σ = x·H(m) ∈ G1
    - verify: ê(σ, P) = ê(H(m), X) where X = x·P
    - BGLS:   ê(Σσ_i, P) = Π ê(H(m_i), X_i)  — (n+1) pairings for n
      signatures (vs 2n individually). *)

open Sc_bignum
open Sc_ec

type keypair = { x : Nat.t; pk : Curve.point }

val generate : Sc_pairing.Params.t -> bytes_source:(int -> string) -> keypair
val hash_msg : Sc_pairing.Params.t -> string -> Curve.point
val sign : Sc_pairing.Params.t -> keypair -> string -> Curve.point
val verify : Sc_pairing.Params.t -> Curve.point -> string -> Curve.point -> bool

val aggregate : Sc_pairing.Params.t -> Curve.point list -> Curve.point

val verify_aggregate :
  Sc_pairing.Params.t ->
  (Curve.point * string) list ->
  Curve.point ->
  bool
(** [verify_aggregate prm [(pk_i, m_i); ...] sigma] checks the BGLS
    equation.  Messages must be distinct for security; this is
    enforced. *)
