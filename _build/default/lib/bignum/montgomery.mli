(** Montgomery multiplication (REDC) for odd moduli.

    Operands are kept in the Montgomery domain (a·R mod m with
    R = B^k, B = 2^26, k the limb count of m), where a modular
    multiplication costs one fused multiply-reduce instead of a
    multiplication plus a Barrett reduction.  Used by
    {!Modular.pow}-style exponentiation ladders; see {!pow} for a
    drop-in entry point. *)

type ctx

val create : Nat.t -> ctx
(** @raise Invalid_argument unless the modulus is odd and ≥ 3. *)

val modulus : ctx -> Nat.t

type mont
(** A residue in the Montgomery domain. *)

val to_mont : ctx -> Nat.t -> mont
(** Reduces its argument modulo m first, so any natural is accepted. *)

val of_mont : ctx -> mont -> Nat.t

val one : ctx -> mont
(** R mod m, the domain image of 1. *)

val mul : ctx -> mont -> mont -> mont
val sqr : ctx -> mont -> mont

val pow : ctx -> Nat.t -> Nat.t -> Nat.t
(** [pow ctx b e] = b^e mod m, entirely inside the Montgomery domain.
    Functionally identical to {!Modular.pow} for odd moduli. *)
