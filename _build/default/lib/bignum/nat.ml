(* Little-endian limbs in native ints.  Base 2^26 keeps limb products
   (< 2^52) and a full column of carries well inside the 63-bit native
   range, so the schoolbook loops below never overflow. *)

let base_bits = 26
let base = 1 lsl base_bits
let limb_mask = base - 1

type t = int array

let zero : t = [||]
let one : t = [| 1 |]
let two : t = [| 2 |]

let is_zero a = Array.length a = 0
let is_one a = Array.length a = 1 && a.(0) = 1
let is_even a = Array.length a = 0 || a.(0) land 1 = 0
let num_limbs = Array.length

(* Strip high zero limbs; every constructor must return through here. *)
let normalize (a : int array) : t =
  let n = Array.length a in
  let rec top i = if i >= 0 && a.(i) = 0 then top (i - 1) else i in
  let hi = top (n - 1) in
  if hi = n - 1 then a else Array.sub a 0 (hi + 1)

let of_int n =
  if n < 0 then invalid_arg "Nat.of_int: negative";
  if n = 0 then zero
  else begin
    let rec count acc n = if n = 0 then acc else count (acc + 1) (n lsr base_bits) in
    let len = count 0 n in
    let a = Array.make len 0 in
    let rec fill i n =
      if n <> 0 then begin
        a.(i) <- n land limb_mask;
        fill (i + 1) (n lsr base_bits)
      end
    in
    fill 0 n;
    a
  end

let to_int_opt a =
  let n = Array.length a in
  if n = 0 then Some 0
  else begin
    let rec width acc v = if v = 0 then acc else width (acc + 1) (v lsr 1) in
    let bits = ((n - 1) * base_bits) + width 0 a.(n - 1) in
    if bits > 62 then None
    else begin
      let acc = ref 0 in
      for i = n - 1 downto 0 do
        acc := (!acc lsl base_bits) lor a.(i)
      done;
      Some !acc
    end
  end

let to_int_exn a =
  match to_int_opt a with
  | Some i -> i
  | None -> failwith "Nat.to_int_exn: out of int range"

let compare a b =
  let la = Array.length a and lb = Array.length b in
  if la <> lb then Stdlib.compare la lb
  else begin
    let rec go i =
      if i < 0 then 0
      else if a.(i) <> b.(i) then Stdlib.compare a.(i) b.(i)
      else go (i - 1)
    in
    go (la - 1)
  end

let equal a b = compare a b = 0

let add a b =
  let la = Array.length a and lb = Array.length b in
  let lo, hi, llo, lhi = if la <= lb then a, b, la, lb else b, a, lb, la in
  let r = Array.make (lhi + 1) 0 in
  let carry = ref 0 in
  for i = 0 to llo - 1 do
    let s = lo.(i) + hi.(i) + !carry in
    r.(i) <- s land limb_mask;
    carry := s lsr base_bits
  done;
  for i = llo to lhi - 1 do
    let s = hi.(i) + !carry in
    r.(i) <- s land limb_mask;
    carry := s lsr base_bits
  done;
  r.(lhi) <- !carry;
  normalize r

let sub a b =
  if compare a b < 0 then invalid_arg "Nat.sub: negative result";
  let la = Array.length a and lb = Array.length b in
  let r = Array.make la 0 in
  let borrow = ref 0 in
  for i = 0 to la - 1 do
    let bi = if i < lb then b.(i) else 0 in
    let d = a.(i) - bi - !borrow in
    if d < 0 then begin
      r.(i) <- d + base;
      borrow := 1
    end else begin
      r.(i) <- d;
      borrow := 0
    end
  done;
  normalize r

let add_int a k =
  if k < 0 then sub a (of_int (-k)) else add a (of_int k)

let sub_int a k =
  if k < 0 then add a (of_int (-k)) else sub a (of_int k)

let mul_int a k =
  if k < 0 || k >= base then invalid_arg "Nat.mul_int: factor out of range";
  if k = 0 || is_zero a then zero
  else begin
    let la = Array.length a in
    let r = Array.make (la + 1) 0 in
    let carry = ref 0 in
    for i = 0 to la - 1 do
      let p = (a.(i) * k) + !carry in
      r.(i) <- p land limb_mask;
      carry := p lsr base_bits
    done;
    r.(la) <- !carry;
    normalize r
  end

let mul_school a b =
  let la = Array.length a and lb = Array.length b in
  if la = 0 || lb = 0 then zero
  else begin
    let r = Array.make (la + lb) 0 in
    for i = 0 to la - 1 do
      let ai = a.(i) in
      if ai <> 0 then begin
        let carry = ref 0 in
        for j = 0 to lb - 1 do
          let p = r.(i + j) + (ai * b.(j)) + !carry in
          r.(i + j) <- p land limb_mask;
          carry := p lsr base_bits
        done;
        r.(i + lb) <- r.(i + lb) + !carry
      end
    done;
    normalize r
  end

let karatsuba_threshold = 24

(* Split a number at limb index [k] into (low, high). *)
let split_at a k =
  let la = Array.length a in
  if la <= k then a, zero
  else normalize (Array.sub a 0 k), normalize (Array.sub a k (la - k))

let shift_limbs a k =
  if is_zero a || k = 0 then a
  else begin
    let la = Array.length a in
    let r = Array.make (la + k) 0 in
    Array.blit a 0 r k la;
    r
  end

let rec mul a b =
  let la = Array.length a and lb = Array.length b in
  if la < karatsuba_threshold || lb < karatsuba_threshold then mul_school a b
  else begin
    let k = (max la lb + 1) / 2 in
    let a0, a1 = split_at a k and b0, b1 = split_at b k in
    let z0 = mul a0 b0 in
    let z2 = mul a1 b1 in
    let z1 = sub (mul (add a0 a1) (add b0 b1)) (add z0 z2) in
    add z0 (add (shift_limbs z1 k) (shift_limbs z2 (2 * k)))
  end

let sqr a = mul a a

let shift_left a bits =
  if bits < 0 then invalid_arg "Nat.shift_left";
  if bits = 0 || is_zero a then a
  else begin
    let limbs = bits / base_bits and rem_bits = bits mod base_bits in
    let la = Array.length a in
    let r = Array.make (la + limbs + 1) 0 in
    let carry = ref 0 in
    for i = 0 to la - 1 do
      let v = (a.(i) lsl rem_bits) lor !carry in
      r.(i + limbs) <- v land limb_mask;
      carry := v lsr base_bits
    done;
    r.(la + limbs) <- !carry;
    normalize r
  end

let shift_right a bits =
  if bits < 0 then invalid_arg "Nat.shift_right";
  if bits = 0 || is_zero a then a
  else begin
    let limbs = bits / base_bits and rem_bits = bits mod base_bits in
    let la = Array.length a in
    if limbs >= la then zero
    else begin
      let len = la - limbs in
      let r = Array.make len 0 in
      for i = 0 to len - 1 do
        let lo = a.(i + limbs) lsr rem_bits in
        let hi =
          if rem_bits = 0 || i + limbs + 1 >= la then 0
          else (a.(i + limbs + 1) lsl (base_bits - rem_bits)) land limb_mask
        in
        r.(i) <- lo lor hi
      done;
      normalize r
    end
  end

let bit_length a =
  let la = Array.length a in
  if la = 0 then 0
  else begin
    let rec width acc v = if v = 0 then acc else width (acc + 1) (v lsr 1) in
    ((la - 1) * base_bits) + width 0 a.(la - 1)
  end

let test_bit a i =
  let limb = i / base_bits and off = i mod base_bits in
  limb < Array.length a && (a.(limb) lsr off) land 1 = 1

(* Division by a single limb; returns (quotient, remainder). *)
let divmod_limb a d =
  if d = 0 then raise Division_by_zero;
  let la = Array.length a in
  let q = Array.make la 0 in
  let r = ref 0 in
  for i = la - 1 downto 0 do
    let cur = (!r lsl base_bits) lor a.(i) in
    q.(i) <- cur / d;
    r := cur mod d
  done;
  normalize q, !r

(* Knuth Algorithm D (TAOCP vol. 2, 4.3.1) on 26-bit limbs.  The
   divisor is shifted so its top limb has the high bit set, which
   bounds the trial-quotient correction loop to at most two passes. *)
let divmod_knuth a b =
  let n = Array.length b in
  let shift =
    let rec width acc v = if v = 0 then acc else width (acc + 1) (v lsr 1) in
    base_bits - width 0 b.(n - 1)
  in
  let u_full = shift_left a shift in
  let v = shift_left b shift in
  let m = Array.length u_full - n in
  (* Working copy with one extra high limb. *)
  let u = Array.make (Array.length u_full + 1) 0 in
  Array.blit u_full 0 u 0 (Array.length u_full);
  let q = Array.make (m + 1) 0 in
  let vh = v.(n - 1) and vl = v.(n - 2) in
  for j = m downto 0 do
    let top = (u.(j + n) lsl base_bits) lor u.(j + n - 1) in
    let qhat = ref (top / vh) and rhat = ref (top mod vh) in
    let continue = ref true in
    while !continue do
      if !qhat >= base || !qhat * vl > (!rhat lsl base_bits) lor u.(j + n - 2)
      then begin
        decr qhat;
        rhat := !rhat + vh;
        if !rhat >= base then continue := false
      end
      else continue := false
    done;
    (* Multiply-subtract u[j..j+n] -= qhat * v. *)
    let carry = ref 0 and borrow = ref 0 in
    for i = 0 to n - 1 do
      let p = (!qhat * v.(i)) + !carry in
      carry := p lsr base_bits;
      let d = u.(i + j) - (p land limb_mask) - !borrow in
      if d < 0 then begin
        u.(i + j) <- d + base;
        borrow := 1
      end else begin
        u.(i + j) <- d;
        borrow := 0
      end
    done;
    let d = u.(j + n) - !carry - !borrow in
    if d < 0 then begin
      (* qhat was one too large: add the divisor back. *)
      u.(j + n) <- (d + base) land limb_mask;
      decr qhat;
      let c = ref 0 in
      for i = 0 to n - 1 do
        let s = u.(i + j) + v.(i) + !c in
        u.(i + j) <- s land limb_mask;
        c := s lsr base_bits
      done;
      u.(j + n) <- (u.(j + n) + !c) land limb_mask
    end
    else u.(j + n) <- d;
    q.(j) <- !qhat
  done;
  let r = normalize (Array.sub u 0 n) in
  normalize q, shift_right r shift

let divmod a b =
  if is_zero b then raise Division_by_zero;
  if compare a b < 0 then zero, a
  else if Array.length b = 1 then begin
    let q, r = divmod_limb a b.(0) in
    q, of_int r
  end
  else divmod_knuth a b

let div a b = fst (divmod a b)
let rem a b = snd (divmod a b)

let rem_int a d =
  if d <= 0 then invalid_arg "Nat.rem_int: non-positive divisor";
  if d < base then snd (divmod_limb a d)
  else to_int_exn (rem a (of_int d))

let pow a k =
  if k < 0 then invalid_arg "Nat.pow: negative exponent";
  let rec go acc b k =
    if k = 0 then acc
    else begin
      let acc = if k land 1 = 1 then mul acc b else acc in
      go acc (sqr b) (k lsr 1)
    end
  in
  go one a k

let hex_digit c =
  match c with
  | '0' .. '9' -> Char.code c - Char.code '0'
  | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
  | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
  | _ -> invalid_arg "Nat.of_hex: invalid character"

let of_hex s =
  let s =
    if String.length s >= 2 && s.[0] = '0' && (s.[1] = 'x' || s.[1] = 'X')
    then String.sub s 2 (String.length s - 2)
    else s
  in
  let acc = ref zero in
  String.iter
    (fun c ->
      if c <> '_' then acc := add_int (shift_left !acc 4) (hex_digit c))
    s;
  !acc

let to_hex a =
  if is_zero a then "0"
  else begin
    let nibbles = (bit_length a + 3) / 4 in
    let buf = Buffer.create nibbles in
    for i = nibbles - 1 downto 0 do
      let limb = (i * 4) / base_bits and off = (i * 4) mod base_bits in
      let v =
        let lo = a.(limb) lsr off in
        let hi =
          if off > base_bits - 4 && limb + 1 < Array.length a
          then a.(limb + 1) lsl (base_bits - off)
          else 0
        in
        (lo lor hi) land 0xF
      in
      Buffer.add_char buf "0123456789abcdef".[v]
    done;
    (* Strip a possible leading zero nibble. *)
    let s = Buffer.contents buf in
    if String.length s > 1 && s.[0] = '0'
    then String.sub s 1 (String.length s - 1)
    else s
  end

let of_decimal s =
  if String.length s = 0 then invalid_arg "Nat.of_decimal: empty";
  let acc = ref zero in
  String.iter
    (fun c ->
      if c <> '_' then begin
        match c with
        | '0' .. '9' ->
          acc := add_int (mul_int !acc 10) (Char.code c - Char.code '0')
        | _ -> invalid_arg "Nat.of_decimal: invalid character"
      end)
    s;
  !acc

let to_decimal a =
  if is_zero a then "0"
  else begin
    (* Peel 7 decimal digits at a time (10^7 < 2^26 is a valid limb
       divisor). *)
    let chunk = 10_000_000 in
    let rec peel acc a =
      if is_zero a then acc
      else begin
        let q, r = divmod_limb a chunk in
        peel ((q, r) :: acc) q
      end
    in
    match peel [] a with
    | [] -> "0"
    | (_, first) :: rest ->
      let buf = Buffer.create 32 in
      Buffer.add_string buf (string_of_int first);
      List.iter (fun (_, r) -> Buffer.add_string buf (Printf.sprintf "%07d" r)) rest;
      Buffer.contents buf
  end

let of_bytes_be s =
  let acc = ref zero in
  String.iter (fun c -> acc := add_int (shift_left !acc 8) (Char.code c)) s;
  !acc

let to_bytes_be ?len a =
  let needed = (bit_length a + 7) / 8 in
  let needed = max needed 1 in
  let out_len =
    match len with
    | None -> needed
    | Some l ->
      if l < needed then invalid_arg "Nat.to_bytes_be: value too large for len";
      l
  in
  let b = Bytes.make out_len '\000' in
  let rec fill a i =
    if not (is_zero a) && i >= 0 then begin
      Bytes.set b i (Char.chr (a.(0) land 0xFF));
      fill (shift_right a 8) (i - 1)
    end
  in
  fill a (out_len - 1);
  Bytes.to_string b

let random ~bytes_source ~bits =
  if bits <= 0 then zero
  else begin
    let nbytes = (bits + 7) / 8 in
    let s = bytes_source nbytes in
    let extra = (nbytes * 8) - bits in
    shift_right (of_bytes_be s) extra
  end

let random_below ~bytes_source n =
  if is_zero n then invalid_arg "Nat.random_below: zero bound";
  let bits = bit_length n in
  let rec try_draw () =
    let candidate = random ~bytes_source ~bits in
    if compare candidate n < 0 then candidate else try_draw ()
  in
  try_draw ()

let to_limbs a = Array.copy a

let of_limbs limbs =
  Array.iter
    (fun l ->
      if l < 0 || l >= base then invalid_arg "Nat.of_limbs: limb out of range")
    limbs;
  normalize (Array.copy limbs)

let pp fmt a = Format.pp_print_string fmt (to_decimal a)
