type t = { sign : int; mag : Nat.t }

(* Invariant: sign is +1 or -1, and sign = +1 whenever mag is zero. *)

let make sign mag = if Nat.is_zero mag then { sign = 1; mag } else { sign; mag }

let zero = { sign = 1; mag = Nat.zero }
let one = { sign = 1; mag = Nat.one }
let minus_one = { sign = -1; mag = Nat.one }

let of_nat mag = { sign = 1; mag }

let of_int n =
  if n >= 0 then { sign = 1; mag = Nat.of_int n }
  else { sign = -1; mag = Nat.of_int (-n) }

let to_nat_exn a =
  if a.sign < 0 then invalid_arg "Signed.to_nat_exn: negative" else a.mag

let neg a = make (-a.sign) a.mag
let abs a = a.mag
let sign a = if Nat.is_zero a.mag then 0 else a.sign
let is_zero a = Nat.is_zero a.mag

let add a b =
  if a.sign = b.sign then make a.sign (Nat.add a.mag b.mag)
  else begin
    let c = Nat.compare a.mag b.mag in
    if c = 0 then zero
    else if c > 0 then make a.sign (Nat.sub a.mag b.mag)
    else make b.sign (Nat.sub b.mag a.mag)
  end

let sub a b = add a (neg b)
let mul a b = make (a.sign * b.sign) (Nat.mul a.mag b.mag)
let mul_nat a n = make a.sign (Nat.mul a.mag n)

let equal a b = sign a = sign b && Nat.equal a.mag b.mag

let compare a b =
  match sign a, sign b with
  | sa, sb when sa <> sb -> Stdlib.compare sa sb
  | -1, _ -> Nat.compare b.mag a.mag
  | _, _ -> Nat.compare a.mag b.mag

let pp fmt a =
  if sign a < 0 then Format.pp_print_char fmt '-';
  Nat.pp fmt a.mag
