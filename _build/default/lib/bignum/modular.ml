type ctx = {
  m : Nat.t;
  k : int; (* limb count of m *)
  mu : Nat.t; (* floor(B^(2k) / m), B = 2^26 *)
  bk1_bits : int; (* (k+1) * 26, for truncations mod B^(k+1) *)
}

let limb_bits = Nat.base_bits

let create m =
  if Nat.compare m Nat.two < 0 then invalid_arg "Modular.create: modulus < 2";
  let k = Nat.num_limbs m in
  let b2k = Nat.shift_left Nat.one (2 * k * limb_bits) in
  let mu = Nat.div b2k m in
  { m; k; mu; bk1_bits = (k + 1) * limb_bits }

let modulus ctx = ctx.m

(* Keep the low (k+1) limbs of [x]. *)
let trunc ctx x =
  let hi = Nat.shift_right x ctx.bk1_bits in
  if Nat.is_zero hi then x else Nat.sub x (Nat.shift_left hi ctx.bk1_bits)

let barrett ctx x =
  let q1 = Nat.shift_right x ((ctx.k - 1) * limb_bits) in
  let q3 = Nat.shift_right (Nat.mul q1 ctx.mu) ((ctx.k + 1) * limb_bits) in
  let r1 = trunc ctx x in
  let r2 = trunc ctx (Nat.mul q3 ctx.m) in
  let r =
    if Nat.compare r1 r2 >= 0 then Nat.sub r1 r2
    else Nat.sub (Nat.add r1 (Nat.shift_left Nat.one ctx.bk1_bits)) r2
  in
  let rec fixup r =
    if Nat.compare r ctx.m >= 0 then fixup (Nat.sub r ctx.m) else r
  in
  fixup r

let reduce ctx x =
  if Nat.compare x ctx.m < 0 then x
  else if Nat.num_limbs x <= 2 * ctx.k then barrett ctx x
  else Nat.rem x ctx.m

let add ctx a b =
  let s = Nat.add a b in
  if Nat.compare s ctx.m >= 0 then Nat.sub s ctx.m else s

let sub ctx a b =
  if Nat.compare a b >= 0 then Nat.sub a b else Nat.sub (Nat.add a ctx.m) b

let neg ctx a = if Nat.is_zero a then a else Nat.sub ctx.m a
let mul ctx a b = reduce ctx (Nat.mul a b)
let sqr ctx a = reduce ctx (Nat.sqr a)

let pow ctx b e =
  let b = reduce ctx b in
  let nbits = Nat.bit_length e in
  let rec go acc i =
    if i < 0 then acc
    else begin
      let acc = sqr ctx acc in
      let acc = if Nat.test_bit e i then mul ctx acc b else acc in
      go acc (i - 1)
    end
  in
  if nbits = 0 then reduce ctx Nat.one else go Nat.one (nbits - 1)

let egcd a b =
  (* Iterative extended Euclid maintaining r = a*x + b*y. *)
  let rec go r0 x0 y0 r1 x1 y1 =
    if Nat.is_zero r1 then r0, x0, y0
    else begin
      let q, r2 = Nat.divmod r0 r1 in
      let qs = Signed.of_nat q in
      let x2 = Signed.sub x0 (Signed.mul qs x1) in
      let y2 = Signed.sub y0 (Signed.mul qs y1) in
      go r1 x1 y1 r2 x2 y2
    end
  in
  go a Signed.one Signed.zero b Signed.zero Signed.one

let gcd a b =
  let g, _, _ = egcd a b in
  g

let jacobi a n =
  if Nat.is_zero n || Nat.is_even n then
    invalid_arg "Modular.jacobi: modulus must be odd and positive";
  (* Binary Jacobi: strip twos using the (2|n) rule, then flip by
     quadratic reciprocity and reduce. *)
  let rec go a n acc =
    let a = Nat.rem a n in
    if Nat.is_zero a then if Nat.is_one n then acc else 0
    else begin
      let rec strip a acc =
        if Nat.is_even a then begin
          let acc =
            match Nat.rem_int n 8 with 3 | 5 -> -acc | _ -> acc
          in
          strip (Nat.shift_right a 1) acc
        end
        else a, acc
      in
      let a, acc = strip a acc in
      let acc =
        if Nat.rem_int a 4 = 3 && Nat.rem_int n 4 = 3 then -acc else acc
      in
      go n a acc
    end
  in
  go a n 1

let of_signed ctx s =
  let r = Nat.rem (Signed.abs s) ctx.m in
  if Signed.sign s < 0 then neg ctx r else r

let inv ctx a =
  let a = reduce ctx a in
  if Nat.is_zero a then raise Not_found;
  let g, x, _ = egcd a ctx.m in
  if not (Nat.is_one g) then raise Not_found;
  of_signed ctx x
