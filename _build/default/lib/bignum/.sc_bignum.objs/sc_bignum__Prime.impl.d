lib/bignum/prime.ml: Array List Modular Montgomery Nat
