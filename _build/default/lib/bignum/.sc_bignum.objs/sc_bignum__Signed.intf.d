lib/bignum/signed.mli: Format Nat
