lib/bignum/modular.ml: Nat Signed
