lib/bignum/modular.mli: Nat Signed
