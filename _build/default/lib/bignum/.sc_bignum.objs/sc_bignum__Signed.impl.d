lib/bignum/signed.ml: Format Nat Stdlib
