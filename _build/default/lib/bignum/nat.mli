(** Arbitrary-precision natural numbers.

    Numbers are stored as little-endian arrays of 26-bit limbs hosted
    in native OCaml [int]s, which leaves enough headroom for limb
    products and carry accumulation on 64-bit platforms.  All values
    are normalized: the most significant limb is non-zero and zero is
    the empty array.  The type is immutable from the outside —
    functions never mutate their arguments. *)

type t

val base_bits : int
(** Number of payload bits per limb (26). *)

val zero : t
val one : t
val two : t

val of_int : int -> t
(** [of_int n] converts a non-negative native integer.
    @raise Invalid_argument if [n < 0]. *)

val to_int_opt : t -> int option
(** [to_int_opt n] is [Some i] when [n] fits a native [int]. *)

val to_int_exn : t -> int
(** @raise Failure when the value exceeds native [int] range. *)

val is_zero : t -> bool
val is_one : t -> bool
val is_even : t -> bool

val equal : t -> t -> bool
val compare : t -> t -> int

val add : t -> t -> t
val add_int : t -> int -> t

val sub : t -> t -> t
(** [sub a b] is [a - b].
    @raise Invalid_argument if [b > a]. *)

val sub_int : t -> int -> t

val mul : t -> t -> t
(** Schoolbook multiplication below {!karatsuba_threshold} limbs,
    Karatsuba above. *)

val mul_int : t -> int -> t
(** [mul_int a k] with [0 <= k < 2^26]. *)

val karatsuba_threshold : int

val sqr : t -> t

val divmod : t -> t -> t * t
(** [divmod a b] is [(a / b, a mod b)] (Knuth Algorithm D).
    @raise Division_by_zero if [b] is zero. *)

val div : t -> t -> t
val rem : t -> t -> t
val rem_int : t -> int -> int

val pow : t -> int -> t
(** [pow a k] with small non-negative exponent [k] (no modulus). *)

val shift_left : t -> int -> t
val shift_right : t -> int -> t

val bit_length : t -> int
(** Position of the highest set bit plus one; [bit_length zero = 0]. *)

val test_bit : t -> int -> bool

val num_limbs : t -> int

val to_limbs : t -> int array
(** Low-level: a copy of the little-endian 26-bit limb array
    (empty for zero).  For sibling modules implementing limb-level
    algorithms (e.g. Montgomery REDC). *)

val of_limbs : int array -> t
(** Low-level inverse of {!to_limbs}; the array is copied and
    normalized.  @raise Invalid_argument if any limb is out of
    range. *)

val of_hex : string -> t
(** Parses an optionally [0x]-prefixed, case-insensitive hex string
    which may contain underscores.
    @raise Invalid_argument on other characters. *)

val to_hex : t -> string

val of_decimal : string -> t
(** @raise Invalid_argument on non-digit characters. *)

val to_decimal : t -> string

val of_bytes_be : string -> t
(** Big-endian unsigned byte-string decoding. *)

val to_bytes_be : ?len:int -> t -> string
(** Big-endian encoding; left-padded with zero bytes to [len] when
    given.  @raise Invalid_argument if the value needs more than [len]
    bytes. *)

val random : bytes_source:(int -> string) -> bits:int -> t
(** Uniform in [\[0, 2^bits)], consuming bytes from [bytes_source]. *)

val random_below : bytes_source:(int -> string) -> t -> t
(** Uniform in [\[0, n)] by rejection sampling.
    @raise Invalid_argument if [n] is zero. *)

val pp : Format.formatter -> t -> unit
(** Prints in decimal. *)
