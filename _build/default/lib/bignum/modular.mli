(** Modular arithmetic over {!Nat} with a precomputed Barrett context.

    A {!ctx} caches the reciprocal [mu = floor(B^2k / m)] so that
    reductions of products cost two multiplications instead of a full
    division.  All functions expect canonical residues (values below
    the modulus) unless stated otherwise. *)

type ctx

val create : Nat.t -> ctx
(** @raise Invalid_argument if the modulus is zero or one. *)

val modulus : ctx -> Nat.t

val reduce : ctx -> Nat.t -> Nat.t
(** Full reduction of any natural (falls back to division when the
    argument exceeds the Barrett range [B^2k]). *)

val add : ctx -> Nat.t -> Nat.t -> Nat.t
val sub : ctx -> Nat.t -> Nat.t -> Nat.t
val neg : ctx -> Nat.t -> Nat.t
val mul : ctx -> Nat.t -> Nat.t -> Nat.t
val sqr : ctx -> Nat.t -> Nat.t

val pow : ctx -> Nat.t -> Nat.t -> Nat.t
(** [pow ctx b e] is [b^e mod m] by left-to-right binary
    exponentiation. *)

val egcd : Nat.t -> Nat.t -> Nat.t * Signed.t * Signed.t
(** [egcd a b = (g, x, y)] with [a*x + b*y = g = gcd(a, b)]. *)

val gcd : Nat.t -> Nat.t -> Nat.t

val jacobi : Nat.t -> Nat.t -> int
(** [jacobi a n] for odd positive [n]: the Jacobi symbol (a|n) ∈
    {-1, 0, 1} by the binary reciprocity algorithm — for prime [n]
    this is the Legendre symbol, computed far faster than by Euler's
    criterion.  @raise Invalid_argument when [n] is even or zero. *)

val inv : ctx -> Nat.t -> Nat.t
(** Modular inverse.
    @raise Not_found when the argument is not invertible. *)

val of_signed : ctx -> Signed.t -> Nat.t
(** Canonical residue of a signed integer. *)
