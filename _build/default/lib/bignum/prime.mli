(** Primality testing and prime generation.

    Randomness is supplied externally as a [bytes_source : int ->
    string] function (e.g. an HMAC-DRBG), keeping this library free of
    entropy dependencies and making generation reproducible. *)

val small_primes : int array
(** The primes below 10_000, used for trial-division prefiltering. *)

val is_probably_prime :
  ?rounds:int -> bytes_source:(int -> string) -> Nat.t -> bool
(** Miller–Rabin with [rounds] random bases (default 32) after trial
    division by {!small_primes}. *)

val next_prime : bytes_source:(int -> string) -> Nat.t -> Nat.t
(** Smallest probable prime greater than or equal to the argument. *)

val random_prime : bytes_source:(int -> string) -> bits:int -> Nat.t
(** A random probable prime with exactly [bits] bits (top bit set).
    @raise Invalid_argument when [bits < 2]. *)
