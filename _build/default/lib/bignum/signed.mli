(** Signed arbitrary-precision integers (sign + magnitude over
    {!Nat}).  A thin layer used mainly by the extended Euclidean
    algorithm; zero always carries a positive sign. *)

type t

val zero : t
val one : t
val minus_one : t

val of_nat : Nat.t -> t
val of_int : int -> t

val to_nat_exn : t -> Nat.t
(** @raise Invalid_argument on negative values. *)

val neg : t -> t
val abs : t -> Nat.t
val sign : t -> int
(** [-1], [0] or [1]. *)

val is_zero : t -> bool
val equal : t -> t -> bool
val compare : t -> t -> int

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val mul_nat : t -> Nat.t -> t

val pp : Format.formatter -> t -> unit
