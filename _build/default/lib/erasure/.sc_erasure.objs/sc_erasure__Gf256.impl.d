lib/erasure/gf256.ml: Array
