lib/erasure/reed_solomon.ml: Array Bytes Char Gf256 List String
