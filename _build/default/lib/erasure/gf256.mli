(** The finite field GF(2⁸) with the AES reduction polynomial
    x⁸ + x⁴ + x³ + x + 1 (0x11B), via exp/log tables on the generator
    0x03.  Elements are ints in [0, 255]. *)

val add : int -> int -> int
(** Addition = XOR (characteristic 2). *)

val sub : int -> int -> int
(** Same as {!add}. *)

val mul : int -> int -> int

val inv : int -> int
(** @raise Division_by_zero on 0. *)

val div : int -> int -> int
val pow : int -> int -> int

val exp : int -> int
(** Generator power table: [exp i] = 3^i (i taken mod 255). *)

val log : int -> int
(** Discrete log base 3; @raise Invalid_argument on 0. *)
