type params = { k : int; n : int }

let create ~k ~n =
  if k < 1 || n < k || n > 255 then
    invalid_arg "Reed_solomon.create: need 1 <= k <= n <= 255";
  { k; n }

(* Evaluation point for shard j: α^j (j < 255, all distinct). *)
let point j = Gf256.exp j

(* Horner evaluation of the stripe polynomial. *)
let eval_poly coeffs x =
  let acc = ref 0 in
  for i = Array.length coeffs - 1 downto 0 do
    acc := Gf256.add (Gf256.mul !acc x) coeffs.(i)
  done;
  !acc

let encode p shards =
  if List.length shards <> p.k then
    invalid_arg "Reed_solomon.encode: expected k shards";
  let shards = Array.of_list shards in
  let len = String.length shards.(0) in
  Array.iter
    (fun s ->
      if String.length s <> len then
        invalid_arg "Reed_solomon.encode: ragged shard lengths")
    shards;
  let out = Array.init p.n (fun _ -> Bytes.create len) in
  let coeffs = Array.make p.k 0 in
  for stripe = 0 to len - 1 do
    for i = 0 to p.k - 1 do
      coeffs.(i) <- Char.code shards.(i).[stripe]
    done;
    for j = 0 to p.n - 1 do
      Bytes.set out.(j) stripe (Char.chr (eval_poly coeffs (point j)))
    done
  done;
  Array.to_list (Array.map Bytes.to_string out)

(* Lagrange interpolation at fixed abscissae: recover all k polynomial
   coefficients from k (x_i, y_i) pairs.  Coefficients of each basis
   polynomial are expanded once per stripe set, which is fine at the
   shard counts this library targets. *)
let decode p survivors =
  let survivors =
    List.sort_uniq (fun (a, _) (b, _) -> compare a b) survivors
  in
  let survivors =
    List.filter (fun (j, _) -> j >= 0 && j < p.n) survivors
  in
  match survivors with
  | [] -> None
  | (_, first) :: _ ->
    let len = String.length first in
    if List.exists (fun (_, s) -> String.length s <> len) survivors then None
    else if List.length survivors < p.k then None
    else begin
      let chosen = Array.of_list (List.filteri (fun i _ -> i < p.k) survivors) in
      let xs = Array.map (fun (j, _) -> point j) chosen in
      (* Precompute the coefficient expansion of each Lagrange basis
         polynomial L_i(x) = Π_{m≠i} (x − x_m) / (x_i − x_m). *)
      let basis =
        Array.init p.k (fun i ->
            (* numerator polynomial coefficients, built incrementally *)
            let num = Array.make p.k 0 in
            num.(0) <- 1;
            let degree = ref 0 in
            Array.iteri
              (fun m xm ->
                if m <> i then begin
                  (* multiply num by (x + xm)  (minus = plus in GF(2^8)) *)
                  for d = !degree + 1 downto 1 do
                    num.(d) <- Gf256.add (if d <= !degree then Gf256.mul num.(d) xm else 0) num.(d - 1)
                  done;
                  num.(0) <- Gf256.mul num.(0) xm;
                  incr degree
                end)
              xs;
            let denom = ref 1 in
            Array.iteri
              (fun m xm -> if m <> i then denom := Gf256.mul !denom (Gf256.add xs.(i) xm))
              xs;
            let dinv = Gf256.inv !denom in
            Array.map (fun c -> Gf256.mul c dinv) num)
      in
      let out = Array.init p.k (fun _ -> Bytes.create len) in
      for stripe = 0 to len - 1 do
        for d = 0 to p.k - 1 do
          let acc = ref 0 in
          Array.iteri
            (fun i (_, shard) ->
              acc := Gf256.add !acc (Gf256.mul (Char.code shard.[stripe]) basis.(i).(d)))
            chosen;
          Bytes.set out.(d) stripe (Char.chr !acc)
        done
      done;
      Some (Array.to_list (Array.map Bytes.to_string out))
    end

let split p data =
  let header = Bytes.create 8 in
  let len = String.length data in
  for i = 0 to 7 do
    Bytes.set header i (Char.chr ((len lsr (8 * (7 - i))) land 0xFF))
  done;
  let payload = Bytes.to_string header ^ data in
  let shard_len = (String.length payload + p.k - 1) / p.k in
  let shard_len = max shard_len 1 in
  List.init p.k (fun i ->
      String.init shard_len (fun j ->
          let pos = (i * shard_len) + j in
          if pos < String.length payload then payload.[pos] else '\000'))

let join _p shards =
  let payload = String.concat "" shards in
  if String.length payload < 8 then None
  else begin
    let len = ref 0 in
    String.iter (fun c -> len := (!len lsl 8) lor Char.code c) (String.sub payload 0 8);
    if !len < 0 || !len > String.length payload - 8 then None
    else Some (String.sub payload 8 !len)
  end

let encode_string p data = encode p (split p data)

let decode_string p survivors =
  match decode p survivors with
  | None -> None
  | Some shards -> join p shards
