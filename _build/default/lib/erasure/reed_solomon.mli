(** Reed–Solomon erasure coding over GF(2⁸).

    A message of k data shards is viewed, stripe by stripe, as the
    coefficients of a degree-(k−1) polynomial; the n code shards hold
    its evaluations at the field points 1, α, α², … (α the generator).
    Any k surviving shards reconstruct the polynomial by Lagrange
    interpolation, so the code tolerates up to n − k erasures — the
    mechanism Proofs of Retrievability [11] rest on. *)

type params = { k : int; n : int }

val create : k:int -> n:int -> params
(** @raise Invalid_argument unless 1 ≤ k ≤ n ≤ 255. *)

val encode : params -> string list -> string list
(** [encode p shards] takes exactly k equal-length data shards and
    returns n code shards of the same length.
    @raise Invalid_argument on wrong count or ragged lengths. *)

val decode : params -> (int * string) list -> string list option
(** [decode p survivors] rebuilds the k data shards from any ≥ k
    surviving (index, shard) pairs; [None] when fewer than k distinct
    valid shards are supplied. *)

val split : params -> string -> string list
(** Pad-and-split a byte string into k equal shards (with an 8-byte
    length header so {!join} can strip padding). *)

val join : params -> string list -> string option
(** Inverse of {!split}; [None] on malformed headers. *)

val encode_string : params -> string -> string list
(** [split] then [encode]. *)

val decode_string : params -> (int * string) list -> string option
(** [decode] then [join]. *)
