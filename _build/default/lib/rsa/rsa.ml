open Sc_bignum

type public = { n : Nat.t; e : Nat.t }
type secret = { pub : public; d : Nat.t }

let e_default = Nat.of_int 65537

let generate ~bytes_source ~bits =
  if bits < 16 then invalid_arg "Rsa.generate: modulus too small";
  let half = bits / 2 in
  let rec keygen () =
    let p = Prime.random_prime ~bytes_source ~bits:half in
    let q = Prime.random_prime ~bytes_source ~bits:(bits - half) in
    if Nat.equal p q then keygen ()
    else begin
      let n = Nat.mul p q in
      let phi = Nat.mul (Nat.sub p Nat.one) (Nat.sub q Nat.one) in
      match Modular.inv (Modular.create phi) e_default with
      | exception Not_found -> keygen ()
      | d -> { pub = { n; e = e_default }; d }
    end
  in
  keygen ()

let fdh pub msg =
  let nbytes = ((Nat.bit_length pub.n + 7) / 8) + 8 in
  let buf = Buffer.create nbytes in
  let block = ref 0 in
  while Buffer.length buf < nbytes do
    Buffer.add_string buf
      (Sc_hash.Sha256.digest_concat [ "rsa-fdh:"; string_of_int !block; ":"; msg ]);
    incr block
  done;
  Nat.rem (Nat.of_bytes_be (Buffer.sub buf 0 nbytes)) pub.n

(* n = p·q is odd, so exponentiation runs in the Montgomery domain. *)
let raw_sign sk m = Montgomery.pow (Montgomery.create sk.pub.n) m sk.d
let raw_verify pub s = Montgomery.pow (Montgomery.create pub.n) s pub.e
let sign sk msg = raw_sign sk (fdh sk.pub msg)
let verify pub msg s = Nat.equal (raw_verify pub s) (fdh pub msg)
