(** RSA with full-domain-hash signatures — the "RSA" row of the
    paper's Table II.  Textbook-structure keygen with Miller–Rabin
    primes and an FDH built by counter-mode expansion of SHA-256. *)

open Sc_bignum

type public = { n : Nat.t; e : Nat.t }
type secret = { pub : public; d : Nat.t }

val generate : bytes_source:(int -> string) -> bits:int -> secret
(** [bits] is the modulus size; e = 65537. *)

val fdh : public -> string -> Nat.t
(** Full-domain hash of a message into Z_n. *)

val sign : secret -> string -> Nat.t
val verify : public -> string -> Nat.t -> bool

val raw_sign : secret -> Nat.t -> Nat.t
(** s = m^d mod n on an already-encoded representative. *)

val raw_verify : public -> Nat.t -> Nat.t
(** s^e mod n. *)
