lib/rsa/rsa.mli: Nat Sc_bignum
