lib/rsa/rsa.ml: Buffer Modular Montgomery Nat Prime Sc_bignum Sc_hash
