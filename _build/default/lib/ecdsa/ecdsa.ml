open Sc_bignum
open Sc_ec
module Params = Sc_pairing.Params
module Hash_g1 = Sc_pairing.Hash_g1

type keypair = { d : Nat.t; q : Curve.point }
type signature = { r : Nat.t; s : Nat.t }

let generate (prm : Params.t) ~bytes_source =
  let d = Params.random_scalar prm ~bytes_source in
  { d; q = Params.mul_g prm d }

let hash_msg prm msg = Hash_g1.hash_to_scalar prm ("ecdsa:" ^ msg)

let sign (prm : Params.t) kp ~bytes_source msg =
  let qmod = Modular.create prm.q in
  let h = hash_msg prm msg in
  let rec attempt () =
    let k = Params.random_scalar prm ~bytes_source in
    match Params.mul_g prm k with
    | Curve.Infinity -> attempt ()
    | Curve.Affine (x, _) ->
      let r = Nat.rem x prm.q in
      if Nat.is_zero r then attempt ()
      else begin
        let kinv = Modular.inv qmod k in
        let s = Modular.mul qmod kinv (Modular.add qmod h (Modular.mul qmod r kp.d)) in
        if Nat.is_zero s then attempt () else { r; s }
      end
  in
  attempt ()

let verify (prm : Params.t) pubkey msg { r; s } =
  let qmod = Modular.create prm.q in
  let in_range v = (not (Nat.is_zero v)) && Nat.compare v prm.q < 0 in
  in_range r && in_range s
  && Curve.on_curve prm.curve pubkey
  && (not (Curve.is_infinity pubkey))
  &&
  let h = hash_msg prm msg in
  match Modular.inv qmod s with
  | exception Not_found -> false
  | sinv ->
    let u1 = Modular.mul qmod h sinv and u2 = Modular.mul qmod r sinv in
    (match
       Curve.add prm.curve (Params.mul_g prm u1)
         (Curve.mul prm.curve u2 pubkey)
     with
    | Curve.Infinity -> false
    | Curve.Affine (x, _) -> Nat.equal (Nat.rem x prm.q) r)
