lib/ecdsa/ecdsa.ml: Curve Modular Nat Sc_bignum Sc_ec Sc_pairing
