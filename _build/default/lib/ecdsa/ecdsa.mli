(** ECDSA over the order-q subgroup of the pairing curve — the
    "ECDSA" row of the paper's Table II.  (Any prime-order
    short-Weierstrass group works; reusing the pairing group keeps the
    comparison on identical field arithmetic.) *)

open Sc_bignum
open Sc_ec

type keypair = { d : Nat.t; q : Curve.point }
type signature = { r : Nat.t; s : Nat.t }

val generate : Sc_pairing.Params.t -> bytes_source:(int -> string) -> keypair

val sign :
  Sc_pairing.Params.t ->
  keypair ->
  bytes_source:(int -> string) ->
  string ->
  signature

val verify : Sc_pairing.Params.t -> Curve.point -> string -> signature -> bool
