(** The outsourced-computation task model (§III-B, §V-C).

    A computing service F = {f_1, …, f_n} is a list of functions, each
    applied to the data block at a position p_i.  Blocks carry integer
    vectors; functions are the paper's examples ("data sum, data
    average, data maximum, or other complicated computations based on
    these") plus polynomial and dot-product forms that compose them. *)

type func =
  | Sum
  | Average  (** Integer average, rounded toward zero. *)
  | Max
  | Min
  | Count
  | Dot of int list
      (** Dot product with a constant vector (shorter side zero-padded). *)
  | Polynomial of int list
      (** p(Σx): coefficients lowest-degree first, evaluated at the
          block sum. *)
  | Compose of func * func list
      (** Outer function applied to the vector of inner results on the
          same block. *)

type request = { func : func; position : int }
(** One sub-task f_i(x_{p_i}). *)

type service = request list

val apply : func -> int list -> int
(** Evaluate on a block payload.  Total: empty payloads yield 0. *)

val eval : func -> Sc_storage.Block.t -> int option
(** Decodes the block payload and applies; [None] if the payload is
    not numeric. *)

val range_estimate : func -> float
(** A coarse |R| estimate: how many outcomes a guessing server
    chooses among (∞ is approximated by [infinity]).  Used by the
    sampling analysis; see eq. (10). *)

val describe : func -> string

val random_service :
  drbg:Sc_hash.Drbg.t -> n_positions:int -> n_tasks:int -> service
(** A workload generator: [n_tasks] random functions over random
    positions in [\[0, n_positions)]. *)
