(** Cloud-side execution of a computing service and the Merkle-tree
    commitment of §V-C2, with injectable computation cheating (the
    Computation-Cheating Model of §III-B).

    The executor reads its inputs through a {!Sc_storage.Server}, so
    storage-level cheating (deleted/corrupted/substituted blocks)
    composes naturally with computation-level cheating. *)

type behaviour =
  | Honest
  | Guess_fraction of float * int
      (** Fraction of sub-tasks answered with a uniform guess from a
          range of the given size instead of computing — the FCS
          attack with |R| = that size. *)
  | Skip_fraction of float
      (** Fraction of sub-tasks skipped; a constant is returned. *)
  | Wrong_position_fraction of float
      (** Fraction computed on a cheaper/different position's data
          while claiming the requested one — the PCS attack. *)
  | Commit_garbage_fraction of float
      (** Commits garbage leaves but answers audits with freshly
          recomputed (correct) values — caught by the root check. *)

type response = {
  task_index : int;
  request : Task.request;
  read : Sc_storage.Server.read_result option; (* data + signature *)
  result : int;
  proof : Sc_merkle.Tree.proof;
}

type execution

val computing_confidence : behaviour -> float
(** The CSC this behaviour induces. *)

val run :
  Sc_ibc.Setup.public ->
  cs_key:Sc_ibc.Setup.identity_key ->
  server:Sc_storage.Server.t ->
  behaviour:behaviour ->
  drbg:Sc_hash.Drbg.t ->
  owner:string ->
  file:string ->
  Task.service ->
  execution

val results : execution -> int array
(** The Y = {y_i} returned to the cloud user. *)

val root : execution -> string
val root_signature : execution -> Sc_ibc.Ibs.t
val server_id : execution -> string
val service : execution -> Task.service

val leaf_payload : result:int -> position:int -> string
(** The leaf encoding H(y_i ‖ p_i) is computed over. *)

val respond : execution -> int -> response
(** The server's answer to an audit challenge on sub-task [i]:
    the input block with its signature material, the committed result,
    and the Merkle authentication path.
    @raise Invalid_argument when out of bounds. *)
