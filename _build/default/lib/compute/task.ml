type func =
  | Sum
  | Average
  | Max
  | Min
  | Count
  | Dot of int list
  | Polynomial of int list
  | Compose of func * func list

type request = { func : func; position : int }
type service = request list

let rec apply f xs =
  match f with
  | Sum -> List.fold_left ( + ) 0 xs
  | Average ->
    (match xs with [] -> 0 | _ -> List.fold_left ( + ) 0 xs / List.length xs)
  | Max -> (match xs with [] -> 0 | x :: rest -> List.fold_left max x rest)
  | Min -> (match xs with [] -> 0 | x :: rest -> List.fold_left min x rest)
  | Count -> List.length xs
  | Dot weights ->
    let rec dot acc ws vs =
      match ws, vs with
      | [], _ | _, [] -> acc
      | w :: ws, v :: vs -> dot (acc + (w * v)) ws vs
    in
    dot 0 weights xs
  | Polynomial coeffs ->
    let x = List.fold_left ( + ) 0 xs in
    List.fold_right (fun c acc -> (acc * x) + c) coeffs 0
  | Compose (outer, inners) -> apply outer (List.map (fun g -> apply g xs) inners)

let eval f (b : Sc_storage.Block.t) =
  Option.map (apply f) (Sc_storage.Block.decode_ints b.Sc_storage.Block.data)

let rec range_estimate = function
  | Sum | Dot _ | Polynomial _ -> infinity
  | Average -> infinity
  | Max | Min -> 1024.0 (* bounded by the payload value domain *)
  | Count -> 64.0 (* payload lengths are small *)
  | Compose (outer, _) -> range_estimate outer

let rec describe = function
  | Sum -> "sum"
  | Average -> "average"
  | Max -> "max"
  | Min -> "min"
  | Count -> "count"
  | Dot ws -> Printf.sprintf "dot[%s]" (String.concat ";" (List.map string_of_int ws))
  | Polynomial cs ->
    Printf.sprintf "poly[%s]" (String.concat ";" (List.map string_of_int cs))
  | Compose (outer, inners) ->
    Printf.sprintf "%s(%s)" (describe outer) (String.concat "," (List.map describe inners))

let random_func ~drbg =
  match Sc_hash.Drbg.uniform_int drbg 7 with
  | 0 -> Sum
  | 1 -> Average
  | 2 -> Max
  | 3 -> Min
  | 4 -> Count
  | 5 ->
    Dot (List.init (1 + Sc_hash.Drbg.uniform_int drbg 4) (fun _ ->
             1 + Sc_hash.Drbg.uniform_int drbg 9))
  | _ ->
    Polynomial (List.init (1 + Sc_hash.Drbg.uniform_int drbg 3) (fun _ ->
                    Sc_hash.Drbg.uniform_int drbg 16))

let random_service ~drbg ~n_positions ~n_tasks =
  List.init n_tasks (fun _ ->
      { func = random_func ~drbg; position = Sc_hash.Drbg.uniform_int drbg n_positions })
