lib/compute/task.mli: Sc_hash Sc_storage
