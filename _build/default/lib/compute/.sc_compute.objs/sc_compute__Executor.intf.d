lib/compute/executor.mli: Sc_hash Sc_ibc Sc_merkle Sc_storage Task
