lib/compute/executor.ml: Array Option Printf Sc_hash Sc_ibc Sc_merkle Sc_storage Task
