lib/compute/task.ml: List Option Printf Sc_hash Sc_storage String
