lib/hash/hmac.mli:
