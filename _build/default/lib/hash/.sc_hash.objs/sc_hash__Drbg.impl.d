lib/hash/drbg.ml: Buffer Char Hmac String
