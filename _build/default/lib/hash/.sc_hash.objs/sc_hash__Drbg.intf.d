lib/hash/drbg.mli:
