(** SHA-256 (FIPS 180-4), implemented on native [int]s masked to 32
    bits.  Both one-shot and incremental interfaces are provided. *)

type ctx

val init : unit -> ctx
val feed : ctx -> string -> unit
val feed_bytes : ctx -> ?off:int -> ?len:int -> bytes -> unit

val finalize : ctx -> string
(** Returns the 32-byte raw digest and invalidates the context. *)

val digest : string -> string
(** One-shot raw 32-byte digest. *)

val digest_concat : string list -> string
(** Digest of the concatenation of the fragments, without building the
    intermediate string. *)

val hex_of_digest : string -> string

val digest_hex : string -> string
(** One-shot digest in lowercase hex. *)
