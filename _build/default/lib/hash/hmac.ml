let block_size = 64

let normalize_key key =
  let key = if String.length key > block_size then Sha256.digest key else key in
  let padded = Bytes.make block_size '\000' in
  Bytes.blit_string key 0 padded 0 (String.length key);
  padded

let xor_pad key byte =
  String.init block_size (fun i ->
      Char.chr (Char.code (Bytes.get key i) lxor byte))

let mac_concat ~key parts =
  let key = normalize_key key in
  let inner = Sha256.init () in
  Sha256.feed inner (xor_pad key 0x36);
  List.iter (Sha256.feed inner) parts;
  let inner_digest = Sha256.finalize inner in
  let outer = Sha256.init () in
  Sha256.feed outer (xor_pad key 0x5C);
  Sha256.feed outer inner_digest;
  Sha256.finalize outer

let mac ~key msg = mac_concat ~key [ msg ]
let mac_hex ~key msg = Sha256.hex_of_digest (mac ~key msg)
