(** Deterministic random byte generator (HMAC-DRBG, NIST SP 800-90A
    with SHA-256).  Given the same seed it produces the same stream,
    which makes every simulation and test in this repository
    reproducible. *)

type t

val create : seed:string -> t

val generate : t -> int -> string
(** [generate t n] returns [n] fresh pseudo-random bytes. *)

val reseed : t -> string -> unit

val bytes_source : t -> int -> string
(** The same as {!generate}, shaped for APIs that take an
    [int -> string] byte source. *)

val uniform_int : t -> int -> int
(** [uniform_int t n] draws uniformly from [\[0, n)] by rejection.
    @raise Invalid_argument if [n <= 0]. *)

val float : t -> float
(** Uniform in [\[0, 1)] with 53 bits of precision. *)
