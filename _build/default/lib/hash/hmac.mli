(** HMAC-SHA256 (RFC 2104 / FIPS 198-1). *)

val mac : key:string -> string -> string
(** Raw 32-byte tag. *)

val mac_concat : key:string -> string list -> string
(** Tag over the concatenation of the fragments. *)

val mac_hex : key:string -> string -> string
