type t = { mutable key : string; mutable value : string }

(* HMAC_DRBG update function (SP 800-90A section 10.1.2.2). *)
let update t provided =
  t.key <- Hmac.mac_concat ~key:t.key [ t.value; "\x00"; provided ];
  t.value <- Hmac.mac ~key:t.key t.value;
  if String.length provided > 0 then begin
    t.key <- Hmac.mac_concat ~key:t.key [ t.value; "\x01"; provided ];
    t.value <- Hmac.mac ~key:t.key t.value
  end

let create ~seed =
  let t = { key = String.make 32 '\000'; value = String.make 32 '\x01' } in
  update t seed;
  t

let reseed t entropy = update t entropy

let generate t n =
  if n < 0 then invalid_arg "Drbg.generate: negative length";
  let buf = Buffer.create n in
  while Buffer.length buf < n do
    t.value <- Hmac.mac ~key:t.key t.value;
    Buffer.add_string buf t.value
  done;
  update t "";
  Buffer.sub buf 0 n

let bytes_source t n = generate t n

let uniform_int t n =
  if n <= 0 then invalid_arg "Drbg.uniform_int: non-positive bound";
  if n = 1 then 0
  else begin
    let rec bits_needed acc v = if v = 0 then acc else bits_needed (acc + 1) (v lsr 1) in
    let nbits = bits_needed 0 (n - 1) in
    let nbytes = (nbits + 7) / 8 in
    let rec draw () =
      let s = generate t nbytes in
      let v = ref 0 in
      String.iter (fun c -> v := (!v lsl 8) lor Char.code c) s;
      let v = !v land ((1 lsl nbits) - 1) in
      if v < n then v else draw ()
    in
    draw ()
  end

let float t =
  let s = generate t 7 in
  let v = ref 0 in
  String.iter (fun c -> v := (!v lsl 8) lor Char.code c) s;
  let v53 = !v lsr 3 in
  float_of_int v53 /. 9007199254740992.0 (* 2^53 *)
