lib/field/fp.mli: Format Nat Sc_bignum
