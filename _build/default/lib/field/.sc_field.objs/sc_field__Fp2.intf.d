lib/field/fp2.mli: Format Fp Nat Sc_bignum
