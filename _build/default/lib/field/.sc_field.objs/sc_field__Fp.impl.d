lib/field/fp.ml: Modular Montgomery Nat Sc_bignum
