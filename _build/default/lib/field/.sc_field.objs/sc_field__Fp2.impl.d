lib/field/fp2.ml: Format Fp Nat Sc_bignum
