(** BLS-homomorphic-authenticator public auditing in the style of
    Wang et al. (ESORICS'09 / INFOCOM'10, refs [4], [5] of the paper)
    — the linear-cost comparison curves of Figure 5.

    Per file of blocks m_1..m_n (scalars in Z_q):
    - tags:      σ_i = x·(H(name‖i) + m_i·u) ∈ G1
    - challenge: a random coefficient ν_i per sampled index
    - proof:     μ = Σ ν_i·m_i  (mod q),  σ = Σ ν_i·σ_i
    - verify:    ê(σ, P) = ê(Σ ν_i·H(name‖i) + μ·u, pk)

    Verification costs 2 pairings *per user*, hence grows linearly
    with the number of audited users. *)

open Sc_bignum
open Sc_ec

type keys = { x : Nat.t; pk : Curve.point; u : Curve.point }

type tagged_file = {
  name : string;
  blocks : Nat.t array; (* block representatives in Z_q *)
  tags : Curve.point array;
}

type challenge = (int * Nat.t) list
type proof = { mu : Nat.t; sigma : Curve.point }

val generate_keys : Sc_pairing.Params.t -> bytes_source:(int -> string) -> keys

val block_to_scalar : Sc_pairing.Params.t -> string -> Nat.t
(** Canonical embedding of raw block bytes into Z_q. *)

val tag_file :
  Sc_pairing.Params.t -> keys -> name:string -> string list -> tagged_file

val make_challenge :
  Sc_pairing.Params.t ->
  bytes_source:(int -> string) ->
  n_blocks:int ->
  samples:int ->
  challenge

val prove : Sc_pairing.Params.t -> tagged_file -> challenge -> proof

val verify :
  Sc_pairing.Params.t -> keys -> name:string -> challenge -> proof -> bool
