(** Proof of Retrievability in the style of Juels–Kaliski (ref [11] of
    the paper): the file is erasure-encoded, encrypted with a keyed
    stream, and indistinguishable *sentinel* blocks are hidden at
    keyed pseudorandom positions.

    - Spot-checking sentinels detects large-scale deletion: a server
      that dropped a fraction δ of blocks gets caught per sentinel
      with probability δ.
    - Retrievability is unconditional on top of the code: as long as
      enough blocks survive (k of n code shards), {!extract}
      reconstructs the exact file, using per-block MACs to locate
      erasures.

    The verifier state is a single key plus the shape parameters. *)

type client
(** Verifier-side state (key + parameters), independent of file size. *)

type stored_block = { payload : string; tag : string }
(** What the server stores per position: opaque encrypted bytes and
    their MAC. *)

val encode :
  key:string ->
  k:int ->
  n:int ->
  sentinels:int ->
  string ->
  client * stored_block array
(** Erasure-encode (k-of-n), encrypt, inject sentinels, MAC every
    block.  The array is what gets outsourced. *)

val total_blocks : client -> int

val challenge : client -> drbg:Sc_hash.Drbg.t -> count:int -> int list
(** Positions of [count] not-yet-obviously-revealed sentinels.
    @raise Invalid_argument if more sentinels are requested than
    exist. *)

val verify_response : client -> (int * stored_block option) list -> bool
(** Checks each returned sentinel block (MAC and hidden value); any
    missing or wrong block fails. *)

val extract : client -> stored_block option array -> string option
(** Reconstruct the file from whatever blocks survive ([None] =
    missing).  Corrupt blocks are detected by their MACs and treated
    as erasures.  Succeeds whenever ≥ k valid code shards remain. *)
