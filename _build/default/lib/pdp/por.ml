module Rs = Sc_erasure.Reed_solomon
module Hmac = Sc_hash.Hmac
module Drbg = Sc_hash.Drbg

type client = {
  key : string;
  rs : Rs.params;
  sentinels : int;
  total : int; (* n + sentinels *)
  block_len : int;
  positions : int array; (* positions.(i): where logical block i lives *)
  sentinel_start : int; (* logical ids >= n are sentinels *)
}

type stored_block = { payload : string; tag : string }

(* Keyed keystream for block encryption: HMAC-SHA256 in counter mode. *)
let keystream ~key ~pos len =
  let buf = Buffer.create len in
  let block = ref 0 in
  while Buffer.length buf < len do
    Buffer.add_string buf
      (Hmac.mac_concat ~key [ "ks"; string_of_int pos; ":"; string_of_int !block ]);
    incr block
  done;
  Buffer.sub buf 0 len

let xor_string a b =
  String.init (String.length a) (fun i ->
      Char.chr (Char.code a.[i] lxor Char.code b.[i]))

let encrypt ~key ~pos payload = xor_string payload (keystream ~key ~pos (String.length payload))
let decrypt = encrypt

let mac_block ~key ~pos payload =
  Hmac.mac_concat ~key [ "tag"; string_of_int pos; ":"; payload ]

let sentinel_value ~key ~index len =
  let base = Hmac.mac_concat ~key [ "sentinel"; string_of_int index ] in
  let buf = Buffer.create len in
  while Buffer.length buf < len do
    Buffer.add_string buf base
  done;
  Buffer.sub buf 0 len

(* Keyed permutation of [0, total): logical block i is stored at
   positions.(i). *)
let permutation ~key total =
  let drbg = Drbg.create ~seed:("por-perm:" ^ key) in
  let a = Array.init total (fun i -> i) in
  for i = total - 1 downto 1 do
    let j = Drbg.uniform_int drbg (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done;
  a

let encode ~key ~k ~n ~sentinels data =
  if sentinels < 1 then invalid_arg "Por.encode: need at least one sentinel";
  let rs = Rs.create ~k ~n in
  let code_shards = Array.of_list (Rs.encode_string rs data) in
  let block_len = String.length code_shards.(0) in
  let total = n + sentinels in
  let positions = permutation ~key total in
  let client =
    { key; rs; sentinels; total; block_len; positions; sentinel_start = n }
  in
  let stored = Array.make total { payload = ""; tag = "" } in
  for logical = 0 to total - 1 do
    let pos = positions.(logical) in
    let plain =
      if logical < n then code_shards.(logical)
      else sentinel_value ~key ~index:(logical - n) block_len
    in
    let payload = encrypt ~key ~pos plain in
    stored.(pos) <- { payload; tag = mac_block ~key ~pos payload }
  done;
  client, stored

let total_blocks c = c.total

let challenge c ~drbg ~count =
  if count > c.sentinels then invalid_arg "Por.challenge: not enough sentinels";
  (* Sample distinct sentinel logical ids and map them to positions. *)
  let ids = Array.init c.sentinels (fun i -> i) in
  for i = 0 to count - 1 do
    let j = i + Drbg.uniform_int drbg (c.sentinels - i) in
    let tmp = ids.(i) in
    ids.(i) <- ids.(j);
    ids.(j) <- tmp
  done;
  List.init count (fun i -> c.positions.(c.sentinel_start + ids.(i)))

let logical_of_position c pos =
  (* positions is a permutation; invert by scan (files have modest
     block counts; callers needing scale would cache the inverse). *)
  let rec find i =
    if i >= c.total then invalid_arg "Por: position out of range"
    else if c.positions.(i) = pos then i
    else find (i + 1)
  in
  find 0

let check_block c ~pos (b : stored_block) =
  String.equal b.tag (mac_block ~key:c.key ~pos b.payload)
  && String.length b.payload = c.block_len

let verify_response c responses =
  responses <> []
  && List.for_all
       (fun (pos, block) ->
         match block with
         | None -> false
         | Some b ->
           check_block c ~pos b
           &&
           let logical = logical_of_position c pos in
           logical >= c.sentinel_start
           && String.equal
                (decrypt ~key:c.key ~pos b.payload)
                (sentinel_value ~key:c.key
                   ~index:(logical - c.sentinel_start) c.block_len))
       responses

let extract c blocks =
  if Array.length blocks <> c.total then None
  else begin
    let survivors = ref [] in
    for logical = c.sentinel_start - 1 downto 0 do
      let pos = c.positions.(logical) in
      match blocks.(pos) with
      | Some b when check_block c ~pos b ->
        survivors := (logical, decrypt ~key:c.key ~pos b.payload) :: !survivors
      | Some _ | None -> ()
    done;
    Rs.decode_string c.rs !survivors
  end
