(** RSA-homomorphic-tag provable data possession in the style of
    Ateniese et al. (CCS'07, ref [8] of the paper).

    - tag:    T_i = (h(v‖i) · g^{m_i})^d  (mod N)
    - prove:  T = Π T_i^{a_i},  μ = Σ a_i·m_i  (plain integers)
    - verify: T^e = Π h(v‖i)^{a_i} · g^{μ}  (mod N)

    The variant here keeps the homomorphic-verification core of the
    original scheme while omitting its knowledge-of-exponent blinding
    (which only matters against a verifier colluding with the prover),
    as the paper's comparison is about verification cost. *)

open Sc_bignum

type keys

type tagged_file = {
  name : string;
  blocks : Nat.t array;
  tags : Nat.t array;
}

type challenge = (int * int) list
(** (index, small positive coefficient) pairs. *)

type proof = { t : Nat.t; mu : Nat.t }

val generate_keys : bytes_source:(int -> string) -> bits:int -> keys

val block_to_int : string -> Nat.t
(** Bounded-integer embedding of raw block bytes. *)

val tag_file : keys -> name:string -> string list -> tagged_file

val make_challenge :
  bytes_source:(int -> string) -> n_blocks:int -> samples:int -> challenge

val prove : keys -> tagged_file -> challenge -> proof
val verify : keys -> name:string -> challenge -> proof -> bool
