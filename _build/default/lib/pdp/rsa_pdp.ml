open Sc_bignum

type keys = {
  secret : Sc_rsa.Rsa.secret;
  g : Nat.t; (* random quadratic residue mod N *)
  nmod : Modular.ctx;
}

type tagged_file = { name : string; blocks : Nat.t array; tags : Nat.t array }
type challenge = (int * int) list
type proof = { t : Nat.t; mu : Nat.t }

let generate_keys ~bytes_source ~bits =
  let secret = Sc_rsa.Rsa.generate ~bytes_source ~bits in
  let nmod = Modular.create secret.Sc_rsa.Rsa.pub.n in
  let r = Nat.random_below ~bytes_source secret.Sc_rsa.Rsa.pub.n in
  { secret; g = Modular.sqr nmod r; nmod }

(* Block contents are embedded as bounded integers so that μ = Σ a_i·m_i
   stays small; 128 bits is plenty for the cost model. *)
let block_to_int block =
  Nat.of_bytes_be (String.sub (Sc_hash.Sha256.digest ("pdpblk:" ^ block)) 0 16)

let index_hash keys ~name i =
  Sc_rsa.Rsa.fdh keys.secret.Sc_rsa.Rsa.pub (Printf.sprintf "pdptag:%s:%d" name i)

let tag_file keys ~name raw_blocks =
  let blocks = Array.of_list (List.map block_to_int raw_blocks) in
  let tags =
    Array.mapi
      (fun i m ->
        let base = Modular.mul keys.nmod (index_hash keys ~name i)
            (Modular.pow keys.nmod keys.g m)
        in
        Sc_rsa.Rsa.raw_sign keys.secret base)
      blocks
  in
  { name; blocks; tags }

let make_challenge ~bytes_source ~n_blocks ~samples =
  if samples > n_blocks then invalid_arg "Rsa_pdp.make_challenge: too many samples";
  let idx = Array.init n_blocks (fun i -> i) in
  for i = 0 to samples - 1 do
    let j = i + (Nat.to_int_exn (Nat.random ~bytes_source ~bits:30) mod (n_blocks - i)) in
    let tmp = idx.(i) in
    idx.(i) <- idx.(j);
    idx.(j) <- tmp
  done;
  List.init samples (fun i ->
      idx.(i), 1 + Nat.to_int_exn (Nat.random ~bytes_source ~bits:16))

let prove keys file chal =
  let t =
    List.fold_left
      (fun acc (i, a) ->
        Modular.mul keys.nmod acc
          (Modular.pow keys.nmod file.tags.(i) (Nat.of_int a)))
      Nat.one chal
  in
  let mu =
    List.fold_left
      (fun acc (i, a) -> Nat.add acc (Nat.mul (Nat.of_int a) file.blocks.(i)))
      Nat.zero chal
  in
  { t; mu }

let verify keys ~name chal { t; mu } =
  let lhs = Sc_rsa.Rsa.raw_verify keys.secret.Sc_rsa.Rsa.pub t in
  let rhs =
    List.fold_left
      (fun acc (i, a) ->
        Modular.mul keys.nmod acc
          (Modular.pow keys.nmod (index_hash keys ~name i) (Nat.of_int a)))
      (Modular.pow keys.nmod keys.g mu)
      chal
  in
  Nat.equal lhs rhs
