lib/pdp/rsa_pdp.ml: Array List Modular Nat Printf Sc_bignum Sc_hash Sc_rsa String
