lib/pdp/por.mli: Sc_hash
