lib/pdp/rsa_pdp.mli: Nat Sc_bignum
