lib/pdp/por.ml: Array Buffer Char List Sc_erasure Sc_hash String
