lib/pdp/bls_auditor.mli: Curve Nat Sc_bignum Sc_ec Sc_pairing
