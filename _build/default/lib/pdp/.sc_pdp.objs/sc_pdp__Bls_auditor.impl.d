lib/pdp/bls_auditor.ml: Array Curve List Modular Nat Printf Sc_bignum Sc_ec Sc_pairing
