(** Batch verification of designated-verifier signatures (§VI).

    For k users each contributing n_i signatures, the verifier checks
    one aggregated equation

      ê(U_A, sk_B) = Σ_A,   U_A = Σ_ij (U_ij + h_ij·Q_IDi),
                            Σ_A = Π_ij Σ_ij

    — a single pairing regardless of batch size, versus one pairing
    per signature individually (the paper counts 2 vs 2t including the
    signer-side transform). *)

type entry = { signer : string; msg : string; dvs : Dvs.t }

val verify_batch :
  Setup.public -> verifier_key:Setup.identity_key -> entry list -> bool
(** Accepts the empty batch. *)

val aggregate_size_bytes : Setup.public -> entry list -> int
(** Wire size of the aggregate (U_A, Σ_A) — the constant-size object
    a server ships to the auditor. *)
