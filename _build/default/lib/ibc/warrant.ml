type t = {
  delegator : string;
  delegatee : string;
  issued_at : float;
  expires_at : float;
  scope : string;
}

type signed = { warrant : t; signature : Ibs.t }

let encode w =
  Printf.sprintf "warrant|%s|%s|%.6f|%.6f|%s" w.delegator w.delegatee
    w.issued_at w.expires_at w.scope

let issue pub (key : Setup.identity_key) ~bytes_source ~delegatee ~now ~lifetime
    ~scope =
  let warrant =
    {
      delegator = key.Setup.id;
      delegatee;
      issued_at = now;
      expires_at = now +. lifetime;
      scope;
    }
  in
  { warrant; signature = Ibs.sign pub key ~bytes_source (encode warrant) }

let expired ~now w = now > w.expires_at || now < w.issued_at

let verify pub ~now { warrant; signature } =
  (not (expired ~now warrant))
  && Ibs.verify pub ~signer:warrant.delegator ~msg:(encode warrant) signature
