lib/ibc/setup.mli: Curve Nat Sc_bignum Sc_ec Sc_pairing
