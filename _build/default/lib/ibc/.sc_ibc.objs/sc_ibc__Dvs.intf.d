lib/ibc/dvs.mli: Curve Ibs Sc_ec Sc_pairing Setup
