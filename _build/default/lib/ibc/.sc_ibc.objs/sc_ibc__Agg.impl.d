lib/ibc/agg.ml: Curve Dvs Hashtbl Ibs List Sc_ec Sc_pairing Setup String
