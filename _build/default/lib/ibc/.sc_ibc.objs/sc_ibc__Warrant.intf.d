lib/ibc/warrant.mli: Ibs Setup
