lib/ibc/agg.mli: Dvs Setup
