lib/ibc/ibe.ml: Buffer Char Option Printf Sc_ec Sc_hash Sc_pairing Setup String
