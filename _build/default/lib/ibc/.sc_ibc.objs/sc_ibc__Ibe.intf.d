lib/ibc/ibe.mli: Sc_ec Setup
