lib/ibc/dvs.ml: Curve Ibs Sc_ec Sc_pairing Setup
