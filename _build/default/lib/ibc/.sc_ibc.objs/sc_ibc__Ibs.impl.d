lib/ibc/ibs.ml: Curve Nat Printf Sc_bignum Sc_ec Sc_pairing Setup String
