lib/ibc/setup.ml: Curve Nat Sc_bignum Sc_ec Sc_pairing
