lib/ibc/warrant.ml: Ibs Printf Setup
