lib/ibc/ibs.mli: Curve Nat Sc_bignum Sc_ec Setup
