(** Designated-verifier signatures (§V-B of the paper).

    Instead of publishing the raw signature component V, the signer
    publishes Σ_B = ê(V, Q_B) for each designated verifier B (the
    cloud server and the designated agency in SecCloud).  Only a party
    holding sk_B can check

      Σ_B = ê(U + H2(U‖m)·Q_ID, sk_B)

    and — crucially for the privacy-cheating-discouragement model —
    any such party can also *simulate* valid-looking tuples with
    {!simulate}, so a transcript convinces nobody else (§VII-B). *)

open Sc_ec

type t = { u : Curve.point; sigma : Sc_pairing.Tate.gt }

val designate : Setup.public -> Ibs.t -> verifier:string -> t
(** Transforms a raw signature for the given verifier identity. *)

val verify :
  Setup.public ->
  verifier_key:Setup.identity_key ->
  signer:string ->
  msg:string ->
  t ->
  bool

val simulate :
  Setup.public ->
  verifier_key:Setup.identity_key ->
  signer:string ->
  msg:string ->
  bytes_source:(int -> string) ->
  t
(** A forgery computed with the *verifier's* key: indistinguishable
    from a real signature and accepted by {!verify}.  Its existence is
    what discourages the verifier from reselling transcripts. *)
