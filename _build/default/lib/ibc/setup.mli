(** System initialization (the SIO of the paper, §V-A).

    The SIO holds the master secret s, publishes P_pub = s·P, and
    extracts per-identity secret keys sk_ID = s·H1(ID) — eq. (4). *)

open Sc_bignum
open Sc_ec

type sio
(** The System Initialization Operator: pairing parameters plus the
    master secret. *)

type public = { prm : Sc_pairing.Params.t; p_pub : Curve.point }
(** The public system parameters every party holds. *)

type identity_key = {
  id : string;
  q_id : Curve.point; (* H1(ID) *)
  sk : Curve.point; (* s·H1(ID) *)
}

val create : Sc_pairing.Params.t -> bytes_source:(int -> string) -> sio
val public : sio -> public
val master_secret : sio -> Nat.t

val extract : sio -> string -> identity_key
(** Registers an identity and derives its secret key. *)

val q_of_id : public -> string -> Curve.point
(** The public key H1(ID) of any identity — no secret needed. *)

val valid_key : public -> identity_key -> bool
(** Checks ê(sk_ID, P) = ê(Q_ID, P_pub), letting a user validate the
    key received from the SIO. *)
