open Sc_bignum
open Sc_ec
module Params = Sc_pairing.Params
module Tate = Sc_pairing.Tate
module Hash_g1 = Sc_pairing.Hash_g1

type t = { u : Curve.point; v : Curve.point }

let h2 (pub : Setup.public) ~u ~msg =
  let prm = pub.prm in
  Hash_g1.hash_to_scalar prm ("h2:" ^ Curve.to_bytes prm.curve u ^ ":" ^ msg)

let sign (pub : Setup.public) (key : Setup.identity_key) ~bytes_source msg =
  let prm = pub.prm in
  let r = Params.random_scalar prm ~bytes_source in
  let u = Curve.mul prm.curve r key.q_id in
  let h = h2 pub ~u ~msg in
  let v = Curve.mul prm.curve (Nat.rem (Nat.add r h) prm.q) key.sk in
  { u; v }

(* U + h·Q_ID, the G1 element both verification flavours pair against. *)
let verification_point (pub : Setup.public) ~q_id ~msg ~u =
  let prm = pub.prm in
  let h = h2 pub ~u ~msg in
  Curve.add prm.curve u (Curve.mul prm.curve h q_id)

let verify (pub : Setup.public) ~signer ~msg { u; v } =
  let prm = pub.prm in
  Curve.on_curve prm.curve u
  && Curve.on_curve prm.curve v
  &&
  let q_id = Setup.q_of_id pub signer in
  let w = verification_point pub ~q_id ~msg ~u in
  Tate.gt_equal (Tate.pairing prm v prm.g) (Tate.pairing prm w pub.p_pub)

let to_bytes (pub : Setup.public) { u; v } =
  let c = pub.prm.curve in
  let su = Curve.to_bytes c u in
  Printf.sprintf "%04d" (String.length su) ^ su ^ Curve.to_bytes c v

let of_bytes (pub : Setup.public) s =
  let c = pub.prm.curve in
  if String.length s < 4 then None
  else
    match int_of_string_opt (String.sub s 0 4) with
    | None -> None
    | Some n when String.length s < 4 + n -> None
    | Some n ->
      let su = String.sub s 4 n in
      let sv = String.sub s (4 + n) (String.length s - 4 - n) in
      (match Curve.of_bytes c su, Curve.of_bytes c sv with
      | Some u, Some v -> Some { u; v }
      | None, _ | _, None -> None)
