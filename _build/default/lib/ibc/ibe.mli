(** Identity-based encryption (Boneh–Franklin BasicIdent [19], in
    hybrid encrypt-then-MAC form).

    The Privacy-Cheating model (§III-B) notes that users may encrypt
    data before outsourcing; with IBE they can do so under the *same*
    identity infrastructure the SIO already provides — no separate
    PKI:

    - encrypt to ID:  r ← Z_q*, U = r·P, K = ê(H1(ID), P_pub)^r,
      keystream/MAC keys derived from K; body = m ⊕ ks, tag = MAC.
    - decrypt:        K = ê(sk_ID, U)  — same K by bilinearity.

    The MAC gives ciphertext integrity (encrypt-then-MAC); this is
    BasicIdent hardened for honest-but-curious storage, not the full
    FO-transformed CCA scheme. *)

type ciphertext = {
  u : Sc_ec.Curve.point; (* r·P *)
  body : string; (* m ⊕ keystream(K) *)
  tag : string; (* MAC over U ‖ body *)
}

val encrypt :
  Setup.public ->
  to_identity:string ->
  bytes_source:(int -> string) ->
  string ->
  ciphertext

val decrypt : Setup.public -> key:Setup.identity_key -> ciphertext -> string option
(** [None] when the tag does not verify (wrong recipient or tampered
    ciphertext). *)

val ciphertext_to_bytes : Setup.public -> ciphertext -> string
val ciphertext_of_bytes : Setup.public -> string -> ciphertext option
