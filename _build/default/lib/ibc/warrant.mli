(** Delegation warrants (§V-D): when a cloud user delegates auditing
    to the DA it issues a warrant naming the delegatee and an expiry
    time; the cloud server checks the warrant before answering audit
    challenges. *)

type t = {
  delegator : string; (* cloud user identity *)
  delegatee : string; (* usually the DA *)
  issued_at : float; (* simulated epoch seconds *)
  expires_at : float;
  scope : string; (* free-form description of the delegated task *)
}

type signed = { warrant : t; signature : Ibs.t }

val encode : t -> string
(** Canonical byte encoding covered by the signature. *)

val issue :
  Setup.public ->
  Setup.identity_key ->
  bytes_source:(int -> string) ->
  delegatee:string ->
  now:float ->
  lifetime:float ->
  scope:string ->
  signed

val verify : Setup.public -> now:float -> signed -> bool
(** Checks the signature *and* that the warrant has not expired and
    was not used before issuance. *)

val expired : now:float -> t -> bool
