open Sc_ec
module Params = Sc_pairing.Params
module Tate = Sc_pairing.Tate

type t = { u : Curve.point; sigma : Tate.gt }

let designate (pub : Setup.public) (raw : Ibs.t) ~verifier =
  let prm = pub.prm in
  let q_b = Setup.q_of_id pub verifier in
  { u = raw.Ibs.u; sigma = Tate.pairing prm raw.Ibs.v q_b }

let verify (pub : Setup.public) ~verifier_key ~signer ~msg { u; sigma } =
  let prm = pub.prm in
  Curve.on_curve prm.curve u
  &&
  let q_id = Setup.q_of_id pub signer in
  let w = Ibs.verification_point pub ~q_id ~msg ~u in
  Tate.gt_equal sigma (Tate.pairing prm w verifier_key.Setup.sk)

let simulate (pub : Setup.public) ~verifier_key ~signer ~msg ~bytes_source =
  let prm = pub.prm in
  let q_id = Setup.q_of_id pub signer in
  let r = Params.random_scalar prm ~bytes_source in
  let u = Curve.mul prm.curve r q_id in
  let w = Ibs.verification_point pub ~q_id ~msg ~u in
  { u; sigma = Tate.pairing prm w verifier_key.Setup.sk }
