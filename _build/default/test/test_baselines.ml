(* The comparison schemes: RSA-FDH, ECDSA, BLS/BGLS, and the two
   storage-auditing baselines (Wang-style BLS auditor, Ateniese-style
   RSA PDP). *)

let prm = Lazy.force Util.toy_params
let bs = Util.fresh_bs "baseline-tests"

let rsa_tests =
  let open Util in
  let key = Sc_rsa.Rsa.generate ~bytes_source:bs ~bits:512 in
  [
    case "rsa sign/verify" (fun () ->
        let s = Sc_rsa.Rsa.sign key "attack at dawn" in
        check Alcotest.bool "ok" true
          (Sc_rsa.Rsa.verify key.Sc_rsa.Rsa.pub "attack at dawn" s));
    case "rsa rejects wrong message" (fun () ->
        let s = Sc_rsa.Rsa.sign key "attack at dawn" in
        check Alcotest.bool "bad" false
          (Sc_rsa.Rsa.verify key.Sc_rsa.Rsa.pub "attack at dusk" s));
    case "rsa rejects mauled signature" (fun () ->
        let s = Sc_rsa.Rsa.sign key "msg" in
        let mauled = Sc_bignum.Nat.add s Sc_bignum.Nat.one in
        check Alcotest.bool "mauled" false
          (Sc_rsa.Rsa.verify key.Sc_rsa.Rsa.pub "msg" mauled));
    case "rsa raw sign/verify inverse" (fun () ->
        let m = Sc_bignum.Nat.of_int 123456789 in
        check Alcotest.bool "round trip" true
          (Sc_bignum.Nat.equal m
             (Sc_rsa.Rsa.raw_verify key.Sc_rsa.Rsa.pub (Sc_rsa.Rsa.raw_sign key m))));
    case "rsa fdh is stable and modulus-bounded" (fun () ->
        let h1 = Sc_rsa.Rsa.fdh key.Sc_rsa.Rsa.pub "x" in
        let h2 = Sc_rsa.Rsa.fdh key.Sc_rsa.Rsa.pub "x" in
        check Alcotest.bool "stable" true (Sc_bignum.Nat.equal h1 h2);
        check Alcotest.bool "bounded" true
          (Sc_bignum.Nat.compare h1 key.Sc_rsa.Rsa.pub.Sc_rsa.Rsa.n < 0));
  ]

let ecdsa_tests =
  let open Util in
  let kp = Sc_ecdsa.Ecdsa.generate prm ~bytes_source:bs in
  [
    case "ecdsa sign/verify" (fun () ->
        let s = Sc_ecdsa.Ecdsa.sign prm kp ~bytes_source:bs "hello" in
        check Alcotest.bool "ok" true
          (Sc_ecdsa.Ecdsa.verify prm kp.Sc_ecdsa.Ecdsa.q "hello" s));
    case "ecdsa rejects wrong message" (fun () ->
        let s = Sc_ecdsa.Ecdsa.sign prm kp ~bytes_source:bs "hello" in
        check Alcotest.bool "bad" false
          (Sc_ecdsa.Ecdsa.verify prm kp.Sc_ecdsa.Ecdsa.q "goodbye" s));
    case "ecdsa rejects wrong key" (fun () ->
        let other = Sc_ecdsa.Ecdsa.generate prm ~bytes_source:bs in
        let s = Sc_ecdsa.Ecdsa.sign prm kp ~bytes_source:bs "hello" in
        check Alcotest.bool "bad key" false
          (Sc_ecdsa.Ecdsa.verify prm other.Sc_ecdsa.Ecdsa.q "hello" s));
    case "ecdsa rejects out-of-range components" (fun () ->
        let s = Sc_ecdsa.Ecdsa.sign prm kp ~bytes_source:bs "hello" in
        check Alcotest.bool "r=0" false
          (Sc_ecdsa.Ecdsa.verify prm kp.Sc_ecdsa.Ecdsa.q "hello"
             { s with Sc_ecdsa.Ecdsa.r = Sc_bignum.Nat.zero });
        check Alcotest.bool "s=q" false
          (Sc_ecdsa.Ecdsa.verify prm kp.Sc_ecdsa.Ecdsa.q "hello"
             { s with Sc_ecdsa.Ecdsa.s = prm.Sc_pairing.Params.q }));
  ]

let bls_tests =
  let open Util in
  let kp = Sc_bls.Bls.generate prm ~bytes_source:bs in
  let kp2 = Sc_bls.Bls.generate prm ~bytes_source:bs in
  [
    case "bls sign/verify" (fun () ->
        let s = Sc_bls.Bls.sign prm kp "block-1" in
        check Alcotest.bool "ok" true
          (Sc_bls.Bls.verify prm kp.Sc_bls.Bls.pk "block-1" s));
    case "bls deterministic signatures" (fun () ->
        check Alcotest.bool "same" true
          (Sc_ec.Curve.equal (Sc_bls.Bls.sign prm kp "m") (Sc_bls.Bls.sign prm kp "m")));
    case "bls rejects wrong message/key" (fun () ->
        let s = Sc_bls.Bls.sign prm kp "m" in
        check Alcotest.bool "wrong msg" false
          (Sc_bls.Bls.verify prm kp.Sc_bls.Bls.pk "n" s);
        check Alcotest.bool "wrong key" false
          (Sc_bls.Bls.verify prm kp2.Sc_bls.Bls.pk "m" s));
    case "bgls aggregate verifies across keys" (fun () ->
        let entries =
          [ kp, "msg-a"; kp2, "msg-b"; kp, "msg-c" ]
        in
        let sigma =
          Sc_bls.Bls.aggregate prm
            (List.map (fun (k, m) -> Sc_bls.Bls.sign prm k m) entries)
        in
        check Alcotest.bool "agg ok" true
          (Sc_bls.Bls.verify_aggregate prm
             (List.map (fun (k, m) -> k.Sc_bls.Bls.pk, m) entries)
             sigma));
    case "bgls rejects duplicate messages" (fun () ->
        let sigma =
          Sc_bls.Bls.aggregate prm
            [ Sc_bls.Bls.sign prm kp "dup"; Sc_bls.Bls.sign prm kp2 "dup" ]
        in
        check Alcotest.bool "duplicates" false
          (Sc_bls.Bls.verify_aggregate prm
             [ kp.Sc_bls.Bls.pk, "dup"; kp2.Sc_bls.Bls.pk, "dup" ]
             sigma));
    case "bgls rejects a swapped signature" (fun () ->
        let sigma = Sc_bls.Bls.aggregate prm [ Sc_bls.Bls.sign prm kp "a" ] in
        check Alcotest.bool "bad agg" false
          (Sc_bls.Bls.verify_aggregate prm [ kp.Sc_bls.Bls.pk, "b" ] sigma));
    case "bgls pairing count is n+1" (fun () ->
        let entries = List.init 5 (fun i -> kp, Printf.sprintf "pc-%d" i) in
        let sigma =
          Sc_bls.Bls.aggregate prm
            (List.map (fun (k, m) -> Sc_bls.Bls.sign prm k m) entries)
        in
        Sc_pairing.Tate.reset_pairing_count ();
        assert
          (Sc_bls.Bls.verify_aggregate prm
             (List.map (fun (k, m) -> k.Sc_bls.Bls.pk, m) entries)
             sigma);
        check Alcotest.int "n+1" 6 (Sc_pairing.Tate.pairings_performed ()));
  ]

let pdp_tests =
  let open Util in
  let wang = Sc_pdp.Bls_auditor.generate_keys prm ~bytes_source:bs in
  let blocks = List.init 16 (Printf.sprintf "block-content-%d") in
  let wfile = Sc_pdp.Bls_auditor.tag_file prm wang ~name:"f" blocks in
  let rsa_keys = Sc_pdp.Rsa_pdp.generate_keys ~bytes_source:bs ~bits:512 in
  let rfile = Sc_pdp.Rsa_pdp.tag_file rsa_keys ~name:"f" blocks in
  [
    case "wang auditor accepts honest proof" (fun () ->
        let chal =
          Sc_pdp.Bls_auditor.make_challenge prm ~bytes_source:bs ~n_blocks:16
            ~samples:6
        in
        let proof = Sc_pdp.Bls_auditor.prove prm wfile chal in
        check Alcotest.bool "ok" true
          (Sc_pdp.Bls_auditor.verify prm wang ~name:"f" chal proof));
    case "wang auditor rejects corrupted block" (fun () ->
        let chal =
          Sc_pdp.Bls_auditor.make_challenge prm ~bytes_source:bs ~n_blocks:16
            ~samples:16
        in
        let corrupted =
          {
            wfile with
            Sc_pdp.Bls_auditor.blocks =
              Array.mapi
                (fun i b ->
                  if i = 3 then Sc_pdp.Bls_auditor.block_to_scalar prm "evil"
                  else b)
                wfile.Sc_pdp.Bls_auditor.blocks;
          }
        in
        let proof = Sc_pdp.Bls_auditor.prove prm corrupted chal in
        check Alcotest.bool "caught" false
          (Sc_pdp.Bls_auditor.verify prm wang ~name:"f" chal proof));
    case "wang auditor rejects wrong file name" (fun () ->
        let chal =
          Sc_pdp.Bls_auditor.make_challenge prm ~bytes_source:bs ~n_blocks:16
            ~samples:4
        in
        let proof = Sc_pdp.Bls_auditor.prove prm wfile chal in
        check Alcotest.bool "wrong name" false
          (Sc_pdp.Bls_auditor.verify prm wang ~name:"g" chal proof));
    case "wang challenge rejects oversampling" (fun () ->
        Alcotest.check_raises "too many"
          (Invalid_argument "Bls_auditor.make_challenge: too many samples")
          (fun () ->
            ignore
              (Sc_pdp.Bls_auditor.make_challenge prm ~bytes_source:bs
                 ~n_blocks:4 ~samples:5)));
    case "rsa pdp accepts honest proof" (fun () ->
        let chal =
          Sc_pdp.Rsa_pdp.make_challenge ~bytes_source:bs ~n_blocks:16 ~samples:6
        in
        let proof = Sc_pdp.Rsa_pdp.prove rsa_keys rfile chal in
        check Alcotest.bool "ok" true
          (Sc_pdp.Rsa_pdp.verify rsa_keys ~name:"f" chal proof));
    case "rsa pdp rejects corrupted block" (fun () ->
        let chal =
          Sc_pdp.Rsa_pdp.make_challenge ~bytes_source:bs ~n_blocks:16 ~samples:16
        in
        let corrupted =
          {
            rfile with
            Sc_pdp.Rsa_pdp.blocks =
              Array.mapi
                (fun i b ->
                  if i = 7 then Sc_pdp.Rsa_pdp.block_to_int "tampered" else b)
                rfile.Sc_pdp.Rsa_pdp.blocks;
          }
        in
        let proof = Sc_pdp.Rsa_pdp.prove rsa_keys corrupted chal in
        check Alcotest.bool "caught" false
          (Sc_pdp.Rsa_pdp.verify rsa_keys ~name:"f" chal proof));
    case "rsa pdp rejects mauled proof" (fun () ->
        let chal =
          Sc_pdp.Rsa_pdp.make_challenge ~bytes_source:bs ~n_blocks:16 ~samples:4
        in
        let proof = Sc_pdp.Rsa_pdp.prove rsa_keys rfile chal in
        let mauled =
          { proof with Sc_pdp.Rsa_pdp.mu = Sc_bignum.Nat.add proof.Sc_pdp.Rsa_pdp.mu Sc_bignum.Nat.one }
        in
        check Alcotest.bool "mauled" false
          (Sc_pdp.Rsa_pdp.verify rsa_keys ~name:"f" chal mauled));
  ]

let suite = rsa_tests @ ecdsa_tests @ bls_tests @ pdp_tests
