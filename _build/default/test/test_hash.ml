(* SHA-256 / HMAC against FIPS-180-4 and RFC 4231 vectors; DRBG
   determinism. *)

let sha_vectors =
  [
    "", "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855";
    "abc", "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad";
    ( "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
      "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1" );
    ( "abcdefghbcdefghicdefghijdefghijkefghijklfghijklmghijklmnhijklmno\
       ijklmnopjklmnopqklmnopqrlmnopqrsmnopqrstnopqrstu",
      "cf5b16a778af8380036ce59e7b0492370b249b11e8f07a51afac45037afee9d1" );
  ]

let unit_tests =
  let open Util in
  [
    case "FIPS 180-4 vectors" (fun () ->
        List.iter
          (fun (msg, expected) ->
            check Alcotest.string (String.sub expected 0 8) expected
              (Sc_hash.Sha256.digest_hex msg))
          sha_vectors);
    case "million a's" (fun () ->
        check Alcotest.string "1M x 'a'"
          "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
          (Sc_hash.Sha256.digest_hex (String.make 1_000_000 'a')));
    case "incremental = one-shot across chunkings" (fun () ->
        let msg = String.init 1000 (fun i -> Char.chr (i mod 256)) in
        let expected = Sc_hash.Sha256.digest msg in
        List.iter
          (fun chunk ->
            let ctx = Sc_hash.Sha256.init () in
            let rec feed off =
              if off < String.length msg then begin
                let len = min chunk (String.length msg - off) in
                Sc_hash.Sha256.feed ctx (String.sub msg off len);
                feed (off + len)
              end
            in
            feed 0;
            check Alcotest.string
              (Printf.sprintf "chunk=%d" chunk)
              (Sc_hash.Sha256.hex_of_digest expected)
              (Sc_hash.Sha256.hex_of_digest (Sc_hash.Sha256.finalize ctx)))
          [ 1; 3; 55; 56; 63; 64; 65; 128; 1000 ]);
    case "finalize twice raises" (fun () ->
        let ctx = Sc_hash.Sha256.init () in
        ignore (Sc_hash.Sha256.finalize ctx);
        Alcotest.check_raises "double finalize"
          (Invalid_argument "Sha256.finalize: already finalized") (fun () ->
            ignore (Sc_hash.Sha256.finalize ctx)));
    case "digest_concat equals digest of concatenation" (fun () ->
        let parts = [ "a"; "bc"; ""; "def"; String.make 100 'x' ] in
        check Alcotest.string "concat"
          (Sc_hash.Sha256.digest_hex (String.concat "" parts))
          (Sc_hash.Sha256.hex_of_digest (Sc_hash.Sha256.digest_concat parts)));
    case "HMAC RFC 4231 test case 1" (fun () ->
        check Alcotest.string "tc1"
          "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
          (Sc_hash.Hmac.mac_hex ~key:(String.make 20 '\x0b') "Hi There"));
    case "HMAC RFC 4231 test case 2" (fun () ->
        check Alcotest.string "tc2"
          "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
          (Sc_hash.Hmac.mac_hex ~key:"Jefe" "what do ya want for nothing?"));
    case "HMAC RFC 4231 test case 3" (fun () ->
        check Alcotest.string "tc3"
          "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"
          (Sc_hash.Hmac.mac_hex ~key:(String.make 20 '\xaa')
             (String.make 50 '\xdd')));
    case "HMAC long key (hashed) RFC 4231 test case 6" (fun () ->
        check Alcotest.string "tc6"
          "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
          (Sc_hash.Hmac.mac_hex ~key:(String.make 131 '\xaa')
             "Test Using Larger Than Block-Size Key - Hash Key First"));
    case "DRBG determinism" (fun () ->
        let a = Sc_hash.Drbg.create ~seed:"seed" in
        let b = Sc_hash.Drbg.create ~seed:"seed" in
        check Alcotest.string "same stream"
          (Sc_hash.Sha256.hex_of_digest (Sc_hash.Drbg.generate a 64))
          (Sc_hash.Sha256.hex_of_digest (Sc_hash.Drbg.generate b 64)));
    case "DRBG seed separation" (fun () ->
        let a = Sc_hash.Drbg.create ~seed:"seed-1" in
        let b = Sc_hash.Drbg.create ~seed:"seed-2" in
        check Alcotest.bool "different" false
          (String.equal (Sc_hash.Drbg.generate a 32) (Sc_hash.Drbg.generate b 32)));
    case "DRBG reseed changes stream" (fun () ->
        let a = Sc_hash.Drbg.create ~seed:"seed" in
        let b = Sc_hash.Drbg.create ~seed:"seed" in
        Sc_hash.Drbg.reseed b "entropy";
        check Alcotest.bool "diverged" false
          (String.equal (Sc_hash.Drbg.generate a 32) (Sc_hash.Drbg.generate b 32)));
    case "DRBG uniform_int in range" (fun () ->
        let d = Sc_hash.Drbg.create ~seed:"uniform" in
        for _ = 1 to 500 do
          let v = Sc_hash.Drbg.uniform_int d 17 in
          if v < 0 || v >= 17 then Alcotest.fail "out of range"
        done);
    case "DRBG uniform_int covers support" (fun () ->
        let d = Sc_hash.Drbg.create ~seed:"coverage" in
        let seen = Array.make 8 false in
        for _ = 1 to 400 do
          seen.(Sc_hash.Drbg.uniform_int d 8) <- true
        done;
        check Alcotest.bool "all seen" true (Array.for_all Fun.id seen));
    case "DRBG float in [0,1)" (fun () ->
        let d = Sc_hash.Drbg.create ~seed:"floats" in
        for _ = 1 to 500 do
          let f = Sc_hash.Drbg.float d in
          if not (f >= 0.0 && f < 1.0) then Alcotest.fail "out of range"
        done);
  ]

let suite = unit_tests
