open Sc_compute
module Block = Sc_storage.Block
module Server = Sc_storage.Server
module Merkle = Sc_merkle.Tree

let system = Lazy.force Util.shared_system
let pub = Seccloud.System.public system
let cs_key = Seccloud.System.cs_key system "cs-1"
let alice = Seccloud.System.register_user system "alice"
let bs = Util.fresh_bs "compute-tests"

let payloads = List.init 20 (fun i -> Block.encode_ints [ i; 2 * i; 3 * i ])

let make_server () =
  let server = Server.create Server.Honest ~drbg:(Sc_hash.Drbg.create ~seed:"x") in
  Server.store server
    (Sc_storage.Signer.sign_file pub alice ~bytes_source:bs ~cs_id:"cs-1"
       ~da_id:"da" ~file:"data" payloads);
  server

let sum_service n = List.init n (fun i -> { Task.func = Task.Sum; position = i })

let task_tests =
  let open Util in
  [
    case "function semantics" (fun () ->
        let xs = [ 3; 1; 4; 1; 5 ] in
        check Alcotest.int "sum" 14 (Task.apply Task.Sum xs);
        check Alcotest.int "average" 2 (Task.apply Task.Average xs);
        check Alcotest.int "max" 5 (Task.apply Task.Max xs);
        check Alcotest.int "min" 1 (Task.apply Task.Min xs);
        check Alcotest.int "count" 5 (Task.apply Task.Count xs);
        check Alcotest.int "dot[1;2;3]" (3 + 2 + 12)
          (Task.apply (Task.Dot [ 1; 2; 3 ]) xs);
        (* p(x) = 1 + 2x + x² at x = 14 *)
        check Alcotest.int "poly" (1 + 28 + 196)
          (Task.apply (Task.Polynomial [ 1; 2; 1 ]) xs));
    case "empty payload semantics" (fun () ->
        List.iter
          (fun f -> check Alcotest.int (Task.describe f) 0 (Task.apply f []))
          [ Task.Sum; Task.Average; Task.Max; Task.Min; Task.Count ]);
    case "compose applies outer to inner results" (fun () ->
        let f = Task.Compose (Task.Max, [ Task.Sum; Task.Min; Task.Count ]) in
        check Alcotest.int "max(sum,min,count)" 14 (Task.apply f [ 3; 1; 4; 1; 5 ]));
    case "eval decodes block payloads" (fun () ->
        let b = Block.of_ints ~file:"f" ~index:0 [ 10; 20 ] in
        check Alcotest.(option int) "sum" (Some 30) (Task.eval Task.Sum b);
        let bad = { Block.file = "f"; index = 0; data = "not-numbers" } in
        check Alcotest.(option int) "bad" None (Task.eval Task.Sum bad));
    case "describe is injective enough for the catalogue" (fun () ->
        let fs =
          [ Task.Sum; Task.Average; Task.Max; Task.Min; Task.Count;
            Task.Dot [ 1; 2 ]; Task.Polynomial [ 1; 2 ] ]
        in
        let names = List.map Task.describe fs in
        check Alcotest.int "distinct" (List.length fs)
          (List.length (List.sort_uniq String.compare names)));
    case "random_service respects bounds" (fun () ->
        let drbg = Sc_hash.Drbg.create ~seed:"svc" in
        let svc = Task.random_service ~drbg ~n_positions:7 ~n_tasks:40 in
        check Alcotest.int "count" 40 (List.length svc);
        List.iter
          (fun r ->
            if r.Task.position < 0 || r.Task.position >= 7
            then Alcotest.fail "position out of range")
          svc);
  ]

let executor_tests =
  let open Util in
  [
    case "honest execution computes correct results" (fun () ->
        let server = make_server () in
        let drbg = Sc_hash.Drbg.create ~seed:"exec" in
        let exec =
          Executor.run pub ~cs_key ~server ~behaviour:Executor.Honest ~drbg
            ~owner:"alice" ~file:"data" (sum_service 20)
        in
        Array.iteri
          (fun i y -> check Alcotest.int (Printf.sprintf "sum@%d" i) (6 * i) y)
          (Executor.results exec));
    case "empty service rejected" (fun () ->
        let server = make_server () in
        let drbg = Sc_hash.Drbg.create ~seed:"exec" in
        Alcotest.check_raises "empty" (Invalid_argument "Executor.run: empty service")
          (fun () ->
            ignore
              (Executor.run pub ~cs_key ~server ~behaviour:Executor.Honest ~drbg
                 ~owner:"alice" ~file:"data" [])));
    case "commitment root is signed by the server" (fun () ->
        let server = make_server () in
        let drbg = Sc_hash.Drbg.create ~seed:"exec" in
        let exec =
          Executor.run pub ~cs_key ~server ~behaviour:Executor.Honest ~drbg
            ~owner:"alice" ~file:"data" (sum_service 8)
        in
        check Alcotest.bool "root sig" true
          (Sc_ibc.Ibs.verify pub ~signer:"cs-1"
             ~msg:("root:" ^ Executor.root exec)
             (Executor.root_signature exec)));
    case "responses carry verifying Merkle paths" (fun () ->
        let server = make_server () in
        let drbg = Sc_hash.Drbg.create ~seed:"exec" in
        let exec =
          Executor.run pub ~cs_key ~server ~behaviour:Executor.Honest ~drbg
            ~owner:"alice" ~file:"data" (sum_service 12)
        in
        for i = 0 to 11 do
          let r = Executor.respond exec i in
          let leaf =
            Executor.leaf_payload ~result:r.Executor.result
              ~position:r.Executor.request.Task.position
          in
          check Alcotest.bool "path ok" true
            (Merkle.verify_proof ~root:(Executor.root exec) ~leaf_payload:leaf
               r.Executor.proof)
        done);
    case "respond out of bounds raises" (fun () ->
        let server = make_server () in
        let drbg = Sc_hash.Drbg.create ~seed:"exec" in
        let exec =
          Executor.run pub ~cs_key ~server ~behaviour:Executor.Honest ~drbg
            ~owner:"alice" ~file:"data" (sum_service 4)
        in
        Alcotest.check_raises "oob"
          (Invalid_argument "Executor.respond: index out of bounds") (fun () ->
            ignore (Executor.respond exec 4)));
    case "guessing executor produces wrong results" (fun () ->
        let server = make_server () in
        let drbg = Sc_hash.Drbg.create ~seed:"cheat" in
        let exec =
          Executor.run pub ~cs_key ~server
            ~behaviour:(Executor.Guess_fraction (1.0, 7))
            ~drbg ~owner:"alice" ~file:"data" (sum_service 20)
        in
        let wrong = ref 0 in
        Array.iteri
          (fun i y -> if y <> 6 * i then incr wrong)
          (Executor.results exec);
        check Alcotest.bool "mostly wrong" true (!wrong > 10));
    case "skip executor returns constants" (fun () ->
        let server = make_server () in
        let drbg = Sc_hash.Drbg.create ~seed:"cheat" in
        let exec =
          Executor.run pub ~cs_key ~server ~behaviour:(Executor.Skip_fraction 1.0)
            ~drbg ~owner:"alice" ~file:"data" (sum_service 20)
        in
        Array.iter (fun y -> check Alcotest.int "zero" 0 y) (Executor.results exec));
    case "commit-garbage executor: answers right, tree wrong" (fun () ->
        let server = make_server () in
        let drbg = Sc_hash.Drbg.create ~seed:"cheat" in
        let exec =
          Executor.run pub ~cs_key ~server
            ~behaviour:(Executor.Commit_garbage_fraction 1.0) ~drbg
            ~owner:"alice" ~file:"data" (sum_service 10)
        in
        (* Answers are correct... *)
        Array.iteri
          (fun i y -> check Alcotest.int "honest answer" (6 * i) y)
          (Executor.results exec);
        (* ...but no Merkle path matches them. *)
        let r = Executor.respond exec 0 in
        let leaf =
          Executor.leaf_payload ~result:r.Executor.result
            ~position:r.Executor.request.Task.position
        in
        check Alcotest.bool "root mismatch" false
          (Merkle.verify_proof ~root:(Executor.root exec) ~leaf_payload:leaf
             r.Executor.proof));
    case "computing_confidence mapping" (fun () ->
        let close a b = Float.abs (a -. b) < 1e-9 in
        check Alcotest.bool "honest" true
          (close 1.0 (Executor.computing_confidence Executor.Honest));
        check Alcotest.bool "guess" true
          (close 0.6 (Executor.computing_confidence (Executor.Guess_fraction (0.4, 10))));
        check Alcotest.bool "clamped" true
          (close 0.0 (Executor.computing_confidence (Executor.Skip_fraction 1.5))));
  ]

let suite = task_tests @ executor_tests
