open Sc_bignum

let nat = Alcotest.testable Nat.pp Nat.equal

(* A QCheck generator for naturals of up to ~600 bits, biased toward
   interesting shapes (zero, one, powers of two, dense values). *)
let gen_nat =
  let open QCheck2.Gen in
  let dense =
    let* nbits = int_range 1 600 in
    let* bytes = string_size ~gen:char (return ((nbits + 7) / 8)) in
    return (Nat.shift_right (Nat.of_bytes_be bytes) (8 * ((nbits + 7) / 8) - nbits))
  in
  frequency
    [
      1, return Nat.zero;
      1, return Nat.one;
      2, map Nat.of_int (int_range 0 max_int);
      2, map (fun k -> Nat.shift_left Nat.one k) (int_range 0 400);
      10, dense;
    ]

let gen_pos = QCheck2.Gen.(map (fun n -> Nat.add n Nat.one) gen_nat)

let unit_tests =
  let open Util in
  [
    case "zero and one" (fun () ->
        check Alcotest.bool "zero is zero" true (Nat.is_zero Nat.zero);
        check Alcotest.bool "one is one" true (Nat.is_one Nat.one);
        check nat "0 + 0 = 0" Nat.zero (Nat.add Nat.zero Nat.zero);
        check nat "1 * 0 = 0" Nat.zero (Nat.mul Nat.one Nat.zero));
    case "of_int round-trips through to_int" (fun () ->
        List.iter
          (fun n ->
            check (Alcotest.option Alcotest.int) "round trip" (Some n)
              (Nat.to_int_opt (Nat.of_int n)))
          [ 0; 1; 2; 42; 0xFFFF; (1 lsl 26) - 1; 1 lsl 26; 1 lsl 52; max_int ]);
    case "of_int rejects negatives" (fun () ->
        Alcotest.check_raises "negative" (Invalid_argument "Nat.of_int: negative")
          (fun () -> ignore (Nat.of_int (-1))));
    case "decimal round trip" (fun () ->
        let s = "123456789012345678901234567890123456789" in
        check Alcotest.string "decimal" s (Nat.to_decimal (Nat.of_decimal s)));
    case "hex round trip" (fun () ->
        let s = "deadbeef0123456789abcdef" in
        check Alcotest.string "hex" s (Nat.to_hex (Nat.of_hex s));
        check Alcotest.string "0x prefix accepted" s
          (Nat.to_hex (Nat.of_hex ("0x" ^ s))));
    case "known multiplication" (fun () ->
        let a = Nat.of_decimal "123456789012345678901234567890" in
        let b = Nat.of_decimal "987654321098765432109876543210" in
        check Alcotest.string "product"
          "121932631137021795226185032733622923332237463801111263526900"
          (Nat.to_decimal (Nat.mul a b)));
    case "sub underflow raises" (fun () ->
        Alcotest.check_raises "underflow"
          (Invalid_argument "Nat.sub: negative result") (fun () ->
            ignore (Nat.sub Nat.one Nat.two)));
    case "division by zero raises" (fun () ->
        Alcotest.check_raises "div0" Division_by_zero (fun () ->
            ignore (Nat.divmod Nat.one Nat.zero)));
    case "divmod single-limb divisor" (fun () ->
        let a = Nat.of_decimal "123456789012345678901" in
        let q, r = Nat.divmod a (Nat.of_int 97) in
        check nat "reconstruct" a (Nat.add (Nat.mul q (Nat.of_int 97)) r));
    case "divmod Knuth add-back edge" (fun () ->
        (* Divisor with high limb exactly base/2 exercises the qhat
           correction paths. *)
        let b = Nat.shift_left Nat.one 511 in
        let a = Nat.sub (Nat.shift_left Nat.one 1023) Nat.one in
        let q, r = Nat.divmod a b in
        check nat "reconstruct" a (Nat.add (Nat.mul q b) r);
        check Alcotest.bool "r < b" true (Nat.compare r b < 0));
    case "shift left/right inverse" (fun () ->
        let a = Nat.of_decimal "98765432109876543210" in
        check nat "shift" a (Nat.shift_right (Nat.shift_left a 131) 131));
    case "bit_length" (fun () ->
        check Alcotest.int "bit_length 0" 0 (Nat.bit_length Nat.zero);
        check Alcotest.int "bit_length 1" 1 (Nat.bit_length Nat.one);
        check Alcotest.int "bit_length 2^100" 101
          (Nat.bit_length (Nat.shift_left Nat.one 100)));
    case "test_bit" (fun () ->
        let v = Nat.of_int 0b1010010 in
        List.iteri
          (fun i expected ->
            check Alcotest.bool (Printf.sprintf "bit %d" i) expected
              (Nat.test_bit v i))
          [ false; true; false; false; true; false; true; false ]);
    case "bytes big-endian round trip with padding" (fun () ->
        let a = Nat.of_hex "0102030405" in
        let b = Nat.to_bytes_be ~len:8 a in
        check Alcotest.int "padded length" 8 (String.length b);
        check nat "round trip" a (Nat.of_bytes_be b));
    case "to_bytes_be rejects too-small len" (fun () ->
        Alcotest.check_raises "too small"
          (Invalid_argument "Nat.to_bytes_be: value too large for len")
          (fun () -> ignore (Nat.to_bytes_be ~len:1 (Nat.of_int 65536))));
    case "pow small exponents" (fun () ->
        check nat "3^7" (Nat.of_int 2187) (Nat.pow (Nat.of_int 3) 7);
        check nat "x^0" Nat.one (Nat.pow (Nat.of_int 999) 0));
    case "karatsuba threshold crossing" (fun () ->
        (* Multiply numbers straddling the Karatsuba cutoff and check
           against a same-value schoolbook product via distributivity. *)
        let big = Nat.random ~bytes_source:(Util.fresh_bs "kara") ~bits:2000 in
        let split = Nat.shift_right big 1000 in
        let low = Nat.sub big (Nat.shift_left split 1000) in
        (* big = split·2^1000 + low; square both ways *)
        let direct = Nat.mul big big in
        let s2 = Nat.shift_left (Nat.mul split split) 2000 in
        let cross = Nat.shift_left (Nat.mul split low) 1001 in
        let l2 = Nat.mul low low in
        check nat "(a+b)^2 = a^2+2ab+b^2" direct (Nat.add (Nat.add s2 cross) l2));
    case "random_below stays below" (fun () ->
        let bound = Nat.of_decimal "1000000000000000000000000" in
        for _ = 1 to 50 do
          let r = Nat.random_below ~bytes_source:Util.bs bound in
          Alcotest.(check bool) "below" true (Nat.compare r bound < 0)
        done);
  ]

let property_tests =
  let open Util in
  let two = QCheck2.Gen.pair gen_nat gen_nat in
  let three = QCheck2.Gen.triple gen_nat gen_nat gen_nat in
  [
    qcheck "add commutative" two (fun (a, b) ->
        Nat.equal (Nat.add a b) (Nat.add b a));
    qcheck "add associative" three (fun (a, b, c) ->
        Nat.equal (Nat.add a (Nat.add b c)) (Nat.add (Nat.add a b) c));
    qcheck "mul commutative" two (fun (a, b) ->
        Nat.equal (Nat.mul a b) (Nat.mul b a));
    qcheck ~count:50 "mul associative" three (fun (a, b, c) ->
        Nat.equal (Nat.mul a (Nat.mul b c)) (Nat.mul (Nat.mul a b) c));
    qcheck "mul distributes over add" three (fun (a, b, c) ->
        Nat.equal (Nat.mul a (Nat.add b c)) (Nat.add (Nat.mul a b) (Nat.mul a c)));
    qcheck "sub inverts add" two (fun (a, b) ->
        Nat.equal (Nat.sub (Nat.add a b) b) a);
    qcheck "divmod reconstructs" (QCheck2.Gen.pair gen_nat gen_pos)
      (fun (a, b) ->
        let q, r = Nat.divmod a b in
        Nat.equal a (Nat.add (Nat.mul q b) r) && Nat.compare r b < 0);
    qcheck "compare consistent with sub" two (fun (a, b) ->
        match Nat.compare a b with
        | 0 -> Nat.equal a b
        | c when c > 0 -> Nat.equal (Nat.add (Nat.sub a b) b) a
        | _ -> Nat.equal (Nat.add (Nat.sub b a) a) b);
    qcheck "decimal round trip" gen_nat (fun a ->
        Nat.equal a (Nat.of_decimal (Nat.to_decimal a)));
    qcheck "hex round trip" gen_nat (fun a ->
        Nat.equal a (Nat.of_hex (Nat.to_hex a)));
    qcheck "bytes round trip" gen_nat (fun a ->
        Nat.equal a (Nat.of_bytes_be (Nat.to_bytes_be a)));
    qcheck "shift_left k = mul 2^k"
      QCheck2.Gen.(pair gen_nat (int_range 0 200))
      (fun (a, k) ->
        Nat.equal (Nat.shift_left a k) (Nat.mul a (Nat.pow Nat.two k)));
    qcheck "bit_length bounds value" gen_pos (fun a ->
        let n = Nat.bit_length a in
        Nat.compare a (Nat.shift_left Nat.one n) < 0
        && Nat.compare a (Nat.shift_left Nat.one (n - 1)) >= 0);
    qcheck "sqr = mul self" gen_nat (fun a -> Nat.equal (Nat.sqr a) (Nat.mul a a));
  ]

let suite = unit_tests @ property_tests
