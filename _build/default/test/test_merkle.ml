module T = Sc_merkle.Tree

let unit_tests =
  let open Util in
  [
    case "build rejects empty" (fun () ->
        Alcotest.check_raises "empty" (Invalid_argument "Merkle.build: empty leaf list")
          (fun () -> ignore (T.build [])));
    case "single leaf: root = leaf hash" (fun () ->
        let t = T.build [ "only" ] in
        check Alcotest.string "root" (T.leaf_hash "only") (T.root t);
        check Alcotest.int "size" 1 (T.size t);
        check Alcotest.int "depth" 0 (T.depth t);
        let p = T.proof t 0 in
        check Alcotest.bool "proof verifies" true
          (T.verify_proof ~root:(T.root t) ~leaf_payload:"only" p));
    case "deterministic roots" (fun () ->
        let leaves = List.init 9 (Printf.sprintf "leaf-%d") in
        check Alcotest.bool "same" true (T.equal_root (T.build leaves) (T.build leaves)));
    case "order sensitivity" (fun () ->
        let a = T.build [ "x"; "y" ] and b = T.build [ "y"; "x" ] in
        check Alcotest.bool "different" false (T.equal_root a b));
    case "leaf/node domain separation" (fun () ->
        (* A two-leaf tree's root must differ from the leaf hash of the
           concatenation (no second-preimage shortcut). *)
        let t = T.build [ "ab"; "cd" ] in
        check Alcotest.bool "distinct" false
          (String.equal (T.root t) (T.leaf_hash "abcd")));
    case "proofs verify at every size and index" (fun () ->
        List.iter
          (fun n ->
            let payloads = List.init n (Printf.sprintf "p%d-%d" n) in
            let t = T.build payloads in
            List.iteri
              (fun i payload ->
                let proof = T.proof t i in
                if not (T.verify_proof ~root:(T.root t) ~leaf_payload:payload proof)
                then Alcotest.failf "size %d index %d" n i)
              payloads)
          [ 1; 2; 3; 4; 5; 7; 8; 9; 15; 16; 17; 33; 64; 100 ]);
    case "proof for wrong payload fails" (fun () ->
        let t = T.build [ "a"; "b"; "c"; "d"; "e" ] in
        let proof = T.proof t 2 in
        check Alcotest.bool "wrong payload" false
          (T.verify_proof ~root:(T.root t) ~leaf_payload:"x" proof));
    case "proof against wrong root fails" (fun () ->
        let t = T.build [ "a"; "b"; "c"; "d" ] in
        let other = T.build [ "a"; "b"; "c"; "x" ] in
        let proof = T.proof t 0 in
        check Alcotest.bool "wrong root" false
          (T.verify_proof ~root:(T.root other) ~leaf_payload:"a" proof));
    case "tampered sibling in path fails" (fun () ->
        let t = T.build [ "a"; "b"; "c"; "d" ] in
        let proof = T.proof t 1 in
        let tampered =
          {
            proof with
            T.path =
              (match proof.T.path with
              | (side, h) :: rest ->
                (side, T.leaf_hash (h ^ "!")) :: rest
              | [] -> []);
          }
        in
        check Alcotest.bool "tampered" false
          (T.verify_proof ~root:(T.root t) ~leaf_payload:"b" tampered));
    case "proof out of bounds raises" (fun () ->
        let t = T.build [ "a"; "b" ] in
        Alcotest.check_raises "oob" (Invalid_argument "Merkle.proof: index out of bounds")
          (fun () -> ignore (T.proof t 2)));
    case "update_leaf changes root and proofs" (fun () ->
        let t = T.build [ "a"; "b"; "c"; "d"; "e" ] in
        let t' = T.update_leaf t 3 "D" in
        check Alcotest.bool "root changed" false (T.equal_root t t');
        check Alcotest.bool "new proof ok" true
          (T.verify_proof ~root:(T.root t') ~leaf_payload:"D" (T.proof t' 3));
        check Alcotest.bool "old payload fails" false
          (T.verify_proof ~root:(T.root t') ~leaf_payload:"d" (T.proof t' 3));
        (* untouched leaves still verify *)
        check Alcotest.bool "other leaf ok" true
          (T.verify_proof ~root:(T.root t') ~leaf_payload:"a" (T.proof t' 0)));
    case "depth grows logarithmically" (fun () ->
        check Alcotest.int "2 leaves" 1 (T.depth (T.build [ "a"; "b" ]));
        check Alcotest.int "4 leaves" 2 (T.depth (T.build [ "a"; "b"; "c"; "d" ]));
        check Alcotest.int "8 leaves" 3
          (T.depth (T.build (List.init 8 string_of_int)));
        check Alcotest.int "9 leaves" 4
          (T.depth (T.build (List.init 9 string_of_int))));
  ]

let property_tests =
  let open Util in
  let gen_leaves =
    QCheck2.Gen.(list_size (int_range 1 80) (string_size ~gen:printable (int_range 0 20)))
  in
  [
    qcheck ~count:60 "all proofs verify on random trees" gen_leaves (fun leaves ->
        let t = T.build leaves in
        List.for_all
          (fun i ->
            T.verify_proof ~root:(T.root t)
              ~leaf_payload:(List.nth leaves i) (T.proof t i))
          (List.init (List.length leaves) Fun.id));
    qcheck ~count:60 "any single-leaf tamper is detected"
      QCheck2.Gen.(pair gen_leaves small_nat)
      (fun (leaves, idx) ->
        let n = List.length leaves in
        let i = idx mod n in
        let t = T.build leaves in
        let tampered = List.mapi (fun j l -> if j = i then l ^ "~" else l) leaves in
        let t' = T.build tampered in
        not (T.equal_root t t'));
    qcheck ~count:60 "build_of_hashes agrees with build" gen_leaves (fun leaves ->
        T.equal_root (T.build leaves)
          (T.build_of_hashes (List.map T.leaf_hash leaves)));
  ]

let suite = unit_tests @ property_tests
