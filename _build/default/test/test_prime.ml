open Sc_bignum

let known_primes =
  [ "2"; "3"; "5"; "7"; "65537"; "1000000007"; "32416190071";
    (* 2^127 - 1, a Mersenne prime *)
    "170141183460469231731687303715884105727" ]

let known_composites =
  [ "1"; "4"; "100"; "65536"; "1000000008";
    (* Carmichael numbers defeat Fermat but not Miller-Rabin *)
    "561"; "41041"; "825265";
    (* 2^128 + 1 is composite *)
    "340282366920938463463374607431768211457" ]

let unit_tests =
  let open Util in
  let bs = Util.fresh_bs "prime-tests" in
  [
    case "small_primes sieve sanity" (fun () ->
        check Alcotest.int "first prime" 2 Prime.small_primes.(0);
        check Alcotest.int "second prime" 3 Prime.small_primes.(1);
        check Alcotest.int "count below 10000" 1229
          (Array.length Prime.small_primes);
        check Alcotest.int "last prime below 10000" 9973
          Prime.small_primes.(Array.length Prime.small_primes - 1));
    case "known primes accepted" (fun () ->
        List.iter
          (fun p ->
            check Alcotest.bool p true
              (Prime.is_probably_prime ~bytes_source:bs (Nat.of_decimal p)))
          known_primes);
    case "known composites rejected" (fun () ->
        List.iter
          (fun c ->
            check Alcotest.bool c false
              (Prime.is_probably_prime ~bytes_source:bs (Nat.of_decimal c)))
          known_composites);
    case "zero and one are not prime" (fun () ->
        check Alcotest.bool "0" false
          (Prime.is_probably_prime ~bytes_source:bs Nat.zero);
        check Alcotest.bool "1" false
          (Prime.is_probably_prime ~bytes_source:bs Nat.one));
    case "next_prime" (fun () ->
        let np n = Nat.to_int_exn (Prime.next_prime ~bytes_source:bs (Nat.of_int n)) in
        check Alcotest.int "next from 0" 2 (np 0);
        check Alcotest.int "next from 8" 11 (np 8);
        check Alcotest.int "next from 7919" 7919 (np 7919);
        check Alcotest.int "next from 7920" 7927 (np 7920));
    case "random_prime has requested size and is odd" (fun () ->
        List.iter
          (fun bits ->
            let p = Prime.random_prime ~bytes_source:bs ~bits in
            check Alcotest.int "bits" bits (Nat.bit_length p);
            check Alcotest.bool "odd" false (Nat.is_even p))
          [ 16; 64; 128; 256 ]);
    slow_case "random 512-bit prime" (fun () ->
        let p = Prime.random_prime ~bytes_source:bs ~bits:512 in
        check Alcotest.int "bits" 512 (Nat.bit_length p);
        (* Verify with an independent witness set. *)
        check Alcotest.bool "still prime" true
          (Prime.is_probably_prime ~bytes_source:(Util.fresh_bs "recheck") p));
    case "product of two primes rejected" (fun () ->
        let p = Prime.random_prime ~bytes_source:bs ~bits:64 in
        let q = Prime.random_prime ~bytes_source:bs ~bits:64 in
        check Alcotest.bool "pq composite" false
          (Prime.is_probably_prime ~bytes_source:bs (Nat.mul p q)));
  ]

let suite = unit_tests
