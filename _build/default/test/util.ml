(* Shared test fixtures.  Everything is seeded: a failure reproduces
   byte-for-byte. *)

let drbg = Sc_hash.Drbg.create ~seed:"test-suite"
let bs = Sc_hash.Drbg.bytes_source drbg

(* Fresh, independent randomness for property tests that must not
   interfere with each other. *)
let fresh_bs name = Sc_hash.Drbg.bytes_source (Sc_hash.Drbg.create ~seed:name)

let toy_params = Sc_pairing.Params.toy


let shared_system =
  lazy
    (Seccloud.System.create ~params:toy_params ~seed:"test-system"
       ~cs_ids:[ "cs-1"; "cs-2" ] ~da_id:"da" ())

let qcheck ?(count = 100) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let check = Alcotest.check
let case name f = Alcotest.test_case name `Quick f
let slow_case name f = Alcotest.test_case name `Slow f
