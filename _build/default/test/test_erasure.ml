module Gf = Sc_erasure.Gf256
module Rs = Sc_erasure.Reed_solomon
module Por = Sc_pdp.Por

let gf_tests =
  let open Util in
  [
    case "field axioms on exhaustive small checks" (fun () ->
        (* full multiplicative inverse table *)
        for a = 1 to 255 do
          check Alcotest.int (Printf.sprintf "%d * %d^-1" a a) 1 (Gf.mul a (Gf.inv a))
        done;
        (* spot associativity / distributivity *)
        List.iter
          (fun (a, b, c) ->
            check Alcotest.int "assoc" (Gf.mul a (Gf.mul b c)) (Gf.mul (Gf.mul a b) c);
            check Alcotest.int "distrib"
              (Gf.mul a (Gf.add b c))
              (Gf.add (Gf.mul a b) (Gf.mul a c)))
          [ 7, 13, 200; 0x53, 0xCA, 5; 255, 254, 253 ]);
    case "AES known product 0x57 * 0x83 = 0xC1" (fun () ->
        check Alcotest.int "known" 0xC1 (Gf.mul 0x57 0x83));
    case "add is xor and self-inverse" (fun () ->
        check Alcotest.int "xor" (0x57 lxor 0x83) (Gf.add 0x57 0x83);
        check Alcotest.int "self" 0 (Gf.add 0x42 0x42));
    case "exp/log inverse" (fun () ->
        for a = 1 to 255 do
          check Alcotest.int "exp(log a) = a" a (Gf.exp (Gf.log a))
        done);
    case "pow laws" (fun () ->
        check Alcotest.int "a^0" 1 (Gf.pow 7 0);
        check Alcotest.int "a^1" 7 (Gf.pow 7 1);
        check Alcotest.int "a^255 = 1" 1 (Gf.pow 7 255);
        check Alcotest.int "0^k" 0 (Gf.pow 0 5));
    case "division" (fun () ->
        check Alcotest.int "a*b/b" 0x57 (Gf.div (Gf.mul 0x57 0x83) 0x83);
        Alcotest.check_raises "div0" Division_by_zero (fun () -> ignore (Gf.inv 0)));
  ]

let rs_tests =
  let open Util in
  let p = Rs.create ~k:4 ~n:10 in
  let data = "The quick brown fox jumps over the lazy dog 0123456789." in
  [
    case "create validates parameters" (fun () ->
        Alcotest.check_raises "k=0"
          (Invalid_argument "Reed_solomon.create: need 1 <= k <= n <= 255")
          (fun () -> ignore (Rs.create ~k:0 ~n:5));
        Alcotest.check_raises "n<k"
          (Invalid_argument "Reed_solomon.create: need 1 <= k <= n <= 255")
          (fun () -> ignore (Rs.create ~k:5 ~n:4)));
    case "all shards present decodes" (fun () ->
        let shards = Rs.encode_string p data in
        let survivors = List.mapi (fun i s -> i, s) shards in
        check Alcotest.(option string) "full" (Some data)
          (Rs.decode_string p survivors));
    case "any k-subset decodes" (fun () ->
        let shards = Array.of_list (Rs.encode_string p data) in
        List.iter
          (fun subset ->
            let survivors = List.map (fun i -> i, shards.(i)) subset in
            check Alcotest.(option string)
              (String.concat "," (List.map string_of_int subset))
              (Some data)
              (Rs.decode_string p survivors))
          [ [ 0; 1; 2; 3 ]; [ 6; 7; 8; 9 ]; [ 0; 3; 5; 9 ]; [ 9; 2; 7; 4 ] ]);
    case "fewer than k shards fails" (fun () ->
        let shards = Array.of_list (Rs.encode_string p data) in
        check Alcotest.(option string) "3 of 4" None
          (Rs.decode_string p [ 0, shards.(0); 1, shards.(1); 2, shards.(2) ]));
    case "duplicate and out-of-range survivors are sanitized" (fun () ->
        let shards = Array.of_list (Rs.encode_string p data) in
        let survivors =
          [ 0, shards.(0); 0, shards.(0); 77, "junk"; 1, shards.(1);
            2, shards.(2); 3, shards.(3) ]
        in
        check Alcotest.(option string) "sanitized" (Some data)
          (Rs.decode_string p survivors));
    case "empty data round trips" (fun () ->
        let shards = Rs.encode_string p "" in
        check Alcotest.(option string) "empty" (Some "")
          (Rs.decode_string p (List.mapi (fun i s -> i, s) shards)));
    case "k = 1 replication special case" (fun () ->
        let p1 = Rs.create ~k:1 ~n:5 in
        let shards = Array.of_list (Rs.encode_string p1 "hello") in
        check Alcotest.(option string) "one survivor" (Some "hello")
          (Rs.decode_string p1 [ 3, shards.(3) ]));
    case "k = n degenerate (no redundancy)" (fun () ->
        let pn = Rs.create ~k:3 ~n:3 in
        let shards = Array.of_list (Rs.encode_string pn data) in
        check Alcotest.(option string) "all needed" (Some data)
          (Rs.decode_string pn [ 0, shards.(0); 1, shards.(1); 2, shards.(2) ]));
  ]

let rs_property_tests =
  let open Util in
  let gen =
    QCheck2.Gen.(
      triple (int_range 1 8) (int_range 0 8)
        (string_size ~gen:printable (int_range 0 200)))
  in
  [
    qcheck ~count:60 "random (k, extra, data): drop any n-k shards" gen
      (fun (k, extra, data) ->
        let n = k + extra in
        let p = Rs.create ~k ~n in
        let shards = Array.of_list (Rs.encode_string p data) in
        (* keep the last k shards — a worst-ish case subset *)
        let survivors = List.init k (fun i -> n - 1 - i, shards.(n - 1 - i)) in
        Rs.decode_string p survivors = Some data);
  ]

let por_tests =
  let open Util in
  let data = String.concat ";" (List.init 120 (Printf.sprintf "row-%d")) in
  let make () = Por.encode ~key:"por-test-key" ~k:6 ~n:15 ~sentinels:10 data in
  [
    case "sentinel audit passes on intact storage" (fun () ->
        let client, stored = make () in
        let drbg = Sc_hash.Drbg.create ~seed:"pc" in
        let chal = Por.challenge client ~drbg ~count:6 in
        check Alcotest.int "asked" 6 (List.length chal);
        check Alcotest.bool "pass" true
          (Por.verify_response client
             (List.map (fun pos -> pos, Some stored.(pos)) chal)));
    case "missing sentinel fails the audit" (fun () ->
        let client, stored = make () in
        let drbg = Sc_hash.Drbg.create ~seed:"pm" in
        let chal = Por.challenge client ~drbg ~count:4 in
        let responses =
          List.mapi
            (fun i pos -> pos, if i = 2 then None else Some stored.(pos))
            chal
        in
        check Alcotest.bool "fail" false (Por.verify_response client responses));
    case "substituted sentinel fails the audit" (fun () ->
        let client, stored = make () in
        let drbg = Sc_hash.Drbg.create ~seed:"ps" in
        let chal = Por.challenge client ~drbg ~count:4 in
        let other = stored.(List.hd chal) in
        let responses =
          List.mapi
            (fun i pos -> pos, Some (if i = 1 then other else stored.(pos)))
            chal
        in
        (* Either the MAC (position-bound) or the sentinel value check
           must reject the swap. *)
        check Alcotest.bool "fail" false (Por.verify_response client responses));
    case "over-challenging raises" (fun () ->
        let client, _ = make () in
        Alcotest.check_raises "too many"
          (Invalid_argument "Por.challenge: not enough sentinels") (fun () ->
            ignore
              (Por.challenge client
                 ~drbg:(Sc_hash.Drbg.create ~seed:"x")
                 ~count:11)));
    case "extraction survives maximal tolerable damage" (fun () ->
        let client, stored = make () in
        (* Keep only the 6 code shards needed: delete everything else.
           Erasing 9 of 15 code shards plus all sentinels must still
           decode. *)
        let damaged = Array.map (fun b -> Some b) stored in
        let deleted = ref 0 in
        Array.iteri
          (fun pos _ ->
            if !deleted < Array.length stored - 6 && pos mod 5 <> 0 then begin
              damaged.(pos) <- None;
              incr deleted
            end)
          stored;
        (* ensure at least 6 blocks remain *)
        match Por.extract client damaged with
        | Some d -> check Alcotest.string "recovered" data d
        | None ->
          (* the positional deletion pattern might have clipped code
             shards below k; rebuild with a guaranteed-safe pattern *)
          let safe = Array.map (fun b -> Some b) stored in
          Array.iteri (fun pos _ -> if pos mod 2 = 1 then safe.(pos) <- None) stored;
          (match Por.extract client safe with
          | Some d -> check Alcotest.string "recovered (safe pattern)" data d
          | None -> Alcotest.fail "extraction failed under 50% deletion"));
    case "corrupted blocks are located by MAC and treated as erasures" (fun () ->
        let client, stored = make () in
        (* Corrupt a third of the blocks in place; the MACs must route
           them to the erasure path rather than poisoning the decode. *)
        let flip (b : Por.stored_block) =
          {
            b with
            Por.payload =
              String.map (fun c -> Char.chr (Char.code c lxor 1)) b.Por.payload;
          }
        in
        let corrupted =
          Array.mapi
            (fun pos b -> Some (if pos mod 3 = 0 then flip b else b))
            stored
        in
        match Por.extract client corrupted with
        | Some d -> check Alcotest.string "recovered" data d
        | None -> Alcotest.fail "extraction failed with corrupt third");
    case "total destruction yields None" (fun () ->
        let client, stored = make () in
        check Alcotest.(option string) "gone" None
          (Por.extract client (Array.map (fun _ -> None) stored)));
    case "extraction is exact across sizes" (fun () ->
        List.iter
          (fun size ->
            let payload = String.init size (fun i -> Char.chr (i mod 251)) in
            let client, stored =
              Por.encode ~key:"sz" ~k:4 ~n:9 ~sentinels:3 payload
            in
            match Por.extract client (Array.map (fun b -> Some b) stored) with
            | Some d ->
              if not (String.equal d payload) then
                Alcotest.failf "mismatch at size %d" size
            | None -> Alcotest.failf "failed at size %d" size)
          [ 0; 1; 7; 64; 1000 ]);
  ]

let suite = gf_tests @ rs_tests @ rs_property_tests @ por_tests
