test/test_seccloud.ml: Alcotest Array Fun List Printf Sc_audit Sc_compute Sc_ec Sc_hash Sc_ibc Sc_pairing Sc_storage Seccloud Util
