test/test_erasure.ml: Alcotest Array Char List Printf QCheck2 Sc_erasure Sc_hash Sc_pdp String Util
