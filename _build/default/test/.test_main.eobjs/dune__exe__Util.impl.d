test/util.ml: Alcotest QCheck2 QCheck_alcotest Sc_hash Sc_pairing Seccloud
