test/test_wire.ml: Alcotest Array Buffer Char Float Lazy List Option Printf Sc_audit Sc_compute Sc_hash Sc_ibc Sc_pairing Sc_storage Seccloud String Util
