test/test_audit.ml: Alcotest Float Lazy List Option Sc_audit Sc_compute Sc_hash Sc_ibc Sc_storage Seccloud Util
