test/test_storage.ml: Alcotest Array Block Dynamic Float Lazy List Option Printf Sc_hash Sc_ibc Sc_pairing Sc_storage Seccloud Server Signer String Util
