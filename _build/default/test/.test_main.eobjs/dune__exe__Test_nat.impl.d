test/test_nat.ml: Alcotest List Nat Printf QCheck2 Sc_bignum String Util
