test/test_modular.ml: Alcotest List Modular Montgomery Nat Printf QCheck2 Sc_bignum Signed Util
