test/test_ec.ml: Alcotest Curve Fp Lazy List Nat Printf QCheck2 Sc_bignum Sc_ec Sc_field Sc_pairing String Util
