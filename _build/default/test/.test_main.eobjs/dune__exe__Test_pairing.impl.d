test/test_pairing.ml: Alcotest Curve Lazy Nat QCheck2 Sc_bignum Sc_ec Sc_field Sc_hash Sc_pairing Util
