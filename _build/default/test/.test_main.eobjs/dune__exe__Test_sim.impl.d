test/test_sim.ml: Alcotest Float Fun Hashtbl List Printf Sc_audit Sc_hash Sc_sim Util
