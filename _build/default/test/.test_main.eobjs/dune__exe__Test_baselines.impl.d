test/test_baselines.ml: Alcotest Array Lazy List Printf Sc_bignum Sc_bls Sc_ec Sc_ecdsa Sc_pairing Sc_pdp Sc_rsa Util
