test/test_prime.ml: Alcotest Array List Nat Prime Sc_bignum Util
