test/test_merkle.ml: Alcotest Fun List Printf QCheck2 Sc_merkle String Util
