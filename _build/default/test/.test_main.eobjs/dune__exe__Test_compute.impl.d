test/test_compute.ml: Alcotest Array Executor Float Lazy List Printf Sc_compute Sc_hash Sc_ibc Sc_merkle Sc_storage Seccloud String Task Util
