test/test_hash.ml: Alcotest Array Char Fun List Printf Sc_hash String Util
