test/test_ibc.ml: Agg Alcotest Char Dvs Ibe Ibs Lazy List Printf QCheck2 Sc_ec Sc_ibc Sc_pairing Setup String Util Warrant
