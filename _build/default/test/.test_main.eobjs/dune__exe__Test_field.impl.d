test/test_field.ml: Alcotest Fp Fp2 List Nat Printf QCheck2 Sc_bignum Sc_field Util
