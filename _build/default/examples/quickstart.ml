(* Quickstart: the complete SecCloud flow in ~60 lines.

     dune exec examples/quickstart.exe

   A user stores signed data on a cloud server, outsources a
   computation, and the designated agency audits both — Protocols
   I-III of the paper. *)

let () =
  (* Protocol I: system initialization.  The SIO picks a master key
     and extracts identity-based keys for every party. *)
  let system =
    Seccloud.System.create ~params:Sc_pairing.Params.toy ~seed:"quickstart"
      ~cs_ids:[ "acme-cloud" ] ~da_id:"trusted-auditor" ()
  in
  let alice = Seccloud.User.create system ~id:"alice@example.com" in
  let cloud = Seccloud.Cloud.create system ~id:"acme-cloud" () in
  let agency = Seccloud.Agency.create system in
  print_endline "1. system initialized: user, cloud server and agency registered";

  (* Protocol II: secure cloud storage.  Alice signs each block with
     her identity-based key, designates the cloud server and the
     agency as the only parties able to verify, uploads, and can then
     delete her local copy. *)
  let sensor_readings =
    List.init 32 (fun hour ->
        Sc_storage.Block.encode_ints
          (List.init 12 (fun m -> 20 + ((hour * 7 + m * 3) mod 15))))
  in
  let accepted = Seccloud.User.store alice cloud ~file:"sensor-log" sensor_readings in
  Printf.printf "2. uploaded 32 signed blocks (server accepted: %b)\n" accepted;

  (* The agency spot-checks storage integrity (eq. 7). *)
  let report =
    Seccloud.Agency.audit_storage agency cloud ~owner:"alice@example.com"
      ~file:"sensor-log" ~samples:10
  in
  Printf.printf "3. storage audit: %d/%d sampled blocks valid, intact=%b\n"
    report.Seccloud.Agency.valid_blocks report.Seccloud.Agency.sampled
    report.Seccloud.Agency.intact;

  (* Protocol III: secure cloud computation.  The server evaluates the
     requested functions and commits to all results in a Merkle tree
     whose signed root is returned with the answers. *)
  let service =
    List.init 16 (fun i ->
        { Sc_compute.Task.func =
            (if i mod 2 = 0 then Sc_compute.Task.Average else Sc_compute.Task.Max);
          position = i })
  in
  let execution =
    Seccloud.Cloud.execute cloud ~owner:"alice@example.com" ~file:"sensor-log"
      service
  in
  let results = Sc_compute.Executor.results execution in
  Printf.printf "4. cloud computed %d sub-tasks (first results: %d %d %d ...)\n"
    (Array.length results) results.(0) results.(1) results.(2);

  (* Alice delegates auditing to the agency with a time-limited
     warrant, and the agency runs Algorithm 1 on a random sample. *)
  let warrant =
    Seccloud.User.delegate_audit alice ~now:0.0 ~lifetime:3600.0
      ~scope:"audit sensor-log computation"
  in
  let samples =
    Seccloud.Agency.choose_sample_size ~eps:1e-4 ~csc:0.9 ~ssc:0.9 ()
  in
  let verdict =
    Seccloud.Agency.audit_computation agency cloud ~owner:"alice@example.com"
      ~execution ~warrant ~now:60.0 ~samples:(min samples 16)
  in
  Printf.printf "5. computation audit with t=%d samples: %s\n"
    (min samples 16)
    (if verdict.Sc_audit.Protocol.valid then "PASS" else "FAIL")
