examples/computation_audit.mli:
