examples/dynamic_storage.mli:
