examples/computation_audit.ml: Format List Printf Sc_audit Sc_compute Sc_pairing Sc_storage Seccloud
