examples/distributed_mapreduce.ml: Array Fun List Printf Sc_audit Sc_compute Sc_pairing Sc_storage Seccloud String
