examples/adaptive_auditing.mli:
