examples/dynamic_storage.ml: Lazy List Option Printf Sc_hash Sc_ibc Sc_pairing Sc_storage String
