examples/distributed_mapreduce.mli:
