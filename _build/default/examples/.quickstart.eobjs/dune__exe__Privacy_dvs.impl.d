examples/privacy_dvs.ml: Lazy Printf Sc_hash Sc_ibc Sc_pairing
