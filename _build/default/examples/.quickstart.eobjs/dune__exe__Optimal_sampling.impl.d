examples/optimal_sampling.ml: List Printf Sc_audit Sc_sim
