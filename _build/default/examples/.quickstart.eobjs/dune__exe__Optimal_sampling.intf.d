examples/optimal_sampling.mli:
