examples/multiuser_batch.mli:
