examples/multiuser_batch.ml: List Printf Sc_audit Sc_compute Sc_hash Sc_pairing Sc_storage Seccloud
