examples/byzantine_cloud.ml: List Printf Sc_audit Sc_sim
