examples/byzantine_cloud.mli:
