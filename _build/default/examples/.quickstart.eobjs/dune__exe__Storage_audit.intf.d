examples/storage_audit.mli:
