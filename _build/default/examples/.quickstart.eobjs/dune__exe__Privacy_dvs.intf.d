examples/privacy_dvs.mli:
