examples/quickstart.ml: Array List Printf Sc_audit Sc_compute Sc_pairing Sc_storage Seccloud
