examples/encrypted_retrievable.mli:
