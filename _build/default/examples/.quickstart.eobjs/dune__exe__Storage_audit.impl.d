examples/storage_audit.ml: List Printf Sc_pairing Sc_storage Seccloud String
