examples/encrypted_retrievable.ml: Array Lazy List Printf Sc_hash Sc_ibc Sc_pairing Sc_pdp String
