examples/quickstart.mli:
