examples/adaptive_auditing.ml: Printf Sc_audit Sc_hash
