(* MapReduce-style distributed computation with batched auditing
   (§III-A's motivating scenario).

     dune exec examples/distributed_mapreduce.exe

   A service is partitioned across three cloud servers; results are
   recombined; the DA audits all shards in one §VI batch.  A cheating
   shard poisons the whole job's verdict. *)

module D = Seccloud.Distributed
module Task = Sc_compute.Task

let () =
  let system =
    Seccloud.System.create ~params:Sc_pairing.Params.toy ~seed:"mapreduce"
      ~cs_ids:[ "cs-east"; "cs-west"; "cs-north" ] ~da_id:"da" ()
  in
  let user = Seccloud.User.create system ~id:"data-team" in
  let agency = Seccloud.Agency.create system in
  let clouds =
    List.map (fun id -> Seccloud.Cloud.create system ~id ())
      [ "cs-east"; "cs-west"; "cs-north" ]
  in
  (* Daily per-region sales vectors. *)
  let payloads =
    List.init 30 (fun day ->
        Sc_storage.Block.encode_ints
          (List.init 6 (fun region -> 100 + ((day * 17 + region * 31) mod 250))))
  in
  assert (D.store_replicated user clouds ~file:"sales" payloads);
  Printf.printf "file replicated to %d servers\n" (List.length clouds);

  (* map: daily total over each block; reduce: month total. *)
  (match
     D.map_reduce ~owner:"data-team" ~file:"sales" ~clouds ~map:Task.Sum
       ~positions:(List.init 30 Fun.id) ~reduce:Task.Sum
   with
  | Ok (total, execution) ->
    Printf.printf "map(Sum) over 30 days across 3 servers; reduce(Sum) = %d\n"
      total;
    let shard_sizes =
      List.map
        (fun (s, _) -> Array.length s.D.original_indices)
        execution.D.shards
    in
    Printf.printf "shard sizes: %s\n"
      (String.concat ", " (List.map string_of_int shard_sizes));
    (* One batched audit covers all three shards. *)
    let warrant =
      Seccloud.User.delegate_audit user ~now:0.0 ~lifetime:3600.0
        ~scope:"audit monthly sales job"
    in
    Sc_pairing.Tate.reset_pairing_count ();
    let verdict = D.audit agency execution ~warrant ~now:10.0 ~samples_per_shard:4 in
    Printf.printf "batched audit of all shards: %s (%d pairings)\n"
      (if verdict.Sc_audit.Protocol.valid then "PASS" else "FAIL")
      (Sc_pairing.Tate.pairings_performed ())
  | Error e -> prerr_endline e);

  (* Same job, but one region's server guesses instead of computing. *)
  let clouds_with_cheat =
    [
      Seccloud.Cloud.create system ~id:"cs-east" ();
      Seccloud.Cloud.create system ~id:"cs-west"
        ~compute:(Sc_compute.Executor.Guess_fraction (1.0, 1 lsl 20)) ();
      Seccloud.Cloud.create system ~id:"cs-north" ();
    ]
  in
  assert (D.store_replicated user clouds_with_cheat ~file:"sales" payloads);
  match
    D.map_reduce ~owner:"data-team" ~file:"sales" ~clouds:clouds_with_cheat
      ~map:Task.Sum ~positions:(List.init 30 Fun.id) ~reduce:Task.Sum
  with
  | Ok (bogus_total, execution) ->
    Printf.printf "\nwith a cheating shard, reduce = %d (silently wrong!)\n"
      bogus_total;
    let warrant =
      Seccloud.User.delegate_audit user ~now:0.0 ~lifetime:3600.0 ~scope:"audit"
    in
    let verdict = D.audit agency execution ~warrant ~now:10.0 ~samples_per_shard:4 in
    Printf.printf "batched audit verdict: %s — the cheat does not survive\n"
      (if verdict.Sc_audit.Protocol.valid then "PASS" else "FAIL")
  | Error e -> prerr_endline e
