(* Choosing the audit sample size (§VII-A and Theorem 3).

     dune exec examples/optimal_sampling.exe

   Two ways to pick t:
   1. Security-driven: the smallest t with Pr[cheating succeeds] <= eps
      (Figure 4's calculation).
   2. Cost-driven: Theorem 3's optimum balancing transmission cost
      against expected undetected-cheat damage, with the cost
      coefficients learned from simulated audit history. *)

module Sampling = Sc_audit.Sampling
module Optimal = Sc_audit.Optimal

let () =
  print_endline "security-driven sample sizes (eps = 1e-4):";
  Printf.printf "%8s %8s %8s %10s\n" "CSC" "SSC" "|R|" "t";
  List.iter
    (fun (csc, ssc, range) ->
      let t =
        Sampling.required_samples ~csc ~ssc ~range ~sig_forge:1e-9 ~eps:1e-4 ()
      in
      Printf.printf "%8.2f %8.2f %8s %10s\n" csc ssc
        (if range = infinity then "inf" else Printf.sprintf "%.0f" range)
        (match t with Some t -> string_of_int t | None -> "unbounded"))
    [
      0.5, 0.5, 2.0;
      0.5, 0.5, infinity;
      0.9, 0.9, 2.0;
      0.99, 0.99, infinity;
      0.0, 0.0, 2.0;
    ];

  print_endline "\ncost-driven optimum (Theorem 3) for varying cheat damage:";
  Printf.printf "%12s %10s %10s %14s\n" "C_cheat" "t* closed" "t* brute"
    "min cost";
  List.iter
    (fun c_cheat ->
      let costs =
        { Optimal.a1 = 1.0; a2 = 1.0; a3 = 1.0; c_trans = 2.0; c_comp = 5.0; c_cheat }
      in
      let closed = Optimal.optimal_t costs ~cheat_prob:0.5 in
      let brute = Optimal.argmin_t costs ~cheat_prob:0.5 in
      Printf.printf "%12.0f %10d %10d %14.2f\n" c_cheat closed brute
        (Optimal.total_cost costs ~cheat_prob:0.5 ~t:brute))
    [ 1e2; 1e4; 1e6; 1e9 ];

  (* History learning: run a short simulated deployment, extract the
     per-sample costs it actually incurred, and derive t*. *)
  print_endline "\nhistory learning from a simulated deployment:";
  let stats =
    Sc_sim.Engine.run
      {
        Sc_sim.Engine.default_config with
        Sc_sim.Engine.seed = "optimal-example";
        epochs = 4;
        n_users = 2;
        samples_per_audit = 6;
        cheat_damage = 2000.0;
      }
  in
  let learned = Sc_sim.Engine.learned_costs stats in
  Printf.printf
    "observed %d audits: C_trans=%.0f bytes/sample, C_comp=%.4fs/audit, \
     C_cheat=%.0f\n"
    (List.length stats.Sc_sim.Engine.records)
    learned.Optimal.c_trans learned.Optimal.c_comp learned.Optimal.c_cheat;
  if learned.Optimal.c_cheat > 0.0 then begin
    (* Normalize bytes to a monetary unit before comparing. *)
    let costs = { learned with Optimal.c_trans = learned.Optimal.c_trans *. 1e-5 } in
    List.iter
      (fun q ->
        Printf.printf "assumed per-audit cheat probability q=%.2f -> t* = %d\n" q
          (Optimal.optimal_t costs ~cheat_prob:q))
      [ 0.3; 0.5; 0.8 ]
  end
  else
    print_endline
      "no undetected cheats in this history; with C_cheat = 0 Theorem 3 \
       degenerates to t* = 0 (sampling buys nothing)"
