(* A multi-epoch Byzantine cloud deployment (§III-B adversary model).

     dune exec examples/byzantine_cloud.exe

   A mobile adversary corrupts up to b of the n servers each epoch
   with behaviours drawn from the full attack catalogue; users keep
   storing and outsourcing; the DA audits everything.  The run prints
   per-epoch outcomes and the aggregate detection statistics. *)

let () =
  let config =
    {
      Sc_sim.Engine.default_config with
      Sc_sim.Engine.seed = "byzantine-example";
      n_servers = 5;
      byzantine_bound = 2;
      n_users = 3;
      epochs = 6;
      blocks_per_file = 24;
      tasks_per_service = 12;
      samples_per_audit = 8;
      cheat_damage = 1000.0;
    }
  in
  Printf.printf
    "simulating %d epochs: %d servers (adversary bound b=%d), %d users\n\n"
    config.Sc_sim.Engine.epochs config.Sc_sim.Engine.n_servers
    config.Sc_sim.Engine.byzantine_bound config.Sc_sim.Engine.n_users;
  let stats = Sc_sim.Engine.run config in
  Printf.printf "%6s %-8s %-8s %8s %10s %10s\n" "epoch" "server" "user"
    "cheats?" "storage" "compute";
  List.iter
    (fun (o : Sc_sim.Engine.audit_outcome) ->
      Printf.printf "%6d %-8s %-8s %8b %10s %10s\n" o.Sc_sim.Engine.epoch
        o.Sc_sim.Engine.server o.Sc_sim.Engine.user o.Sc_sim.Engine.server_cheats
        (if o.Sc_sim.Engine.storage_ok then "ok" else "FAIL")
        (if o.Sc_sim.Engine.computation_ok then "ok" else "FAIL"))
    stats.Sc_sim.Engine.outcomes;
  Printf.printf
    "\n\
     totals: detected=%d undetected=%d false_alarms=%d honest_passed=%d\n\
     detection rate: %.2f   network bytes: %d   virtual time: %.0fs\n"
    stats.Sc_sim.Engine.detected stats.Sc_sim.Engine.undetected
    stats.Sc_sim.Engine.false_alarms stats.Sc_sim.Engine.honest_passed
    (Sc_sim.Engine.detection_rate stats)
    stats.Sc_sim.Engine.total_bytes stats.Sc_sim.Engine.sim_time;
  (* Cross-check the empirical miss rate against the closed form for
     the catalogue's average confidences. *)
  let predicted =
    Sc_audit.Sampling.pr_cheat ~csc:0.7 ~ssc:0.7 ~range:1000.0 ~sig_forge:1e-9
      ~t:config.Sc_sim.Engine.samples_per_audit
  in
  Printf.printf
    "closed-form survival bound for a 30%%-cheating server at t=%d: %.4f\n"
    config.Sc_sim.Engine.samples_per_audit predicted
