(* Concurrent multi-user auditing with batch verification (§VI).

     dune exec examples/multiuser_batch.exe

   Several users outsource computations to the same provider; the DA
   audits all of them in one aggregated designated-verifier equation
   and the pairing counter shows the §VI saving: the signature check
   costs one pairing for the whole batch instead of one per sample. *)

let () =
  let users = [ "alice"; "bob"; "carol"; "dave"; "erin" ] in
  let system =
    Seccloud.System.create ~params:Sc_pairing.Params.toy ~seed:"multiuser"
      ~cs_ids:[ "shared-cloud" ] ~da_id:"da" ()
  in
  let agency = Seccloud.Agency.create system in
  let cloud = Seccloud.Cloud.create system ~id:"shared-cloud" () in
  let drbg = Sc_hash.Drbg.create ~seed:"workloads" in
  let jobs =
    List.map
      (fun name ->
        let user = Seccloud.User.create system ~id:name in
        let payloads =
          List.init 24 (fun i ->
              Sc_storage.Block.encode_ints
                (List.init 8 (fun j -> Sc_hash.Drbg.uniform_int drbg 100 + i + j)))
        in
        let file = name ^ "-data" in
        assert (Seccloud.User.store user cloud ~file payloads);
        let service =
          Sc_compute.Task.random_service ~drbg ~n_positions:24 ~n_tasks:12
        in
        let execution = Seccloud.Cloud.execute cloud ~owner:name ~file service in
        let warrant =
          Seccloud.User.delegate_audit user ~now:0.0 ~lifetime:1e6
            ~scope:("audit " ^ file)
        in
        cloud, name, execution, warrant)
      users
  in

  (* Individual audits, counting pairings. *)
  Sc_pairing.Tate.reset_pairing_count ();
  let individual_ok =
    List.for_all
      (fun (cloud, name, execution, warrant) ->
        (Seccloud.Agency.audit_computation agency cloud ~owner:name ~execution
           ~warrant ~now:5.0 ~samples:8).Sc_audit.Protocol.valid)
      jobs
  in
  let individual_pairings = Sc_pairing.Tate.pairings_performed () in

  (* One batched audit over all five users. *)
  Sc_pairing.Tate.reset_pairing_count ();
  let batched =
    Seccloud.Agency.audit_computation_batched agency jobs ~now:5.0 ~samples:8
  in
  let batched_pairings = Sc_pairing.Tate.pairings_performed () in

  Printf.printf "users: %d, samples per user: 8\n" (List.length users);
  Printf.printf "individual audits: all valid = %b, pairings = %d\n"
    individual_ok individual_pairings;
  Printf.printf "batched audit:     valid    = %b, pairings = %d\n"
    batched.Sc_audit.Protocol.valid batched_pairings;
  Printf.printf "pairing reduction: %.1fx\n"
    (float_of_int individual_pairings /. float_of_int batched_pairings)
