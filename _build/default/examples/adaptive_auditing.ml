(* Adaptive audit scheduling (the Sc_audit.Trust extension realizing
   §VII-C's "history learning" for audit intensity).

     dune exec examples/adaptive_auditing.exe

   The DA audits two servers over many rounds.  The reliable server
   earns progressively lighter audits (its clean streak relaxes the
   effective ε); the flaky one keeps getting the full sample size and
   eventually crosses the drop threshold. *)

module Trust = Sc_audit.Trust

let () =
  let trust = Trust.create () in
  let policy = Trust.default_policy in
  let drbg = Sc_hash.Drbg.create ~seed:"adaptive" in
  (* Ground truth: "steady" always passes; "flaky" fails 30% of its
     audits. *)
  let passes server =
    match server with
    | "steady" -> true
    | _ -> Sc_hash.Drbg.float drbg >= 0.3
  in
  Printf.printf "%6s %18s %18s %12s %12s\n" "round" "t(steady)" "t(flaky)"
    "est(steady)" "est(flaky)";
  for round = 1 to 24 do
    let t_steady = Trust.recommended_samples trust policy ~server:"steady" in
    let t_flaky = Trust.recommended_samples trust policy ~server:"flaky" in
    Trust.record trust ~server:"steady" ~passed:(passes "steady");
    Trust.record trust ~server:"flaky" ~passed:(passes "flaky");
    if round mod 4 = 0 then
      Printf.printf "%6d %18d %18d %12.2f %12.2f\n" round t_steady t_flaky
        (Trust.estimate trust ~server:"steady")
        (Trust.estimate trust ~server:"flaky")
  done;
  Printf.printf "\nsteady: %d audits, %d failures, streak %d -> drop? %b\n"
    (Trust.audits trust ~server:"steady")
    (Trust.failures trust ~server:"steady")
    (Trust.clean_streak trust ~server:"steady")
    (Trust.should_drop trust ~server:"steady");
  Printf.printf "flaky:  %d audits, %d failures, streak %d -> drop? %b\n"
    (Trust.audits trust ~server:"flaky")
    (Trust.failures trust ~server:"flaky")
    (Trust.clean_streak trust ~server:"flaky")
    (Trust.should_drop trust ~server:"flaky");
  (* The security floor still holds: even a perfect streak cannot
     relax t below the policy minimum. *)
  for _ = 1 to 100 do
    Trust.record trust ~server:"steady" ~passed:true
  done;
  Printf.printf
    "after 100 more clean audits, steady's t = %d (never below min_samples = %d)\n"
    (Trust.recommended_samples trust policy ~server:"steady")
    policy.Trust.min_samples
