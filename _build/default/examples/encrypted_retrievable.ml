(* Confidential *and* retrievable outsourcing: IBE + PoR.

     dune exec examples/encrypted_retrievable.exe

   The Privacy-Cheating model of §III-B observes that encrypting data
   before upload protects confidentiality.  This example combines the
   identity-based encryption (no PKI needed — same SIO as the
   signatures) with a Juels–Kaliski Proof of Retrievability (the
   paper's ref [11]): the owner can check the archive is still
   *recoverable*, and actually recover it, even after substantial
   server-side damage — all without the server ever seeing the
   plaintext. *)

let () =
  let prm = Lazy.force Sc_pairing.Params.toy in
  let drbg = Sc_hash.Drbg.create ~seed:"enc-ret" in
  let bs = Sc_hash.Drbg.bytes_source drbg in
  let sio = Sc_ibc.Setup.create prm ~bytes_source:bs in
  let pub = Sc_ibc.Setup.public sio in
  let alice = Sc_ibc.Setup.extract sio "alice@example.com" in

  let document =
    String.concat "\n"
      (List.init 60 (fun i -> Printf.sprintf "%03d,patient-%d,diagnosis-%d" i i (i mod 7)))
  in
  Printf.printf "document: %d bytes of sensitive records\n" (String.length document);

  (* 1. Encrypt under alice's own identity — she can decrypt later on
     any device that can reach the SIO, no key files to lose. *)
  let ciphertext =
    Sc_ibc.Ibe.encrypt pub ~to_identity:"alice@example.com" ~bytes_source:bs
      document
  in
  let wire = Sc_ibc.Ibe.ciphertext_to_bytes pub ciphertext in
  Printf.printf "1. IBE-encrypted to alice@example.com (%d bytes on the wire)\n"
    (String.length wire);

  (* 2. Erasure-encode with sentinels and outsource the blocks. *)
  let por_key = "alice-retrievability-key" in
  let client, stored = Sc_pdp.Por.encode ~key:por_key ~k:6 ~n:16 ~sentinels:8 wire in
  Printf.printf "2. PoR-encoded into %d blocks (6-of-16 code + 8 hidden sentinels)\n"
    (Sc_pdp.Por.total_blocks client);

  (* 3. Periodic retrievability audits: cheap sentinel spot-checks. *)
  let audit_drbg = Sc_hash.Drbg.create ~seed:"audits" in
  let chal = Sc_pdp.Por.challenge client ~drbg:audit_drbg ~count:4 in
  let ok =
    Sc_pdp.Por.verify_response client
      (List.map (fun pos -> pos, Some stored.(pos)) chal)
  in
  Printf.printf "3. sentinel audit on intact storage: %s\n" (if ok then "PASS" else "FAIL");

  (* 4. Disaster: the provider loses half its disks. *)
  let damaged =
    Array.mapi (fun i b -> if i mod 2 = 0 then Some b else None) stored
  in
  let chal2 = Sc_pdp.Por.challenge client ~drbg:audit_drbg ~count:8 in
  let caught =
    not
      (Sc_pdp.Por.verify_response client
         (List.map (fun pos -> pos, damaged.(pos)) chal2))
  in
  Printf.printf "4. after 50%% block loss: audit flags the damage: %b\n" caught;

  (* 5. Extraction still succeeds (any 6 of 16 code blocks suffice),
     and the plaintext decrypts intact. *)
  match Sc_pdp.Por.extract client damaged with
  | None -> print_endline "5. extraction failed (unexpected)"
  | Some recovered_wire ->
    (match Sc_ibc.Ibe.ciphertext_of_bytes pub recovered_wire with
    | Some ct ->
      (match Sc_ibc.Ibe.decrypt pub ~key:alice ct with
      | Some plaintext ->
        Printf.printf
          "5. recovered and decrypted: %d bytes, identical=%b\n"
          (String.length plaintext)
          (String.equal plaintext document)
      | None -> print_endline "5. decryption failed (unexpected)")
    | None -> print_endline "5. ciphertext decode failed (unexpected)")
