(* Privacy-cheating discouragement (§III-B, §VII-B).

     dune exec examples/privacy_dvs.exe

   The scenario of the paper's "illegal private-information selling"
   model: a compromised cloud server tries to sell a user's signed
   data to a competitor.  Because signatures are designated-verifier,
   (a) the competitor cannot check them without a designated secret
   key, and (b) the server itself can forge indistinguishable
   transcripts — so its "proof of authenticity" is worthless, which is
   exactly what discourages the sale. *)

module Setup = Sc_ibc.Setup
module Ibs = Sc_ibc.Ibs
module Dvs = Sc_ibc.Dvs

let () =
  let prm = Lazy.force Sc_pairing.Params.toy in
  let drbg = Sc_hash.Drbg.create ~seed:"privacy" in
  let bs = Sc_hash.Drbg.bytes_source drbg in
  let sio = Setup.create prm ~bytes_source:bs in
  let pub = Setup.public sio in
  let alice = Setup.extract sio "alice" in
  let cloud = Setup.extract sio "cloud-server" in
  let competitor = Setup.extract sio "competitor" in

  let secret_record = "salary=120000;diagnosis=none;rating=AAA" in

  (* Alice signs and designates only the cloud server. *)
  let raw = Ibs.sign pub alice ~bytes_source:bs secret_record in
  let designated = Dvs.designate pub raw ~verifier:"cloud-server" in
  Printf.printf "cloud server verifies alice's record: %b\n"
    (Dvs.verify pub ~verifier_key:cloud ~signer:"alice" ~msg:secret_record
       designated);

  (* The compromised server leaks {record, signature} to a competitor.
     The competitor holds its own extracted key — but it is not the
     designated verifier, so verification fails. *)
  Printf.printf "competitor can verify the leaked transcript: %b\n"
    (Dvs.verify pub ~verifier_key:competitor ~signer:"alice" ~msg:secret_record
       designated);

  (* Worse for the seller: the server can fabricate transcripts for
     records alice never signed, and they verify identically.  A buyer
     therefore learns nothing from a verifying transcript. *)
  let forged_record = "salary=999999;diagnosis=fabricated" in
  let forgery =
    Dvs.simulate pub ~verifier_key:cloud ~signer:"alice" ~msg:forged_record
      ~bytes_source:bs
  in
  Printf.printf
    "server-simulated signature on a record alice never signed verifies: %b\n"
    (Dvs.verify pub ~verifier_key:cloud ~signer:"alice" ~msg:forged_record
       forgery);

  (* Contrast: a plain (publicly verifiable) identity-based signature
     would convince anyone — which is precisely what SecCloud avoids
     publishing. *)
  Printf.printf
    "(contrast) raw IBS on the same record verifies publicly: %b\n"
    (Ibs.verify pub ~signer:"alice" ~msg:secret_record raw);
  print_endline
    "=> designated transcripts convince nobody but the designated verifier,\n\
    \   so reselling them has no market value (Definition 2 in the paper)."
