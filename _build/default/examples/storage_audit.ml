(* Storage auditing against misbehaving servers.

     dune exec examples/storage_audit.exe

   Exercises every storage-cheating behaviour of §III-B and shows how
   the designated-verifier audit (eq. 7) catches each, including the
   batched §VI variant and its pairing savings. *)

let behaviours =
  [
    "honest", Sc_storage.Server.Honest;
    "deletes 25% of blocks", Sc_storage.Server.Delete_fraction 0.25;
    "corrupts 25% of blocks", Sc_storage.Server.Corrupt_fraction 0.25;
    "serves 25% from wrong positions", Sc_storage.Server.Substitute_fraction 0.25;
  ]

let () =
  let system =
    Seccloud.System.create ~params:Sc_pairing.Params.toy ~seed:"storage-audit"
      ~cs_ids:[ "cs" ] ~da_id:"da" ()
  in
  let user = Seccloud.User.create system ~id:"archive-owner" in
  let agency = Seccloud.Agency.create system in
  let payloads =
    List.init 64 (fun i ->
        Sc_storage.Block.encode_ints (List.init 16 (fun j -> (i * 31 + j * 7) mod 100)))
  in
  Printf.printf "%-36s %8s %8s %10s %10s\n" "server behaviour" "sampled"
    "valid" "intact" "pairings";
  List.iter
    (fun (label, storage) ->
      let cloud = Seccloud.Cloud.create system ~id:"cs" ~storage () in
      (* A cheating server would not run the accept-time check on
         itself, so store unchecked. *)
      Seccloud.Cloud.accept_upload_unchecked cloud
        (Seccloud.User.sign_file user ~cs_id:"cs" ~file:"archive" payloads);
      Sc_pairing.Tate.reset_pairing_count ();
      let report =
        Seccloud.Agency.audit_storage agency cloud ~owner:"archive-owner"
          ~file:"archive" ~samples:24
      in
      let pairings = Sc_pairing.Tate.pairings_performed () in
      Printf.printf "%-36s %8d %8d %10b %10d\n" label report.Seccloud.Agency.sampled
        report.Seccloud.Agency.valid_blocks report.Seccloud.Agency.intact pairings;
      if report.Seccloud.Agency.invalid_indices <> [] then
        Printf.printf "%-36s   bad positions: %s\n" ""
          (String.concat ", "
             (List.map string_of_int report.Seccloud.Agency.invalid_indices)))
    behaviours;

  (* The batched variant reaches the same verdicts with one aggregate
     pairing equation when the batch is clean. *)
  print_endline "\nbatched verification (section VI):";
  List.iter
    (fun (label, storage) ->
      let cloud = Seccloud.Cloud.create system ~id:"cs" ~storage () in
      Seccloud.Cloud.accept_upload_unchecked cloud
        (Seccloud.User.sign_file user ~cs_id:"cs" ~file:"archive" payloads);
      Sc_pairing.Tate.reset_pairing_count ();
      let report =
        Seccloud.Agency.audit_storage_batched agency cloud ~owner:"archive-owner"
          ~file:"archive" ~samples:24
      in
      Printf.printf "%-36s intact=%-5b pairings=%d\n" label
        report.Seccloud.Agency.intact
        (Sc_pairing.Tate.pairings_performed ()))
    behaviours
