(* Computation auditing: Algorithm 1 against every computation-cheating
   behaviour of §III-B.

     dune exec examples/computation_audit.exe

   A MapReduce-style aggregation workload (the paper's motivating
   §III-A scenario) runs against servers with increasing dishonesty;
   the audit verdicts and the specific checks that fired are shown. *)

module Task = Sc_compute.Task
module Executor = Sc_compute.Executor

let behaviours =
  [
    "honest", Executor.Honest;
    "guesses 30% of results (|R|=1000)", Executor.Guess_fraction (0.3, 1000);
    "skips 30% of sub-tasks", Executor.Skip_fraction 0.3;
    "uses wrong positions for 30%", Executor.Wrong_position_fraction 0.3;
    "commits garbage, answers honestly", Executor.Commit_garbage_fraction 0.3;
  ]

let () =
  let system =
    Seccloud.System.create ~params:Sc_pairing.Params.toy ~seed:"comp-audit"
      ~cs_ids:[ "cs" ] ~da_id:"da" ()
  in
  let user = Seccloud.User.create system ~id:"analyst" in
  let agency = Seccloud.Agency.create system in
  (* A dataset of daily transaction vectors and an aggregation service
     over it: sums, maxima and a revenue polynomial. *)
  let payloads =
    List.init 48 (fun day ->
        Sc_storage.Block.encode_ints
          (List.init 10 (fun tx -> ((day * 13) + (tx * 57)) mod 500)))
  in
  let service =
    List.concat
      [
        List.init 16 (fun i -> { Task.func = Task.Sum; position = i });
        List.init 16 (fun i -> { Task.func = Task.Max; position = 16 + i });
        List.init 16 (fun i ->
            { Task.func = Task.Polynomial [ 10; 3 ]; position = 32 + i });
      ]
  in
  (* Sample size from the paper's analysis: detection target 1e-3
     against a server assumed to compute 70% honestly. *)
  let t =
    Seccloud.Agency.choose_sample_size ~eps:1e-3 ~range:1000.0 ~csc:0.7 ~ssc:0.7 ()
  in
  Printf.printf "audit sample size for eps=1e-3, CSC=SSC=0.7: t=%d\n\n" t;
  List.iter
    (fun (label, compute) ->
      let cloud = Seccloud.Cloud.create system ~id:"cs" ~compute () in
      Seccloud.Cloud.accept_upload_unchecked cloud
        (Seccloud.User.sign_file user ~cs_id:"cs" ~file:"ledger" payloads);
      let execution =
        Seccloud.Cloud.execute cloud ~owner:"analyst" ~file:"ledger" service
      in
      let warrant =
        Seccloud.User.delegate_audit user ~now:0.0 ~lifetime:1e6
          ~scope:"quarterly ledger audit"
      in
      let verdict =
        Seccloud.Agency.audit_computation agency cloud ~owner:"analyst"
          ~execution ~warrant ~now:10.0 ~samples:t
      in
      Printf.printf "%-38s -> %s\n" label
        (if verdict.Sc_audit.Protocol.valid then "PASS" else "FAIL");
      List.iteri
        (fun i f ->
          if i < 3 then
            Format.printf "    %a@." Sc_audit.Protocol.pp_failure f)
        verdict.Sc_audit.Protocol.failures;
      let extra = List.length verdict.Sc_audit.Protocol.failures - 3 in
      if extra > 0 then Printf.printf "    ... and %d more failures\n" extra)
    behaviours
