(* Waiver baseline: each entry suppresses findings with the same
   (rule, file, key) and must carry a non-empty human-readable
   justification, so the reviewer of a waiver diff always sees *why*
   a deliberate violation is acceptable.  Stale entries (matching no
   current finding) are detected so the baseline can only shrink. *)

type t = {
  rule : string;
  file : string;
  key : string;
  justification : string;
}

let field name fields =
  let rec find = function
    | [] -> None
    | Sexp.List [ Sexp.Atom n; Sexp.Atom v ] :: _ when n = name -> Some v
    | _ :: rest -> find rest
  in
  find fields

let of_sexp = function
  | Sexp.List fields -> (
    let get n = field n fields in
    match (get "rule", get "file", get "key", get "justification") with
    | Some rule, Some file, Some key, Some justification ->
      if String.trim justification = "" then
        Error
          (Printf.sprintf "waiver (%s %s %s): empty justification" rule file
             key)
      else Ok { rule; file; key; justification }
    | _ ->
      Error
        "waiver entry must have (rule ...) (file ...) (key ...) \
         (justification \"...\") fields")
  | Sexp.Atom a -> Error (Printf.sprintf "expected a waiver list, got atom %S" a)

let parse content =
  match Sexp.parse_all content with
  | Error m -> Error (Printf.sprintf "waiver file: %s" m)
  | Ok sexps ->
    let rec build acc = function
      | [] -> Ok (List.rev acc)
      | s :: rest -> (
        match of_sexp s with
        | Ok w -> build (w :: acc) rest
        | Error m -> Error m)
    in
    build [] sexps

let matches w (f : Finding.t) =
  w.rule = f.rule && w.file = f.file && w.key = f.key

(* Partition findings into (unwaived, waived) and report entries that
   matched nothing. *)
let apply waivers findings =
  let unwaived, waived =
    List.partition
      (fun f -> not (List.exists (fun w -> matches w f) waivers))
      findings
  in
  let stale =
    List.filter
      (fun w -> not (List.exists (fun f -> matches w f) findings))
      waivers
  in
  (unwaived, waived, stale)

let to_string w =
  Printf.sprintf "(rule %s) (file %s) (key %s)" w.rule w.file w.key
