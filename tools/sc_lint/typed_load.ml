(* Loading Typedtrees for the typed pass.

   dune leaves one .cmt per compiled module under the build directory
   ([lib/<d>/.<lib>.objs/byte/<lib>__<Mod>.cmt] for libraries,
   [.../ .<exe>.eobjs/byte/dune__exe__<Mod>.cmt] for executables — the
   latter only after [dune build @check]).  We scan for them, keep the
   [Implementation] ones whose [cmt_sourcefile] is a file we were asked
   to lint, and normalise the module name ("Sc_hash__Drbg" ->
   "Sc_hash.Drbg", "Dune__exe__Foo" -> "Foo") so the flow graph can
   speak in the dotted names that appear in resolved [Path.t]s.

   [typecheck] runs the compiler front end in-process against the
   repo's own .cmi directories; the fixture tests use it so each typed
   rule can be exercised on small positive/negative programs without
   a dune round trip. *)

type entry = {
  rel : string; (* root-relative source path, e.g. "lib/hash/drbg.ml" *)
  modname : string; (* normalised dotted module name, e.g. "Sc_hash.Drbg" *)
  structure : Typedtree.structure;
}

(* "Sc_hash__Drbg" -> "Sc_hash.Drbg"; dune's separator is a literal
   double underscore, which cannot appear in a single OCaml module
   name dune generates. *)
let normalize_modname m =
  let m =
    let pfx = "Dune__exe__" in
    if
      String.length m > String.length pfx
      && String.sub m 0 (String.length pfx) = pfx
    then String.sub m (String.length pfx) (String.length m - String.length pfx)
    else m
  in
  let buf = Buffer.create (String.length m) in
  let n = String.length m in
  let i = ref 0 in
  while !i < n do
    if !i + 1 < n && m.[!i] = '_' && m.[!i + 1] = '_' then begin
      Buffer.add_char buf '.';
      i := !i + 2
    end
    else begin
      Buffer.add_char buf m.[!i];
      incr i
    end
  done;
  Buffer.contents buf

let rec walk_cmts dir acc =
  match Sys.readdir dir with
  | exception Sys_error _ -> acc
  | entries ->
    Array.sort String.compare entries;
    Array.fold_left
      (fun acc name ->
        let path = Filename.concat dir name in
        if Sys.is_directory path then walk_cmts path acc
        else if Filename.check_suffix name ".cmt" then path :: acc
        else acc)
      acc entries

let scan ~build_dir ~rels : entry list =
  let wanted = Hashtbl.create 64 in
  List.iter (fun r -> Hashtbl.replace wanted r ()) rels;
  let seen = Hashtbl.create 64 in
  let entries =
    List.fold_left
      (fun acc path ->
        match Cmt_format.read_cmt path with
        | exception _ -> acc
        | cmt -> (
          match (cmt.Cmt_format.cmt_sourcefile, cmt.cmt_annots) with
          | Some src, Cmt_format.Implementation structure
            when Hashtbl.mem wanted src && not (Hashtbl.mem seen src) ->
            Hashtbl.replace seen src ();
            { rel = src; modname = normalize_modname cmt.cmt_modname; structure }
            :: acc
          | _ -> acc))
      []
      (walk_cmts build_dir [])
  in
  List.sort (fun a b -> String.compare a.rel b.rel) entries

(* ------------------------------------------------------------------ *)
(* In-process typechecking for fixture tests                          *)

(* The directories holding the repo's .cmi files: lib/<d>/.<lib>.objs/byte
   under [root] (which is _build/default when the tests run in place). *)
let include_dirs ~root =
  let lib = Filename.concat root "lib" in
  match Sys.readdir lib with
  | exception Sys_error _ -> []
  | subdirs ->
    Array.sort String.compare subdirs;
    Array.fold_left
      (fun acc d ->
        let dir = Filename.concat lib d in
        if not (Sys.is_directory dir) then acc
        else
          match Sys.readdir dir with
          | exception Sys_error _ -> acc
          | entries ->
            Array.sort String.compare entries;
            Array.fold_left
              (fun acc e ->
                let byte = Filename.concat (Filename.concat dir e) "byte" in
                if
                  Filename.check_suffix e ".objs"
                  && String.length e > 0
                  && e.[0] = '.'
                  && Sys.file_exists byte
                  && Sys.is_directory byte
                then byte :: acc
                else acc)
              acc entries)
      [] subdirs
    |> List.rev

let typecheck ~include_dirs ~modname ~rel content : (entry, string) result =
  Clflags.include_dirs := include_dirs;
  (* fixtures deliberately contain unused/partial code; silence every
     warning so only type errors surface *)
  ignore (Warnings.parse_options false "-a");
  Compmisc.init_path ();
  Env.set_unit_name modname;
  let env = Compmisc.initial_env () in
  let lexbuf = Lexing.from_string content in
  Location.init lexbuf rel;
  match
    let parsetree = Parse.implementation lexbuf in
    Typemod.type_structure env parsetree
  with
  | structure, _sig, _names, _shape, _env -> Ok { rel; modname; structure }
  | exception exn -> (
    match Location.error_of_exn exn with
    | Some (`Ok report) ->
      let buf = Buffer.create 256 in
      let fmt = Format.formatter_of_buffer buf in
      Location.print_report fmt report;
      Format.pp_print_flush fmt ();
      Error (Buffer.contents buf)
    | _ -> Error (Printexc.to_string exn))
