(** Lint findings: what a rule reports and a waiver can suppress. *)

type severity = Error | Info

type t = {
  rule : string;
  file : string;
  line : int;
  severity : severity;
  key : string;
  msg : string;
}

val severity_to_string : severity -> string

val to_string : t -> string
(** [file:line rule severity message [key k]] — the format the CLI
    prints and CI greps. *)

val compare : t -> t -> int
(** Total order: file, line, rule, key, msg — so findings that differ
    only in their call chain survive [List.sort_uniq]. *)

val to_json : ?waived:bool -> t -> string
(** One finding as a JSON object (stable field order; schema in
    DESIGN.md §4l). *)
