(** Typedtree loading for the typed pass: scan dune's [.cmt] output,
    and typecheck fixture sources in-process for the tests. *)

type entry = {
  rel : string;  (** root-relative source path, e.g. "lib/hash/drbg.ml" *)
  modname : string;  (** normalised dotted name, e.g. "Sc_hash.Drbg" *)
  structure : Typedtree.structure;
}

val normalize_modname : string -> string
(** "Sc_hash__Drbg" -> "Sc_hash.Drbg", "Dune__exe__Foo" -> "Foo". *)

val scan : build_dir:string -> rels:string list -> entry list
(** Walk [build_dir] for [.cmt] files and return one entry per
    implementation whose [cmt_sourcefile] is in [rels] (first wins),
    sorted by [rel].  Unreadable or foreign cmts are skipped, so a
    partially built tree degrades to partial typed coverage. *)

val include_dirs : root:string -> string list
(** The [lib/<d>/.<lib>.objs/byte] directories under [root] — where
    dune keeps the repo's .cmi files. *)

val typecheck :
  include_dirs:string list ->
  modname:string ->
  rel:string ->
  string ->
  (entry, string) result
(** Typecheck one source string in-process against the given .cmi
    directories (all warnings off); [Error] carries the compiler
    report.  Used by the fixture tests. *)
