(* The cross-module view the typed rules share: every toplevel (and
   module-nested) binding of every loaded file, addressable by the
   dotted names that resolved [Path.t]s produce, plus a repo-wide
   mutability classification of declared types.

   Name resolution has to cope with the three forms a resolved path
   takes in a cmt: fully qualified ("Sc_ibc.Setup.identity_key"),
   alias-shortened from inside the owning library ("Drbg.t",
   "Setup.sio"), and bare in the defining file itself ("t", "sio").
   [resolve_written] tries exact, then current-module-qualified, then
   a unique ".suffix" match (preferring candidates from the same
   library when ambiguous). *)

type fn = {
  qname : string; (* "Sc_hash.Drbg.generate" *)
  name : string; (* last segment *)
  rel : string;
  line : int;
  body : Typedtree.expression;
}

type t = {
  by_qname : (string, fn) Hashtbl.t;
  fns : fn list; (* sorted by qname *)
  by_rel : (string, fn list) Hashtbl.t;
  idents : (string, (string, string) Hashtbl.t) Hashtbl.t;
      (* rel -> Ident.unique_name -> qname: cmt ident stamps are only
         unique within one compilation, so Pident lookup is per-file *)
  mutable_types : (string, unit) Hashtbl.t; (* fixpointed decl qnames *)
}

(* ------------------------------------------------------------------ *)
(* Paths                                                              *)

let rec raw_segs = function
  | Path.Pident id -> [ Ident.name id ]
  | Path.Pdot (p, s) -> raw_segs p @ [ s ]
  | Path.Papply (p, _) -> raw_segs p
  | Path.Pextra_ty (p, _) -> raw_segs p

(* dune mangles compilation units as Lib__Mod; split those back so
   every segment is a plain name. *)
let path_segs p =
  List.concat_map
    (fun s -> String.split_on_char '.' (Typed_load.normalize_modname s))
    (raw_segs p)

let path_name p = String.concat "." (path_segs p)

let last1 segs = match List.rev segs with s :: _ -> Some s | [] -> None

let last2 segs =
  match List.rev segs with b :: a :: _ -> Some (a ^ "." ^ b) | _ -> None

let first_seg s =
  match String.index_opt s '.' with
  | Some i -> String.sub s 0 i
  | None -> s

let ends_with ~suffix s =
  let ls = String.length s and lx = String.length suffix in
  ls >= lx && String.sub s (ls - lx) lx = suffix

(* ------------------------------------------------------------------ *)
(* Structure walk: bindings and type declarations with dotted prefixes *)

let walk_structure (entry : Typed_load.entry)
    ~(value : string -> Ident.t option -> int -> Typedtree.expression -> unit)
    ~(typ : string -> Typedtree.type_declaration -> unit) =
  let rec str_items prefix items =
    List.iter
      (fun (it : Typedtree.structure_item) ->
        match it.str_desc with
        | Tstr_value (_, vbs) ->
          List.iter
            (fun (vb : Typedtree.value_binding) ->
              let line = vb.vb_loc.Location.loc_start.Lexing.pos_lnum in
              match vb.vb_pat.pat_desc with
              | Tpat_var (id, _) | Tpat_alias (_, id, _) ->
                value (prefix ^ "." ^ Ident.name id) (Some id) line vb.vb_expr
              | _ -> value (prefix ^ "._") None line vb.vb_expr)
            vbs
        | Tstr_type (_, decls) -> List.iter (typ prefix) decls
        | Tstr_module mb -> module_binding prefix mb
        | Tstr_recmodule mbs -> List.iter (module_binding prefix) mbs
        | _ -> ())
      items
  and module_binding prefix (mb : Typedtree.module_binding) =
    match mb.mb_name.txt with
    | None -> ()
    | Some name -> module_expr (prefix ^ "." ^ name) mb.mb_expr
  and module_expr prefix (me : Typedtree.module_expr) =
    match me.mod_desc with
    | Tmod_structure str -> str_items prefix str.str_items
    | Tmod_constraint (me, _, _, _) -> module_expr prefix me
    | _ -> ()
  in
  str_items entry.modname entry.structure.str_items

let top_bindings entry =
  let acc = ref [] in
  walk_structure entry
    ~value:(fun qname _ line body -> acc := (qname, line, body) :: !acc)
    ~typ:(fun _ _ -> ());
  List.rev !acc

(* ------------------------------------------------------------------ *)
(* Mutability of types                                                *)

let sync_exempt segs =
  match last2 segs with
  | Some ("Atomic.t" | "Mutex.t" | "Condition.t") -> true
  (* Write-once value types whose representation happens to contain
     arrays: Nat limbs and Montgomery-domain elements/contexts are
     never mutated after construction (the in-place limb writes all
     target freshly allocated scratch before the value escapes), and
     the pairing precomp tables (comb/Miller entries) are built once
     and then only read — all are deliberately shared across domains.
     Without this the mutability fixpoint would mark every
     key/point/commitment/params type racy. *)
  | Some
      ( "Nat.t" | "Curve.precomp" | "Miller.precomp" | "Montgomery.ctx"
      | "Montgomery.mont" | "Mont.e" ) ->
    true
  | _ -> List.mem "Semaphore" segs

let builtin_mutable segs =
  match last1 segs with
  | Some ("ref" | "array" | "bytes") -> true
  | _ -> (
    match last2 segs with
    | Some ("Hashtbl.t" | "Buffer.t" | "Queue.t" | "Stack.t") -> true
    | _ -> false)

(* containers with an immutable spine: shared mutation is still
   possible through the elements, so recurse into the arguments *)
let immutable_container segs =
  match last1 segs with
  | Some ("list" | "option") -> true
  | _ -> (
    match last2 segs with
    | Some ("Seq.t" | "Lazy.t" | "Either.t" | "Result.t") -> true
    | _ -> last1 segs = Some "result")

type decl = {
  dq : string; (* qualified name, "Sc_hash.Drbg.t" *)
  dmod : string; (* declaring module, for resolving short field types *)
  direct : bool; (* has a mutable record field (incl. inline records) *)
  fields : Types.type_expr list; (* contained types, for the fixpoint *)
}

let decl_of prefix (td : Typedtree.type_declaration) =
  let fields = ref [] in
  let direct = ref false in
  let add_ct (ct : Typedtree.core_type) = fields := ct.ctyp_type :: !fields in
  let labels lds =
    List.iter
      (fun (ld : Typedtree.label_declaration) ->
        if ld.ld_mutable = Asttypes.Mutable then direct := true;
        add_ct ld.ld_type)
      lds
  in
  (match td.typ_kind with
  | Ttype_record lds -> labels lds
  | Ttype_variant cds ->
    List.iter
      (fun (cd : Typedtree.constructor_declaration) ->
        match cd.cd_args with
        | Cstr_tuple cts -> List.iter add_ct cts
        | Cstr_record lds -> labels lds)
      cds
  | Ttype_abstract | Ttype_open -> ());
  Option.iter add_ct td.typ_manifest;
  {
    dq = prefix ^ "." ^ td.typ_name.txt;
    dmod = prefix;
    direct = !direct;
    fields = !fields;
  }

(* Resolve a written dotted name against a key set: exact, then
   current-module-qualified, then unique ".written" suffix (same
   library preferred on ties). *)
let resolve_written ~mem ~keys ~current written =
  if mem written then Some written
  else
    let qualified = current ^ "." ^ written in
    if mem qualified then Some qualified
    else
      let suffix = "." ^ written in
      match List.filter (ends_with ~suffix) keys with
      | [ k ] -> Some k
      | [] -> None
      | cands -> (
        let lib = first_seg current in
        match List.filter (fun k -> first_seg k = lib) cands with
        | [ k ] -> Some k
        | _ -> None)

(* Is this type mutable?  Returns the offending head name.  [lookup]
   resolves a written constructor name to a known-mutable declaration
   (or None).  Depth-bounded: nested containers beyond that are not
   how shard state is expressed. *)
let rec type_mutable_reason ~lookup ty depth : string option =
  if depth > 6 then None
  else
    match Types.get_desc ty with
    | Tconstr (p, args, _) ->
      let segs = path_segs p in
      let name = String.concat "." segs in
      if sync_exempt segs then None
      else if builtin_mutable segs then Some name
      else if lookup name then Some name
      else if immutable_container segs then
        List.find_map
          (fun a -> type_mutable_reason ~lookup a (depth + 1))
          args
      else None
    | Ttuple comps ->
      List.find_map (fun c -> type_mutable_reason ~lookup c (depth + 1)) comps
    | Tpoly (ty, _) -> type_mutable_reason ~lookup ty (depth + 1)
    | _ -> None

let build_mutable_set decls =
  let set = Hashtbl.create 32 in
  let lookup current name =
    let keys = Hashtbl.fold (fun k () acc -> k :: acc) set [] in
    resolve_written ~mem:(Hashtbl.mem set) ~keys ~current name <> None
  in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun d ->
        if not (Hashtbl.mem set d.dq) then
          let mutable_now =
            d.direct
            || List.exists
                 (fun ty ->
                   type_mutable_reason ~lookup:(lookup d.dmod) ty 0 <> None)
                 d.fields
          in
          if mutable_now then begin
            Hashtbl.replace set d.dq ();
            changed := true
          end)
      decls
  done;
  set

(* ------------------------------------------------------------------ *)
(* Build                                                              *)

let build (entries : Typed_load.entry list) : t =
  let by_qname = Hashtbl.create 256 in
  let by_rel = Hashtbl.create 64 in
  let idents = Hashtbl.create 64 in
  let decls = ref [] in
  let fns = ref [] in
  List.iter
    (fun (entry : Typed_load.entry) ->
      let itbl = Hashtbl.create 32 in
      Hashtbl.replace idents entry.rel itbl;
      walk_structure entry
        ~value:(fun qname id line body ->
          match id with
          | None -> ()
          | Some id ->
            let name =
              match String.rindex_opt qname '.' with
              | Some i -> String.sub qname (i + 1) (String.length qname - i - 1)
              | None -> qname
            in
            let fn = { qname; name; rel = entry.rel; line; body } in
            if not (Hashtbl.mem by_qname qname) then begin
              Hashtbl.replace by_qname qname fn;
              fns := fn :: !fns
            end;
            Hashtbl.replace itbl (Ident.unique_name id) qname;
            Hashtbl.replace by_rel entry.rel
              (fn :: Option.value ~default:[] (Hashtbl.find_opt by_rel entry.rel)))
        ~typ:(fun prefix td ->
          (* telemetry's counters/gauges are mutable by design and
             guarded by the registry mutex (DESIGN §4f); treating them
             as racy capture material would waiver every counter *)
          if first_seg prefix <> "Sc_telemetry" then
            decls := decl_of prefix td :: !decls))
    entries;
  let fns = List.sort (fun a b -> String.compare a.qname b.qname) !fns in
  Hashtbl.iter
    (fun rel l -> Hashtbl.replace by_rel rel (List.rev l))
    (Hashtbl.copy by_rel);
  { by_qname; fns; by_rel; idents; mutable_types = build_mutable_set !decls }

let functions t = t.fns

let fns_in_file t ~rel =
  Option.value ~default:[] (Hashtbl.find_opt t.by_rel rel)

let fn_qnames t = List.map (fun f -> f.qname) t.fns

let resolve_name t ~current written =
  match
    resolve_written
      ~mem:(Hashtbl.mem t.by_qname)
      ~keys:(fn_qnames t) ~current written
  with
  | Some q -> Hashtbl.find_opt t.by_qname q
  | None -> None

let resolve_path t ~rel ~current (p : Path.t) =
  match p with
  | Path.Pident id -> (
    match Hashtbl.find_opt t.idents rel with
    | None -> None
    | Some itbl -> (
      match Hashtbl.find_opt itbl (Ident.unique_name id) with
      | Some q -> Hashtbl.find_opt t.by_qname q
      | None -> None))
  | _ -> resolve_name t ~current (path_name p)

let mutable_type_reason t ~current ty =
  let keys = Hashtbl.fold (fun k () acc -> k :: acc) t.mutable_types [] in
  let lookup name =
    resolve_written ~mem:(Hashtbl.mem t.mutable_types) ~keys ~current name
    <> None
  in
  type_mutable_reason ~lookup ty 0
