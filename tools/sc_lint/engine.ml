(* Parsing, file discovery, and the informational no-mli rule.  The
   AST rules live in [Rules]; this module turns paths/strings into
   findings so both the CLI and the in-process fixture tests share one
   entry point. *)

type source = {
  rel : string; (* root-relative, '/'-separated *)
  content : string;
  has_mli : bool;
}

let in_lib rel = String.length rel >= 4 && String.sub rel 0 4 = "lib/"

let parse_error ~rel ~line msg =
  {
    Finding.rule = "parse-error";
    file = rel;
    line;
    severity = Finding.Error;
    key = rel;
    msg;
  }

let lint_source (src : source) : Finding.t list =
  let structure =
    let lexbuf = Lexing.from_string src.content in
    Location.init lexbuf src.rel;
    match Parse.implementation lexbuf with
    | str -> Ok str
    | exception Syntaxerr.Error err ->
      let loc = Syntaxerr.location_of_error err in
      Error
        (parse_error ~rel:src.rel ~line:loc.loc_start.Lexing.pos_lnum
           "syntax error")
    | exception exn ->
      Error (parse_error ~rel:src.rel ~line:1 (Printexc.to_string exn))
  in
  let ast_findings =
    match structure with
    | Ok str -> Rules.lint ~path:src.rel ~in_lib:(in_lib src.rel) str
    | Error f -> [ f ]
  in
  let no_mli =
    if in_lib src.rel && not src.has_mli then
      [
        {
          Finding.rule = "no-mli";
          file = src.rel;
          line = 1;
          severity = Finding.Info;
          key = src.rel;
          msg =
            "library module has no .mli; its public surface is implicit \
             (informational)";
        };
      ]
    else []
  in
  ast_findings @ no_mli

let lint_sources srcs =
  List.sort Finding.compare (List.concat_map lint_source srcs)

(* Parse rules plus (when a build dir with cmts is given) the typed
   pass.  For files with a cmt, the typed secret-flow analysis
   replaces the name-heuristic secret-flow rule; files without stay on
   the Parsetree fallback.  Returns the findings and the rels that had
   a cmt, so the CLI can restrict stale-waiver checking of typed rules
   to files that were actually analyzed. *)
let lint_all ?build_dir ~waivers srcs =
  let parse_findings = List.concat_map lint_source srcs in
  match build_dir with
  | None -> (List.sort_uniq Finding.compare parse_findings, [])
  | Some dir ->
    let entries =
      Typed_load.scan ~build_dir:dir
        ~rels:(List.map (fun (s : source) -> s.rel) srcs)
    in
    let cmt_rels = List.map (fun (e : Typed_load.entry) -> e.rel) entries in
    let graph = Flow_graph.build entries in
    let pass = Typed_rules.prepare graph ~waivers in
    let typed = List.concat_map (Typed_rules.lint pass) entries in
    let parse_findings =
      List.filter
        (fun (f : Finding.t) ->
          not (f.rule = "secret-flow" && List.mem f.file cmt_rels))
        parse_findings
    in
    (List.sort_uniq Finding.compare (typed @ parse_findings), cmt_rels)

(* ------------------------------------------------------------------ *)
(* Filesystem walk                                                    *)

let is_ml name =
  Filename.check_suffix name ".ml" && not (Filename.check_suffix name ".pp.ml")

let rec walk dir =
  match Sys.readdir dir with
  | entries ->
    Array.sort String.compare entries;
    Array.fold_left
      (fun acc name ->
        let path = Filename.concat dir name in
        if Sys.is_directory path then
          if name = "_build" || name.[0] = '.' then acc else acc @ walk path
        else if is_ml name then acc @ [ path ]
        else acc)
      [] entries
  | exception Sys_error _ -> []

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let collect_files ~root dirs : source list =
  List.concat_map
    (fun dir ->
      let abs = Filename.concat root dir in
      if not (Sys.file_exists abs) then []
      else
        List.map
          (fun path ->
            (* root-relative with '/' separators for stable waiver keys;
               "./lib/..." and "lib/..." must compare equal no matter
               what cwd/--root spelling the caller used *)
            let rel =
              let r = Filename.concat root "" in
              let n = String.length r in
              let rel =
                if String.length path > n && String.sub path 0 n = r then
                  String.sub path n (String.length path - n)
                else path
              in
              let rec strip rel =
                if String.length rel > 2 && String.sub rel 0 2 = "./" then
                  strip (String.sub rel 2 (String.length rel - 2))
                else rel
              in
              strip rel
            in
            {
              rel;
              content = read_file path;
              has_mli = Sys.file_exists (path ^ "i");
            })
          (walk abs))
    dirs
