(** Lint driver: parse sources, run the AST rules plus the
    informational no-mli check, discover files on disk. *)

type source = {
  rel : string;  (** root-relative path recorded in findings *)
  content : string;
  has_mli : bool;
}

val lint_source : source -> Finding.t list
val lint_sources : source list -> Finding.t list

val collect_files : root:string -> string list -> source list
(** [collect_files ~root dirs] reads every [.ml] under [root/dir] for
    each [dir], skipping [_build] and dot-directories. *)
