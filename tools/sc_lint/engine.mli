(** Lint driver: parse sources, run the AST rules plus the
    informational no-mli check, discover files on disk. *)

type source = {
  rel : string;  (** root-relative path recorded in findings *)
  content : string;
  has_mli : bool;
}

val lint_source : source -> Finding.t list
val lint_sources : source list -> Finding.t list

val lint_all :
  ?build_dir:string ->
  waivers:Waiver.t list ->
  source list ->
  Finding.t list * string list
(** Parse rules plus, when [build_dir] holds cmts, the typed pass
    ({!Typed_rules}).  Files with a cmt get the typed secret-flow
    analysis instead of the name heuristic; files without keep the
    Parsetree fallback.  Also returns the rels that had a cmt. *)

val collect_files : root:string -> string list -> source list
(** [collect_files ~root dirs] reads every [.ml] under [root/dir] for
    each [dir], skipping [_build] and dot-directories. *)
