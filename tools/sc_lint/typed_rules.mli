(** The typed, interprocedural rules (typed-secret-flow,
    domain-capture, discarded-error, transitive-determinism) over a
    built {!Flow_graph}. *)

type pass

val prepare : Flow_graph.t -> waivers:Waiver.t list -> pass
(** Whole-graph precomputation: secret-flow leak summaries
    (fixpointed) and the transitive-nondeterminism closure.  Waivers
    participate: a waived determinism source or a waived transitive
    chain does not propagate to its callers. *)

val lint : pass -> Typed_load.entry -> Finding.t list
(** All typed findings for one file, sorted and deduplicated. *)
