(* CLI: sc_lint [--root DIR] [--waivers FILE] [--stale-waivers]
                [--no-waivers] [--typed] [--no-typed] [--build DIR]
                [--json] [DIR ...]

   Lints every .ml under the given directories (default: lib bin test,
   relative to --root), applies the waiver baseline, and prints the
   remaining findings as "file:line rule severity message".

   Typed pass: by default sc_lint looks for cmt files under
   <root>/_build/default (falling back to <root> itself, which is the
   layout when running in place inside _build) and runs the
   interprocedural rules over every file that has one; --build DIR
   points it elsewhere, --no-typed disables it (Parsetree rules only,
   as on a tree that has not been built), --typed merely asserts the
   default.  Stale-waiver checking only considers a typed rule's
   waiver when its file actually had a cmt, so a Parsetree-only run
   does not report typed waivers as stale.

   --json emits every finding (waived ones flagged) as a JSON array on
   stdout — stable order, schema in DESIGN.md §4l — with the usual
   summary on stderr.

   Exit status: 0 clean, 1 unwaived error findings (or, with
   --stale-waivers, stale baseline entries), 2 usage / waiver-file
   errors. *)

open Sc_lint_core

let usage () =
  prerr_endline
    "usage: sc_lint [--root DIR] [--waivers FILE] [--stale-waivers] \
     [--no-waivers] [--typed] [--no-typed] [--build DIR] [--json] [DIR ...]";
  exit 2

let typed_rules =
  [
    "typed-secret-flow"; "domain-capture"; "discarded-error";
    "transitive-determinism";
  ]

let () =
  let root = ref "." in
  let waivers_file = ref None in
  let use_waivers = ref true in
  let check_stale = ref false in
  let typed = ref `Auto in
  let build = ref None in
  let json = ref false in
  let dirs = ref [] in
  let rec parse = function
    | [] -> ()
    | "--root" :: v :: rest ->
      root := v;
      parse rest
    | "--waivers" :: v :: rest ->
      waivers_file := Some v;
      parse rest
    | "--stale-waivers" :: rest ->
      check_stale := true;
      parse rest
    | "--no-waivers" :: rest ->
      use_waivers := false;
      parse rest
    | "--typed" :: rest ->
      typed := `On;
      parse rest
    | "--no-typed" :: rest ->
      typed := `Off;
      parse rest
    | "--build" :: v :: rest ->
      build := Some v;
      parse rest
    | "--json" :: rest ->
      json := true;
      parse rest
    | ("--help" | "-h") :: _ -> usage ()
    | d :: rest when String.length d > 0 && d.[0] <> '-' ->
      dirs := d :: !dirs;
      parse rest
    | _ -> usage ()
  in
  parse (List.tl (Array.to_list Sys.argv));
  let dirs =
    match List.rev !dirs with [] -> [ "lib"; "bin"; "test" ] | ds -> ds
  in
  let waiver_path =
    match !waivers_file with
    | Some p -> p
    | None -> Filename.concat !root "lint/waivers.sexp"
  in
  let waivers =
    if (not !use_waivers) || not (Sys.file_exists waiver_path) then []
    else
      let content =
        let ic = open_in_bin waiver_path in
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      match Waiver.parse content with
      | Ok ws -> ws
      | Error msg ->
        Printf.eprintf "sc_lint: %s: %s\n" waiver_path msg;
        exit 2
  in
  let build_dir =
    match (!typed, !build) with
    | `Off, _ -> None
    | _, Some dir -> Some dir
    | (`Auto | `On), None ->
      let default = Filename.concat !root "_build/default" in
      if Sys.file_exists default && Sys.is_directory default then Some default
      else Some !root
  in
  let sources = Engine.collect_files ~root:!root dirs in
  let findings, cmt_rels = Engine.lint_all ?build_dir ~waivers sources in
  let unwaived, waived, stale = Waiver.apply waivers findings in
  let stale =
    (* a typed rule's waiver is only checkable when its file was
       actually analyzed with a cmt *)
    List.filter
      (fun (w : Waiver.t) ->
        (not (List.mem w.rule typed_rules)) || List.mem w.file cmt_rels)
      stale
  in
  if !json then begin
    (* [findings] is already sorted by Finding.compare (the stable
       order the schema documents); just tag each with its waiver
       status *)
    let all =
      List.map
        (fun f -> (f, List.exists (fun w -> Waiver.matches w f) waivers))
        findings
    in
    print_string "[";
    List.iteri
      (fun i (f, w) ->
        if i > 0 then print_string ",";
        print_string "\n  ";
        print_string (Finding.to_json ~waived:w f))
      all;
    if all <> [] then print_string "\n";
    print_endline "]"
  end
  else List.iter (fun f -> print_endline (Finding.to_string f)) unwaived;
  if !check_stale then
    List.iter
      (fun w ->
        Printf.eprintf "%s: stale waiver %s\n" waiver_path (Waiver.to_string w))
      stale;
  let errors =
    List.filter (fun f -> f.Finding.severity = Finding.Error) unwaived
  in
  Printf.eprintf
    "sc_lint: %d file(s), %d with cmt, %d finding(s): %d error(s) unwaived, \
     %d waived, %d informational%s\n"
    (List.length sources) (List.length cmt_rels) (List.length findings)
    (List.length errors) (List.length waived)
    (List.length
       (List.filter (fun f -> f.Finding.severity = Finding.Info) unwaived))
    (if !check_stale then
       Printf.sprintf ", %d stale waiver(s)" (List.length stale)
     else "");
  if errors <> [] || (!check_stale && stale <> []) then exit 1
