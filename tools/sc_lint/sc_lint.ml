(* CLI: sc_lint [--root DIR] [--waivers FILE] [--stale-waivers]
                [--no-waivers] [DIR ...]

   Lints every .ml under the given directories (default: lib bin test,
   relative to --root), applies the waiver baseline, and prints the
   remaining findings as "file:line rule severity message".  Exit
   status: 0 clean, 1 unwaived error findings (or, with
   --stale-waivers, stale baseline entries), 2 usage / waiver-file
   errors. *)

open Sc_lint_core

let usage () =
  prerr_endline
    "usage: sc_lint [--root DIR] [--waivers FILE] [--stale-waivers] \
     [--no-waivers] [DIR ...]";
  exit 2

let () =
  let root = ref "." in
  let waivers_file = ref None in
  let use_waivers = ref true in
  let check_stale = ref false in
  let dirs = ref [] in
  let rec parse = function
    | [] -> ()
    | "--root" :: v :: rest ->
      root := v;
      parse rest
    | "--waivers" :: v :: rest ->
      waivers_file := Some v;
      parse rest
    | "--stale-waivers" :: rest ->
      check_stale := true;
      parse rest
    | "--no-waivers" :: rest ->
      use_waivers := false;
      parse rest
    | ("--help" | "-h") :: _ -> usage ()
    | d :: rest when String.length d > 0 && d.[0] <> '-' ->
      dirs := d :: !dirs;
      parse rest
    | _ -> usage ()
  in
  parse (List.tl (Array.to_list Sys.argv));
  let dirs =
    match List.rev !dirs with [] -> [ "lib"; "bin"; "test" ] | ds -> ds
  in
  let waiver_path =
    match !waivers_file with
    | Some p -> p
    | None -> Filename.concat !root "lint/waivers.sexp"
  in
  let waivers =
    if (not !use_waivers) || not (Sys.file_exists waiver_path) then []
    else
      let content =
        let ic = open_in_bin waiver_path in
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      match Waiver.parse content with
      | Ok ws -> ws
      | Error msg ->
        Printf.eprintf "sc_lint: %s: %s\n" waiver_path msg;
        exit 2
  in
  let findings = Engine.lint_sources (Engine.collect_files ~root:!root dirs) in
  let unwaived, waived, stale = Waiver.apply waivers findings in
  List.iter (fun f -> print_endline (Finding.to_string f)) unwaived;
  if !check_stale then
    List.iter
      (fun w ->
        Printf.printf "%s: stale waiver %s\n" waiver_path (Waiver.to_string w))
      stale;
  let errors =
    List.filter (fun f -> f.Finding.severity = Finding.Error) unwaived
  in
  Printf.eprintf
    "sc_lint: %d file(s), %d finding(s): %d error(s) unwaived, %d waived, %d \
     informational%s\n"
    (List.length (Engine.collect_files ~root:!root dirs))
    (List.length findings) (List.length errors) (List.length waived)
    (List.length (List.filter (fun f -> f.Finding.severity = Finding.Info) unwaived))
    (if !check_stale then Printf.sprintf ", %d stale waiver(s)" (List.length stale)
     else "");
  if errors <> [] || (!check_stale && stale <> []) then exit 1
