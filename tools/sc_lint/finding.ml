(* A single lint finding.  [key] is the stable, line-number-free handle
   a waiver matches on (rule-specific: the offending toplevel binding
   name, "<enclosing>:<sink>", a ">"-joined call chain, ...), so the
   baseline survives unrelated edits to the same file. *)

type severity = Error | Info

type t = {
  rule : string;
  file : string; (* root-relative, '/'-separated *)
  line : int;
  severity : severity;
  key : string;
  msg : string;
}

let severity_to_string = function Error -> "error" | Info -> "info"

let to_string f =
  Printf.sprintf "%s:%d %s %s %s [key %s]" f.file f.line f.rule
    (severity_to_string f.severity)
    f.msg f.key

(* Total order: the key participates so two findings on the same line
   that differ only in their call chain (interprocedural rules) are
   neither collapsed by sort_uniq nor ordered unstably. *)
let compare a b =
  match String.compare a.file b.file with
  | 0 -> (
    match Int.compare a.line b.line with
    | 0 -> (
      match String.compare a.rule b.rule with
      | 0 -> (
        match String.compare a.key b.key with
        | 0 -> String.compare a.msg b.msg
        | c -> c)
      | c -> c)
    | c -> c)
  | c -> c

(* ------------------------------------------------------------------ *)
(* JSON rendering for --json (schema documented in DESIGN.md §4l)     *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_json ?(waived = false) f =
  Printf.sprintf
    "{\"rule\":\"%s\",\"file\":\"%s\",\"line\":%d,\"severity\":\"%s\",\"key\":\"%s\",\"msg\":\"%s\",\"waived\":%b}"
    (json_escape f.rule) (json_escape f.file) f.line
    (severity_to_string f.severity)
    (json_escape f.key) (json_escape f.msg) waived
