(* A single lint finding.  [key] is the stable, line-number-free handle
   a waiver matches on (rule-specific: the offending toplevel binding
   name, "<enclosing>:<sink>", ...), so the baseline survives
   unrelated edits to the same file. *)

type severity = Error | Info

type t = {
  rule : string;
  file : string; (* root-relative, '/'-separated *)
  line : int;
  severity : severity;
  key : string;
  msg : string;
}

let severity_to_string = function Error -> "error" | Info -> "info"

let to_string f =
  Printf.sprintf "%s:%d %s %s %s [key %s]" f.file f.line f.rule
    (severity_to_string f.severity)
    f.msg f.key

let compare a b =
  match String.compare a.file b.file with
  | 0 -> (
    match Int.compare a.line b.line with
    | 0 -> String.compare a.rule b.rule
    | c -> c)
  | c -> c
