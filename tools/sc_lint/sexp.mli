(** Minimal s-expression reader (atoms, quoted strings, lists, [;]
    comments) for [lint/waivers.sexp]. *)

type t = Atom of string | List of t list

exception Parse_error of string

val parse_all : string -> (t list, string) result
(** Parse every toplevel s-expression in the input. *)
