(** The AST lint rules (domain-safety, signing-encode, determinism,
    secret-flow, exception-swallow, naive-scalar-mul,
    dynamic-metric-name) over a parsed implementation. *)

val lint : path:string -> in_lib:bool -> Parsetree.structure -> Finding.t list
(** [lint ~path ~in_lib str] returns the findings for one file.
    [path] is the root-relative path recorded in findings (and matched
    by waivers); [in_lib] enables the lib/-only determinism rule. *)

val determinism_forbidden : string list -> bool
(** Whether a dotted name (as segments) is a forbidden source of
    nondeterminism (Random, wall clocks).  Shared with the typed
    transitive-determinism rule. *)

val secret_sink : string list -> bool
(** Whether a dotted name (as segments) is a secret sink: telemetry
    names/attrs, printf-family output, wire payload construction.
    Shared with the typed secret-flow rule. *)
