(** The AST lint rules (domain-safety, signing-encode, determinism,
    secret-flow, exception-swallow, naive-scalar-mul,
    dynamic-metric-name) over a parsed implementation. *)

val lint : path:string -> in_lib:bool -> Parsetree.structure -> Finding.t list
(** [lint ~path ~in_lib str] returns the findings for one file.
    [path] is the root-relative path recorded in findings (and matched
    by waivers); [in_lib] enables the lib/-only determinism rule. *)
