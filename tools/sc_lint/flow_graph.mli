(** The cross-module call/flow substrate for the typed rules: every
    toplevel (and module-nested) binding of the loaded files keyed by
    dotted name, path-name normalisation, and a repo-wide mutable-type
    classification. *)

type fn = {
  qname : string;  (** "Sc_hash.Drbg.generate" *)
  name : string;  (** last segment *)
  rel : string;
  line : int;
  body : Typedtree.expression;
}

type t

val build : Typed_load.entry list -> t

val functions : t -> fn list
(** All known bindings, sorted by [qname]. *)

val fns_in_file : t -> rel:string -> fn list

val top_bindings :
  Typed_load.entry -> (string * int * Typedtree.expression) list
(** Every toplevel/nested binding of one file as
    [(qname, line, body)], including anonymous ["Mod._"] ones
    ([let () = ...]) that the function table omits. *)

val path_segs : Path.t -> string list
(** Resolved path as plain dotted segments ("Sc_hash__Drbg" is split
    back to ["Sc_hash"; "Drbg"]). *)

val path_name : Path.t -> string

val resolve_name : t -> current:string -> string -> fn option
(** Resolve a written dotted name from module [current]: exact, then
    [current]-qualified, then unique suffix (same library preferred). *)

val resolve_path : t -> rel:string -> current:string -> Path.t -> fn option
(** Like {!resolve_name}, but a [Pident] head is looked up in the
    per-file ident table (cmt stamps are only unique per file). *)

val mutable_type_reason : t -> current:string -> Types.type_expr -> string option
(** [Some name] when the type is (or contains, through tuples and
    immutable containers) mutable state: ref/array/bytes/Hashtbl/
    Buffer/Queue/Stack or a declared type with mutable fields
    (computed as a fixpoint over all loaded declarations).
    [Atomic.t]/[Mutex.t]/[Condition.t]/[Semaphore.*] and
    [Sc_telemetry] types (registry-mutex-guarded by design) are
    exempt. *)
