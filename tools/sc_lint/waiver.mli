(** Waiver baseline: (rule, file, key) triples with mandatory
    justifications, loaded from [lint/waivers.sexp]. *)

type t = {
  rule : string;
  file : string;
  key : string;
  justification : string;
}

val parse : string -> (t list, string) result
(** Parse a waiver file.  Fails on malformed entries and on empty
    justifications. *)

val matches : t -> Finding.t -> bool

val apply : t list -> Finding.t list -> Finding.t list * Finding.t list * t list
(** [apply waivers findings] is [(unwaived, waived, stale)]: findings
    not covered by any waiver, findings that were suppressed, and
    waivers that matched no finding at all. *)

val to_string : t -> string
