(* The four typed, interprocedural rules over loaded cmts:

   - typed-secret-flow: taint by *type* (IBC setup secrets, identity
     keys, DRBG states) plus keystream sources, propagated through
     lets, tuples, records, matches and resolved calls (per-function
     leak summaries, fixpointed over the whole graph) into the same
     sink set the name-heuristic rule uses, plus Format printers.
   - domain-capture: closures submitted to the Sc_parallel pool that
     capture mutable state (known from types, not names) without
     Atomic/Mutex, modulo the position-addressed-array idiom the
     Merkle/Monte-Carlo kernels rely on.
   - discarded-error: ignore/wildcard/let _ swallowing a typed
     failure the protocols depend on surfacing (Overloaded, Diverged,
     Transport errors, audit verdicts).
   - transitive-determinism: the wall-clock/Random rule pushed
     through the call graph, reporting the full chain at each lib/
     entry point.  Waivers block propagation: an accepted direct use
     (telemetry clock) does not contaminate its callers.

   All keys are line-free and chain-stable so the waiver baseline
   survives reformatting. *)

open Typedtree

module SSet = Set.Make (String)

let line_of_expr (e : expression) = e.exp_loc.Location.loc_start.Lexing.pos_lnum

let line_of_pat (p : 'k general_pattern) =
  p.pat_loc.Location.loc_start.Lexing.pos_lnum

let finding ~rule ~file ~line ~key msg =
  { Finding.rule; file; line; severity = Finding.Error; key; msg }

let last_seg q =
  match String.rindex_opt q '.' with
  | Some i -> String.sub q (i + 1) (String.length q - i - 1)
  | None -> q

let prefix_of q =
  match String.rindex_opt q '.' with Some i -> String.sub q 0 i | None -> q

let strip_stdlib = function "Stdlib" :: rest -> rest | segs -> segs

let last1 segs = match List.rev segs with s :: _ -> Some s | [] -> None

let last2 segs =
  match List.rev segs with b :: a :: _ -> Some (a ^ "." ^ b) | _ -> None

(* "Setup.sio" for a bare "sio" written in setup.ml itself *)
let qualified_last2 ~current segs =
  match segs with
  | [ one ] -> Some (last_seg current ^ "." ^ one)
  | _ -> last2 segs

let tokens_of name = String.split_on_char '_' (String.lowercase_ascii name)

let iter_exprs f body =
  let it =
    {
      Tast_iterator.default_iterator with
      expr =
        (fun it e ->
          f e;
          Tast_iterator.default_iterator.expr it e);
    }
  in
  it.expr it body

(* ------------------------------------------------------------------ *)
(* Type predicates                                                    *)

let scalar_ty ty =
  match Types.get_desc ty with
  | Tconstr (p, _, _) -> (
    match last1 (Flow_graph.path_segs p) with
    | Some
        ("int" | "bool" | "float" | "unit" | "char" | "int32" | "int64"
        | "nativeint") ->
      true
    | _ -> false)
  | _ -> false

let string_like ty =
  match Types.get_desc ty with
  | Tconstr (p, _, _) -> (
    match last1 (Flow_graph.path_segs p) with
    | Some ("string" | "bytes") -> true
    | _ -> false)
  | _ -> false

(* Types whose values are secrets wherever they appear. *)
let secret_type_names =
  SSet.of_list [ "Setup.sio"; "Setup.identity_key"; "Drbg.t" ]

let rec secret_ty ~current ty depth =
  if depth > 3 then None
  else
    match Types.get_desc ty with
    | Tconstr (p, args, _) -> (
      let segs = Flow_graph.path_segs p in
      match qualified_last2 ~current segs with
      | Some n when SSet.mem n secret_type_names -> Some n
      | _ -> (
        match last1 segs with
        | Some ("list" | "option" | "array" | "result") ->
          List.find_map (fun a -> secret_ty ~current a (depth + 1)) args
        | _ -> None))
    | Ttuple comps ->
      List.find_map (fun c -> secret_ty ~current c (depth + 1)) comps
    | _ -> None

(* Typed failure/verdict types that must never be silently dropped. *)
let monitored_type_names =
  SSet.of_list
    [
      "Service.error";
      "Dynamic.update_error";
      "Transport.error";
      "Protocol.failure";
      "Protocol.verdict";
    ]

let rec monitored_ty ~current ty depth =
  if depth > 3 then None
  else
    match Types.get_desc ty with
    | Tconstr (p, args, _) -> (
      let segs = Flow_graph.path_segs p in
      match qualified_last2 ~current segs with
      | Some n when SSet.mem n monitored_type_names -> Some n
      | _ -> (
        match last1 segs with
        (* deliberately not lists/tuples: aggregating responses is
           fine, losing an individual verdict is not *)
        | Some ("result" | "option") ->
          List.find_map (fun a -> monitored_ty ~current a (depth + 1)) args
        | _ -> None))
    | _ -> None

(* ------------------------------------------------------------------ *)
(* Sinks, sources, sanitizers                                         *)

let sink_name segs =
  let s = strip_stdlib segs in
  let short () =
    match last2 s with Some n -> n | None -> String.concat "." s
  in
  if Rules.secret_sink s then Some (short ())
  else if List.mem "Format" s then
    match last1 s with
    | Some f
      when (String.length f > 3 && String.sub f 0 3 = "pp_")
           || f = "print_string" || f = "print_text" ->
      Some (short ())
    | _ -> None
  else None

(* Digest/MAC outputs are public by design (they go on the wire); a
   hash is where taint stops. *)
let sanitizers =
  SSet.of_list
    [
      "Sha256.digest";
      "Sha256.digest_hex";
      "Sha256.digest_concat";
      "Hmac.mac";
      "Hmac.mac_hex";
      "Hmac.mac_concat";
      "Hash_g1.hash_to_point";
      "Hash_g1.hash_to_scalar";
    ]

let is_sanitizer segs =
  match last2 (strip_stdlib segs) with
  | Some n -> SSet.mem n sanitizers
  | None -> false

(* Calls whose *result* is secret even though its type is a plain
   string: the DRBG keystream and the IBC master secret. *)
let secret_sources = SSet.of_list [ "Drbg.generate"; "Setup.master_secret" ]

let secret_source segs =
  match last2 (strip_stdlib segs) with
  | Some n when SSet.mem n secret_sources -> Some n
  | _ -> None

(* record fields that launder a secret into a public value *)
let public_field (ld : Types.label_description) =
  List.exists (fun t -> t = "pub" || t = "public" || t = "id")
    (tokens_of ld.lbl_name)
  || scalar_ty ld.lbl_arg

(* ------------------------------------------------------------------ *)
(* Secret-flow: taint analysis with per-function summaries            *)

type taint = Secret of string | Param of int

type summary = {
  mutable leaks : (int * string list) list;
      (* param index -> call chain to the sink, ending with its name *)
  mutable returns_params : int list;
  mutable returns_secret : bool;
}

type pass = {
  graph : Flow_graph.t;
  waivers : Waiver.t list;
  summaries : (string, summary) Hashtbl.t;
  nondet : (string, string list * int * bool) Hashtbl.t;
      (* fn qname -> (chain ending in prim, line, propagate) *)
}

type sctx = {
  p : pass;
  rel : string;
  current : string; (* enclosing module's dotted name, for resolution *)
  fname : string; (* enclosing binding name, for keys *)
  summary : summary option; (* filled during the fixpoint passes *)
  emit : (Finding.t -> unit) option; (* filled during the report pass *)
  env : (string, taint) Hashtbl.t; (* Ident.unique_name -> taint *)
}

let report ctx taint chain line =
  match taint with
  | Secret origin -> (
    match ctx.emit with
    | None -> ()
    | Some emit ->
      let sink = match List.rev chain with s :: _ -> s | [] -> "?" in
      let via =
        match chain with
        | [ _ ] -> ""
        | _ ->
          " via "
          ^ String.concat " -> "
              (List.filteri (fun i _ -> i < List.length chain - 1) chain)
      in
      emit
        (finding ~rule:"typed-secret-flow" ~file:ctx.rel ~line
           ~key:(String.concat ">" (ctx.fname :: chain))
           (Printf.sprintf
              "secret value (%s) reaches sink %s%s; log/encode a public \
               digest instead"
              origin sink via)))
  | Param i -> (
    match ctx.summary with
    | Some s when not (List.mem_assoc i s.leaks) -> s.leaks <- (i, chain) :: s.leaks
    | _ -> ())

let rec bind_pat : type k. sctx -> k general_pattern -> taint option -> unit =
 fun ctx p t ->
  let bind_var id ty =
    let t =
      match secret_ty ~current:ctx.current ty 0 with
      | Some n -> Some (Secret n)
      | None -> t
    in
    match t with
    | Some taint when not (scalar_ty ty) ->
      Hashtbl.replace ctx.env (Ident.unique_name id) taint
    | _ -> ()
  in
  match p.pat_desc with
  | Tpat_value v -> bind_pat ctx (v :> pattern) t
  | Tpat_exception _ -> ()
  | Tpat_var (id, _) -> bind_var id p.pat_type
  | Tpat_alias (sub, id, _) ->
    bind_var id p.pat_type;
    bind_pat ctx sub t
  | Tpat_tuple ps -> List.iter (fun sp -> bind_pat ctx sp t) ps
  | Tpat_construct (_, _, ps, _) -> List.iter (fun sp -> bind_pat ctx sp t) ps
  | Tpat_variant (_, po, _) -> Option.iter (fun sp -> bind_pat ctx sp t) po
  | Tpat_record (fields, _) ->
    List.iter
      (fun (_, ld, sp) ->
        let t' = if public_field ld then None else t in
        bind_pat ctx sp t')
      fields
  | Tpat_or (a, b, _) ->
    bind_pat ctx a t;
    bind_pat ctx b t
  | Tpat_array ps -> List.iter (fun sp -> bind_pat ctx sp t) ps
  | Tpat_lazy sp -> bind_pat ctx sp t
  | _ -> ()

let rec scan ctx (e : expression) : taint option =
  let narrow t =
    match t with Some _ when scalar_ty e.exp_type -> None | t -> t
  in
  let by_type () =
    Option.map (fun n -> Secret n) (secret_ty ~current:ctx.current e.exp_type 0)
  in
  match e.exp_desc with
  | Texp_ident (Path.Pident id, _, _) ->
    narrow
      (match Hashtbl.find_opt ctx.env (Ident.unique_name id) with
      | Some t -> Some t
      | None -> by_type ())
  | Texp_ident _ -> narrow (by_type ())
  | Texp_constant _ -> None
  | Texp_let (_, vbs, body) ->
    List.iter
      (fun vb ->
        let t = scan ctx vb.vb_expr in
        bind_pat ctx vb.vb_pat t)
      vbs;
    scan ctx body
  | Texp_function { cases; _ } ->
    (* an inner lambda: its body can still hit sinks with the outer
       environment; the lambda value itself carries no taint *)
    List.iter (fun c -> ignore (scan_case ctx None c)) cases;
    None
  | Texp_apply (head, args) -> scan_apply ctx e head args
  | Texp_match (scrut, cases, _) ->
    let t = scan ctx scrut in
    let ts = List.map (fun c -> scan_case ctx t c) cases in
    narrow (List.find_map Fun.id ts)
  | Texp_try (body, cases) ->
    let t = scan ctx body in
    let ts = List.map (fun c -> scan_case ctx None c) cases in
    narrow (match t with Some _ -> t | None -> List.find_map Fun.id ts)
  | Texp_tuple es | Texp_array es ->
    List.find_map Fun.id (List.map (scan ctx) es)
  | Texp_construct (_, _, es) ->
    narrow (List.find_map Fun.id (List.map (scan ctx) es))
  | Texp_variant (_, eo) -> Option.bind eo (scan ctx)
  | Texp_record { fields; extended_expression; _ } ->
    let ft =
      Array.to_list fields
      |> List.map (fun (_, def) ->
             match def with
             | Overridden (_, fe) -> scan ctx fe
             | Kept _ -> None)
    in
    let bt = Option.bind extended_expression (scan ctx) in
    (match List.find_map Fun.id ft with Some t -> Some t | None -> bt)
  | Texp_field (sub, _, ld) ->
    let t = scan ctx sub in
    narrow
      (match by_type () with
      | Some s -> Some s
      | None -> (
        match t with
        | Some taint when not (public_field ld) -> Some taint
        | _ -> None))
  | Texp_setfield (a, _, _, b) ->
    ignore (scan ctx a);
    ignore (scan ctx b);
    None
  | Texp_ifthenelse (c, a, b) -> (
    ignore (scan ctx c);
    let ta = scan ctx a in
    let tb = Option.bind b (scan ctx) in
    match ta with Some _ -> ta | None -> tb)
  | Texp_sequence (a, b) ->
    ignore (scan ctx a);
    scan ctx b
  | Texp_while (c, body) ->
    ignore (scan ctx c);
    ignore (scan ctx body);
    None
  | Texp_for (_, _, a, b, _, body) ->
    ignore (scan ctx a);
    ignore (scan ctx b);
    ignore (scan ctx body);
    None
  | Texp_assert (a, _) ->
    ignore (scan ctx a);
    None
  | Texp_lazy a -> scan ctx a
  | Texp_open (_, a) -> scan ctx a
  | Texp_letmodule (_, _, _, _, body) -> scan ctx body
  | Texp_letexception (_, body) -> scan ctx body
  | _ -> None

and scan_case : type k. sctx -> taint option -> k case -> taint option =
 fun ctx t c ->
  bind_pat ctx c.c_lhs t;
  Option.iter (fun g -> ignore (scan ctx g)) c.c_guard;
  scan ctx c.c_rhs

and scan_apply ctx e head args =
  let pairs =
    List.map
      (fun (_, ao) ->
        match ao with Some a -> (Some a, scan ctx a) | None -> (None, None))
      args
  in
  let any_taint = List.find_map snd pairs in
  let narrow t =
    match t with Some _ when scalar_ty e.exp_type -> None | t -> t
  in
  let by_type () =
    Option.map (fun n -> Secret n) (secret_ty ~current:ctx.current e.exp_type 0)
  in
  let default () =
    match by_type () with
    | Some s -> Some s
    | None -> if string_like e.exp_type then any_taint else None
  in
  match head.exp_desc with
  | Texp_ident (path, _, _) -> (
    let segs = Flow_graph.path_segs path in
    match sink_name segs with
    | Some sink ->
      List.iter
        (fun (ao, t) ->
          match (ao, t) with
          | Some a, Some taint -> report ctx taint [ sink ] (line_of_expr a)
          | _ -> ())
        pairs;
      None
    | None -> (
      if is_sanitizer segs then None
      else
        match secret_source segs with
        | Some src -> Some (Secret (src ^ " output"))
        | None -> (
          match
            Flow_graph.resolve_path ctx.p.graph ~rel:ctx.rel
              ~current:ctx.current path
          with
          | Some callee -> (
            match Hashtbl.find_opt ctx.p.summaries callee.qname with
            | Some s ->
              List.iteri
                (fun i (_, t) ->
                  match t with
                  | Some taint -> (
                    match List.assoc_opt i s.leaks with
                    | Some chain when List.length chain < 8 ->
                      report ctx taint (callee.qname :: chain)
                        (line_of_expr e)
                    | _ -> ())
                  | None -> ())
                pairs;
              let res =
                if s.returns_secret then
                  Some (Secret (callee.qname ^ " result"))
                else
                  List.find_mapi
                    (fun i (_, t) ->
                      if List.mem i s.returns_params then t else None)
                    pairs
              in
              narrow (match res with Some _ -> res | None -> by_type ())
            | None -> narrow (default ()))
          | None -> narrow (default ()))))
  | _ ->
    ignore (scan ctx head);
    narrow (default ())

(* Analyze one binding: peel the parameter spine (each parameter gets
   [Param i]), then scan the body; returns the body's result taint. *)
let analyze_binding ctx body =
  let rec peel i (e : expression) =
    match e.exp_desc with
    | Texp_function { cases = [ c ]; _ } when c.c_guard = None ->
      bind_pat ctx c.c_lhs (Some (Param i));
      peel (i + 1) c.c_rhs
    | Texp_function { cases; _ } ->
      List.find_map Fun.id
        (List.map (fun c -> scan_case ctx (Some (Param i)) c) cases)
    | _ -> scan ctx e
  in
  peel 0 body

let summary_sig (s : summary) =
  ( List.sort compare (List.map fst s.leaks),
    List.sort compare s.returns_params,
    s.returns_secret )

let run_binding pass ~rel ~qname ~summary ~emit body =
  let ctx =
    {
      p = pass;
      rel;
      current = prefix_of qname;
      fname = last_seg qname;
      summary;
      emit;
      env = Hashtbl.create 16;
    }
  in
  let t = analyze_binding ctx body in
  (match (summary, t) with
  | Some s, Some (Param i) ->
    if not (List.mem i s.returns_params) then
      s.returns_params <- i :: s.returns_params
  | Some s, Some (Secret _) -> s.returns_secret <- true
  | _ -> ())

let compute_summaries pass =
  let fns = Flow_graph.functions pass.graph in
  List.iter
    (fun (fn : Flow_graph.fn) ->
      Hashtbl.replace pass.summaries fn.qname
        { leaks = []; returns_params = []; returns_secret = false })
    fns;
  let changed = ref true in
  let rounds = ref 0 in
  while !changed && !rounds < 10 do
    changed := false;
    incr rounds;
    List.iter
      (fun (fn : Flow_graph.fn) ->
        let s = Hashtbl.find pass.summaries fn.qname in
        let before = summary_sig s in
        run_binding pass ~rel:fn.rel ~qname:fn.qname ~summary:(Some s)
          ~emit:None fn.body;
        if summary_sig s <> before then changed := true)
      fns
  done

(* ------------------------------------------------------------------ *)
(* Transitive determinism                                             *)

let waived pass ~rule ~file ~key =
  List.exists
    (fun (w : Waiver.t) -> w.rule = rule && w.file = file && w.key = key)
    pass.waivers

let in_lib rel = String.length rel >= 4 && String.sub rel 0 4 = "lib/"

let nondet_prim segs =
  let segs = strip_stdlib segs in
  if Rules.determinism_forbidden segs then Some (String.concat "." segs)
  else None

let compute_nondet pass =
  let fns =
    List.filter
      (fun (fn : Flow_graph.fn) -> in_lib fn.rel)
      (Flow_graph.functions pass.graph)
  in
  (* reverse call edges and direct seeds *)
  let rev : (string, (Flow_graph.fn * int) list) Hashtbl.t =
    Hashtbl.create 64
  in
  let seeds = ref [] in
  List.iter
    (fun (fn : Flow_graph.fn) ->
      iter_exprs
        (fun e ->
          match e.exp_desc with
          | Texp_ident (path, _, _) -> (
            match nondet_prim (Flow_graph.path_segs path) with
            | Some prim ->
              if
                not
                  (waived pass ~rule:"determinism" ~file:fn.rel
                     ~key:(fn.name ^ ":" ^ prim))
              then seeds := (fn, prim, line_of_expr e) :: !seeds
            | None -> (
              match
                Flow_graph.resolve_path pass.graph ~rel:fn.rel
                  ~current:(prefix_of fn.qname) path
              with
              | Some callee when callee.qname <> fn.qname && in_lib callee.rel
                ->
                Hashtbl.replace rev callee.qname
                  ((fn, line_of_expr e)
                  :: Option.value ~default:[]
                       (Hashtbl.find_opt rev callee.qname))
              | _ -> ()))
          | _ -> ())
        fn.body)
    fns;
  let q = Queue.create () in
  List.iter
    (fun ((fn : Flow_graph.fn), prim, line) ->
      if not (Hashtbl.mem pass.nondet fn.qname) then begin
        Hashtbl.replace pass.nondet fn.qname ([ prim ], line, true);
        Queue.push fn.qname q
      end)
    (List.rev !seeds);
  while not (Queue.is_empty q) do
    let fq = Queue.pop q in
    match Hashtbl.find_opt pass.nondet fq with
    | Some (chain, _, true) when List.length chain < 8 ->
      List.iter
        (fun ((caller : Flow_graph.fn), line) ->
          if not (Hashtbl.mem pass.nondet caller.qname) then begin
            let chain' = fq :: chain in
            let key = caller.name ^ ">" ^ String.concat ">" chain' in
            let propagate =
              not
                (waived pass ~rule:"transitive-determinism" ~file:caller.rel
                   ~key)
            in
            Hashtbl.replace pass.nondet caller.qname (chain', line, propagate);
            if propagate then Queue.push caller.qname q
          end)
        (Option.value ~default:[] (Hashtbl.find_opt rev fq))
    | _ -> ()
  done

let transitive_determinism pass (entry : Typed_load.entry) =
  List.filter_map
    (fun (fn : Flow_graph.fn) ->
      match Hashtbl.find_opt pass.nondet fn.qname with
      | Some (chain, line, _) when List.length chain >= 2 ->
        Some
          (finding ~rule:"transitive-determinism" ~file:entry.rel ~line
             ~key:(fn.name ^ ">" ^ String.concat ">" chain)
             (Printf.sprintf
                "%s is transitively nondeterministic: %s; thread a seed/DRBG \
                 through the call chain instead"
                fn.name
                (String.concat " -> " (fn.name :: chain))))
      | _ -> None)
    (Flow_graph.fns_in_file pass.graph ~rel:entry.rel)

(* ------------------------------------------------------------------ *)
(* Domain-capture                                                     *)

let pool_entry segs =
  match last2 (strip_stdlib segs) with
  | Some
      ( "Sc_parallel.parallel_map" | "Sc_parallel.parallel_iter"
      | "Sc_parallel.map_array" | "Sc_parallel.iter_ranges"
      | "Sc_parallel.run_tasks" ) ->
    true
  | _ -> false

type use_info = {
  uname : string;
  uty : Types.type_expr;
  uline : int;
  mutable total : int;
  mutable safe : int; (* occurrences as the target of get/set/length *)
  mutable idxs : expression list;
}

let analyze_closure pass (entry : Typed_load.entry) ~enclosing closure =
  let bound = Hashtbl.create 32 in
  let add_bound id = Hashtbl.replace bound (Ident.unique_name id) () in
  let uses : (string, use_info) Hashtbl.t = Hashtbl.create 32 in
  let ensure id (e : expression) =
    let u = Ident.unique_name id in
    match Hashtbl.find_opt uses u with
    | Some info -> info
    | None ->
      let info =
        {
          uname = Ident.name id;
          uty = e.exp_type;
          uline = line_of_expr e;
          total = 0;
          safe = 0;
          idxs = [];
        }
      in
      Hashtbl.replace uses u info;
      info
  in
  let use id e =
    let info = ensure id e in
    info.total <- info.total + 1
  in
  (* the apply case runs before the generic ident visit increments
     [total], so [ensure] must create the entry here *)
  let indexed id tgt idx =
    let info = ensure id tgt in
    info.safe <- info.safe + 1;
    Option.iter (fun i -> info.idxs <- i :: info.idxs) idx
  in
  let positional args =
    List.filter_map (fun (_, ao) -> ao) args
  in
  let note_pat : type k. k general_pattern -> unit =
   fun p ->
    match p.pat_desc with
    | Tpat_var (id, _) -> add_bound id
    | Tpat_alias (_, id, _) -> add_bound id
    | _ -> ()
  in
  let it =
    {
      Tast_iterator.default_iterator with
      pat =
        (fun it p ->
          note_pat p;
          Tast_iterator.default_iterator.pat it p);
      expr =
        (fun it e ->
          (match e.exp_desc with
          | Texp_function { param; _ } -> add_bound param
          | Texp_for (id, _, _, _, _, _) -> add_bound id
          | Texp_ident (Path.Pident id, _, _) -> use id e
          | Texp_apply ({ exp_desc = Texp_ident (p, _, _); _ }, args) -> (
            (* a.(i) / Bytes.get b i ... : the target occurrence is a
               position-addressed access; the generic Texp_ident case
               still counts it in [total] when the children are
               visited below *)
            match (last2 (strip_stdlib (Flow_graph.path_segs p)), positional args)
            with
            | ( Some
                  ( "Array.get" | "Array.set" | "Bytes.get" | "Bytes.set"
                  | "Array.unsafe_get" | "Array.unsafe_set"
                  | "Bytes.unsafe_get" | "Bytes.unsafe_set" ),
                ({ exp_desc = Texp_ident (Path.Pident id, _, _); _ } as tgt)
                :: idx :: _ ) ->
              indexed id tgt (Some idx)
            | ( Some ("Array.length" | "Bytes.length"),
                ({ exp_desc = Texp_ident (Path.Pident id, _, _); _ } as tgt)
                :: _ ) ->
              indexed id tgt None
            | _ -> ())
          | _ -> ());
          Tast_iterator.default_iterator.expr it e);
    }
  in
  (* bind the closure's own parameters, then walk *)
  it.expr it closure;
  let mentions_bound idx =
    let found = ref false in
    iter_exprs
      (fun e ->
        match e.exp_desc with
        | Texp_ident (Path.Pident id, _, _)
          when Hashtbl.mem bound (Ident.unique_name id) ->
          found := true
        | _ -> ())
      idx;
    !found
  in
  let findings = ref [] in
  Hashtbl.iter
    (fun u info ->
      if not (Hashtbl.mem bound u) then
        match
          Flow_graph.mutable_type_reason pass.graph ~current:entry.modname
            info.uty
        with
        | None -> ()
        | Some tyname ->
          let arrayish =
            tyname = "array" || tyname = "bytes"
            || last_seg tyname = "array"
            || last_seg tyname = "bytes"
          in
          let position_addressed =
            arrayish && info.total = info.safe
            && (info.idxs = [] || List.for_all mentions_bound info.idxs)
          in
          if not position_addressed then
            findings :=
              finding ~rule:"domain-capture" ~file:entry.rel ~line:info.uline
                ~key:(enclosing ^ ":" ^ info.uname)
                (Printf.sprintf
                   "closure submitted to the Sc_parallel pool captures \
                    mutable state %s : %s without Atomic/Mutex; make the \
                    state shard-owned or position-addressed"
                   info.uname tyname)
              :: !findings)
    uses;
  !findings

let domain_capture pass (entry : Typed_load.entry) =
  if
    String.length entry.rel >= 13
    && String.sub entry.rel 0 13 = "lib/parallel/"
  then []
  else
    let findings = ref [] in
    List.iter
      (fun (qname, _, body) ->
        let enclosing = last_seg qname in
        iter_exprs
          (fun e ->
            match e.exp_desc with
            | Texp_apply ({ exp_desc = Texp_ident (p, _, _); _ }, args)
              when pool_entry (Flow_graph.path_segs p) ->
              List.iter
                (fun (_, ao) ->
                  match ao with
                  | None -> ()
                  | Some a ->
                    (* analyze each outermost closure in this argument *)
                    let closures = ref [] in
                    let it =
                      {
                        Tast_iterator.default_iterator with
                        expr =
                          (fun it e ->
                            match e.exp_desc with
                            | Texp_function _ -> closures := e :: !closures
                            | _ ->
                              Tast_iterator.default_iterator.expr it e);
                      }
                    in
                    it.expr it a;
                    List.iter
                      (fun c ->
                        findings :=
                          analyze_closure pass entry ~enclosing c @ !findings)
                      !closures)
                args
            | _ -> ())
          body)
      (Flow_graph.top_bindings entry);
    !findings

(* ------------------------------------------------------------------ *)
(* Discarded errors                                                   *)

let is_ignore segs = strip_stdlib segs = [ "ignore" ]

let underscore_name n = String.length n > 0 && n.[0] = '_'

let wildcard_case (c : Typedtree.computation case) =
  let rec value_wild (p : pattern) =
    match p.pat_desc with
    | Tpat_any -> true
    | Tpat_var (_, n) -> underscore_name n.txt
    | Tpat_alias (sub, _, _) -> value_wild sub
    | _ -> false
  in
  match c.c_lhs.pat_desc with
  | Tpat_value v -> value_wild (v :> pattern)
  | _ -> false

let discarded_error _pass (entry : Typed_load.entry) =
  let current = entry.modname in
  let findings = ref [] in
  let emit ~enclosing ~kind ~name ~line =
    findings :=
      finding ~rule:"discarded-error" ~file:entry.rel ~line
        ~key:(enclosing ^ ":" ^ kind ^ ":" ^ name)
        (Printf.sprintf
           "%s silently drops a typed failure (%s); match on it and surface \
            the verdict"
           (match kind with
           | "ignore" -> "ignore"
           | "wildcard" -> "wildcard match arm"
           | "unused-let" -> "let _"
           | _ -> "statement position")
           name)
      :: !findings
  in
  let check_vb ~enclosing (vb : value_binding) =
    let is_discard =
      match vb.vb_pat.pat_desc with
      | Tpat_any -> true
      | Tpat_var (_, n) -> underscore_name n.txt
      | _ -> false
    in
    if is_discard then
      match monitored_ty ~current vb.vb_expr.exp_type 0 with
      | Some name ->
        emit ~enclosing ~kind:"unused-let" ~name
          ~line:vb.vb_loc.Location.loc_start.Lexing.pos_lnum
      | None -> ()
  in
  List.iter
    (fun (qname, line, body) ->
      let enclosing = last_seg qname in
      (* anonymous [let _ = ...] at the structure level *)
      (if enclosing = "_" then
         match monitored_ty ~current body.exp_type 0 with
         | Some name -> emit ~enclosing ~kind:"unused-let" ~name ~line
         | None -> ());
      iter_exprs
        (fun e ->
          match e.exp_desc with
          | Texp_apply
              ({ exp_desc = Texp_ident (p, _, _); _ }, [ (_, Some a) ])
            when is_ignore (Flow_graph.path_segs p) -> (
            match monitored_ty ~current a.exp_type 0 with
            | Some name ->
              emit ~enclosing ~kind:"ignore" ~name ~line:(line_of_expr a)
            | None -> ())
          | Texp_let (_, vbs, _) -> List.iter (check_vb ~enclosing) vbs
          | Texp_match (scrut, cases, _) -> (
            match monitored_ty ~current scrut.exp_type 0 with
            | Some name ->
              List.iter
                (fun c ->
                  if wildcard_case c then
                    emit ~enclosing ~kind:"wildcard" ~name
                      ~line:(line_of_pat c.c_lhs))
                cases
            | None -> ())
          | Texp_sequence (a, _) -> (
            match monitored_ty ~current a.exp_type 0 with
            | Some name ->
              emit ~enclosing ~kind:"discard" ~name ~line:(line_of_expr a)
            | None -> ())
          | _ -> ())
        body)
    (Flow_graph.top_bindings entry);
  !findings

(* ------------------------------------------------------------------ *)
(* Secret-flow reporting pass                                         *)

let secret_flow pass (entry : Typed_load.entry) =
  let findings = ref [] in
  List.iter
    (fun (qname, _, body) ->
      run_binding pass ~rel:entry.rel ~qname ~summary:None
        ~emit:(Some (fun f -> findings := f :: !findings))
        body)
    (Flow_graph.top_bindings entry);
  !findings

(* ------------------------------------------------------------------ *)
(* Entry points                                                       *)

let prepare graph ~waivers =
  let pass =
    { graph; waivers; summaries = Hashtbl.create 256; nondet = Hashtbl.create 64 }
  in
  compute_summaries pass;
  compute_nondet pass;
  pass

let lint pass (entry : Typed_load.entry) =
  let fs =
    secret_flow pass entry @ domain_capture pass entry
    @ discarded_error pass entry
    @ (if in_lib entry.rel then transitive_determinism pass entry else [])
  in
  List.sort_uniq Finding.compare fs
