(* The six AST rules, on the 5.1 Parsetree via [Ast_iterator].

   Rule ids:
     domain-safety      toplevel mutable state (ref / Hashtbl.create /
                        Buffer.create / Queue.create / Stack.create /
                        mutable-field record literal) at module level
     signing-encode     sprintf / (^) / String.concat results with >= 2
                        unvalidated fragments flowing syntactically into
                        a hash / sign / KDF sink instead of Sc_hash.Encode
     determinism        Stdlib.Random, Unix.gettimeofday, Unix.time,
                        Sys.time in lib/ (randomness: Sc_hash.Drbg; time:
                        the simulated clock)
     secret-flow        secret-named identifiers (msk, sk, priv, secret,
                        master_secret, ...) in telemetry label arguments,
                        Printf/Format output, or wire-payload construction
     exception-swallow  catch-all [with _ ->] / [with e ->] handlers that
                        neither use the exception nor re-raise
     naive-scalar-mul   (informational) hand-rolled double-and-add scalar
                        multiplication outside lib/ec — a Nat.test_bit
                        loop driving Curve.double; Curve.mul (wNAF) or a
                        cached Curve.mul_precomp comb is faster
     dynamic-metric-name (informational) non-literal name argument to
                        Telemetry./Registry. counter/gauge/histogram or
                        [with_span ~name:] outside lib/telemetry —
                        computed names grow the registry without bound;
                        per-key fan-out belongs in Labels.counter_vec /
                        Labels.histogram_vec under a literal family *)

open Parsetree
module SSet = Set.Make (String)
module SMap = Map.Make (String)

type ctx = {
  path : string; (* root-relative *)
  in_lib : bool;
  mutable_fields : SSet.t; (* mutable record labels declared in this file *)
  mutable producers : int SMap.t;
      (* file-local functions whose body is a tainted concatenation,
         mapped to their fragment taint count (e.g. Warrant.encode) *)
  mutable out : Finding.t list;
}

let line_of (loc : Location.t) = loc.loc_start.Lexing.pos_lnum

let emit ?(severity = Finding.Error) ctx ~rule ~loc ~key msg =
  ctx.out <-
    { Finding.rule; file = ctx.path; line = line_of loc; severity; key; msg }
    :: ctx.out

(* ------------------------------------------------------------------ *)
(* Longident helpers                                                  *)

let rec flat = function
  | Longident.Lident s -> [ s ]
  | Longident.Ldot (l, s) -> flat l @ [ s ]
  | Longident.Lapply (_, l) -> flat l

let tail1 p = match List.rev p with x :: _ -> Some x | [] -> None

let tail2 p =
  match List.rev p with b :: a :: _ -> Some (a ^ "." ^ b) | _ -> None

let path_of e =
  match e.pexp_desc with
  | Pexp_ident { txt; _ } -> Some (flat txt)
  | _ -> None

let path_string p = String.concat "." p

(* ------------------------------------------------------------------ *)
(* Rule tables                                                        *)

(* Constructors of shared mutable state.  Atomic.make, Mutex.create,
   Condition.create and Domain.DLS.new_key are deliberately absent:
   those are the domain-safe alternatives the rule pushes toward. *)
let mutable_ctor p =
  match (p, tail2 p) with
  | [ "ref" ], _ | [ "Stdlib"; "ref" ], _ -> true
  | _, Some ("Hashtbl.create" | "Buffer.create" | "Queue.create" | "Stack.create")
    ->
    true
  | _ -> false

(* Hash / sign / KDF sinks whose string arguments must be canonically
   framed.  Matched on the last two path segments so both [Sha256.digest]
   and [Sc_hash.Sha256.digest] hit. *)
let encode_sinks =
  SSet.of_list
    [
      "Sha256.digest";
      "Sha256.digest_hex";
      "Sha256.digest_concat";
      "Sha256.feed";
      "Hmac.mac";
      "Hmac.mac_hex";
      "Hmac.mac_concat";
      "Hash_g1.hash_to_point";
      "Hash_g1.hash_to_scalar";
      "Ibs.sign";
      "Drbg.create";
    ]

(* digest_concat / mac_concat take fragment *lists*: a literal list of
   raw fragments is exactly the ambiguity Encode.frame exists for. *)
let concat_sinks = SSet.of_list [ "Sha256.digest_concat"; "Hmac.mac_concat" ]

let determinism_forbidden p =
  match p with
  | "Random" :: _ :: _ | "Stdlib" :: "Random" :: _ :: _ -> true
  | [ "Unix"; ("gettimeofday" | "time") ] | [ "Sys"; "time" ] -> true
  | _ -> false

let secret_tokens = [ "sk"; "msk"; "priv"; "private"; "secret" ]

let is_secret_name n =
  let toks = String.split_on_char '_' (String.lowercase_ascii n) in
  List.exists (fun t -> List.mem t secret_tokens) toks

(* Sinks where a secret-named identifier is an immediate break:
   telemetry metric names / span attrs, textual output, and wire
   payload construction. *)
let secret_sink p =
  List.exists (fun seg -> seg = "Telemetry" || seg = "Registry" || seg = "Span")
    p
  || (match tail1 p with
     | Some
         ( "printf" | "eprintf" | "fprintf" | "sprintf" | "asprintf"
         | "print_string" | "print_endline" | "prerr_endline" | "failwith"
         | "invalid_arg" ) ->
       true
     | _ -> false)
  || tail2 p = Some "Wire.encode"

(* Fragment producers that cannot introduce framing ambiguity: decimal
   renderings of scalars contain no attacker bytes, and Encode output
   is already canonical. *)
let safe_fragment_fn p =
  (match tail1 p with
  | Some ("string_of_int" | "string_of_float" | "string_of_bool") -> true
  | _ -> false)
  || match tail2 p with
     | Some
         ( "Int.to_string" | "Float.to_string" | "Bool.to_string"
         | "Encode.canonical" | "Encode.digest" ) ->
       true
     | _ -> false

(* ------------------------------------------------------------------ *)
(* Taint analysis for signing-encode                                  *)

(* A printf conversion consumes arguments; only %s/%S (and %a, whose
   printed form we cannot bound) produce attacker-shaped fragments. *)
let conversions fmt =
  let out = ref [] in
  let n = String.length fmt in
  let i = ref 0 in
  while !i < n do
    if fmt.[!i] = '%' && !i + 1 < n then begin
      incr i;
      if fmt.[!i] = '%' then incr i
      else begin
        (* skip flags / width / precision *)
        while
          !i < n
          && (match fmt.[!i] with
             | '0' .. '9' | '-' | '+' | ' ' | '#' | '.' | '*' -> true
             | _ -> false)
        do
          incr i
        done;
        (* skip length modifiers *)
        while !i < n && (match fmt.[!i] with 'l' | 'L' | 'n' -> true | _ -> false)
        do
          incr i
        done;
        if !i < n then begin
          out := fmt.[!i] :: !out;
          incr i
        end
      end
    end
    else incr i
  done;
  List.rev !out

let rec literal_list e =
  match e.pexp_desc with
  | Pexp_construct ({ txt = Longident.Lident "[]"; _ }, None) -> Some []
  | Pexp_construct
      ( { txt = Longident.Lident "::"; _ },
        Some { pexp_desc = Pexp_tuple [ hd; tl ]; _ } ) -> (
    match literal_list tl with Some rest -> Some (hd :: rest) | None -> None)
  | _ -> None

(* [taint ctx env e] is [Some n] when [e] is concatenation-shaped
   ((^) chain, sprintf, String.concat, a file-local producer of one of
   those, or a let-bound variable holding one) with [n] unvalidated
   fragments; [None] when [e] is not a concatenation. *)
let rec taint ctx env e : int option =
  match e.pexp_desc with
  | Pexp_constraint (e, _) -> taint ctx env e
  | Pexp_ident { txt = Longident.Lident x; _ } -> SMap.find_opt x env
  | Pexp_apply
      ( { pexp_desc = Pexp_ident { txt = Longident.Lident "^"; _ }; _ },
        [ (_, a); (_, b) ] ) ->
    Some (fragment ctx env a + fragment ctx env b)
  | Pexp_apply (f, args) -> (
    match path_of f with
    | Some p when tail1 p = Some "sprintf" || tail1 p = Some "asprintf" -> (
      match args with
      | (_, { pexp_desc = Pexp_constant (Pconst_string (fmt, _, _)); _ })
        :: rest ->
        let rest = List.map snd rest in
        let t = ref 0 in
        let remaining = ref rest in
        let pop () =
          match !remaining with
          | x :: tl ->
            remaining := tl;
            Some x
          | [] -> None
        in
        List.iter
          (fun conv ->
            match conv with
            | 's' | 'S' -> (
              match pop () with
              | Some arg -> t := !t + max 1 (fragment ctx env arg)
              | None -> incr t (* partial application: assume tainted *))
            | 'a' ->
              ignore (pop ());
              ignore (pop ());
              incr t
            | _ -> ignore (pop ()))
          (conversions fmt);
        Some !t
      | _ -> Some 2 (* dynamic format string: assume ambiguous *))
    | Some p when tail2 p = Some "String.concat" -> (
      match args with
      | [ _sep; (_, lst) ] -> (
        match literal_list lst with
        | Some elems ->
          Some (List.fold_left (fun acc x -> acc + fragment ctx env x) 0 elems)
        | None -> Some 2 (* unknown fragment list: assume ambiguous *))
      | _ -> Some 2)
    | Some [ f1 ] when SMap.mem f1 ctx.producers ->
      Some (SMap.find f1 ctx.producers)
    | _ -> None)
  | _ -> None

(* Taint of a single fragment inside a concatenation. *)
and fragment ctx env e : int =
  match taint ctx env e with
  | Some n -> n
  | None -> (
    match e.pexp_desc with
    | Pexp_constant _ -> 0
    | Pexp_constraint (e, _) -> fragment ctx env e
    | Pexp_apply (f, _) -> (
      match path_of f with Some p when safe_fragment_fn p -> 0 | _ -> 1)
    | _ -> 1)

(* ------------------------------------------------------------------ *)
(* Per-rule checks invoked from the main iterator                     *)

let mentions names body =
  let found = ref false in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun it e ->
          (match e.pexp_desc with
          | Pexp_ident { txt; _ } -> (
            match tail1 (flat txt) with
            | Some n when List.mem n names -> found := true
            | _ -> ())
          | _ -> ());
          Ast_iterator.default_iterator.expr it e);
    }
  in
  it.expr it body;
  !found

let rec catch_all_pattern p =
  match p.ppat_desc with
  | Ppat_any -> true
  | Ppat_var _ -> true
  | Ppat_alias (p, _) -> catch_all_pattern p
  | Ppat_or (a, b) -> catch_all_pattern a || catch_all_pattern b
  | Ppat_constraint (p, _) -> catch_all_pattern p
  | _ -> false

let rec bound_var p =
  match p.ppat_desc with
  | Ppat_var { txt; _ } -> Some txt
  | Ppat_alias (_, { txt; _ }) -> Some txt
  | Ppat_constraint (p, _) -> bound_var p
  | _ -> None

let check_handler_case ctx ~enclosing (case : case) =
  if catch_all_pattern case.pc_lhs then begin
    let handled =
      let raising = [ "raise"; "raise_notrace"; "reraise" ] in
      match bound_var case.pc_lhs with
      | Some v -> mentions (v :: raising) case.pc_rhs
      | None -> mentions raising case.pc_rhs
    in
    if not handled then
      emit ctx ~rule:"exception-swallow" ~loc:case.pc_lhs.ppat_loc
        ~key:enclosing
        "catch-all handler silently swallows the exception; match specific \
         exceptions, use the bound exception, or re-raise"
  end

let scan_secret_idents ctx ~enclosing ~sink e =
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun it e ->
          match e.pexp_desc with
          | Pexp_fun _ | Pexp_function _ ->
            () (* span bodies etc. are not label arguments *)
          | Pexp_ident { txt; _ } | Pexp_field (_, { txt; _ }) ->
            (match tail1 (flat txt) with
            | Some n when is_secret_name n ->
              emit ctx ~rule:"secret-flow" ~loc:e.pexp_loc
                ~key:(enclosing ^ ":" ^ n)
                (Printf.sprintf
                   "secret-named identifier %S reaches %s; secrets must never \
                    be logged, labelled, or serialized outside \
                    encrypt/sign sites"
                   n sink)
            | _ -> ());
            Ast_iterator.default_iterator.expr it e
          | _ -> Ast_iterator.default_iterator.expr it e);
    }
  in
  it.expr it e

let check_encode_sink ctx env ~enclosing ~sink (label, arg) =
  ignore label;
  let flag loc n =
    emit ctx ~rule:"signing-encode" ~loc ~key:(enclosing ^ ":" ^ sink)
      (Printf.sprintf
         "%d unvalidated fragments concatenated into %s; build the message \
          with Sc_hash.Encode (length-prefixed, domain-tagged) instead"
         n sink)
  in
  if SSet.mem sink concat_sinks then begin
    (* fragment-list sinks: a literal list of raw fragments is only safe
       when produced by Encode.frame *)
    match literal_list arg with
    | Some elems ->
      let n = List.fold_left (fun acc x -> acc + fragment ctx env x) 0 elems in
      if n >= 2 then flag arg.pexp_loc n
    | None -> (
      match arg.pexp_desc with
      | Pexp_apply (f, _)
        when path_of f <> None
             && tail2 (Option.get (path_of f)) = Some "Encode.frame" ->
        ()
      | _ -> (
        match taint ctx env arg with
        | Some n when n >= 2 -> flag arg.pexp_loc n
        | _ -> ()))
  end
  else
    match taint ctx env arg with
    | Some n when n >= 2 -> flag arg.pexp_loc n
    | _ -> ()

(* ------------------------------------------------------------------ *)
(* Pre-passes                                                         *)

let collect_mutable_fields (str : structure) =
  let acc = ref SSet.empty in
  let it =
    {
      Ast_iterator.default_iterator with
      type_declaration =
        (fun it td ->
          (match td.ptype_kind with
          | Ptype_record labels ->
            List.iter
              (fun ld ->
                if ld.pld_mutable = Mutable then
                  acc := SSet.add ld.pld_name.txt !acc)
              labels
          | _ -> ());
          Ast_iterator.default_iterator.type_declaration it td);
    }
  in
  it.structure it str;
  !acc

(* File-local [let f args = <tainted concat>] producers, collected in
   order so later producers can reference earlier ones. *)
let collect_producers ctx (str : structure) =
  let rec strip e =
    match e.pexp_desc with
    | Pexp_fun (_, _, _, body) -> strip body
    | Pexp_newtype (_, body) -> strip body
    | Pexp_constraint (body, _) -> strip body
    | _ -> e
  in
  let item si =
    match si.pstr_desc with
    | Pstr_value (_, vbs) ->
      List.iter
        (fun vb ->
          match bound_var vb.pvb_pat with
          | Some name -> (
            match taint ctx SMap.empty (strip vb.pvb_expr) with
            | Some n when n >= 1 ->
              ctx.producers <- SMap.add name n ctx.producers
            | _ -> ())
          | None -> ())
        vbs
    | _ -> ()
  in
  List.iter item str

(* ------------------------------------------------------------------ *)
(* Rule 1: toplevel mutable state                                     *)

let rule_domain_safety ctx ~name vb =
  let flagged = ref false in
  let flag loc what =
    if not !flagged then begin
      flagged := true;
      emit ctx ~rule:"domain-safety" ~loc ~key:name
        (Printf.sprintf
           "toplevel binding %S holds shared mutable state (%s); guard it \
            with a mutex / make it Atomic / move it into Domain.DLS, or \
            waive it with a justification"
           name what)
    end
  in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun it e ->
          if not !flagged then
            match e.pexp_desc with
            | Pexp_fun _ | Pexp_function _ ->
              () (* per-call state, not shared *)
            | Pexp_apply (f, _) when
                (match path_of f with
                | Some p -> mutable_ctor p
                | None -> false) ->
              flag e.pexp_loc
                (path_string (Option.get (path_of f)))
            | Pexp_record (fields, _)
              when List.exists
                     (fun (({ txt; _ } : Longident.t Location.loc), _) ->
                       match tail1 (flat txt) with
                       | Some l -> SSet.mem l ctx.mutable_fields
                       | None -> false)
                     fields ->
              flag e.pexp_loc "record literal with mutable fields"
            | _ -> Ast_iterator.default_iterator.expr it e);
    }
  in
  it.expr it vb.pvb_expr

(* ------------------------------------------------------------------ *)
(* Rule 6: naive scalar multiplication outside lib/ec                 *)

(* The signature of a hand-rolled double-and-add ladder is a scalar
   bit scan ([test_bit]) in the same binding as a direct
   [Curve.double] call: well-behaved callers never touch
   [Curve.double] — they go through [Curve.mul] (wNAF) or a cached
   [Curve.mul_precomp] comb.  Informational: a bespoke ladder can be
   deliberate (e.g. a constant-time variant), so it never fails the
   build and is not meant to be waived away. *)
let in_lib_ec path =
  String.length path >= 7 && String.sub path 0 7 = "lib/ec/"

let rule_naive_scalar_mul ctx ~name vb =
  if not (in_lib_ec ctx.path) then begin
    let scans_bits = ref false and doubles_point = ref false in
    let it =
      {
        Ast_iterator.default_iterator with
        expr =
          (fun it e ->
            (match e.pexp_desc with
            | Pexp_ident { txt; _ } ->
              let p = flat txt in
              if tail1 p = Some "test_bit" then scans_bits := true;
              if tail2 p = Some "Curve.double" then doubles_point := true
            | _ -> ());
            Ast_iterator.default_iterator.expr it e);
      }
    in
    it.expr it vb.pvb_expr;
    if !scans_bits && !doubles_point then
      emit ctx ~severity:Finding.Info ~rule:"naive-scalar-mul"
        ~loc:vb.pvb_loc ~key:name
        (Printf.sprintf
           "%S scans scalar bits and calls Curve.double directly — a naive \
            double-and-add ladder; use Curve.mul (wNAF) or a cached \
            Curve.mul_precomp comb (informational)"
           name)
  end

(* ------------------------------------------------------------------ *)
(* Rule 7: dynamic metric / span names                                *)

(* A registry cell lives forever, so a computed name is an unbounded
   cardinality leak waiting for adversarial input (one counter per
   file name, per peer id, ...).  The sanctioned shape is a literal
   family plus [Labels.counter_vec] / [Labels.histogram_vec], which
   bound the fan-out and spill to an "other" cell.  lib/telemetry/
   itself is exempt: it is the implementation and derives cell names
   by construction.  Informational — a computed name over a closed
   static set is legitimate. *)
let metric_ctors =
  SSet.of_list
    [
      "Telemetry.counter";
      "Telemetry.gauge";
      "Telemetry.histogram";
      "Registry.counter";
      "Registry.gauge";
      "Registry.histogram";
    ]

let in_lib_telemetry path =
  String.length path >= 14 && String.sub path 0 14 = "lib/telemetry/"

let is_string_literal e =
  match e.pexp_desc with
  | Pexp_constant (Pconst_string _) -> true
  | _ -> false

let rule_dynamic_metric_name ctx ~enclosing ~loc p args =
  if not (in_lib_telemetry ctx.path) then begin
    let flag what arg =
      if not (is_string_literal arg) then
        emit ctx ~severity:Finding.Info ~rule:"dynamic-metric-name" ~loc
          ~key:(enclosing ^ ":" ^ what)
          (Printf.sprintf
             "%s in %S takes a computed name — dynamic names grow the \
              registry without bound; use a literal family with \
              Labels.counter_vec / Labels.histogram_vec for per-key fan-out \
              (informational)"
             what enclosing)
    in
    (match tail2 p with
    | Some callee when SSet.mem callee metric_ctors -> (
      match List.find_opt (fun (l, _) -> l = Asttypes.Nolabel) args with
      | Some (_, a) -> flag callee a
      | None -> ())
    | _ -> ());
    if tail1 p = Some "with_span" then
      match
        List.find_opt (fun (l, _) -> l = Asttypes.Labelled "name") args
      with
      | Some (_, a) -> flag "with_span ~name" a
      | None -> ()
  end

(* ------------------------------------------------------------------ *)
(* Main walk                                                          *)

let lint_structure ctx (str : structure) =
  let enclosing = ref "<toplevel>" in
  let env = ref SMap.empty in
  let expr_iter =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun it e ->
          match e.pexp_desc with
          | Pexp_let (_, vbs, body) ->
            let saved_env = !env and saved_enc = !enclosing in
            List.iter
              (fun vb ->
                (match bound_var vb.pvb_pat with
                | Some n -> enclosing := n
                | None -> ());
                it.expr it vb.pvb_expr;
                enclosing := saved_enc)
              vbs;
            List.iter
              (fun vb ->
                match bound_var vb.pvb_pat with
                | Some n -> (
                  match taint ctx !env vb.pvb_expr with
                  | Some t -> env := SMap.add n t !env
                  | None -> env := SMap.remove n !env)
                | None -> ())
              vbs;
            it.expr it body;
            env := saved_env
          | Pexp_ident { txt; _ } ->
            let p = flat txt in
            if ctx.in_lib && determinism_forbidden p then
              emit ctx ~rule:"determinism" ~loc:e.pexp_loc
                ~key:(!enclosing ^ ":" ^ path_string p)
                (Printf.sprintf
                   "%s in lib/ breaks 1-vs-N-domain value identity; use \
                    Sc_hash.Drbg for randomness and the simulated clock for \
                    time"
                   (path_string p))
          | Pexp_apply (f, args) ->
            (match path_of f with
            | Some p ->
              (match tail2 p with
              | Some sink when SSet.mem sink encode_sinks ->
                List.iter (check_encode_sink ctx !env ~enclosing:!enclosing ~sink) args
              | _ -> ());
              if secret_sink p then
                List.iter
                  (fun (_, a) ->
                    scan_secret_idents ctx ~enclosing:!enclosing
                      ~sink:(path_string p) a)
                  args;
              rule_dynamic_metric_name ctx ~enclosing:!enclosing
                ~loc:e.pexp_loc p args
            | None -> ());
            it.expr it f;
            List.iter (fun (_, a) -> it.expr it a) args
          | Pexp_try (_, cases) ->
            List.iter (check_handler_case ctx ~enclosing:!enclosing) cases;
            Ast_iterator.default_iterator.expr it e
          | Pexp_match (_, cases) ->
            List.iter
              (fun c ->
                match c.pc_lhs.ppat_desc with
                | Ppat_exception p ->
                  check_handler_case ctx ~enclosing:!enclosing
                    { c with pc_lhs = p }
                | _ -> ())
              cases;
            Ast_iterator.default_iterator.expr it e
          | _ -> Ast_iterator.default_iterator.expr it e);
    }
  in
  let rec structure ~toplevel items = List.iter (item ~toplevel) items
  and item ~toplevel si =
    match si.pstr_desc with
    | Pstr_value (_, vbs) ->
      List.iter
        (fun vb ->
          let name = Option.value (bound_var vb.pvb_pat) ~default:"_" in
          if toplevel then rule_domain_safety ctx ~name vb;
          rule_naive_scalar_mul ctx ~name vb;
          let saved = !enclosing in
          enclosing := name;
          expr_iter.expr expr_iter vb.pvb_expr;
          enclosing := saved)
        vbs
    | Pstr_eval (e, _) -> expr_iter.expr expr_iter e
    | Pstr_module mb -> module_expr ~toplevel mb.pmb_expr
    | Pstr_recmodule mbs ->
      List.iter (fun mb -> module_expr ~toplevel mb.pmb_expr) mbs
    | Pstr_include incl -> module_expr ~toplevel incl.pincl_mod
    | _ -> ()
  and module_expr ~toplevel me =
    match me.pmod_desc with
    | Pmod_structure s -> structure ~toplevel s
    | Pmod_constraint (me, _) -> module_expr ~toplevel me
    | Pmod_functor (_, me) ->
      (* a functor body is instantiated per application; its bindings
         are not process-global state *)
      module_expr ~toplevel:false me
    | _ -> ()
  in
  structure ~toplevel:true str

let lint ~path ~in_lib (str : structure) : Finding.t list =
  let ctx =
    {
      path;
      in_lib;
      mutable_fields = collect_mutable_fields str;
      producers = SMap.empty;
      out = [];
    }
  in
  collect_producers ctx str;
  lint_structure ctx str;
  (* one finding per (rule, file, line, key) *)
  let seen = Hashtbl.create 16 in
  List.filter
    (fun (f : Finding.t) ->
      let k = (f.rule, f.line, f.key) in
      if Hashtbl.mem seen k then false
      else begin
        Hashtbl.add seen k ();
        true
      end)
    (List.rev ctx.out)
