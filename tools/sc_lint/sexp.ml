(* Minimal s-expression reader for the waiver file: atoms, quoted
   strings with backslash escapes, lists, and semicolon line comments.
   No sexplib in the build environment, and the waiver grammar is
   small enough that a ~70-line reader is cheaper than a dependency. *)

type t = Atom of string | List of t list

exception Parse_error of string

let parse_all (s : string) : (t list, string) result =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | Some ';' ->
      while !pos < n && s.[!pos] <> '\n' do
        advance ()
      done;
      skip_ws ()
    | _ -> ()
  in
  let read_quoted () =
    advance ();
    let buf = Buffer.create 16 in
    let rec loop () =
      if !pos >= n then raise (Parse_error "unterminated string");
      match s.[!pos] with
      | '"' -> advance ()
      | '\\' ->
        advance ();
        if !pos >= n then raise (Parse_error "dangling escape");
        (match s.[!pos] with
        | 'n' -> Buffer.add_char buf '\n'
        | 't' -> Buffer.add_char buf '\t'
        | c -> Buffer.add_char buf c);
        advance ();
        loop ()
      | c ->
        Buffer.add_char buf c;
        advance ();
        loop ()
    in
    loop ();
    Buffer.contents buf
  in
  let read_atom () =
    let start = !pos in
    let stop = ref false in
    while (not !stop) && !pos < n do
      match s.[!pos] with
      | ' ' | '\t' | '\n' | '\r' | '(' | ')' | '"' | ';' -> stop := true
      | _ -> advance ()
    done;
    String.sub s start (!pos - start)
  in
  let rec read_sexp () =
    skip_ws ();
    match peek () with
    | None -> raise (Parse_error "unexpected end of input")
    | Some '(' ->
      advance ();
      let items = ref [] in
      let rec loop () =
        skip_ws ();
        match peek () with
        | Some ')' -> advance ()
        | None -> raise (Parse_error "unclosed list")
        | Some _ ->
          items := read_sexp () :: !items;
          loop ()
      in
      loop ();
      List (List.rev !items)
    | Some ')' -> raise (Parse_error "unexpected ')'")
    | Some '"' -> Atom (read_quoted ())
    | Some _ -> Atom (read_atom ())
  in
  try
    let out = ref [] in
    skip_ws ();
    while !pos < n do
      out := read_sexp () :: !out;
      skip_ws ()
    done;
    Ok (List.rev !out)
  with Parse_error m -> Error m
