(* Quick, machine-readable perf tracking: times the pairing hot path
   and writes BENCH_pairing.json (ns/op per benchmark) so the perf
   trajectory is comparable across PRs.  Much faster than the full
   bechamel run in main.ml — wired into `make bench-check`. *)

module Params = Sc_pairing.Params
module Tate = Sc_pairing.Tate
module Curve = Sc_ec.Curve
module Nat = Sc_bignum.Nat

let drbg = Sc_hash.Drbg.create ~seed:"bench-quick"
let bs = Sc_hash.Drbg.bytes_source drbg

let time_ns ?(iters = 100) f =
  for _ = 1 to 3 do
    ignore (f ())
  done;
  let t0 = Unix.gettimeofday () in
  for _ = 1 to iters do
    ignore (f ())
  done;
  let t1 = Unix.gettimeofday () in
  (t1 -. t0) *. 1e9 /. float_of_int iters

let () =
  let prm = Lazy.force Params.toy in
  let prm_small = Lazy.force Params.small in
  let g = prm.Params.g and gs = prm_small.Params.g in
  let scalar_small = Params.random_scalar prm_small ~bytes_source:bs in
  let pairs8 =
    List.init 8 (fun _ ->
        let a = Params.random_scalar prm_small ~bytes_source:bs in
        let b = Params.random_scalar prm_small ~bytes_source:bs in
        ( Curve.mul prm_small.Params.curve a gs,
          Curve.mul prm_small.Params.curve b gs ))
  in
  let results =
    [
      "pairing(toy)", time_ns ~iters:200 (fun () -> Tate.pairing prm g g);
      ( "pairing(small)",
        time_ns ~iters:100 (fun () -> Tate.pairing prm_small gs gs) );
      ( "multi_pairing(k=8)",
        time_ns ~iters:30 (fun () -> Tate.multi_pairing prm_small pairs8) );
      ( "point_mul",
        time_ns ~iters:200 (fun () ->
            Curve.mul prm_small.Params.curve scalar_small gs) );
    ]
  in
  (* The designated-verifier auditing hot path: pairings per Ibs.verify
     (the seed needed 2; the multi-pairing rewrite needs 1). *)
  let sio = Sc_ibc.Setup.create prm ~bytes_source:bs in
  let pub = Sc_ibc.Setup.public sio in
  let alice = Sc_ibc.Setup.extract sio "alice" in
  let s = Sc_ibc.Ibs.sign pub alice ~bytes_source:bs "bench" in
  let batch8 =
    List.init 8 (fun i ->
        let m = Printf.sprintf "bench-%d" i in
        "alice", m, Sc_ibc.Ibs.sign pub alice ~bytes_source:bs m)
  in
  let results =
    results
    @ [
        ( "ibs_verify(toy)",
          time_ns ~iters:50 (fun () ->
              Sc_ibc.Ibs.verify pub ~signer:"alice" ~msg:"bench" s) );
        ( "ibs_verify_batch(t=8,toy)",
          time_ns ~iters:20 (fun () -> Sc_ibc.Ibs.verify_batch pub batch8) );
      ]
  in
  (* One-shot counter deltas, read back from the telemetry registry. *)
  let module Telemetry = Sc_telemetry.Telemetry in
  Tate.reset_pairing_count ();
  assert (Sc_ibc.Ibs.verify pub ~signer:"alice" ~msg:"bench" s);
  let ibs_verify_pairings = Tate.pairings_performed () in
  let h0 = Telemetry.counter_value "hash.sha256.digests" in
  assert (Sc_ibc.Ibs.verify pub ~signer:"alice" ~msg:"bench" s);
  let ibs_verify_sha256 = Telemetry.counter_value "hash.sha256.digests" - h0 in
  Tate.reset_pairing_count ();
  assert (Sc_ibc.Ibs.verify_batch pub batch8);
  let ibs_verify_batch8_pairings = Tate.pairings_performed () in
  let counters =
    [
      "ibs_verify_pairings", ibs_verify_pairings;
      "ibs_verify_sha256_digests", ibs_verify_sha256;
      "ibs_verify_batch8_pairings", ibs_verify_batch8_pairings;
    ]
  in
  let json =
    Printf.sprintf "{\n%s,\n%s\n}\n"
      (String.concat ",\n"
         (List.map
            (fun (name, ns) -> Printf.sprintf "  %S: %.0f" name ns)
            results))
      (String.concat ",\n"
         (List.map
            (fun (name, v) -> Printf.sprintf "  %S: %d" name v)
            counters))
  in
  let oc = open_out "BENCH_pairing.json" in
  output_string oc json;
  close_out oc;
  List.iter
    (fun (name, ns) -> Printf.printf "%-28s %12.1f us/op\n" name (ns /. 1e3))
    results;
  List.iter
    (fun (name, v) -> Printf.printf "%-28s %12d\n" name v)
    counters;
  print_endline "wrote BENCH_pairing.json"
