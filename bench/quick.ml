(* Quick, machine-readable perf tracking: times the pairing hot path
   and writes BENCH_pairing.json (ns/op per benchmark) so the perf
   trajectory is comparable across PRs.  Much faster than the full
   bechamel run in main.ml — wired into `make bench-check`. *)

module Params = Sc_pairing.Params
module Tate = Sc_pairing.Tate
module Curve = Sc_ec.Curve
module Nat = Sc_bignum.Nat

let drbg = Sc_hash.Drbg.create ~seed:"bench-quick"
let bs = Sc_hash.Drbg.bytes_source drbg

let time_ns ?(iters = 100) f =
  for _ = 1 to 3 do
    ignore (f ())
  done;
  let t0 = Unix.gettimeofday () in
  for _ = 1 to iters do
    ignore (f ())
  done;
  let t1 = Unix.gettimeofday () in
  (t1 -. t0) *. 1e9 /. float_of_int iters

(* The committed BENCH_pairing.json, read before this run overwrites
   it, so the report below can show each row's delta against the
   baseline (`make bench-check` surfaces regressions that way). *)
let baseline =
  match open_in "BENCH_pairing.json" with
  | exception Sys_error _ -> []
  | ic ->
    let content =
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    List.filter_map
      (fun line ->
        match String.index_opt line '"' with
        | None -> None
        | Some i -> (
          match String.index_from_opt line (i + 1) '"' with
          | None -> None
          | Some j ->
            let key = String.sub line (i + 1) (j - i - 1) in
            let buf = Buffer.create 16 in
            String.iter
              (fun c ->
                match c with
                | '0' .. '9' | '.' | '-' -> Buffer.add_char buf c
                | _ -> ())
              (String.sub line (j + 1) (String.length line - j - 1));
            Option.map
              (fun v -> key, v)
              (float_of_string_opt (Buffer.contents buf))))
      (String.split_on_char '\n' content)

let vs_baseline name ns =
  match List.assoc_opt name baseline with
  | Some old when old > 0. && ns > 0. ->
    Printf.sprintf "  (baseline %10.1f us, x%.2f)" (old /. 1e3) (old /. ns)
  | _ -> ""

let () =
  let prm = Lazy.force Params.toy in
  let prm_small = Lazy.force Params.small in
  let g = prm.Params.g and gs = prm_small.Params.g in
  let scalar_small = Params.random_scalar prm_small ~bytes_source:bs in
  let var_point =
    Curve.mul prm_small.Params.curve
      (Params.random_scalar prm_small ~bytes_source:bs)
      gs
  in
  let pc_small = Tate.precomp_for prm_small gs in
  let pairs8 =
    List.init 8 (fun _ ->
        let a = Params.random_scalar prm_small ~bytes_source:bs in
        let b = Params.random_scalar prm_small ~bytes_source:bs in
        ( Curve.mul prm_small.Params.curve a gs,
          Curve.mul prm_small.Params.curve b gs ))
  in
  let results =
    [
      "pairing(toy)", time_ns ~iters:200 (fun () -> Tate.pairing prm g g);
      ( "pairing(small)",
        time_ns ~iters:100 (fun () -> Tate.pairing prm_small gs gs) );
      ( "pairing_precomp(small)",
        time_ns ~iters:100 (fun () ->
            Tate.pairing_precomp prm_small var_point pc_small) );
      ( "multi_pairing(k=8)",
        time_ns ~iters:30 (fun () -> Tate.multi_pairing prm_small pairs8) );
      ( "point_mul",
        time_ns ~iters:200 (fun () ->
            Curve.mul prm_small.Params.curve scalar_small gs) );
      ( "point_mul_wnaf",
        time_ns ~iters:200 (fun () ->
            Curve.mul prm_small.Params.curve scalar_small var_point) );
    ]
  in
  (* The designated-verifier auditing hot path: pairings per Ibs.verify
     (the seed needed 2; the multi-pairing rewrite needs 1). *)
  let sio = Sc_ibc.Setup.create prm ~bytes_source:bs in
  let pub = Sc_ibc.Setup.public sio in
  let alice = Sc_ibc.Setup.extract sio "alice" in
  let s = Sc_ibc.Ibs.sign pub alice ~bytes_source:bs "bench" in
  let batch8 =
    List.init 8 (fun i ->
        let m = Printf.sprintf "bench-%d" i in
        "alice", m, Sc_ibc.Ibs.sign pub alice ~bytes_source:bs m)
  in
  let results =
    results
    @ [
        ( "ibs_verify(toy)",
          time_ns ~iters:50 (fun () ->
              Sc_ibc.Ibs.verify pub ~signer:"alice" ~msg:"bench" s) );
        ( "ibs_verify_batch(t=8,toy)",
          time_ns ~iters:20 (fun () -> Sc_ibc.Ibs.verify_batch pub batch8) );
      ]
  in
  (* Telemetry overhead: the metric fast paths (ns/op, measured over
     an inner loop because a single op is below timer resolution) and
     what a null-sink trace adds to a full enveloped RPC round trip. *)
  let module Telemetry = Sc_telemetry.Telemetry in
  let module Labels = Sc_telemetry.Labels in
  let c_bench = Telemetry.counter "bench.telemetry.incr" in
  let h_bench =
    Telemetry.histogram ~buckets:(Telemetry.log_buckets ())
      "bench.telemetry.observe"
  in
  let v_bench = Labels.counter_vec ~label:"kind" "bench.telemetry.labeled" in
  let inner = 1000 in
  let per_op ns = ns /. float_of_int inner in
  let sys_rpc =
    Seccloud.System.create ~params:Sc_pairing.Params.toy ~seed:"bench-rpc"
      ~cs_ids:[ "cs" ] ~da_id:"da" ()
  in
  let cloud_rpc = Seccloud.Cloud.create sys_rpc ~id:"cs" () in
  let server_rpc = Seccloud.Endpoint.Server.create sys_rpc cloud_rpc in
  let transport_rpc =
    Seccloud.Transport.create ~peer:"cs"
      ~public:(Seccloud.System.public sys_rpc)
      ~handler:(Seccloud.Endpoint.Server.handle server_rpc)
      ()
  in
  let rpc () =
    match
      Seccloud.Transport.call transport_rpc ~expect:"storage_response"
        (Seccloud.Wire.Storage_challenge { file = "none"; indices = [ 0 ] })
    with
    | Ok _ -> ()
    | Error _ -> assert false
  in
  Telemetry.set_sink None;
  let rpc_plain_ns = time_ns ~iters:200 rpc in
  Telemetry.set_sink (Some ignore);
  let rpc_traced_ns = time_ns ~iters:200 rpc in
  Telemetry.set_sink None;
  let results =
    results
    @ [
        ( "telemetry_incr",
          per_op
            (time_ns ~iters:100 (fun () ->
                 for _ = 1 to inner do
                   Telemetry.incr c_bench
                 done)) );
        ( "telemetry_incr_labeled",
          per_op
            (time_ns ~iters:100 (fun () ->
                 for _ = 1 to inner do
                   Labels.incr v_bench "upload"
                 done)) );
        ( "telemetry_observe_hdr",
          per_op
            (time_ns ~iters:100 (fun () ->
                 for i = 1 to inner do
                   Telemetry.observe h_bench (float_of_int i)
                 done)) );
        "rpc_roundtrip", rpc_plain_ns;
        "rpc_roundtrip_traced", rpc_traced_ns;
      ]
  in
  Tate.reset_pairing_count ();
  assert (Sc_ibc.Ibs.verify pub ~signer:"alice" ~msg:"bench" s);
  let ibs_verify_pairings = Tate.pairings_performed () in
  let h0 = Telemetry.counter_value "hash.sha256.digests" in
  assert (Sc_ibc.Ibs.verify pub ~signer:"alice" ~msg:"bench" s);
  let ibs_verify_sha256 = Telemetry.counter_value "hash.sha256.digests" - h0 in
  Tate.reset_pairing_count ();
  assert (Sc_ibc.Ibs.verify_batch pub batch8);
  let ibs_verify_batch8_pairings = Tate.pairings_performed () in
  let counters =
    [
      "ibs_verify_pairings", ibs_verify_pairings;
      "ibs_verify_sha256_digests", ibs_verify_sha256;
      "ibs_verify_batch8_pairings", ibs_verify_batch8_pairings;
    ]
  in
  let json =
    Printf.sprintf "{\n%s,\n%s\n}\n"
      (String.concat ",\n"
         (List.map
            (fun (name, ns) -> Printf.sprintf "  %S: %.0f" name ns)
            results))
      (String.concat ",\n"
         (List.map
            (fun (name, v) -> Printf.sprintf "  %S: %d" name v)
            counters))
  in
  let oc = open_out "BENCH_pairing.json" in
  output_string oc json;
  close_out oc;
  List.iter
    (fun (name, ns) ->
      Printf.printf "%-28s %12.1f us/op%s\n" name (ns /. 1e3)
        (vs_baseline name ns))
    results;
  List.iter
    (fun (name, v) ->
      let old =
        match List.assoc_opt name baseline with
        | Some o when int_of_float o <> v ->
          Printf.sprintf "  (baseline %d)" (int_of_float o)
        | _ -> ""
      in
      Printf.printf "%-28s %12d%s\n" name v old)
    counters;
  print_endline "wrote BENCH_pairing.json"

(* --- Domain-pool fan-out: 1 domain vs N ------------------------------

   Times the three rewired hot paths at both domain counts and — the
   part `make bench-check` actually gates on — verifies the results
   are value-identical, so parallelism can never change a root, a
   verdict or a Monte-Carlo outcome. *)

module Merkle = Sc_merkle.Tree
module Mc = Sc_sim.Montecarlo
module Protocol = Sc_audit.Protocol
module Batch = Sc_audit.Batch
module Executor = Sc_compute.Executor
module Task = Sc_compute.Task

let bench_domains =
  match Sys.getenv_opt "SECCLOUD_BENCH_DOMAINS" with
  | Some s -> (
    match int_of_string_opt s with Some n -> max 2 n | None -> 4)
  | None -> 4

let with_domains d f =
  let saved = Sc_parallel.domain_count () in
  Sc_parallel.set_domain_count d;
  Fun.protect ~finally:(fun () -> Sc_parallel.set_domain_count saved) f

(* Counter-ledger delta of one run of [f]: every counter the workload
   moved, by how much.  Identical at 1 and N domains iff the fan-out
   neither loses nor duplicates work. *)
let counter_deltas f =
  let module Telemetry = Sc_telemetry.Telemetry in
  let counters () =
    List.filter_map
      (function n, Telemetry.Counter v -> Some (n, v) | _ -> None)
      (Telemetry.snapshot ())
  in
  let before = counters () in
  ignore (f ());
  List.filter_map
    (fun (n, v) ->
      let v0 = Option.value ~default:0 (List.assoc_opt n before) in
      if v <> v0 then Some (n, v - v0) else None)
    (counters ())

let () =
  let system =
    Seccloud.System.create ~params:Sc_pairing.Params.toy ~seed:"bench-parallel"
      ~cs_ids:[ "cs-1" ] ~da_id:"da" ()
  in
  let pub = Seccloud.System.public system in
  let da_key = Seccloud.System.da_key system in
  let cs_key = Seccloud.System.cs_key system "cs-1" in
  let alice = Seccloud.System.register_user system "alice" in
  let bs = Seccloud.System.bytes_source system in
  (* Merkle workload. *)
  let payloads = List.init 16_384 (fun i -> "leaf-" ^ string_of_int i) in
  let merkle () = Merkle.root (Merkle.build payloads) in
  (* Batched-audit workload: 4 jobs x 8 samples over honest executions. *)
  let warrant =
    Sc_ibc.Warrant.issue pub alice ~bytes_source:bs ~delegatee:"da" ~now:0.0
      ~lifetime:1e9 ~scope:"bench"
  in
  let make_job tag =
    let blocks =
      List.init 20 (fun i -> Sc_storage.Block.encode_ints [ i; i * 2; i * 3 ])
    in
    let server =
      Sc_storage.Server.create Sc_storage.Server.Honest
        ~drbg:(Sc_hash.Drbg.create ~seed:("bench-server:" ^ tag))
    in
    Sc_storage.Server.store server
      (Sc_storage.Signer.sign_file pub alice ~bytes_source:bs ~cs_id:"cs-1"
         ~da_id:"da" ~file:"data" blocks);
    let drbg = Sc_hash.Drbg.create ~seed:("bench-exec:" ^ tag) in
    let service =
      List.init 16 (fun i -> { Task.func = Task.Sum; position = i mod 20 })
    in
    let execution =
      Executor.run pub ~cs_key ~server ~behaviour:Executor.Honest ~drbg
        ~owner:"alice" ~file:"data" service
    in
    let commitment = Protocol.commitment_of_execution execution in
    let challenge =
      Protocol.make_challenge
        ~drbg:(Sc_hash.Drbg.create ~seed:("bench-chal:" ^ tag))
        ~n_tasks:commitment.Protocol.n_tasks ~samples:8 ~warrant
    in
    let responses =
      Option.get (Protocol.respond pub ~now:1.0 execution challenge)
    in
    { Batch.owner = "alice"; commitment; challenge; responses }
  in
  let jobs = List.map make_job [ "a"; "b"; "c"; "d" ] in
  let batch () = Batch.verify_jobs pub ~verifier_key:da_key ~role:`Da jobs in
  (* Monte-Carlo workload; fresh same-seed DRBG per run so both domain
     counts consume an identical trial stream. *)
  let mc () =
    Mc.combined_experiment
      ~drbg:(Sc_hash.Drbg.create ~seed:"bench-mc")
      ~csc:0.5 ~ssc:0.5 ~range:2.0 ~sig_forge:0.0 ~t:6 ~trials:10_000
  in
  let measure d =
    with_domains d (fun () ->
        let t_merkle = time_ns ~iters:5 merkle in
        let t_batch = time_ns ~iters:5 batch in
        let t_mc = time_ns ~iters:3 mc in
        let ledger = counter_deltas (fun () -> ignore (merkle ()); batch ()) in
        ( t_merkle, t_batch, t_mc, merkle (), batch (), (mc ()).Mc.survived,
          ledger ))
  in
  let m1, b1, c1, root1, verdict1, surv1, ledger1 = measure 1 in
  let mn, bn, cn, rootn, verdictn, survn, ledgern = measure bench_domains in
  let identity_ok =
    String.equal root1 rootn && verdict1 = verdictn && surv1 = survn
    && ledger1 = ledgern
  in
  let entries =
    [
      "merkle_build_16384", m1, mn;
      "audit_batch_4x8", b1, bn;
      "montecarlo_10k", c1, cn;
    ]
  in
  let json =
    Printf.sprintf "{\n  \"domains\": %d,\n%s,\n  \"identity_ok\": %b\n}\n"
      bench_domains
      (String.concat ",\n"
         (List.map
            (fun (name, t1, tn) ->
              Printf.sprintf
                "  \"%s_1d_ns\": %.0f,\n  \"%s_%dd_ns\": %.0f,\n  \
                 \"%s_speedup\": %.2f"
                name t1 name bench_domains tn name (t1 /. tn))
            entries))
      identity_ok
  in
  let oc = open_out "BENCH_parallel.json" in
  output_string oc json;
  close_out oc;
  List.iter
    (fun (name, t1, tn) ->
      Printf.printf "%-28s 1d %10.1f us  %dd %10.1f us  (x%.2f)\n" name
        (t1 /. 1e3) bench_domains (tn /. 1e3) (t1 /. tn))
    entries;
  Printf.printf "value identity at %d domains: %s\n" bench_domains
    (if identity_ok then "ok" else "MISMATCH");
  if ledger1 <> ledgern then
    List.iter
      (fun (n, d) ->
        let d' = Option.value ~default:0 (List.assoc_opt n ledgern) in
        if d <> d' then
          Printf.printf "  counter %-32s 1d %+d  %dd %+d\n" n d bench_domains d')
      ledger1;
  print_endline "wrote BENCH_parallel.json";
  if not identity_ok then exit 1
