(* Quick, machine-readable perf tracking: times the pairing hot path
   and writes BENCH_pairing.json (ns/op per benchmark) so the perf
   trajectory is comparable across PRs.  Much faster than the full
   bechamel run in main.ml — wired into `make bench-check`. *)

module Params = Sc_pairing.Params
module Tate = Sc_pairing.Tate
module Curve = Sc_ec.Curve
module Nat = Sc_bignum.Nat

let drbg = Sc_hash.Drbg.create ~seed:"bench-quick"
let bs = Sc_hash.Drbg.bytes_source drbg

let time_ns ?(iters = 100) f =
  for _ = 1 to 3 do
    ignore (f ())
  done;
  let t0 = Unix.gettimeofday () in
  for _ = 1 to iters do
    ignore (f ())
  done;
  let t1 = Unix.gettimeofday () in
  (t1 -. t0) *. 1e9 /. float_of_int iters

let () =
  let prm = Lazy.force Params.toy in
  let prm_small = Lazy.force Params.small in
  let g = prm.Params.g and gs = prm_small.Params.g in
  let scalar_small = Params.random_scalar prm_small ~bytes_source:bs in
  let pairs8 =
    List.init 8 (fun _ ->
        let a = Params.random_scalar prm_small ~bytes_source:bs in
        let b = Params.random_scalar prm_small ~bytes_source:bs in
        ( Curve.mul prm_small.Params.curve a gs,
          Curve.mul prm_small.Params.curve b gs ))
  in
  let results =
    [
      "pairing(toy)", time_ns ~iters:200 (fun () -> Tate.pairing prm g g);
      ( "pairing(small)",
        time_ns ~iters:100 (fun () -> Tate.pairing prm_small gs gs) );
      ( "multi_pairing(k=8)",
        time_ns ~iters:30 (fun () -> Tate.multi_pairing prm_small pairs8) );
      ( "point_mul",
        time_ns ~iters:200 (fun () ->
            Curve.mul prm_small.Params.curve scalar_small gs) );
    ]
  in
  (* The designated-verifier auditing hot path: pairings per Ibs.verify
     (the seed needed 2; the multi-pairing rewrite needs 1). *)
  let sio = Sc_ibc.Setup.create prm ~bytes_source:bs in
  let pub = Sc_ibc.Setup.public sio in
  let alice = Sc_ibc.Setup.extract sio "alice" in
  let s = Sc_ibc.Ibs.sign pub alice ~bytes_source:bs "bench" in
  Tate.reset_pairing_count ();
  assert (Sc_ibc.Ibs.verify pub ~signer:"alice" ~msg:"bench" s);
  let ibs_verify_pairings = Tate.pairings_performed () in
  let json =
    Printf.sprintf "{\n%s,\n  \"ibs_verify_pairings\": %d\n}\n"
      (String.concat ",\n"
         (List.map
            (fun (name, ns) -> Printf.sprintf "  %S: %.0f" name ns)
            results))
      ibs_verify_pairings
  in
  let oc = open_out "BENCH_pairing.json" in
  output_string oc json;
  close_out oc;
  List.iter
    (fun (name, ns) -> Printf.printf "%-24s %12.1f us/op\n" name (ns /. 1e3))
    results;
  Printf.printf "%-24s %12d\n" "ibs_verify_pairings" ibs_verify_pairings;
  print_endline "wrote BENCH_pairing.json"
