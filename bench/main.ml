(* Bechamel micro-benchmarks: one group per paper artifact (Table I,
   Table II, Figure 4, Figure 5, Theorem 3) plus substrate groups.
   The full row-by-row tables are produced by `dune exec bin/repro.exe`;
   this executable measures the primitive and protocol operations those
   tables are built from. *)

open Bechamel
open Toolkit

module Params = Sc_pairing.Params
module Tate = Sc_pairing.Tate
module Curve = Sc_ec.Curve
module Nat = Sc_bignum.Nat

let drbg = Sc_hash.Drbg.create ~seed:"bench"
let bs = Sc_hash.Drbg.bytes_source drbg

(* Parameters: `toy` keeps the protocol-level benches fast; Table I
   primitives also run on `small` for a more realistic field size. *)
let prm = Lazy.force Params.toy
let prm_small = Lazy.force Params.small

let system =
  Seccloud.System.create ~params:Params.toy ~seed:"bench-sys"
    ~cs_ids:[ "cs" ] ~da_id:"da" ()

let pub = Seccloud.System.public system
let da_key = Seccloud.System.da_key system
let alice = Seccloud.System.register_user system "alice"

(* --- Table I primitives ------------------------------------------- *)

let table1_tests =
  let scalar = Params.random_scalar prm ~bytes_source:bs in
  let scalar_small = Params.random_scalar prm_small ~bytes_source:bs in
  let g = prm.Params.g and gs = prm_small.Params.g in
  let msg = String.make 1024 'm' in
  [
    Test.make ~name:"table1/point_mul(toy)"
      (Staged.stage (fun () -> Curve.mul prm.Params.curve scalar g));
    Test.make ~name:"table1/point_mul(small)"
      (Staged.stage (fun () -> Curve.mul prm_small.Params.curve scalar_small gs));
    Test.make ~name:"table1/pairing(toy)"
      (Staged.stage (fun () -> Tate.pairing prm g g));
    Test.make ~name:"table1/pairing(small)"
      (Staged.stage (fun () -> Tate.pairing prm_small gs gs));
    Test.make ~name:"table1/pairing_affine(toy)"
      (Staged.stage (fun () -> Tate.pairing_affine prm g g));
    Test.make ~name:"table1/multi_pairing_8(small)"
      (Staged.stage
         (let pairs8 =
            List.init 8 (fun _ ->
                let a = Params.random_scalar prm_small ~bytes_source:bs in
                let b = Params.random_scalar prm_small ~bytes_source:bs in
                ( Curve.mul prm_small.Params.curve a gs,
                  Curve.mul prm_small.Params.curve b gs ))
          in
          fun () -> Tate.multi_pairing prm_small pairs8));
    Test.make ~name:"table1/hash_to_g1(toy)"
      (Staged.stage (fun () -> Sc_pairing.Hash_g1.hash_to_point prm "bench"));
    Test.make ~name:"table1/sha256_1k"
      (Staged.stage (fun () -> Sc_hash.Sha256.digest msg));
  ]

(* --- Table II signature schemes ------------------------------------ *)

let table2_tests =
  let rsa = Sc_rsa.Rsa.generate ~bytes_source:bs ~bits:1024 in
  let rsa_sig = Sc_rsa.Rsa.sign rsa "msg" in
  let ec_kp = Sc_ecdsa.Ecdsa.generate prm ~bytes_source:bs in
  let ec_sig = Sc_ecdsa.Ecdsa.sign prm ec_kp ~bytes_source:bs "msg" in
  let bls_kp = Sc_bls.Bls.generate prm ~bytes_source:bs in
  let bls_sig = Sc_bls.Bls.sign prm bls_kp "msg" in
  let raw = Sc_ibc.Ibs.sign pub alice ~bytes_source:bs "msg" in
  let dvs = Sc_ibc.Dvs.designate pub raw ~verifier:"da" in
  let batch n =
    List.init n (fun i ->
        let m = Printf.sprintf "batch-%d" i in
        let raw = Sc_ibc.Ibs.sign pub alice ~bytes_source:bs m in
        {
          Sc_ibc.Agg.signer = "alice";
          msg = m;
          dvs = Sc_ibc.Dvs.designate pub raw ~verifier:"da";
        })
  in
  let batch10 = batch 10 and batch50 = batch 50 in
  [
    Test.make ~name:"table2/rsa_verify"
      (Staged.stage (fun () -> Sc_rsa.Rsa.verify rsa.Sc_rsa.Rsa.pub "msg" rsa_sig));
    Test.make ~name:"table2/ecdsa_verify"
      (Staged.stage (fun () ->
           Sc_ecdsa.Ecdsa.verify prm ec_kp.Sc_ecdsa.Ecdsa.q "msg" ec_sig));
    Test.make ~name:"table2/bls_verify"
      (Staged.stage (fun () ->
           Sc_bls.Bls.verify prm bls_kp.Sc_bls.Bls.pk "msg" bls_sig));
    Test.make ~name:"table2/ibs_sign"
      (Staged.stage (fun () -> Sc_ibc.Ibs.sign pub alice ~bytes_source:bs "msg"));
    Test.make ~name:"table2/ibs_verify"
      (Staged.stage (fun () ->
           Sc_ibc.Ibs.verify pub ~signer:"alice" ~msg:"msg" raw));
    Test.make ~name:"table2/ibs_verify_batch_10"
      (Staged.stage
         (let entries =
            List.init 10 (fun i ->
                let m = Printf.sprintf "vb-%d" i in
                "alice", m, Sc_ibc.Ibs.sign pub alice ~bytes_source:bs m)
          in
          fun () -> Sc_ibc.Ibs.verify_batch pub entries));
    Test.make ~name:"table2/dvs_verify"
      (Staged.stage (fun () ->
           Sc_ibc.Dvs.verify pub ~verifier_key:da_key ~signer:"alice" ~msg:"msg"
             dvs));
    Test.make ~name:"table2/batch_verify_10"
      (Staged.stage (fun () ->
           Sc_ibc.Agg.verify_batch pub ~verifier_key:da_key batch10));
    Test.make ~name:"table2/batch_verify_50"
      (Staged.stage (fun () ->
           Sc_ibc.Agg.verify_batch pub ~verifier_key:da_key batch50));
  ]

(* --- Figure 4 sampling math ---------------------------------------- *)

let fig4_tests =
  [
    Test.make ~name:"fig4/required_samples"
      (Staged.stage (fun () ->
           Sc_audit.Sampling.required_samples ~csc:0.5 ~ssc:0.5 ~range:2.0
             ~sig_forge:0.0 ~eps:1e-4 ()));
    Test.make ~name:"fig4/grid_10x10"
      (Staged.stage (fun () ->
           Sc_audit.Sampling.figure4_grid ~eps:1e-4 ~range:2.0 ()));
  ]

(* --- Figure 5 audit protocols --------------------------------------- *)

let fig5_tests =
  let payloads =
    List.init 32 (fun i ->
        Sc_storage.Block.encode_ints (List.init 8 (fun j -> i + j)))
  in
  let cloud = Seccloud.Cloud.create system ~id:"cs" () in
  let user = Seccloud.User.create system ~id:"alice" in
  assert (Seccloud.User.store user cloud ~file:"bench" payloads);
  let da = Seccloud.Agency.create system in
  let service_drbg = Sc_hash.Drbg.create ~seed:"bench-service" in
  let service =
    Sc_compute.Task.random_service ~drbg:service_drbg ~n_positions:32
      ~n_tasks:16
  in
  let execution = Seccloud.Cloud.execute cloud ~owner:"alice" ~file:"bench" service in
  let warrant =
    Seccloud.User.delegate_audit user ~now:0.0 ~lifetime:1e12 ~scope:"bench"
  in
  let wang_keys = Sc_pdp.Bls_auditor.generate_keys prm ~bytes_source:bs in
  let wang_file =
    Sc_pdp.Bls_auditor.tag_file prm wang_keys ~name:"wf"
      (List.init 8 (Printf.sprintf "block-%d"))
  in
  let wang_chal =
    Sc_pdp.Bls_auditor.make_challenge prm ~bytes_source:bs ~n_blocks:8
      ~samples:4
  in
  let wang_proof = Sc_pdp.Bls_auditor.prove prm wang_file wang_chal in
  let pdp_keys = Sc_pdp.Rsa_pdp.generate_keys ~bytes_source:bs ~bits:1024 in
  let pdp_file =
    Sc_pdp.Rsa_pdp.tag_file pdp_keys ~name:"pf"
      (List.init 8 (Printf.sprintf "block-%d"))
  in
  let pdp_chal =
    Sc_pdp.Rsa_pdp.make_challenge ~bytes_source:bs ~n_blocks:8 ~samples:4
  in
  let pdp_proof = Sc_pdp.Rsa_pdp.prove pdp_keys pdp_file pdp_chal in
  [
    Test.make ~name:"fig5/storage_audit_8"
      (Staged.stage (fun () ->
           Seccloud.Agency.audit_storage da cloud ~owner:"alice" ~file:"bench"
             ~samples:8));
    Test.make ~name:"fig5/storage_audit_batched_8"
      (Staged.stage (fun () ->
           Seccloud.Agency.audit_storage_batched da cloud ~owner:"alice"
             ~file:"bench" ~samples:8));
    Test.make ~name:"fig5/computation_audit_8"
      (Staged.stage (fun () ->
           Seccloud.Agency.audit_computation da cloud ~owner:"alice" ~execution
             ~warrant ~now:1.0 ~samples:8));
    Test.make ~name:"fig5/wang_style_verify"
      (Staged.stage (fun () ->
           Sc_pdp.Bls_auditor.verify prm wang_keys ~name:"wf" wang_chal
             wang_proof));
    Test.make ~name:"fig5/rsa_pdp_verify"
      (Staged.stage (fun () ->
           Sc_pdp.Rsa_pdp.verify pdp_keys ~name:"pf" pdp_chal pdp_proof));
  ]

(* --- Theorem 3 ------------------------------------------------------ *)

let optimal_tests =
  let costs =
    {
      Sc_audit.Optimal.a1 = 1.0;
      a2 = 1.0;
      a3 = 1.0;
      c_trans = 1.0;
      c_comp = 5.0;
      c_cheat = 1e6;
    }
  in
  [
    Test.make ~name:"optimal/closed_form"
      (Staged.stage (fun () -> Sc_audit.Optimal.optimal_t costs ~cheat_prob:0.5));
    Test.make ~name:"optimal/exhaustive"
      (Staged.stage (fun () -> Sc_audit.Optimal.argmin_t costs ~cheat_prob:0.5));
  ]

(* --- Substrates ------------------------------------------------------ *)

let substrate_tests =
  let a = Nat.random ~bytes_source:bs ~bits:512 in
  let b = Nat.random ~bytes_source:bs ~bits:512 in
  let m = Nat.random ~bytes_source:bs ~bits:256 in
  let leaves = List.init 256 (Printf.sprintf "leaf-%d") in
  let tree = Sc_merkle.Tree.build leaves in
  let proof = Sc_merkle.Tree.proof tree 100 in
  let root = Sc_merkle.Tree.root tree in
  [
    Test.make ~name:"substrate/nat_mul_512"
      (Staged.stage (fun () -> Nat.mul a b));
    Test.make ~name:"substrate/nat_divmod_1024_512"
      (Staged.stage (fun () -> Nat.divmod (Nat.mul a b) m));
    Test.make ~name:"substrate/merkle_build_256"
      (Staged.stage (fun () -> Sc_merkle.Tree.build leaves));
    Test.make ~name:"substrate/merkle_proof_verify"
      (Staged.stage (fun () ->
           Sc_merkle.Tree.verify_proof ~root ~leaf_payload:"leaf-100" proof));
    Test.make ~name:"substrate/hmac_drbg_32B"
      (Staged.stage (fun () -> Sc_hash.Drbg.generate drbg 32));
  ]

(* --- Extensions ------------------------------------------------------ *)

let extension_tests =
  let data = String.concat "," (List.init 100 (Printf.sprintf "cell-%d")) in
  let rs = Sc_erasure.Reed_solomon.create ~k:6 ~n:14 in
  let shards = Sc_erasure.Reed_solomon.encode_string rs data in
  let survivors = List.filteri (fun i _ -> i >= 8) (List.mapi (fun i s -> i, s) shards) in
  let por_client, por_stored =
    Sc_pdp.Por.encode ~key:"bench-key" ~k:6 ~n:14 ~sentinels:6 data
  in
  let por_drbg = Sc_hash.Drbg.create ~seed:"bench-por" in
  let por_blocks = Array.map (fun b -> Some b) por_stored in
  let ibe_sio = Sc_ibc.Setup.create prm ~bytes_source:bs in
  let ibe_pub = Sc_ibc.Setup.public ibe_sio in
  let ibe_key = Sc_ibc.Setup.extract ibe_sio "bench" in
  let ibe_ct = Sc_ibc.Ibe.encrypt ibe_pub ~to_identity:"bench" ~bytes_source:bs data in
  let dyn_client, dyn_server =
    Sc_storage.Dynamic.init pub alice ~bytes_source:bs ~cs_id:"cs" ~da_id:"da"
      ~file:"bench-dyn"
      (List.init 64 (Printf.sprintf "entry-%d"))
  in
  let counter = ref 0 in
  [
    Test.make ~name:"ext/rs_encode_6of14"
      (Staged.stage (fun () -> Sc_erasure.Reed_solomon.encode_string rs data));
    Test.make ~name:"ext/rs_decode_6of14"
      (Staged.stage (fun () -> Sc_erasure.Reed_solomon.decode_string rs survivors));
    Test.make ~name:"ext/por_sentinel_audit"
      (Staged.stage (fun () ->
           let chal = Sc_pdp.Por.challenge por_client ~drbg:por_drbg ~count:3 in
           Sc_pdp.Por.verify_response por_client
             (List.map (fun pos -> pos, Some por_stored.(pos)) chal)));
    Test.make ~name:"ext/por_extract"
      (Staged.stage (fun () -> Sc_pdp.Por.extract por_client por_blocks));
    Test.make ~name:"ext/ibe_encrypt"
      (Staged.stage (fun () ->
           Sc_ibc.Ibe.encrypt ibe_pub ~to_identity:"bench" ~bytes_source:bs data));
    Test.make ~name:"ext/ibe_decrypt"
      (Staged.stage (fun () -> Sc_ibc.Ibe.decrypt ibe_pub ~key:ibe_key ibe_ct));
    Test.make ~name:"ext/dynamic_update"
      (Staged.stage (fun () ->
           incr counter;
           Sc_storage.Dynamic.update dyn_client dyn_server ~index:(!counter mod 64)
             (Printf.sprintf "v%d" !counter)));
    Test.make ~name:"ext/fixed_base_mul_g"
      (Staged.stage
         (let s = Params.random_scalar prm ~bytes_source:bs in
          fun () -> Params.mul_g prm s));
    Test.make ~name:"ext/jacobi_symbol"
      (Staged.stage
         (let a = Nat.random ~bytes_source:bs ~bits:100 in
          fun () -> Sc_bignum.Modular.jacobi a prm.Params.p));
  ]

let all_tests =
  Test.make_grouped ~name:"seccloud" ~fmt:"%s.%s"
    (table1_tests @ table2_tests @ fig4_tests @ fig5_tests @ optimal_tests
   @ substrate_tests @ extension_tests)

let () =
  let cfg =
    Benchmark.cfg ~limit:200 ~stabilize:false ~quota:(Time.second 0.3) ()
  in
  let raw = Benchmark.all cfg Instance.[ monotonic_clock ] all_tests in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = Hashtbl.fold (fun name r acc -> (name, r) :: acc) results [] in
  let rows = List.sort (fun (a, _) (b, _) -> String.compare a b) rows in
  Printf.printf "%-44s %16s\n" "benchmark" "time/run";
  List.iter
    (fun (name, r) ->
      match Analyze.OLS.estimates r with
      | Some [ ns ] ->
        let pretty =
          if ns > 1e6 then Printf.sprintf "%10.3f ms" (ns /. 1e6)
          else if ns > 1e3 then Printf.sprintf "%10.3f us" (ns /. 1e3)
          else Printf.sprintf "%10.1f ns" ns
        in
        Printf.printf "%-44s %16s\n" name pretty
      | Some _ | None -> Printf.printf "%-44s %16s\n" name "n/a")
    rows;
  print_newline ();
  print_endline "Full paper tables/figures: dune exec bin/repro.exe -- all";
  (* A tiny smoke assertion so `dune exec bench/main.exe` doubles as a
     sanity check in CI. *)
  assert (
    Sc_audit.Sampling.required_samples ~csc:0.5 ~ssc:0.5 ~range:2.0
      ~sig_forge:0.0 ~eps:1e-4 ()
    = Some 33)
