(* Authenticated-dynamics cost check: proves the per-update cost of
   the persistent Merkle tree stays flat (within 2x) as the file grows
   16k -> 1M blocks, i.e. that update/append/proof really are O(log n)
   and not the O(n) rebuild the previous Storage.Dynamic paths paid.
   Writes BENCH_dynamic.json; exits 1 when the flatness gate fails.
   Wired into `make bench-check` via `make dynamic-check`. *)

module Dt = Sc_merkle.Dynamic_tree
module Tree = Sc_merkle.Tree
module Drbg = Sc_hash.Drbg

let sizes = [ 16_384; 131_072; 1_048_576 ]
let small = List.hd sizes
let large = List.nth sizes (List.length sizes - 1)

(* cost(1M) / cost(16k) must stay under this for every O(log n) op.
   The depth ratio is log2(1M)/log2(16k) = 20/14 ~ 1.43, so 2.0 keeps
   honest headroom while any O(n) regression (x64) fails loudly. *)
let flatness_gate = 2.0

(* Best of [batches] timed batches, with a major collection before
   each: the minimum is far less sensitive to scheduler preemption and
   GC pauses than a single long average, and at 1M leaves (hundreds of
   MB live) those pauses otherwise dominate the per-op signal. *)
let time_ns ?(iters = 200) ?(batches = 5) f =
  for _ = 1 to 3 do
    ignore (f ())
  done;
  let best = ref infinity in
  for _ = 1 to batches do
    Gc.major ();
    let t0 = Unix.gettimeofday () in
    for _ = 1 to iters do
      ignore (f ())
    done;
    let t1 = Unix.gettimeofday () in
    let per_op = (t1 -. t0) *. 1e9 /. float_of_int iters in
    if per_op < !best then best := per_op
  done;
  !best

let drbg = Drbg.create ~seed:"bench-dynamic"

let () =
  let results =
    List.map
      (fun n ->
        let t =
          Dt.of_leaf_hashes
            (List.init n (fun i -> Dt.leaf_hash (Printf.sprintf "blk-%d" i)))
        in
        let indices = Array.init 256 (fun _ -> Drbg.uniform_int drbg n) in
        let pos = ref 0 in
        let next_index () =
          let i = indices.(!pos land 255) in
          incr pos;
          i
        in
        let fresh_leaf = Dt.leaf_hash "fresh" in
        let modify_ns =
          time_ns (fun () -> Dt.modify t (next_index ()) fresh_leaf)
        in
        let append_ns = time_ns (fun () -> Dt.append t fresh_leaf) in
        let proof_verify_ns =
          time_ns (fun () ->
              let i = next_index () in
              let p = Dt.proof t i in
              assert (Dt.verify ~root:(Dt.root t) ~leaf_hash:(Dt.leaf t i) p))
        in
        (* The O(n) cost an update used to pay: rebuild from every
           leaf hash.  Only timed at the small sizes — that it is
           unaffordable at 1M is the point. *)
        let rebuild_ns =
          if n > small * 8 then None
          else
            let hashes = Dt.leaf_hashes t in
            Some (time_ns ~iters:5 (fun () -> Tree.build_of_hashes hashes))
        in
        (n, modify_ns, append_ns, proof_verify_ns, rebuild_ns))
      sizes
  in
  let find n =
    List.find (fun (n', _, _, _, _) -> n' = n) results
  in
  let _, m_s, a_s, p_s, _ = find small in
  let _, m_l, a_l, p_l, _ = find large in
  let ratios =
    [ "modify", m_l /. m_s; "append", a_l /. a_s; "proof_verify", p_l /. p_s ]
  in
  let pass = List.for_all (fun (_, r) -> r <= flatness_gate) ratios in
  let json =
    Printf.sprintf "{\n%s,\n%s,\n  \"flatness_gate\": %.2f,\n  \"pass\": %b\n}\n"
      (String.concat ",\n"
         (List.map
            (fun (n, m, a, p, rb) ->
              Printf.sprintf
                "  \"modify_ns_%d\": %.0f,\n  \"append_ns_%d\": %.0f,\n  \
                 \"proof_verify_ns_%d\": %.0f%s"
                n m n a n p
                (match rb with
                | None -> ""
                | Some r -> Printf.sprintf ",\n  \"rebuild_ns_%d\": %.0f" n r))
            results))
      (String.concat ",\n"
         (List.map
            (fun (op, r) -> Printf.sprintf "  \"%s_ratio_1M_over_16k\": %.2f" op r)
            ratios))
      flatness_gate pass
  in
  let oc = open_out "BENCH_dynamic.json" in
  output_string oc json;
  close_out oc;
  List.iter
    (fun (n, m, a, p, rb) ->
      Printf.printf
        "n=%-9d modify %8.1f ns  append %8.1f ns  proof+verify %8.1f ns%s\n" n
        m a p
        (match rb with
        | None -> ""
        | Some r -> Printf.sprintf "  (full rebuild %10.0f ns)" r))
    results;
  List.iter
    (fun (op, r) ->
      Printf.printf "%-12s cost(1M)/cost(16k) = x%.2f (gate x%.2f)\n" op r
        flatness_gate)
    ratios;
  print_endline "wrote BENCH_dynamic.json";
  if not pass then begin
    prerr_endline "dynamic update cost is not flat: O(log n) regression";
    exit 1
  end
