(* Dynamic authenticated storage (the extension over the paper's
   static Protocol II; cf. its refs [5], [15]).

     dune exec examples/dynamic_storage.exe

   The owner keeps only a Merkle root; update/append/delete all verify
   the server's pre-state and move the root in lock-step.  Audits by
   the DA work against an owner-signed root statement. *)

module D = Sc_storage.Dynamic

let show_root label root =
  Printf.printf "%-34s root=%s...\n" label
    (String.sub (Sc_hash.Sha256.hex_of_digest root) 0 16)

let () =
  let prm = Lazy.force Sc_pairing.Params.toy in
  let drbg = Sc_hash.Drbg.create ~seed:"dynamic-example" in
  let bs = Sc_hash.Drbg.bytes_source drbg in
  let sio = Sc_ibc.Setup.create prm ~bytes_source:bs in
  let pub = Sc_ibc.Setup.public sio in
  let alice = Sc_ibc.Setup.extract sio "alice" in
  let da = Sc_ibc.Setup.extract sio "da" in

  let entries = List.init 8 (Printf.sprintf "invoice-%04d") in
  let client, server =
    D.init pub alice ~bytes_source:bs ~cs_id:"cs" ~da_id:"da" ~file:"invoices"
      entries
  in
  show_root "initial (8 invoices)" (D.root client);

  (* Amend an invoice: the client verifies the server's pre-state
     proof and derives the new root in O(log n) hashes. *)
  let ok = function Ok _ -> true | Error _ -> false in
  assert (ok (D.update client server ~index:2 "invoice-0002-rev2"));
  show_root "after update of #2" (D.root client);

  (* Month end: a batch of appends is one root transition — the owner
     signs a single root statement for the lot. *)
  assert (
    ok
      (D.batch client server
         [
           D.Append { payload = "invoice-0008" };
           D.Append { payload = "invoice-0009" };
         ]));
  show_root "after appending two" (D.root client);
  Printf.printf "%-34s count=%d (client keeps an O(log n) frontier)\n" ""
    (D.count client);

  (* Legal hold expires: delete (tombstone) an old invoice.  Deletion
     is a typed leaf state, so no payload bytes can fake it. *)
  assert (ok (D.delete client server ~index:0));
  let rp = Option.get (D.read server 0) in
  Printf.printf "%-34s deleted=%b, still authenticated=%b\n"
    "after delete of #0" (D.is_deleted rp)
    (D.verify_read client ~index:0 rp);

  (* A stale proof (captured before the update) no longer verifies —
     rollback/replay protection. *)
  let stale = Option.get (D.read server 2) in
  assert (ok (D.update client server ~index:2 "invoice-0002-rev3"));
  Printf.printf "%-34s stale proof accepted=%b\n" "replay protection"
    (D.verify_read client ~index:2 stale);

  (* The DA audits offline against a signed root statement. *)
  let stmt = D.publish_root client ~bytes_source:bs in
  let report =
    D.audit pub ~verifier_key:da ~owner:"alice" ~file:"invoices"
      ~root_statement:stmt server
      ~drbg:(Sc_hash.Drbg.create ~seed:"da")
      ~samples:10
  in
  Printf.printf "DA audit: %d/%d sampled blocks valid, intact=%b\n"
    report.D.valid report.D.sampled report.D.intact;

  (* Server drift after the statement is caught. *)
  assert (ok (D.update client server ~index:1 "sneaky-edit"));
  let report2 =
    D.audit pub ~verifier_key:da ~owner:"alice" ~file:"invoices"
      ~root_statement:stmt server
      ~drbg:(Sc_hash.Drbg.create ~seed:"da2")
      ~samples:10
  in
  Printf.printf "DA audit against stale statement: intact=%b (drift detected)\n"
    report2.D.intact;

  (* A lazy server that stops maintaining its tree is caught at the
     very mutation that diverged, not on the next read. *)
  D.make_lazy server;
  (match D.update client server ~index:3 "never-lands" with
  | Error (D.Diverged _) ->
    Printf.printf "lazy server: divergence caught at update time\n"
  | Ok () | Error _ -> assert false)
