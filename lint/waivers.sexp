; sc_lint waiver baseline.
;
; Each entry suppresses findings matching (rule, file, key) — the key is
; printed by sc_lint as "[key ...]" and is line-number free, so the
; baseline survives unrelated edits.  Every entry MUST carry a
; justification a reviewer can audit; `sc_lint --stale-waivers` fails
; when an entry no longer matches anything, so this file can only shrink.

((rule domain-capture)
 (file lib/service/service.ml)
 (key drain:t)
 (justification
  "The drain-round task captures the service record, but each pool task \
   only touches its own shard's slice (sh.queue / sh.out / per-shard \
   DRBGs) and the cross-shard fields (depth, telemetry) are written \
   between rounds on the submitting domain, after the pool barrier — \
   the documented shard-ownership discipline from PR 8."))

((rule domain-safety)
 (file lib/parallel/sc_parallel.ml)
 (key configured)
 (justification
  "Domain-count override; documented as read/written from the main domain \
   only (workers never reconfigure the pool)."))

((rule domain-safety)
 (file lib/parallel/sc_parallel.ml)
 (key pool)
 (justification
  "The work queue and spawn counter are only touched with pool.m held; \
   this mutex-plus-condition record *is* the documented guard."))

((rule domain-safety)
 (file lib/telemetry/registry.ml)
 (key table)
 (justification
  "Metric interning table; every read and write goes through the \
   registry-wide `lock` mutex (PR 4 made incr/add/observe lock-guarded)."))

((rule signing-encode)
 (file lib/hash/drbg.ml)
 (key update:Hmac.mac_concat)
 (justification
  "HMAC_DRBG update per NIST SP 800-90A 10.1.2.2: V is a fixed 32-byte \
   block and the 0x00/0x01 separator byte is part of the standard; \
   re-framing would diverge from the spec vectors."))

((rule signing-encode)
 (file lib/merkle/tree.ml)
 (key node_hash:Sha256.digest_concat)
 (justification
  "Both children of an interior node are fixed-length 32-byte digests, so \
   prefix + fixed-width concatenation is already injective; this is the \
   Merkle hot path and framing would only add bytes."))

((rule determinism)
 (file lib/telemetry/clock.ml)
 (key epoch:Unix.gettimeofday)
 (justification
  "The telemetry clock is the one sanctioned wall-time source: spans \
   measure real latency, never protocol decisions.  Unix.gettimeofday is \
   the only wall clock available without extra dependencies."))

((rule determinism)
 (file lib/telemetry/clock.ml)
 (key now_ns:Unix.gettimeofday)
 (justification
  "Same as epoch: the monotone-clamped telemetry clock must read real \
   time; simulation code uses Event_queue/Transport clocks instead."))

((rule determinism)
 (file lib/sim/engine.ml)
 (key t0:Sys.time)
 (justification
  "Measures the auditor's real recompute CPU seconds for the C_comp cost \
   report (Table II); it feeds measurement output only, never verdicts, \
   sampling, or any replayed decision."))

((rule determinism)
 (file lib/sim/engine.ml)
 (key recompute_seconds:Sys.time)
 (justification
  "Second endpoint of the same CPU-cost measurement as t0:Sys.time; \
   reported, never branched on."))

((rule signing-encode)
 (file test/test_hash.ml)
 (key unit_tests:Sha256.digest_hex)
 (justification
  "The test asserts digest_concat agrees with the digest of the raw \
   concatenation — the unframed concat is the property under test."))

((rule exception-swallow)
 (file test/test_wire_fuzz.ml)
 (key suite)
 (justification
  "qcheck properties assert that Wire.decode never raises an untyped \
   exception: the catch-all converts any stray exception into a property \
   *failure* (returns false), the opposite of swallowing it."))
