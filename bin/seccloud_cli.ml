(* A small operational CLI around the SecCloud library: run an
   end-to-end demo, audit a simulated deployment, or size a sample
   set. *)

open Cmdliner

let setup_logging verbose =
  Logs.set_reporter (Logs_fmt.reporter ());
  Logs.set_level (if verbose then Some Logs.Info else Some Logs.Warning)

let preset_of = function
  | "toy" -> Sc_pairing.Params.toy
  | "small" -> Sc_pairing.Params.small
  | "mid" -> Sc_pairing.Params.mid
  | s -> invalid_arg (Printf.sprintf "unknown preset %S" s)

module Telemetry = Sc_telemetry.Telemetry
module Tate = Sc_pairing.Tate

let demo verbose preset seed =
  setup_logging verbose;
  let system =
    Seccloud.System.create ~params:(preset_of preset) ~seed
      ~cs_ids:[ "cs-1" ] ~da_id:"da" ()
  in
  let user = Seccloud.User.create system ~id:"alice" in
  let cloud = Seccloud.Cloud.create system ~id:"cs-1" () in
  let da = Seccloud.Agency.create system in
  let drbg = Sc_hash.Drbg.create ~seed:("demo-data:" ^ seed) in
  Printf.printf "System initialised (params=%s); user=alice cs=cs-1 da=da\n"
    preset;
  let payloads =
    List.init 32 (fun i ->
        Sc_storage.Block.encode_ints
          (List.init 8 (fun j -> i + j + Sc_hash.Drbg.uniform_int drbg 50)))
  in
  let accepted = Seccloud.User.store user cloud ~file:"ledger" payloads in
  Printf.printf "Protocol II: uploaded 32 signed blocks, accepted=%b\n" accepted;
  let report =
    Seccloud.Agency.audit_storage da cloud ~owner:"alice" ~file:"ledger"
      ~samples:12
  in
  Printf.printf "Storage audit: %d/%d sampled blocks verified, intact=%b\n"
    report.Seccloud.Agency.valid_blocks report.Seccloud.Agency.sampled
    report.Seccloud.Agency.intact;
  let service =
    Sc_compute.Task.random_service ~drbg ~n_positions:32 ~n_tasks:16
  in
  let execution =
    Seccloud.Cloud.execute cloud ~owner:"alice" ~file:"ledger" service
  in
  Printf.printf "Protocol III: executed %d sub-tasks, commitment root=%s...\n"
    16
    (String.sub (Sc_hash.Sha256.hex_of_digest
                   (Sc_compute.Executor.root execution)) 0 16);
  let warrant =
    Seccloud.User.delegate_audit user ~now:0.0 ~lifetime:3600.0
      ~scope:"audit ledger computation"
  in
  let verdict =
    Seccloud.Agency.audit_computation da cloud ~owner:"alice" ~execution
      ~warrant ~now:10.0 ~samples:8
  in
  Printf.printf "Computation audit (Algorithm 1): valid=%b\n"
    verdict.Sc_audit.Protocol.valid

let samplesize csc ssc range eps =
  let range = if range <= 0.0 then infinity else range in
  match
    Sc_audit.Sampling.required_samples ~csc ~ssc ~range ~sig_forge:1e-9 ~eps ()
  with
  | Some t ->
    Printf.printf
      "required samples: t = %d   (CSC=%.2f SSC=%.2f |R|=%s eps=%g)\n" t csc
      ssc
      (if range = infinity then "inf" else string_of_float range)
      eps
  | None -> print_endline "no finite sample size reaches the target epsilon"

let simulate epochs servers byzantine users drop tamper seed trace =
  let config =
    {
      Sc_sim.Engine.default_config with
      Sc_sim.Engine.seed;
      epochs;
      n_servers = servers;
      byzantine_bound = byzantine;
      n_users = users;
      faults = Seccloud.Transport.lossy ~drop ~tamper ();
    }
  in
  let run () = Sc_sim.Engine.run config in
  let stats =
    match trace with
    | Some path -> Telemetry.with_trace_file path run
    | None -> run ()
  in
  Printf.printf
    "simulated %d epochs, %d audits: detected=%d undetected=%d \
     false_alarms=%d honest_passed=%d\n"
    epochs
    (List.length stats.Sc_sim.Engine.outcomes)
    stats.Sc_sim.Engine.detected stats.Sc_sim.Engine.undetected
    stats.Sc_sim.Engine.false_alarms stats.Sc_sim.Engine.honest_passed;
  Printf.printf "detection rate: %.2f; %d bytes over the network\n"
    (Sc_sim.Engine.detection_rate stats)
    stats.Sc_sim.Engine.total_bytes;
  if drop > 0.0 || tamper > 0.0 then
    Printf.printf
      "channel (drop=%.2f tamper=%.2f): %d rounds blamed on timeouts, %d on \
       in-flight tampering\n"
      drop tamper stats.Sc_sim.Engine.channel_timeouts
      stats.Sc_sim.Engine.channel_tampering;
  match trace with
  | Some path -> Printf.printf "span trace (JSONL) written to %s\n" path
  | None -> ()

(* `simulate --service`: the sharded multi-tenant soak campaign.
   Writes BENCH_service.json (--out), gates it on a declarative SLO
   file (--slo, exit 1 on violation) and optionally re-runs the whole
   campaign at a different domain count to prove the results are
   value-identical (--identity-check, exit 1 on digest mismatch). *)
let simulate_service ~identities ~shards ~heavy ~corrupt ~queue_cap ~quantum
    ~lookup_stride ~audit_rounds ~dynamic_ops ~drop ~tamper ~seed ~trace ~out
    ~slo ~identity_check =
  let cfg =
    {
      Sc_sim.Engine.default_service_config with
      Sc_sim.Engine.sv_seed = seed;
      sv_identities = identities;
      sv_heavy = heavy;
      sv_corrupt = corrupt;
      sv_lookup_stride = lookup_stride;
      sv_audit_rounds = audit_rounds;
      sv_dynamic_ops = dynamic_ops;
      sv_service =
        {
          Sc_service.Service.default_config with
          Sc_service.Service.shards;
          queue_capacity = queue_cap;
          drain_quantum = quantum;
          faults = Seccloud.Transport.lossy ~drop ~tamper ();
        };
    }
  in
  let run_once () =
    Telemetry.reset ();
    Sc_sim.Engine.run_service cfg
  in
  let stats =
    match trace with
    | Some path -> Telemetry.with_trace_file path run_once
    | None -> run_once ()
  in
  let open_spans = Telemetry.open_spans () in
  let l = stats.Sc_sim.Engine.sv_ledger in
  Printf.printf
    "service campaign (%d shards, %d domains): %d identities admitted, %d \
     requests processed, %d rejected (backpressure), queue peak %d/%d\n"
    shards
    (Sc_parallel.domain_count ())
    l.Sc_service.Service.admitted l.Sc_service.Service.processed
    l.Sc_service.Service.rejected l.Sc_service.Service.queue_peak queue_cap;
  Printf.printf
    "audits: %d storage + %d compute (%.0f audits/sec sustained); detected=%d \
     missed=%d false_alarms=%d channel_blames=%d\n"
    l.Sc_service.Service.audits l.Sc_service.Service.computes
    stats.Sc_sim.Engine.sv_audits_per_sec stats.Sc_sim.Engine.sv_detected
    stats.Sc_sim.Engine.sv_missed stats.Sc_sim.Engine.sv_false_alarms
    l.Sc_service.Service.channel_blames;
  if l.Sc_service.Service.mutations > 0 then
    Printf.printf
      "dynamics: %d mutation bursts (%d ops applied), %d alarms\n"
      l.Sc_service.Service.mutations l.Sc_service.Service.mutation_ops
      l.Sc_service.Service.mutation_alarms;
  List.iter
    (fun p ->
      Printf.printf "  %-16s count=%-8d p50=%.0fus p99=%.0fus\n"
        p.Sc_sim.Engine.sp_name p.Sc_sim.Engine.sp_count
        p.Sc_sim.Engine.sp_p50_us p.Sc_sim.Engine.sp_p99_us)
    stats.Sc_sim.Engine.sv_protocols;
  Printf.printf "digest: %s (%.1fs elapsed, %d open spans)\n"
    stats.Sc_sim.Engine.sv_digest stats.Sc_sim.Engine.sv_elapsed_s open_spans;
  let identity_failed =
    if not identity_check then false
    else begin
      let saved = Sc_parallel.domain_count () in
      let other = if saved = 1 then 4 else 1 in
      Sc_parallel.set_domain_count other;
      let stats' = run_once () in
      Sc_parallel.set_domain_count saved;
      let agree =
        stats'.Sc_sim.Engine.sv_digest = stats.Sc_sim.Engine.sv_digest
        && stats'.Sc_sim.Engine.sv_ledger = stats.Sc_sim.Engine.sv_ledger
      in
      if agree then
        Printf.printf
          "identity check: digests and ledgers agree at %d and %d domains\n"
          saved other
      else
        Printf.eprintf
          "identity check FAILED: %d domains -> %s, %d domains -> %s\n" saved
          stats.Sc_sim.Engine.sv_digest other stats'.Sc_sim.Engine.sv_digest;
      not agree
    end
  in
  let slos =
    match slo with
    | None -> None
    | Some path ->
      let ic = open_in path in
      let content = really_input_string ic (in_channel_length ic) in
      close_in ic;
      (match Sc_sim.Engine.check_service_slos cfg stats content with
      | Ok slos ->
        List.iter
          (fun (c : Sc_telemetry.Slo.check) ->
            Printf.printf "  slo %-40s actual %12.1f  %s\n" c.expr c.actual
              (if c.pass then "ok" else "FAIL"))
          slos;
        Some slos
      | Error msg ->
        Printf.eprintf "SLO file %s rejected:\n%s\n" path msg;
        exit 2)
  in
  (match out with
  | None -> ()
  | Some path ->
    let oc = open_out path in
    output_string oc (Sc_sim.Engine.service_stats_json ?slos cfg stats);
    output_char oc '\n';
    close_out oc;
    Printf.printf "report written to %s\n" path);
  if open_spans > 0 then begin
    Printf.eprintf "%d spans leaked open\n" open_spans;
    exit 1
  end;
  if identity_failed then exit 1;
  match slos with
  | Some slos when not (Sc_telemetry.Slo.all_pass slos) ->
    prerr_endline "SLO violations detected";
    exit 1
  | _ -> ()

(* `serve`: a line-oriented interactive front end over the sharded
   service — every command is submitted through the real queue /
   backpressure / drain path. *)
let serve preset seed shards queue_cap quantum =
  let module Service = Sc_service.Service in
  let svc =
    Service.create
      ~config:
        {
          Service.default_config with
          Service.shards;
          queue_capacity = queue_cap;
          drain_quantum = quantum;
        }
      ~params:(preset_of preset) ~seed ()
  in
  let response_line = function
    | Service.Admitted { shard } -> Printf.sprintf "admitted shard=%d" shard
    | Service.Info { known; files } ->
      Printf.sprintf "info known=%b files=%d" known files
    | Service.Stored ok -> Printf.sprintf "stored ok=%b" ok
    | Service.Store_failed e ->
      "store failed: " ^ Seccloud.Transport.error_to_string e
    | Service.Audited { report; _ } ->
      Printf.sprintf "audited intact=%b (%d/%d blocks valid)"
        report.Seccloud.Agency.intact report.Seccloud.Agency.valid_blocks
        report.Seccloud.Agency.sampled
    | Service.Computed { verdict; _ } ->
      Printf.sprintf "computed valid=%b (%d failures)"
        verdict.Sc_audit.Protocol.valid
        (List.length verdict.Sc_audit.Protocol.failures)
    | Service.Compute_failed e ->
      "compute failed: " ^ Seccloud.Transport.error_to_string e
    | Service.Corrupted -> "corrupted (injected storage rot)"
    | Service.Mutated { applied; blocks; intact; diverged } ->
      Printf.sprintf "mutated ops=%d blocks=%d intact=%b diverged=%b" applied
        blocks intact diverged
    | Service.Denied Service.Unknown_tenant -> "denied: unknown tenant"
    | Service.Denied Service.Unknown_file -> "denied: unknown file"
    | Service.Denied Service.Empty_upload -> "denied: empty upload"
  in
  let submit tenant request =
    (match Service.submit svc ~tenant request with
    | Ok () -> ()
    | Error e -> Format.printf "%a@." Service.pp_error e);
    List.iter
      (fun (tenant, _, response) ->
        Printf.printf "%s: %s\n" tenant (response_line response))
      (Service.drain svc)
  in
  let payloads_of blocks ints drbg =
    List.init blocks (fun _ ->
        Sc_storage.Block.encode_ints
          (List.init ints (fun _ -> Sc_hash.Drbg.uniform_int drbg 1000)))
  in
  let drbg = Sc_hash.Drbg.create ~seed:("serve-data:" ^ seed) in
  Printf.printf
    "seccloud service on %d shards (params=%s). Commands: admit T | lookup T \
     | store T FILE [BLOCKS [INTS]] | corrupt T FILE | mutate T FILE [OPS] \
     | audit T FILE [SAMPLES] | compute T FILE [TASKS [SAMPLES]] | stats | \
     quit\n"
    shards preset;
  let rec loop () =
    match input_line stdin with
    | exception End_of_file -> ()
    | line -> (
      let words =
        String.split_on_char ' ' (String.trim line)
        |> List.filter (fun w -> w <> "")
      in
      let int_at default = function
        | Some w -> ( match int_of_string_opt w with Some v -> v | None -> default)
        | None -> default
      in
      let arg n = List.nth_opt words n in
      match words with
      | [] -> loop ()
      | "quit" :: _ | "exit" :: _ -> ()
      | "stats" :: _ ->
        let l = Service.ledger svc in
        Printf.printf
          "processed=%d admitted=%d stores=%d audits=%d computes=%d \
           rejected=%d denials=%d queue_peak=%d\ndigest=%s\n"
          l.Service.processed l.Service.admitted l.Service.stores
          l.Service.audits l.Service.computes l.Service.rejected
          l.Service.denials l.Service.queue_peak (Service.digest svc);
        loop ()
      | "admit" :: t :: _ ->
        submit t Service.Admit;
        loop ()
      | "lookup" :: t :: _ ->
        submit t Service.Lookup;
        loop ()
      | "store" :: t :: file :: _ ->
        submit t
          (Service.Store
             {
               file;
               payloads = payloads_of (int_at 4 (arg 3)) (int_at 8 (arg 4)) drbg;
             });
        loop ()
      | "corrupt" :: t :: file :: _ ->
        submit t (Service.Corrupt { file });
        loop ()
      | "mutate" :: t :: file :: _ ->
        submit t (Service.Mutate { file; ops = int_at 6 (arg 3) });
        loop ()
      | "audit" :: t :: file :: _ ->
        submit t (Service.Audit_storage { file; samples = int_at 4 (arg 3) });
        loop ()
      | "compute" :: t :: file :: _ ->
        submit t
          (Service.Compute
             {
               file;
               n_tasks = int_at 4 (arg 3);
               samples = int_at 4 (arg 4);
             });
        loop ()
      | cmd :: _ ->
        Printf.printf "unknown command %S\n" cmd;
        loop ())
  in
  loop ()

(* `trace analyze`: offline reconstruction of the JSONL span trace
   written by `simulate --trace` / `stats --trace`, with an optional
   declarative SLO gate (exit 1 on violation). *)
let trace_analyze file slo out =
  let module A = Sc_telemetry.Trace_analysis in
  let spans, skipped = A.load file in
  let report = A.analyze ~skipped_lines:skipped spans in
  let slos =
    match slo with
    | None -> None
    | Some path ->
      let ic = open_in path in
      let content = really_input_string ic (in_channel_length ic) in
      close_in ic;
      (match A.check_slos report spans content with
      | Ok slos -> Some slos
      | Error msg ->
        Printf.eprintf "SLO file %s rejected:\n%s\n" path msg;
        exit 2)
  in
  A.print_report stdout ?slos report;
  (match out with
  | None -> ()
  | Some path ->
    let oc = open_out path in
    output_string oc (A.report_json ?slos report);
    output_char oc '\n';
    close_out oc;
    Printf.printf "\nreport written to %s\n" path);
  match slos with
  | Some slos when List.exists (fun (s : A.slo) -> not s.A.pass) slos ->
    prerr_endline "SLO violations detected";
    exit 1
  | Some _ | None -> ()

(* The instrumented workload behind `stats`: one pass over Protocols
   I-III plus a batched two-job audit, with every exchange charged
   through the wire codec so the registry ends up holding exactly what
   a deployment of this size costs.  A final round runs the same
   conversation through the fault-injectable transport (rates from
   --drop/--tamper), so the registry also shows the retry/blame
   counters.  Returns the measured pairings-per-operation figures the
   --check invariants gate on, plus a transport-phase summary line. *)
let stats_workload preset seed ~drop ~tamper =
  Telemetry.reset ();
  Telemetry.with_span ~name:"stats.workload" @@ fun () ->
  let system =
    Seccloud.System.create ~params:(preset_of preset) ~seed
      ~cs_ids:[ "cs-1"; "cs-2" ] ~da_id:"da" ()
  in
  let pub = Seccloud.System.public system in
  let da_key = Seccloud.System.da_key system in
  let user = Seccloud.User.create system ~id:"alice" in
  let cloud = Seccloud.Cloud.create system ~id:"cs-1" () in
  let cloud2 = Seccloud.Cloud.create system ~id:"cs-2" () in
  let da = Seccloud.Agency.create system in
  let drbg = Sc_hash.Drbg.create ~seed:("stats-data:" ^ seed) in
  let bs = Sc_hash.Drbg.bytes_source drbg in
  let payloads =
    List.init 16 (fun i ->
        Sc_storage.Block.encode_ints
          (List.init 8 (fun j -> i + j + Sc_hash.Drbg.uniform_int drbg 50)))
  in
  (* Protocol II: signed upload, charged over the wire. *)
  let upload = Seccloud.User.sign_file user ~cs_id:"cs-1" ~file:"ledger" payloads in
  ignore (Seccloud.Wire.encode pub (Seccloud.Wire.Upload upload));
  assert (Seccloud.Cloud.accept_upload cloud upload);
  (* Protocol I probe: pairings for one designated IBS verification. *)
  let probe_key = Seccloud.System.register_user system "probe" in
  let s = Sc_ibc.Ibs.sign pub probe_key ~bytes_source:bs "probe-msg" in
  let p0 = Tate.pairings_performed () in
  assert (Sc_ibc.Ibs.verify pub ~signer:"probe" ~msg:"probe-msg" s);
  let ibs_pairings = Tate.pairings_performed () - p0 in
  (* That verification warmed every fixed-base table it needs (Miller
     lines for P and P_pub, comb for the signer's Q_ID), so verifying
     again must be all cache hits: 0 precomputation misses. *)
  let m0 = Telemetry.counter_value "pairing.precomp.miss" in
  assert (Sc_ibc.Ibs.verify pub ~signer:"probe" ~msg:"probe-msg" s);
  let ibs_precomp_misses =
    Telemetry.counter_value "pairing.precomp.miss" - m0
  in
  (* Storage audit: batched designated verification. *)
  let report =
    Seccloud.Agency.audit_storage_batched da cloud ~owner:"alice" ~file:"ledger"
      ~samples:8
  in
  assert report.Seccloud.Agency.intact;
  (* Protocol III + Algorithm 1 audit round, wire-charged. *)
  let warrant =
    Seccloud.User.delegate_audit user ~now:0.0 ~lifetime:3600.0
      ~scope:"audit ledger"
  in
  let audit_round cloud file samples =
    let upload =
      Seccloud.User.sign_file user ~cs_id:(Seccloud.Cloud.id cloud) ~file
        payloads
    in
    assert (Seccloud.Cloud.accept_upload cloud upload);
    let service =
      Sc_compute.Task.random_service ~drbg ~n_positions:16 ~n_tasks:8
    in
    let execution =
      Seccloud.Cloud.execute cloud ~owner:"alice" ~file service
    in
    let commitment = Sc_audit.Protocol.commitment_of_execution execution in
    let challenge =
      Sc_audit.Protocol.make_challenge ~drbg
        ~n_tasks:commitment.Sc_audit.Protocol.n_tasks ~samples ~warrant
    in
    match Sc_audit.Protocol.respond pub ~now:1.0 execution challenge with
    | None -> invalid_arg "stats: warrant rejected"
    | Some responses ->
      ignore
        (Seccloud.Wire.encode pub
           (Seccloud.Wire.Compute_commitment
              { results = Sc_compute.Executor.results execution; commitment }));
      ignore
        (Seccloud.Wire.encode pub
           (Seccloud.Wire.Audit_challenge { owner = "alice"; file; challenge }));
      ignore (Seccloud.Wire.encode pub (Seccloud.Wire.Audit_response responses));
      { Sc_audit.Batch.owner = "alice"; commitment; challenge; responses }
  in
  let job = audit_round cloud "ledger" 4 in
  let verdict =
    Sc_audit.Protocol.verify pub ~verifier_key:da_key ~role:`Da ~owner:"alice"
      job.Sc_audit.Batch.commitment job.Sc_audit.Batch.challenge
      job.Sc_audit.Batch.responses
  in
  assert verdict.Sc_audit.Protocol.valid;
  (* Batched audit: two jobs, one round of aggregate equations. *)
  let jobs = [ job; audit_round cloud2 "ledger-2" 4 ] in
  let p0 = Tate.pairings_performed () in
  let batch_verdict =
    Sc_audit.Batch.verify_jobs pub ~verifier_key:da_key ~role:`Da jobs
  in
  let batch_pairings = Tate.pairings_performed () - p0 in
  assert batch_verdict.Sc_audit.Protocol.valid;
  (* The same conversation once more, this time as encoded Wire bytes
     through the fault-injectable transport against a server
     endpoint. *)
  let server_ep = Seccloud.Endpoint.Server.create system cloud in
  let da_ep = Seccloud.Endpoint.Da.create system in
  let transport =
    Seccloud.Transport.create
      ~faults:(Seccloud.Transport.lossy ~drop ~tamper ())
      ~drbg:(Sc_hash.Drbg.create ~seed:("stats-transport:" ^ seed))
      ~peer:"cs-1" ~public:pub
      ~handler:(Seccloud.Endpoint.Server.handle server_ep) ()
  in
  let uploaded =
    Seccloud.User.store_over user ~transport ~cs_id:"cs-1" ~file:"wire-ledger"
      payloads
  in
  let wire_commitment =
    match uploaded with
    | Error e -> Error e
    | Ok _ -> (
      let service =
        Sc_compute.Task.random_service ~drbg ~n_positions:16 ~n_tasks:8
      in
      match
        Seccloud.Transport.call transport ~expect:"compute_commitment"
          (Seccloud.Wire.Compute_request
             { owner = "alice"; file = "wire-ledger"; service })
      with
      | Ok (Seccloud.Wire.Compute_commitment { commitment; _ }) ->
        Ok commitment
      | Ok _ -> Error Seccloud.Transport.Timeout
      | Error e -> Error e)
  in
  let wire_report =
    Seccloud.Endpoint.Da.audit_storage_over_wire da_ep ~transport
      ~owner:"alice" ~file:"wire-ledger" ~indices:(List.init 8 Fun.id)
  in
  let wire_verdict =
    match wire_commitment with
    | Error e ->
      {
        Sc_audit.Protocol.valid = false;
        failures =
          [
            (match e with
            | Seccloud.Transport.Timeout ->
              Sc_audit.Protocol.Transport_timeout "cs-1"
            | Seccloud.Transport.Tampered ->
              Sc_audit.Protocol.Transport_tampered "cs-1");
          ];
      }
    | Ok commitment ->
      Seccloud.Endpoint.Da.audit_computation_over_wire da_ep ~transport
        ~owner:"alice" ~file:"wire-ledger" ~commitment ~warrant
        ~now:(Seccloud.Transport.now transport)
        ~samples:4
  in
  if drop = 0.0 && tamper = 0.0 then begin
    (* On a perfect channel the over-the-wire round must agree with
       the direct one. *)
    assert (uploaded = Ok true);
    assert wire_report.Seccloud.Agency.intact;
    assert wire_verdict.Sc_audit.Protocol.valid
  end;
  let wire_summary =
    Printf.sprintf
      "over-the-wire round (drop=%.2f tamper=%.2f): upload=%s \
       storage_intact=%b computation_valid=%b retries=%d"
      drop tamper
      (match uploaded with
      | Ok ok -> string_of_bool ok
      | Error e -> Seccloud.Transport.error_to_string e)
      wire_report.Seccloud.Agency.intact wire_verdict.Sc_audit.Protocol.valid
      (Telemetry.counter_value "transport.retry")
  in
  ibs_pairings, ibs_precomp_misses, List.length jobs, batch_pairings, wire_summary

let stats verbose preset seed drop tamper trace openmetrics check =
  setup_logging verbose;
  let run () = stats_workload preset seed ~drop ~tamper in
  let ibs_pairings, ibs_precomp_misses, batch_jobs, batch_pairings, wire_summary =
    match trace with
    | Some path -> Telemetry.with_trace_file path run
    | None -> run ()
  in
  Printf.printf
    "Telemetry after one instrumented workload (params=%s): Protocols I-III, \
     a batched storage audit and a %d-job batched computation audit.\n\n"
    preset batch_jobs;
  Printf.printf "%s\n\n" wire_summary;
  Telemetry.print_tree stdout;
  (match trace with
  | Some path -> Printf.printf "\nspan trace (JSONL) written to %s\n" path
  | None -> ());
  (match openmetrics with
  | None -> ()
  | Some path ->
    let oc = open_out path in
    output_string oc (Sc_telemetry.Openmetrics.render ());
    close_out oc;
    Printf.printf "\nOpenMetrics exposition written to %s\n" path);
  if check then begin
    Printf.printf "\ncost invariants:\n";
    let failures = ref 0 in
    let invariant name measured bound =
      let ok = measured <= bound in
      if not ok then incr failures;
      Printf.printf "  %-52s %d (bound %d) %s\n" name measured bound
        (if ok then "ok" else "FAIL")
    in
    invariant "Ibs.verify pairings per signature" ibs_pairings 1;
    invariant "Ibs.verify precomputation misses after warm-up"
      ibs_precomp_misses 0;
    invariant
      (Printf.sprintf "batched audit pairings for k=%d jobs (<= k+1)"
         batch_jobs)
      batch_pairings (batch_jobs + 1);
    invariant "pairing count matches single+multi+affine breakdown"
      (abs
         (Telemetry.counter_value "pairing.count"
         - (Telemetry.counter_value "pairing.single"
           + Telemetry.counter_value "pairing.multi"
           + Telemetry.counter_value "pairing.affine")))
      0;
    invariant "transport attempts reconcile with rpc + retry"
      (abs
         (Telemetry.counter_value "transport.attempts"
         - (Telemetry.counter_value "transport.rpc"
           + Telemetry.counter_value "transport.retry")))
      0;
    invariant "no spans leaked open after the workload"
      (Telemetry.open_spans ()) 0;
    if drop = 0.0 && tamper = 0.0 then
      invariant "no retries on a perfect channel"
        (Telemetry.counter_value "transport.retry")
        0
    else
      invariant "lossy channel exercised the retry path"
        (if Telemetry.counter_value "transport.retry" > 0 then 0 else 1)
        0;
    if !failures > 0 then begin
      Printf.printf "%d invariant(s) regressed\n" !failures;
      exit 1
    end
    else Printf.printf "all invariants hold\n"
  end

let preset_arg =
  Arg.(
    value
    & opt string "toy"
    & info [ "params"; "preset" ] ~doc:"Parameter preset.")

let seed_arg =
  Arg.(value & opt string "cli" & info [ "seed" ] ~doc:"Deterministic seed.")

let verbose_arg =
  Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Show protocol event logs.")

let demo_cmd =
  Cmd.v (Cmd.info "demo" ~doc:"End-to-end Protocols I-III walkthrough")
    Term.(const demo $ verbose_arg $ preset_arg $ seed_arg)

let samplesize_cmd =
  let csc = Arg.(value & opt float 0.5 & info [ "csc" ] ~doc:"Computing secure confidence.") in
  let ssc = Arg.(value & opt float 0.5 & info [ "ssc" ] ~doc:"Storage secure confidence.") in
  let range = Arg.(value & opt float 0.0 & info [ "range" ] ~doc:"|R| (0 = infinite).") in
  let eps = Arg.(value & opt float 1e-4 & info [ "eps" ] ~doc:"Target cheat probability.") in
  Cmd.v (Cmd.info "samplesize" ~doc:"Required audit sample size (Figure 4 math)")
    Term.(const samplesize $ csc $ ssc $ range $ eps)

let drop_arg =
  Arg.(
    value
    & opt float 0.0
    & info [ "drop" ]
        ~doc:"Per-direction message drop probability on the transport.")

let tamper_arg =
  Arg.(
    value
    & opt float 0.0
    & info [ "tamper" ]
        ~doc:"Per-direction bit-flip probability on the transport.")

let stats_cmd =
  let trace =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE" ~doc:"Write a JSONL span trace to $(docv).")
  in
  let openmetrics =
    Arg.(
      value
      & opt (some string) None
      & info [ "openmetrics" ] ~docv:"FILE"
          ~doc:"Write an OpenMetrics text exposition of the registry to $(docv).")
  in
  let check =
    Arg.(
      value
      & flag
      & info [ "check" ]
          ~doc:"Enforce protocol cost invariants; exit 1 on regression.")
  in
  Cmd.v
    (Cmd.info "stats"
       ~doc:"Run an instrumented demo/audit workload and print the metrics tree")
    Term.(
      const stats $ verbose_arg $ preset_arg $ seed_arg $ drop_arg
      $ tamper_arg $ trace $ openmetrics $ check)

let trace_file_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE" ~doc:"Write a JSONL span trace to $(docv).")

let simulate_main epochs servers byzantine users drop tamper seed trace
    service identities shards heavy corrupt queue_cap quantum lookup_stride
    audit_rounds dynamic_ops out slo identity_check =
  if service then
    simulate_service ~identities ~shards ~heavy ~corrupt ~queue_cap ~quantum
      ~lookup_stride ~audit_rounds ~dynamic_ops ~drop ~tamper ~seed ~trace
      ~out ~slo ~identity_check
  else simulate epochs servers byzantine users drop tamper seed trace

let simulate_cmd =
  let epochs = Arg.(value & opt int 5 & info [ "epochs" ] ~doc:"Epochs.") in
  let servers = Arg.(value & opt int 4 & info [ "servers" ] ~doc:"Cloud servers.") in
  let byzantine = Arg.(value & opt int 1 & info [ "byzantine" ] ~doc:"Adversary bound b.") in
  let users = Arg.(value & opt int 2 & info [ "users" ] ~doc:"Cloud users.") in
  let service =
    Arg.(
      value & flag
      & info [ "service" ]
          ~doc:
            "Run the sharded multi-tenant service soak campaign instead of \
             the epoch simulation.")
  in
  let identities =
    Arg.(
      value & opt int 20_000
      & info [ "identities" ] ~doc:"Service mode: distinct tenant identities.")
  in
  let shards =
    Arg.(value & opt int 16 & info [ "shards" ] ~doc:"Service mode: shards.")
  in
  let heavy =
    Arg.(
      value & opt int 64
      & info [ "heavy" ]
          ~doc:"Service mode: tenants doing full store/audit/compute crypto.")
  in
  let corrupt =
    Arg.(
      value & opt int 8
      & info [ "corrupt" ]
          ~doc:"Service mode: heavy tenants whose stored data rots.")
  in
  let queue_cap =
    Arg.(
      value & opt int 1024
      & info [ "queue-cap" ] ~doc:"Service mode: per-shard queue capacity.")
  in
  let quantum =
    Arg.(
      value & opt int 64
      & info [ "quantum" ]
          ~doc:"Service mode: max requests per shard per drain round.")
  in
  let lookup_stride =
    Arg.(
      value & opt int 16
      & info [ "lookup-stride" ]
          ~doc:"Service mode: every k-th identity also sends a lookup.")
  in
  let audit_rounds =
    Arg.(
      value & opt int 2
      & info [ "audit-rounds" ] ~doc:"Service mode: audit rounds.")
  in
  let dynamic_ops =
    Arg.(
      value & opt int 6
      & info [ "dynamic-ops" ]
          ~doc:
            "Service mode: dynamic mutation ops (update/append/tombstone) \
             per heavy tenant, one signed root transition per burst; 0 \
             disables the mutation wave.")
  in
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "out" ] ~docv:"FILE"
          ~doc:"Service mode: write the JSON report (BENCH_service.json).")
  in
  let slo =
    Arg.(
      value
      & opt (some file) None
      & info [ "slo" ] ~docv:"FILE"
          ~doc:"Service mode: declarative SLO gate; exit 1 on violation.")
  in
  let identity_check =
    Arg.(
      value & flag
      & info [ "identity-check" ]
          ~doc:
            "Service mode: re-run the campaign at a different domain count \
             and fail unless digests and ledgers are value-identical.")
  in
  Cmd.v (Cmd.info "simulate" ~doc:"Run the Byzantine cloud simulation")
    Term.(
      const simulate_main $ epochs $ servers $ byzantine $ users $ drop_arg
      $ tamper_arg $ seed_arg $ trace_file_arg $ service $ identities $ shards
      $ heavy $ corrupt $ queue_cap $ quantum $ lookup_stride $ audit_rounds
      $ dynamic_ops $ out $ slo $ identity_check)

let serve_cmd =
  let shards =
    Arg.(value & opt int 4 & info [ "shards" ] ~doc:"Shard count.")
  in
  let queue_cap =
    Arg.(
      value & opt int 64
      & info [ "queue-cap" ] ~doc:"Per-shard queue capacity.")
  in
  let quantum =
    Arg.(
      value & opt int 8
      & info [ "quantum" ] ~doc:"Max requests per shard per drain round.")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Interactive multi-tenant service: line commands through the real \
          shard queues")
    Term.(const serve $ preset_arg $ seed_arg $ shards $ queue_cap $ quantum)

let trace_cmd =
  let file =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"TRACE" ~doc:"JSONL span trace to analyze.")
  in
  let slo =
    Arg.(
      value
      & opt (some file) None
      & info [ "slo" ] ~docv:"FILE"
          ~doc:"Declarative SLO assertions; exit 1 on violation.")
  in
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "out" ] ~docv:"FILE" ~doc:"Write the JSON report to $(docv).")
  in
  let analyze_cmd =
    Cmd.v
      (Cmd.info "analyze"
         ~doc:
           "Reconstruct trace trees; report critical paths, per-layer \
            attribution and per-protocol latency quantiles")
      Term.(const trace_analyze $ file $ slo $ out)
  in
  Cmd.group (Cmd.info "trace" ~doc:"Span-trace analysis") [ analyze_cmd ]

let () =
  let info = Cmd.info "seccloud" ~version:"1.0" ~doc:"SecCloud demo CLI" in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            demo_cmd;
            samplesize_cmd;
            simulate_cmd;
            serve_cmd;
            stats_cmd;
            trace_cmd;
          ]))
