(* Reproduction harness: one subcommand per table/figure of the
   paper's evaluation section (see DESIGN.md section 4 and
   EXPERIMENTS.md for the index).  All randomness is seeded, so every
   run prints identical numbers. *)

module Params = Sc_pairing.Params
module Tate = Sc_pairing.Tate
module Hash_g1 = Sc_pairing.Hash_g1
module Curve = Sc_ec.Curve
module Nat = Sc_bignum.Nat
module Sampling = Sc_audit.Sampling
module Optimal = Sc_audit.Optimal

let time_of ?(min_reps = 3) ?(min_seconds = 0.2) f =
  (* Median-of-batches wall-clock timing, robust enough for a table. *)
  let batch () =
    let t0 = Unix.gettimeofday () in
    let reps = ref 0 in
    while Unix.gettimeofday () -. t0 < min_seconds /. 3.0 || !reps < min_reps do
      ignore (Sys.opaque_identity (f ()));
      incr reps
    done;
    (Unix.gettimeofday () -. t0) /. float_of_int !reps
  in
  let samples = List.init 3 (fun _ -> batch ()) in
  match List.sort compare samples with
  | [ _; median; _ ] -> median
  | other -> List.nth other (List.length other / 2)

let params_of_name = function
  | "toy" -> Params.toy
  | "small" -> Params.small
  | "mid" -> Params.mid
  | s -> invalid_arg (Printf.sprintf "unknown params preset %S" s)

let ms t = t *. 1000.0

let header title =
  Printf.printf "\n=== %s ===\n" title

(* ------------------------------------------------------------------ *)
(* Table I: cryptographic operation execution times.                   *)
(* ------------------------------------------------------------------ *)

let table1 preset =
  let prm = Lazy.force (params_of_name preset) in
  header
    (Printf.sprintf
       "Table I: cryptographic operation execution time (params=%s, |p|=%d \
        bits, |q|=%d bits)"
       preset (Nat.bit_length prm.Params.p) (Nat.bit_length prm.Params.q));
  let drbg = Sc_hash.Drbg.create ~seed:"table1" in
  let bs = Sc_hash.Drbg.bytes_source drbg in
  let s = Params.random_scalar prm ~bytes_source:bs in
  let g = prm.Params.g in
  let p2 = Curve.mul prm.Params.curve (Params.random_scalar prm ~bytes_source:bs) g in
  let t_pmul = time_of (fun () -> Curve.mul prm.Params.curve s g) in
  let t_pair = time_of (fun () -> Tate.pairing prm g p2) in
  let t_hash_g1 = time_of (fun () -> Hash_g1.hash_to_point prm "bench message") in
  let msg = String.make 1024 'x' in
  let t_sha = time_of ~min_seconds:0.05 (fun () -> Sc_hash.Sha256.digest msg) in
  Printf.printf "%-44s %10s %18s\n" "Description" "This repo" "Paper (MIRACL'07)";
  Printf.printf "%-44s %7.2f ms %18s\n" "T_pmul  one point multiplication" (ms t_pmul) "0.86 ms";
  Printf.printf "%-44s %7.2f ms %18s\n" "T_pair  one pairing operation" (ms t_pair) "4.14 ms";
  Printf.printf "%-44s %7.2f ms %18s\n" "T_h2p   hash-to-G1 (map-to-point)" (ms t_hash_g1) "-";
  Printf.printf "%-44s %7.4f ms %18s\n" "T_sha   SHA-256 of 1 KiB" (ms t_sha) "-";
  Printf.printf "shape check: T_pair / T_pmul = %.2f (paper: %.2f)\n"
    (t_pair /. t_pmul) (4.14 /. 0.86)

(* ------------------------------------------------------------------ *)
(* Table II: signature schemes, individual vs batch verification.      *)
(* ------------------------------------------------------------------ *)

let table2 preset sizes =
  let prm = Lazy.force (params_of_name preset) in
  header
    (Printf.sprintf "Table II: individual vs batch verification (params=%s)"
       preset);
  let drbg = Sc_hash.Drbg.create ~seed:"table2" in
  let bs = Sc_hash.Drbg.bytes_source drbg in
  (* Key material shared across batch sizes. *)
  let rsa = Sc_rsa.Rsa.generate ~bytes_source:bs ~bits:1024 in
  let ecdsa_kp = Sc_ecdsa.Ecdsa.generate prm ~bytes_source:bs in
  let bls_kp = Sc_bls.Bls.generate prm ~bytes_source:bs in
  let system =
    Seccloud.System.create ~params:(params_of_name preset) ~seed:"table2-sys"
      ~cs_ids:[ "cs" ] ~da_id:"da" ()
  in
  let pub = Seccloud.System.public system in
  let da_key = Seccloud.System.da_key system in
  let user_key = Seccloud.System.register_user system "alice" in
  Printf.printf "%-8s %-24s %14s %14s %12s\n" "scheme" "mode" "time (ms)"
    "pairings" "paper count";
  let row scheme mode t pairings paper =
    Printf.printf "%-8s %-24s %11.2f ms %14s %12s\n" scheme mode (ms t)
      pairings paper
  in
  List.iter
    (fun n ->
      Printf.printf "--- batch size n = %d ---\n" n;
      let msgs = List.init n (Printf.sprintf "message-%d") in
      (* RSA *)
      let rsa_sigs = List.map (Sc_rsa.Rsa.sign rsa) msgs in
      let t =
        time_of (fun () ->
            List.for_all2 (Sc_rsa.Rsa.verify rsa.Sc_rsa.Rsa.pub) msgs rsa_sigs)
      in
      row "RSA" "individual" t "0" (Printf.sprintf "n*T_RSA; batch N/A");
      (* ECDSA *)
      let ecdsa_sigs =
        List.map (Sc_ecdsa.Ecdsa.sign prm ecdsa_kp ~bytes_source:bs) msgs
      in
      let t =
        time_of (fun () ->
            List.for_all2
              (Sc_ecdsa.Ecdsa.verify prm ecdsa_kp.Sc_ecdsa.Ecdsa.q)
              msgs ecdsa_sigs)
      in
      row "ECDSA" "individual" t "0" "n*T_ECDSA; batch N/A";
      (* BGLS *)
      let bls_sigs = List.map (Sc_bls.Bls.sign prm bls_kp) msgs in
      Tate.reset_pairing_count ();
      let t =
        time_of ~min_reps:1 (fun () ->
            List.for_all2
              (Sc_bls.Bls.verify prm bls_kp.Sc_bls.Bls.pk)
              msgs bls_sigs)
      in
      let per_run = 2 * n in
      row "BGLS" "individual" t (string_of_int per_run) "2n pairings";
      let agg = Sc_bls.Bls.aggregate prm bls_sigs in
      let entries = List.map (fun m -> bls_kp.Sc_bls.Bls.pk, m) msgs in
      Tate.reset_pairing_count ();
      let before = Tate.pairings_performed () in
      assert (Sc_bls.Bls.verify_aggregate prm entries agg);
      let bgls_batch_pairs = Tate.pairings_performed () - before in
      let t =
        time_of ~min_reps:1 (fun () ->
            Sc_bls.Bls.verify_aggregate prm entries agg)
      in
      row "BGLS" "batch" t (string_of_int bgls_batch_pairs) "(n+1) pairings";
      (* Ours: designated-verifier signatures *)
      let dvs_list =
        List.map
          (fun m ->
            let raw = Sc_ibc.Ibs.sign pub user_key ~bytes_source:bs m in
            m, Sc_ibc.Dvs.designate pub raw ~verifier:"da")
          msgs
      in
      let t =
        time_of ~min_reps:1 (fun () ->
            List.for_all
              (fun (m, d) ->
                Sc_ibc.Dvs.verify pub ~verifier_key:da_key ~signer:"alice"
                  ~msg:m d)
              dvs_list)
      in
      row "Ours" "individual" t (string_of_int n) "2n pairings";
      let entries =
        List.map
          (fun (m, d) -> { Sc_ibc.Agg.signer = "alice"; msg = m; dvs = d })
          dvs_list
      in
      Tate.reset_pairing_count ();
      let before = Tate.pairings_performed () in
      assert (Sc_ibc.Agg.verify_batch pub ~verifier_key:da_key entries);
      let ours_batch_pairs = Tate.pairings_performed () - before in
      let t =
        time_of ~min_reps:1 (fun () ->
            Sc_ibc.Agg.verify_batch pub ~verifier_key:da_key entries)
      in
      row "Ours" "batch" t (string_of_int ours_batch_pairs) "2 pairings")
    sizes

(* ------------------------------------------------------------------ *)
(* Figure 4: required sample size for uncheatable cloud computing.     *)
(* ------------------------------------------------------------------ *)

let fig4 eps steps =
  List.iter
    (fun (range, label) ->
      header
        (Printf.sprintf
           "Figure 4: required sample size t (eps=%g, |R|=%s); rows SSC, \
            cols CSC"
           eps label);
      let grid = Sampling.figure4_grid ~eps ~range ~steps () in
      Printf.printf "%6s" "";
      List.init steps (fun j ->
          Printf.sprintf "%6.1f" (float_of_int j /. float_of_int steps))
      |> List.iter print_string;
      print_newline ();
      List.init steps (fun i ->
          let ssc = float_of_int i /. float_of_int steps in
          Printf.printf "%6.1f" ssc;
          List.iter
            (fun { Sampling.ssc = s; csc = _; t } ->
              if s = ssc then
                match t with
                | Some t -> Printf.printf "%6d" t
                | None -> Printf.printf "%6s" "-")
            grid;
          print_newline ())
      |> ignore)
    [ 2.0, "2"; infinity, "inf" ];
  header "Figure 4 spot checks from the paper text";
  let spot range label expected =
    match
      Sampling.required_samples ~csc:0.5 ~ssc:0.5 ~range ~sig_forge:0.0
        ~eps:1e-4 ()
    with
    | Some t ->
      Printf.printf
        "CSC=SSC=0.5, |R|=%s: required t = %d   (paper reports %d)\n" label t
        expected
    | None -> Printf.printf "CSC=SSC=0.5, |R|=%s: unreachable\n" label
  in
  spot 2.0 "2" 33;
  spot infinity "inf" 15

(* ------------------------------------------------------------------ *)
(* Figure 5: verification cost vs number of cloud users.               *)
(* ------------------------------------------------------------------ *)

let fig5 preset max_users step =
  let prm = Lazy.force (params_of_name preset) in
  header
    (Printf.sprintf
       "Figure 5: verification cost vs cloud users (params=%s).  Series: \
        ours (batch), BLS auditing [4]/[5] style (2 pairings/user), BLS \
        individual (2 pairings/sig)"
       preset);
  let drbg = Sc_hash.Drbg.create ~seed:"fig5" in
  let bs = Sc_hash.Drbg.bytes_source drbg in
  (* Calibrate the two dominant operations once. *)
  let g = prm.Params.g in
  let s = Params.random_scalar prm ~bytes_source:bs in
  let t_pmul = time_of (fun () -> Curve.mul prm.Params.curve s g) in
  let t_pair = time_of (fun () -> Tate.pairing prm g g) in
  Printf.printf "calibration: T_pmul=%.2f ms, T_pair=%.2f ms\n" (ms t_pmul)
    (ms t_pair);
  Printf.printf "%6s %16s %16s %16s\n" "users" "ours(ms)" "Time[4]-style"
    "Time[5]-style";
  (* Cost model per the schemes' verification equations, mirroring the
     paper's op-count comparison:
     - ours (batch over k users):   2 pairings + 2k point mults
     - Wang-style auditing, per user audited separately:
         2 pairings + c point mults  => 2k pairings total
     - BLS individual per user:     2 pairings per signature. *)
  let rec users u =
    if u <= max_users then begin
      let ours = (2.0 *. t_pair) +. (float_of_int (2 * u) *. t_pmul) in
      let wang = float_of_int u *. ((2.0 *. t_pair) +. (3.0 *. t_pmul)) in
      let bls_ind = float_of_int u *. 2.0 *. t_pair in
      Printf.printf "%6d %13.2f ms %13.2f ms %13.2f ms\n" u (ms ours) (ms wang)
        (ms bls_ind);
      users (u + step)
    end
  in
  users 1;
  (* Wall-clock validation at a few sizes with the real protocols. *)
  header "Figure 5 wall-clock validation (real executions)";
  let system =
    Seccloud.System.create ~params:(params_of_name preset) ~seed:"fig5-sys"
      ~cs_ids:[ "cs" ] ~da_id:"da" ()
  in
  let pub = Seccloud.System.public system in
  let da_key = Seccloud.System.da_key system in
  let wang_keys = Sc_pdp.Bls_auditor.generate_keys prm ~bytes_source:bs in
  Printf.printf "%6s %16s %16s %12s\n" "users" "ours-batch(ms)"
    "wang-style(ms)" "pairings";
  List.iter
    (fun u ->
      if u <= max_users then begin
        (* ours: u users, one signed message each, single aggregate check *)
        let entries =
          List.init u (fun i ->
              let id = Printf.sprintf "user-%d" i in
              let key = Seccloud.System.register_user system id in
              let m = Printf.sprintf "blk-%d" i in
              let raw = Sc_ibc.Ibs.sign pub key ~bytes_source:bs m in
              {
                Sc_ibc.Agg.signer = id;
                msg = m;
                dvs = Sc_ibc.Dvs.designate pub raw ~verifier:"da";
              })
        in
        let before = Tate.pairings_performed () in
        assert (Sc_ibc.Agg.verify_batch pub ~verifier_key:da_key entries);
        let ours_pairs = Tate.pairings_performed () - before in
        let t_ours =
          time_of ~min_reps:1 ~min_seconds:0.05 (fun () ->
              Sc_ibc.Agg.verify_batch pub ~verifier_key:da_key entries)
        in
        (* wang-style: u independent files, one 2-pairing audit each *)
        let files =
          List.init u (fun i ->
              let blocks = List.init 4 (Printf.sprintf "payload-%d-%d" i) in
              let tf =
                Sc_pdp.Bls_auditor.tag_file prm wang_keys
                  ~name:(Printf.sprintf "f%d" i) blocks
              in
              let chal =
                Sc_pdp.Bls_auditor.make_challenge prm ~bytes_source:bs
                  ~n_blocks:4 ~samples:2
              in
              tf, chal, Sc_pdp.Bls_auditor.prove prm tf chal)
        in
        let t_wang =
          time_of ~min_reps:1 ~min_seconds:0.05 (fun () ->
              List.for_all
                (fun (tf, chal, proof) ->
                  Sc_pdp.Bls_auditor.verify prm wang_keys
                    ~name:tf.Sc_pdp.Bls_auditor.name chal proof)
                files)
        in
        Printf.printf "%6d %13.2f ms %13.2f ms %12s\n" u (ms t_ours)
          (ms t_wang)
          (Printf.sprintf "~%d vs %d" ours_pairs (2 * u))
      end)
    [ 1; 5; 10; 25; 50 ]

(* ------------------------------------------------------------------ *)
(* Theorem 3: optimal sample size.                                     *)
(* ------------------------------------------------------------------ *)

let optimal () =
  header "Theorem 3: optimal sample size t* (closed form vs exhaustive)";
  Printf.printf "%10s %12s %12s %10s %10s %12s\n" "q" "C_trans" "C_cheat"
    "closed" "exhaust" "cost(t*)";
  List.iter
    (fun (q, c_trans, c_cheat) ->
      let k =
        {
          Optimal.a1 = 1.0;
          a2 = 1.0;
          a3 = 1.0;
          c_trans;
          c_comp = 5.0;
          c_cheat;
        }
      in
      let closed = Optimal.optimal_t k ~cheat_prob:q in
      let exhaustive = Optimal.argmin_t k ~cheat_prob:q in
      Printf.printf "%10.2f %12.1f %12.1f %10d %10d %12.2f\n" q c_trans c_cheat
        closed exhaustive
        (Optimal.total_cost k ~cheat_prob:q ~t:closed))
    [
      0.5, 1.0, 1e4;
      0.5, 1.0, 1e6;
      0.5, 10.0, 1e4;
      0.9, 1.0, 1e4;
      0.9, 1.0, 1e6;
      0.99, 1.0, 1e6;
      0.25, 1.0, 1e4;
    ];
  header "Theorem 3: history learning from a simulated deployment";
  let config =
    {
      Sc_sim.Engine.default_config with
      Sc_sim.Engine.seed = "optimal-history";
      epochs = 4;
      n_users = 2;
      cheat_damage = 5000.0;
    }
  in
  let stats = Sc_sim.Engine.run config in
  let costs = Sc_sim.Engine.learned_costs stats in
  Printf.printf
    "learned from %d audits: C_trans=%.1f bytes/sample, C_comp=%.4f s, \
     C_cheat=%.1f\n"
    (List.length stats.Sc_sim.Engine.records)
    costs.Optimal.c_trans costs.Optimal.c_comp costs.Optimal.c_cheat;
  let cheat_prob = 0.6 in
  if costs.Optimal.c_cheat > 0.0 then begin
    let k = { costs with Optimal.c_trans = costs.Optimal.c_trans *. 1e-6 } in
    Printf.printf "optimal t for learned costs (q=%.2f): %d\n" cheat_prob
      (Optimal.optimal_t k ~cheat_prob)
  end
  else
    Printf.printf
      "no undetected cheats in history; optimal t degenerates to 0 \
       (cheating costless) — paper's formula needs C_cheat > 0\n"

(* ------------------------------------------------------------------ *)
(* Detection: Algorithm 1 vs the closed-form predictions.              *)
(* ------------------------------------------------------------------ *)

let detection trials =
  header "Detection-rate validation: Monte-Carlo vs eqs. (10)-(14)";
  let drbg = Sc_hash.Drbg.create ~seed:"detection" in
  Printf.printf "%6s %6s %8s %4s %12s %12s\n" "CSC" "SSC" "|R|" "t" "MC rate"
    "predicted";
  List.iter
    (fun (csc, ssc, range, t) ->
      let r =
        Sc_sim.Montecarlo.combined_experiment ~drbg ~csc ~ssc ~range
          ~sig_forge:1e-9 ~t ~trials
      in
      Printf.printf "%6.2f %6.2f %8s %4d %12.5f %12.5f\n" csc ssc
        (if range = infinity then "inf" else string_of_float range)
        t r.Sc_sim.Montecarlo.rate r.Sc_sim.Montecarlo.predicted)
    [
      0.5, 0.5, 2.0, 10;
      0.5, 0.5, 2.0, 33;
      0.5, 0.5, infinity, 15;
      0.8, 0.2, 4.0, 20;
      0.2, 0.8, 4.0, 20;
      0.9, 0.9, infinity, 50;
    ];
  header "Full-crypto pipeline detection (simulator, toy params)";
  List.iter
    (fun (label, storage, compute) ->
      let system =
        Seccloud.System.create ~params:Sc_pairing.Params.toy
          ~seed:("det:" ^ label) ~cs_ids:[ "cs" ] ~da_id:"da" ()
      in
      let user = Seccloud.User.create system ~id:"alice" in
      let da = Seccloud.Agency.create system in
      let drbg = Sc_hash.Drbg.create ~seed:("det-data:" ^ label) in
      let payloads =
        List.init 48 (fun i ->
            Sc_storage.Block.encode_ints
              (List.init 6 (fun j -> i + j + Sc_hash.Drbg.uniform_int drbg 20)))
      in
      let cloud =
        Seccloud.Cloud.create system ~id:"cs" ~storage ~compute ()
      in
      Seccloud.Cloud.accept_upload_unchecked cloud
        (Seccloud.User.sign_file user ~cs_id:"cs" ~file:"f" payloads);
      let runs = 10 in
      let caught = ref 0 in
      for _ = 1 to runs do
        let service =
          Sc_compute.Task.random_service ~drbg ~n_positions:48 ~n_tasks:24
        in
        let execution =
          Seccloud.Cloud.execute cloud ~owner:"alice" ~file:"f" service
        in
        let warrant =
          Seccloud.User.delegate_audit user ~now:0.0 ~lifetime:1e9 ~scope:"d"
        in
        let verdict =
          Seccloud.Agency.audit_computation da cloud ~owner:"alice" ~execution
            ~warrant ~now:1.0 ~samples:10
        in
        if not verdict.Sc_audit.Protocol.valid then incr caught
      done;
      Printf.printf "%-28s detection %d/%d audits\n" label !caught runs)
    [
      "honest", Sc_storage.Server.Honest, Sc_compute.Executor.Honest;
      ( "guess 40% (|R|=1000)",
        Sc_storage.Server.Honest,
        Sc_compute.Executor.Guess_fraction (0.4, 1000) );
      ( "wrong position 40%",
        Sc_storage.Server.Honest,
        Sc_compute.Executor.Wrong_position_fraction 0.4 );
      ( "corrupt storage 30%",
        Sc_storage.Server.Corrupt_fraction 0.3,
        Sc_compute.Executor.Honest );
      ( "commit garbage 40%",
        Sc_storage.Server.Honest,
        Sc_compute.Executor.Commit_garbage_fraction 0.4 );
    ]

(* ------------------------------------------------------------------ *)
(* Ablations: measure each implementation choice against its naive     *)
(* alternative (all pairs compute identical results; see the test      *)
(* suite for the equality checks).                                     *)
(* ------------------------------------------------------------------ *)

let ablation preset =
  let prm = Lazy.force (params_of_name preset) in
  header
    (Printf.sprintf "Ablations (params=%s, |p|=%d bits)" preset
       (Nat.bit_length prm.Params.p));
  let drbg = Sc_hash.Drbg.create ~seed:"ablation" in
  let bs = Sc_hash.Drbg.bytes_source drbg in
  let g = prm.Params.g in
  let s = Params.random_scalar prm ~bytes_source:bs in
  let row name fast slow =
    let tf = time_of fast and ts = time_of slow in
    Printf.printf "%-44s %9.2f ms vs %9.2f ms  (%.1fx)\n" name (ms tf) (ms ts)
      (ts /. tf)
  in
  (* Miller loop: projective (inversion-free) vs affine reference. *)
  row "pairing: projective vs affine Miller"
    (fun () -> Tate.pairing prm g g)
    (fun () -> Tate.pairing_affine prm g g);
  (* Scalar multiplication: Jacobian ladder vs affine double-and-add. *)
  let affine_mul () =
    let nbits = Nat.bit_length s in
    let acc = ref Curve.Infinity in
    for i = nbits - 1 downto 0 do
      acc := Curve.double prm.Params.curve !acc;
      if Nat.test_bit s i then acc := Curve.add prm.Params.curve !acc g
    done;
    !acc
  in
  row "point mul: Jacobian vs affine ladder"
    (fun () -> Curve.mul prm.Params.curve s g)
    affine_mul;
  (* Exponentiation: Montgomery domain vs Barrett ladder. *)
  let p = prm.Params.p in
  let base = Sc_bignum.Nat.random ~bytes_source:bs ~bits:(Nat.bit_length p - 1) in
  let e = Sc_bignum.Nat.random ~bytes_source:bs ~bits:(Nat.bit_length p - 1) in
  let mont = Sc_bignum.Montgomery.create p in
  let barrett = Sc_bignum.Modular.create p in
  row "modpow: Montgomery vs Barrett"
    (fun () -> Sc_bignum.Montgomery.pow mont base e)
    (fun () -> Sc_bignum.Modular.pow barrett base e);
  (* Verification: one aggregate equation vs per-signature pairings. *)
  let system =
    Seccloud.System.create ~params:(params_of_name preset) ~seed:"ablation-sys"
      ~cs_ids:[ "cs" ] ~da_id:"da" ()
  in
  let pub = Seccloud.System.public system in
  let da_key = Seccloud.System.da_key system in
  let key = Seccloud.System.register_user system "u" in
  let entries =
    List.init 10 (fun i ->
        let m = Printf.sprintf "abl-%d" i in
        let raw = Sc_ibc.Ibs.sign pub key ~bytes_source:bs m in
        { Sc_ibc.Agg.signer = "u"; msg = m;
          dvs = Sc_ibc.Dvs.designate pub raw ~verifier:"da" })
  in
  row "verify 10 sigs: batch vs individual"
    (fun () -> Sc_ibc.Agg.verify_batch pub ~verifier_key:da_key entries)
    (fun () ->
      List.for_all
        (fun e ->
          Sc_ibc.Dvs.verify pub ~verifier_key:da_key ~signer:e.Sc_ibc.Agg.signer
            ~msg:e.Sc_ibc.Agg.msg e.Sc_ibc.Agg.dvs)
        entries)

(* ------------------------------------------------------------------ *)
(* Per-protocol cost report: measured pairings / hashes / wire bytes   *)
(* per verification, next to the paper's Table II operation-count      *)
(* predictions.  Counts come from the telemetry registry, bytes from   *)
(* the wire codec's tx accounting.                                     *)
(* ------------------------------------------------------------------ *)

module Telemetry = Sc_telemetry.Telemetry

let costs preset =
  header
    (Printf.sprintf
       "Per-protocol measured costs vs paper predictions (params=%s)" preset);
  let system =
    Seccloud.System.create ~params:(params_of_name preset) ~seed:"costs-sys"
      ~cs_ids:[ "cs-1"; "cs-2" ] ~da_id:"da" ()
  in
  let pub = Seccloud.System.public system in
  let da_key = Seccloud.System.da_key system in
  let drbg = Sc_hash.Drbg.create ~seed:"costs" in
  let bs = Sc_hash.Drbg.bytes_source drbg in
  let user = Seccloud.User.create system ~id:"alice" in
  let cloud = Seccloud.Cloud.create system ~id:"cs-1" () in
  let cloud2 = Seccloud.Cloud.create system ~id:"cs-2" () in
  Printf.printf "%-42s %8s %8s %8s   %s\n" "operation (verifier side)" "pairing"
    "sha256" "wire B" "paper prediction";
  let measure name paper f =
    let p0 = Tate.pairings_performed () in
    let h0 = Telemetry.counter_value "hash.sha256.digests" in
    let b0 = Telemetry.counter_value "wire.tx.bytes" in
    f ();
    Printf.printf "%-42s %8d %8d %8d   %s\n" name
      (Tate.pairings_performed () - p0)
      (Telemetry.counter_value "hash.sha256.digests" - h0)
      (Telemetry.counter_value "wire.tx.bytes" - b0)
      paper
  in
  (* Protocol I: identity-based signatures. *)
  let key = Seccloud.System.register_user system "alice" in
  let s = Sc_ibc.Ibs.sign pub key ~bytes_source:bs "cost-probe" in
  measure "Ibs.verify (1 sig)" "2 pairings"
    (fun () -> assert (Sc_ibc.Ibs.verify pub ~signer:"alice" ~msg:"cost-probe" s));
  let t = 8 in
  let batch =
    List.init t (fun i ->
        let m = Printf.sprintf "m-%d" i in
        "alice", m, Sc_ibc.Ibs.sign pub key ~bytes_source:bs m)
  in
  measure
    (Printf.sprintf "Ibs.verify_batch (t=%d)" t)
    "2t pairings"
    (fun () -> assert (Sc_ibc.Ibs.verify_batch pub batch));
  (* Table II "Ours": designated-verifier individual vs aggregate. *)
  let dvs_entries =
    List.init t (fun i ->
        let m = Printf.sprintf "dvs-%d" i in
        let raw = Sc_ibc.Ibs.sign pub key ~bytes_source:bs m in
        { Sc_ibc.Agg.signer = "alice"; msg = m;
          dvs = Sc_ibc.Dvs.designate pub raw ~verifier:"da" })
  in
  measure
    (Printf.sprintf "Dvs.verify x%d (individual)" t)
    "2n pairings"
    (fun () ->
      List.iter
        (fun e ->
          assert
            (Sc_ibc.Dvs.verify pub ~verifier_key:da_key
               ~signer:e.Sc_ibc.Agg.signer ~msg:e.Sc_ibc.Agg.msg
               e.Sc_ibc.Agg.dvs))
        dvs_entries);
  measure
    (Printf.sprintf "Agg.verify_batch (n=%d)" t)
    "2 pairings"
    (fun () -> assert (Sc_ibc.Agg.verify_batch pub ~verifier_key:da_key dvs_entries));
  (* Protocol II: storage audit over the wire. *)
  let payloads =
    List.init 16 (fun i ->
        Sc_storage.Block.encode_ints
          (List.init 8 (fun j -> i + j + Sc_hash.Drbg.uniform_int drbg 50)))
  in
  assert (Seccloud.User.store user cloud ~file:"ledger" payloads);
  let da = Seccloud.Agency.create system in
  let samples = 4 in
  measure
    (Printf.sprintf "storage audit, batched (t=%d)" samples)
    "2t pairings naive; 1 aggregate eq. here"
    (fun () ->
      let indices = List.init samples (fun i -> i) in
      let reads =
        List.map
          (fun i ->
            i, Sc_storage.Server.read (Seccloud.Cloud.storage cloud) ~file:"ledger" ~index:i)
          indices
      in
      ignore
        (Seccloud.Wire.encode pub
           (Seccloud.Wire.Storage_challenge { file = "ledger"; indices }));
      ignore (Seccloud.Wire.encode pub (Seccloud.Wire.Storage_response reads));
      let report =
        Seccloud.Agency.audit_storage_batched da cloud ~owner:"alice"
          ~file:"ledger" ~samples
      in
      assert report.Seccloud.Agency.intact);
  (* Protocol III: computation audit (Algorithm 1), wire-charged. *)
  let warrant =
    Seccloud.User.delegate_audit user ~now:0.0 ~lifetime:3600.0 ~scope:"audit"
  in
  let audit_job cloud file =
    assert (Seccloud.User.store user cloud ~file payloads);
    let service =
      Sc_compute.Task.random_service ~drbg ~n_positions:16 ~n_tasks:8
    in
    let execution = Seccloud.Cloud.execute cloud ~owner:"alice" ~file service in
    let commitment = Sc_audit.Protocol.commitment_of_execution execution in
    let challenge =
      Sc_audit.Protocol.make_challenge ~drbg
        ~n_tasks:commitment.Sc_audit.Protocol.n_tasks ~samples ~warrant
    in
    match Sc_audit.Protocol.respond pub ~now:1.0 execution challenge with
    | None -> invalid_arg "costs: warrant rejected"
    | Some responses ->
      execution, { Sc_audit.Batch.owner = "alice"; commitment; challenge; responses }
  in
  let execution, job = audit_job cloud "ledger-c" in
  measure
    (Printf.sprintf "computation audit, Algorithm 1 (t=%d)" samples)
    "t+1 pairings (root sig + t sampled sigs)"
    (fun () ->
      ignore
        (Seccloud.Wire.encode pub
           (Seccloud.Wire.Compute_commitment
              {
                results = Sc_compute.Executor.results execution;
                commitment = job.Sc_audit.Batch.commitment;
              }));
      ignore
        (Seccloud.Wire.encode pub
           (Seccloud.Wire.Audit_challenge
              {
                owner = "alice";
                file = "ledger-c";
                challenge = job.Sc_audit.Batch.challenge;
              }));
      ignore
        (Seccloud.Wire.encode pub
           (Seccloud.Wire.Audit_response job.Sc_audit.Batch.responses));
      let verdict =
        Sc_audit.Protocol.verify pub ~verifier_key:da_key ~role:`Da
          ~owner:"alice" job.Sc_audit.Batch.commitment
          job.Sc_audit.Batch.challenge job.Sc_audit.Batch.responses
      in
      assert verdict.Sc_audit.Protocol.valid);
  let _, job2 = audit_job cloud2 "ledger-d" in
  measure "batched audit, k=2 jobs" "<= k+1 pairings (2 aggregate eqs. here)"
    (fun () ->
      let verdict =
        Sc_audit.Batch.verify_jobs pub ~verifier_key:da_key ~role:`Da
          [ job; job2 ]
      in
      assert verdict.Sc_audit.Protocol.valid);
  Printf.printf
    "\n(measured on this build: the multi-pairing rewrite folds the paper's \
     2-pairing equations\n into one shared-Miller evaluation, so measured \
     counts undercut the predictions)\n"

(* ------------------------------------------------------------------ *)
(* Command line.                                                       *)
(* ------------------------------------------------------------------ *)

open Cmdliner

let params_arg =
  let doc = "Pairing parameter preset: toy, small or mid." in
  Arg.(value & opt string "small" & info [ "params" ] ~docv:"PRESET" ~doc)

let table1_cmd =
  let run preset = table1 preset in
  Cmd.v (Cmd.info "table1" ~doc:"Reproduce Table I (crypto op timings)")
    Term.(const run $ params_arg)

let table2_cmd =
  let sizes =
    let doc = "Batch sizes to measure." in
    Arg.(value & opt (list int) [ 1; 10; 20; 50 ] & info [ "sizes" ] ~doc)
  in
  let run preset sizes = table2 preset sizes in
  Cmd.v
    (Cmd.info "table2" ~doc:"Reproduce Table II (signature scheme comparison)")
    Term.(const run $ params_arg $ sizes)

let fig4_cmd =
  let eps =
    let doc = "Target cheating probability." in
    Arg.(value & opt float 1e-4 & info [ "eps" ] ~doc)
  in
  let steps =
    let doc = "Grid steps per axis." in
    Arg.(value & opt int 10 & info [ "steps" ] ~doc)
  in
  let run eps steps = fig4 eps steps in
  Cmd.v (Cmd.info "fig4" ~doc:"Reproduce Figure 4 (required sample size)")
    Term.(const run $ eps $ steps)

let fig5_cmd =
  let max_users =
    let doc = "Largest user count." in
    Arg.(value & opt int 50 & info [ "max-users" ] ~doc)
  in
  let step =
    let doc = "User count step for the analytic series." in
    Arg.(value & opt int 7 & info [ "step" ] ~doc)
  in
  let run preset max_users step = fig5 preset max_users step in
  Cmd.v
    (Cmd.info "fig5" ~doc:"Reproduce Figure 5 (verification cost vs users)")
    Term.(const run $ params_arg $ max_users $ step)

let optimal_cmd =
  Cmd.v
    (Cmd.info "optimal" ~doc:"Reproduce Theorem 3 (optimal sample size)")
    Term.(const optimal $ const ())

let detection_cmd =
  let trials =
    let doc = "Monte-Carlo trials per configuration." in
    Arg.(value & opt int 100_000 & info [ "trials" ] ~doc)
  in
  Cmd.v
    (Cmd.info "detection"
       ~doc:"Validate detection rates against eqs. (10)-(14)")
    Term.(const detection $ trials)

let ablation_cmd =
  Cmd.v
    (Cmd.info "ablation"
       ~doc:"Measure each implementation choice against its naive alternative")
    Term.(const ablation $ params_arg)

let costs_cmd =
  Cmd.v
    (Cmd.info "costs"
       ~doc:"Measured per-protocol pairing/hash/byte costs vs Table II")
    Term.(const costs $ params_arg)

let all_cmd =
  let run preset =
    table1 preset;
    table2 preset [ 1; 10; 20; 50 ];
    fig4 1e-4 10;
    fig5 preset 50 7;
    optimal ();
    detection 100_000;
    ablation preset;
    costs preset
  in
  Cmd.v (Cmd.info "all" ~doc:"Run every reproduction") Term.(const run $ params_arg)

let () =
  let info =
    Cmd.info "repro" ~version:"1.0"
      ~doc:"Regenerate every table and figure of the SecCloud paper"
  in
  exit (Cmd.eval (Cmd.group info
                    [ table1_cmd; table2_cmd; fig4_cmd; fig5_cmd; optimal_cmd;
                      detection_cmd; ablation_cmd; costs_cmd; all_cmd ]))
