(* exp/log tables built once at load.  exp is doubled in length so
   products of logs never need an explicit mod 255. *)

let exp_table = Array.make 512 0
let log_table = Array.make 256 0

(* multiply by the generator 0x03 = x + 1: shift-and-add with the AES
   reduction. *)
let next_pow x =
  let doubled = x lsl 1 in
  let doubled =
    if doubled land 0x100 <> 0 then doubled lxor 0x11B else doubled
  in
  doubled lxor x

let () =
  let rec fill i x =
    if i <= 254 then begin
      exp_table.(i) <- x;
      log_table.(x) <- i;
      fill (i + 1) (next_pow x)
    end
  in
  fill 0 1;
  for i = 255 to 511 do
    exp_table.(i) <- exp_table.(i - 255)
  done

let check v name =
  if v < 0 || v > 255 then invalid_arg ("Gf256: " ^ name ^ " out of range")

let add a b =
  check a "operand";
  check b "operand";
  a lxor b

let sub = add

let mul a b =
  check a "operand";
  check b "operand";
  if a = 0 || b = 0 then 0 else exp_table.(log_table.(a) + log_table.(b))

let inv a =
  check a "operand";
  if a = 0 then raise Division_by_zero;
  exp_table.(255 - log_table.(a))

let div a b = mul a (inv b)

let pow a k =
  check a "base";
  if a = 0 then if k = 0 then 1 else 0
  else begin
    let e = log_table.(a) * (((k mod 255) + 255) mod 255) in
    exp_table.(e mod 255)
  end

let exp i = exp_table.(((i mod 255) + 255) mod 255)

let log a =
  check a "operand";
  if a = 0 then invalid_arg "Gf256.log: zero";
  log_table.(a)
