module Ibs = Sc_ibc.Ibs
module Warrant = Sc_ibc.Warrant
module Merkle = Sc_merkle.Tree
module Executor = Sc_compute.Executor
module Task = Sc_compute.Task
module Signer = Sc_storage.Signer
module Telemetry = Sc_telemetry.Telemetry

let c_rounds = Telemetry.counter "audit.rounds"
let c_samples_drawn = Telemetry.counter "audit.samples_drawn"
let c_samples_checked = Telemetry.counter "audit.samples_checked"
let c_blocks_recomputed = Telemetry.counter "audit.blocks_recomputed"

type commitment = {
  root : string;
  root_signature : Ibs.t;
  cs_id : string;
  n_tasks : int;
}

let commitment_of_execution e =
  {
    root = Executor.root e;
    root_signature = Executor.root_signature e;
    cs_id = Executor.server_id e;
    n_tasks = List.length (Executor.service e);
  }

type challenge = { sample_indices : int list; warrant : Warrant.signed }

type failure =
  | Warrant_invalid
  | Missing_response of int
  | Signature_wrong of int
  | Computing_wrong of int
  | Root_wrong of int
  | Root_signature_wrong
  | Transport_timeout of string
  | Transport_tampered of string

type verdict = { valid : bool; failures : failure list }

let pp_failure fmt = function
  | Warrant_invalid -> Format.pp_print_string fmt "warrant invalid or expired"
  | Missing_response i -> Format.fprintf fmt "missing response for sample %d" i
  | Signature_wrong i -> Format.fprintf fmt "IsSignatureWrong(%d)" i
  | Computing_wrong i -> Format.fprintf fmt "IsComputingWrong(%d)" i
  | Root_wrong i -> Format.fprintf fmt "IsRootWrong(%d)" i
  | Root_signature_wrong -> Format.pp_print_string fmt "root signature invalid"
  | Transport_timeout peer ->
    Format.fprintf fmt "transport timeout: %s unresponsive" peer
  | Transport_tampered peer ->
    Format.fprintf fmt "transport tampering detected talking to %s" peer

let is_transport_failure = function
  | Transport_timeout _ | Transport_tampered _ -> true
  | Warrant_invalid | Missing_response _ | Signature_wrong _ | Computing_wrong _
  | Root_wrong _ | Root_signature_wrong ->
    false

let make_challenge ~drbg ~n_tasks ~samples ~warrant =
  Telemetry.with_span ~name:"audit.challenge" @@ fun () ->
  let samples = min samples n_tasks in
  Telemetry.add c_samples_drawn samples;
  let idx = Array.init n_tasks (fun i -> i) in
  for i = 0 to samples - 1 do
    let j = i + Sc_hash.Drbg.uniform_int drbg (n_tasks - i) in
    let tmp = idx.(i) in
    idx.(i) <- idx.(j);
    idx.(j) <- tmp
  done;
  { sample_indices = List.init samples (fun i -> idx.(i)); warrant }

(* Challenge / proof / verification each get their own span
   ([audit.challenge] / [audit.respond] / [audit.verify]) so the trace
   analyzer can attribute per-phase cost, the axis the auditing
   literature reports. *)
let respond pub ~now execution chal =
  Telemetry.with_span ~name:"audit.respond"
    ~attrs:[ "samples", string_of_int (List.length chal.sample_indices) ]
  @@ fun () ->
  if not (Warrant.verify pub ~now chal.warrant) then None
  else Some (List.map (Executor.respond execution) chal.sample_indices)

(* The three per-sample checks of Algorithm 1. *)
let check_sample pub ~verifier_key ~role ~owner ~commitment
    (resp : Executor.response) =
  let i = resp.Executor.task_index in
  let failures = ref [] in
  let fail f = failures := f :: !failures in
  Telemetry.incr c_samples_checked;
  (match resp.Executor.read with
  | None -> fail (Signature_wrong i)
  | Some { Sc_storage.Server.claimed; signed } ->
    (* 1. IsSignatureWrong: the designated signature must cover the
       claimed (file, position, data). *)
    if not (Signer.verify_block pub ~verifier_key ~role ~owner claimed signed)
    then fail (Signature_wrong i);
    (* 2. IsComputingWrong: recompute f_i on the claimed data. *)
    Telemetry.incr c_blocks_recomputed;
    (match Task.eval resp.Executor.request.Task.func claimed with
    | Some y when y = resp.Executor.result -> ()
    | Some _ | None -> fail (Computing_wrong i));
    (* Consistency: the block must be claimed at the audited position. *)
    if claimed.Sc_storage.Block.index <> resp.Executor.request.Task.position
    then fail (Signature_wrong i));
  (* 3. IsRootWrong: rebuild R* from the leaf and its siblings. *)
  let leaf =
    Executor.leaf_payload ~result:resp.Executor.result
      ~position:resp.Executor.request.Task.position
  in
  if not
       (Merkle.verify_proof ~root:commitment.root ~leaf_payload:leaf
          resp.Executor.proof)
  then fail (Root_wrong i);
  !failures

let verify pub ~verifier_key ~role ~owner commitment chal responses =
  Telemetry.incr c_rounds;
  Telemetry.with_span ~name:"audit.verify"
    ~attrs:[ "samples", string_of_int (List.length chal.sample_indices) ]
  @@ fun () ->
  (* Root commitment authenticity: Sig_CS(R). *)
  let root_failures =
    if
      Ibs.verify pub ~signer:commitment.cs_id
        ~msg:("root:" ^ commitment.root)
        commitment.root_signature
    then []
    else [ Root_signature_wrong ]
  in
  let by_index =
    List.fold_left
      (fun acc (r : Executor.response) -> (r.Executor.task_index, r) :: acc)
      [] responses
  in
  (* Per-sample recomputation and signature checks are independent:
     fan them out across the domain pool.  Failures keep the sample
     order of the challenge, so verdicts are identical at any domain
     count. *)
  let per_sample =
    Sc_parallel.parallel_map
      (fun i ->
        match List.assoc_opt i by_index with
        | None -> [ Missing_response i ]
        | Some resp ->
          check_sample pub ~verifier_key ~role ~owner ~commitment resp)
      chal.sample_indices
  in
  let failures = root_failures @ List.concat per_sample in
  { valid = failures = []; failures }
