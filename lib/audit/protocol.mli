(** The Probabilistic Sampling Cloud Computation Auditing Protocol —
    Algorithm 1 and the surrounding challenge/response flow (§V-D).

    The DA (or the user) samples t sub-task indices; for each response
    it checks, in order:
    + the data signature (right data, right position — eq. 7),
    + the recomputation y_i = f_i(x_{p_i}),
    + the Merkle root reconstructed from the sibling path,
    and finally the server's signature on the committed root. *)

type commitment = {
  root : string;
  root_signature : Sc_ibc.Ibs.t;
  cs_id : string; (* who signed the root *)
  n_tasks : int;
}

val commitment_of_execution : Sc_compute.Executor.execution -> commitment

type challenge = {
  sample_indices : int list;
  warrant : Sc_ibc.Warrant.signed;
}

type failure =
  | Warrant_invalid
  | Missing_response of int
  | Signature_wrong of int (* IsSignatureWrong(τ) *)
  | Computing_wrong of int (* IsComputingWrong(τ) *)
  | Root_wrong of int (* IsRootWrong(R(τ)) *)
  | Root_signature_wrong
  | Transport_timeout of string
      (* the named peer exhausted its retry budget without answering *)
  | Transport_tampered of string
      (* retries exhausted and the channel to the peer kept mangling
         messages — detectable in-flight corruption *)

type verdict = { valid : bool; failures : failure list }

val pp_failure : Format.formatter -> failure -> unit

val is_transport_failure : failure -> bool
(** True for the channel-level blames ([Transport_timeout],
    [Transport_tampered]); false for every cryptographic check. *)

val make_challenge :
  drbg:Sc_hash.Drbg.t ->
  n_tasks:int ->
  samples:int ->
  warrant:Sc_ibc.Warrant.signed ->
  challenge
(** Samples distinct indices uniformly.  [samples] is clamped to
    [n_tasks]. *)

val respond :
  Sc_ibc.Setup.public ->
  now:float ->
  Sc_compute.Executor.execution ->
  challenge ->
  Sc_compute.Executor.response list option
(** Server side: checks the warrant (expiry included) and returns the
    sampled responses; [None] when the warrant is rejected. *)

val verify :
  Sc_ibc.Setup.public ->
  verifier_key:Sc_ibc.Setup.identity_key ->
  role:[ `Cs | `Da ] ->
  owner:string ->
  commitment ->
  challenge ->
  Sc_compute.Executor.response list ->
  verdict
(** Algorithm 1.  [role] selects which designated signature component
    the verifier can open (the DA uses [`Da]).  All sampled checks are
    run — the verdict accumulates every failure rather than stopping
    at the first, which the simulator uses for diagnosis. *)
