(** Batched audit verification (§VI).

    Functionally equivalent to {!Protocol.verify} but all sampled
    signature checks — across sub-tasks, and across *executions from
    different users* — collapse into one aggregate designated-verifier
    equation, so the pairing count is constant in the batch size. *)

type job = {
  owner : string; (* whose data the execution reads *)
  commitment : Protocol.commitment;
  challenge : Protocol.challenge;
  responses : Sc_compute.Executor.response list;
}

val verify_jobs :
  Sc_ibc.Setup.public ->
  verifier_key:Sc_ibc.Setup.identity_key ->
  role:[ `Cs | `Da ] ->
  job list ->
  Protocol.verdict
(** One aggregated signature verification for the whole batch; Merkle
    and recomputation checks run per sample as in Algorithm 1.  When
    the aggregate rejects, the batch falls back to individual checks
    to attribute blame, so the failure list still names indices. *)

val flag_unresponsive :
  Protocol.verdict ->
  timed_out:string list ->
  tampered:string list ->
  Protocol.verdict
(** Merge channel outcomes into a batch verdict: each listed server id
    contributes a typed [Transport_timeout] / [Transport_tampered]
    failure and invalidates the verdict, so unresponsive servers are
    flagged exactly like failed verifications. *)

val pairings_used :
  Sc_ibc.Setup.public ->
  verifier_key:Sc_ibc.Setup.identity_key ->
  role:[ `Cs | `Da ] ->
  job list ->
  Protocol.verdict * int
(** Runs {!verify_jobs} and reports how many pairings it evaluated —
    the quantity Table II and Figure 5 compare. *)
