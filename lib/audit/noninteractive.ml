module Executor = Sc_compute.Executor

type proof = {
  commitment : Protocol.commitment;
  epoch : int;
  responses : Executor.response list;
}

let derive_indices ~root ~epoch ~owner ~n_tasks ~samples =
  let samples = min samples n_tasks in
  (* Counter-mode expansion of the transcript seed into a stream of
     candidate indices; duplicates are skipped so the sample is a
     uniform-ish draw without replacement. *)
  (* Canonical framing with distinct domain tags: the old ":"-joined
     transcript let (root, epoch, owner) tuples collide across part
     boundaries, and the counter blocks could alias the seed
     derivation itself. *)
  let seed =
    Sc_hash.Encode.digest [ "ni-audit"; root; string_of_int epoch; owner ]
  in
  let chosen = Hashtbl.create samples in
  let out = ref [] in
  let counter = ref 0 in
  while Hashtbl.length chosen < samples do
    let block =
      Sc_hash.Encode.digest [ "ni-audit-block"; seed; string_of_int !counter ]
    in
    incr counter;
    (* 8 four-byte candidates per digest *)
    let i = ref 0 in
    while !i < 8 && Hashtbl.length chosen < samples do
      let off = 4 * !i in
      let v =
        (Char.code block.[off] lsl 24)
        lor (Char.code block.[off + 1] lsl 16)
        lor (Char.code block.[off + 2] lsl 8)
        lor Char.code block.[off + 3]
      in
      let idx = v mod n_tasks in
      if not (Hashtbl.mem chosen idx) then begin
        Hashtbl.add chosen idx ();
        out := idx :: !out
      end;
      incr i
    done
  done;
  List.rev !out

let prove _pub ~owner ~epoch ~samples execution =
  let commitment = Protocol.commitment_of_execution execution in
  let indices =
    derive_indices ~root:commitment.Protocol.root ~epoch ~owner
      ~n_tasks:commitment.Protocol.n_tasks ~samples
  in
  { commitment; epoch; responses = List.map (Executor.respond execution) indices }

let verify pub ~verifier_key ~role ~owner ~expected_epoch ~samples proof =
  if proof.epoch <> expected_epoch then
    { Protocol.valid = false; failures = [ Protocol.Warrant_invalid ] }
  else begin
    let indices =
      derive_indices ~root:proof.commitment.Protocol.root ~epoch:proof.epoch
        ~owner ~n_tasks:proof.commitment.Protocol.n_tasks ~samples
    in
    let provided =
      List.map (fun (r : Executor.response) -> r.Executor.task_index) proof.responses
    in
    if List.sort compare provided <> List.sort compare indices then
      {
        Protocol.valid = false;
        failures = List.map (fun i -> Protocol.Missing_response i) indices;
      }
    else begin
      (* Reuse Algorithm 1's verification with a synthetic challenge
         carrying the derived indices; the warrant is not part of the
         non-interactive flow, so verification goes through the
         lower-level checks directly. *)
      let run_algorithm1_checks () =
        let failures = ref [] in
        let fail f = failures := f :: !failures in
        if not
             (Sc_ibc.Ibs.verify pub ~signer:proof.commitment.Protocol.cs_id
                ~msg:("root:" ^ proof.commitment.Protocol.root)
                proof.commitment.Protocol.root_signature)
        then fail Protocol.Root_signature_wrong;
        List.iter
          (fun (resp : Executor.response) ->
            let i = resp.Executor.task_index in
            (match resp.Executor.read with
            | None -> fail (Protocol.Signature_wrong i)
            | Some { Sc_storage.Server.claimed; signed } ->
              if not
                   (Sc_storage.Signer.verify_block pub ~verifier_key ~role
                      ~owner claimed signed)
              then fail (Protocol.Signature_wrong i);
              (match
                 Sc_compute.Task.eval resp.Executor.request.Sc_compute.Task.func
                   claimed
               with
              | Some y when y = resp.Executor.result -> ()
              | Some _ | None -> fail (Protocol.Computing_wrong i));
              if
                claimed.Sc_storage.Block.index
                <> resp.Executor.request.Sc_compute.Task.position
              then fail (Protocol.Signature_wrong i));
            let leaf =
              Executor.leaf_payload ~result:resp.Executor.result
                ~position:resp.Executor.request.Sc_compute.Task.position
            in
            if not
                 (Sc_merkle.Tree.verify_proof
                    ~root:proof.commitment.Protocol.root ~leaf_payload:leaf
                    resp.Executor.proof)
            then fail (Protocol.Root_wrong i))
          proof.responses;
        { Protocol.valid = !failures = []; failures = List.rev !failures }
      in
      run_algorithm1_checks ()
    end
  end
