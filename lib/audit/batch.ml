module Ibs = Sc_ibc.Ibs
module Agg = Sc_ibc.Agg
module Merkle = Sc_merkle.Tree
module Executor = Sc_compute.Executor
module Task = Sc_compute.Task
module Signer = Sc_storage.Signer
module Block = Sc_storage.Block
module Telemetry = Sc_telemetry.Telemetry

let c_batch_rounds = Telemetry.counter "audit.batch.rounds"
let c_batch_jobs = Telemetry.counter "audit.batch.jobs"

type job = {
  owner : string;
  commitment : Protocol.commitment;
  challenge : Protocol.challenge;
  responses : Executor.response list;
}

(* Non-signature checks for one response (recompute + root + position
   claim); signature material is returned for aggregation. *)
let non_signature_checks job (resp : Executor.response) =
  let i = resp.Executor.task_index in
  let failures = ref [] in
  let entry = ref None in
  (match resp.Executor.read with
  | None -> failures := Protocol.Signature_wrong i :: !failures
  | Some { Sc_storage.Server.claimed; signed } ->
    (match Task.eval resp.Executor.request.Task.func claimed with
    | Some y when y = resp.Executor.result -> ()
    | Some _ | None -> failures := Protocol.Computing_wrong i :: !failures);
    if claimed.Block.index <> resp.Executor.request.Task.position
    then failures := Protocol.Signature_wrong i :: !failures;
    entry :=
      Some
        {
          Agg.signer = job.owner;
          msg = Block.signing_message claimed;
          dvs = Signer.dvs_for `Da signed;
        });
  let leaf =
    Executor.leaf_payload ~result:resp.Executor.result
      ~position:resp.Executor.request.Task.position
  in
  if not
       (Merkle.verify_proof ~root:job.commitment.Protocol.root
          ~leaf_payload:leaf resp.Executor.proof)
  then failures := Protocol.Root_wrong i :: !failures;
  !failures, !entry

let dvs_entry role job (resp : Executor.response) =
  match resp.Executor.read with
  | None -> None
  | Some { Sc_storage.Server.claimed; signed } ->
    Some
      {
        Agg.signer = job.owner;
        msg = Block.signing_message claimed;
        dvs = Signer.dvs_for role signed;
      }

let verify_jobs pub ~verifier_key ~role jobs =
  Telemetry.incr c_batch_rounds;
  Telemetry.add c_batch_jobs (List.length jobs);
  Telemetry.with_span ~name:"audit.batch_verify"
    ~attrs:[ "jobs", string_of_int (List.length jobs) ]
  @@ fun () ->
  (* Root commitment signatures across all jobs are checked with one
     batched multi-pairing equation; only when that fails are jobs
     re-checked individually to attribute blame. *)
  let root_sig_of job =
    ( job.commitment.Protocol.cs_id,
      "root:" ^ job.commitment.Protocol.root,
      job.commitment.Protocol.root_signature )
  in
  let root_failures =
    if Ibs.verify_batch pub (List.map root_sig_of jobs) then []
    else
      List.filter_map
        (fun job ->
          let signer, msg, s = root_sig_of job in
          if Ibs.verify pub ~signer ~msg s then None
          else Some Protocol.Root_signature_wrong)
        jobs
  in
  (* Per-job recompute/root/position checks are independent: fan the
     jobs out across the domain pool.  Signature material is only
     *collected* here; the aggregate equation below (and the
     sequential, deterministic blame fallback) is unchanged, and both
     failure and entry order match the sequential run exactly. *)
  let per_job =
    Sc_parallel.parallel_map
      (fun job ->
        let by_index =
          List.fold_left
            (fun acc (r : Executor.response) ->
              (r.Executor.task_index, r) :: acc)
            [] job.responses
        in
        List.map
          (fun i ->
            match List.assoc_opt i by_index with
            | None -> [ Protocol.Missing_response i ], None
            | Some resp ->
              let fs, _ = non_signature_checks job resp in
              let entry =
                Option.map
                  (fun e -> job, resp, e)
                  (dvs_entry role job resp)
              in
              fs, entry)
          job.challenge.Protocol.sample_indices)
      jobs
  in
  let flat = List.concat per_job in
  let check_failures = List.concat_map fst flat in
  let entries = List.rev (List.filter_map snd flat) in
  (* One aggregate equation covers every sampled signature. *)
  let agg_entries = List.map (fun (_, _, e) -> e) entries in
  let blame_failures =
    if Agg.verify_batch pub ~verifier_key agg_entries then []
    else begin
      (* Attribute blame: re-check signatures individually. *)
      let blamed =
        List.filter_map
          (fun (job, (resp : Executor.response), _) ->
            match resp.Executor.read with
            | None -> None
            | Some { Sc_storage.Server.claimed; signed } ->
              if
                Signer.verify_block pub ~verifier_key ~role ~owner:job.owner
                  claimed signed
              then None
              else Some (Protocol.Signature_wrong resp.Executor.task_index))
          entries
      in
      (* A batch that fails aggregation but passes every individual
         check indicates an inconsistent aggregate (e.g. a mauled Σ):
         record it against the whole batch. *)
      if blamed = [] && root_failures = [] && check_failures = [] then
        [ Protocol.Root_signature_wrong ]
      else blamed
    end
  in
  let failures = root_failures @ check_failures @ blame_failures in
  { Protocol.valid = failures = []; failures }

(* Fold channel-level outcomes into a batch verdict: servers that
   never produced a usable audit round are blamed exactly like failed
   verifications, so the caller's decision logic does not change. *)
let flag_unresponsive verdict ~timed_out ~tampered =
  let extra =
    List.map (fun id -> Protocol.Transport_timeout id) timed_out
    @ List.map (fun id -> Protocol.Transport_tampered id) tampered
  in
  if extra = [] then verdict
  else
    {
      Protocol.valid = false;
      failures = extra @ verdict.Protocol.failures;
    }

let pairings_used pub ~verifier_key ~role jobs =
  let before = Sc_pairing.Tate.pairings_performed () in
  let verdict = verify_jobs pub ~verifier_key ~role jobs in
  verdict, Sc_pairing.Tate.pairings_performed () - before
