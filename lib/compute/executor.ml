module Server = Sc_storage.Server
module Setup = Sc_ibc.Setup
module Ibs = Sc_ibc.Ibs
module Merkle = Sc_merkle.Tree
module Telemetry = Sc_telemetry.Telemetry

let c_executions = Telemetry.counter "compute.executions"
let c_tasks = Telemetry.counter "compute.tasks"
let c_responses = Telemetry.counter "compute.responses"

type behaviour =
  | Honest
  | Guess_fraction of float * int
  | Skip_fraction of float
  | Wrong_position_fraction of float
  | Commit_garbage_fraction of float

type response = {
  task_index : int;
  request : Task.request;
  read : Server.read_result option;
  result : int;
  proof : Merkle.proof;
}

type execution = {
  service_arr : Task.request array;
  reads : Server.read_result option array;

  answers : int array; (* values returned at audit time *)
  tree : Merkle.t;
  root_signature : Ibs.t;
  cs_id : string;
}

let computing_confidence = function
  | Honest -> 1.0
  | Guess_fraction (f, _)
  | Skip_fraction f
  | Wrong_position_fraction f
  | Commit_garbage_fraction f ->
    1.0 -. max 0.0 (min 1.0 f)

let leaf_payload ~result ~position = Printf.sprintf "%d|%d" result position

let cheat_decision ~drbg fraction = Sc_hash.Drbg.float drbg < fraction

let run pub ~cs_key ~server ~behaviour ~drbg ~owner ~file requests =
  ignore owner;
  let service_arr = Array.of_list requests in
  let n = Array.length service_arr in
  if n = 0 then invalid_arg "Executor.run: empty service";
  Telemetry.incr c_executions;
  Telemetry.add c_tasks n;
  Telemetry.with_span ~name:"compute.execute"
    ~attrs:[ "tasks", string_of_int n ]
  @@ fun () ->
  let reads = Array.make n None in
  let committed = Array.make n 0 in
  let answers = Array.make n 0 in
  let honest_value i (req : Task.request) =
    let r = Server.read server ~file ~index:req.Task.position in
    reads.(i) <- r;
    match r with
    | None -> 0
    | Some { claimed; _ } -> Option.value ~default:0 (Task.eval req.Task.func claimed)
  in
  Array.iteri
    (fun i req ->
      match behaviour with
      | Honest ->
        let y = honest_value i req in
        committed.(i) <- y;
        answers.(i) <- y
      | Guess_fraction (f, range) ->
        if cheat_decision ~drbg f then begin
          (* No read, no computation: a guess straight into both the
             commitment and the answer. *)
          reads.(i) <- Server.read server ~file ~index:req.Task.position;
          let y = Sc_hash.Drbg.uniform_int drbg (max 1 range) in
          committed.(i) <- y;
          answers.(i) <- y
        end
        else begin
          let y = honest_value i req in
          committed.(i) <- y;
          answers.(i) <- y
        end
      | Skip_fraction f ->
        if cheat_decision ~drbg f then begin
          reads.(i) <- Server.read server ~file ~index:req.Task.position;
          committed.(i) <- 0;
          answers.(i) <- 0
        end
        else begin
          let y = honest_value i req in
          committed.(i) <- y;
          answers.(i) <- y
        end
      | Wrong_position_fraction f ->
        if cheat_decision ~drbg f then begin
          (* Use another (cheaper) position's block but claim the
             requested one, forwarding the wrong signature. *)
          let other =
            match Server.file_size server file with
            | Some size when size > 1 -> (req.Task.position + 1) mod size
            | Some _ | None -> req.Task.position
          in
          (match Server.read server ~file ~index:other with
          | None -> reads.(i) <- None
          | Some { claimed; signed } ->
            let forged =
              { claimed with Sc_storage.Block.index = req.Task.position }
            in
            reads.(i) <- Some { Server.claimed = forged; signed });
          let y =
            match reads.(i) with
            | Some { claimed; _ } ->
              Option.value ~default:0 (Task.eval req.Task.func claimed)
            | None -> 0
          in
          committed.(i) <- y;
          answers.(i) <- y
        end
        else begin
          let y = honest_value i req in
          committed.(i) <- y;
          answers.(i) <- y
        end
      | Commit_garbage_fraction f ->
        let y = honest_value i req in
        answers.(i) <- y;
        if cheat_decision ~drbg f then
          committed.(i) <- y + 1 + Sc_hash.Drbg.uniform_int drbg 1000
        else committed.(i) <- y)
    service_arr;
  let leaves =
    Array.to_list
      (Array.mapi
         (fun i req ->
           leaf_payload ~result:committed.(i) ~position:req.Task.position)
         service_arr)
  in
  let tree = Merkle.build leaves in
  let root_signature =
    Ibs.sign pub cs_key
      ~bytes_source:(Sc_hash.Drbg.bytes_source drbg)
      ("root:" ^ Merkle.root tree)
  in
  { service_arr; reads; answers; tree; root_signature; cs_id = cs_key.Setup.id }

let results e = Array.copy e.answers
let root e = Merkle.root e.tree
let root_signature e = e.root_signature
let server_id e = e.cs_id
let service e = Array.to_list e.service_arr

let respond e i =
  if i < 0 || i >= Array.length e.service_arr
  then invalid_arg "Executor.respond: index out of bounds";
  Telemetry.incr c_responses;
  {
    task_index = i;
    request = e.service_arr.(i);
    read = e.reads.(i);
    result = e.answers.(i);
    proof = Merkle.proof e.tree i;
  }
