(** Fixed-size domain pool for the embarrassingly parallel hot paths
    (stdlib-only: [Domain] + [Mutex]/[Condition]).

    The pool holds [domain_count () - 1] worker domains, spawned
    lazily on the first parallel call; the submitting domain helps run
    queued tasks while it waits, so nested fan-out cannot deadlock.
    With a domain count of 1 every entry point degenerates to the
    sequential [List.map]/[Array.map]/inline loop — no pool, no locks
    — and at any higher count the *results* are identical to the
    sequential run (outputs are position-addressed; only the schedule
    changes).  Functions passed in must therefore be safe to run on
    any domain: pure, or racing only on the (mutex-guarded) telemetry
    registry. *)

val domain_count : unit -> int
(** Configured domain count (workers + the calling domain).  Defaults
    to [max 1 (Domain.recommended_domain_count () - 1)]; the
    [SECCLOUD_DOMAINS] environment variable (an integer >= 1)
    overrides the default.  [1] means fully sequential. *)

val set_domain_count : int -> unit
(** Override the domain count programmatically (clamped to >= 1).
    Call from the main domain, between parallel sections.  Lowering
    the count below the number of already-spawned workers leaves the
    extra workers idle; results are unaffected either way. *)

val parallel_map : ?min_chunk:int -> ('a -> 'b) -> 'a list -> 'b list
(** Order-preserving map; equals [List.map f xs] at every domain
    count.  [min_chunk] (default 1) is the minimum number of elements
    per task — raise it when [f] is cheap. *)

val parallel_iter : ?min_chunk:int -> ('a -> unit) -> 'a list -> unit
(** Effect-only fan-out; per-element effects must be independent (or
    synchronized by the callee, as telemetry counters are). *)

val map_array : ?min_chunk:int -> ('a -> 'b) -> 'a array -> 'b array
(** [Array.map], fanned out in chunks. *)

val iter_ranges : ?min_chunk:int -> int -> (int -> int -> unit) -> unit
(** [iter_ranges n body] partitions [0, n) into contiguous chunks of
    at least [min_chunk] indices and calls [body lo hi] (hi exclusive)
    for each, in parallel.  The partition covers [0, n) exactly once;
    with one domain it is the single call [body 0 n]. *)

val run_tasks : (unit -> unit) list -> unit
(** Run independent thunks across the pool; returns when all are done.
    The first exception raised by a thunk is re-raised in the caller
    after the batch drains. *)
