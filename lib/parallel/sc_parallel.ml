(* Fixed-size domain pool for the embarrassingly parallel hot paths
   (Merkle level construction, per-sample audit checks, Monte-Carlo
   trials, shard execution).  Stdlib-only: Domain + Mutex/Condition,
   no domainslib.

   Design notes:

   - One process-wide pool.  Workers are spawned lazily on the first
     parallel call and never exit; they block on a condition variable
     when the queue is empty.  Process exit does not wait for them.
   - The submitting domain *helps*: while waiting for its batch it
     pops and runs queued tasks.  This makes nested fan-out (a
     parallel audit whose per-job verification builds Merkle trees in
     parallel) deadlock-free — every waiter makes progress whenever
     the queue is non-empty, and a single condition variable is
     broadcast on both task arrival and batch completion so no waiter
     sleeps through runnable work.
   - Degenerate sequential mode: with a domain count of 1 (the default
     on small machines) every entry point runs inline in the caller,
     touching neither the pool nor any lock, so tier-1 behavior is
     bit-identical by default.  Results are position-addressed, so at
     any domain count the output of [parallel_map]/[map_array] equals
     the sequential map — only the schedule changes. *)

let parse_env () =
  match Sys.getenv_opt "SECCLOUD_DOMAINS" with
  | None -> None
  | Some s ->
    (match int_of_string_opt (String.trim s) with
    | Some n when n >= 1 -> Some n
    | Some _ | None -> None)

let default_count () =
  match parse_env () with
  | Some n -> n
  | None -> max 1 (Domain.recommended_domain_count () - 1)

(* 0 = not yet initialised; read/written from the main domain (workers
   never reconfigure the pool). *)
let configured = ref 0

let domain_count () =
  if !configured < 1 then configured := default_count ();
  !configured

let set_domain_count n = configured := max 1 n

type pool = {
  m : Mutex.t;
  cv : Condition.t; (* task arrival AND batch completion *)
  q : (unit -> unit) Queue.t;
  mutable spawned : int;
}

let pool =
  { m = Mutex.create (); cv = Condition.create (); q = Queue.create ();
    spawned = 0 }

let worker () =
  let rec loop () =
    Mutex.lock pool.m;
    let task =
      let rec take () =
        match Queue.take_opt pool.q with
        | Some t -> t
        | None ->
          Condition.wait pool.cv pool.m;
          take ()
      in
      take ()
    in
    Mutex.unlock pool.m;
    task ();
    loop ()
  in
  loop ()

let ensure_workers () =
  let want = domain_count () - 1 in
  if pool.spawned < want then begin
    Mutex.lock pool.m;
    while pool.spawned < want do
      ignore (Domain.spawn worker : unit Domain.t);
      pool.spawned <- pool.spawned + 1
    done;
    Mutex.unlock pool.m
  end

(* Run every thunk, distributing across the pool, and return once all
   have finished.  The first exception (if any) is re-raised in the
   caller after the whole batch has drained.

   Trace propagation: the submitter's span context is captured at
   submission and installed as the ambient remote context around each
   task, so spans opened on a worker domain attach to the submitting
   span's trace instead of starting unrelated trees.  (On the helping
   submitter the install is a no-op — its own span stack already
   provides the parent.) *)
let run_tasks thunks =
  match thunks with
  | [] -> ()
  | [ t ] -> t ()
  | thunks ->
    ensure_workers ();
    let ctx = Sc_telemetry.Telemetry.current_context () in
    let remaining = ref (List.length thunks) in
    let failure = ref None in
    let wrap f () =
      (try Sc_telemetry.Telemetry.with_context ctx f
       with e ->
         let bt = Printexc.get_raw_backtrace () in
         Mutex.lock pool.m;
         if !failure = None then failure := Some (e, bt);
         Mutex.unlock pool.m);
      Mutex.lock pool.m;
      decr remaining;
      if !remaining = 0 then Condition.broadcast pool.cv;
      Mutex.unlock pool.m
    in
    Mutex.lock pool.m;
    List.iter (fun f -> Queue.add (wrap f) pool.q) thunks;
    Condition.broadcast pool.cv;
    let rec drain () =
      if !remaining > 0 then begin
        match Queue.take_opt pool.q with
        | Some task ->
          Mutex.unlock pool.m;
          task ();
          Mutex.lock pool.m;
          drain ()
        | None ->
          Condition.wait pool.cv pool.m;
          drain ()
      end
    in
    drain ();
    Mutex.unlock pool.m;
    (match !failure with
    | Some (e, bt) -> Printexc.raise_with_backtrace e bt
    | None -> ())

(* Chunked index fan-out over [0, n): [body lo hi] covers [lo, hi).
   Chunks are at least [min_chunk] wide so tiny workloads never pay
   task overhead; with one domain the whole range runs inline. *)
let iter_ranges ?(min_chunk = 1) n body =
  if n > 0 then begin
    let d = domain_count () in
    let max_chunks = if min_chunk <= 1 then n else max 1 (n / min_chunk) in
    let k = min (4 * d) max_chunks in
    if d <= 1 || k <= 1 then body 0 n
    else
      run_tasks
        (List.init k (fun i ->
             let lo = i * n / k and hi = (i + 1) * n / k in
             fun () -> body lo hi))
  end

let map_array ?min_chunk f arr =
  let n = Array.length arr in
  if n = 0 then [||]
  else if domain_count () <= 1 then Array.map f arr
  else begin
    let out = Array.make n None in
    iter_ranges ?min_chunk n (fun lo hi ->
        for i = lo to hi - 1 do
          out.(i) <- Some (f arr.(i))
        done);
    Array.map (function Some v -> v | None -> assert false) out
  end

let parallel_map ?min_chunk f xs =
  if domain_count () <= 1 then List.map f xs
  else Array.to_list (map_array ?min_chunk f (Array.of_list xs))

let parallel_iter ?min_chunk f xs =
  if domain_count () <= 1 then List.iter f xs
  else begin
    let arr = Array.of_list xs in
    iter_ranges ?min_chunk (Array.length arr) (fun lo hi ->
        for i = lo to hi - 1 do
          f arr.(i)
        done)
  end
