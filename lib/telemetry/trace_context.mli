(** Distributed-trace identity: 128-bit trace id + parent span id.

    A context names the span a new child should attach to, across
    domain and transport boundaries.  Trace ids are deterministic
    (atomic counter through a 64-bit mixer — no wall clock, no
    [Random]) so seeded campaigns stay reproducible, and the all-zero
    id is reserved as invalid. *)

type t = {
  trace : string;  (** exactly {!trace_bytes} raw bytes, never all-zero *)
  span : int;  (** id of the propagating parent span *)
}

val trace_bytes : int
(** Raw size of a trace id (16). *)

val ctx_bytes : int
(** Raw size of {!to_bytes} output: trace id + 8-byte span id (24). *)

val fresh_trace : unit -> string
(** A new process-unique trace id ({!trace_bytes} raw bytes). *)

val is_valid_trace : string -> bool
val to_hex : string -> string

(** {2 Ambient remote context}

    Domain-local: installing a context on one domain never affects
    another.  {!Span.with_span} adopts the ambient context as parent
    when its local span stack is empty. *)

val current : unit -> t option
val with_remote : t option -> (unit -> 'a) -> 'a
(** Install [ctx] for the duration of the thunk (exception-safe,
    restores the previous ambient context). *)

(** {2 Wire form} — fixed-width, unauthenticated (framing adds its own
    checksum; see [Seccloud.Envelope]). *)

val to_bytes : t -> string
(** [ctx_bytes] bytes: trace id followed by the span id, big-endian. *)

val of_bytes : string -> t option
(** Inverse of {!to_bytes}; [None] on wrong length, all-zero trace id
    or out-of-range span id. *)
