(* Minimal JSON emission — just enough for the metric and span
   exporters, so the library stays dependency-free. *)

let escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let str s = "\"" ^ escape s ^ "\""
let int i = string_of_int i

let float f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else Printf.sprintf "%.6g" f

let obj fields =
  "{" ^ String.concat "," (List.map (fun (k, v) -> str k ^ ":" ^ v) fields) ^ "}"

let arr items = "[" ^ String.concat "," items ^ "]"

(* --- parsing ------------------------------------------------------ *)

(* Recursive-descent parser for the subset the exporters emit (which
   is standard JSON); enough for the trace analyzer to read its own
   JSONL back without an external dependency. *)

type value =
  | Null
  | Bool of bool
  | Number of float
  | String of string
  | Array of value list
  | Object of (string * value) list

exception Parse_error of string

let parse_exn (s : string) : value =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %C" c)
  in
  let literal word v =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      v
    end
    else fail ("expected " ^ word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      match s.[!pos] with
      | '"' -> advance ()
      | '\\' ->
        advance ();
        (if !pos >= n then fail "unterminated escape";
         (match s.[!pos] with
         | '"' -> Buffer.add_char buf '"'
         | '\\' -> Buffer.add_char buf '\\'
         | '/' -> Buffer.add_char buf '/'
         | 'n' -> Buffer.add_char buf '\n'
         | 'r' -> Buffer.add_char buf '\r'
         | 't' -> Buffer.add_char buf '\t'
         | 'b' -> Buffer.add_char buf '\b'
         | 'f' -> Buffer.add_char buf '\012'
         | 'u' ->
           if !pos + 4 >= n then fail "short \\u escape";
           let hex = String.sub s (!pos + 1) 4 in
           let code =
             match int_of_string_opt ("0x" ^ hex) with
             | Some c -> c
             | None -> fail "bad \\u escape"
           in
           (* Exporters only escape control characters; decode the
              ASCII range and map anything else to '?'. *)
           if code < 0x80 then Buffer.add_char buf (Char.chr code)
           else Buffer.add_char buf '?';
           pos := !pos + 4
         | _ -> fail "bad escape");
         advance ());
        go ()
      | c ->
        Buffer.add_char buf c;
        advance ();
        go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && is_num_char s.[!pos] do
      advance ()
    done;
    if !pos = start then fail "expected number";
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> f
    | None -> fail "bad number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Object []
      end
      else begin
        let fields = ref [] in
        let rec members () =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          fields := (k, v) :: !fields;
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            members ()
          | Some '}' -> advance ()
          | _ -> fail "expected ',' or '}'"
        in
        members ();
        Object (List.rev !fields)
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        Array []
      end
      else begin
        let items = ref [] in
        let rec elements () =
          let v = parse_value () in
          items := v :: !items;
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            elements ()
          | Some ']' -> advance ()
          | _ -> fail "expected ',' or ']'"
        in
        elements ();
        Array (List.rev !items)
      end
    | Some '"' -> String (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> Number (parse_number ())
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

let parse s = match parse_exn s with v -> Some v | exception Parse_error _ -> None

let member k = function
  | Object fields -> List.assoc_opt k fields
  | _ -> None

let to_float = function
  | Some (Number f) -> Some f
  | _ -> None

let to_string = function
  | Some (String s) -> Some s
  | _ -> None
