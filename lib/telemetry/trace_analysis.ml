(* Offline analysis of the span JSONL sink: trace-tree reconstruction,
   per-protocol latency stats (exact quantiles — the raw durations are
   on disk, no bucketing error here), per-layer self-time attribution,
   critical paths, and a small declarative SLO checker.

   The analyzer is deliberately tolerant: lines that don't parse as
   span objects are counted and skipped, spans whose parent never
   closed (leaked/open spans) are reported as orphans rather than
   crashing the tree build. *)

type span = {
  id : int;
  trace : string; (* hex trace id *)
  parent : int option;
  name : string;
  depth : int;
  start_us : float;
  dur_us : float;
  error : bool;
  attrs : (string * string) list;
}

let span_of_line line =
  match Json.parse line with
  | None -> None
  | Some j -> (
    let f k = Json.to_float (Json.member k j) in
    let s k = Json.to_string (Json.member k j) in
    match f "id", s "name", s "trace", f "start_us", f "dur_us" with
    | Some id, Some name, Some trace, Some start_us, Some dur_us ->
      let parent =
        match Json.member "parent" j with
        | Some (Json.Number p) -> Some (int_of_float p)
        | _ -> None
      in
      let depth =
        match f "depth" with Some d -> int_of_float d | None -> 0
      in
      let attrs =
        match Json.member "attrs" j with
        | Some (Json.Object fields) ->
          List.filter_map
            (fun (k, v) ->
              match v with Json.String s -> Some (k, s) | _ -> None)
            fields
        | _ -> []
      in
      let error = List.assoc_opt "error" attrs = Some "1" in
      Some
        { id = int_of_float id; trace; parent; name; depth; start_us;
          dur_us; error; attrs }
    | _ -> None)

let load path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let spans = ref [] and skipped = ref 0 in
      (try
         while true do
           let line = input_line ic in
           if String.trim line <> "" then
             match span_of_line line with
             | Some sp -> spans := sp :: !spans
             | None -> incr skipped
         done
       with End_of_file -> ());
      List.rev !spans, !skipped)

(* --- trace trees -------------------------------------------------- *)

type node = { span : span; mutable children : node list }

type trace = {
  trace_id : string;
  roots : node list; (* parent = None *)
  orphans : span list; (* parent id missing from this trace *)
  size : int;
}

let assemble spans =
  let by_trace : (string, span list ref) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun sp ->
      match Hashtbl.find_opt by_trace sp.trace with
      | Some l -> l := sp :: !l
      | None -> Hashtbl.add by_trace sp.trace (ref [ sp ]))
    spans;
  Hashtbl.fold
    (fun trace_id l acc ->
      let spans = List.rev !l in
      let nodes : (int, node) Hashtbl.t = Hashtbl.create 64 in
      List.iter
        (fun sp -> Hashtbl.replace nodes sp.id { span = sp; children = [] })
        spans;
      let roots = ref [] and orphans = ref [] in
      List.iter
        (fun sp ->
          let node = Hashtbl.find nodes sp.id in
          match sp.parent with
          | None -> roots := node :: !roots
          | Some p -> (
            match Hashtbl.find_opt nodes p with
            | Some pn -> pn.children <- node :: pn.children
            | None -> orphans := sp :: !orphans))
        spans;
      let rec order n =
        n.children <-
          List.sort
            (fun a b -> compare a.span.start_us b.span.start_us)
            n.children;
        List.iter order n.children
      in
      List.iter order !roots;
      { trace_id; roots = List.rev !roots; orphans = List.rev !orphans;
        size = List.length spans }
      :: acc)
    by_trace []
  |> List.sort (fun a b -> compare b.size a.size)

(* --- per-name stats (exact quantiles from raw durations) ---------- *)

type name_stats = {
  sname : string;
  count : int;
  errors : int;
  mean_us : float;
  p50_us : float;
  p90_us : float;
  p99_us : float;
  p999_us : float;
  max_dur_us : float;
  total_us : float;
}

let exact_quantile sorted p =
  let n = Array.length sorted in
  if n = 0 then Float.nan
  else begin
    let rank = int_of_float (Float.ceil (p *. float_of_int n)) in
    let rank = if rank < 1 then 1 else if rank > n then n else rank in
    sorted.(rank - 1)
  end

let by_name spans =
  let tbl : (string, float list ref * int ref) Hashtbl.t =
    Hashtbl.create 32
  in
  List.iter
    (fun sp ->
      let durs, errs =
        match Hashtbl.find_opt tbl sp.name with
        | Some cell -> cell
        | None ->
          let cell = ref [], ref 0 in
          Hashtbl.add tbl sp.name cell;
          cell
      in
      durs := sp.dur_us :: !durs;
      if sp.error then incr errs)
    spans;
  Hashtbl.fold
    (fun sname (durs, errs) acc ->
      let a = Array.of_list !durs in
      Array.sort compare a;
      let n = Array.length a in
      let total = Array.fold_left ( +. ) 0.0 a in
      {
        sname;
        count = n;
        errors = !errs;
        mean_us = (if n = 0 then 0.0 else total /. float_of_int n);
        p50_us = exact_quantile a 0.50;
        p90_us = exact_quantile a 0.90;
        p99_us = exact_quantile a 0.99;
        p999_us = exact_quantile a 0.999;
        max_dur_us = (if n = 0 then 0.0 else a.(n - 1));
        total_us = total;
      }
      :: acc)
    tbl []
  |> List.sort (fun a b -> compare b.total_us a.total_us)

(* --- layer attribution -------------------------------------------- *)

(* Self time (duration minus closed child durations, clamped at 0 —
   children may overlap when fanned out across domains) bucketed by
   subsystem.  "queueing" is the scheduler/event-queue self time of
   the simulation driver around the protocol work it dispatches. *)
let layer_of name =
  let prefix =
    match String.index_opt name '.' with
    | Some i -> String.sub name 0 i
    | None -> name
  in
  match prefix with
  | "pairing" | "tate" | "ibs" | "ec" -> "pairing"
  | "merkle" | "hash" | "sha256" -> "hash"
  | "transport" | "endpoint" | "wire" -> "transport"
  | "audit" | "agency" -> "audit"
  | "compute" | "cloud" -> "compute"
  | "user" | "storage" -> "storage"
  | "sim" | "stats" | "parallel" -> "queueing"
  | _ -> "other"

let layers spans =
  let child_sum : (int, float) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun sp ->
      match sp.parent with
      | None -> ()
      | Some p ->
        Hashtbl.replace child_sum p
          (sp.dur_us
          +. Option.value ~default:0.0 (Hashtbl.find_opt child_sum p)))
    spans;
  let acc : (string, float) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun sp ->
      let self =
        Float.max 0.0
          (sp.dur_us
          -. Option.value ~default:0.0 (Hashtbl.find_opt child_sum sp.id))
      in
      let l = layer_of sp.name in
      Hashtbl.replace acc l
        (self +. Option.value ~default:0.0 (Hashtbl.find_opt acc l)))
    spans;
  Hashtbl.fold (fun l v acc -> (l, v) :: acc) acc []
  |> List.sort (fun (_, a) (_, b) -> compare b a)

(* --- critical path ------------------------------------------------ *)

type path_step = { step : span; self_us : float }

let critical_path node =
  let rec go n acc =
    let child_sum =
      List.fold_left (fun s c -> s +. c.span.dur_us) 0.0 n.children
    in
    let step =
      { step = n.span; self_us = Float.max 0.0 (n.span.dur_us -. child_sum) }
    in
    match n.children with
    | [] -> List.rev (step :: acc)
    | cs ->
      let widest =
        List.fold_left
          (fun best c ->
            if c.span.dur_us > best.span.dur_us then c else best)
          (List.hd cs) (List.tl cs)
      in
      go widest (step :: acc)
  in
  go node []

(* --- whole-file report -------------------------------------------- *)

type report = {
  spans : int;
  skipped_lines : int;
  traces : int;
  roots : int;
  orphans : int;
  errors : int;
  wall_us : float;
  audits : int;
  audits_per_sec : float;
  rpc_spans : int;
  rpc_campaign_coverage : float;
  stats : name_stats list;
  layer_us : (string * float) list;
  critical : (string * path_step list) option;
}

let audit_span_name = "sim.audit"
let rpc_span_name = "transport.rpc"
let campaign_span_name = "sim.campaign"

let analyze ?(skipped_lines = 0) spans =
  let traces = assemble spans in
  let wall_us =
    match spans with
    | [] -> 0.0
    | _ ->
      let lo =
        List.fold_left (fun m sp -> Float.min m sp.start_us) Float.infinity
          spans
      and hi =
        List.fold_left
          (fun m sp -> Float.max m (sp.start_us +. sp.dur_us))
          Float.neg_infinity spans
      in
      Float.max 0.0 (hi -. lo)
  in
  let count name =
    List.length (List.filter (fun sp -> sp.name = name) spans)
  in
  let audits = count audit_span_name in
  let campaign_traces =
    List.filter_map
      (fun sp -> if sp.name = campaign_span_name then Some sp.trace else None)
      spans
  in
  let rpcs = List.filter (fun sp -> sp.name = rpc_span_name) spans in
  let rpc_in_campaign =
    List.length
      (List.filter (fun sp -> List.mem sp.trace campaign_traces) rpcs)
  in
  let critical =
    (* widest root of the biggest trace that has any roots *)
    let rec first_rooted = function
      | [] -> None
      | (t : trace) :: rest -> (
        match t.roots with
        | [] -> first_rooted rest
        | r :: rs ->
          let widest =
            List.fold_left
              (fun best c ->
                if c.span.dur_us > best.span.dur_us then c else best)
              r rs
          in
          Some (t.trace_id, critical_path widest))
    in
    first_rooted traces
  in
  {
    spans = List.length spans;
    skipped_lines;
    traces = List.length traces;
    roots =
      List.fold_left (fun a (t : trace) -> a + List.length t.roots) 0 traces;
    orphans =
      List.fold_left
        (fun a (t : trace) -> a + List.length t.orphans)
        0 traces;
    errors = List.length (List.filter (fun sp -> sp.error) spans);
    wall_us;
    audits;
    audits_per_sec =
      (if wall_us > 0.0 then float_of_int audits /. (wall_us /. 1e6)
       else 0.0);
    rpc_spans = List.length rpcs;
    rpc_campaign_coverage =
      (if rpcs = [] then 1.0
       else float_of_int rpc_in_campaign /. float_of_int (List.length rpcs));
    stats = by_name spans;
    layer_us = layers spans;
    critical;
  }

(* --- SLO checks ---------------------------------------------------
   One assertion per line:   METRIC OP VALUE
     p50(NAME) p90(NAME) p99(NAME) p999(NAME)   µs quantile of spans NAME
     mean(NAME)  max(NAME)                      µs
     count(NAME)  errors(NAME)  errors("*")    span counts
     attr(NAME.KEY)        sum of numeric attr KEY over spans NAME
     open_spans            spans whose parent never closed (orphans)
     rpc_campaign_coverage fraction of transport.rpc spans in a trace
                           that contains a sim.campaign root
     audits_per_sec
   OP ∈ { <= >= = < > };  '#' starts a comment. *)

type slo = {
  expr : string;
  actual : float;
  bound : float;
  cmp : string;
  pass : bool;
}

let split_call s =
  (* "p99(transport.rpc)" -> Some ("p99", "transport.rpc") *)
  match String.index_opt s '(' with
  | Some i when String.length s > 0 && s.[String.length s - 1] = ')' ->
    Some (String.sub s 0 i, String.sub s (i + 1) (String.length s - i - 2))
  | _ -> None

let eval_metric report spans m =
  let stat name = List.find_opt (fun st -> st.sname = name) report.stats in
  let quantile name pick =
    match stat name with Some st -> pick st | None -> Float.nan
  in
  match m with
  | "open_spans" -> Ok (float_of_int report.orphans)
  | "rpc_campaign_coverage" -> Ok report.rpc_campaign_coverage
  | "audits_per_sec" -> Ok report.audits_per_sec
  | _ -> (
    match split_call m with
    | None -> Error (Printf.sprintf "unknown SLO metric %S" m)
    | Some (fn, arg) -> (
      match fn with
      | "p50" -> Ok (quantile arg (fun st -> st.p50_us))
      | "p90" -> Ok (quantile arg (fun st -> st.p90_us))
      | "p99" -> Ok (quantile arg (fun st -> st.p99_us))
      | "p999" -> Ok (quantile arg (fun st -> st.p999_us))
      | "mean" -> Ok (quantile arg (fun st -> st.mean_us))
      | "max" -> Ok (quantile arg (fun st -> st.max_dur_us))
      | "count" ->
        Ok
          (match stat arg with
          | Some st -> float_of_int st.count
          | None -> 0.0)
      | "errors" ->
        Ok
          (if arg = "*" then float_of_int report.errors
           else
             match stat arg with
             | Some st -> float_of_int st.errors
             | None -> 0.0)
      | "attr" -> (
        (* attr(NAME.KEY): NAME may itself contain dots — split at the
           last one. *)
        match String.rindex_opt arg '.' with
        | None -> Error (Printf.sprintf "attr needs NAME.KEY, got %S" arg)
        | Some i ->
          let name = String.sub arg 0 i
          and key = String.sub arg (i + 1) (String.length arg - i - 1) in
          Ok
            (List.fold_left
               (fun acc sp ->
                 if sp.name <> name then acc
                 else
                   match List.assoc_opt key sp.attrs with
                   | Some v -> (
                     match float_of_string_opt v with
                     | Some f -> acc +. f
                     | None -> acc)
                   | None -> acc)
               0.0 spans))
      | _ -> Error (Printf.sprintf "unknown SLO function %S" fn)))

(* The METRIC OP VALUE grammar lives in {!Slo}; this wires its lookup
   to the trace report's metric namespace. *)
let check_slos report spans content =
  match Slo.check ~lookup:(eval_metric report spans) content with
  | Error e -> Error e
  | Ok checks ->
    Ok
      (List.map
         (fun c ->
           {
             expr = c.Slo.expr;
             actual = c.Slo.actual;
             bound = c.Slo.bound;
             cmp = c.Slo.cmp;
             pass = c.Slo.pass;
           })
         checks)

(* --- export ------------------------------------------------------- *)

let stats_json st =
  Json.obj
    [
      "count", Json.int st.count;
      "errors", Json.int st.errors;
      "mean_us", Json.float st.mean_us;
      "p50_us", Json.float st.p50_us;
      "p90_us", Json.float st.p90_us;
      "p99_us", Json.float st.p99_us;
      "p999_us", Json.float st.p999_us;
      "max_us", Json.float st.max_dur_us;
      "total_us", Json.float st.total_us;
    ]

let report_json ?(slos = []) r =
  Json.obj
    ([
       "spans", Json.int r.spans;
       "skipped_lines", Json.int r.skipped_lines;
       "traces", Json.int r.traces;
       "roots", Json.int r.roots;
       "open_spans", Json.int r.orphans;
       "errors", Json.int r.errors;
       "wall_us", Json.float r.wall_us;
       "audits", Json.int r.audits;
       "audits_per_sec", Json.float r.audits_per_sec;
       "rpc_spans", Json.int r.rpc_spans;
       "rpc_campaign_coverage", Json.float r.rpc_campaign_coverage;
       ( "per_protocol",
         Json.obj (List.map (fun st -> st.sname, stats_json st) r.stats) );
       ( "layers_us",
         Json.obj
           (List.map (fun (l, v) -> l, Json.float v) r.layer_us) );
       ( "critical_path",
         match r.critical with
         | None -> Json.arr []
         | Some (_, steps) ->
           Json.arr
             (List.map
                (fun { step; self_us } ->
                  Json.obj
                    [
                      "name", Json.str step.name;
                      "dur_us", Json.float step.dur_us;
                      "self_us", Json.float self_us;
                    ])
                steps) );
     ]
    @
    if slos = [] then []
    else
      [
        ( "slo",
          Json.arr
            (List.map
               (fun s ->
                 Json.obj
                   [
                     "expr", Json.str s.expr;
                     "actual", Json.float s.actual;
                     "pass", (if s.pass then "true" else "false");
                   ])
               slos) );
        ( "slo_pass",
          if List.for_all (fun s -> s.pass) slos then "true" else "false" );
      ])

let print_report oc ?(slos = []) r =
  Printf.fprintf oc
    "trace file: %d spans, %d traces, %d roots, %d open/orphaned, %d errors%s\n"
    r.spans r.traces r.roots r.orphans r.errors
    (if r.skipped_lines > 0 then
       Printf.sprintf " (%d unparsed lines)" r.skipped_lines
     else "");
  Printf.fprintf oc "wall: %.1f ms   audits: %d (%.1f audits/sec)\n"
    (r.wall_us /. 1e3) r.audits r.audits_per_sec;
  Printf.fprintf oc "rpc spans: %d  campaign-trace coverage: %.3f\n"
    r.rpc_spans r.rpc_campaign_coverage;
  Printf.fprintf oc "\nper-protocol latency (us):\n";
  Printf.fprintf oc "  %-28s %7s %7s %9s %9s %9s %9s\n" "span" "count"
    "errors" "p50" "p90" "p99" "mean";
  List.iter
    (fun st ->
      Printf.fprintf oc "  %-28s %7d %7d %9.1f %9.1f %9.1f %9.1f\n" st.sname
        st.count st.errors st.p50_us st.p90_us st.p99_us st.mean_us)
    r.stats;
  Printf.fprintf oc "\nself-time by layer (us):\n";
  List.iter
    (fun (l, v) -> Printf.fprintf oc "  %-12s %12.1f\n" l v)
    r.layer_us;
  (match r.critical with
  | None -> ()
  | Some (trace_id, steps) ->
    Printf.fprintf oc "\ncritical path (trace %s):\n"
      (String.sub trace_id 0 (min 16 (String.length trace_id)));
    List.iter
      (fun { step; self_us } ->
        Printf.fprintf oc "  %s%-26s %9.1f us (self %.1f)\n"
          (String.make (2 * step.depth) ' ')
          step.name step.dur_us self_us)
      steps);
  if slos <> [] then begin
    Printf.fprintf oc "\nSLOs:\n";
    List.iter
      (fun s ->
        Printf.fprintf oc "  [%s] %-44s actual %.3f\n"
          (if s.pass then "ok" else "FAIL")
          s.expr s.actual)
      slos
  end
