(** OpenMetrics text exposition of the current registry snapshot.

    Dotted registry names become underscore-separated metric names;
    [Labels] cells ([family{label="value"}]) render as one family with
    per-cell label sets.  Counters gain the [_total] sample suffix,
    histograms render cumulative [_bucket{le=...}]/[_sum]/[_count].
    The output ends with [# EOF] per the OpenMetrics ABNF. *)

val render : unit -> string
