(* Bounded-cardinality labeled metrics.  A vec is a family of registry
   metrics distinguished by one label, e.g. wire.tx.msgs by message
   kind.  Cells are interned under the canonical registry name
   [family{label="value"}], so snapshots, dump_json and the
   OpenMetrics exporter can recover the label structurally.

   Cardinality is bounded per vec (default 32 cells): once the bound
   is reached, unseen label values share one [family{label="other"}]
   cell and bump [telemetry.labels.overflow] — a hostile or buggy
   label source degrades one family instead of growing the registry
   without bound.  Hot call sites should resolve their cell once
   ([counter vec v] / [histogram vec v]) and hold it, paying the
   per-event cost of a plain registry metric. *)

type 'a vec = {
  family : string;
  label : string;
  max_cells : int;
  make : string -> 'a;
  lock : Mutex.t;
  mutable cells : (string * 'a) list;
  mutable overflow : 'a option;
}

type counter_vec = Registry.counter vec
type histogram_vec = Registry.histogram vec

let overflow_value = "other"
let c_overflow = Registry.counter "telemetry.labels.overflow"

(* Label values are caller-controlled; keep them inert inside both the
   registry name syntax and the OpenMetrics exposition format. *)
let sanitize v =
  let v = if String.length v > 48 then String.sub v 0 48 else v in
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '-' | '.' | ':' | '/' -> c
      | _ -> '_')
    v

let cell_name t v = Printf.sprintf "%s{%s=\"%s\"}" t.family t.label (sanitize v)

let make_vec ~max_cells ~label family make =
  if max_cells < 1 then invalid_arg "Labels: max_cells < 1";
  { family; label; max_cells; make; lock = Mutex.create (); cells = [];
    overflow = None }

let counter_vec ?(max_cells = 32) ~label family =
  make_vec ~max_cells ~label family Registry.counter

let histogram_vec ?(max_cells = 32) ?buckets ~label family =
  make_vec ~max_cells ~label family (fun name ->
      Registry.histogram ?buckets name)

(* Lock order: vec lock, then (inside Registry) the registry lock —
   never the reverse, so no deadlock. *)
let cell t v =
  Mutex.lock t.lock;
  match
    match List.assoc_opt v t.cells with
    | Some m -> m
    | None ->
      if List.length t.cells < t.max_cells then begin
        let m = t.make (cell_name t v) in
        t.cells <- (v, m) :: t.cells;
        m
      end
      else begin
        Registry.incr c_overflow;
        match t.overflow with
        | Some m -> m
        | None ->
          let m = t.make (cell_name t overflow_value) in
          t.overflow <- Some m;
          m
      end
  with
  | m ->
    Mutex.unlock t.lock;
    m
  | exception e ->
    Mutex.unlock t.lock;
    raise e

let counter (t : counter_vec) v = cell t v
let histogram (t : histogram_vec) v = cell t v
let incr t v = Registry.incr (cell t v)
let add t v n = Registry.add (cell t v) n
let observe t v x = Registry.observe (cell t v) x

let cardinality t =
  Mutex.lock t.lock;
  let n = List.length t.cells in
  Mutex.unlock t.lock;
  n

let family t = t.family
let label t = t.label
