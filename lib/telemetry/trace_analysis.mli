(** Offline analysis of span JSONL traces: tree reconstruction,
    per-protocol exact-quantile latency stats, per-layer self-time
    attribution, critical paths, and a declarative SLO checker.

    SLO file format — one assertion per line, [#] comments:
    {v
      p99(transport.rpc) <= 2000000        # µs quantiles per span name
      count(transport.rpc) >= 1            # span counts
      errors(any) = 0   # error-tagged spans; the literal name "*" sums all
      attr(sim.campaign.false_alarms) = 0  # sum of a numeric attr
      open_spans = 0                       # spans whose parent never closed
      rpc_campaign_coverage = 1            # rpc spans inside a campaign trace
      audits_per_sec > 0
    v}
    with operators [<=], [>=], [=], [<], [>]. *)

type span = {
  id : int;
  trace : string;  (** hex trace id *)
  parent : int option;
  name : string;
  depth : int;
  start_us : float;
  dur_us : float;
  error : bool;  (** the span's thunk raised *)
  attrs : (string * string) list;
}

val span_of_line : string -> span option
(** Parse one JSONL line; [None] when it is not a span object. *)

val load : string -> span list * int
(** Read a JSONL file: parsed spans (in file order) and the number of
    skipped (unparsable, non-blank) lines. *)

(** {2 Trace trees} *)

type node = { span : span; mutable children : node list }

type trace = {
  trace_id : string;
  roots : node list;  (** spans with no parent, in file order *)
  orphans : span list;  (** parent id absent from this trace *)
  size : int;
}

val assemble : span list -> trace list
(** Group spans by trace id and link children (sorted by start time);
    largest trace first. *)

type path_step = { step : span; self_us : float }

val critical_path : node -> path_step list
(** Root-to-leaf chain following the longest-duration child. *)

(** {2 Reports} *)

type name_stats = {
  sname : string;
  count : int;
  errors : int;
  mean_us : float;
  p50_us : float;
  p90_us : float;
  p99_us : float;
  p999_us : float;
  max_dur_us : float;
  total_us : float;
}

type report = {
  spans : int;
  skipped_lines : int;
  traces : int;
  roots : int;
  orphans : int;  (** "open spans": parent id never emitted *)
  errors : int;
  wall_us : float;
  audits : int;  (** spans named [sim.audit] *)
  audits_per_sec : float;
  rpc_spans : int;  (** spans named [transport.rpc] *)
  rpc_campaign_coverage : float;
      (** fraction of rpc spans whose trace contains a [sim.campaign]
          span; 1.0 when there are no rpc spans *)
  stats : name_stats list;  (** by descending total time *)
  layer_us : (string * float) list;  (** self time by subsystem *)
  critical : (string * path_step list) option;
      (** trace id + critical path of the widest root of the largest
          rooted trace *)
}

val analyze : ?skipped_lines:int -> span list -> report

val by_name : span list -> name_stats list

(** {2 SLOs} *)

type slo = {
  expr : string;
  actual : float;
  bound : float;
  cmp : string;
  pass : bool;
}

val check_slos : report -> span list -> string -> (slo list, string) result
(** [check_slos report spans content] evaluates every assertion in the
    SLO file [content]; [Error] collects unparseable lines / unknown
    metrics.  A NaN actual (e.g. quantile of an absent span name)
    fails its assertion. *)

val report_json : ?slos:slo list -> report -> string
(** The [BENCH_trace.json] payload. *)

val print_report : out_channel -> ?slos:slo list -> report -> unit
