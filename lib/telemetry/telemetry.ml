(* Façade: the one module the rest of the code base opens.  Everything
   here is a thin re-export of {!Registry}, {!Span} and {!Clock}. *)

type counter = Registry.counter
type gauge = Registry.gauge
type histogram = Registry.histogram

let counter = Registry.counter
let gauge = Registry.gauge
let histogram = Registry.histogram
let default_buckets = Registry.default_buckets

let incr = Registry.incr
let add = Registry.add
let value = Registry.value
let reset_counter = Registry.reset_counter
let set = Registry.set
let gauge_value = Registry.gauge_value
let observe = Registry.observe

type hist_snapshot = Registry.hist_snapshot = {
  bounds : float array;
  counts : int array;
  sum : float;
  count : int;
}

type value_snapshot = Registry.value_snapshot =
  | Counter of int
  | Gauge of float
  | Histogram of hist_snapshot

let snapshot = Registry.snapshot
let find = Registry.find
let counter_value = Registry.counter_value
let reset = Registry.reset
let dump_json = Registry.dump_json
let print_tree = Registry.print_tree

let quantile = Registry.quantile
let log_buckets () = Hdr.default_bounds ()

let with_span = Span.with_span
let set_sink = Span.set_sink
let with_trace_channel = Span.with_trace_channel
let with_trace_file = Span.with_trace_file
let current_depth = Span.current_depth
let open_spans = Span.open_spans
let add_attr = Span.add_attr

type trace_context = Trace_context.t = { trace : string; span : int }

let current_context = Span.current_context
let with_context = Trace_context.with_remote

let now_ns = Clock.now_ns
let elapsed_ns = Clock.elapsed_ns
