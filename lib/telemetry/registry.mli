(** Process-wide metrics registry: named counters, gauges and
    fixed-bucket histograms.

    Metrics are interned by name — the first call for a name creates
    the metric, later calls return the same object — so call sites
    hold the metric in a module-level binding and increment without
    any lookup.  {!reset} zeroes values but keeps the objects, so held
    references stay valid across resets.

    All operations are domain-safe: one registry-wide mutex serialises
    creation, mutation and snapshots, and the mutation fast paths
    ({!incr}, {!add}, {!observe}, {!set}) allocate nothing, so metrics
    stay exact under concurrent increments from a domain pool. *)

type counter
type gauge
type histogram

val counter : string -> counter
(** Find-or-create.  @raise Invalid_argument if the name is already
    registered with a different kind. *)

val gauge : string -> gauge
val histogram : ?buckets:float array -> string -> histogram
(** [buckets] are strictly increasing upper bounds; an implicit
    overflow bucket is appended.  Defaults to microsecond-scale
    latency buckets 10¹..10⁷ µs. *)

val default_buckets : float array

val incr : counter -> unit
val add : counter -> int -> unit
val value : counter -> int
val reset_counter : counter -> unit
val counter_name : counter -> string

val set : gauge -> float -> unit
val gauge_value : gauge -> float
val gauge_name : gauge -> string

val observe : histogram -> float -> unit
val histogram_name : histogram -> string
val reset_histogram : histogram -> unit
(** Zero one histogram's buckets/sum/count (the registration stays). *)

(** {2 Snapshots} — deep copies, isolated from later updates. *)

type hist_snapshot = {
  bounds : float array;
  counts : int array; (** length [bounds + 1]; last bucket is overflow *)
  sum : float;
  count : int;
}

type value_snapshot =
  | Counter of int
  | Gauge of float
  | Histogram of hist_snapshot

val quantile : hist_snapshot -> float -> float
(** [quantile s p] estimates the [p]-quantile (nearest-rank) of the
    observations in [s] as the geometric midpoint of the bucket
    holding that rank.  With geometric bounds of ratio [r] (see
    {!Hdr}) the estimate is within [sqrt r - 1] relative error of the
    exact sample quantile for in-range observations; overflow/
    underflow clamp to the outermost bound.  [nan] when empty. *)

val snapshot : unit -> (string * value_snapshot) list
(** All registered metrics, sorted by name. *)

val find : string -> value_snapshot option
val counter_value : string -> int
(** Current value of a counter by name; 0 when unregistered. *)

val reset : unit -> unit
(** Zero every metric (registrations survive). *)

val dump_json : unit -> string
(** One JSON object mapping metric name to value. *)

val print_tree : out_channel -> unit
(** Render the dotted metric namespace as an indented tree. *)
