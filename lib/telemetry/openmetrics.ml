(* OpenMetrics text exposition of the registry snapshot.

   Metric names are the registry's dotted names with dots mapped to
   underscores; labeled cells created by [Labels]
   ([family{label="value"}]) are split back into family + label pairs
   so one family renders as one TYPE block with per-cell sample lines.
   Counters follow the OpenMetrics convention of a [_total] sample
   suffix; histograms render cumulative [_bucket{le=...}] plus [_sum]
   and [_count].  Gauges map to gauges. *)

let sanitize_name s =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> c
      | _ -> '_')
    s

(* "family{kind=\"upload\"}" -> ("family", Some "kind=\"upload\"") *)
let split_labels name =
  match String.index_opt name '{' with
  | None -> name, None
  | Some i when String.length name > 0 && name.[String.length name - 1] = '}'
    ->
    ( String.sub name 0 i,
      Some (String.sub name (i + 1) (String.length name - i - 2)) )
  | Some _ -> name, None

let num f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else Printf.sprintf "%.9g" f

let with_labels labels extra =
  match labels, extra with
  | None, None -> ""
  | Some l, None -> "{" ^ l ^ "}"
  | None, Some e -> "{" ^ e ^ "}"
  | Some l, Some e -> "{" ^ l ^ "," ^ e ^ "}"

let render_metric buf ~family ~labels (v : Registry.value_snapshot) =
  let m = sanitize_name family in
  match v with
  | Registry.Counter c ->
    Buffer.add_string buf
      (Printf.sprintf "%s_total%s %d\n" m (with_labels labels None) c)
  | Registry.Gauge g ->
    Buffer.add_string buf
      (Printf.sprintf "%s%s %s\n" m (with_labels labels None) (num g))
  | Registry.Histogram h ->
    let cum = ref 0 in
    Array.iteri
      (fun i n ->
        cum := !cum + n;
        let le =
          if i < Array.length h.Registry.bounds then
            num h.Registry.bounds.(i)
          else "+Inf"
        in
        Buffer.add_string buf
          (Printf.sprintf "%s_bucket%s %d\n" m
             (with_labels labels (Some (Printf.sprintf "le=\"%s\"" le)))
             !cum))
      h.Registry.counts;
    Buffer.add_string buf
      (Printf.sprintf "%s_sum%s %s\n" m (with_labels labels None)
         (num h.Registry.sum));
    Buffer.add_string buf
      (Printf.sprintf "%s_count%s %d\n" m
         (with_labels labels None)
         h.Registry.count)

let kind_of = function
  | Registry.Counter _ -> "counter"
  | Registry.Gauge _ -> "gauge"
  | Registry.Histogram _ -> "histogram"

let render () =
  let buf = Buffer.create 4096 in
  let typed = Hashtbl.create 64 in
  (* snapshot is sorted by full name, so a family's cells are
     adjacent: the TYPE line is emitted at the first cell only. *)
  List.iter
    (fun (name, v) ->
      let family, labels = split_labels name in
      let m = sanitize_name family in
      if not (Hashtbl.mem typed m) then begin
        Hashtbl.add typed m ();
        Buffer.add_string buf
          (Printf.sprintf "# TYPE %s %s\n" m (kind_of v))
      end;
      render_metric buf ~family ~labels v)
    (Registry.snapshot ());
  Buffer.add_string buf "# EOF\n";
  Buffer.contents buf
