(** Nested spans over the monotone clock.

    Every finished span observes its duration (µs) into the registry
    histogram [span.<name>]; with a trace sink installed it also emits
    one JSON object per line: [{"name":…, "id":…, "parent":…,
    "depth":…, "start_us":…, "dur_us":…, "attrs":{…}}].

    Domain-safe: ids are atomic, the active-span stack is domain-local
    (spans nest within a domain; a span opened on a worker domain has
    no cross-domain parent), and sink emission is serialised. *)

val with_span : ?attrs:(string * string) list -> name:string -> (unit -> 'a) -> 'a
(** Run the thunk inside a span.  Spans nest: a span opened while
    another is active records it as parent (exception-safe). *)

val set_sink : (string -> unit) option -> unit
(** Install/remove the JSONL line consumer. *)

val with_trace_channel : out_channel -> (unit -> 'a) -> 'a
(** Route span lines to the channel for the duration of the thunk,
    restoring the previous sink afterwards. *)

val with_trace_file : string -> (unit -> 'a) -> 'a
(** [with_trace_file path f] truncates [path] and streams span JSONL
    lines into it while [f] runs. *)

val current_depth : unit -> int
(** Number of currently-open spans (0 outside any span). *)
