(** Nested spans over the monotone clock.

    Every finished span observes its duration (µs) into the registry
    histogram [span.<name>] (HDR log buckets, see {!Hdr}); with a
    trace sink installed it also emits one JSON object per line:
    [{"name":…, "id":…, "parent":…, "depth":…, "trace":…,
    "start_us":…, "dur_us":…, "attrs":{…}}].

    Distributed tracing: spans carry a 128-bit trace id.  Nested spans
    inherit it; a root span adopts the ambient {!Trace_context} (trace
    id and remote parent span id) when one is installed, and mints a
    fresh trace id otherwise.

    Domain-safe: ids are atomic, the active-span stack is domain-local
    (spans nest within a domain; a span opened on a worker domain
    joins a cross-domain trace only via the ambient context), and sink
    emission is serialised. *)

val with_span : ?attrs:(string * string) list -> name:string -> (unit -> 'a) -> 'a
(** Run the thunk inside a span.  Spans nest: a span opened while
    another is active records it as parent (exception-safe).  If the
    thunk raises, the trace line is tagged [error=1], the counter
    [span.<name>.errors] is bumped, and the exception is re-raised. *)

val set_sink : (string -> unit) option -> unit
(** Install/remove the JSONL line consumer. *)

val with_trace_channel : out_channel -> (unit -> 'a) -> 'a
(** Route span lines to the channel for the duration of the thunk,
    restoring the previous sink afterwards. *)

val with_trace_file : string -> (unit -> 'a) -> 'a
(** [with_trace_file path f] truncates [path] and streams span JSONL
    lines into it while [f] runs. *)

val current_depth : unit -> int
(** Number of currently-open spans on this domain (0 outside any
    span). *)

val open_spans : unit -> int
(** Number of currently-open spans across all domains — a span-leak
    detector: 0 once every [with_span] has unwound. *)

val current_context : unit -> Trace_context.t option
(** Context naming the innermost open span on this domain (for
    propagation to workers / RPC peers); falls back to the ambient
    remote context when the local stack is empty. *)

val add_attr : string -> string -> unit
(** Attach/overwrite an attribute on the innermost open span of this
    domain; no-op outside any span. *)
