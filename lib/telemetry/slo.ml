(* Generic METRIC OP VALUE assertion engine; the metric namespace is
   the caller's lookup function.  Extracted from the PR 7 trace
   analyzer so the service-layer bench gate reuses the exact grammar
   (and failure modes) instead of growing a dialect. *)

type check = {
  expr : string;
  metric : string;
  actual : float;
  bound : float;
  cmp : string;
  pass : bool;
}

let operators = [ "<="; ">="; "="; "<"; ">" ]

let compare_op cmp actual bound =
  match cmp with
  | "<=" -> actual <= bound
  | ">=" -> actual >= bound
  | "=" -> actual = bound
  | "<" -> actual < bound
  | ">" -> actual > bound
  | _ -> false

let check ~lookup content =
  let results = ref [] and problems = ref [] in
  List.iteri
    (fun lineno line ->
      let line =
        match String.index_opt line '#' with
        | Some i -> String.sub line 0 i
        | None -> line
      in
      let line = String.trim line in
      if line <> "" then
        match
          String.split_on_char ' ' line |> List.filter (fun t -> t <> "")
        with
        | [ metric; cmp; value ] when List.mem cmp operators -> (
          match float_of_string_opt value with
          | None ->
            problems :=
              Printf.sprintf "slo line %d: bad value %S" (lineno + 1) value
              :: !problems
          | Some bound -> (
            match lookup metric with
            | Error e ->
              problems :=
                Printf.sprintf "slo line %d: %s" (lineno + 1) e :: !problems
            | Ok actual ->
              let pass =
                (not (Float.is_nan actual)) && compare_op cmp actual bound
              in
              results :=
                { expr = line; metric; actual; bound; cmp; pass } :: !results))
        | _ ->
          problems :=
            Printf.sprintf "slo line %d: expected 'METRIC OP VALUE', got %S"
              (lineno + 1) line
            :: !problems)
    (String.split_on_char '\n' content);
  match !problems with
  | [] -> Ok (List.rev !results)
  | ps -> Error (String.concat "\n" (List.rev ps))

let all_pass = List.for_all (fun c -> c.pass)

let json checks =
  Json.arr
    (List.map
       (fun c ->
         Json.obj
           [
             "expr", Json.str c.expr;
             "actual", Json.float c.actual;
             "pass", (if c.pass then "true" else "false");
           ])
       checks)
