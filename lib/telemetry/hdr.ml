(* HDR-style log-bucketed histogram bounds.  Buckets grow
   geometrically with ratio (1 + relative_error)^2, so the geometric
   midpoint of any bucket is within [relative_error] of every value
   the bucket can hold — quantiles read back from the histogram are
   within ~5% of the exact sample quantile, at any latency scale, for
   a fixed ~240 buckets.  The observe fast path is unchanged
   (Registry.observe: binary search + locked increment, no
   allocation). *)

let relative_error = 0.05
let ratio = (1.0 +. relative_error) *. (1.0 +. relative_error)

(* Default span range: 10 ns .. ~100 s, in microseconds. *)
let min_us = 1e-2
let max_us = 1e8

let buckets ?(min_value = min_us) ?(max_value = max_us)
    ?(relative_error = relative_error) () =
  if min_value <= 0.0 || max_value <= min_value then
    invalid_arg "Hdr.buckets: need 0 < min_value < max_value";
  if relative_error <= 0.0 then invalid_arg "Hdr.buckets: relative_error <= 0";
  let r = (1.0 +. relative_error) *. (1.0 +. relative_error) in
  let n =
    1 + int_of_float (Float.ceil (Float.log (max_value /. min_value) /. Float.log r))
  in
  Array.init n (fun i -> min_value *. (r ** float_of_int i))

let default_bounds_ = lazy (buckets ())
let default_bounds () = Lazy.force default_bounds_

let histogram name = Registry.histogram ~buckets:(default_bounds ()) name
let quantile = Registry.quantile

let summary s =
  [ "p50", quantile s 0.50; "p90", quantile s 0.90; "p99", quantile s 0.99;
    "p999", quantile s 0.999 ]
