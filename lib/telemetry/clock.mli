(** Monotone process clock used for span timing.

    Backed by [Unix.gettimeofday] and clamped so consecutive reads
    never decrease; all values are nanoseconds relative to the first
    load of the library. *)

val now_ns : unit -> int64
(** Nanoseconds since process start; non-decreasing across calls. *)

val elapsed_ns : int64 -> int64
(** [elapsed_ns t0] is [now_ns () - t0]. *)

val ns_to_us : int64 -> float
