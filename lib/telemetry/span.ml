(* Nested protocol spans over the monotone clock.  Every finished span
   feeds a latency histogram [span.<name>] (microseconds) in the
   registry; when a trace sink is installed it also emits one JSONL
   object.  The span stack is *per-domain* (Domain.DLS): a span opened
   on a pool worker nests under that worker's own spans, never under
   another domain's, and ids are drawn from one atomic sequence so a
   merged trace stays unambiguous.  Sink emission is serialized by a
   mutex so concurrent JSONL lines never interleave. *)

type active = {
  id : int;
  name : string;
  parent : int option;
  depth : int;
  start_ns : int64;
  attrs : (string * string) list;
}

let next_id = Atomic.make 0
let stack_key = Domain.DLS.new_key (fun () -> ref ([] : active list))
let stack () = Domain.DLS.get stack_key
let sink : (string -> unit) option Atomic.t = Atomic.make None
let sink_lock = Mutex.create () (* serializes emission, not the pointer *)
let set_sink f = Atomic.set sink f

let emit_line sp dur_ns =
  match Atomic.get sink with
  | None -> ()
  | Some _ ->
    let fields =
      [
        "name", Json.str sp.name;
        "id", Json.int sp.id;
        ( "parent",
          match sp.parent with None -> "null" | Some p -> Json.int p );
        "depth", Json.int sp.depth;
        "start_us", Json.float (Clock.ns_to_us sp.start_ns);
        "dur_us", Json.float (Clock.ns_to_us dur_ns);
      ]
      @
      if sp.attrs = [] then []
      else
        [ ( "attrs",
            Json.obj (List.map (fun (k, v) -> k, Json.str v) sp.attrs) ) ]
    in
    let line = Json.obj fields in
    Mutex.lock sink_lock;
    (match Atomic.get sink with None -> () | Some emit -> emit line);
    Mutex.unlock sink_lock

let with_span ?(attrs = []) ~name f =
  let id = Atomic.fetch_and_add next_id 1 + 1 in
  let stack = stack () in
  let parent, depth =
    match !stack with
    | [] -> None, 0
    | top :: _ -> Some top.id, top.depth + 1
  in
  let sp = { id; name; parent; depth; start_ns = Clock.now_ns (); attrs } in
  stack := sp :: !stack;
  Fun.protect
    ~finally:(fun () ->
      (match !stack with
      | top :: rest when top.id = id -> stack := rest
      | _ -> (* unbalanced exit via exception deeper in the stack *) ());
      let dur = Clock.elapsed_ns sp.start_ns in
      Registry.observe (Registry.histogram ("span." ^ name))
        (Clock.ns_to_us dur);
      emit_line sp dur)
    f

let current_depth () = List.length !(stack ())

let with_trace_channel oc f =
  let prev = Atomic.get sink in
  set_sink (Some (fun line -> output_string oc (line ^ "\n")));
  Fun.protect ~finally:(fun () -> set_sink prev) f

let with_trace_file path f =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> with_trace_channel oc f)
