(* Nested protocol spans over the monotone clock.  Every finished span
   feeds a latency histogram [span.<name>] (microseconds, HDR log
   buckets) in the registry; when a trace sink is installed it also
   emits one JSONL object.  The span stack is *per-domain*
   (Domain.DLS): a span opened on a pool worker nests under that
   worker's own spans, never under another domain's, and ids are drawn
   from one atomic sequence so a merged trace stays unambiguous.  Sink
   emission is serialized by a mutex so concurrent JSONL lines never
   interleave.

   Distributed tracing: each span carries a 128-bit trace id.  A
   nested span inherits its parent's; a root span (empty local stack)
   adopts the ambient remote context installed by [Trace_context.
   with_remote] — both trace id and parent span id — so spans opened
   on a worker domain or behind a transport hop join the originating
   request's trace.  Only a root span with no ambient context mints a
   fresh trace id.

   A span whose thunk raises is tagged [error=1] in the trace line,
   bumps the [span.<name>.errors] counter, and re-raises — failed
   rounds are visible in traces instead of passing as successes. *)

type active = {
  id : int;
  name : string;
  parent : int option;
  depth : int;
  trace : string; (* raw 16-byte trace id *)
  start_ns : int64;
  mutable attrs : (string * string) list;
}

let next_id = Atomic.make 0
let open_count = Atomic.make 0
let stack_key = Domain.DLS.new_key (fun () -> ref ([] : active list))
let stack () = Domain.DLS.get stack_key
let sink : (string -> unit) option Atomic.t = Atomic.make None
let sink_lock = Mutex.create () (* serializes emission, not the pointer *)
let set_sink f = Atomic.set sink f
let open_spans () = Atomic.get open_count

let emit_line sp dur_ns ~error =
  match Atomic.get sink with
  | None -> ()
  | Some _ ->
    let attrs = if error then sp.attrs @ [ "error", "1" ] else sp.attrs in
    let fields =
      [
        "name", Json.str sp.name;
        "id", Json.int sp.id;
        ( "parent",
          match sp.parent with None -> "null" | Some p -> Json.int p );
        "depth", Json.int sp.depth;
        "trace", Json.str (Trace_context.to_hex sp.trace);
        "start_us", Json.float (Clock.ns_to_us sp.start_ns);
        "dur_us", Json.float (Clock.ns_to_us dur_ns);
      ]
      @
      if attrs = [] then []
      else
        [ ( "attrs",
            Json.obj (List.map (fun (k, v) -> k, Json.str v) attrs) ) ]
    in
    let line = Json.obj fields in
    Mutex.lock sink_lock;
    (match Atomic.get sink with None -> () | Some emit -> emit line);
    Mutex.unlock sink_lock

let close stack sp ~error =
  (match !stack with
  | top :: rest when top.id = sp.id -> stack := rest
  | _ -> (* unbalanced exit via exception deeper in the stack *) ());
  Atomic.decr open_count;
  let dur = Clock.elapsed_ns sp.start_ns in
  Registry.observe
    (Registry.histogram ~buckets:(Hdr.default_bounds ()) ("span." ^ sp.name))
    (Clock.ns_to_us dur);
  if error then
    Registry.incr (Registry.counter ("span." ^ sp.name ^ ".errors"));
  emit_line sp dur ~error

let with_span ?(attrs = []) ~name f =
  let id = Atomic.fetch_and_add next_id 1 + 1 in
  let stack = stack () in
  let parent, depth, trace =
    match !stack with
    | top :: _ -> Some top.id, top.depth + 1, top.trace
    | [] -> (
      match Trace_context.current () with
      | Some ctx -> Some ctx.Trace_context.span, 0, ctx.Trace_context.trace
      | None -> None, 0, Trace_context.fresh_trace ())
  in
  let sp =
    { id; name; parent; depth; trace; start_ns = Clock.now_ns (); attrs }
  in
  Atomic.incr open_count;
  stack := sp :: !stack;
  match f () with
  | v ->
    close stack sp ~error:false;
    v
  | exception e ->
    let bt = Printexc.get_raw_backtrace () in
    close stack sp ~error:true;
    Printexc.raise_with_backtrace e bt

let current_depth () = List.length !(stack ())

let current_context () =
  match !(stack ()) with
  | top :: _ -> Some { Trace_context.trace = top.trace; span = top.id }
  | [] -> Trace_context.current ()

let add_attr k v =
  match !(stack ()) with
  | top :: _ -> top.attrs <- List.remove_assoc k top.attrs @ [ k, v ]
  | [] -> ()

let with_trace_channel oc f =
  let prev = Atomic.get sink in
  set_sink (Some (fun line -> output_string oc (line ^ "\n")));
  Fun.protect ~finally:(fun () -> set_sink prev) f

let with_trace_file path f =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> with_trace_channel oc f)
