(* Nanoseconds since process start, clamped to be non-decreasing.
   Unix.gettimeofday is the only wall clock available without extra
   dependencies; the clamp turns it into a monotone source good enough
   for span durations (an NTP step backwards freezes time instead of
   producing negative durations). *)

let epoch = Unix.gettimeofday ()
let last = Atomic.make 0L

let now_ns () =
  let rec clamp ns =
    let prev = Atomic.get last in
    if Int64.compare ns prev < 0 then prev
    else if Atomic.compare_and_set last prev ns then ns
    else clamp ns
  in
  clamp (Int64.of_float ((Unix.gettimeofday () -. epoch) *. 1e9))

let elapsed_ns since = Int64.sub (now_ns ()) since
let ns_to_us ns = Int64.to_float ns /. 1e3
