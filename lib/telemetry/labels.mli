(** Bounded-cardinality labeled metric families.

    A vec groups registry metrics that differ only in one label value
    (e.g. [wire.tx.msgs] by message kind).  Cells live in the ordinary
    registry under the canonical name [family{label="value"}] — they
    show up in snapshots, [dump_json] and the OpenMetrics exporter
    like any other metric.

    Cardinality policy: at most [max_cells] distinct label values per
    vec (default 32); further values share the [family{label="other"}]
    overflow cell and bump [telemetry.labels.overflow].  Label values
    are sanitized to [[A-Za-z0-9_.:/-]] and truncated to 48 bytes.

    Hot paths should resolve their cell once with {!counter} /
    {!histogram} and hold it; {!incr}/{!add}/{!observe} pay one small
    assoc lookup per event. *)

type 'a vec

type counter_vec = Registry.counter vec
type histogram_vec = Registry.histogram vec

val counter_vec : ?max_cells:int -> label:string -> string -> counter_vec
(** [counter_vec ~label family] — a family of counters.  Unlike plain
    registry metrics, vecs are not interned by name: create once at
    module level. *)

val histogram_vec :
  ?max_cells:int -> ?buckets:float array -> label:string -> string ->
  histogram_vec

val counter : counter_vec -> string -> Registry.counter
(** Find-or-create the cell for a label value (overflow cell once the
    cardinality bound is hit). *)

val histogram : histogram_vec -> string -> Registry.histogram

val incr : counter_vec -> string -> unit
val add : counter_vec -> string -> int -> unit
val observe : histogram_vec -> string -> float -> unit

val cardinality : 'a vec -> int
(** Distinct non-overflow label values seen so far. *)

val family : 'a vec -> string
val label : 'a vec -> string

val overflow_value : string
(** ["other"] — the label value of the shared overflow cell. *)
