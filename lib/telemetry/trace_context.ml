(* Distributed-trace identity: a 128-bit trace id plus the span id of
   the propagating parent.  The pair crosses domain and transport
   boundaries so every span of one logical request lands in one trace
   tree.

   Trace ids are drawn from an atomic counter fed through a 64-bit
   finalizer (murmur3 fmix64), not from a wall clock or [Random]: ids
   are unique within the process and deterministic across runs, which
   keeps seeded simulation campaigns byte-for-byte reproducible.  The
   mixer is a bijection on non-zero inputs, so an all-zero id (the
   reserved "invalid" value) can never be produced.

   The ambient *remote* context is domain-local state (Domain.DLS): a
   worker domain or an RPC server installs the caller's context with
   [with_remote] and any span opened with an empty local stack adopts
   it as parent. *)

type t = { trace : string; (* exactly [trace_bytes] raw bytes *) span : int }

let trace_bytes = 16
let ctx_bytes = trace_bytes + 8

(* murmur3 fmix64: bijective on int64, avalanches a sequential
   counter into uniform-looking bits. *)
let mix64 z =
  let open Int64 in
  let z = mul (logxor z (shift_right_logical z 33)) 0xff51afd7ed558ccdL in
  let z = mul (logxor z (shift_right_logical z 33)) 0xc4ceb9fe1a85ec53L in
  logxor z (shift_right_logical z 33)

let put64 b off v =
  for i = 0 to 7 do
    Bytes.set b (off + i)
      (Char.chr (Int64.to_int (Int64.shift_right_logical v (56 - (8 * i))) land 0xff))
  done

let get64 s off =
  let v = ref 0L in
  for i = 0 to 7 do
    v := Int64.logor (Int64.shift_left !v 8) (Int64.of_int (Char.code s.[off + i]))
  done;
  !v

let seq = Atomic.make 0

let fresh_trace () =
  let n = Atomic.fetch_and_add seq 1 in
  (* Inputs 2n+1 and 2n+2 are never zero, so neither word is zero. *)
  let b = Bytes.create trace_bytes in
  put64 b 0 (mix64 (Int64.of_int ((2 * n) + 1)));
  put64 b 8 (mix64 (Int64.of_int ((2 * n) + 2)));
  Bytes.unsafe_to_string b

let zero_trace = String.make trace_bytes '\x00'
let is_valid_trace s = String.length s = trace_bytes && s <> zero_trace

let to_hex s =
  String.concat "" (List.init (String.length s) (fun i ->
      Printf.sprintf "%02x" (Char.code s.[i])))

(* --- ambient remote context (per domain) -------------------------- *)

let remote_key = Domain.DLS.new_key (fun () -> ref (None : t option))

let current () = !(Domain.DLS.get remote_key)

let with_remote ctx f =
  let cell = Domain.DLS.get remote_key in
  let prev = !cell in
  cell := ctx;
  Fun.protect ~finally:(fun () -> cell := prev) f

(* --- wire form ---------------------------------------------------- *)

let to_bytes t =
  let b = Bytes.create ctx_bytes in
  Bytes.blit_string t.trace 0 b 0 trace_bytes;
  put64 b trace_bytes (Int64.of_int t.span);
  Bytes.unsafe_to_string b

let of_bytes s =
  if String.length s <> ctx_bytes then None
  else
    let trace = String.sub s 0 trace_bytes in
    if not (is_valid_trace trace) then None
    else
      let span64 = get64 s trace_bytes in
      if Int64.compare span64 0L < 0
         || Int64.compare span64 (Int64.of_int max_int) > 0
      then None
      else Some { trace; span = Int64.to_int span64 }
