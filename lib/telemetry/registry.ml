(* Process-wide metrics registry.  Metrics are interned by name: the
   first [counter]/[gauge]/[histogram] call for a name creates the
   metric, later calls return the same object, so call sites can hold
   the metric in a module-level binding and pay one hashtable lookup
   per process, not per event.  [reset] zeroes values but keeps the
   objects, so held references stay valid.

   Domain safety: one registry-wide mutex guards table lookup/insert,
   every counter/gauge/histogram mutation, and snapshotting, so
   increments from pool workers (lib/parallel) are exact — the
   `attempts = rpc + retry`-style ledger invariants gated by `stats
   --check` hold at any SECCLOUD_DOMAINS setting.  The single-domain
   fast path stays cheap: an uncontended lock/unlock pair and no
   allocation on [incr]/[add]/[observe]. *)

type counter = { cname : string; mutable c : int }
type gauge = { gname : string; mutable g : float }

type histogram = {
  hname : string;
  bounds : float array; (* strictly increasing upper bounds *)
  counts : int array; (* length bounds + 1; last bucket is overflow *)
  mutable sum : float;
  mutable n : int;
}

type metric = C of counter | G of gauge | H of histogram

let table : (string, metric) Hashtbl.t = Hashtbl.create 64
let lock = Mutex.create ()

let locked f =
  Mutex.lock lock;
  match f () with
  | v ->
    Mutex.unlock lock;
    v
  | exception e ->
    Mutex.unlock lock;
    raise e

(* Microsecond-scaled latency buckets: 10 µs .. 10 s. *)
let default_buckets = [| 1e1; 1e2; 1e3; 1e4; 1e5; 1e6; 1e7 |]

let kind_error name =
  invalid_arg
    (Printf.sprintf "Telemetry: metric %S already registered with another kind"
       name)

let counter name =
  locked @@ fun () ->
  match Hashtbl.find_opt table name with
  | Some (C c) -> c
  | Some _ -> kind_error name
  | None ->
    let c = { cname = name; c = 0 } in
    Hashtbl.add table name (C c);
    c

let gauge name =
  locked @@ fun () ->
  match Hashtbl.find_opt table name with
  | Some (G g) -> g
  | Some _ -> kind_error name
  | None ->
    let g = { gname = name; g = 0.0 } in
    Hashtbl.add table name (G g);
    g

let histogram ?(buckets = default_buckets) name =
  locked @@ fun () ->
  match Hashtbl.find_opt table name with
  | Some (H h) -> h
  | Some _ -> kind_error name
  | None ->
    let bounds = Array.copy buckets in
    Array.iteri
      (fun i b ->
        if i > 0 && b <= bounds.(i - 1) then
          invalid_arg "Telemetry.histogram: buckets must be strictly increasing")
      bounds;
    let h =
      { hname = name; bounds; counts = Array.make (Array.length bounds + 1) 0;
        sum = 0.0; n = 0 }
    in
    Hashtbl.add table name (H h);
    h

let incr c =
  Mutex.lock lock;
  c.c <- c.c + 1;
  Mutex.unlock lock

let add c v =
  Mutex.lock lock;
  c.c <- c.c + v;
  Mutex.unlock lock

let value c =
  Mutex.lock lock;
  let v = c.c in
  Mutex.unlock lock;
  v

let reset_counter c =
  Mutex.lock lock;
  c.c <- 0;
  Mutex.unlock lock

let counter_name c = c.cname

let set g v =
  Mutex.lock lock;
  g.g <- v;
  Mutex.unlock lock

let gauge_value g =
  Mutex.lock lock;
  let v = g.g in
  Mutex.unlock lock;
  v

let gauge_name g = g.gname

(* First bucket whose upper bound admits v; the trailing bucket
   catches everything above the last bound.  Binary search: the
   HDR-style log buckets (Hdr.default_bounds) have ~240 bounds, so a
   linear scan on the observe fast path would cost more than the
   locked update itself. *)
let bucket_index bounds v =
  let n = Array.length bounds in
  if n = 0 || v <= bounds.(0) then 0
  else if v > bounds.(n - 1) then n
  else begin
    (* invariant: bounds.(lo) < v <= bounds.(hi) *)
    let lo = ref 0 and hi = ref (n - 1) in
    while !hi - !lo > 1 do
      let mid = (!lo + !hi) / 2 in
      if v <= bounds.(mid) then hi := mid else lo := mid
    done;
    !hi
  end

let observe h v =
  let i = bucket_index h.bounds v in
  Mutex.lock lock;
  h.counts.(i) <- h.counts.(i) + 1;
  h.sum <- h.sum +. v;
  h.n <- h.n + 1;
  Mutex.unlock lock

let histogram_name h = h.hname

let reset_histogram h =
  Mutex.lock lock;
  Array.fill h.counts 0 (Array.length h.counts) 0;
  h.sum <- 0.0;
  h.n <- 0;
  Mutex.unlock lock

(* --- snapshots ---------------------------------------------------- *)

type hist_snapshot = {
  bounds : float array;
  counts : int array;
  sum : float;
  count : int;
}

type value_snapshot =
  | Counter of int
  | Gauge of float
  | Histogram of hist_snapshot

(* Nearest-rank quantile over a bucketed snapshot.  The rank-th
   smallest observation lies in the first bucket whose cumulative
   count reaches the rank; its value is estimated as the geometric
   midpoint of that bucket.  With geometric bucket bounds of ratio r
   (Hdr buckets) the estimate is within sqrt(r) - 1 relative error of
   the exact sample quantile, provided the observation is neither
   below the first bound's implied lower edge nor in the overflow
   bucket (those clamp to the nearest bound). *)
let quantile (s : hist_snapshot) p =
  if s.count = 0 then Float.nan
  else begin
    let p = Float.max 0.0 (Float.min 1.0 p) in
    let rank =
      let r = int_of_float (Float.ceil (p *. float_of_int s.count)) in
      if r < 1 then 1 else if r > s.count then s.count else r
    in
    let nb = Array.length s.bounds in
    let i = ref 0 and cum = ref s.counts.(0) in
    while !cum < rank do
      i := !i + 1;
      cum := !cum + s.counts.(!i)
    done;
    let i = !i in
    if i >= nb then (if nb = 0 then s.sum /. float_of_int s.count else s.bounds.(nb - 1))
    else
      let hi = s.bounds.(i) in
      let lo =
        if i > 0 then s.bounds.(i - 1)
        else if nb > 1 && s.bounds.(0) > 0.0 then
          (* implied lower edge: extend the bucket ratio downwards *)
          s.bounds.(0) *. s.bounds.(0) /. s.bounds.(1)
        else hi
      in
      if lo > 0.0 && hi > lo then Float.sqrt (lo *. hi) else hi
  end

let snapshot_histogram (h : histogram) =
  { bounds = Array.copy h.bounds; counts = Array.copy h.counts;
    sum = h.sum; count = h.n }

let snapshot () =
  locked (fun () ->
      Hashtbl.fold
        (fun name m acc ->
          let v =
            match m with
            | C c -> Counter c.c
            | G g -> Gauge g.g
            | H h -> Histogram (snapshot_histogram h)
          in
          (name, v) :: acc)
        table [])
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let find name =
  locked @@ fun () ->
  match Hashtbl.find_opt table name with
  | None -> None
  | Some (C c) -> Some (Counter c.c)
  | Some (G g) -> Some (Gauge g.g)
  | Some (H h) -> Some (Histogram (snapshot_histogram h))

let counter_value name =
  locked @@ fun () ->
  match Hashtbl.find_opt table name with Some (C c) -> c.c | _ -> 0

let reset () =
  locked @@ fun () ->
  Hashtbl.iter
    (fun _ m ->
      match m with
      | C c -> c.c <- 0
      | G g -> g.g <- 0.0
      | H h ->
        Array.fill h.counts 0 (Array.length h.counts) 0;
        h.sum <- 0.0;
        h.n <- 0)
    table

(* --- export ------------------------------------------------------- *)

let json_of_value = function
  | Counter c -> Json.int c
  | Gauge g -> Json.float g
  | Histogram h ->
    let buckets =
      List.init (Array.length h.counts) (fun i ->
          let le =
            if i < Array.length h.bounds then Json.float h.bounds.(i)
            else Json.str "inf"
          in
          Json.obj [ "le", le; "n", Json.int h.counts.(i) ])
    in
    let quantiles =
      if h.count = 0 then []
      else
        [ "p50", Json.float (quantile h 0.50);
          "p90", Json.float (quantile h 0.90);
          "p99", Json.float (quantile h 0.99);
          "p999", Json.float (quantile h 0.999) ]
    in
    Json.obj
      ([ "count", Json.int h.count; "sum", Json.float h.sum ]
      @ quantiles
      @ [ "buckets", Json.arr buckets ])

let dump_json () =
  Json.obj
    (List.map (fun (name, v) -> name, json_of_value v) (snapshot ()))

(* Tree renderer for the CLI: dotted names become an indented
   hierarchy, values are right-aligned on the leaf lines. *)
let pp_value = function
  | Counter c -> string_of_int c
  | Gauge g -> Printf.sprintf "%.3f" g
  | Histogram h ->
    if h.count = 0 then "hist n=0"
    else
      let mean = h.sum /. float_of_int h.count in
      Printf.sprintf "hist n=%d mean=%.1f p50=%.1f p90=%.1f p99=%.1f p999=%.1f"
        h.count mean (quantile h 0.50) (quantile h 0.90) (quantile h 0.99)
        (quantile h 0.999)

let print_tree oc =
  let rec common_prefix a b i =
    if i < List.length a && i < List.length b && List.nth a i = List.nth b i
    then common_prefix a b (i + 1)
    else i
  in
  let prev = ref [] in
  List.iter
    (fun (name, v) ->
      let parts = String.split_on_char '.' name in
      let segs = List.length parts in
      let keep = common_prefix !prev parts 0 in
      (* Print any newly-opened intermediate groups. *)
      List.iteri
        (fun i seg ->
          if i >= keep && i < segs - 1 then
            Printf.fprintf oc "%s%s\n" (String.make (2 * i) ' ') seg)
        parts;
      let leaf = List.nth parts (segs - 1) in
      let indent = String.make (2 * (segs - 1)) ' ' in
      Printf.fprintf oc "%-42s %s\n" (indent ^ leaf) (pp_value v);
      prev := parts)
    (snapshot ())
