(** Declarative numeric assertions ("SLOs") over any metric source.

    The grammar is the one `bench/trace.slo` introduced — one
    [METRIC OP VALUE] assertion per line, [#] comments, operators
    [<=] [>=] [=] [<] [>] — but the metric namespace is supplied by
    the caller as a lookup function, so the same engine gates both the
    offline trace report ({!Trace_analysis.check_slos}) and the
    service campaign report ([bench/service.slo]). *)

type check = {
  expr : string;  (** the assertion as written, comment stripped *)
  metric : string;
  actual : float;
  bound : float;
  cmp : string;
  pass : bool;  (** a NaN actual always fails *)
}

val compare_op : string -> float -> float -> bool
(** [compare_op cmp actual bound]; false for an unknown operator. *)

val check :
  lookup:(string -> (float, string) result) ->
  string ->
  (check list, string) result
(** [check ~lookup content] evaluates every assertion in [content].
    [lookup] resolves a metric name to its current value ([Error]
    for an unknown metric).  The result is [Error] — listing every
    offending line — when any line fails to parse or names an
    unknown metric; assertions that merely {e fail} still yield
    [Ok] with [pass = false]. *)

val all_pass : check list -> bool

val json : check list -> string
(** A JSON fragment: [ [{"expr": ..., "actual": ..., "pass": ...}] ]. *)
