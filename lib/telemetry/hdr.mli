(** HDR-style log-bucketed histogram bounds and quantile readback.

    Bucket upper bounds grow geometrically with ratio
    [(1 + relative_error)^2]; the geometric midpoint of a bucket is
    then within {!relative_error} of any value in it, so
    {!quantile} estimates are within ~5% relative error of the exact
    sample quantile for observations inside the covered range
    (defaults: 0.01 µs .. 1e8 µs, ~240 buckets). *)

val relative_error : float
(** 0.05 — the documented bound for {!default_bounds} buckets. *)

val ratio : float
(** Geometric bucket growth factor [(1 + relative_error)^2]. *)

val buckets :
  ?min_value:float -> ?max_value:float -> ?relative_error:float -> unit ->
  float array
(** Strictly increasing geometric upper bounds covering
    [min_value .. max_value]. *)

val default_bounds : unit -> float array
(** Memoized [buckets ()] — the span-latency default. *)

val histogram : string -> Registry.histogram
(** Find-or-create a registry histogram with {!default_bounds}. *)

val quantile : Registry.hist_snapshot -> float -> float
(** Alias of {!Registry.quantile}. *)

val summary : Registry.hist_snapshot -> (string * float) list
(** [p50]/[p90]/[p99]/[p999] of a snapshot. *)
