(** Tiny JSON string builders for the exporters (no external deps). *)

val escape : string -> string
val str : string -> string
val int : int -> string
val float : float -> string
val obj : (string * string) list -> string
val arr : string list -> string

(** {2 Parsing} — standard JSON, enough for the trace analyzer to read
    the exporters' own output back. *)

type value =
  | Null
  | Bool of bool
  | Number of float
  | String of string
  | Array of value list
  | Object of (string * value) list

exception Parse_error of string

val parse_exn : string -> value
(** @raise Parse_error on malformed input. *)

val parse : string -> value option

val member : string -> value -> value option
(** Field lookup on an [Object]; [None] otherwise. *)

val to_float : value option -> float option
val to_string : value option -> string option
