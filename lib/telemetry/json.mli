(** Tiny JSON string builders for the exporters (no external deps). *)

val escape : string -> string
val str : string -> string
val int : int -> string
val float : float -> string
val obj : (string * string) list -> string
val arr : string list -> string
