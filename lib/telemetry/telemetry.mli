(** Unified telemetry: process-wide metrics registry plus nested
    spans, with JSON / JSONL exporters.

    Typical use at an instrumentation site:
    {[
      let c_reads = Telemetry.counter "storage.reads"

      let read t ~file ~index =
        Telemetry.incr c_reads;
        ...
    ]}
    and around a protocol round:
    {[
      Telemetry.with_span ~name:"audit.verify"
        ~attrs:[ "samples", string_of_int t ]
        (fun () -> ...)
    ]}

    See {!Registry} and {!Span} for the underlying semantics. *)

type counter = Registry.counter
type gauge = Registry.gauge
type histogram = Registry.histogram

val counter : string -> counter
val gauge : string -> gauge
val histogram : ?buckets:float array -> string -> histogram
val default_buckets : float array

val incr : counter -> unit
val add : counter -> int -> unit
val value : counter -> int
val reset_counter : counter -> unit
val set : gauge -> float -> unit
val gauge_value : gauge -> float
val observe : histogram -> float -> unit

type hist_snapshot = Registry.hist_snapshot = {
  bounds : float array;
  counts : int array;
  sum : float;
  count : int;
}

type value_snapshot = Registry.value_snapshot =
  | Counter of int
  | Gauge of float
  | Histogram of hist_snapshot

val snapshot : unit -> (string * value_snapshot) list
val find : string -> value_snapshot option
val counter_value : string -> int
val reset : unit -> unit
val dump_json : unit -> string
val print_tree : out_channel -> unit

val quantile : hist_snapshot -> float -> float
(** See {!Registry.quantile} — nearest-rank bucket quantile, within
    {!Hdr.relative_error} for HDR-bucketed histograms. *)

val log_buckets : unit -> float array
(** {!Hdr.default_bounds} — the span-default HDR log buckets. *)

val with_span : ?attrs:(string * string) list -> name:string -> (unit -> 'a) -> 'a
val set_sink : (string -> unit) option -> unit
val with_trace_channel : out_channel -> (unit -> 'a) -> 'a
val with_trace_file : string -> (unit -> 'a) -> 'a
val current_depth : unit -> int

val open_spans : unit -> int
(** Spans currently open across all domains (leak detector). *)

val add_attr : string -> string -> unit
(** Attach an attribute to the innermost open span of this domain. *)

(** {2 Trace context} — see {!Trace_context} and {!Span}. *)

type trace_context = Trace_context.t = { trace : string; span : int }

val current_context : unit -> trace_context option
(** Identity of the innermost open span (or the ambient remote
    context), for propagation to workers and RPC peers. *)

val with_context : trace_context option -> (unit -> 'a) -> 'a
(** Install a remote parent context: root spans opened inside the
    thunk join that trace instead of minting their own. *)

val now_ns : unit -> int64
val elapsed_ns : int64 -> int64
