module Block = Sc_storage.Block
module Signer = Sc_storage.Signer
module Server = Sc_storage.Server
module Task = Sc_compute.Task
module Executor = Sc_compute.Executor
module Protocol = Sc_audit.Protocol
module Merkle = Sc_merkle.Tree
module Setup = Sc_ibc.Setup
module Ibs = Sc_ibc.Ibs
module Warrant = Sc_ibc.Warrant
module Curve = Sc_ec.Curve
module Tate = Sc_pairing.Tate

module Telemetry = Sc_telemetry.Telemetry
module Labels = Sc_telemetry.Labels

exception Decode_error = Codec.Decode_error

type msg =
  | Upload of Signer.upload
  | Storage_challenge of { file : string; indices : int list }
  | Storage_response of (int * Server.read_result option) list
  | Compute_request of { owner : string; file : string; service : Task.service }
  | Compute_commitment of {
      results : int array;
      commitment : Protocol.commitment;
    }
  | Audit_challenge of { owner : string; file : string; challenge : Protocol.challenge }
  | Audit_response of Executor.response list
  | Ack of { ok : bool; detail : string }

(* Per-message-kind byte accounting: [wire.tx.*] counts every encode
   (including [size] probes — exactly what the simulator charges the
   network for), [wire.rx.*] every successful decode. *)

let kind_name = function
  | Upload _ -> "upload"
  | Storage_challenge _ -> "storage_challenge"
  | Storage_response _ -> "storage_response"
  | Compute_request _ -> "compute_request"
  | Compute_commitment _ -> "compute_commitment"
  | Audit_challenge _ -> "audit_challenge"
  | Audit_response _ -> "audit_response"
  | Ack _ -> "ack"

let kinds =
  [ "upload"; "storage_challenge"; "storage_response"; "compute_request";
    "compute_commitment"; "audit_challenge"; "audit_response"; "ack" ]

(* Per-kind accounting goes through the bounded-cardinality labeled
   families [wire.{tx,rx}.{msgs,bytes}] with label [kind] — the cells
   are resolved once here and held, so the per-event cost is a plain
   counter bump. *)
let counters_of prefix =
  let msgs = Labels.counter_vec ~label:"kind" ("wire." ^ prefix ^ ".msgs") in
  let bytes =
    Labels.counter_vec ~label:"kind" ("wire." ^ prefix ^ ".kind_bytes")
  in
  List.map
    (fun kind -> kind, (Labels.counter msgs kind, Labels.counter bytes kind))
    kinds

let tx_by_kind = counters_of "tx"
let rx_by_kind = counters_of "rx"
let c_tx_bytes = Telemetry.counter "wire.tx.bytes"
let c_rx_bytes = Telemetry.counter "wire.rx.bytes"

let account by_kind total kind bytes =
  let msgs, kind_bytes = List.assoc kind by_kind in
  Telemetry.incr msgs;
  Telemetry.add kind_bytes bytes;
  Telemetry.add total bytes

(* --- primitive serializers ----------------------------------------- *)

let w_point pub b pt =
  Codec.w_bytes b (Curve.to_bytes pub.Setup.prm.Sc_pairing.Params.curve pt)

let r_point pub r =
  match Curve.of_bytes pub.Setup.prm.Sc_pairing.Params.curve (Codec.r_bytes r) with
  | Some pt -> pt
  | None -> raise (Codec.Decode_error "invalid curve point")

let w_gt pub b g = Codec.w_bytes b (Tate.gt_to_bytes pub.Setup.prm g)

let r_gt pub r =
  match Tate.gt_of_bytes pub.Setup.prm (Codec.r_bytes r) with
  | Some g -> g
  | None -> raise (Codec.Decode_error "invalid GT element")

let w_ibs pub b s = Codec.w_bytes b (Ibs.to_bytes pub s)

let r_ibs pub r =
  match Ibs.of_bytes pub (Codec.r_bytes r) with
  | Some s -> s
  | None -> raise (Codec.Decode_error "invalid IBS signature")

let w_block b (blk : Block.t) =
  Codec.w_bytes b blk.Block.file;
  Codec.w_u32 b blk.Block.index;
  Codec.w_bytes b blk.Block.data

let r_block r =
  let file = Codec.r_bytes r in
  let index = Codec.r_u32 r in
  let data = Codec.r_bytes r in
  { Block.file; index; data }

let w_signed_block pub b (sb : Signer.signed_block) =
  w_block b sb.Signer.block;
  w_point pub b sb.Signer.u;
  w_gt pub b sb.Signer.sigma_cs;
  w_gt pub b sb.Signer.sigma_da

let r_signed_block pub r =
  let block = r_block r in
  let u = r_point pub r in
  let sigma_cs = r_gt pub r in
  let sigma_da = r_gt pub r in
  { Signer.block; u; sigma_cs; sigma_da }

let rec w_func b = function
  | Task.Sum -> Codec.w_u8 b 0
  | Task.Average -> Codec.w_u8 b 1
  | Task.Max -> Codec.w_u8 b 2
  | Task.Min -> Codec.w_u8 b 3
  | Task.Count -> Codec.w_u8 b 4
  | Task.Dot ws ->
    Codec.w_u8 b 5;
    Codec.w_list b (fun b v -> Codec.w_i64 b v) ws
  | Task.Polynomial cs ->
    Codec.w_u8 b 6;
    Codec.w_list b (fun b v -> Codec.w_i64 b v) cs
  | Task.Compose (outer, inners) ->
    Codec.w_u8 b 7;
    w_func b outer;
    Codec.w_list b w_func inners

let rec r_func r =
  match Codec.r_u8 r with
  | 0 -> Task.Sum
  | 1 -> Task.Average
  | 2 -> Task.Max
  | 3 -> Task.Min
  | 4 -> Task.Count
  | 5 -> Task.Dot (Codec.r_list r Codec.r_i64)
  | 6 -> Task.Polynomial (Codec.r_list r Codec.r_i64)
  | 7 ->
    let outer = r_func r in
    let inners = Codec.r_list r r_func in
    Task.Compose (outer, inners)
  | _ -> raise (Codec.Decode_error "invalid function tag")

let w_request b (req : Task.request) =
  w_func b req.Task.func;
  Codec.w_u32 b req.Task.position

let r_request r =
  let func = r_func r in
  let position = Codec.r_u32 r in
  { Task.func; position }

let w_proof b (p : Merkle.proof) =
  Codec.w_u32 b p.Merkle.leaf_index;
  Codec.w_list b
    (fun b (side, hash) ->
      Codec.w_u8 b (match side with Merkle.L -> 0 | Merkle.R -> 1);
      Codec.w_bytes b hash)
    p.Merkle.path

let r_proof r =
  let leaf_index = Codec.r_u32 r in
  let path =
    Codec.r_list r (fun r ->
        let side =
          match Codec.r_u8 r with
          | 0 -> Merkle.L
          | 1 -> Merkle.R
          | _ -> raise (Codec.Decode_error "invalid proof side")
        in
        let hash = Codec.r_bytes r in
        side, hash)
  in
  { Merkle.leaf_index; path }

let w_warrant pub b (w : Warrant.signed) =
  Codec.w_bytes b w.Warrant.warrant.Warrant.delegator;
  Codec.w_bytes b w.Warrant.warrant.Warrant.delegatee;
  Codec.w_float b w.Warrant.warrant.Warrant.issued_at;
  Codec.w_float b w.Warrant.warrant.Warrant.expires_at;
  Codec.w_bytes b w.Warrant.warrant.Warrant.scope;
  w_ibs pub b w.Warrant.signature

let r_warrant pub r =
  let delegator = Codec.r_bytes r in
  let delegatee = Codec.r_bytes r in
  let issued_at = Codec.r_float r in
  let expires_at = Codec.r_float r in
  let scope = Codec.r_bytes r in
  let signature = r_ibs pub r in
  {
    Warrant.warrant = { Warrant.delegator; delegatee; issued_at; expires_at; scope };
    signature;
  }

let w_read_result pub b { Server.claimed; signed } =
  w_block b claimed;
  w_signed_block pub b signed

let r_read_result pub r =
  let claimed = r_block r in
  let signed = r_signed_block pub r in
  { Server.claimed; signed }

let w_response pub b (resp : Executor.response) =
  Codec.w_u32 b resp.Executor.task_index;
  w_request b resp.Executor.request;
  Codec.w_option b (w_read_result pub) resp.Executor.read;
  Codec.w_i64 b resp.Executor.result;
  w_proof b resp.Executor.proof

let r_response pub r =
  let task_index = Codec.r_u32 r in
  let request = r_request r in
  let read = Codec.r_option r (r_read_result pub) in
  let result = Codec.r_i64 r in
  let proof = r_proof r in
  { Executor.task_index; request; read; result; proof }

let w_commitment pub b (c : Protocol.commitment) =
  Codec.w_bytes b c.Protocol.root;
  w_ibs pub b c.Protocol.root_signature;
  Codec.w_bytes b c.Protocol.cs_id;
  Codec.w_u32 b c.Protocol.n_tasks

let r_commitment pub r =
  let root = Codec.r_bytes r in
  let root_signature = r_ibs pub r in
  let cs_id = Codec.r_bytes r in
  let n_tasks = Codec.r_u32 r in
  { Protocol.root; root_signature; cs_id; n_tasks }

(* --- message framing ------------------------------------------------ *)

let encode pub msg =
  let b = Buffer.create 256 in
  (match msg with
  | Upload u ->
    Codec.w_u8 b 1;
    Codec.w_bytes b u.Signer.file;
    Codec.w_bytes b u.Signer.owner;
    Codec.w_list b (w_signed_block pub) (Array.to_list u.Signer.blocks)
  | Storage_challenge { file; indices } ->
    Codec.w_u8 b 2;
    Codec.w_bytes b file;
    Codec.w_list b (fun b i -> Codec.w_u32 b i) indices
  | Storage_response items ->
    Codec.w_u8 b 3;
    Codec.w_list b
      (fun b (i, read) ->
        Codec.w_u32 b i;
        Codec.w_option b (w_read_result pub) read)
      items
  | Compute_request { owner; file; service } ->
    Codec.w_u8 b 4;
    Codec.w_bytes b owner;
    Codec.w_bytes b file;
    Codec.w_list b w_request service
  | Compute_commitment { results; commitment } ->
    Codec.w_u8 b 5;
    Codec.w_list b (fun b v -> Codec.w_i64 b v) (Array.to_list results);
    w_commitment pub b commitment
  | Audit_challenge { owner; file; challenge } ->
    Codec.w_u8 b 6;
    Codec.w_bytes b owner;
    Codec.w_bytes b file;
    Codec.w_list b (fun b i -> Codec.w_u32 b i) challenge.Protocol.sample_indices;
    w_warrant pub b challenge.Protocol.warrant
  | Audit_response responses ->
    Codec.w_u8 b 7;
    Codec.w_list b (w_response pub) responses
  | Ack { ok; detail } ->
    Codec.w_u8 b 8;
    Codec.w_bool b ok;
    Codec.w_bytes b detail);
  let data = Buffer.contents b in
  account tx_by_kind c_tx_bytes (kind_name msg) (String.length data);
  data

let decode pub data =
  let r = Codec.reader data in
  let msg =
    match Codec.r_u8 r with
    | 1 ->
      let file = Codec.r_bytes r in
      let owner = Codec.r_bytes r in
      let blocks = Array.of_list (Codec.r_list r (r_signed_block pub)) in
      Upload { Signer.file; owner; blocks }
    | 2 ->
      let file = Codec.r_bytes r in
      let indices = Codec.r_list r Codec.r_u32 in
      Storage_challenge { file; indices }
    | 3 ->
      Storage_response
        (Codec.r_list r (fun r ->
             let i = Codec.r_u32 r in
             let read = Codec.r_option r (r_read_result pub) in
             i, read))
    | 4 ->
      let owner = Codec.r_bytes r in
      let file = Codec.r_bytes r in
      let service = Codec.r_list r r_request in
      Compute_request { owner; file; service }
    | 5 ->
      let results = Array.of_list (Codec.r_list r Codec.r_i64) in
      let commitment = r_commitment pub r in
      Compute_commitment { results; commitment }
    | 6 ->
      let owner = Codec.r_bytes r in
      let file = Codec.r_bytes r in
      let sample_indices = Codec.r_list r Codec.r_u32 in
      let warrant = r_warrant pub r in
      Audit_challenge
        { owner; file; challenge = { Protocol.sample_indices; warrant } }
    | 7 -> Audit_response (Codec.r_list r (r_response pub))
    | 8 ->
      let ok = Codec.r_bool r in
      let detail = Codec.r_bytes r in
      Ack { ok; detail }
    | _ -> raise (Codec.Decode_error "unknown message tag")
  in
  Codec.expect_end r;
  account rx_by_kind c_rx_bytes (kind_name msg) (String.length data);
  msg

let size pub msg = String.length (encode pub msg)
