module Server = Sc_storage.Server
module Signer = Sc_storage.Signer
module Protocol = Sc_audit.Protocol
module Batch = Sc_audit.Batch
module Sampling = Sc_audit.Sampling
module Agg = Sc_ibc.Agg
module Block = Sc_storage.Block

let src = Logs.Src.create "seccloud.agency" ~doc:"Designated-agency audit events"

module Log = (val Logs.src_log src : Logs.LOG)

type t = { system : System.t; drbg : Sc_hash.Drbg.t }

let create system =
  { system; drbg = Sc_hash.Drbg.create ~seed:"designated-agency" }

type storage_report = {
  sampled : int;
  valid_blocks : int;
  invalid_indices : int list;
  intact : bool;
  channel : Transport.error option;
      (* [Some _] when the report was produced by channel failure
         rather than block verification *)
}

let sample_indices t ~n ~samples =
  let samples = min samples n in
  let idx = Array.init n (fun i -> i) in
  for i = 0 to samples - 1 do
    let j = i + Sc_hash.Drbg.uniform_int t.drbg (n - i) in
    let tmp = idx.(i) in
    idx.(i) <- idx.(j);
    idx.(j) <- tmp
  done;
  List.init samples (fun i -> idx.(i))

let read_samples t cloud ~file ~samples =
  match Server.file_size (Cloud.storage cloud) file with
  | None -> None
  | Some n ->
    let indices = sample_indices t ~n ~samples in
    Some
      (List.map
         (fun i -> i, Server.read (Cloud.storage cloud) ~file ~index:i)
         indices)

let report_of_checks checks =
  let sampled = List.length checks in
  let invalid_indices =
    List.filter_map (fun (i, ok) -> if ok then None else Some i) checks
  in
  {
    sampled;
    valid_blocks = sampled - List.length invalid_indices;
    invalid_indices;
    intact = invalid_indices = [];
    channel = None;
  }

let audit_storage t cloud ~owner ~file ~samples =
  let pub = System.public t.system in
  let da_key = System.da_key t.system in
  match read_samples t cloud ~file ~samples with
  | None ->
    { sampled = 0; valid_blocks = 0; invalid_indices = []; intact = false;
      channel = None }
  | Some reads ->
    let checks =
      List.map
        (fun (i, read) ->
          match read with
          | None -> i, false
          | Some { Server.claimed; signed } ->
            ( i,
              claimed.Block.index = i
              && Signer.verify_block pub ~verifier_key:da_key ~role:`Da ~owner
                   claimed signed ))
        reads
    in
    let report = report_of_checks checks in
    Log.info (fun m ->
        m "storage audit %s/%s: %d/%d valid, intact=%b" owner file
          report.valid_blocks report.sampled report.intact);
    report

let audit_storage_batched t cloud ~owner ~file ~samples =
  let pub = System.public t.system in
  let da_key = System.da_key t.system in
  match read_samples t cloud ~file ~samples with
  | None ->
    { sampled = 0; valid_blocks = 0; invalid_indices = []; intact = false;
      channel = None }
  | Some reads ->
    let well_formed =
      List.filter_map
        (fun (i, read) ->
          match read with
          | Some { Server.claimed; signed } when claimed.Block.index = i ->
            Some (i, claimed, signed)
          | Some _ | None -> None)
        reads
    in
    let missing =
      List.filter_map
        (fun (i, read) ->
          match read with
          | Some { Server.claimed; _ } when claimed.Block.index = i -> None
          | Some _ | None -> Some i)
        reads
    in
    let entries =
      List.map
        (fun (_, claimed, signed) ->
          {
            Agg.signer = owner;
            msg = Block.signing_message claimed;
            dvs = Signer.dvs_for `Da signed;
          })
        well_formed
    in
    if missing = [] && Agg.verify_batch pub ~verifier_key:da_key entries then
      {
        sampled = List.length reads;
        valid_blocks = List.length reads;
        invalid_indices = [];
        intact = true;
        channel = None;
      }
    else begin
      (* Locate offenders individually. *)
      let checks =
        List.map
          (fun (i, read) ->
            match read with
            | None -> i, false
            | Some { Server.claimed; signed } ->
              ( i,
                claimed.Block.index = i
                && Signer.verify_block pub ~verifier_key:da_key ~role:`Da
                     ~owner claimed signed ))
          reads
      in
      report_of_checks checks
    end

let choose_sample_size ?(eps = 1e-4) ?(range = infinity) ~csc ~ssc () =
  match
    Sampling.required_samples ~csc ~ssc ~range ~sig_forge:1e-9 ~eps ()
  with
  | Some tt -> tt
  | None -> max_int

let audit_computation t cloud ~owner ~execution ~warrant ~now ~samples =
  let pub = System.public t.system in
  let da_key = System.da_key t.system in
  let commitment = Protocol.commitment_of_execution execution in
  let challenge =
    Protocol.make_challenge ~drbg:t.drbg ~n_tasks:commitment.Protocol.n_tasks
      ~samples ~warrant
  in
  match Cloud.respond_to_audit cloud ~now execution challenge with
  | None ->
    { Protocol.valid = false; failures = [ Protocol.Warrant_invalid ] }
  | Some responses ->
    let verdict =
      Protocol.verify pub ~verifier_key:da_key ~role:`Da ~owner commitment
        challenge responses
    in
    Log.info (fun m ->
        m "computation audit %s (t=%d): valid=%b, %d failures" owner samples
          verdict.Protocol.valid
          (List.length verdict.Protocol.failures));
    verdict

let audit_computation_batched t jobs ~now ~samples =
  let pub = System.public t.system in
  let da_key = System.da_key t.system in
  let prepared =
    List.filter_map
      (fun (cloud, owner, execution, warrant) ->
        let commitment = Protocol.commitment_of_execution execution in
        let challenge =
          Protocol.make_challenge ~drbg:t.drbg
            ~n_tasks:commitment.Protocol.n_tasks ~samples ~warrant
        in
        match Cloud.respond_to_audit cloud ~now execution challenge with
        | None -> None
        | Some responses ->
          Some { Batch.owner; commitment; challenge; responses })
      jobs
  in
  if List.length prepared < List.length jobs then
    { Protocol.valid = false; failures = [ Protocol.Warrant_invalid ] }
  else Batch.verify_jobs pub ~verifier_key:da_key ~role:`Da prepared
