(** Message-driven protocol endpoints: a cloud server and a DA that
    communicate exclusively through encoded {!Wire} bytes carried by
    a {!Transport}, the way a deployed SecCloud would over TCP.

    The server endpoint is a pure byte-in/byte-out handler around a
    {!Cloud.t}; the DA endpoint drives complete audit conversations
    through the fault-injectable channel and returns verdicts.  Both
    sides re-validate everything they decode, so the pair double as
    an integration test of the wire layer: any message the channel
    (or an attacker-in-the-middle) mangles is rejected, retried, and
    ultimately blamed with a typed {!Transport.error}-derived
    failure rather than an exception. *)

module Server : sig
  type t

  val create : System.t -> Cloud.t -> t

  val handle : t -> now:float -> string -> string
  (** Process one encoded request and return the encoded reply:
      - [Upload] → [Ack] (verification per the server's behaviour);
      - [Storage_challenge] → [Storage_response];
      - [Compute_request] → [Compute_commitment] (the execution is
        retained, keyed by owner and file, for later audits);
      - [Audit_challenge] → [Audit_response] or an [Ack] error when
        the warrant is rejected or no execution matches.
      Malformed input or unexpected message kinds yield an error
      [Ack] rather than an exception.  Partially applied,
      [handle server] is exactly the handler a {!Transport.create}
      expects. *)
end

module Da : sig
  type t

  val create : System.t -> t

  val audit_storage_over_wire :
    t ->
    transport:Transport.t ->
    owner:string ->
    file:string ->
    indices:int list ->
    Agency.storage_report
  (** Sends a [Storage_challenge] through the transport (retrying per
      its policy) and verifies whatever comes back.  A round that
      exhausts its retries yields a report with
      [channel = Some Timeout/Tampered] and every index flagged
      invalid — the blame path treats unresponsive servers like
      failed verifications. *)

  val audit_computation_over_wire :
    t ->
    transport:Transport.t ->
    owner:string ->
    file:string ->
    commitment:Sc_audit.Protocol.commitment ->
    warrant:Sc_ibc.Warrant.signed ->
    now:float ->
    samples:int ->
    Sc_audit.Protocol.verdict
  (** Runs the full Algorithm-1 conversation over the transport.  On
      channel failure the verdict carries a typed
      [Transport_timeout] / [Transport_tampered] blame naming
      {!Transport.peer}. *)

  type batch_target = {
    transport : Transport.t;
    owner : string;
    file : string;
    commitment : Sc_audit.Protocol.commitment;
    warrant : Sc_ibc.Warrant.signed;
  }

  val audit_batch_over_wire :
    t ->
    targets:batch_target list ->
    samples:int ->
    Sc_audit.Protocol.verdict
  (** §VI batched auditing over the wire: every responsive target
      contributes a job to one {!Sc_audit.Batch.verify_jobs} round
      (batch equations with per-job fallback for blame); servers
      whose round exhausted retries are folded in as typed
      [Transport_*] failures via
      {!Sc_audit.Batch.flag_unresponsive}. *)
end
