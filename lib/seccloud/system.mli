(** Protocol I — system initialization and registration.

    One {!t} models a deployment: the SIO's published parameters, a
    designated agency, a set of cloud servers and any number of
    registered users.  All randomness flows from a named seed, so
    every run is reproducible. *)

type t

val create :
  ?params:Sc_pairing.Params.t lazy_t ->
  seed:string ->
  cs_ids:string list ->
  da_id:string ->
  unit ->
  t
(** Sets up the SIO (master key, P_pub), extracts keys for the DA and
    each cloud server.  [params] defaults to
    {!Sc_pairing.Params.small}. *)

val public : t -> Sc_ibc.Setup.public
val da_id : t -> string
val da_key : t -> Sc_ibc.Setup.identity_key
val cs_ids : t -> string list

val cs_key : t -> string -> Sc_ibc.Setup.identity_key
(** @raise Not_found for unknown server identities. *)

val register_user : t -> string -> Sc_ibc.Setup.identity_key
(** Extracts (or returns the already-extracted) key for a user.
    Domain-safe: the service layer's shard workers may register
    tenants concurrently; extraction is a pure function of the
    identity, so the result never depends on the schedule. *)

val drbg : t -> Sc_hash.Drbg.t
(** The system-wide deterministic randomness source. *)

val bytes_source : t -> int -> string
