(** A fault-injectable request/response transport for {!Wire}
    messages, with a bounded-retry policy over a deterministic
    simulated clock.

    Protocols II-IV are specified over an implicit perfect channel,
    but the §III-B threat model assumes servers that drop, delay and
    tamper; this module is the message layer that makes the audit
    loop survive such a channel.  Every fault is drawn from an
    injected {!Sc_hash.Drbg}, so a lossy run reproduces
    byte-for-byte.

    A call that exhausts its retries returns a typed {!error} rather
    than raising, which the endpoints translate into the audit blame
    path: unresponsive servers are flagged like failed
    verifications.

    Telemetry: [transport.rpc], [transport.attempts],
    [transport.retry], [transport.timeout],
    [transport.tamper_detected], [transport.mismatch], the injected
    fault counters [transport.fault.*], and a [transport.rpc] span
    per logical call. *)

type faults = {
  drop : float;  (** per-direction probability a message is lost *)
  duplicate : float;
      (** probability a response is also queued a second time *)
  reorder : float;
      (** probability a queued (duplicated/delayed) response is
          delivered instead of the current one *)
  tamper : float;  (** per-direction probability of a single bit flip *)
  delay_s : float;  (** extra one-way latency per delivery, seconds *)
}

val perfect : faults
(** No faults: every call behaves like the old direct channel. *)

val lossy :
  ?drop:float ->
  ?duplicate:float ->
  ?reorder:float ->
  ?tamper:float ->
  ?delay_s:float ->
  unit ->
  faults
(** All rates default to 0.  @raise Invalid_argument on a rate
    outside [0, 1] or a negative delay. *)

module Retry : sig
  type policy = {
    max_attempts : int;  (** total attempts, including the first *)
    base_backoff_s : float;
    backoff_factor : float;  (** exponential backoff multiplier *)
    attempt_timeout_s : float;
        (** simulated time charged to a lost attempt *)
  }

  val default : policy
  (** 5 attempts, 50 ms base backoff doubling per retry, 1 s
      per-attempt timeout. *)

  val backoff_delay : policy -> attempt:int -> float
  (** Backoff slept before retry number [attempt] (1-based):
      [base · factor^(attempt-1)].
      @raise Invalid_argument if [attempt < 1]. *)
end

type error =
  | Timeout  (** retries exhausted with no usable response *)
  | Tampered
      (** retries exhausted and the last failure was detectable
          in-flight corruption *)

val error_to_string : error -> string
val pp_error : Format.formatter -> error -> unit

type t

val create :
  ?faults:faults ->
  ?policy:Retry.policy ->
  ?drbg:Sc_hash.Drbg.t ->
  ?charge:(bytes:int -> float) ->
  ?now:float ->
  ?peer:string ->
  public:Sc_ibc.Setup.public ->
  handler:(now:float -> string -> string) ->
  unit ->
  t
(** [handler] is the remote side: encoded request bytes in, encoded
    reply bytes out (e.g. {!Endpoint.Server.handle} partially
    applied).  [charge ~bytes] accounts a delivery to an external
    cost model (e.g. {!Sc_sim.Network.record_transfer}) and returns
    its transfer time, which advances the simulated clock; it is
    called once per delivered direction, including retries and
    duplicates, so the network model sees exactly what was sent.
    [now] seeds the clock (default 0), [peer] names the far end for
    blame attribution (default ["peer"]). *)

val peer : t -> string

val injected_tampers : t -> int
(** Bit flips this channel instance has injected so far (fault-layer
    ground truth).  A caller that snapshots this around a protocol
    round can tell "verification failed because the channel mangled a
    message that still decoded" apart from a genuine crypto failure —
    per instance, so concurrent channels on other shards never bleed
    into the classification the way the global
    [transport.fault.tamper] counter would. *)

val now : t -> float
(** The simulated clock: advances by charge-reported transfer times,
    injected delays, per-attempt timeouts and retry backoffs. *)

val set_now : t -> float -> unit
(** Re-align the clock with an external event clock (the simulator
    does this when a scheduled event fires).
    @raise Invalid_argument if the clock would move backwards. *)

val call : t -> expect:string -> Wire.msg -> (Wire.msg, error) result
(** One logical request/response round: encode, deliver through the
    fault layer, decode, retry per policy.  [expect] is the
    {!Wire.kind_name} of the wanted reply; [Ack] replies are always
    delivered too (servers answer errors with [Ack]), {e except} an
    [Ack] carrying a server-side decode failure, which means the
    request was mangled in flight and is retried as tampering.  A
    reply of any other kind (a stale, reordered response) is
    discarded and the attempt retried.

    @raise Invalid_argument if [expect] is not a member of
    {!Wire.kinds}. *)

val rpc : t -> Wire.msg -> (Wire.msg, error) result
(** {!call} accepting any reply kind. *)
