module Signer = Sc_storage.Signer
module Warrant = Sc_ibc.Warrant

type t = { system : System.t; id : string; key : Sc_ibc.Setup.identity_key }

let create system ~id = { system; id; key = System.register_user system id }
let id t = t.id
let key t = t.key

let sign_file t ~cs_id ~file payloads =
  Sc_telemetry.Telemetry.with_span ~name:"user.sign_file"
    ~attrs:[ "blocks", string_of_int (List.length payloads) ]
  @@ fun () ->
  Signer.sign_file (System.public t.system) t.key
    ~bytes_source:(System.bytes_source t.system)
    ~cs_id ~da_id:(System.da_id t.system) ~file payloads

let store t cloud ~file payloads =
  let upload = sign_file t ~cs_id:(Cloud.id cloud) ~file payloads in
  Cloud.accept_upload cloud upload

let store_over t ~transport ~cs_id ~file payloads =
  let upload = sign_file t ~cs_id ~file payloads in
  match Transport.call transport ~expect:"ack" (Wire.Upload upload) with
  | Error e -> Error e
  | Ok (Wire.Ack { ok; _ }) -> Ok ok
  | Ok _ -> Ok false

let delegate_audit t ~now ~lifetime ~scope =
  Warrant.issue (System.public t.system) t.key
    ~bytes_source:(System.bytes_source t.system)
    ~delegatee:(System.da_id t.system) ~now ~lifetime ~scope

let verify_own_block t ~role ~verifier_key
    { Sc_storage.Server.claimed; signed } =
  Signer.verify_block (System.public t.system) ~verifier_key ~role ~owner:t.id
    claimed signed
