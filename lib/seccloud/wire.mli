(** The binary wire protocol: every message the parties exchange in
    Protocols II/III and the audit flow, with a tagged, length-prefixed
    encoding.

    Having a concrete wire format serves three purposes: the simulator
    charges *exact* transfer sizes to its network model, tests can
    tamper with bytes in flight (failure injection), and the encoding
    documents precisely what each exchange costs — the C_trans of
    Theorem 3. *)

exception Decode_error of string
(** Re-export of {!Codec.Decode_error}. *)

type msg =
  | Upload of Sc_storage.Signer.upload
      (** Protocol II: user → server. *)
  | Storage_challenge of { file : string; indices : int list }
      (** DA → server. *)
  | Storage_response of
      (int * Sc_storage.Server.read_result option) list
      (** server → DA. *)
  | Compute_request of {
      owner : string;
      file : string;
      service : Sc_compute.Task.service;
    }  (** user → server (Protocol III). *)
  | Compute_commitment of {
      results : int array;
      commitment : Sc_audit.Protocol.commitment;
    }  (** server → user/DA: Y and Sig(R). *)
  | Audit_challenge of {
      owner : string;
      file : string;
      challenge : Sc_audit.Protocol.challenge;
    }  (** DA → server, warrant included; owner/file route the
          challenge to the right execution. *)
  | Audit_response of Sc_compute.Executor.response list
      (** server → DA: blocks, signatures, results, sibling sets. *)
  | Ack of { ok : bool; detail : string }
      (** Generic acknowledgement / error reply. *)

val encode : Sc_ibc.Setup.public -> msg -> string

val decode : Sc_ibc.Setup.public -> string -> msg
(** @raise Decode_error on malformed input (including trailing
    bytes). *)

val size : Sc_ibc.Setup.public -> msg -> int
(** [String.length (encode pub msg)]. *)

val kind_name : msg -> string
(** Lowercase constructor tag, e.g. ["audit_response"] — the label
    under which telemetry counters [wire.tx.<kind>.{msgs,bytes}] and
    [wire.rx.<kind>.{msgs,bytes}] account every encode/decode
    (encodes include {!size} probes: exactly what the simulator
    charges its network model). *)

val kinds : string list
(** Every kind label, in tag order. *)
