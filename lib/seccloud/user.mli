(** A cloud user: owns data, signs and uploads it (Protocol II client
    side), requests computations and delegates auditing to the DA. *)

type t

val create : System.t -> id:string -> t
val id : t -> string
val key : t -> Sc_ibc.Setup.identity_key

val sign_file : t -> cs_id:string -> file:string -> string list -> Sc_storage.Signer.upload
(** Data Signing for every block, designated to the given server and
    to the system's DA. *)

val store : t -> Cloud.t -> file:string -> string list -> bool
(** Sign and upload in one step; returns the server's accept flag. *)

val store_over :
  t ->
  transport:Transport.t ->
  cs_id:string ->
  file:string ->
  string list ->
  (bool, Transport.error) result
(** Protocol II over the wire: sign, send the [Upload] through the
    fault-injectable transport (retrying per its policy) and return
    the server's accept flag, or the typed channel error when every
    attempt was lost or mangled. *)

val delegate_audit :
  t ->
  now:float ->
  lifetime:float ->
  scope:string ->
  Sc_ibc.Warrant.signed
(** Issues the audit warrant naming the DA (§V-D). *)

val verify_own_block :
  t ->
  role:[ `Cs | `Da ] ->
  verifier_key:Sc_ibc.Setup.identity_key ->
  Sc_storage.Server.read_result ->
  bool
(** Convenience: check a read result against the owner's identity. *)
