module Telemetry = Sc_telemetry.Telemetry
module Labels = Sc_telemetry.Labels

type faults = {
  drop : float;
  duplicate : float;
  reorder : float;
  tamper : float;
  delay_s : float;
}

let perfect =
  { drop = 0.0; duplicate = 0.0; reorder = 0.0; tamper = 0.0; delay_s = 0.0 }

let lossy ?(drop = 0.0) ?(duplicate = 0.0) ?(reorder = 0.0) ?(tamper = 0.0)
    ?(delay_s = 0.0) () =
  let rate name v =
    if v < 0.0 || v > 1.0 || Float.is_nan v then
      invalid_arg (Printf.sprintf "Transport.lossy: %s outside [0, 1]" name)
  in
  rate "drop" drop;
  rate "duplicate" duplicate;
  rate "reorder" reorder;
  rate "tamper" tamper;
  if delay_s < 0.0 then invalid_arg "Transport.lossy: negative delay";
  { drop; duplicate; reorder; tamper; delay_s }

module Retry = struct
  type policy = {
    max_attempts : int;
    base_backoff_s : float;
    backoff_factor : float;
    attempt_timeout_s : float;
  }

  let default =
    {
      max_attempts = 5;
      base_backoff_s = 0.05;
      backoff_factor = 2.0;
      attempt_timeout_s = 1.0;
    }

  let backoff_delay p ~attempt =
    if attempt < 1 then invalid_arg "Transport.Retry.backoff_delay: attempt < 1";
    p.base_backoff_s *. (p.backoff_factor ** float_of_int (attempt - 1))
end

type error = Timeout | Tampered

let error_to_string = function Timeout -> "timeout" | Tampered -> "tampered"
let pp_error fmt e = Format.pp_print_string fmt (error_to_string e)

type t = {
  faults : faults;
  policy : Retry.policy;
  drbg : Sc_hash.Drbg.t;
  charge : bytes:int -> float;
  pub : Sc_ibc.Setup.public;
  handler : now:float -> string -> string;
  peer_name : string;
  stale : string Queue.t; (* responses held back by duplication/reordering *)
  mutable clock : float;
  mutable tampers : int; (* bit flips this instance injected *)
}

let c_rpc = Telemetry.counter "transport.rpc"
let c_attempts = Telemetry.counter "transport.attempts"
let c_retry = Telemetry.counter "transport.retry"
let c_timeout = Telemetry.counter "transport.timeout"
let c_tamper_detected = Telemetry.counter "transport.tamper_detected"
let c_mismatch = Telemetry.counter "transport.mismatch"
let c_fault_drop = Telemetry.counter "transport.fault.drop"
let c_fault_dup = Telemetry.counter "transport.fault.duplicate"
let c_fault_reorder = Telemetry.counter "transport.fault.reorder"
let c_fault_tamper = Telemetry.counter "transport.fault.tamper"

(* RPC outcomes by label — "ok" or the typed error name. *)
let v_outcome = Labels.counter_vec ~label:"outcome" "transport.rpc.outcome"

let create ?(faults = perfect) ?(policy = Retry.default) ?drbg
    ?(charge = fun ~bytes:_ -> 0.0) ?(now = 0.0) ?(peer = "peer") ~public
    ~handler () =
  if policy.Retry.max_attempts < 1 then
    invalid_arg "Transport.create: max_attempts < 1";
  let drbg =
    match drbg with
    | Some d -> d
    | None -> Sc_hash.Drbg.create ~seed:("transport:" ^ peer)
  in
  {
    faults;
    policy;
    drbg;
    charge;
    pub = public;
    handler;
    peer_name = peer;
    stale = Queue.create ();
    clock = now;
    tampers = 0;
  }

let peer t = t.peer_name
let now t = t.clock
let injected_tampers t = t.tampers

let set_now t v =
  if v < t.clock then invalid_arg "Transport.set_now: clock moving backwards";
  t.clock <- v

let flip t p = p > 0.0 && Sc_hash.Drbg.float t.drbg < p

let tamper_bytes t data =
  if String.length data = 0 then data
  else begin
    Telemetry.incr c_fault_tamper;
    t.tampers <- t.tampers + 1;
    let i = Sc_hash.Drbg.uniform_int t.drbg (String.length data) in
    let bit = 1 lsl Sc_hash.Drbg.uniform_int t.drbg 8 in
    String.mapi
      (fun j c -> if j = i then Char.chr (Char.code c lxor bit) else c)
      data
  end

(* One direction of the channel: the message is dropped, possibly
   tampered, and charged to the external cost model only when it is
   actually on the wire. *)
let deliver t data =
  if flip t t.faults.drop then begin
    Telemetry.incr c_fault_drop;
    None
  end
  else begin
    let data = if flip t t.faults.tamper then tamper_bytes t data else data in
    t.clock <- t.clock +. t.faults.delay_s +. t.charge ~bytes:(String.length data);
    Some data
  end

(* One attempt: request out, handler, response back — any direction
   may lose or corrupt the bytes, and the response may be displaced
   by a stale (duplicated, reordered) one.  Each attempt runs in its
   own [transport.attempt] child span whose context rides the
   envelope, so server-side spans attach to the attempt that carried
   them and retries are distinguishable in the trace. *)
let attempt t ~nth msg =
  Telemetry.with_span ~name:"transport.attempt"
    ~attrs:[ "attempt", string_of_int nth ]
  @@ fun () ->
  let req =
    Envelope.wrap ?ctx:(Telemetry.current_context ()) (Wire.encode t.pub msg)
  in
  match deliver t req with
  | None -> None
  | Some req_bytes ->
    let resp = t.handler ~now:t.clock req_bytes in
    if flip t t.faults.duplicate then begin
      Telemetry.incr c_fault_dup;
      Queue.push resp t.stale
    end;
    let resp =
      if flip t t.faults.reorder && not (Queue.is_empty t.stale) then begin
        Telemetry.incr c_fault_reorder;
        Queue.push resp t.stale;
        Queue.pop t.stale
      end
      else resp
    in
    deliver t resp

(* The server answers a request it could not parse with this Ack; at
   the client it is evidence the *request* was mangled in flight. *)
let is_request_mangled detail =
  String.length detail >= 7 && String.sub detail 0 7 = "decode:"

let call_gen t ~accept msg =
  Telemetry.incr c_rpc;
  Telemetry.with_span ~name:"transport.rpc"
    ~attrs:[ "kind", Wire.kind_name msg; "peer", t.peer_name ]
  @@ fun () ->
  let rec go k last_err =
    if k > t.policy.Retry.max_attempts then begin
      if last_err = Timeout then Telemetry.incr c_timeout;
      Error last_err
    end
    else begin
      if k > 1 then begin
        Telemetry.incr c_retry;
        t.clock <- t.clock +. Retry.backoff_delay t.policy ~attempt:(k - 1)
      end;
      Telemetry.incr c_attempts;
      match attempt t ~nth:k msg with
      | None ->
        (* Nothing arrived: wait out the attempt timeout and retry. *)
        t.clock <- t.clock +. t.policy.Retry.attempt_timeout_s;
        go (k + 1) last_err
      | Some resp_bytes -> (
        (* The response context (the server's own span) is not adopted
           client-side — the client's rpc span is already the local
           parent; unwrap only strips the framing. *)
        match
          let _ctx, payload = Envelope.unwrap resp_bytes in
          Wire.decode t.pub payload
        with
        | exception Wire.Decode_error _ ->
          Telemetry.incr c_tamper_detected;
          go (k + 1) Tampered
        | Wire.Ack { ok = false; detail } when is_request_mangled detail ->
          Telemetry.incr c_tamper_detected;
          go (k + 1) Tampered
        | reply ->
          if accept (Wire.kind_name reply) then Ok reply
          else begin
            (* A stale response from an earlier attempt: drop it. *)
            Telemetry.incr c_mismatch;
            go (k + 1) last_err
          end)
    end
  in
  let result = go 1 Timeout in
  let outcome =
    match result with Ok _ -> "ok" | Error e -> error_to_string e
  in
  Labels.incr v_outcome outcome;
  Telemetry.add_attr "outcome" outcome;
  result

let call t ~expect msg =
  if not (List.mem expect Wire.kinds) then
    invalid_arg (Printf.sprintf "Transport.call: unknown kind %S" expect);
  call_gen t ~accept:(fun kind -> kind = expect || kind = "ack") msg

let rpc t msg = call_gen t ~accept:(fun _ -> true) msg
