(* Transport envelope: an *unsigned* trace-context field framed in
   front of the Wire payload.

   Layout:  flag byte 0x00                        -> bare payload
            flag byte 0x01, 24-byte trace context,
            1 XOR-fold checksum byte              -> traced payload

   The context is observability metadata, not protocol input: it is
   deliberately outside every signed/KDF'd message (no crypto change,
   and a tampering adversary gains nothing by forging it).  Because
   the channel can flip bits, the context carries its own checksum —
   a corrupted context is *dropped* (counted in [trace.ctx.invalid])
   while the payload goes on to Wire.decode untouched, so trace
   damage can never turn into a protocol failure that signature
   verification would not have caught anyway.  A mangled flag or a
   truncated context raises [Codec.Decode_error] like any other
   framing damage. *)

module Telemetry = Sc_telemetry.Telemetry
module Trace_context = Sc_telemetry.Trace_context

let c_sent = Telemetry.counter "trace.ctx.sent"
let c_received = Telemetry.counter "trace.ctx.received"
let c_invalid = Telemetry.counter "trace.ctx.invalid"

let xor_fold s =
  let x = ref 0 in
  String.iter (fun c -> x := !x lxor Char.code c) s;
  Char.chr !x

let header_bytes = 2 + Trace_context.ctx_bytes (* flag + ctx + checksum *)

let wrap ?ctx payload =
  match ctx with
  | None -> "\x00" ^ payload
  | Some ctx ->
    let c = Trace_context.to_bytes ctx in
    Telemetry.incr c_sent;
    "\x01" ^ c ^ String.make 1 (xor_fold c) ^ payload

let unwrap data =
  if String.length data = 0 then
    raise (Codec.Decode_error "empty envelope");
  match data.[0] with
  | '\x00' -> None, String.sub data 1 (String.length data - 1)
  | '\x01' ->
    if String.length data < header_bytes then
      raise (Codec.Decode_error "truncated trace context");
    let c = String.sub data 1 Trace_context.ctx_bytes in
    let sum = data.[1 + Trace_context.ctx_bytes] in
    let payload =
      String.sub data header_bytes (String.length data - header_bytes)
    in
    let ctx =
      if xor_fold c <> sum then begin
        Telemetry.incr c_invalid;
        None
      end
      else
        match Trace_context.of_bytes c with
        | Some ctx ->
          Telemetry.incr c_received;
          Some ctx
        | None ->
          Telemetry.incr c_invalid;
          None
    in
    ctx, payload
  | _ -> raise (Codec.Decode_error "invalid envelope flag")
