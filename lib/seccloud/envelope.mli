(** Transport envelope: an unsigned trace-context field framed in
    front of every Wire payload.

    The context rides outside all signed/KDF'd messages — it is
    observability metadata a tamperer gains nothing by forging — and
    carries its own XOR-fold checksum so channel bit-flips in the
    context are *dropped* (counter [trace.ctx.invalid]) without
    touching payload verification.  A mangled flag byte or truncated
    context raises {!Codec.Decode_error} like any other framing
    damage. *)

val header_bytes : int
(** Traced-envelope overhead: flag + context + checksum (26). *)

val wrap : ?ctx:Sc_telemetry.Trace_context.t -> string -> string
(** Frame a payload, optionally with a trace context. *)

val unwrap : string -> Sc_telemetry.Trace_context.t option * string
(** Split a framed message back into (context, payload).  The context
    is [None] when absent or corrupted (checksum/shape mismatch —
    counted, never fatal).
    @raise Codec.Decode_error on an empty message, unknown flag byte
    or truncated context. *)
