(** The Designated Agency: audits storage and computation on behalf
    of users (§V-D, §VI), choosing sample sizes with the §VII
    analysis. *)

type t

val create : System.t -> t

type storage_report = {
  sampled : int;
  valid_blocks : int;
  invalid_indices : int list;
  intact : bool;
  channel : Transport.error option;
      (** [Some _] when the verdict is a channel blame (the server
          never usably answered over the wire) rather than the result
          of block verification. *)
}

val audit_storage :
  t -> Cloud.t -> owner:string -> file:string -> samples:int -> storage_report
(** Protocol II auditing: sample block positions, read them from the
    server and run designated verification (eq. 7) on each. *)

val audit_storage_batched :
  t -> Cloud.t -> owner:string -> file:string -> samples:int -> storage_report
(** Same decision, but all sampled signatures verified in one
    aggregate equation (§VI).  On aggregate failure it falls back to
    per-block checks to locate the bad indices. *)

val choose_sample_size :
  ?eps:float -> ?range:float -> csc:float -> ssc:float -> unit -> int
(** Required t for the target ε (default 1e−4) against assumed
    confidences — the Figure 4 calculation. *)

val audit_computation :
  t ->
  Cloud.t ->
  owner:string ->
  execution:Sc_compute.Executor.execution ->
  warrant:Sc_ibc.Warrant.signed ->
  now:float ->
  samples:int ->
  Sc_audit.Protocol.verdict
(** Protocol III auditing: challenge, collect responses, run
    Algorithm 1. *)

val audit_computation_batched :
  t ->
  (Cloud.t * string * Sc_compute.Executor.execution * Sc_ibc.Warrant.signed) list ->
  now:float ->
  samples:int ->
  Sc_audit.Protocol.verdict
(** Concurrent multi-user auditing with batched verification (§VI):
    one aggregated signature equation across all jobs. *)
