module Task = Sc_compute.Task
module Executor = Sc_compute.Executor

type shard = {
  cloud : Cloud.t;
  service : Task.service;
  original_indices : int array;
}

type execution = {
  shards : (shard * Executor.execution) list;
  total_tasks : int;
  owner : string;
  file : string;
}

let plan ~clouds service =
  if clouds = [] then invalid_arg "Distributed.plan: no clouds";
  if service = [] then invalid_arg "Distributed.plan: empty service";
  let cloud_arr = Array.of_list clouds in
  let n_clouds = Array.length cloud_arr in
  let buckets = Array.make n_clouds [] in
  List.iteri
    (fun i request ->
      let b = i mod n_clouds in
      buckets.(b) <- (i, request) :: buckets.(b))
    service;
  List.filter_map
    (fun (b, assigned) ->
      match List.rev assigned with
      | [] -> None
      | assigned ->
        Some
          {
            cloud = cloud_arr.(b);
            service = List.map snd assigned;
            original_indices = Array.of_list (List.map fst assigned);
          })
    (List.mapi (fun b l -> b, l) (Array.to_list buckets))

let store_replicated user clouds ~file payloads =
  List.for_all (fun cloud -> User.store user cloud ~file payloads) clouds

let execute ~owner ~file shards =
  (* Shards target distinct clouds (each with its own DRBG and server
     state), so execution fans out across the domain pool; results are
     re-addressed by original index below, independent of schedule. *)
  let shards =
    Sc_parallel.parallel_map
      (fun shard ->
        shard, Cloud.execute shard.cloud ~owner ~file shard.service)
      shards
  in
  let total_tasks =
    List.fold_left (fun acc (s, _) -> acc + Array.length s.original_indices) 0
      shards
  in
  { shards; total_tasks; owner; file }

let results e =
  let out = Array.make e.total_tasks 0 in
  List.iter
    (fun (shard, execution) ->
      let ys = Executor.results execution in
      Array.iteri (fun i orig -> out.(orig) <- ys.(i)) shard.original_indices)
    e.shards;
  out

let map_reduce ~owner ~file ~clouds ~map ~positions ~reduce =
  match
    plan ~clouds (List.map (fun position -> { Task.func = map; position }) positions)
  with
  | exception Invalid_argument m -> Error m
  | shards ->
    let e = execute ~owner ~file shards in
    Ok (Task.apply reduce (Array.to_list (results e)), e)

let audit agency e ~warrant ~now ~samples_per_shard =
  let jobs =
    List.map
      (fun (shard, execution) -> shard.cloud, e.owner, execution, warrant)
      e.shards
  in
  Agency.audit_computation_batched agency jobs ~now ~samples:samples_per_shard
