module Protocol = Sc_audit.Protocol
module Batch = Sc_audit.Batch
module Server_impl = Sc_storage.Server
module Telemetry = Sc_telemetry.Telemetry

module Server = struct
  type t = {
    system : System.t;
    cloud : Cloud.t;
    executions : (string * string, Sc_compute.Executor.execution) Hashtbl.t;
  }

  let create system cloud = { system; cloud; executions = Hashtbl.create 8 }

  (* Replies carry the server's own span context so the client could,
     in principle, stitch the server timeline; the client currently
     ignores it (its rpc span is already the local parent). *)
  let reply t msg =
    Envelope.wrap
      ?ctx:(Telemetry.current_context ())
      (Wire.encode (System.public t.system) msg)

  let err t detail = reply t (Wire.Ack { ok = false; detail })

  let handle_payload t ~now pub payload =
    match Wire.decode pub payload with
    | exception Wire.Decode_error detail -> err t ("decode: " ^ detail)
    | Wire.Upload upload ->
      let ok = Cloud.accept_upload t.cloud upload in
      reply t (Wire.Ack { ok; detail = (if ok then "stored" else "rejected") })
    | Wire.Storage_challenge { file; indices } ->
      let items =
        List.map
          (fun i -> i, Server_impl.read (Cloud.storage t.cloud) ~file ~index:i)
          indices
      in
      reply t (Wire.Storage_response items)
    | Wire.Compute_request { owner; file; service } ->
      (match Cloud.execute t.cloud ~owner ~file service with
      | exception Invalid_argument m -> err t m
      | execution ->
        Hashtbl.replace t.executions (owner, file) execution;
        reply t
          (Wire.Compute_commitment
             {
               results = Sc_compute.Executor.results execution;
               commitment = Protocol.commitment_of_execution execution;
             }))
    | Wire.Audit_challenge { owner; file; challenge } ->
      (match Hashtbl.find_opt t.executions (owner, file) with
      | None -> err t "no execution for this owner/file"
      | Some execution ->
        (match Cloud.respond_to_audit t.cloud ~now execution challenge with
        | None -> err t "warrant rejected"
        | Some responses -> reply t (Wire.Audit_response responses)))
    | Wire.Storage_response _ | Wire.Compute_commitment _
    | Wire.Audit_response _ | Wire.Ack _ ->
      err t "unexpected message kind"

  (* The request envelope is peeled before Wire.decode; its trace
     context (if intact) becomes the ambient parent for the
     [endpoint.handle] span, joining the server's work to the caller's
     trace.  Envelope damage is reported exactly like payload damage —
     a "decode:" Ack the client counts as request tampering. *)
  let handle t ~now data =
    let pub = System.public t.system in
    match Envelope.unwrap data with
    | exception Wire.Decode_error detail -> err t ("decode: " ^ detail)
    | ctx, payload ->
      Telemetry.with_context ctx @@ fun () ->
      Telemetry.with_span ~name:"endpoint.handle" @@ fun () ->
      handle_payload t ~now pub payload
end

module Da = struct
  type t = { system : System.t; drbg : Sc_hash.Drbg.t }

  let create system =
    { system; drbg = Sc_hash.Drbg.create ~seed:"da-endpoint" }

  let audit_storage_over_wire t ~transport ~owner ~file ~indices =
    let pub = System.public t.system in
    let da_key = System.da_key t.system in
    let fail channel =
      {
        Agency.sampled = List.length indices;
        valid_blocks = 0;
        invalid_indices = indices;
        intact = false;
        channel;
      }
    in
    match Transport.call transport ~expect:"storage_response"
            (Wire.Storage_challenge { file; indices })
    with
    | Error e -> fail (Some e)
    | Ok (Wire.Storage_response items) ->
      let checks =
        List.map
          (fun i ->
            match List.assoc_opt i items with
            | Some (Some { Server_impl.claimed; signed }) ->
              ( i,
                claimed.Sc_storage.Block.index = i
                && Sc_storage.Signer.verify_block pub ~verifier_key:da_key
                     ~role:`Da ~owner claimed signed )
            | Some None | None -> i, false)
          indices
      in
      let invalid = List.filter_map (fun (i, ok) -> if ok then None else Some i) checks in
      {
        Agency.sampled = List.length indices;
        valid_blocks = List.length indices - List.length invalid;
        invalid_indices = invalid;
        intact = invalid = [];
        channel = None;
      }
    | Ok _ ->
      (* The server answered (an error Ack): the channel worked, the
         audit simply failed. *)
      fail None

  let challenge_over_wire t ~transport ~owner ~file ~commitment ~warrant
      ~samples =
    let challenge =
      Protocol.make_challenge ~drbg:t.drbg
        ~n_tasks:commitment.Protocol.n_tasks ~samples ~warrant
    in
    match Transport.call transport ~expect:"audit_response"
            (Wire.Audit_challenge { owner; file; challenge })
    with
    | Error e -> challenge, Error (`Channel e)
    | Ok (Wire.Audit_response responses) -> challenge, Ok responses
    | Ok _ -> challenge, Error `Refused

  let transport_failure transport = function
    | Transport.Timeout -> Protocol.Transport_timeout (Transport.peer transport)
    | Transport.Tampered ->
      Protocol.Transport_tampered (Transport.peer transport)

  let audit_computation_over_wire t ~transport ~owner ~file ~commitment
      ~warrant ~now:_ ~samples =
    let pub = System.public t.system in
    let da_key = System.da_key t.system in
    match
      challenge_over_wire t ~transport ~owner ~file ~commitment ~warrant
        ~samples
    with
    | _, Error (`Channel e) ->
      { Protocol.valid = false; failures = [ transport_failure transport e ] }
    | _, Error `Refused ->
      { Protocol.valid = false; failures = [ Protocol.Warrant_invalid ] }
    | challenge, Ok responses ->
      Protocol.verify pub ~verifier_key:da_key ~role:`Da ~owner commitment
        challenge responses

  type batch_target = {
    transport : Transport.t;
    owner : string;
    file : string;
    commitment : Protocol.commitment;
    warrant : Sc_ibc.Warrant.signed;
  }

  let audit_batch_over_wire t ~targets ~samples =
    let pub = System.public t.system in
    let da_key = System.da_key t.system in
    let jobs = ref [] in
    let timed_out = ref [] in
    let tampered = ref [] in
    let refused = ref 0 in
    List.iter
      (fun tg ->
        match
          challenge_over_wire t ~transport:tg.transport ~owner:tg.owner
            ~file:tg.file ~commitment:tg.commitment ~warrant:tg.warrant
            ~samples
        with
        | challenge, Ok responses ->
          jobs :=
            { Batch.owner = tg.owner; commitment = tg.commitment; challenge;
              responses }
            :: !jobs
        | _, Error (`Channel Transport.Timeout) ->
          timed_out := Transport.peer tg.transport :: !timed_out
        | _, Error (`Channel Transport.Tampered) ->
          tampered := Transport.peer tg.transport :: !tampered
        | _, Error `Refused -> incr refused)
      targets;
    let verdict =
      Batch.verify_jobs pub ~verifier_key:da_key ~role:`Da (List.rev !jobs)
    in
    let verdict =
      (* Servers that answered but refused the challenge fail the
         audit for protocol (not channel) reasons. *)
      if !refused = 0 then verdict
      else
        {
          Protocol.valid = false;
          failures =
            List.init !refused (fun _ -> Protocol.Warrant_invalid)
            @ verdict.Protocol.failures;
        }
    in
    Batch.flag_unresponsive verdict ~timed_out:(List.rev !timed_out)
      ~tampered:(List.rev !tampered)
end
