module Setup = Sc_ibc.Setup

let src = Logs.Src.create "seccloud.system" ~doc:"System initialization events"

module Log = (val Logs.src_log src : Logs.LOG)

type t = {
  sio : Setup.sio;
  pub : Setup.public;
  da_id : string;
  da_key : Setup.identity_key;
  cs_ids : string list;
  cs_keys : (string, Setup.identity_key) Hashtbl.t;
  users : (string, Setup.identity_key) Hashtbl.t;
  users_lock : Mutex.t;
      (* guards [users]: shard workers of the service layer register
         tenants concurrently from pool domains *)
  drbg : Sc_hash.Drbg.t;
}

let create ?(params = Sc_pairing.Params.small) ~seed ~cs_ids ~da_id () =
  let prm = Lazy.force params in
  let drbg = Sc_hash.Drbg.create ~seed:("seccloud-system:" ^ seed) in
  let bytes_source = Sc_hash.Drbg.bytes_source drbg in
  let sio = Setup.create prm ~bytes_source in
  let pub = Setup.public sio in
  let cs_keys = Hashtbl.create 8 in
  List.iter (fun id -> Hashtbl.replace cs_keys id (Setup.extract sio id)) cs_ids;
  Log.info (fun m ->
      m "system initialized: %d servers, da=%s, |q|=%d bits"
        (List.length cs_ids) da_id
        (Sc_bignum.Nat.bit_length prm.Sc_pairing.Params.q));
  {
    sio;
    pub;
    da_id;
    da_key = Setup.extract sio da_id;
    cs_ids;
    cs_keys;
    users = Hashtbl.create 8;
    users_lock = Mutex.create ();
    drbg;
  }

let public t = t.pub
let da_id t = t.da_id
let da_key t = t.da_key
let cs_ids t = t.cs_ids
let cs_key t id = Hashtbl.find t.cs_keys id

(* Extraction is outside the critical section (it is the expensive
   part and is a pure function of [id]); the table update is guarded
   so concurrent shard workers can register tenants safely.  A lost
   race extracts the same key twice and stores one copy — identical
   either way, so results never depend on the schedule. *)
let register_user t id =
  Mutex.lock t.users_lock;
  let known = Hashtbl.find_opt t.users id in
  Mutex.unlock t.users_lock;
  match known with
  | Some key -> key
  | None ->
    let key = Setup.extract t.sio id in
    Mutex.lock t.users_lock;
    let key =
      match Hashtbl.find_opt t.users id with
      | Some existing -> existing
      | None ->
        Hashtbl.replace t.users id key;
        key
    in
    Mutex.unlock t.users_lock;
    Log.info (fun m -> m "registered user %s" id);
    key

let drbg t = t.drbg
let bytes_source t = Sc_hash.Drbg.bytes_source t.drbg
