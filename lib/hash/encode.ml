(* Canonical, injective message framing.

   Every signing/KDF message in the repository used to be built with
   [Printf.sprintf] and a one-byte delimiter ("block|%s|%d|%s", ...).
   Those encodings are ambiguous: the parts can donate bytes to each
   other across the delimiter, so distinct (file, index, data) triples
   can serialize to the same string and a signature over one binds the
   other — the delimiter-injection protocol break catalogued by Zhang
   et al. (2019) for remote integrity-checking schemes.

   [canonical] length-prefixes every part ("<len>:<part>"), which
   makes parsing deterministic and the encoding injective: [decode] is
   a total inverse on the image (and rejects non-canonical length
   digits, so the image itself is unambiguous).  Call sites pass a
   distinct domain-separation tag as the first part. *)

let frame parts =
  List.concat_map
    (fun p -> [ string_of_int (String.length p); ":"; p ])
    parts

let canonical parts = String.concat "" (frame parts)

let decode s =
  let n = String.length s in
  let rec parts acc i =
    if i = n then Some (List.rev acc)
    else begin
      let rec digits j =
        if j < n && s.[j] >= '0' && s.[j] <= '9' then digits (j + 1) else j
      in
      let j = digits i in
      if j = i || j >= n || s.[j] <> ':' then None
      else if j > i + 1 && s.[i] = '0' then None (* leading zero: non-canonical *)
      else
        match int_of_string_opt (String.sub s i (j - i)) with
        | None -> None (* overflow *)
        | Some len ->
          let start = j + 1 in
          if len < 0 || len > n - start then None
          else parts (String.sub s start len :: acc) (start + len)
    end
  in
  parts [] 0

let digest parts = Sha256.digest_concat (frame parts)
