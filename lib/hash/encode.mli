(** Canonical, injective message framing.

    Replaces the delimiter-joined [Printf.sprintf "tag|%s|%d|%s"]
    signing messages, which were forgeable under delimiter injection:
    a file named ["f|1"] at index 2 and a file named ["f"] at index 1
    could serialize to the same string, cross-binding one signature to
    a different (file, index, data) triple.  Each part is tagged with
    its decimal length, so parsing is deterministic and no two
    distinct part lists share an encoding.  Conventionally the first
    part is a domain-separation tag (["block"], ["ibe-ks"], ...). *)

val canonical : string list -> string
(** [canonical parts] is the length-prefixed concatenation
    ["<len>:<part>"] of the parts.  Injective: [decode (canonical l) =
    Some l] for every [l]. *)

val decode : string -> string list option
(** Total inverse of {!canonical} on its image; [None] on anything a
    canonical encoding cannot produce (truncation, trailing bytes,
    leading-zero lengths). *)

val frame : string list -> string list
(** The encoding as a fragment list, [String.concat ""]-equal to
    {!canonical} — feed it to {!Sha256.digest_concat} to hash without
    building the intermediate string. *)

val digest : string list -> string
(** [digest parts = Sha256.digest_concat (frame parts)]: the SHA-256
    digest of the canonical encoding. *)
