module Telemetry = Sc_telemetry.Telemetry

let c_stores = Telemetry.counter "storage.stores"
let c_blocks_stored = Telemetry.counter "storage.blocks_stored"
let c_reads = Telemetry.counter "storage.reads"
let c_read_misses = Telemetry.counter "storage.read_misses"

type behaviour =
  | Honest
  | Delete_fraction of float
  | Corrupt_fraction of float
  | Substitute_fraction of float

type read_result = { claimed : Block.t; signed : Signer.signed_block }

type t = {
  behaviour : behaviour;
  drbg : Sc_hash.Drbg.t;
  files : (string, Signer.signed_block array) Hashtbl.t;
}

let create behaviour ~drbg = { behaviour; drbg; files = Hashtbl.create 8 }
let behaviour t = t.behaviour

let storage_confidence t =
  match t.behaviour with
  | Honest -> 1.0
  | Delete_fraction f | Corrupt_fraction f | Substitute_fraction f ->
    1.0 -. (max 0.0 (min 1.0 f))

let store t (upload : Signer.upload) =
  Telemetry.incr c_stores;
  Telemetry.add c_blocks_stored (Array.length upload.blocks);
  Hashtbl.replace t.files upload.file upload.blocks

let lookup t ~file ~index =
  match Hashtbl.find_opt t.files file with
  | None -> None
  | Some blocks ->
    if index < 0 || index >= Array.length blocks then None else Some (blocks, index)

let honest_result (sb : Signer.signed_block) = { claimed = sb.block; signed = sb }

let read_honest t ~file ~index =
  Option.map (fun (blocks, i) -> honest_result blocks.(i)) (lookup t ~file ~index)

(* Cheating decisions are pseudorandom but *sticky per position*
   (seeded by file and index), modelling a server that deleted or
   corrupted a fixed subset of blocks rather than re-rolling per
   read. *)
let cheats_on ~file ~index fraction =
  let material =
    (* Canonical framing: with the old ":"-joined concatenation a file
       name containing ':' could alias another (file, index) pair and
       inherit its cheat decision. *)
    Sc_hash.Encode.digest [ "server-cheat"; file; string_of_int index ]
  in
  let v = ref 0 in
  String.iter (fun c -> v := ((!v lsl 8) lor Char.code c) land 0xFFFFFF) (String.sub material 0 3);
  float_of_int !v /. 16777216.0 < fraction

let random_payload t n =
  let raw = Sc_hash.Drbg.generate t.drbg n in
  (* Keep payloads printable so logs stay readable. *)
  String.map (fun c -> Char.chr (32 + (Char.code c mod 95))) raw

let read t ~file ~index =
  Telemetry.incr c_reads;
  match lookup t ~file ~index with
  | None ->
    Telemetry.incr c_read_misses;
    None
  | Some (blocks, i) ->
    let sb = blocks.(i) in
    (match t.behaviour with
    | Honest -> Some (honest_result sb)
    | Delete_fraction f ->
      if cheats_on ~file ~index f then begin
        (* The block is gone; the server fabricates a payload but can
           only attach the old signature material. *)
        let fake_data = random_payload t (String.length sb.block.Block.data) in
        let claimed = { sb.block with Block.data = fake_data } in
        Some { claimed; signed = sb }
      end
      else Some (honest_result sb)
    | Corrupt_fraction f ->
      if cheats_on ~file ~index f then begin
        let data = sb.block.Block.data in
        let corrupted =
          if String.length data = 0 then "!"
          else
            String.mapi
              (fun j c -> if j = 0 then Char.chr (Char.code c lxor 1) else c)
              data
        in
        let claimed = { sb.block with Block.data = corrupted } in
        Some { claimed; signed = sb }
      end
      else Some (honest_result sb)
    | Substitute_fraction f ->
      if cheats_on ~file ~index f && Array.length blocks > 1 then begin
        (* Serve a different position's block and signature, claiming
           it sits at the requested index. *)
        let other = (i + 1) mod Array.length blocks in
        let osb = blocks.(other) in
        let claimed = { osb.block with Block.index = i } in
        Some { claimed; signed = osb }
      end
      else Some (honest_result sb))

let file_size t file = Option.map Array.length (Hashtbl.find_opt t.files file)
let files t = Hashtbl.fold (fun k _ acc -> k :: acc) t.files []
