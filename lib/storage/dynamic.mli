(** Dynamic data storage: authenticated update / append / delete.

    The paper's Protocol II is static (sign once, store, audit).  The
    related work it builds on (Wang et al. [5], Erway et al. [15])
    adds *dynamics* via Merkle hash trees; this module provides that
    extension on top of {!Signer}/{!Server}, now backed by the
    persistent {!Sc_merkle.Dynamic_tree}:

    - the client (data owner) keeps only the O(log n) tree frontier
      and its keys — no block data, no full tree;
    - every block is signed over (file, index, version, kind,
      payload), so a server replaying a stale version fails the tree
      check, a server moving data across positions fails the
      signature check, and a tombstone can never collide with user
      data (deletion is a typed leaf state, not a magic payload);
    - [update]/[delete] verify the server's pre-state proof and fold
      the *new* leaf through the same authentication path: O(log n)
      hashing on both sides, no rebuild;
    - [append] is local on both sides (frontier increment / right-
      spine extension) — the previous fetch-all-leaf-hashes O(n)
      round trip is gone;
    - every mutation cross-checks the server's resulting root against
      the client's independently computed one and surfaces a lying or
      lazy server as a typed {!update_error} immediately;
    - [batch] folds k mutations into one root transition so the owner
      signs a single root statement for the lot;
    - the DA audits against a client-signed root statement, checking
      the designated signature, the version, and the rank-annotated
      Merkle path of each sampled block; the stated block count is
      validated against the server's entry range and a hard cap
      before any allocation. *)

type content = Data of string | Tombstone
(** Leaf state.  Deletion is represented structurally — any byte
    string, including former sentinel values, is valid data. *)

type client
(** Owner-side state: frontier, count, keys.  O(log n) in the file
    size, independent of block contents. *)

type server
(** Cloud-side state: versioned signed blocks plus the persistent
    tree. *)

val signing_message :
  file:string -> index:int -> version:int -> payload:string -> string
(** The versioned message covered by a data block's signature. *)

val root_statement_msg : file:string -> count:int -> root:string -> string
(** Canonical statement the owner signs when publishing a root. *)

val parse_root_statement : string -> (string * int * string) option
(** Inverse of {!root_statement_msg}: [(file, count, root_hex)].
    Rejects anything that is not a canonical root statement. *)

val init :
  Sc_ibc.Setup.public ->
  Sc_ibc.Setup.identity_key ->
  bytes_source:(int -> string) ->
  cs_id:string ->
  da_id:string ->
  file:string ->
  string list ->
  client * server
(** Sign every payload at version 0, build the tree on both sides.
    @raise Invalid_argument on an empty payload list. *)

val root : client -> string
val count : client -> int
val server_root : server -> string
val server_count : server -> int

type read_proof = {
  content : content;
  version : int;
  u : Sc_ec.Curve.point;
  sigma_cs : Sc_pairing.Tate.gt;
  sigma_da : Sc_pairing.Tate.gt;
  proof : Sc_merkle.Dynamic_tree.proof;
}

val read : server -> int -> read_proof option
(** Server answers a read with the block, its signature material and
    its rank-annotated authentication path. *)

val verify_read : client -> index:int -> read_proof -> bool
(** Owner-side check of a read against the held root: Merkle path,
    path geometry for (index, count), version binding — no pairing
    needed. *)

val is_deleted : read_proof -> bool

type update_error =
  | Not_found  (** index outside the live range *)
  | Bad_proof  (** the server's pre-state failed verification *)
  | Diverged of { expected : string; server : string }
      (** the server's post-op root does not match the client's
          independently computed one — a lying or lazy server, caught
          at mutation time rather than on the next read.  The client
          state holds the correct [expected] root. *)

val update :
  client -> server -> index:int -> string -> (unit, update_error) result
(** Replace block [index] with a new payload (version bumped).  The
    client verifies the server's pre-state, signs the new version,
    computes the new root from the authentication path alone, and
    both sides move in O(log n).  Client state is unchanged on
    [Not_found] / [Bad_proof]. *)

val append : client -> server -> string -> (unit, update_error) result
(** Add a block at index [count]: frontier increment client-side,
    right-spine extension server-side — O(log n), no block transfer. *)

val delete : client -> server -> index:int -> (unit, update_error) result
(** Tombstone a block (authenticated logical delete, version bumped).
    Encoded as a typed leaf state — no payload can collide with it. *)

type batch_op =
  | Update of { index : int; payload : string }
  | Append of { payload : string }
  | Delete of { index : int }

val batch : client -> server -> batch_op list -> (int, update_error) result
(** Apply the ops in order under one telemetry span; each op is
    individually proof-checked but only the final root needs a
    {!publish_root} signature — k mutations, one signed root
    transition.  Returns the number applied; stops at the first
    error. *)

type audit_report = {
  sampled : int;
  valid : int;
  invalid_indices : int list;
  intact : bool;
}

val publish_root :
  client -> bytes_source:(int -> string) -> string * Sc_ibc.Ibs.t
(** A root statement over (file, count, root) signed by the owner,
    handed to the DA so audits do not need the owner online. *)

val audit_count_cap : int
(** Hard ceiling on the block count an audit will honour; a statement
    claiming more classifies as not intact without allocating. *)

val audit :
  Sc_ibc.Setup.public ->
  verifier_key:Sc_ibc.Setup.identity_key ->
  owner:string ->
  file:string ->
  root_statement:string * Sc_ibc.Ibs.t ->
  server ->
  drbg:Sc_hash.Drbg.t ->
  samples:int ->
  audit_report
(** DA-side audit: verifies the owner's root statement, validates the
    stated count against the server's entry range and
    {!audit_count_cap} {e before} sizing any allocation from it, then
    for each sampled index checks the designated signature
    (version- and kind-bound) and the rank-annotated Merkle path —
    position as well as content — against the stated root.  Any
    validation failure yields [intact = false] rather than an
    exception. *)

val make_lazy : server -> unit
(** Simulated misbehaviour for tests and campaigns: subsequent
    mutations write the entry but skip the tree update, so the
    server's root silently stops tracking the client's — exactly the
    divergence {!update_error.Diverged} exists to catch. *)

val corrupt_entry : server -> int -> unit
(** Simulated storage rot for campaigns: flip one payload byte of a
    stored data block without touching the tree. *)
