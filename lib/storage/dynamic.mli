(** Dynamic data storage: authenticated update / append / delete.

    The paper's Protocol II is static (sign once, store, audit).  The
    related work it builds on (Wang et al. [5], Erway et al. [15])
    adds *dynamics* via Merkle hash trees; this module provides that
    extension on top of {!Signer}/{!Server}:

    - the client (data owner) keeps only the Merkle root and block
      count — O(1) state;
    - every block is signed over (file, index, version, payload), so a
      server replaying a stale version fails the tree check and a
      server moving data across positions fails the signature check;
    - [update]/[delete] verify the server's pre-state proof and fold
      the *new* leaf through the same authentication path, giving the
      client the new root in O(log n) hashing without trusting the
      server;
    - [append] re-derives the root from the full leaf-hash list (O(n)
      hashes, O(1) client persistent state), verifying consistency
      with the held root first;
    - the DA audits against a client-signed root statement, checking
      the designated signature, the version and the Merkle path of
      each sampled block. *)

type client
(** Owner-side state: root, count, keys.  O(1) in the file size. *)

type server
(** Cloud-side state: versioned signed blocks plus the tree. *)

val signing_message :
  file:string -> index:int -> version:int -> payload:string -> string
(** The versioned message covered by each block signature. *)

val root_statement_msg : file:string -> count:int -> root:string -> string
(** Canonical statement the owner signs when publishing a root. *)

val parse_root_statement : string -> (string * int * string) option
(** Inverse of {!root_statement_msg}: [(file, count, root_hex)].
    Rejects anything that is not a canonical root statement. *)

val init :
  Sc_ibc.Setup.public ->
  Sc_ibc.Setup.identity_key ->
  bytes_source:(int -> string) ->
  cs_id:string ->
  da_id:string ->
  file:string ->
  string list ->
  client * server
(** Sign every payload at version 0, build the tree on both sides.
    @raise Invalid_argument on an empty payload list. *)

val root : client -> string
val count : client -> int
val server_root : server -> string

type read_proof = {
  payload : string;
  version : int;
  u : Sc_ec.Curve.point;
  sigma_cs : Sc_pairing.Tate.gt;
  sigma_da : Sc_pairing.Tate.gt;
  proof : Sc_merkle.Tree.proof;
}

val read : server -> int -> read_proof option
(** Server answers a read with the block, its signature material and
    its authentication path. *)

val verify_read : client -> index:int -> read_proof -> bool
(** Owner-side check of a read against the held root (Merkle path +
    version binding; no pairing needed). *)

val update : client -> server -> index:int -> string -> bool
(** Replace block [index] with a new payload (version bumped).  The
    client verifies the server's pre-state, signs the new version,
    computes the new root from the authentication path alone, and
    both sides move to the new state.  Returns false (and changes
    nothing client-side) if the server's proof does not check out. *)

val append : client -> server -> string -> bool
(** Add a block at index [count].  The client cross-checks the
    server-supplied leaf hashes against its root before accepting. *)

val delete : client -> server -> index:int -> bool
(** Tombstone a block (authenticated logical delete). *)

val is_deleted : read_proof -> bool

type audit_report = {
  sampled : int;
  valid : int;
  invalid_indices : int list;
  intact : bool;
}

val publish_root :
  client -> bytes_source:(int -> string) -> string * Sc_ibc.Ibs.t
(** A root statement ["droot|file|count|root"] signed by the owner,
    handed to the DA so audits do not need the owner online. *)

val audit :
  Sc_ibc.Setup.public ->
  verifier_key:Sc_ibc.Setup.identity_key ->
  owner:string ->
  file:string ->
  root_statement:string * Sc_ibc.Ibs.t ->
  server ->
  drbg:Sc_hash.Drbg.t ->
  samples:int ->
  audit_report
(** DA-side audit: verifies the owner's root statement, then for each
    sampled index checks the designated signature (version-bound) and
    the Merkle path against the stated root. *)
