module Setup = Sc_ibc.Setup
module Ibs = Sc_ibc.Ibs
module Dvs = Sc_ibc.Dvs
module Merkle = Sc_merkle.Tree

let tombstone = "\x00__tombstone__"

(* Canonical length-prefixed encodings (see Sc_hash.Encode): the old
   "dblock|%s|%d|%d|%s" and "%d|%d|%s" formats were ambiguous under
   delimiter injection — a '|' in the file name or payload could
   cross-bind a signature or leaf to a different tuple. *)
let signing_message ~file ~index ~version ~payload =
  Sc_hash.Encode.canonical
    [ "dblock"; file; string_of_int index; string_of_int version; payload ]

(* Leaf contents bind version, index and payload, so stale replays and
   cross-position swaps both change the leaf hash. *)
let leaf_content ~index ~version ~payload =
  Sc_hash.Encode.canonical
    [ "dleaf"; string_of_int version; string_of_int index; payload ]

type entry = {
  payload : string;
  version : int;
  u : Sc_ec.Curve.point;
  sigma_cs : Sc_pairing.Tate.gt;
  sigma_da : Sc_pairing.Tate.gt;
}

type server = {

  mutable s_entries : entry array;
  mutable s_tree : Merkle.t;
}

type client = {
  pub : Setup.public;
  key : Setup.identity_key;
  cs_id : string;
  da_id : string;
  c_file : string;
  mutable c_root : string;
  mutable c_count : int;
  c_bytes : int -> string;
}

type read_proof = {
  payload : string;
  version : int;
  u : Sc_ec.Curve.point;
  sigma_cs : Sc_pairing.Tate.gt;
  sigma_da : Sc_pairing.Tate.gt;
  proof : Merkle.proof;
}

let sign_entry client ~index ~version ~payload =
  let msg = signing_message ~file:client.c_file ~index ~version ~payload in
  let raw = Ibs.sign client.pub client.key ~bytes_source:client.c_bytes msg in
  let cs = Dvs.designate client.pub raw ~verifier:client.cs_id in
  let da = Dvs.designate client.pub raw ~verifier:client.da_id in
  {
    payload;
    version;
    u = raw.Ibs.u;
    sigma_cs = cs.Dvs.sigma;
    sigma_da = da.Dvs.sigma;
  }

let rebuild_tree server =
  let leaves =
    Array.to_list
      (Array.mapi
         (fun index (e : entry) ->
           leaf_content ~index ~version:e.version ~payload:e.payload)
         server.s_entries)
  in
  server.s_tree <- Merkle.build leaves

let init pub key ~bytes_source ~cs_id ~da_id ~file payloads =
  if payloads = [] then invalid_arg "Dynamic.init: empty payload list";
  let client =
    {
      pub;
      key;
      cs_id;
      da_id;
      c_file = file;
      c_root = "";
      c_count = 0;
      c_bytes = bytes_source;
    }
  in
  let entries =
    Array.of_list
      (List.mapi
         (fun index payload -> sign_entry client ~index ~version:0 ~payload)
         payloads)
  in
  let server = { s_entries = entries; s_tree = Merkle.build [ "x" ] } in
  rebuild_tree server;
  client.c_root <- Merkle.root server.s_tree;
  client.c_count <- Array.length entries;
  client, server

let root client = client.c_root
let count client = client.c_count
let server_root server = Merkle.root server.s_tree

let read server index =
  if index < 0 || index >= Array.length server.s_entries then None
  else begin
    let (e : entry) = server.s_entries.(index) in
    Some
      {
        payload = e.payload;
        version = e.version;
        u = e.u;
        sigma_cs = e.sigma_cs;
        sigma_da = e.sigma_da;
        proof = Merkle.proof server.s_tree index;
      }
  end

let verify_read client ~index (rp : read_proof) =
  rp.proof.Merkle.leaf_index = index
  && Merkle.verify_proof ~root:client.c_root
       ~leaf_payload:
         (leaf_content ~index ~version:rp.version ~payload:rp.payload)
       rp.proof

let update client server ~index payload =
  match read server index with
  | None -> false
  | Some pre ->
    if not (verify_read client ~index pre) then false
    else begin
      let version = pre.version + 1 in
      let entry = sign_entry client ~index ~version ~payload in
      (* New root from the *old* authentication path and the *new*
         leaf: O(log n) client-side work, no trust in the server. *)
      let new_leaf =
        Merkle.leaf_hash (leaf_content ~index ~version ~payload)
      in
      let new_root = Merkle.root_from_proof ~leaf_hash:new_leaf pre.proof in
      server.s_entries.(index) <- entry;
      rebuild_tree server;
      client.c_root <- new_root;
      (* Server and client must now agree; a lying server is caught on
         the next read. *)
      true
    end

let leaf_hashes server =
  Array.to_list
    (Array.mapi
       (fun index (e : entry) ->
         Merkle.leaf_hash
           (leaf_content ~index ~version:e.version ~payload:e.payload))
       server.s_entries)

let append client server payload =
  (* Cross-check the server's claimed leaf set against the held root
     before extending it. *)
  let hashes = leaf_hashes server in
  if List.length hashes <> client.c_count then false
  else if
    not
      (String.equal
         (Merkle.root (Merkle.build_of_hashes hashes))
         client.c_root)
  then false
  else begin
    let index = client.c_count in
    let entry = sign_entry client ~index ~version:0 ~payload in
    server.s_entries <- Array.append server.s_entries [| entry |];
    rebuild_tree server;
    let new_hashes =
      hashes @ [ Merkle.leaf_hash (leaf_content ~index ~version:0 ~payload) ]
    in
    client.c_root <- Merkle.root (Merkle.build_of_hashes new_hashes);
    client.c_count <- index + 1;
    true
  end

let delete client server ~index = update client server ~index tombstone
let is_deleted (rp : read_proof) = String.equal rp.payload tombstone

type audit_report = {
  sampled : int;
  valid : int;
  invalid_indices : int list;
  intact : bool;
}

let root_statement_msg ~file ~count ~root =
  Sc_hash.Encode.canonical
    [ "droot"; file; string_of_int count; Sc_hash.Sha256.hex_of_digest root ]

let publish_root client ~bytes_source =
  let msg =
    root_statement_msg ~file:client.c_file ~count:client.c_count
      ~root:client.c_root
  in
  msg, Ibs.sign client.pub client.key ~bytes_source msg

let parse_root_statement msg =
  match Sc_hash.Encode.decode msg with
  | Some [ "droot"; file; count; root_hex ] ->
    (match int_of_string_opt count with
    | Some count when count > 0 -> Some (file, count, root_hex)
    | Some _ | None -> None)
  | Some _ | None -> None

let audit pub ~verifier_key ~owner ~file ~root_statement server ~drbg ~samples =
  let failure = { sampled = 0; valid = 0; invalid_indices = []; intact = false } in
  let stmt, stmt_sig = root_statement in
  if not (Ibs.verify pub ~signer:owner ~msg:stmt stmt_sig) then failure
  else
    match parse_root_statement stmt with
    | None -> failure
    | Some (stated_file, count, root_hex) ->
      if not (String.equal stated_file file) then failure
      else begin
        let samples = min samples count in
        let idx = Array.init count (fun i -> i) in
        for i = 0 to samples - 1 do
          let j = i + Sc_hash.Drbg.uniform_int drbg (count - i) in
          let tmp = idx.(i) in
          idx.(i) <- idx.(j);
          idx.(j) <- tmp
        done;
        let check index =
          match read server index with
          | None -> false
          | Some rp ->
            let leaf =
              leaf_content ~index ~version:rp.version ~payload:rp.payload
            in
            let path_ok =
              rp.proof.Merkle.leaf_index = index
              && String.equal
                   (Sc_hash.Sha256.hex_of_digest
                      (Merkle.root_from_proof
                         ~leaf_hash:(Merkle.leaf_hash leaf) rp.proof))
                   root_hex
            in
            let msg =
              signing_message ~file ~index ~version:rp.version
                ~payload:rp.payload
            in
            path_ok
            && Dvs.verify pub ~verifier_key ~signer:owner ~msg
                 { Dvs.u = rp.u; sigma = rp.sigma_da }
        in
        let results = List.init samples (fun i -> idx.(i), check idx.(i)) in
        let invalid =
          List.filter_map (fun (i, ok) -> if ok then None else Some i) results
        in
        {
          sampled = samples;
          valid = samples - List.length invalid;
          invalid_indices = invalid;
          intact = invalid = [];
        }
      end
