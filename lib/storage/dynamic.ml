module Setup = Sc_ibc.Setup
module Ibs = Sc_ibc.Ibs
module Dvs = Sc_ibc.Dvs
module Dtree = Sc_merkle.Dynamic_tree
module Frontier = Dtree.Frontier
module Telemetry = Sc_telemetry.Telemetry

(* Deletion is a *typed* leaf state, not a magic payload.  The old
   scheme encoded tombstones as the reserved payload
   "\x00__tombstone__", so a user block whose bytes happened to equal
   the sentinel was silently reported deleted and [delete] was
   indistinguishable from storing that payload — the regression test
   keeps the collision on record.  Every framing below carries an
   explicit kind tag instead. *)
type content = Data of string | Tombstone

let kind_tag = function Data _ -> "data" | Tombstone -> "gone"
let payload_bytes = function Data p -> p | Tombstone -> ""

(* Canonical length-prefixed encodings (see Sc_hash.Encode): the old
   "dblock|%s|%d|%d|%s" and "%d|%d|%s" formats were ambiguous under
   delimiter injection — a '|' in the file name or payload could
   cross-bind a signature or leaf to a different tuple. *)
let signing_message_c ~file ~index ~version content =
  Sc_hash.Encode.canonical
    [
      "dblock"; file; string_of_int index; string_of_int version;
      kind_tag content; payload_bytes content;
    ]

let signing_message ~file ~index ~version ~payload =
  signing_message_c ~file ~index ~version (Data payload)

(* Leaf contents bind version, index, kind and payload, so stale
   replays, cross-position swaps and data/tombstone confusion all
   change the leaf hash. *)
let leaf_content_c ~index ~version content =
  Sc_hash.Encode.canonical
    [
      "dleaf"; string_of_int version; string_of_int index;
      kind_tag content; payload_bytes content;
    ]

type entry = {
  content : content;
  version : int;
  u : Sc_ec.Curve.point;
  sigma_cs : Sc_pairing.Tate.gt;
  sigma_da : Sc_pairing.Tate.gt;
}

type server = {
  mutable s_entries : entry array;  (* capacity-doubling; s_count live *)
  mutable s_count : int;
  mutable s_tree : Dtree.t;
  mutable s_lazy : bool;  (* simulated misbehaviour: skip tree writes *)
}

(* The owner keeps the O(log n) frontier — the perfect-subtree roots
   named by the binary representation of the block count — instead of
   a bare root: appends become local, and the root/count are derived
   on demand.  Still no block data client-side. *)
type client = {
  pub : Setup.public;
  key : Setup.identity_key;
  cs_id : string;
  da_id : string;
  c_file : string;
  mutable c_frontier : Frontier.frontier;
  c_bytes : int -> string;
}

type read_proof = {
  content : content;
  version : int;
  u : Sc_ec.Curve.point;
  sigma_cs : Sc_pairing.Tate.gt;
  sigma_da : Sc_pairing.Tate.gt;
  proof : Dtree.proof;
}

let sign_entry client ~index ~version content =
  let msg = signing_message_c ~file:client.c_file ~index ~version content in
  let raw = Ibs.sign client.pub client.key ~bytes_source:client.c_bytes msg in
  let cs = Dvs.designate client.pub raw ~verifier:client.cs_id in
  let da = Dvs.designate client.pub raw ~verifier:client.da_id in
  {
    content;
    version;
    u = raw.Ibs.u;
    sigma_cs = cs.Dvs.sigma;
    sigma_da = da.Dvs.sigma;
  }

let entry_leaf_hash ~index (e : entry) =
  Dtree.leaf_hash (leaf_content_c ~index ~version:e.version e.content)

let init pub key ~bytes_source ~cs_id ~da_id ~file payloads =
  if payloads = [] then invalid_arg "Dynamic.init: empty payload list";
  let client =
    {
      pub;
      key;
      cs_id;
      da_id;
      c_file = file;
      c_frontier = [];
      c_bytes = bytes_source;
    }
  in
  let entries =
    Array.of_list
      (List.mapi
         (fun index payload ->
           sign_entry client ~index ~version:0 (Data payload))
         payloads)
  in
  let tree =
    Dtree.of_leaf_hashes
      (Array.to_list (Array.mapi (fun i e -> entry_leaf_hash ~index:i e) entries))
  in
  let server =
    { s_entries = entries; s_count = Array.length entries; s_tree = tree;
      s_lazy = false }
  in
  client.c_frontier <- Frontier.of_tree tree;
  client, server

let root client = Frontier.root client.c_frontier
let count client = Frontier.total client.c_frontier
let server_root server = Dtree.root server.s_tree
let server_count server = server.s_count
let make_lazy server = server.s_lazy <- true

let read server index =
  if index < 0 || index >= server.s_count then None
  else begin
    let (e : entry) = server.s_entries.(index) in
    Some
      {
        content = e.content;
        version = e.version;
        u = e.u;
        sigma_cs = e.sigma_cs;
        sigma_da = e.sigma_da;
        proof = Dtree.proof server.s_tree index;
      }
  end

let verify_read client ~index (rp : read_proof) =
  rp.proof.Dtree.index = index
  && rp.proof.Dtree.total = count client
  && Dtree.verify ~root:(root client)
       ~leaf_hash:
         (Dtree.leaf_hash
            (leaf_content_c ~index ~version:rp.version rp.content))
       rp.proof

let is_deleted (rp : read_proof) = rp.content = Tombstone

(* --- mutations ------------------------------------------------------ *)

type update_error =
  | Not_found
  | Bad_proof
  | Diverged of { expected : string; server : string }

let set_entry server index entry =
  server.s_entries.(index) <- entry

let push_entry server entry =
  let cap = Array.length server.s_entries in
  if server.s_count = cap then begin
    let bigger = Array.make (max 1 (2 * cap)) server.s_entries.(0) in
    Array.blit server.s_entries 0 bigger 0 cap;
    server.s_entries <- bigger
  end;
  server.s_entries.(server.s_count) <- entry;
  server.s_count <- server.s_count + 1

(* Shared path of update/delete: verify the server's pre-state proof,
   sign the new versioned content, move both sides in O(log n), then
   cross-check the server's root against the client's independently
   computed one — a lying or lazy server is caught *now*, as a typed
   [Diverged], not on the next read. *)
let write client server ~index content =
  match read server index with
  | None -> Error Not_found
  | Some pre ->
    if not (verify_read client ~index pre) then Error Bad_proof
    else begin
      let version = pre.version + 1 in
      let entry = sign_entry client ~index ~version content in
      let new_leaf =
        Dtree.leaf_hash (leaf_content_c ~index ~version content)
      in
      (* New root from the *old* authentication path and the *new*
         leaf: O(log n) client-side work, no trust in the server. *)
      let expected = Dtree.root_of_proof ~leaf_hash:new_leaf pre.proof in
      set_entry server index entry;
      if not server.s_lazy then
        server.s_tree <- Dtree.modify server.s_tree index new_leaf;
      client.c_frontier <-
        Frontier.modify client.c_frontier pre.proof ~leaf_hash:new_leaf;
      let server_now = server_root server in
      if String.equal server_now expected then Ok ()
      else Error (Diverged { expected; server = server_now })
    end

let update client server ~index payload =
  Telemetry.with_span ~name:"dynamic.update" @@ fun () ->
  write client server ~index (Data payload)

let delete client server ~index =
  Telemetry.with_span ~name:"dynamic.delete" @@ fun () ->
  write client server ~index Tombstone

(* Append is local on both sides: the client folds the new leaf into
   its frontier (O(log n), no server data needed — the old
   implementation fetched *all* leaf hashes and rebuilt), the server
   extends its tree down the right spine. *)
let append client server payload =
  Telemetry.with_span ~name:"dynamic.append" @@ fun () ->
  let index = count client in
  if server.s_count <> index then
    Error
      (Diverged
         { expected = root client; server = server_root server })
  else begin
    let entry = sign_entry client ~index ~version:0 (Data payload) in
    let leaf = entry_leaf_hash ~index entry in
    push_entry server entry;
    if not server.s_lazy then
      server.s_tree <- Dtree.append server.s_tree leaf;
    client.c_frontier <- Frontier.append client.c_frontier leaf;
    let expected = root client in
    let server_now = server_root server in
    if String.equal server_now expected then Ok ()
    else Error (Diverged { expected; server = server_now })
  end

(* --- batched root transitions --------------------------------------- *)

type batch_op =
  | Update of { index : int; payload : string }
  | Append of { payload : string }
  | Delete of { index : int }

(* Apply k mutations under one span and — the point of batching — one
   subsequent [publish_root]: intermediate roots exist (each op is
   individually verified) but only the final one needs a signature. *)
let batch client server ops =
  Telemetry.with_span ~name:"dynamic.batch"
    ~attrs:[ "ops", string_of_int (List.length ops) ]
  @@ fun () ->
  let rec go applied = function
    | [] -> Ok applied
    | op :: rest -> (
      let result =
        match op with
        | Update { index; payload } -> write client server ~index (Data payload)
        | Delete { index } -> write client server ~index Tombstone
        | Append { payload } -> append client server payload
      in
      match result with
      | Ok () -> go (applied + 1) rest
      | Error e -> Error e)
  in
  go 0 ops

(* --- auditing ------------------------------------------------------- *)

type audit_report = {
  sampled : int;
  valid : int;
  invalid_indices : int list;
  intact : bool;
}

let root_statement_msg ~file ~count ~root =
  Sc_hash.Encode.canonical
    [ "droot"; file; string_of_int count; Sc_hash.Sha256.hex_of_digest root ]

let publish_root client ~bytes_source =
  let msg =
    root_statement_msg ~file:client.c_file ~count:(count client)
      ~root:(root client)
  in
  msg, Ibs.sign client.pub client.key ~bytes_source msg

let parse_root_statement msg =
  match Sc_hash.Encode.decode msg with
  | Some [ "droot"; file; count; root_hex ] ->
    (match int_of_string_opt count with
    | Some count when count > 0 -> Some (file, count, root_hex)
    | Some _ | None -> None)
  | Some _ | None -> None

(* Hard ceiling on the block count an audit will honour.  The stated
   count arrives inside a signed-but-possibly-stale (or forged)
   statement; sizing any allocation from it before validation let a
   bogus statement with count = 2^60 DoS the auditor.  Anything above
   the cap — or beyond what the server actually holds — now classifies
   as [intact = false] without allocating. *)
let audit_count_cap = 1 lsl 22

let audit pub ~verifier_key ~owner ~file ~root_statement server ~drbg ~samples =
  Telemetry.with_span ~name:"dynamic.audit" @@ fun () ->
  let failure = { sampled = 0; valid = 0; invalid_indices = []; intact = false } in
  let stmt, stmt_sig = root_statement in
  if not (Ibs.verify pub ~signer:owner ~msg:stmt stmt_sig) then failure
  else
    match parse_root_statement stmt with
    | None -> failure
    | Some (stated_file, count, root_hex) ->
      if not (String.equal stated_file file) then failure
      else if count > audit_count_cap || count > server.s_count then failure
      else begin
        let samples = min samples count in
        let idx = Array.init count (fun i -> i) in
        for i = 0 to samples - 1 do
          let j = i + Sc_hash.Drbg.uniform_int drbg (count - i) in
          let tmp = idx.(i) in
          idx.(i) <- idx.(j);
          idx.(j) <- tmp
        done;
        let check index =
          match read server index with
          | None -> false
          | Some rp ->
            let leaf =
              leaf_content_c ~index ~version:rp.version rp.content
            in
            (* Rank-aware path check: the proof must claim exactly this
               index within exactly the signed population, its geometry
               must match the canonical shape for that claim, and the
               fold must land on the published root. *)
            let path_ok =
              rp.proof.Dtree.index = index
              && rp.proof.Dtree.total = count
              && Dtree.check_geometry rp.proof
              && String.equal
                   (Sc_hash.Sha256.hex_of_digest
                      (Dtree.root_of_proof
                         ~leaf_hash:(Dtree.leaf_hash leaf) rp.proof))
                   root_hex
            in
            let msg =
              signing_message_c ~file ~index ~version:rp.version rp.content
            in
            path_ok
            && Dvs.verify pub ~verifier_key ~signer:owner ~msg
                 { Dvs.u = rp.u; sigma = rp.sigma_da }
        in
        let results = List.init samples (fun i -> idx.(i), check idx.(i)) in
        let invalid =
          List.filter_map (fun (i, ok) -> if ok then None else Some i) results
        in
        {
          sampled = samples;
          valid = samples - List.length invalid;
          invalid_indices = invalid;
          intact = invalid = [];
        }
      end

(* Simulated storage rot for campaigns: flip one payload byte in an
   entry without touching the tree — exactly what a lazy server that
   lost data but kept serving old proofs looks like. *)
let corrupt_entry server index =
  if index >= 0 && index < server.s_count then begin
    let e = server.s_entries.(index) in
    match e.content with
    | Tombstone -> ()
    | Data p when String.length p = 0 -> ()
    | Data p ->
      let b = Bytes.of_string p in
      Bytes.set b 0 (Char.chr (Char.code (Bytes.get b 0) lxor 1));
      server.s_entries.(index) <-
        { e with content = Data (Bytes.to_string b) }
  end
