type t = { file : string; index : int; data : string }

(* Canonical length-prefixed encoding: the old "block|%s|%d|%s" format
   was forgeable under delimiter injection (file "f|1" at index 2 and
   file "f" at index 1 with a "2|"-prefixed payload serialize to the
   same message, cross-binding one signature to the other triple). *)
let signing_message b =
  Sc_hash.Encode.canonical
    [ "block"; b.file; string_of_int b.index; b.data ]

let encode_ints ints = String.concat "," (List.map string_of_int ints)

let decode_ints s =
  if String.length s = 0 then Some []
  else begin
    let parts = String.split_on_char ',' s in
    let rec convert acc = function
      | [] -> Some (List.rev acc)
      | part :: rest ->
        (match int_of_string_opt part with
        | Some v -> convert (v :: acc) rest
        | None -> None)
    in
    convert [] parts
  end

let of_ints ~file ~index ints = { file; index; data = encode_ints ints }
