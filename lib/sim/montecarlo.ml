type result = { trials : int; survived : int; rate : float; predicted : float }

let bernoulli drbg p = Sc_hash.Drbg.float drbg < p

(* One sampled sub-task survives scrutiny under the FCS game. *)
let fcs_sample_survives drbg ~csc ~range =
  if bernoulli drbg csc then true
  else if range = infinity then false
  else bernoulli drbg (1.0 /. range)

let pcs_sample_survives drbg ~ssc ~sig_forge =
  if bernoulli drbg ssc then true else bernoulli drbg sig_forge

(* Trials fan out over the domain pool in a *fixed* number of chunks,
   each driven by its own DRBG forked from the caller's stream up
   front.  The outcome is therefore a pure function of the seed —
   identical at every SECCLOUD_DOMAINS setting, only the schedule
   changes.  (A shared stream would interleave nondeterministically
   across domains.) *)
let n_chunks = 64

let run_trials drbg ~trials ~predicted trial =
  let k = max 1 (min n_chunks trials) in
  let sub =
    Array.init k (fun _ ->
        Sc_hash.Drbg.create ~seed:(Sc_hash.Drbg.generate drbg 32))
  in
  let counts = Array.make k 0 in
  let base = trials / k and extra = trials mod k in
  Sc_parallel.iter_ranges k (fun lo hi ->
      for c = lo to hi - 1 do
        let d = sub.(c) in
        let n_c = base + if c < extra then 1 else 0 in
        let s = ref 0 in
        for _ = 1 to n_c do
          if trial d then incr s
        done;
        counts.(c) <- !s
      done);
  let survived = Array.fold_left ( + ) 0 counts in
  {
    trials;
    survived;
    rate = float_of_int survived /. float_of_int trials;
    predicted;
  }

let all_pass t sample_survives d =
  let rec go k = k = 0 || (sample_survives d && go (k - 1)) in
  go t

let fcs_experiment ~drbg ~csc ~range ~t ~trials =
  run_trials drbg ~trials
    ~predicted:(Sc_audit.Sampling.pr_fcs ~csc ~range ~t)
    (all_pass t (fun d -> fcs_sample_survives d ~csc ~range))

let pcs_experiment ~drbg ~ssc ~sig_forge ~t ~trials =
  run_trials drbg ~trials
    ~predicted:(Sc_audit.Sampling.pr_pcs ~ssc ~sig_forge ~t)
    (all_pass t (fun d -> pcs_sample_survives d ~ssc ~sig_forge))

let combined_experiment ~drbg ~csc ~ssc ~range ~sig_forge ~t ~trials =
  (* The adversary mounts one of the two attacks per audit; eq. (14)
     upper-bounds the union, so we play both and count survival of
     either. *)
  run_trials drbg ~trials
    ~predicted:(Sc_audit.Sampling.pr_cheat ~csc ~ssc ~range ~sig_forge ~t)
    (fun d ->
      all_pass t (fun d -> fcs_sample_survives d ~csc ~range) d
      || all_pass t (fun d -> pcs_sample_survives d ~ssc ~sig_forge) d)
