module Server = Sc_storage.Server
module Executor = Sc_compute.Executor
module Task = Sc_compute.Task
module Optimal = Sc_audit.Optimal
module Telemetry = Sc_telemetry.Telemetry

let c_epochs = Telemetry.counter "sim.epochs"
let c_audits = Telemetry.counter "sim.audits"

type config = {
  seed : string;
  params : Sc_pairing.Params.t lazy_t;
  n_servers : int;
  byzantine_bound : int;
  n_users : int;
  blocks_per_file : int;
  ints_per_block : int;
  tasks_per_service : int;
  samples_per_audit : int;
  epochs : int;
  network : Network.config;
  cheat_damage : float;
}

let default_config =
  {
    seed = "sim-default";
    params = Sc_pairing.Params.toy;
    n_servers = 4;
    byzantine_bound = 1;
    n_users = 2;
    blocks_per_file = 32;
    ints_per_block = 8;
    tasks_per_service = 16;
    samples_per_audit = 8;
    epochs = 5;
    network = Network.default_config;
    cheat_damage = 100.0;
  }

type audit_outcome = {
  epoch : int;
  server : string;
  user : string;
  server_cheats : bool;
  storage_ok : bool;
  computation_ok : bool;
  samples : int;
  bytes : int;
  recompute_seconds : float;
}

type stats = {
  outcomes : audit_outcome list;
  sim_time : float;
  total_bytes : int;
  detected : int;
  undetected : int;
  false_alarms : int;
  honest_passed : int;
  records : Optimal.audit_record list;
}

(* Byte accounting uses the real wire encoding (Seccloud.Wire): each
   exchange is encoded once and its cost read back as the delta of the
   [wire.tx.bytes] registry counter, so the C_trans fed to Theorem 3's
   history learning is exact and agrees with what any other traffic
   source charges the same counter. *)

let wire_tx_bytes () = Telemetry.counter_value "wire.tx.bytes"

let run config =
  let system =
    Seccloud.System.create ~params:config.params ~seed:config.seed
      ~cs_ids:(List.init config.n_servers (Printf.sprintf "cs-%d"))
      ~da_id:"da" ()
  in
  let da = Seccloud.Agency.create system in
  let drbg = Sc_hash.Drbg.create ~seed:("sim:" ^ config.seed) in
  let adversary =
    Adversary.create ~drbg ~bound:config.byzantine_bound
      ~server_ids:(Seccloud.System.cs_ids system)
      ()
  in
  let net = Network.create config.network in
  let queue = Event_queue.create () in
  let users =
    List.init config.n_users (fun i ->
        Seccloud.User.create system ~id:(Printf.sprintf "user-%d" i))
  in
  let payloads_for user_id =
    List.init config.blocks_per_file (fun i ->
        Sc_storage.Block.encode_ints
          (List.init config.ints_per_block (fun j ->
               Sc_hash.Drbg.uniform_int drbg 100 + i + j))
        |> fun s -> ignore user_id; s)
  in
  let outcomes = ref [] in
  let records = ref [] in
  let run_epoch epoch_idx =
    Telemetry.incr c_epochs;
    Telemetry.with_span ~name:"sim.epoch"
      ~attrs:[ "epoch", string_of_int epoch_idx ]
    @@ fun () ->
    Adversary.new_epoch adversary;
    (* Rebuild the fleet with this epoch's corruption assignment. *)
    let clouds =
      List.map
        (fun id ->
          match Adversary.corruption_of adversary id with
          | None -> Seccloud.Cloud.create system ~id ()
          | Some c ->
            Seccloud.Cloud.create system ~id ~storage:c.Adversary.storage
              ~compute:c.Adversary.compute ())
        (Seccloud.System.cs_ids system)
    in
    let cloud_arr = Array.of_list clouds in
    List.iteri
      (fun ui user ->
        let cloud = cloud_arr.(ui mod Array.length cloud_arr) in
        let file = Printf.sprintf "file-%s-e%d" (Seccloud.User.id user) epoch_idx in
        let payloads = payloads_for (Seccloud.User.id user) in
        (* Upload (Protocol II): sign first, then charge the real wire
           size of the Upload message. *)
        let upload =
          Seccloud.User.sign_file user ~cs_id:(Seccloud.Cloud.id cloud) ~file
            payloads
        in
        let pub = Seccloud.System.public system in
        let tx0 = wire_tx_bytes () in
        ignore (Seccloud.Wire.encode pub (Seccloud.Wire.Upload upload));
        let upload_bytes = wire_tx_bytes () - tx0 in
        let upload_delay = Network.record_transfer net ~bytes:upload_bytes in
        Event_queue.schedule queue ~delay:upload_delay (fun () ->
            (* Cheating servers skip the accept-time check. *)
            (match Seccloud.Cloud.storage cloud |> Server.behaviour with
            | Server.Honest -> ignore (Seccloud.Cloud.accept_upload cloud upload)
            | Server.Delete_fraction _ | Server.Corrupt_fraction _
            | Server.Substitute_fraction _ ->
              Seccloud.Cloud.accept_upload_unchecked cloud upload);
            (* Computation request (Protocol III) after the upload. *)
            let service =
              Task.random_service ~drbg ~n_positions:config.blocks_per_file
                ~n_tasks:config.tasks_per_service
            in
            let execution =
              Seccloud.Cloud.execute cloud ~owner:(Seccloud.User.id user) ~file
                service
            in
            let now = Event_queue.now queue in
            let warrant =
              Seccloud.User.delegate_audit user ~now ~lifetime:3600.0
                ~scope:("audit " ^ file)
            in
            (* Build the actual audit exchange so its exact wire size
               can be charged. *)
            let commitment =
              Sc_audit.Protocol.commitment_of_execution execution
            in
            let challenge =
              Sc_audit.Protocol.make_challenge ~drbg
                ~n_tasks:commitment.Sc_audit.Protocol.n_tasks
                ~samples:config.samples_per_audit ~warrant
            in
            let responses =
              Sc_audit.Protocol.respond pub ~now execution challenge
            in
            let tx0 = wire_tx_bytes () in
            ignore
              (Seccloud.Wire.encode pub
                 (Seccloud.Wire.Compute_commitment
                    { results = Executor.results execution; commitment }));
            ignore
              (Seccloud.Wire.encode pub
                 (Seccloud.Wire.Audit_challenge
                    { owner = Seccloud.User.id user; file; challenge }));
            (match responses with
            | Some rs ->
              ignore
                (Seccloud.Wire.encode pub (Seccloud.Wire.Audit_response rs))
            | None -> ());
            let audit_bytes = wire_tx_bytes () - tx0 in
            let audit_delay = Network.record_transfer net ~bytes:audit_bytes in
            Event_queue.schedule queue ~delay:audit_delay (fun () ->
                Telemetry.incr c_audits;
                Telemetry.with_span ~name:"sim.audit"
                  ~attrs:
                    [
                      "epoch", string_of_int epoch_idx;
                      "server", Seccloud.Cloud.id cloud;
                    ]
                @@ fun () ->
                let t0 = Sys.time () in
                let storage_report =
                  Seccloud.Agency.audit_storage da cloud
                    ~owner:(Seccloud.User.id user) ~file
                    ~samples:config.samples_per_audit
                in
                let verdict =
                  match responses with
                  | None ->
                    {
                      Sc_audit.Protocol.valid = false;
                      failures = [ Sc_audit.Protocol.Warrant_invalid ];
                    }
                  | Some rs ->
                    Sc_audit.Protocol.verify pub
                      ~verifier_key:(Seccloud.System.da_key system) ~role:`Da
                      ~owner:(Seccloud.User.id user) commitment challenge rs
                in
                let recompute_seconds = Sys.time () -. t0 in
                let server_cheats =
                  Adversary.corruption_of adversary (Seccloud.Cloud.id cloud)
                  <> None
                in
                let outcome =
                  {
                    epoch = epoch_idx;
                    server = Seccloud.Cloud.id cloud;
                    user = Seccloud.User.id user;
                    server_cheats;
                    storage_ok = storage_report.Seccloud.Agency.intact;
                    computation_ok = verdict.Sc_audit.Protocol.valid;
                    samples = config.samples_per_audit;
                    bytes = audit_bytes;
                    recompute_seconds;
                  }
                in
                outcomes := outcome :: !outcomes;
                let caught =
                  not (outcome.storage_ok && outcome.computation_ok)
                in
                records :=
                  {
                    Optimal.samples = config.samples_per_audit;
                    bytes_transferred = float_of_int audit_bytes;
                    recompute_seconds;
                    undetected_cheat_damage =
                      (if server_cheats && not caught then
                         Some config.cheat_damage
                       else None);
                  }
                  :: !records)))
      users
  in
  for e = 1 to config.epochs do
    Event_queue.schedule_at queue ~time:(float_of_int e *. 10_000.0) (fun () ->
        run_epoch e)
  done;
  Event_queue.run queue;
  let outcomes = List.rev !outcomes in
  let tally f = List.length (List.filter f outcomes) in
  let caught o = not (o.storage_ok && o.computation_ok) in
  {
    outcomes;
    sim_time = Event_queue.now queue;
    total_bytes = Network.total_bytes net;
    detected = tally (fun o -> o.server_cheats && caught o);
    undetected = tally (fun o -> o.server_cheats && not (caught o));
    false_alarms = tally (fun o -> (not o.server_cheats) && caught o);
    honest_passed = tally (fun o -> (not o.server_cheats) && not (caught o));
    records = List.rev !records;
  }

let detection_rate stats =
  let total = stats.detected + stats.undetected in
  if total = 0 then 1.0 else float_of_int stats.detected /. float_of_int total

let learned_costs ?(a3 = 1.0) stats = Optimal.learn_costs ~a3 stats.records
